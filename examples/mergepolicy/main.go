// Mergepolicy reproduces the paper's Figure 1: three pairs of VLIW
// instructions on a 4-cluster, 2-issue-per-cluster machine, showing which
// pairs SMT (operation-level merging) and CSMT (cluster-level merging) can
// combine into one execution packet.
//
//   - Pair I conflicts at clusters 0, 1 and 3 at both granularities:
//     neither policy merges it.
//   - Pair II has no operation-level conflicts but overlaps clusters:
//     only SMT merges it.
//   - Pair III uses disjoint clusters: both policies merge it, producing
//     the identical packet.
package main

import (
	"fmt"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
)

func main() {
	geom := isa.Geometry{Clusters: 4, IssueWidth: 2, ALUs: 2, Muls: 1, MemUnits: 1}

	bd := func(alu, mul, mem int) isa.BundleDemand {
		return isa.BundleDemand{
			Ops: uint8(alu + mul + mem), ALU: uint8(alu),
			Mul: uint8(mul), Mem: uint8(mem),
		}
	}
	mk := func(bundles ...isa.BundleDemand) isa.InstrDemand {
		var d isa.InstrDemand
		copy(d.B[:], bundles)
		return d
	}

	pairs := []struct {
		name   string
		t0, t1 isa.InstrDemand
	}{
		{"Pair I", // conflicts everywhere both threads meet
			mk(bd(1, 0, 1), bd(2, 0, 0), bd(0, 0, 0), bd(2, 0, 0)),
			mk(bd(0, 1, 0), bd(1, 0, 0), bd(1, 1, 0), bd(1, 0, 0))},
		{"Pair II", // same clusters, but operations fit side by side
			mk(bd(1, 0, 0), bd(0, 0, 0), bd(1, 0, 0), bd(0, 0, 1)),
			mk(bd(1, 0, 0), bd(0, 0, 0), bd(1, 0, 0), bd(1, 0, 0))},
		{"Pair III", // disjoint clusters
			mk(bd(0, 0, 0), bd(1, 0, 1), bd(0, 0, 1), bd(0, 0, 0)),
			mk(bd(2, 0, 0), bd(0, 0, 0), bd(0, 0, 0), bd(1, 1, 0))},
	}

	fmt.Println("Figure 1: instruction merging in SMT and CSMT")
	fmt.Println()
	for _, pr := range pairs {
		smt := canMerge(geom, core.MergeOperation, pr.t0, pr.t1)
		csmt := canMerge(geom, core.MergeCluster, pr.t0, pr.t1)
		fmt.Printf("%-9s thread0 clusters %04b, thread1 clusters %04b\n",
			pr.name, pr.t0.UsedClusters(), pr.t1.UsedClusters())
		fmt.Printf("          SMT merge: %-5v  CSMT merge: %v\n\n", smt, csmt)
	}
	fmt.Println("(Pair I: neither; Pair II: SMT only; Pair III: both — matching the paper.)")
}

// canMerge loads thread 0's instruction into an empty packet and asks the
// collision-detection logic whether thread 1's instruction fits.
func canMerge(geom isa.Geometry, merge core.MergePolicy, a, b isa.InstrDemand) bool {
	p := core.NewPacket(geom)
	p.Reset()
	for c := 0; c < geom.Clusters; c++ {
		p.AddBundle(c, a.B[c])
	}
	return p.FitsWhole(&b.B, merge)
}

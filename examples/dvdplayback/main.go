// Dvdplayback models the workload the paper's introduction motivates:
// playing a DVD needs a decryption thread (low ILP), a video decoder
// (high ILP), an audio decoder (medium ILP) and an operating-system thread
// (low ILP), all sharing one embedded clustered VLIW. The example runs that
// mix under every multithreading technique of the paper and prints the
// resulting IPC ladder.
package main

import (
	"fmt"
	"log"

	"vexsmt/internal/core"
	"vexsmt/internal/sim"
	"vexsmt/internal/synth"
)

func main() {
	names := []string{
		"blowfish",   // stream decryption (low ILP)
		"x264",       // video codec (high ILP)
		"g721decode", // audio codec (medium ILP)
		"gsmencode",  // stand-in for OS/housekeeping work (low ILP)
	}
	var profiles []synth.Profile
	for _, n := range names {
		p, ok := synth.ByName(n)
		if !ok {
			log.Fatalf("no profile for %s", n)
		}
		profiles = append(profiles, p)
	}

	fmt.Println("DVD-playback workload: blowfish + x264 + g721decode + gsmencode")
	fmt.Println("4 hardware threads on the 16-issue 4-cluster machine")
	fmt.Println()
	fmt.Printf("%-10s %8s %14s %14s\n", "technique", "IPC", "vs CSMT", "split instrs")

	var csmtIPC float64
	for _, tech := range core.AllTechniques() {
		cfg := sim.DefaultConfig(tech, 4).WithScale(500)
		s, err := sim.NewWorkload(cfg, profiles)
		if err != nil {
			log.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		if tech == core.CSMT() {
			csmtIPC = r.IPC()
		}
		rel := ""
		if csmtIPC > 0 {
			rel = fmt.Sprintf("%+.1f%%", (r.IPC()/csmtIPC-1)*100)
		}
		fmt.Printf("%-10s %8.3f %14s %14d\n", tech.Name(), r.IPC(), rel, r.SplitInstrs)
	}
	fmt.Println("\nCluster-level split-issue (CCSI) buys most of the gap to operation-")
	fmt.Println("level merging at a fraction of the hardware cost — the paper's thesis.")
}

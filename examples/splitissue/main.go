// Splitissue walks through the paper's Figures 5 and 6 cycle by cycle: the
// same two-thread instruction sequences scheduled without split-issue, with
// cluster-level split-issue (COSI/CCSI) and with operation-level
// split-issue (OOSI), printing the execution packet each cycle.
package main

import (
	"fmt"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
)

func bd(alu, mul, mem int, load, stor bool) isa.BundleDemand {
	return isa.BundleDemand{
		Ops: uint8(alu + mul + mem), ALU: uint8(alu), Mul: uint8(mul),
		Mem: uint8(mem), Load: load, Stor: stor,
	}
}

func mk(bundles ...isa.BundleDemand) isa.InstrDemand {
	var d isa.InstrDemand
	copy(d.B[:], bundles)
	return d
}

// geом: 2 clusters x 3 issue slots, as in Figures 5 and 6.
var geom = isa.Geometry{Clusters: 2, IssueWidth: 3, ALUs: 3, Muls: 2, MemUnits: 1}

func main() {
	// Figure 5's instruction streams.
	fig5 := [][]isa.InstrDemand{
		{ // Thread 0: Ins0 = add,sub | ld ; Ins1 = st,shr | xor,add
			mk(bd(2, 0, 0, false, false), bd(0, 0, 1, true, false)),
			mk(bd(1, 0, 1, false, true), bd(2, 0, 0, false, false)),
		},
		{ // Thread 1: Ins0 = mpy,shl | mpy,and ; Ins1 = sub,ld | or
			mk(bd(1, 1, 0, false, false), bd(1, 1, 0, false, false)),
			mk(bd(1, 0, 1, true, false), bd(1, 0, 0, false, false)),
		},
	}
	fmt.Println("=== Figure 5 streams (2 clusters x 3 issue) ===")
	for _, tech := range []core.Technique{core.SMT(), core.COSI(core.CommNoSplit), core.OOSI(core.CommNoSplit)} {
		replay(tech, fig5)
	}

	// Figure 6's instruction streams.
	fig6 := [][]isa.InstrDemand{
		{
			mk(bd(1, 0, 1, true, false)),                            // Ins0: cluster 0 only
			mk(bd(1, 0, 1, false, true), bd(2, 0, 0, false, false)), // Ins1: both clusters
		},
		{
			mk(bd(1, 1, 0, false, false), bd(1, 1, 0, false, false)), // Ins0: both clusters
			mk(bd(0, 0, 0, false, false), bd(2, 0, 0, false, false)), // Ins1: cluster 1 only
		},
	}
	fmt.Println("=== Figure 6 streams ===")
	for _, tech := range []core.Technique{core.CSMT(), core.CCSI(core.CommNoSplit)} {
		replay(tech, fig6)
	}
}

func replay(tech core.Technique, queues [][]isa.InstrDemand) {
	eng, err := core.NewEngine(geom, tech, len(queues))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n--- %s ---\n", tech.Name())
	next := make([]int, len(queues))
	var ready [core.MaxThreads]bool
	for cycle := 0; cycle < 16; cycle++ {
		done := true
		for t := range queues {
			if !eng.Active(t) && next[t] < len(queues[t]) {
				eng.Load(t, queues[t][next[t]])
				next[t]++
			}
			ready[t] = true
			if eng.Active(t) {
				done = false
			}
		}
		if done {
			fmt.Printf("all instructions issued in %d cycles\n", cycle)
			return
		}
		res := eng.Cycle(&ready)
		fmt.Printf("cycle %d:", cycle)
		for t := range queues {
			tr := res.Thread[t]
			if tr.Ops == 0 {
				continue
			}
			state := "last part"
			if tr.Split {
				state = "split"
			}
			fmt.Printf("  T%d issues %d ops on clusters %02b (%s)", t, tr.Ops, tr.Clusters, state)
		}
		fmt.Println()
	}
}

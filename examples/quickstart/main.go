// Quickstart: simulate the paper's base machine (4 clusters x 4-issue,
// ST200-like) running a 4-thread workload under CSMT, then enable
// cluster-level split-issue (CCSI) and measure the speedup — the paper's
// headline experiment, driven entirely through the public pkg/vexsmt API.
package main

import (
	"context"
	"fmt"
	"log"

	"vexsmt/pkg/vexsmt"
)

func main() {
	ctx := context.Background()
	svc, err := vexsmt.New(vexsmt.WithScale(500)) // 1/500 of paper scale
	if err != nil {
		log.Fatal(err)
	}

	// The "mmhh" mix: two medium-ILP and two high-ILP benchmarks
	// (djpeg, g721decode, idct, colorspace) — the mix where the paper
	// reports up to 20.3% gains from split-issue. Both cells share one
	// seed (common random numbers), so the comparison is paired.
	run := func(technique string) vexsmt.CellResult {
		r, err := svc.RunCell(ctx, vexsmt.CellSpec{
			Mix: "mmhh", Technique: technique, Threads: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run("CSMT")
	ccsi := run("CCSI AS")

	fmt.Println("workload mmhh on the 16-issue 4-cluster machine, 4 threads")
	fmt.Println()
	fmt.Printf("  CSMT    (cluster merging, no split):   IPC %.3f\n", base.IPC)
	fmt.Printf("  CCSI AS (cluster merging + split):     IPC %.3f\n", ccsi.IPC)
	fmt.Printf("\n  split-issue speedup: %+.1f%%  (%d instructions issued in parts)\n",
		vexsmt.SpeedupPct(ccsi, base), ccsi.Counters.SplitInstrs)
}

// Quickstart: simulate the paper's base machine (4 clusters x 4-issue,
// ST200-like) running a 4-thread workload under CSMT, then enable
// cluster-level split-issue (CCSI) and measure the speedup — the paper's
// headline experiment in ~40 lines.
package main

import (
	"fmt"
	"log"

	"vexsmt/internal/core"
	"vexsmt/internal/sim"
	"vexsmt/internal/stats"
	"vexsmt/internal/workload"
)

func main() {
	// The "mmhh" mix: two medium-ILP and two high-ILP benchmarks
	// (djpeg, g721decode, idct, colorspace) — the mix where the paper
	// reports up to 20.3% gains from split-issue.
	mix, err := workload.MixByLabel("mmhh")
	if err != nil {
		log.Fatal(err)
	}
	profiles, err := mix.Profiles()
	if err != nil {
		log.Fatal(err)
	}

	run := func(tech core.Technique) *stats.Run {
		cfg := sim.DefaultConfig(tech, 4).WithScale(500) // 1/500 of paper scale
		s, err := sim.NewWorkload(cfg, profiles)
		if err != nil {
			log.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run(core.CSMT())
	ccsi := run(core.CCSI(core.CommAlwaysSplit))

	fmt.Printf("workload %s on the 16-issue 4-cluster machine, 4 threads\n\n", mix.Label)
	fmt.Printf("  CSMT    (cluster merging, no split):   IPC %.3f\n", base.IPC())
	fmt.Printf("  CCSI AS (cluster merging + split):     IPC %.3f\n", ccsi.IPC())
	fmt.Printf("\n  split-issue speedup: %+.1f%%  (%d instructions issued in parts)\n",
		stats.SpeedupPct(ccsi, base), ccsi.SplitInstrs)
}

// Semantics demonstrates on the functional machine why split-issue needs
// the paper's delay buffers (Section V-B) and send/recv buffering
// (Section V-E):
//
//  1. the Figure 3 register swap — a single instruction exchanging $r3 and
//     $r5 — executed in split parts, with the delay buffers preserving the
//     compiler's dataflow assumptions;
//  2. the Figure 12 inter-cluster transfer with recv issued before send;
//  3. a precise exception: a faulting part rolls the whole instruction
//     back, leaving the architectural state at the instruction boundary.
package main

import (
	"fmt"
	"log"

	"vexsmt/internal/asm"
	"vexsmt/internal/isa"
	"vexsmt/internal/vexmach"
)

func main() {
	geom := isa.ST200x4

	// --- 1. Figure 3: the register swap, split at operation level. -------
	swapSrc := `
  c0 mov $r3 = 111
  c0 mov $r5 = 222
;;
  c0 mov $r3 = $r5   # both movs belong to ONE instruction:
  c0 mov $r5 = $r3   # a legal single-cycle register swap
;;
`
	prog := asm.MustAssemble(geom, 0x1000, swapSrc)
	m := vexmach.MustNew(geom)
	m.SetPC(prog.Base)
	if err := m.Exec(prog.Instrs[0]); err != nil {
		log.Fatal(err)
	}
	s := m.Begin(prog.Instrs[1])
	// Issue the two movs in two separate "cycles" — the hazardous order of
	// Figure 3(c). Phase I writes go to the delay buffer, so the second mov
	// still reads the OLD $r3.
	one := isa.BundleDemand{Ops: 1, ALU: 1}
	if err := s.IssueOpCounts(0, one); err != nil {
		log.Fatal(err)
	}
	if err := s.IssueOpCounts(0, one); err != nil {
		log.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 3 swap, split across two cycles: r3=%d r5=%d (want 222, 111)\n",
		m.Reg(0, 3), m.Reg(0, 5))

	// --- 2. Figure 12(d): recv issues ahead of send. ---------------------
	commSrc := `
  c0 mov $r3 = 4242
;;
  c0 send $r3 -> c1
  c1 recv $r5 <- c0
;;
`
	prog2 := asm.MustAssemble(geom, 0x2000, commSrc)
	m2 := vexmach.MustNew(geom)
	m2.SetPC(prog2.Base)
	if err := m2.Exec(prog2.Instrs[0]); err != nil {
		log.Fatal(err)
	}
	s2 := m2.Begin(prog2.Instrs[1])
	if err := s2.IssueCluster(1); err != nil { // recv FIRST: pends in the network
		log.Fatal(err)
	}
	if err := s2.IssueCluster(0); err != nil { // send arrives later, delivers
		log.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 12(d) recv-before-send: c1.$r5=%d (want 4242)\n", m2.Reg(1, 5))

	// --- 3. Precise exception with a split-issued store in flight. -------
	m3 := vexmach.MustNew(geom)
	m3.SetReg(0, 1, 0x10000) // valid store base
	m3.SetReg(0, 2, 777)
	m3.SetReg(1, 1, 0x10002) // misaligned load base
	before := m3.Clone()
	in := &isa.Instruction{}
	in.Bundles[0] = isa.Bundle{{Op: isa.Stw, Src1: 1, Src2: 2, Imm: 0}}
	in.Bundles[1] = isa.Bundle{{Op: isa.Ldw, Dest: 3, Src1: 1, Imm: 0}}
	s3 := m3.Begin(in)
	if err := s3.IssueCluster(0); err != nil {
		log.Fatal(err)
	}
	err := s3.IssueCluster(1) // faults: misaligned load
	fmt.Printf("exception raised by second part: %v\n", err != nil)
	fmt.Printf("buffered store rolled back: mem[0x10000]=%d (want 0), state unchanged: %v\n",
		m3.Mem().Peek(0x10000), m3.Diff(before) == "")
}

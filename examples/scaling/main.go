// Scaling studies how throughput grows with hardware thread contexts
// (1 → 2 → 4 → 8) for cluster-level merging with and without split-issue —
// the axis along which the paper chooses its 2-thread and 4-thread
// evaluation points. Runs entirely on the public pkg/vexsmt API.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"vexsmt/pkg/vexsmt"
)

func main() {
	ctx := context.Background()
	svc, err := vexsmt.New(vexsmt.WithScale(500), vexsmt.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	threads := []int{1, 2, 4, 8}

	fmt.Println("thread scaling on workload llmh (mcf blowfish cjpeg x264)")
	fmt.Println()
	fmt.Printf("%-8s", "threads")
	for _, th := range threads {
		fmt.Printf("%8dT", th)
	}
	fmt.Println()

	for _, tech := range []string{"CSMT", "CCSI AS", "SMT"} {
		points, err := svc.ThreadScaling(ctx, "llmh", tech, threads)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", tech)
		for _, p := range points {
			fmt.Printf("%9.3f", p.IPC)
		}
		fmt.Println()
	}

	fmt.Println("\n" + strings.Repeat("-", 44))
	fmt.Println("CCSI's split-issue advantage over CSMT appears as soon as")
	fmt.Println("two threads contend for clusters and grows with contention.")
}

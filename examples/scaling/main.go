// Scaling studies how throughput grows with hardware thread contexts
// (1 → 2 → 4 → 8) for cluster-level merging with and without split-issue —
// the axis along which the paper chooses its 2-thread and 4-thread
// evaluation points.
package main

import (
	"fmt"
	"log"
	"strings"

	"vexsmt/internal/core"
	"vexsmt/internal/experiments"
	"vexsmt/internal/workload"
)

func main() {
	mix, err := workload.MixByLabel("llmh")
	if err != nil {
		log.Fatal(err)
	}
	threads := []int{1, 2, 4, 8}

	fmt.Printf("thread scaling on workload %s (%v)\n\n", mix.Label, mix.Benchmarks)
	fmt.Printf("%-8s", "threads")
	for _, th := range threads {
		fmt.Printf("%8dT", th)
	}
	fmt.Println()

	for _, tech := range []core.Technique{core.CSMT(), core.CCSI(core.CommAlwaysSplit), core.SMT()} {
		points, err := experiments.ThreadScaling(mix, tech, threads, 500, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", tech.Name())
		for _, p := range points {
			fmt.Printf("%9.3f", p.IPC)
		}
		fmt.Println()
	}

	fmt.Println("\n" + strings.Repeat("-", 44))
	fmt.Println("CCSI's split-issue advantage over CSMT appears as soon as")
	fmt.Println("two threads contend for clusters and grows with contention.")
}

// Package xbar models the fully-connected inter-cluster communication
// network of the base architecture (Section IV) together with the two
// buffering mechanisms Section V-E introduces so that split-issue cannot
// break VEX's requirement that send and recv issue simultaneously:
//
//   - if send executes ahead of recv, the transferred value is buffered in
//     the network until the recv executes (Figure 12c);
//   - if recv executes ahead of send, the recv records its destination
//     register in a pending-recv buffer; when the data arrives it is
//     written directly to the register file, which is guaranteed a free
//     write port by the partitioned organization (Figure 12d).
package xbar

import "fmt"

// Channel identifies one directed cluster-to-cluster link of one thread.
type Channel struct {
	Thread int
	Src    int // sending cluster
	Dst    int // receiving cluster
}

// Pending describes a recv that executed before its data arrived.
type Pending struct {
	DestReg uint8 // destination register number saved by the early recv
}

// Network is the inter-cluster interconnect. Each (thread, src, dst)
// channel holds at most one in-flight value, which matches VEX semantics:
// send/recv pairs belong to the same VLIW instruction, and a thread has at
// most one instruction in flight.
type Network struct {
	data    map[Channel]int32
	pending map[Channel]Pending
	// Deliveries collects (channel, reg, value) triples fulfilled by Send
	// for an earlier pending recv; the caller drains them into the
	// register file.
	deliveries []Delivery
}

// Delivery is a register write the network performs on behalf of an early
// recv once the matching send arrives.
type Delivery struct {
	Ch    Channel
	Reg   uint8
	Value int32
}

// New returns an empty network.
func New() *Network {
	return &Network{
		data:    make(map[Channel]int32),
		pending: make(map[Channel]Pending),
	}
}

// Send places a value on the channel. If a recv already executed and left a
// pending destination register, the value is converted into a Delivery for
// the caller to apply; otherwise it is buffered until the recv executes.
// A second send on a busy channel is a program error.
func (n *Network) Send(ch Channel, val int32) error {
	if p, ok := n.pending[ch]; ok {
		delete(n.pending, ch)
		n.deliveries = append(n.deliveries, Delivery{Ch: ch, Reg: p.DestReg, Value: val})
		return nil
	}
	if _, busy := n.data[ch]; busy {
		return fmt.Errorf("xbar: channel %+v already holds an in-flight value", ch)
	}
	n.data[ch] = val
	return nil
}

// Recv attempts to read the value on the channel. If the send already
// executed, the buffered value is returned with ok=true (Figure 12c).
// Otherwise the recv is registered as pending with its destination register
// (Figure 12d) and ok=false; the caller must apply the eventual Delivery.
func (n *Network) Recv(ch Channel, destReg uint8) (val int32, ok bool, err error) {
	if v, present := n.data[ch]; present {
		delete(n.data, ch)
		return v, true, nil
	}
	if _, dup := n.pending[ch]; dup {
		return 0, false, fmt.Errorf("xbar: duplicate pending recv on channel %+v", ch)
	}
	n.pending[ch] = Pending{DestReg: destReg}
	return 0, false, nil
}

// DrainDeliveries returns and clears the register writes produced by sends
// that matched pending recvs.
func (n *Network) DrainDeliveries() []Delivery {
	d := n.deliveries
	n.deliveries = nil
	return d
}

// Quiesced reports whether the network holds no in-flight values, pending
// recvs or undelivered register writes. At every VLIW instruction boundary
// of a thread the network must be quiesced, because VEX pairs send and recv
// within one instruction.
func (n *Network) Quiesced() bool {
	return len(n.data) == 0 && len(n.pending) == 0 && len(n.deliveries) == 0
}

// InFlight returns the number of buffered (sent, not yet received) values.
func (n *Network) InFlight() int { return len(n.data) }

// PendingRecvs returns the number of recvs waiting for data.
func (n *Network) PendingRecvs() int { return len(n.pending) }

// Reset discards all state (context switch / exception rollback).
func (n *Network) Reset() {
	n.data = make(map[Channel]int32)
	n.pending = make(map[Channel]Pending)
	n.deliveries = nil
}

package xbar

import "testing"

func ch() Channel { return Channel{Thread: 0, Src: 0, Dst: 1} }

// Figure 12(b): send and recv issue in the same cycle — modelled as send
// then recv back-to-back with no intervening state.
func TestSendThenRecvSameCycle(t *testing.T) {
	n := New()
	if err := n.Send(ch(), 1234); err != nil {
		t.Fatal(err)
	}
	v, ok, err := n.Recv(ch(), 5)
	if err != nil || !ok || v != 1234 {
		t.Fatalf("recv = %d, %v, %v", v, ok, err)
	}
	if !n.Quiesced() {
		t.Fatal("network not quiesced")
	}
}

// Figure 12(c): send issued ahead of recv — data buffered in the network.
func TestEarlySendBuffered(t *testing.T) {
	n := New()
	if err := n.Send(ch(), 77); err != nil {
		t.Fatal(err)
	}
	if n.InFlight() != 1 {
		t.Fatalf("in flight = %d", n.InFlight())
	}
	v, ok, err := n.Recv(ch(), 5)
	if err != nil || !ok || v != 77 {
		t.Fatalf("recv = %d, %v, %v", v, ok, err)
	}
	if !n.Quiesced() {
		t.Fatal("not quiesced after transfer")
	}
}

// Figure 12(d): recv issued ahead of send — destination register saved,
// data delivered when the send arrives.
func TestEarlyRecvPendingDelivery(t *testing.T) {
	n := New()
	v, ok, err := n.Recv(ch(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("recv returned data %d before send", v)
	}
	if n.PendingRecvs() != 1 {
		t.Fatalf("pending = %d", n.PendingRecvs())
	}
	if err := n.Send(ch(), 555); err != nil {
		t.Fatal(err)
	}
	ds := n.DrainDeliveries()
	if len(ds) != 1 || ds[0].Reg != 9 || ds[0].Value != 555 {
		t.Fatalf("deliveries = %+v", ds)
	}
	if !n.Quiesced() {
		t.Fatal("not quiesced after delivery drained")
	}
}

func TestDoubleSendRejected(t *testing.T) {
	n := New()
	_ = n.Send(ch(), 1)
	if err := n.Send(ch(), 2); err == nil {
		t.Fatal("double send accepted")
	}
}

func TestDuplicatePendingRecvRejected(t *testing.T) {
	n := New()
	_, _, _ = n.Recv(ch(), 1)
	if _, _, err := n.Recv(ch(), 2); err == nil {
		t.Fatal("duplicate pending recv accepted")
	}
}

func TestChannelsIndependent(t *testing.T) {
	n := New()
	a := Channel{Thread: 0, Src: 0, Dst: 1}
	b := Channel{Thread: 0, Src: 1, Dst: 0}
	c := Channel{Thread: 1, Src: 0, Dst: 1}
	_ = n.Send(a, 1)
	_ = n.Send(b, 2)
	_ = n.Send(c, 3)
	if v, ok, _ := n.Recv(c, 0); !ok || v != 3 {
		t.Fatal("thread channels interfere")
	}
	if v, ok, _ := n.Recv(b, 0); !ok || v != 2 {
		t.Fatal("direction channels interfere")
	}
	if v, ok, _ := n.Recv(a, 0); !ok || v != 1 {
		t.Fatal("channel a lost")
	}
}

func TestReset(t *testing.T) {
	n := New()
	_ = n.Send(ch(), 1)
	_, _, _ = n.Recv(Channel{Thread: 2, Src: 1, Dst: 3}, 4)
	n.Reset()
	if !n.Quiesced() {
		t.Fatal("reset did not quiesce")
	}
}

func TestDrainEmpty(t *testing.T) {
	n := New()
	if ds := n.DrainDeliveries(); len(ds) != 0 {
		t.Fatalf("deliveries on fresh network: %+v", ds)
	}
}

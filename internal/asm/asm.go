// Package asm implements a small VEX-flavoured assembler for the functional
// machine. It exists so examples and tests can express clustered VLIW
// programs readably instead of as struct literals.
//
// Syntax (one operation per line, ";;" ends a VLIW instruction, "#" starts
// a comment, "label:" names the next instruction):
//
//	start:
//	  c0 mov $r1 = 100
//	  c1 ldw $r5 = 8[$r1]
//	  c0 send $r3 -> c1
//	  c1 recv $r6 <- c0
//	;;
//	  c0 cmplt $b0 = $r1, $r2
//	;;
//	  c0 br $b0, start
//	;;
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"vexsmt/internal/isa"
	"vexsmt/internal/vexmach"
)

// Error reports an assembly problem with its line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses source into a program laid out at base for the given
// geometry.
func Assemble(geom isa.Geometry, base uint64, src string) (*vexmach.Program, error) {
	lines := strings.Split(src, "\n")

	type pendingOp struct {
		line    int
		cluster int
		op      isa.Operation
		label   string // unresolved branch target
	}
	type pendingIns struct {
		ops []pendingOp
	}

	var instrs []pendingIns
	labels := make(map[string]int) // label -> instruction index
	cur := pendingIns{}
	flush := func() {
		if len(cur.ops) > 0 {
			instrs = append(instrs, cur)
			cur = pendingIns{}
		}
	}

	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == ";;" {
			flush()
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, errf(ln+1, "duplicate label %q", name)
			}
			flush() // a label starts a fresh instruction
			labels[name] = len(instrs)
			continue
		}
		op, cluster, label, err := parseOp(ln+1, line)
		if err != nil {
			return nil, err
		}
		cur.ops = append(cur.ops, pendingOp{line: ln + 1, cluster: cluster, op: op, label: label})
	}
	flush()

	out := make([]*isa.Instruction, len(instrs))
	for i, pi := range instrs {
		in := &isa.Instruction{}
		for _, po := range pi.ops {
			if po.cluster >= geom.Clusters {
				return nil, errf(po.line, "cluster c%d out of range (machine has %d)", po.cluster, geom.Clusters)
			}
			op := po.op
			if po.label != "" {
				idx, ok := labels[po.label]
				if !ok {
					return nil, errf(po.line, "undefined label %q", po.label)
				}
				op.Target = uint32(base + uint64(idx)*vexmach.InstrBytes)
			}
			in.Bundles[po.cluster] = append(in.Bundles[po.cluster], op)
		}
		out[i] = in
	}
	p, err := vexmach.NewProgram(geom, base, out)
	if err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

// MustAssemble is Assemble panicking on error, for tests and examples with
// known-good sources.
func MustAssemble(geom isa.Geometry, base uint64, src string) *vexmach.Program {
	p, err := Assemble(geom, base, src)
	if err != nil {
		panic(err)
	}
	return p
}

// parseOp parses one "cN mnemonic operands" line. For branch operations it
// may return a label name to resolve later.
func parseOp(line int, s string) (isa.Operation, int, string, error) {
	var op isa.Operation
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return op, 0, "", errf(line, "expected 'cN mnemonic ...', got %q", s)
	}
	if !strings.HasPrefix(fields[0], "c") {
		return op, 0, "", errf(line, "operation must start with a cluster (cN), got %q", fields[0])
	}
	cluster, err := strconv.Atoi(fields[0][1:])
	if err != nil || cluster < 0 || cluster >= isa.MaxClusters {
		return op, 0, "", errf(line, "bad cluster %q", fields[0])
	}
	opcode, ok := isa.ParseOpcode(fields[1])
	if !ok {
		return op, 0, "", errf(line, "unknown mnemonic %q", fields[1])
	}
	op.Op = opcode
	op.Dest, op.Src1, op.Src2 = isa.RegNone, isa.RegNone, isa.RegNone
	op.BDest, op.BSrc = isa.BRegNone, isa.BRegNone
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(s, fields[0]), " "))
	rest = strings.TrimSpace(strings.TrimPrefix(rest, fields[1]))

	switch opcode {
	case isa.Nop:
		return op, cluster, "", nil

	case isa.Ldw: // $rD = imm[$rS]
		d, mem, found := cut(rest, "=")
		if !found {
			return op, 0, "", errf(line, "ldw syntax: $rD = imm[$rS]")
		}
		if op.Dest, err = parseGPR(d); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		if op.Imm, op.Src1, err = parseMemRef(mem); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		return op, cluster, "", nil

	case isa.Stw: // imm[$rS] = $rV
		mem, v, found := cut(rest, "=")
		if !found {
			return op, 0, "", errf(line, "stw syntax: imm[$rS] = $rV")
		}
		if op.Imm, op.Src1, err = parseMemRef(mem); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		if op.Src2, err = parseGPR(v); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		return op, cluster, "", nil

	case isa.Br, isa.Brf: // $bN, target
		b, tgt, found := cut(rest, ",")
		if !found {
			return op, 0, "", errf(line, "%s syntax: $bN, target", opcode)
		}
		if op.BSrc, err = parseBR(b); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		return finishTarget(op, cluster, line, tgt)

	case isa.Goto: // target
		return finishTarget(op, cluster, line, rest)

	case isa.Send: // $rS -> cN
		src, dst, found := cut(rest, "->")
		if !found {
			return op, 0, "", errf(line, "send syntax: $rS -> cN")
		}
		if op.Src1, err = parseGPR(src); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		t, err := parseCluster(dst)
		if err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		op.Target = uint32(t)
		return op, cluster, "", nil

	case isa.Recv: // $rD <- cN
		d, src, found := cut(rest, "<-")
		if !found {
			return op, 0, "", errf(line, "recv syntax: $rD <- cN")
		}
		if op.Dest, err = parseGPR(d); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		t, err := parseCluster(src)
		if err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		op.Target = uint32(t)
		return op, cluster, "", nil

	case isa.CmpEQ, isa.CmpNE, isa.CmpLT, isa.CmpGE: // $bD = $rS, $rS2|imm
		d, srcs, found := cut(rest, "=")
		if !found {
			return op, 0, "", errf(line, "compare syntax: $bD = $rS, src2")
		}
		if op.BDest, err = parseBR(d); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		if err = parseTwoSources(&op, srcs); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		return op, cluster, "", nil

	case isa.Mov: // $rD = $rS | imm
		d, src, found := cut(rest, "=")
		if !found {
			return op, 0, "", errf(line, "mov syntax: $rD = src")
		}
		if op.Dest, err = parseGPR(d); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		src = strings.TrimSpace(src)
		if strings.HasPrefix(src, "$r") {
			if op.Src1, err = parseGPR(src); err != nil {
				return op, 0, "", errf(line, "%v", err)
			}
		} else {
			imm, err := parseImm(src)
			if err != nil {
				return op, 0, "", errf(line, "%v", err)
			}
			op.Imm, op.UseImm = imm, true
		}
		return op, cluster, "", nil

	default: // three-operand ALU/MUL: $rD = $rS, $rS2|imm
		d, srcs, found := cut(rest, "=")
		if !found {
			return op, 0, "", errf(line, "%s syntax: $rD = $rS, src2", opcode)
		}
		if op.Dest, err = parseGPR(d); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		if err = parseTwoSources(&op, srcs); err != nil {
			return op, 0, "", errf(line, "%v", err)
		}
		return op, cluster, "", nil
	}
}

func finishTarget(op isa.Operation, cluster, line int, tgt string) (isa.Operation, int, string, error) {
	tgt = strings.TrimSpace(tgt)
	if tgt == "" {
		return op, 0, "", errf(line, "missing branch target")
	}
	if strings.HasPrefix(tgt, "0x") {
		v, err := strconv.ParseUint(tgt[2:], 16, 32)
		if err != nil {
			return op, 0, "", errf(line, "bad address %q", tgt)
		}
		op.Target = uint32(v)
		return op, cluster, "", nil
	}
	return op, cluster, tgt, nil // label, resolved later
}

func parseTwoSources(op *isa.Operation, s string) error {
	a, b, found := cut(s, ",")
	if !found {
		return fmt.Errorf("expected two sources %q", s)
	}
	var err error
	if op.Src1, err = parseGPR(a); err != nil {
		return err
	}
	b = strings.TrimSpace(b)
	if strings.HasPrefix(b, "$r") {
		op.Src2, err = parseGPR(b)
		return err
	}
	imm, err := parseImm(b)
	if err != nil {
		return err
	}
	op.Imm, op.UseImm = imm, true
	return nil
}

func cut(s, sep string) (string, string, bool) {
	i := strings.Index(s, sep)
	if i < 0 {
		return s, "", false
	}
	return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+len(sep):]), true
}

func parseGPR(s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$r") {
		return isa.RegNone, fmt.Errorf("expected $rN, got %q", s)
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 || n >= isa.NumGPR {
		return isa.RegNone, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func parseBR(s string) (isa.BReg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$b") {
		return isa.BRegNone, fmt.Errorf("expected $bN, got %q", s)
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 || n >= isa.NumBR {
		return isa.BRegNone, fmt.Errorf("bad branch register %q", s)
	}
	return isa.BReg(n), nil
}

func parseCluster(s string) (int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "c") {
		return 0, fmt.Errorf("expected cN, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.MaxClusters {
		return 0, fmt.Errorf("bad cluster %q", s)
	}
	return n, nil
}

func parseImm(s string) (int32, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

// parseMemRef parses "imm[$rS]".
func parseMemRef(s string) (int32, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '[')
	closeB := strings.IndexByte(s, ']')
	if open < 0 || closeB < open {
		return 0, isa.RegNone, fmt.Errorf("expected imm[$rS], got %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	imm := int32(0)
	if immStr != "" {
		v, err := parseImm(immStr)
		if err != nil {
			return 0, isa.RegNone, err
		}
		imm = v
	}
	r, err := parseGPR(s[open+1 : closeB])
	if err != nil {
		return 0, isa.RegNone, err
	}
	return imm, r, nil
}

// Disassemble renders a program back to assembler text.
func Disassemble(p *vexmach.Program) string {
	var b strings.Builder
	for i, in := range p.Instrs {
		fmt.Fprintf(&b, "# 0x%x (instr %d)\n", p.AddrOf(i), i)
		for c := range in.Bundles {
			for j := range in.Bundles[c] {
				fmt.Fprintf(&b, "  c%d %s\n", c, in.Bundles[c][j].String())
			}
		}
		b.WriteString(";;\n")
	}
	return b.String()
}

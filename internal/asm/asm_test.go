package asm

import (
	"strings"
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/vexmach"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
# compute (3 + 4) * 2 on cluster 0
  c0 mov $r1 = 3
  c0 mov $r2 = 4
;;
  c0 add $r3 = $r1, $r2
;;
  c0 mpy $r4 = $r3, 2
;;
`
	p, err := Assemble(isa.ST200x4, 0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 3 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	m := vexmach.MustNew(isa.ST200x4)
	m.SetPC(p.Base)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(0, 4); got != 14 {
		t.Fatalf("$r4 = %d, want 14", got)
	}
}

func TestAssembleLoopWithLabels(t *testing.T) {
	src := `
  c0 mov $r1 = 0      # counter
  c0 mov $r2 = 0      # sum
;;
loop:
  c0 add $r1 = $r1, 1
;;
  c0 add $r2 = $r2, $r1
  c0 cmplt $b0 = $r1, 10
;;
  c0 br $b0, loop
;;
`
	p, err := Assemble(isa.ST200x4, 0x2000, src)
	if err != nil {
		t.Fatal(err)
	}
	m := vexmach.MustNew(isa.ST200x4)
	m.SetPC(p.Base)
	if _, err := m.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(0, 2); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestAssembleMemoryOps(t *testing.T) {
	src := `
  c0 mov $r1 = 0x10000
  c0 mov $r2 = 77
;;
  c0 stw 8[$r1] = $r2
;;
  c0 ldw $r3 = 8[$r1]
;;
`
	p := MustAssemble(isa.ST200x4, 0, src)
	m := vexmach.MustNew(isa.ST200x4)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 3) != 77 {
		t.Fatalf("$r3 = %d", m.Reg(0, 3))
	}
}

func TestAssembleSendRecv(t *testing.T) {
	src := `
  c0 mov $r3 = 1234
;;
  c0 send $r3 -> c1
  c1 recv $r5 <- c0
;;
`
	p := MustAssemble(isa.ST200x4, 0, src)
	m := vexmach.MustNew(isa.ST200x4)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Reg(1, 5) != 1234 {
		t.Fatalf("$r5@c1 = %d", m.Reg(1, 5))
	}
}

func TestAssembleGotoHexAddress(t *testing.T) {
	src := `
  c0 goto 0x40
;;
  c0 mov $r1 = 1   # skipped
;;
  c0 mov $r2 = 2   # not reached either (0x40 is past the program)
;;
`
	p := MustAssemble(isa.ST200x4, 0, src)
	m := vexmach.MustNew(isa.ST200x4)
	steps, err := m.Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 || m.Reg(0, 1) != 0 {
		t.Fatalf("steps=%d r1=%d", steps, m.Reg(0, 1))
	}
}

func TestAssembleBrfAndNop(t *testing.T) {
	src := `
  c0 cmpeq $b1 = $r1, 99
  c1 nop
;;
  c0 brf $b1, skip
;;
  c0 mov $r5 = 1 # executed only if $r1 == 99
;;
skip:
  c0 mov $r6 = 2
;;
`
	p := MustAssemble(isa.ST200x4, 0, src)
	m := vexmach.MustNew(isa.ST200x4)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 5) != 0 || m.Reg(0, 6) != 2 {
		t.Fatalf("r5=%d r6=%d", m.Reg(0, 5), m.Reg(0, 6))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "c0 frob $r1 = $r2, $r3\n;;\n"},
		{"bad cluster", "c9 add $r1 = $r2, $r3\n;;\n"},
		{"cluster out of geometry", "c5 add $r1 = $r2, $r3\n;;\n"},
		{"bad register", "c0 add $r99 = $r2, $r3\n;;\n"},
		{"missing equals", "c0 add $r1 $r2, $r3\n;;\n"},
		{"undefined label", "c0 goto nowhere\n;;\n"},
		{"duplicate label", "x:\nc0 nop\n;;\nx:\nc0 nop\n;;\n"},
		{"no cluster prefix", "add $r1 = $r2, $r3\n;;\n"},
		{"too many mem ops", "c0 ldw $r1 = 0[$r2]\nc0 stw 0[$r2] = $r1\n;;\n"},
		{"bad send", "c0 send $r1\n;;\n"},
		{"bad memref", "c0 ldw $r1 = $r2\n;;\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(isa.ST200x4, 0, c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble(isa.ST200x4, 0, "c0 nop\n;;\nc0 bogus $r1 = $r2, $r3\n;;\n")
	if err == nil {
		t.Fatal("no error")
	}
	var ae *Error
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q lacks line number", err)
	}
	_ = ae
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
  c0 add $r1 = $r2, $r3
  c1 ldw $r4 = 16[$r6]
  c2 stw 4[$r6] = $r2
  c3 mov $r9 = -5
;;
  c0 send $r3 -> c1
  c1 recv $r5 <- c0
;;
`
	p := MustAssemble(isa.ST200x4, 0, src)
	text := Disassemble(p)
	// Re-assemble the disassembly: same instruction count and semantics.
	p2, err := Assemble(isa.ST200x4, 0, text)
	if err != nil {
		t.Fatalf("disassembly does not re-assemble: %v\n%s", err, text)
	}
	if len(p2.Instrs) != len(p.Instrs) {
		t.Fatalf("instruction count changed: %d -> %d", len(p.Instrs), len(p2.Instrs))
	}
	for i := range p.Instrs {
		for c := range p.Instrs[i].Bundles {
			if len(p.Instrs[i].Bundles[c]) != len(p2.Instrs[i].Bundles[c]) {
				t.Fatalf("instr %d cluster %d op count changed", i, c)
			}
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	p, err := Assemble(isa.ST200x4, 0, "# nothing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 0 {
		t.Fatal("instructions from empty source")
	}
}

package asm

import (
	"testing"

	"vexsmt/internal/isa"
)

// FuzzAssemble feeds arbitrary source to the VEX assembler: corrupt
// programs must come back as *Error values, never as panics, and
// anything that assembles must survive Disassemble.
func FuzzAssemble(f *testing.F) {
	f.Add("c0 mov $r1 = 3\n;;\n")
	f.Add("# comment only\n")
	f.Add("loop:\n  c0 add $r1 = $r1, 1\n;;\n  c0 br $b0, loop\n;;\n")
	f.Add("c0 ldw $r2 = 8[$r1]\n  c0 stw 0[$r2] = $r1\n;;\n")
	f.Add("c1 send $r1\n  c0 recv $r3\n;;\n")
	f.Add("c0 cmplt $b7 = $r63, -2147483648\n;;\n")
	f.Add("c9 bogus $$$ = ,,,\n")
	f.Add("c0 mov $r1 = 99999999999999999999\n;;\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(isa.ST200x4, 0x1000, src)
		if err != nil {
			if p != nil {
				t.Fatal("Assemble returned both a program and an error")
			}
			return
		}
		Disassemble(p)
	})
}

package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, MissPenalty: 20}
}

func TestConfigValidate(t *testing.T) {
	if err := Paper64KB4Way.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4},
		{SizeBytes: 1024, LineBytes: 48, Ways: 4},
		{SizeBytes: 1000, LineBytes: 64, Ways: 4},
		{SizeBytes: 64 << 10, LineBytes: 64, Ways: 3}, // 341.33 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(small())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1004) {
		t.Fatal("same-line access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(small()) // 2 ways, 8 sets, 64B lines; set stride = 512B
	// Three lines mapping to the same set: line ids 0, 8, 16.
	a0, a1, a2 := uint64(0), uint64(8*64), uint64(16*64)
	c.Access(a0) // miss
	c.Access(a1) // miss
	c.Access(a0) // hit, a1 is now LRU
	c.Access(a2) // miss, evicts a1
	if !c.Probe(a0) {
		t.Fatal("a0 evicted, expected a1")
	}
	if c.Probe(a1) {
		t.Fatal("a1 still resident")
	}
	if !c.Access(a2) {
		t.Fatal("a2 not resident after allocation")
	}
}

func TestAccessPenalty(t *testing.T) {
	c := MustNew(small())
	if p := c.AccessPenalty(0x40); p != 20 {
		t.Fatalf("miss penalty = %d, want 20", p)
	}
	if p := c.AccessPenalty(0x40); p != 0 {
		t.Fatalf("hit penalty = %d, want 0", p)
	}
}

func TestProbeDoesNotAllocate(t *testing.T) {
	c := MustNew(small())
	if c.Probe(0x80) {
		t.Fatal("probe hit on empty cache")
	}
	st := c.Stats()
	if st.Accesses != 0 {
		t.Fatal("probe counted as access")
	}
	if c.Access(0x80) {
		t.Fatal("probe must not allocate")
	}
}

func TestFlushAndInvalidate(t *testing.T) {
	c := MustNew(small())
	c.Access(0x100)
	c.Invalidate()
	if c.Probe(0x100) {
		t.Fatal("line survived invalidate")
	}
	if c.Stats().Accesses != 1 {
		t.Fatal("invalidate cleared stats")
	}
	c.Flush()
	if c.Stats().Accesses != 0 {
		t.Fatal("flush kept stats")
	}
}

func TestWorkingSetFitsNoSteadyStateMisses(t *testing.T) {
	c := MustNew(Paper64KB4Way)
	// A 32 KB working set fits in a 64 KB cache: after one warm pass there
	// must be no further misses.
	const ws = 32 << 10
	for a := uint64(0); a < ws; a += 64 {
		c.Access(a)
	}
	before := c.Stats().Misses
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			c.Access(a)
		}
	}
	if got := c.Stats().Misses; got != before {
		t.Fatalf("steady-state misses: %d -> %d", before, got)
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	c := MustNew(Paper64KB4Way)
	// A 256 KB sequential working set with LRU misses on every access.
	const ws = 256 << 10
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			c.Access(a)
		}
	}
	st := c.Stats()
	if st.MissRate() < 0.99 {
		t.Fatalf("LRU thrash miss rate = %v, want ~1", st.MissRate())
	}
}

func TestMissRateZeroOnNoAccesses(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("MissRate on empty stats != 0")
	}
}

func TestDistinctTagsSameSet(t *testing.T) {
	// Property: a line is always resident immediately after Access.
	c := MustNew(small())
	f := func(addr uint64) bool {
		c.Access(addr)
		return c.Probe(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialStreamMissRate(t *testing.T) {
	// Streaming through memory misses once per line: miss rate = 4/64 for
	// 4-byte accesses on 64-byte lines.
	c := MustNew(Paper64KB4Way)
	const n = 1 << 20
	for a := uint64(0); a < n; a += 4 {
		c.Access(a)
	}
	got := c.Stats().MissRate()
	want := 4.0 / 64.0
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("stream miss rate = %v, want ~%v", got, want)
	}
}

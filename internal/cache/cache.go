// Package cache implements the set-associative cache model used for the
// instruction and data caches of the base architecture: the paper assumes a
// single-level 64 KB 4-way set-associative cache with a 20-cycle miss
// penalty for both ICache and DCache (no L2), Section VI-A.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	SizeBytes   int // total capacity
	LineBytes   int // line (block) size
	Ways        int // associativity
	MissPenalty int // cycles added on a miss
}

// Paper64KB4Way is the paper's cache configuration. The paper does not state
// the line size; 64-byte lines are the ST200 documented line size.
var Paper64KB4Way = Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, MissPenalty: 20}

// Validate checks the configuration for consistency (power-of-two geometry).
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by way size", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats accumulates cache accesses.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when no accesses have happened).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement. It models tag
// state only (no data): the simulator needs hit/miss timing, while data
// correctness is owned by the functional machine's flat memory.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	lineBits uint
	setMask  uint64
	tags     []uint64 // sets*ways entries
	valid    []bool
	lru      []uint32 // per-entry LRU stamp; larger = more recent
	clock    uint32
	stats    Stats
}

// New builds a cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	n := sets * cfg.Ways
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		lru:      make([]uint32, n),
	}, nil
}

// MustNew is New but panics on configuration error; for tests and fixed
// known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Access looks up addr, updating LRU state and allocating on miss
// (write-allocate for stores, which matches a blocking first-level cache
// with fetch-on-write). It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line >> 1 // keep full line id as tag (shifted to avoid set bits aliasing is unnecessary; full id is unique)
	base := set * c.ways
	c.clock++
	victim, victimStamp := base, c.lru[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim, victimStamp = i, 0
		} else if c.lru[i] < victimStamp {
			victim, victimStamp = i, c.lru[i]
		}
	}
	c.stats.Misses++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.lru[victim] = c.clock
	return false
}

// AccessPenalty performs Access and returns the stall penalty in cycles:
// 0 on hit, MissPenalty on miss.
func (c *Cache) AccessPenalty(addr uint64) int {
	if c.Access(addr) {
		return 0
	}
	return c.cfg.MissPenalty
}

// Probe reports whether addr currently hits without touching LRU or
// statistics and without allocating.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line >> 1
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and clears statistics. Used at context-switch
// points when simulating cold-cache policies and between benchmark runs.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}

// Invalidate clears tag state but keeps accumulated statistics.
func (c *Cache) Invalidate() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.clock = 0
}

// Package vexmach implements a functional clustered VLIW machine with VEX
// semantics: per-cluster register files (64 GPRs with $r0 hardwired to
// zero, 8 branch registers), a flat 32-bit memory, explicit inter-cluster
// send/recv copies, and — the part the paper's correctness argument rests
// on — split-issue execution sessions with register file and memory delay
// buffers (Section V-B) that keep the architectural state consistent and
// exceptions precise no matter in which order the parts of an instruction
// issue.
package vexmach

import "fmt"

const pageSize = 1 << 12

// Exception is a precise architectural exception. When an exception is
// raised during any part of an instruction, the machine state is rolled
// back to the boundary before that instruction.
type Exception struct {
	PC     uint64
	Addr   uint64
	Reason string
}

func (e *Exception) Error() string {
	return fmt.Sprintf("vexmach: exception at pc=0x%x addr=0x%x: %s", e.PC, e.Addr, e.Reason)
}

// Memory is a sparse paged 32-bit byte-addressable memory. Word accesses
// must be 4-byte aligned and must not touch the null page (first 4 KB);
// violations raise exceptions, which the tests use to exercise precise
// exception rollback.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	key := addr / pageSize
	p := m.pages[key]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

func (m *Memory) check(addr uint64, pc uint64) error {
	if addr < pageSize {
		return &Exception{PC: pc, Addr: addr, Reason: "null page access"}
	}
	if addr%4 != 0 {
		return &Exception{PC: pc, Addr: addr, Reason: "misaligned word access"}
	}
	if addr > 0xFFFF_FFFF {
		return &Exception{PC: pc, Addr: addr, Reason: "address beyond 32-bit space"}
	}
	return nil
}

// Load32 reads a little-endian word, raising an exception on misalignment
// or null page access.
func (m *Memory) Load32(addr uint64, pc uint64) (int32, error) {
	if err := m.check(addr, pc); err != nil {
		return 0, err
	}
	p := m.page(addr, false)
	if p == nil {
		return 0, nil // unbacked memory reads as zero
	}
	off := addr % pageSize
	v := uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	return int32(v), nil
}

// Store32 writes a little-endian word with the same checks as Load32.
func (m *Memory) Store32(addr uint64, val int32, pc uint64) error {
	if err := m.check(addr, pc); err != nil {
		return err
	}
	p := m.page(addr, true)
	off := addr % pageSize
	u := uint32(val)
	p[off], p[off+1], p[off+2], p[off+3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
	return nil
}

// Poke writes a word without exception checks (test/program setup).
func (m *Memory) Poke(addr uint64, val int32) {
	p := m.page(addr, true)
	off := addr % pageSize
	u := uint32(val)
	p[off], p[off+1], p[off+2], p[off+3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
}

// Peek reads a word without exception checks or allocation.
func (m *Memory) Peek(addr uint64) int32 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	off := addr % pageSize
	v := uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	return int32(v)
}

// Equal reports whether two memories have identical contents (unbacked
// pages compare equal to zero-filled pages).
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for key, p := range m.pages {
		q := o.pages[key]
		if q == nil {
			for _, b := range p {
				if b != 0 {
					return false
				}
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (used for golden-state comparisons in tests).
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for key, p := range m.pages {
		cp := *p
		c.pages[key] = &cp
	}
	return c
}

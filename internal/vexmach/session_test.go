package vexmach

import (
	"testing"

	"vexsmt/internal/isa"
)

func TestSessionDoneTracking(t *testing.T) {
	m := MustNew(isa.ST200x4)
	in := ins(map[int]isa.Bundle{
		0: {op(isa.Add, 3, 1, 2), op(isa.Sub, 4, 1, 2)},
		2: {op(isa.Xor, 5, 1, 2)},
	})
	s := m.Begin(in)
	if s.Done() {
		t.Fatal("fresh session done")
	}
	if err := s.IssueCluster(2); err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("done with cluster 0 outstanding")
	}
	if err := s.IssueCluster(0); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("not done after all clusters issued")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 3) == 0 && m.Reg(0, 4) == 0 && m.Reg(2, 5) == 0 {
		// registers were zero sources; just ensure PC advanced
	}
	if m.PC() != in.Addr+uint64(in.Size) {
		t.Fatal("PC did not advance")
	}
}

func TestIssueClusterIdempotent(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 5)
	in := ins(map[int]isa.Bundle{0: {opi(isa.Add, 2, 1, 1)}})
	s := m.Begin(in)
	if err := s.IssueCluster(0); err != nil {
		t.Fatal(err)
	}
	// Re-issuing an already-issued cluster must be a no-op, not a
	// double-execution.
	if err := s.IssueCluster(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(0, 2); got != 6 {
		t.Fatalf("$r2 = %d, want 6", got)
	}
}

func TestIssueOpCountsPartialBudgets(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 10)
	in := ins(map[int]isa.Bundle{0: {
		opi(isa.Add, 2, 1, 1), // ALU
		op(isa.Mpy, 3, 1, 1),  // MUL
		isa.Operation{Op: isa.Ldw, Dest: 4, Src1: 1, Imm: 0x10000 - 10},
	}})
	s := m.Begin(in)
	// Budget of one MUL only: the mpy issues, others wait.
	if err := s.IssueOpCounts(0, isa.BundleDemand{Ops: 1, Mul: 1}); err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("done too early")
	}
	// Budget of one ALU and one MEM: the rest issues.
	if err := s.IssueOpCounts(0, isa.BundleDemand{Ops: 2, ALU: 1, Mem: 1}); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("not done")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 2) != 11 || m.Reg(0, 3) != 100 {
		t.Fatalf("results: r2=%d r3=%d", m.Reg(0, 2), m.Reg(0, 3))
	}
}

func TestBufferedStoresCounter(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 0x10000)
	m.SetReg(1, 1, 0x11000)
	in := ins(map[int]isa.Bundle{
		0: {isa.Operation{Op: isa.Stw, Src1: 1, Src2: 2, Imm: 0}},
		1: {isa.Operation{Op: isa.Stw, Src1: 1, Src2: 2, Imm: 0}},
		2: {op(isa.Add, 3, 1, 2)},
	})
	s := m.Begin(in)
	_ = s.IssueCluster(0)
	if s.BufferedStores() != 1 {
		t.Fatalf("buffered = %d, want 1", s.BufferedStores())
	}
	_ = s.IssueCluster(1)
	if s.BufferedStores() != 2 {
		t.Fatalf("buffered = %d, want 2", s.BufferedStores())
	}
	_ = s.IssueCluster(2)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Mem().Peek(0x10000) != 0 && m.Mem().Peek(0x11000) != 0 {
		// values were zero ($r2 unset); presence is checked via no panic
	}
}

func TestTakenGetter(t *testing.T) {
	m := MustNew(isa.ST200x4)
	in := ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Goto, Target: 0x500}}})
	s := m.Begin(in)
	_ = s.IssueCluster(0)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !s.Taken() {
		t.Fatal("goto not reported taken")
	}
	if m.PC() != 0x500 {
		t.Fatalf("pc = 0x%x", m.PC())
	}
}

func TestSendToSameChannelTwiceFaults(t *testing.T) {
	m := MustNew(isa.ST200x4)
	in := ins(map[int]isa.Bundle{
		0: {
			isa.Operation{Op: isa.Send, Src1: 1, Target: 1},
			isa.Operation{Op: isa.Send, Src1: 2, Target: 1},
		},
		1: {isa.Operation{Op: isa.Recv, Dest: 5, Target: 0}},
	})
	s := m.Begin(in)
	if err := s.IssueCluster(0); err == nil {
		t.Fatal("double send on one channel accepted")
	}
	if !s.Failed() {
		t.Fatal("session not failed")
	}
}

func TestIllegalOpcodeFaults(t *testing.T) {
	m := MustNew(isa.ST200x4)
	in := ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Opcode(200)}}})
	if err := m.Exec(in); err == nil {
		t.Fatal("illegal opcode executed")
	}
}

func TestNopAndRegNoneWrites(t *testing.T) {
	m := MustNew(isa.ST200x4)
	golden := m.Clone()
	in := ins(map[int]isa.Bundle{0: {
		{Op: isa.Nop},
		{Op: isa.Add, Dest: isa.RegNone, Src1: 1, Src2: 2},
	}})
	in.Size = InstrBytes
	if err := m.Exec(in); err != nil {
		t.Fatal(err)
	}
	golden.SetPC(m.PC()) // only the PC may differ
	if d := m.Diff(golden); d != "" {
		t.Fatalf("nop/RegNone changed state: %s", d)
	}
}

func TestBranchRegisterWritesBuffered(t *testing.T) {
	// A compare and a branch reading the SAME branch register in one
	// instruction: the branch must see the OLD value (compare's write is
	// buffered until commit).
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 1)
	m.SetBranchReg(0, 0, false)
	in := ins(map[int]isa.Bundle{0: {
		isa.Operation{Op: isa.CmpEQ, BDest: 0, Src1: 1, Imm: 1, UseImm: true}, // sets $b0 = true
		isa.Operation{Op: isa.Br, BSrc: 0, Target: 0x900},                     // must read old false
	}})
	in.Addr = 0x100
	if err := m.Exec(in); err != nil {
		t.Fatal(err)
	}
	if m.PC() == 0x900 {
		t.Fatal("branch read the same-instruction compare result")
	}
	if !m.BranchReg(0, 0) {
		t.Fatal("compare result not committed")
	}
}

package vexmach

import (
	"fmt"

	"vexsmt/internal/isa"
)

// InstrBytes is the fixed encoded size the functional model assigns to each
// VLIW instruction. Branch targets are instruction addresses.
const InstrBytes = 16

// Program is a sequence of VLIW instructions laid out from Base. Execution
// halts when the PC leaves the program.
type Program struct {
	Base   uint64
	Instrs []*isa.Instruction
}

// NewProgram assigns addresses and sizes to the instructions and validates
// them against the geometry.
func NewProgram(geom isa.Geometry, base uint64, instrs []*isa.Instruction) (*Program, error) {
	for i, in := range instrs {
		if err := geom.ValidateInstruction(in); err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		in.Addr = base + uint64(i)*InstrBytes
		in.Size = InstrBytes
	}
	return &Program{Base: base, Instrs: instrs}, nil
}

// AddrOf returns the address of instruction index i.
func (p *Program) AddrOf(i int) uint64 { return p.Base + uint64(i)*InstrBytes }

// IndexOf maps an address to an instruction index.
func (p *Program) IndexOf(addr uint64) (int, bool) {
	if addr < p.Base || (addr-p.Base)%InstrBytes != 0 {
		return 0, false
	}
	i := int((addr - p.Base) / InstrBytes)
	if i >= len(p.Instrs) {
		return 0, false
	}
	return i, true
}

// Run executes the program atomically (one instruction per step) starting
// at the machine's PC until the PC leaves the program, an exception occurs,
// or maxSteps is exceeded. It returns the number of instructions executed.
func (m *Machine) Run(p *Program, maxSteps int) (int, error) {
	steps := 0
	for {
		idx, ok := p.IndexOf(m.pc)
		if !ok {
			return steps, nil // fell off the program: halt
		}
		if steps >= maxSteps {
			return steps, fmt.Errorf("vexmach: exceeded %d steps (runaway program?)", maxSteps)
		}
		if err := m.Exec(p.Instrs[idx]); err != nil {
			return steps, err
		}
		steps++
	}
}

// SplitOrder decides, for one instruction, the order in which cluster
// bundles issue across "cycles": each inner slice is one cycle's set of
// clusters. RunSplit uses it to exercise arbitrary split-issue interleavings.
type SplitOrder func(in *isa.Instruction) [][]int

// RunSplit executes the program with every instruction issued in parts
// according to order, exercising the delay-buffer machinery on every
// instruction. Architectural results must match Run exactly — that is the
// paper's correctness claim for cluster-level split-issue, and the property
// tests verify it.
func (m *Machine) RunSplit(p *Program, maxSteps int, order SplitOrder) (int, error) {
	steps := 0
	for {
		idx, ok := p.IndexOf(m.pc)
		if !ok {
			return steps, nil
		}
		if steps >= maxSteps {
			return steps, fmt.Errorf("vexmach: exceeded %d steps (runaway program?)", maxSteps)
		}
		in := p.Instrs[idx]
		s := m.Begin(in)
		for _, group := range order(in) {
			for _, c := range group {
				if len(in.Bundles[c]) == 0 || s.Done() {
					continue
				}
				if err := s.IssueCluster(c); err != nil {
					return steps, err
				}
			}
		}
		if !s.Done() {
			return steps, fmt.Errorf("vexmach: split order left operations unissued at pc=0x%x", m.pc)
		}
		if err := s.Commit(); err != nil {
			return steps, err
		}
		steps++
	}
}

// SequentialClusters is a SplitOrder issuing one cluster per cycle in
// increasing order — maximal cluster-level splitting.
func SequentialClusters(geom isa.Geometry) SplitOrder {
	return func(*isa.Instruction) [][]int {
		groups := make([][]int, geom.Clusters)
		for c := 0; c < geom.Clusters; c++ {
			groups[c] = []int{c}
		}
		return groups
	}
}

// ReverseClusters issues clusters highest-first, one per cycle.
func ReverseClusters(geom isa.Geometry) SplitOrder {
	return func(*isa.Instruction) [][]int {
		groups := make([][]int, geom.Clusters)
		for c := 0; c < geom.Clusters; c++ {
			groups[c] = []int{geom.Clusters - 1 - c}
		}
		return groups
	}
}

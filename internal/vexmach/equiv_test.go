package vexmach

// Property tests for the paper's central correctness claim: split-issue
// execution with delay buffers produces exactly the same architectural
// state as atomic VLIW execution, for every split ordering.

import (
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
)

// randomProgram builds a branch-free, compiler-legal program with ALU, MUL,
// MEM and (optionally) one send/recv pair per instruction, reading/writing
// registers r2..r15 and memory at 0x20000+.
func randomProgram(r *rng.Rand, g isa.Geometry, n int, commProb float64) []*isa.Instruction {
	instrs := make([]*isa.Instruction, 0, n+1)
	// Setup: every cluster's $r1 = memory base (cluster-dependent so stores
	// don't collide across clusters).
	setup := &isa.Instruction{}
	for c := 0; c < g.Clusters; c++ {
		setup.Bundles[c] = isa.Bundle{
			{Op: isa.Mov, Dest: 1, Imm: int32(0x20000 + c*0x1000), UseImm: true},
		}
	}
	instrs = append(instrs, setup)

	reg := func() isa.Reg { return isa.Reg(2 + r.Intn(14)) }
	for i := 0; i < n; i++ {
		in := &isa.Instruction{}
		// Destination registers must be unique per cluster within one
		// instruction: a WAW hazard inside an instruction is illegal VLIW
		// code (the compiler never schedules it), and its outcome would
		// depend on issue order.
		var destUsed [isa.MaxClusters][isa.NumGPR]bool
		dest := func(c int) isa.Reg {
			for {
				d := isa.Reg(2 + r.Intn(14))
				if !destUsed[c][d] {
					destUsed[c][d] = true
					return d
				}
			}
		}
		commSrc, commDst := -1, -1
		if r.Bool(commProb) && g.Clusters > 1 {
			commSrc = r.Intn(g.Clusters)
			commDst = (commSrc + 1 + r.Intn(g.Clusters-1)) % g.Clusters
		}
		for c := 0; c < g.Clusters; c++ {
			if r.Bool(0.3) && c != commSrc && c != commDst {
				continue // idle cluster
			}
			nops := 1 + r.Intn(g.IssueWidth)
			var b isa.Bundle
			var mems, muls int
			for len(b) < nops {
				switch k := r.Intn(10); {
				case k < 2 && mems < g.MemUnits:
					mems++
					if r.Bool(0.5) {
						b = append(b, isa.Operation{Op: isa.Ldw, Dest: dest(c), Src1: 1,
							Imm: int32(4 * r.Intn(64))})
					} else {
						b = append(b, isa.Operation{Op: isa.Stw, Src1: 1, Src2: reg(),
							Imm: int32(4 * r.Intn(64))})
					}
				case k < 4 && muls < g.Muls:
					muls++
					b = append(b, isa.Operation{Op: isa.Mpy, Dest: dest(c), Src1: reg(), Src2: reg()})
				default:
					ops := []isa.Opcode{isa.Add, isa.Sub, isa.Shl, isa.Shr, isa.And,
						isa.Or, isa.Xor, isa.Mov, isa.Max, isa.Min}
					o := ops[r.Intn(len(ops))]
					if r.Bool(0.3) {
						b = append(b, isa.Operation{Op: o, Dest: dest(c), Src1: reg(),
							Imm: int32(r.Intn(1000) - 500), UseImm: true})
					} else {
						b = append(b, isa.Operation{Op: o, Dest: dest(c), Src1: reg(), Src2: reg()})
					}
				}
			}
			in.Bundles[c] = b
		}
		if commSrc >= 0 {
			// Append the pair, keeping within issue width by construction:
			// comm clusters were not skipped and may exceed nops by one op,
			// so trim first if full.
			if len(in.Bundles[commSrc]) >= g.IssueWidth {
				in.Bundles[commSrc] = in.Bundles[commSrc][:g.IssueWidth-1]
			}
			if len(in.Bundles[commDst]) >= g.IssueWidth {
				in.Bundles[commDst] = in.Bundles[commDst][:g.IssueWidth-1]
			}
			in.Bundles[commSrc] = append(in.Bundles[commSrc],
				isa.Operation{Op: isa.Send, Src1: reg(), Target: uint32(commDst)})
			in.Bundles[commDst] = append(in.Bundles[commDst],
				isa.Operation{Op: isa.Recv, Dest: dest(commDst), Target: uint32(commSrc)})
		}
		instrs = append(instrs, in)
	}
	return instrs
}

func seedRegs(r *rng.Rand, m *Machine) {
	g := m.Geometry()
	for c := 0; c < g.Clusters; c++ {
		for reg := 2; reg < 16; reg++ {
			m.SetReg(c, isa.Reg(reg), int32(r.Uint32()))
		}
	}
}

func TestSplitEqualsAtomicSequentialOrder(t *testing.T) {
	r := rng.New(31337)
	for trial := 0; trial < 10; trial++ {
		instrs := randomProgram(r, isa.ST200x4, 40, 0.2)
		p, err := NewProgram(isa.ST200x4, 0x1000, instrs)
		if err != nil {
			t.Fatal(err)
		}
		seed := r.Uint64()

		golden := MustNew(isa.ST200x4)
		seedRegs(rng.New(seed), golden)
		golden.SetPC(p.Base)
		if _, err := golden.Run(p, 10000); err != nil {
			t.Fatalf("atomic run: %v", err)
		}

		for name, order := range map[string]SplitOrder{
			"sequential": SequentialClusters(isa.ST200x4),
			"reverse":    ReverseClusters(isa.ST200x4),
		} {
			m := MustNew(isa.ST200x4)
			seedRegs(rng.New(seed), m)
			m.SetPC(p.Base)
			if _, err := m.RunSplit(p, 10000, order); err != nil {
				t.Fatalf("%s split run: %v", name, err)
			}
			if d := m.Diff(golden); d != "" {
				t.Fatalf("trial %d, %s order: split != atomic: %s", trial, name, d)
			}
		}
	}
}

func TestSplitEqualsAtomicRandomOrders(t *testing.T) {
	r := rng.New(4242)
	perm := make([]int, isa.ST200x4.Clusters)
	randomOrder := func(*isa.Instruction) [][]int {
		r.Perm(perm)
		// Random grouping: each cluster lands in its own cycle or shares
		// with the previous one.
		var groups [][]int
		for _, c := range perm {
			if len(groups) > 0 && r.Bool(0.4) {
				groups[len(groups)-1] = append(groups[len(groups)-1], c)
			} else {
				groups = append(groups, []int{c})
			}
		}
		return groups
	}
	for trial := 0; trial < 15; trial++ {
		instrs := randomProgram(r, isa.ST200x4, 30, 0.3)
		p, err := NewProgram(isa.ST200x4, 0x1000, instrs)
		if err != nil {
			t.Fatal(err)
		}
		seed := r.Uint64()
		golden := MustNew(isa.ST200x4)
		seedRegs(rng.New(seed), golden)
		golden.SetPC(p.Base)
		if _, err := golden.Run(p, 10000); err != nil {
			t.Fatal(err)
		}
		m := MustNew(isa.ST200x4)
		seedRegs(rng.New(seed), m)
		m.SetPC(p.Base)
		if _, err := m.RunSplit(p, 10000, randomOrder); err != nil {
			t.Fatal(err)
		}
		if d := m.Diff(golden); d != "" {
			t.Fatalf("trial %d: random split order != atomic: %s", trial, d)
		}
	}
}

// Operation-level splitting (OOSI) must also match atomic execution: issue
// one operation at a time in random cluster order.
func TestOperationSplitEqualsAtomic(t *testing.T) {
	r := rng.New(999)
	g := isa.ST200x4
	for trial := 0; trial < 10; trial++ {
		instrs := randomProgram(r, g, 25, 0.25)
		p, err := NewProgram(g, 0x1000, instrs)
		if err != nil {
			t.Fatal(err)
		}
		seed := r.Uint64()
		golden := MustNew(g)
		seedRegs(rng.New(seed), golden)
		golden.SetPC(p.Base)
		if _, err := golden.Run(p, 10000); err != nil {
			t.Fatal(err)
		}

		m := MustNew(g)
		seedRegs(rng.New(seed), m)
		m.SetPC(p.Base)
		for {
			idx, ok := p.IndexOf(m.PC())
			if !ok {
				break
			}
			in := p.Instrs[idx]
			s := m.Begin(in)
			for !s.Done() {
				c := r.Intn(g.Clusters)
				if err := s.IssueOpCounts(c, isa.BundleDemand{Ops: 1, ALU: 1, Mul: 1, Mem: 1}); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
			if err := s.Commit(); err != nil {
				t.Fatalf("trial %d commit: %v", trial, err)
			}
		}
		if d := m.Diff(golden); d != "" {
			t.Fatalf("trial %d: op-split != atomic: %s", trial, d)
		}
	}
}

func TestMemoryEqualClone(t *testing.T) {
	m := NewMemory()
	m.Poke(0x10000, 7)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Poke(0x10004, 9)
	if m.Equal(c) {
		t.Fatal("diverged memories compare equal")
	}
	// Zero-filled page equals unbacked page.
	a, b := NewMemory(), NewMemory()
	a.Poke(0x30000, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("zero page != unbacked page")
	}
}

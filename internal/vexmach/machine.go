package vexmach

import (
	"fmt"

	"vexsmt/internal/isa"
)

// Machine is the architectural state of one thread of the clustered VLIW:
// per-cluster general-purpose and branch register files, memory, and the
// program counter. $r0 of every cluster is hardwired to zero (VEX/ST200
// convention).
type Machine struct {
	geom isa.Geometry
	gpr  [isa.MaxClusters][isa.NumGPR]int32
	br   [isa.MaxClusters][isa.NumBR]bool
	mem  *Memory
	pc   uint64
}

// New creates a machine with zeroed state.
func New(geom isa.Geometry) (*Machine, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &Machine{geom: geom, mem: NewMemory()}, nil
}

// MustNew is New but panics on error.
func MustNew(geom isa.Geometry) *Machine {
	m, err := New(geom)
	if err != nil {
		panic(err)
	}
	return m
}

// Geometry returns the machine geometry.
func (m *Machine) Geometry() isa.Geometry { return m.geom }

// Mem exposes the machine's memory.
func (m *Machine) Mem() *Memory { return m.mem }

// PC returns the program counter.
func (m *Machine) PC() uint64 { return m.pc }

// SetPC sets the program counter (program load).
func (m *Machine) SetPC(pc uint64) { m.pc = pc }

// Reg reads GPR r of cluster c; $r0 reads as zero.
func (m *Machine) Reg(c int, r isa.Reg) int32 {
	if r == 0 {
		return 0
	}
	return m.gpr[c][r]
}

// SetReg writes GPR r of cluster c; writes to $r0 are discarded.
func (m *Machine) SetReg(c int, r isa.Reg, v int32) {
	if r == 0 {
		return
	}
	m.gpr[c][r] = v
}

// BranchReg reads branch register b of cluster c.
func (m *Machine) BranchReg(c int, b isa.BReg) bool { return m.br[c][b] }

// SetBranchReg writes branch register b of cluster c.
func (m *Machine) SetBranchReg(c int, b isa.BReg, v bool) { m.br[c][b] = v }

// Equal compares the full architectural state of two machines.
func (m *Machine) Equal(o *Machine) bool {
	if m.geom != o.geom || m.pc != o.pc {
		return false
	}
	for c := 0; c < m.geom.Clusters; c++ {
		if m.gpr[c] != o.gpr[c] || m.br[c] != o.br[c] {
			return false
		}
	}
	return m.mem.Equal(o.mem)
}

// Diff describes the first difference found between two machines, for test
// failure messages. It returns "" when states are equal.
func (m *Machine) Diff(o *Machine) string {
	if m.pc != o.pc {
		return fmt.Sprintf("pc: 0x%x vs 0x%x", m.pc, o.pc)
	}
	for c := 0; c < m.geom.Clusters; c++ {
		for r := 0; r < isa.NumGPR; r++ {
			if m.gpr[c][r] != o.gpr[c][r] {
				return fmt.Sprintf("c%d $r%d: %d vs %d", c, r, m.gpr[c][r], o.gpr[c][r])
			}
		}
		for b := 0; b < isa.NumBR; b++ {
			if m.br[c][b] != o.br[c][b] {
				return fmt.Sprintf("c%d $b%d: %v vs %v", c, b, m.br[c][b], o.br[c][b])
			}
		}
	}
	if !m.mem.Equal(o.mem) {
		return "memory contents differ"
	}
	return ""
}

// Clone deep-copies the machine (golden-state comparisons).
func (m *Machine) Clone() *Machine {
	c := &Machine{geom: m.geom, pc: m.pc, mem: m.mem.Clone()}
	c.gpr = m.gpr
	c.br = m.br
	return c
}

// Exec executes one instruction atomically: all operations observe the
// pre-instruction state, then all effects commit — the classic VLIW
// semantics the compiler schedules against. It is implemented as a split
// session that issues every bundle in one step, so atomic and split
// execution share one code path.
func (m *Machine) Exec(in *isa.Instruction) error {
	s := m.Begin(in)
	for c := 0; c < m.geom.Clusters; c++ {
		if len(in.Bundles[c]) == 0 {
			continue
		}
		if err := s.IssueCluster(c); err != nil {
			return err
		}
	}
	return s.Commit()
}

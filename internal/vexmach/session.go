package vexmach

import (
	"fmt"

	"vexsmt/internal/isa"
	"vexsmt/internal/xbar"
)

// Session is a split-issue execution of one VLIW instruction. Parts of the
// instruction (whole bundles under cluster-level split-issue, individual
// operations under operation-level split-issue) are issued in any order
// across any number of cycles; every result is written to delay buffers
// (Figure 8/9 of the paper) and committed to the architectural state only
// when the instruction completes. An exception raised by any part discards
// the session, leaving the machine in the consistent state before the
// instruction — the precise-exception property of Section V-B.
type Session struct {
	m        *Machine
	in       *isa.Instruction
	issued   [isa.MaxClusters][]bool
	left     int // operations not yet issued
	gprBuf   []gprWrite
	brBuf    []brWrite
	memBuf   []memWrite
	net      *xbar.Network
	taken    bool
	target   uint64
	sawBr    bool
	finished bool
	failed   bool
}

type gprWrite struct {
	cluster int
	reg     isa.Reg
	val     int32
}

type brWrite struct {
	cluster int
	breg    isa.BReg
	val     bool
}

type memWrite struct {
	addr uint64
	val  int32
}

// Begin opens a split session on the instruction.
func (m *Machine) Begin(in *isa.Instruction) *Session {
	s := &Session{m: m, in: in, net: xbar.New()}
	for c := 0; c < m.geom.Clusters; c++ {
		if n := len(in.Bundles[c]); n > 0 {
			s.issued[c] = make([]bool, n)
			s.left += n
		}
	}
	return s
}

// Done reports whether every operation has been issued.
func (s *Session) Done() bool { return s.left == 0 }

// Failed reports whether the session aborted on an exception.
func (s *Session) Failed() bool { return s.failed }

// IssueCluster executes all not-yet-issued operations of the bundle at
// cluster c (cluster-level split-issue: operations of a bundle are never
// separated). Reads observe the pre-instruction architectural state; writes
// go to the delay buffers.
func (s *Session) IssueCluster(c int) error {
	if s.failed {
		return fmt.Errorf("vexmach: issue on failed session")
	}
	b := s.in.Bundles[c]
	for i := range b {
		if s.issued[c][i] {
			continue
		}
		if err := s.issueOp(c, i); err != nil {
			s.abort()
			return err
		}
	}
	return s.afterIssue()
}

// IssueOpCounts executes unissued operations of cluster c's bundle in
// program order, limited by per-class counts (operation-level split-issue:
// the issue engine decides how many ALU/MUL/MEM operations of the bundle
// fit this cycle). Branch and comm operations draw from the ALU budget,
// matching the demand accounting of isa.DemandOfBundle.
func (s *Session) IssueOpCounts(c int, take isa.BundleDemand) error {
	if s.failed {
		return fmt.Errorf("vexmach: issue on failed session")
	}
	alu, mul, mem := int(take.ALU), int(take.Mul), int(take.Mem)
	b := s.in.Bundles[c]
	for i := range b {
		if s.issued[c][i] {
			continue
		}
		var budget *int
		switch b[i].Class() {
		case isa.ClassMul:
			budget = &mul
		case isa.ClassMem:
			budget = &mem
		default:
			budget = &alu
		}
		if *budget == 0 {
			continue
		}
		*budget--
		if err := s.issueOp(c, i); err != nil {
			s.abort()
			return err
		}
	}
	return s.afterIssue()
}

// afterIssue drains network deliveries (sends that matched earlier pending
// recvs) into the register delay buffer. The caller decides when to Commit
// (the issue engine signals the last part).
func (s *Session) afterIssue() error {
	for _, d := range s.net.DrainDeliveries() {
		s.gprBuf = append(s.gprBuf, gprWrite{cluster: d.Ch.Dst, reg: isa.Reg(d.Reg), val: d.Value})
	}
	return nil
}

func (s *Session) abort() {
	s.failed = true
	s.gprBuf, s.brBuf, s.memBuf = nil, nil, nil
	s.net.Reset()
}

// Commit applies the delay buffers to the architectural state and advances
// the PC. It fails if operations remain unissued, the session aborted, or a
// recv never got its data (send/recv pairing violated).
func (s *Session) Commit() error {
	switch {
	case s.failed:
		return fmt.Errorf("vexmach: commit on failed session")
	case s.finished:
		return fmt.Errorf("vexmach: double commit")
	case !s.Done():
		return fmt.Errorf("vexmach: commit with %d operations unissued", s.left)
	case !s.net.Quiesced():
		return &Exception{PC: s.in.Addr, Reason: "recv without matching send in instruction"}
	}
	s.finished = true
	m := s.m
	for _, w := range s.gprBuf {
		m.SetReg(w.cluster, w.reg, w.val)
	}
	for _, w := range s.brBuf {
		m.SetBranchReg(w.cluster, w.breg, w.val)
	}
	for _, w := range s.memBuf {
		// Alignment/null checks ran at issue time (phase I); commit cannot
		// fault, so Store32 errors here indicate a model bug.
		if err := m.mem.Store32(w.addr, w.val, s.in.Addr); err != nil {
			panic(fmt.Sprintf("vexmach: buffered store faulted at commit: %v", err))
		}
	}
	if s.taken {
		m.pc = s.target
	} else {
		m.pc = s.in.Addr + uint64(s.in.Size)
	}
	return nil
}

// BufferedStores returns how many memory writes are waiting in the memory
// delay buffer (timing hooks and tests).
func (s *Session) BufferedStores() int { return len(s.memBuf) }

// issueOp executes phase I of one operation: read sources from the
// pre-instruction state, compute, write the result into the delay buffers.
func (s *Session) issueOp(c, i int) error {
	op := &s.in.Bundles[c][i]
	s.issued[c][i] = true
	s.left--
	m := s.m

	src2 := func() int32 {
		if op.UseImm {
			return op.Imm
		}
		return m.Reg(c, op.Src2)
	}

	switch op.Op {
	case isa.Nop:
	case isa.Add:
		s.writeGPR(c, op.Dest, m.Reg(c, op.Src1)+src2())
	case isa.Sub:
		s.writeGPR(c, op.Dest, m.Reg(c, op.Src1)-src2())
	case isa.Shl:
		s.writeGPR(c, op.Dest, m.Reg(c, op.Src1)<<(uint32(src2())&31))
	case isa.Shr:
		s.writeGPR(c, op.Dest, m.Reg(c, op.Src1)>>(uint32(src2())&31))
	case isa.And:
		s.writeGPR(c, op.Dest, m.Reg(c, op.Src1)&src2())
	case isa.Or:
		s.writeGPR(c, op.Dest, m.Reg(c, op.Src1)|src2())
	case isa.Xor:
		s.writeGPR(c, op.Dest, m.Reg(c, op.Src1)^src2())
	case isa.Mov:
		if op.UseImm {
			s.writeGPR(c, op.Dest, op.Imm)
		} else {
			s.writeGPR(c, op.Dest, m.Reg(c, op.Src1))
		}
	case isa.Max:
		a, b := m.Reg(c, op.Src1), src2()
		if b > a {
			a = b
		}
		s.writeGPR(c, op.Dest, a)
	case isa.Min:
		a, b := m.Reg(c, op.Src1), src2()
		if b < a {
			a = b
		}
		s.writeGPR(c, op.Dest, a)
	case isa.CmpEQ:
		s.writeBR(c, op.BDest, m.Reg(c, op.Src1) == src2())
	case isa.CmpNE:
		s.writeBR(c, op.BDest, m.Reg(c, op.Src1) != src2())
	case isa.CmpLT:
		s.writeBR(c, op.BDest, m.Reg(c, op.Src1) < src2())
	case isa.CmpGE:
		s.writeBR(c, op.BDest, m.Reg(c, op.Src1) >= src2())
	case isa.Mpy:
		s.writeGPR(c, op.Dest, m.Reg(c, op.Src1)*src2())
	case isa.MpyH:
		s.writeGPR(c, op.Dest, int32((int64(m.Reg(c, op.Src1))*int64(src2()))>>32))
	case isa.MpySh:
		s.writeGPR(c, op.Dest, int32((int64(m.Reg(c, op.Src1))*int64(src2()))>>16))
	case isa.Ldw:
		addr := uint64(uint32(m.Reg(c, op.Src1) + op.Imm))
		v, err := m.mem.Load32(addr, s.in.Addr)
		if err != nil {
			return err
		}
		s.writeGPR(c, op.Dest, v)
	case isa.Stw:
		addr := uint64(uint32(m.Reg(c, op.Src1) + op.Imm))
		// Phase I performs the checks; the write itself goes to the memory
		// delay buffer (Figure 9b).
		if err := m.mem.check(addr, s.in.Addr); err != nil {
			return err
		}
		s.memBuf = append(s.memBuf, memWrite{addr: addr, val: m.Reg(c, op.Src2)})
	case isa.Br:
		if m.BranchReg(c, op.BSrc) {
			s.takeBranch(uint64(op.Target))
		}
		s.sawBr = true
	case isa.Brf:
		if !m.BranchReg(c, op.BSrc) {
			s.takeBranch(uint64(op.Target))
		}
		s.sawBr = true
	case isa.Goto:
		s.takeBranch(uint64(op.Target))
	case isa.Send:
		ch := xbar.Channel{Src: c, Dst: int(op.Target)}
		if err := s.net.Send(ch, m.Reg(c, op.Src1)); err != nil {
			return &Exception{PC: s.in.Addr, Reason: err.Error()}
		}
	case isa.Recv:
		ch := xbar.Channel{Src: int(op.Target), Dst: c}
		v, ok, err := s.net.Recv(ch, uint8(op.Dest))
		if err != nil {
			return &Exception{PC: s.in.Addr, Reason: err.Error()}
		}
		if ok {
			s.writeGPR(c, op.Dest, v)
		}
		// else: pending; the matching send will produce a delivery.
	default:
		return &Exception{PC: s.in.Addr, Reason: fmt.Sprintf("illegal opcode %d", op.Op)}
	}
	return nil
}

func (s *Session) writeGPR(c int, r isa.Reg, v int32) {
	if r == 0 || r == isa.RegNone {
		return
	}
	s.gprBuf = append(s.gprBuf, gprWrite{cluster: c, reg: r, val: v})
}

func (s *Session) writeBR(c int, b isa.BReg, v bool) {
	if b == isa.BRegNone {
		return
	}
	s.brBuf = append(s.brBuf, brWrite{cluster: c, breg: b, val: v})
}

func (s *Session) takeBranch(target uint64) {
	s.taken = true
	s.target = target
}

// Taken reports whether a committed session took a branch (timing model
// hook for the 1-cycle taken-branch penalty).
func (s *Session) Taken() bool { return s.taken }

package vexmach

import (
	"errors"
	"testing"

	"vexsmt/internal/isa"
)

func op(o isa.Opcode, dest, src1, src2 isa.Reg) isa.Operation {
	return isa.Operation{Op: o, Dest: dest, Src1: src1, Src2: src2}
}

func opi(o isa.Opcode, dest, src1 isa.Reg, imm int32) isa.Operation {
	return isa.Operation{Op: o, Dest: dest, Src1: src1, Imm: imm, UseImm: true}
}

func ins(bundles map[int]isa.Bundle) *isa.Instruction {
	in := &isa.Instruction{Size: InstrBytes}
	for c, b := range bundles {
		in.Bundles[c] = b
	}
	return in
}

func TestR0HardwiredZero(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 0, 42)
	if m.Reg(0, 0) != 0 {
		t.Fatal("$r0 is writable")
	}
	in := ins(map[int]isa.Bundle{0: {opi(isa.Mov, 0, isa.RegNone, 99)}})
	if err := m.Exec(in); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 0) != 0 {
		t.Fatal("$r0 written by mov")
	}
}

func TestBasicALUOps(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 10)
	m.SetReg(0, 2, 3)
	cases := []struct {
		o    isa.Opcode
		want int32
	}{
		{isa.Add, 13}, {isa.Sub, 7}, {isa.Shl, 80}, {isa.Shr, 1},
		{isa.And, 2}, {isa.Or, 11}, {isa.Xor, 9}, {isa.Max, 10}, {isa.Min, 3},
		{isa.Mpy, 30},
	}
	for _, c := range cases {
		in := ins(map[int]isa.Bundle{0: {op(c.o, 5, 1, 2)}})
		if err := m.Exec(in); err != nil {
			t.Fatalf("%v: %v", c.o, err)
		}
		if got := m.Reg(0, 5); got != c.want {
			t.Errorf("%v = %d, want %d", c.o, got, c.want)
		}
	}
}

func TestMpyHigh(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 1<<30)
	m.SetReg(0, 2, 8)
	in := ins(map[int]isa.Bundle{0: {op(isa.MpyH, 3, 1, 2)}})
	if err := m.Exec(in); err != nil {
		t.Fatal(err)
	}
	// (2^30 * 8) >> 32 == 2
	if got := m.Reg(0, 3); got != 2 {
		t.Fatalf("mpyh = %d, want 2", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(1, 1, 0x10000)
	m.SetReg(1, 2, -12345)
	st := isa.Operation{Op: isa.Stw, Src1: 1, Src2: 2, Imm: 8}
	ld := isa.Operation{Op: isa.Ldw, Dest: 3, Src1: 1, Imm: 8}
	if err := m.Exec(ins(map[int]isa.Bundle{1: {st}})); err != nil {
		t.Fatal(err)
	}
	if err := m.Exec(ins(map[int]isa.Bundle{1: {ld}})); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(1, 3); got != -12345 {
		t.Fatalf("loaded %d", got)
	}
}

func TestCompareAndBranchRegs(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 5)
	cmp := isa.Operation{Op: isa.CmpLT, BDest: 2, Src1: 1, Imm: 10, UseImm: true}
	if err := m.Exec(ins(map[int]isa.Bundle{0: {cmp}})); err != nil {
		t.Fatal(err)
	}
	if !m.BranchReg(0, 2) {
		t.Fatal("5 < 10 not set")
	}
	cmp2 := isa.Operation{Op: isa.CmpGE, BDest: 3, Src1: 1, Imm: 10, UseImm: true}
	if err := m.Exec(ins(map[int]isa.Bundle{0: {cmp2}})); err != nil {
		t.Fatal(err)
	}
	if m.BranchReg(0, 3) {
		t.Fatal("5 >= 10 set")
	}
}

// Figure 3: a single instruction swaps $r3 and $r5 without a temporary.
// Atomic VLIW semantics make this legal: both operations read old values.
func TestFigure3SwapAtomic(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 3, 111)
	m.SetReg(0, 5, 222)
	swap := ins(map[int]isa.Bundle{0: {op(isa.Mov, 3, 5, isa.RegNone), op(isa.Mov, 5, 3, isa.RegNone)}})
	if err := m.Exec(swap); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 3) != 222 || m.Reg(0, 5) != 111 {
		t.Fatalf("swap failed: r3=%d r5=%d", m.Reg(0, 3), m.Reg(0, 5))
	}
}

// Figure 3(c) shows the incorrect dataflow if the second operation issues
// later *without* delay buffers. With the paper's two-phase buffers the
// split execution stays correct: phase I of each op reads the
// pre-instruction state regardless of issue cycle.
func TestFigure3SwapSplitWithBuffers(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 3, 111)
	m.SetReg(0, 5, 222)
	swap := ins(map[int]isa.Bundle{0: {op(isa.Mov, 3, 5, isa.RegNone), op(isa.Mov, 5, 3, isa.RegNone)}})
	s := m.Begin(swap)
	// Cycle 0: issue only the first mov (phase I -> delay buffer).
	if err := s.IssueOpCounts(0, isa.BundleDemand{Ops: 1, ALU: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 3) != 111 {
		t.Fatal("delay buffer leaked into architectural state before commit")
	}
	// Cycle 1: issue the second mov; it must read the OLD $r3.
	if err := s.IssueOpCounts(0, isa.BundleDemand{Ops: 1, ALU: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 3) != 222 || m.Reg(0, 5) != 111 {
		t.Fatalf("split swap broke dataflow: r3=%d r5=%d", m.Reg(0, 3), m.Reg(0, 5))
	}
}

// Figure 2: the three operations of an instruction issue in three separate
// cycles; the architectural result equals atomic execution.
func TestFigure2OperationLevelSplit(t *testing.T) {
	build := func() (*Machine, *isa.Instruction) {
		m := MustNew(isa.ST200x4)
		m.SetReg(0, 1, 7)
		m.SetReg(0, 2, 9)
		in := ins(map[int]isa.Bundle{0: {
			op(isa.Add, 4, 1, 2),
			op(isa.Sub, 5, 1, 2),
			op(isa.Xor, 6, 1, 2),
		}})
		return m, in
	}
	golden, in := build()
	if err := golden.Exec(in); err != nil {
		t.Fatal(err)
	}
	m, in2 := build()
	s := m.Begin(in2)
	for i := 0; i < 3; i++ {
		if err := s.IssueOpCounts(0, isa.BundleDemand{Ops: 1, ALU: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Done() {
		t.Fatal("session not done after 3 single-op issues")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if d := m.Diff(golden); d != "" {
		t.Fatalf("split execution differs from atomic: %s", d)
	}
}

// Figure 12(b,c,d): the three send/recv orderings all produce the same
// architectural result.
func TestFigure12SendRecvOrderings(t *testing.T) {
	commIns := func() *isa.Instruction {
		return ins(map[int]isa.Bundle{
			0: {isa.Operation{Op: isa.Send, Src1: 3, Target: 1}},
			1: {isa.Operation{Op: isa.Recv, Dest: 5, Target: 0}},
		})
	}
	setup := func() *Machine {
		m := MustNew(isa.ST200x4)
		m.SetReg(0, 3, 4242)
		return m
	}

	// (b) same cycle.
	m := setup()
	if err := m.Exec(commIns()); err != nil {
		t.Fatal(err)
	}
	if m.Reg(1, 5) != 4242 {
		t.Fatalf("same-cycle transfer: got %d", m.Reg(1, 5))
	}

	// (c) send ahead of recv: buffered in the network.
	m = setup()
	s := m.Begin(commIns())
	if err := s.IssueCluster(0); err != nil {
		t.Fatal(err)
	}
	if err := s.IssueCluster(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(1, 5) != 4242 {
		t.Fatalf("send-early transfer: got %d", m.Reg(1, 5))
	}

	// (d) recv ahead of send: destination register buffered, data delivered
	// when the send issues.
	m = setup()
	s = m.Begin(commIns())
	if err := s.IssueCluster(1); err != nil {
		t.Fatal(err)
	}
	if err := s.IssueCluster(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(1, 5) != 4242 {
		t.Fatalf("recv-early transfer: got %d", m.Reg(1, 5))
	}
}

func TestRecvWithoutSendFailsAtCommit(t *testing.T) {
	m := MustNew(isa.ST200x4)
	in := ins(map[int]isa.Bundle{1: {isa.Operation{Op: isa.Recv, Dest: 5, Target: 0}}})
	err := m.Exec(in)
	if err == nil {
		t.Fatal("recv without send committed")
	}
	var ex *Exception
	if !errors.As(err, &ex) {
		t.Fatalf("error type %T", err)
	}
}

// Precise exceptions (Section V-B): a split-issued part must not update the
// architectural state, so when a later part faults, the machine rolls back
// to the instruction boundary.
func TestPreciseExceptionRollback(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 0x10000) // valid store base
	m.SetReg(0, 2, 777)
	m.SetReg(1, 1, 0x10002) // misaligned load base -> exception
	golden := m.Clone()

	in := ins(map[int]isa.Bundle{
		0: {isa.Operation{Op: isa.Stw, Src1: 1, Src2: 2, Imm: 0},
			op(isa.Add, 9, 2, 2)},
		1: {isa.Operation{Op: isa.Ldw, Dest: 3, Src1: 1, Imm: 0}},
	})
	s := m.Begin(in)
	// Part 1: cluster 0 (store goes to memory delay buffer, add to RF buffer).
	if err := s.IssueCluster(0); err != nil {
		t.Fatalf("cluster 0 faulted unexpectedly: %v", err)
	}
	if s.BufferedStores() != 1 {
		t.Fatalf("buffered stores = %d, want 1", s.BufferedStores())
	}
	// Part 2: cluster 1 faults (misaligned load).
	err := s.IssueCluster(1)
	if err == nil {
		t.Fatal("misaligned load did not fault")
	}
	var ex *Exception
	if !errors.As(err, &ex) || ex.Reason != "misaligned word access" {
		t.Fatalf("exception = %v", err)
	}
	if !s.Failed() {
		t.Fatal("session not marked failed")
	}
	// The architectural state must be exactly the pre-instruction state:
	// no store, no $r9 update.
	if d := m.Diff(golden); d != "" {
		t.Fatalf("state changed despite exception: %s", d)
	}
	if m.Mem().Peek(0x10000) != 0 {
		t.Fatal("buffered store leaked to memory")
	}
	// Further issue and commit on the failed session are rejected.
	if err := s.IssueCluster(0); err == nil {
		t.Fatal("issue on failed session accepted")
	}
	if err := s.Commit(); err == nil {
		t.Fatal("commit on failed session accepted")
	}
}

func TestNullPageAndMisalignedExceptions(t *testing.T) {
	m := MustNew(isa.ST200x4)
	m.SetReg(0, 1, 0) // null
	in := ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Ldw, Dest: 3, Src1: 1, Imm: 0}}})
	if err := m.Exec(in); err == nil {
		t.Fatal("null load succeeded")
	}
	m.SetReg(0, 1, 0x10001)
	if err := m.Exec(in); err == nil {
		t.Fatal("misaligned load succeeded")
	}
	// Stores fault at issue (phase I), not commit.
	m.SetReg(0, 1, 3)
	st := ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Stw, Src1: 1, Src2: 2, Imm: 0}}})
	if err := m.Exec(st); err == nil {
		t.Fatal("misaligned store succeeded")
	}
}

func TestCommitValidation(t *testing.T) {
	m := MustNew(isa.ST200x4)
	in := ins(map[int]isa.Bundle{0: {op(isa.Add, 1, 2, 3)}, 1: {op(isa.Add, 1, 2, 3)}})
	s := m.Begin(in)
	if err := s.Commit(); err == nil {
		t.Fatal("commit with unissued ops accepted")
	}
	_ = s.IssueCluster(0)
	_ = s.IssueCluster(1)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestPCAdvanceAndBranches(t *testing.T) {
	m := MustNew(isa.ST200x4)
	// goto
	g := ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Goto, Target: 0x200}}})
	g.Addr = 0x100
	if err := m.Exec(g); err != nil {
		t.Fatal(err)
	}
	if m.PC() != 0x200 {
		t.Fatalf("goto pc = 0x%x", m.PC())
	}
	// br taken / not taken
	m.SetBranchReg(0, 1, true)
	br := ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Br, BSrc: 1, Target: 0x400}}})
	br.Addr = 0x200
	if err := m.Exec(br); err != nil {
		t.Fatal(err)
	}
	if m.PC() != 0x400 {
		t.Fatalf("taken br pc = 0x%x", m.PC())
	}
	m.SetBranchReg(0, 1, false)
	br2 := ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Br, BSrc: 1, Target: 0x800}}})
	br2.Addr = 0x400
	if err := m.Exec(br2); err != nil {
		t.Fatal(err)
	}
	if m.PC() != 0x400+InstrBytes {
		t.Fatalf("fall-through pc = 0x%x", m.PC())
	}
	// brf inverts the condition.
	brf := ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Brf, BSrc: 1, Target: 0x900}}})
	brf.Addr = m.PC()
	if err := m.Exec(brf); err != nil {
		t.Fatal(err)
	}
	if m.PC() != 0x900 {
		t.Fatalf("brf pc = 0x%x", m.PC())
	}
}

// A small loop program: sum = 1 + 2 + ... + 10, exercising Run with
// compare/branch control flow.
func TestRunLoopProgram(t *testing.T) {
	g := isa.ST200x4
	// r1 = counter, r2 = sum, r3 = limit
	instrs := []*isa.Instruction{
		ins(map[int]isa.Bundle{0: {opi(isa.Mov, 1, isa.RegNone, 0), opi(isa.Mov, 2, isa.RegNone, 0)}}),
		ins(map[int]isa.Bundle{0: {opi(isa.Mov, 3, isa.RegNone, 10)}}),
		// loop body @ index 2: r1++, r2 += r1
		ins(map[int]isa.Bundle{0: {opi(isa.Add, 1, 1, 1)}}),
		ins(map[int]isa.Bundle{0: {op(isa.Add, 2, 2, 1), isa.Operation{Op: isa.CmpLT, BDest: 0, Src1: 1, Src2: 3}}}),
		ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Br, BSrc: 0, Target: 0}}}), // patched below
	}
	p, err := NewProgram(g, 0x1000, instrs)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the branch target to the loop head (index 2).
	instrs[4].Bundles[0][0].Target = uint32(p.AddrOf(2))
	m := MustNew(g)
	m.SetPC(p.Base)
	steps, err := m.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 2) != 55 {
		t.Fatalf("sum = %d, want 55", m.Reg(0, 2))
	}
	if steps != 2+3*10 {
		t.Fatalf("steps = %d, want 32", steps)
	}
}

func TestRunStepLimit(t *testing.T) {
	g := isa.ST200x4
	instrs := []*isa.Instruction{
		ins(map[int]isa.Bundle{0: {isa.Operation{Op: isa.Goto, Target: 0x1000}}}),
	}
	p, _ := NewProgram(g, 0x1000, instrs)
	m := MustNew(g)
	m.SetPC(0x1000)
	if _, err := m.Run(p, 50); err == nil {
		t.Fatal("infinite loop not caught by step limit")
	}
}

func TestProgramIndexOf(t *testing.T) {
	g := isa.ST200x4
	instrs := []*isa.Instruction{
		ins(map[int]isa.Bundle{0: {op(isa.Add, 1, 1, 1)}}),
		ins(map[int]isa.Bundle{0: {op(isa.Add, 1, 1, 1)}}),
	}
	p, _ := NewProgram(g, 0x100, instrs)
	if i, ok := p.IndexOf(0x100); !ok || i != 0 {
		t.Fatal("base address")
	}
	if i, ok := p.IndexOf(0x100 + InstrBytes); !ok || i != 1 {
		t.Fatal("second instruction")
	}
	if _, ok := p.IndexOf(0x100 + 2*InstrBytes); ok {
		t.Fatal("past end")
	}
	if _, ok := p.IndexOf(0x104); ok {
		t.Fatal("unaligned")
	}
	if _, ok := p.IndexOf(0x0); ok {
		t.Fatal("before base")
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
)

func record(t *testing.T, bench string, n int) []synth.TInst {
	t.Helper()
	p, ok := synth.ByName(bench)
	if !ok {
		t.Fatal("unknown benchmark")
	}
	return Record(synth.MustNewGenerator(p, isa.ST200x4), n)
}

func TestRoundTrip(t *testing.T) {
	instrs := record(t, "idct", 5000)
	var buf bytes.Buffer
	if err := Write(&buf, "idct", 4, instrs); err != nil {
		t.Fatal(err)
	}
	name, clusters, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "idct" || clusters != 4 {
		t.Fatalf("header: %q %d", name, clusters)
	}
	if len(got) != len(instrs) {
		t.Fatalf("count %d, want %d", len(got), len(instrs))
	}
	for i := range instrs {
		if got[i] != instrs[i] {
			t.Fatalf("instr %d mismatch:\n%+v\n%+v", i, got[i], instrs[i])
		}
	}
}

func TestRoundTripAllBenchmarks(t *testing.T) {
	for _, p := range synth.Catalog() {
		instrs := record(t, p.Name, 500)
		var buf bytes.Buffer
		if err := Write(&buf, p.Name, 4, instrs); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		_, _, got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for i := range instrs {
			if got[i] != instrs[i] {
				t.Fatalf("%s instr %d mismatch", p.Name, i)
			}
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, _, err := Read(strings.NewReader("BOGUS data")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	var buf bytes.Buffer
	if err := Write(&buf, "x", 0, nil); err == nil {
		t.Fatal("zero clusters accepted")
	}
	if err := Write(&buf, strings.Repeat("n", 300), 4, nil); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	instrs := record(t, "djpeg", 100)
	var buf bytes.Buffer
	if err := Write(&buf, "djpeg", 4, instrs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 3} {
		if _, _, _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReplayerLoops(t *testing.T) {
	instrs := record(t, "gsmencode", 50)
	r, err := NewReplayer("gsm", instrs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "gsm" || r.Length(123) != 50 {
		t.Fatal("metadata wrong")
	}
	var ti synth.TInst
	for i := 0; i < 50; i++ {
		r.Next(&ti)
	}
	r.Next(&ti) // wraps
	if ti != instrs[0] {
		t.Fatal("replayer did not loop")
	}
	r.Reset(99)
	r.Next(&ti)
	if ti != instrs[0] {
		t.Fatal("reset did not rewind")
	}
}

func TestEmptyReplayerRejected(t *testing.T) {
	if _, err := NewReplayer("x", nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReplayerMatchesGenerator(t *testing.T) {
	// A replayed trace must drive the same instruction sequence as the
	// generator it was recorded from.
	p, _ := synth.ByName("cjpeg")
	gen := synth.MustNewGenerator(p, isa.ST200x4)
	instrs := Record(gen, 1000)
	rep, _ := NewReplayer("cjpeg", instrs)
	gen2 := synth.MustNewGenerator(p, isa.ST200x4)
	var a, b synth.TInst
	for i := 0; i < 1000; i++ {
		rep.Next(&a)
		gen2.Next(&b)
		if a != b {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

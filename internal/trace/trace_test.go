package trace

import (
	"bytes"
	"strings"
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
)

func record(t *testing.T, bench string, n int) []synth.TInst {
	t.Helper()
	p, ok := synth.ByName(bench)
	if !ok {
		t.Fatal("unknown benchmark")
	}
	return Record(synth.MustNewGenerator(p, isa.ST200x4), n)
}

func TestRoundTrip(t *testing.T) {
	instrs := record(t, "idct", 5000)
	var buf bytes.Buffer
	if err := Write(&buf, "idct", 4, instrs); err != nil {
		t.Fatal(err)
	}
	name, clusters, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "idct" || clusters != 4 {
		t.Fatalf("header: %q %d", name, clusters)
	}
	if len(got) != len(instrs) {
		t.Fatalf("count %d, want %d", len(got), len(instrs))
	}
	for i := range instrs {
		if got[i] != instrs[i] {
			t.Fatalf("instr %d mismatch:\n%+v\n%+v", i, got[i], instrs[i])
		}
	}
}

func TestRoundTripAllBenchmarks(t *testing.T) {
	for _, p := range synth.Catalog() {
		instrs := record(t, p.Name, 500)
		var buf bytes.Buffer
		if err := Write(&buf, p.Name, 4, instrs); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		_, _, got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for i := range instrs {
			if got[i] != instrs[i] {
				t.Fatalf("%s instr %d mismatch", p.Name, i)
			}
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, _, err := Read(strings.NewReader("BOGUS data")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	var buf bytes.Buffer
	if err := Write(&buf, "x", 0, nil); err == nil {
		t.Fatal("zero clusters accepted")
	}
	if err := Write(&buf, strings.Repeat("n", 300), 4, nil); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	instrs := record(t, "djpeg", 100)
	var buf bytes.Buffer
	if err := Write(&buf, "djpeg", 4, instrs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 3} {
		if _, _, _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReplayerLoops(t *testing.T) {
	instrs := record(t, "gsmencode", 50)
	r, err := NewReplayer("gsm", instrs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "gsm" || r.Length(123) != 50 {
		t.Fatal("metadata wrong")
	}
	var ti synth.TInst
	for i := 0; i < 50; i++ {
		r.Next(&ti)
	}
	r.Next(&ti) // wraps
	if ti != instrs[0] {
		t.Fatal("replayer did not loop")
	}
	r.Reset(99)
	r.Next(&ti)
	if ti != instrs[0] {
		t.Fatal("reset did not rewind")
	}
}

func TestEmptyReplayerRejected(t *testing.T) {
	if _, err := NewReplayer("x", nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReplayerNextNMatchesNext(t *testing.T) {
	// NextN must deliver exactly the sequence Next would, across batch
	// sizes that divide the trace, straddle the wrap point, and exceed
	// the whole trace length.
	instrs := record(t, "idct", 37)
	for _, batch := range []int{1, 7, 36, 37, 38, 64, 100} {
		ref, _ := NewReplayer("a", instrs)
		got, _ := NewReplayer("b", instrs)
		want := make([]synth.TInst, batch)
		out := make([]synth.TInst, batch)
		for round := 0; round < 5; round++ {
			for i := range want {
				ref.Next(&want[i])
			}
			got.NextN(out)
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("batch %d round %d: diverged at %d", batch, round, i)
				}
			}
		}
	}
}

func TestReplayerNextNZeroAlloc(t *testing.T) {
	// The refill path must not allocate: replayed cells share one arena
	// and ride the same zero-alloc fetch loop as synthetic streams.
	instrs := record(t, "mcf", 100)
	r, err := NewReplayer("mcf", instrs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]synth.TInst, synth.BatchSize)
	if n := testing.AllocsPerRun(200, func() { r.NextN(out) }); n != 0 {
		t.Fatalf("NextN allocates %v per refill, want 0", n)
	}
}

func TestIsBranchRoundTrip(t *testing.T) {
	// Bit 2 of the flags byte carries IsBranch independent of Taken:
	// a not-taken branch must survive a round trip.
	instrs := []synth.TInst{
		{PC: 0x1000, Size: 4, IsBranch: true, Taken: false},
		{PC: 0x1004, Size: 4, IsBranch: true, Taken: true},
		{PC: 0x1008, Size: 4},
	}
	for i := range instrs {
		instrs[i].Demand.B[0] = isa.BundleDemand{Ops: 1, ALU: 1}
	}
	var buf bytes.Buffer
	if err := Write(&buf, "br", 4, instrs); err != nil {
		t.Fatal(err)
	}
	_, _, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if got[i].IsBranch != instrs[i].IsBranch || got[i].Taken != instrs[i].Taken {
			t.Fatalf("instr %d: IsBranch=%v Taken=%v, want IsBranch=%v Taken=%v",
				i, got[i].IsBranch, got[i].Taken, instrs[i].IsBranch, instrs[i].Taken)
		}
	}
}

func TestIsBranchLegacyInference(t *testing.T) {
	// Traces written before the IsBranch flag only set bit 0 for taken
	// branches. The reader must infer IsBranch from Taken when bit 2 is
	// clear. Craft the legacy encoding by writing a modern trace and
	// clearing bit 2 in the serialized flags byte.
	instrs := []synth.TInst{{PC: 0x2000, Size: 4, IsBranch: true, Taken: true}}
	instrs[0].Demand.B[0] = isa.BundleDemand{Ops: 1, ALU: 1}
	var buf bytes.Buffer
	if err := Write(&buf, "old", 4, instrs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Header: magic(4) + clusters(1) + nameLen(1) + name(3) + count(4),
	// then pc(8) + size(4) put the flags byte at offset 25.
	const flagsOff = 4 + 1 + 1 + 3 + 4 + 8 + 4
	if raw[flagsOff]&4 == 0 {
		t.Fatal("expected bit 2 set in modern encoding")
	}
	raw[flagsOff] &^= 4
	_, _, got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].IsBranch || !got[0].Taken {
		t.Fatalf("legacy inference failed: %+v", got[0])
	}
}

func TestReplayerMatchesGenerator(t *testing.T) {
	// A replayed trace must drive the same instruction sequence as the
	// generator it was recorded from.
	p, _ := synth.ByName("cjpeg")
	gen := synth.MustNewGenerator(p, isa.ST200x4)
	instrs := Record(gen, 1000)
	rep, _ := NewReplayer("cjpeg", instrs)
	gen2 := synth.MustNewGenerator(p, isa.ST200x4)
	var a, b synth.TInst
	for i := 0; i < 1000; i++ {
		rep.Next(&a)
		gen2.Next(&b)
		if a != b {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

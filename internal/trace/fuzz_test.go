package trace_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
)

// validTraceBytes encodes a small two-instruction trace for seeding.
func validTraceBytes(t testing.TB) []byte {
	t.Helper()
	instrs := []synth.TInst{
		{PC: 0x1000, Size: 12, Taken: true, IsBranch: true},
		{PC: 0x100c, Size: 8},
	}
	instrs[0].Demand.B[0] = isa.BundleDemand{Ops: 3, ALU: 2, Mem: 1, Load: true}
	instrs[0].MemAddr[0] = 0xdeadbeef
	instrs[1].Demand.B[1] = isa.BundleDemand{Ops: 2, ALU: 2}
	var buf bytes.Buffer
	if err := trace.Write(&buf, "seed", 2, instrs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceRead checks the VXT1 decoder against corrupt input: Read
// must error cleanly (no panic, no allocation sized by an untrusted
// count), and anything it accepts must re-encode to a canonical fixed
// point — encode(decode(e)) == e for e already produced by Write.
func FuzzTraceRead(f *testing.F) {
	valid := validTraceBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])              // truncated mid-record
	f.Add([]byte("VXT0junk"))                // bad magic
	f.Add(append([]byte(nil), valid[:9]...)) // header only
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[10:14], 0xFFFFFFFF) // name "seed": count at offset 10
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		name, clusters, instrs, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var e1 bytes.Buffer
		if err := trace.Write(&e1, name, clusters, instrs); err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
		n2, c2, i2, err := trace.Read(bytes.NewReader(e1.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if n2 != name || c2 != clusters || len(i2) != len(instrs) {
			t.Fatalf("round trip changed shape: %q/%d/%d -> %q/%d/%d",
				name, clusters, len(instrs), n2, c2, len(i2))
		}
		var e2 bytes.Buffer
		if err := trace.Write(&e2, n2, c2, i2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
			t.Fatal("encoding is not a fixed point after one decode/encode round")
		}
	})
}

// TestReadHugeCountTruncated pins the untrusted-count fix: a header
// claiming 4G instructions over an empty body must fail on the first
// short read, not size a slice to the claim.
func TestReadHugeCountTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("VXT1")
	buf.WriteByte(1) // clusters
	buf.WriteByte(0) // name length
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], 0xFFFFFFFF)
	buf.Write(cnt[:])
	_, _, _, err := trace.Read(&buf)
	if err == nil || !strings.Contains(err.Error(), "instr 0") {
		t.Fatalf("want a short-read error on instruction 0, got %v", err)
	}
}

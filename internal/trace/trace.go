// Package trace records synthetic instruction streams to a compact binary
// format and replays them as simulator inputs. Recorded traces make
// experiments exactly portable: a trace file pins the workload independent
// of future generator changes, the same way the paper's binaries pinned
// theirs.
//
// Format (little-endian):
//
//	magic   [4]byte "VXT1"
//	clusters uint8
//	name    uint8 length + bytes
//	count   uint32
//	count × instruction records:
//	  pc     uint64
//	  size   uint32
//	  flags  uint8            (bit0 taken, bit1 hasComm)
//	  used   uint8            (bitmask of non-empty clusters)
//	  per used cluster:
//	    packed uint8 ×2       (ops|alu, mul|mem nibbles)
//	    cflags uint8          (bit0 load, bit1 stor, bit2 comm)
//	    addr   uint64         (present iff mem != 0)
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
)

var magic = [4]byte{'V', 'X', 'T', '1'}

// Record drains n instructions from a stream into memory.
func Record(s synth.Stream, n int) []synth.TInst {
	out := make([]synth.TInst, n)
	for i := range out {
		s.Next(&out[i])
	}
	return out
}

// Write serializes a recorded trace.
func Write(w io.Writer, name string, clusters int, instrs []synth.TInst) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if clusters <= 0 || clusters > isa.MaxClusters {
		return fmt.Errorf("trace: bad cluster count %d", clusters)
	}
	if len(name) > 255 {
		return fmt.Errorf("trace: name too long")
	}
	bw.WriteByte(byte(clusters))
	bw.WriteByte(byte(len(name)))
	bw.WriteString(name)
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(instrs)))
	bw.Write(buf[:4])

	for i := range instrs {
		ti := &instrs[i]
		binary.LittleEndian.PutUint64(buf[:8], ti.PC)
		bw.Write(buf[:8])
		binary.LittleEndian.PutUint32(buf[:4], ti.Size)
		bw.Write(buf[:4])
		var flags byte
		if ti.Taken {
			flags |= 1
		}
		if ti.Demand.HasComm {
			flags |= 2
		}
		if ti.IsBranch {
			flags |= 4
		}
		bw.WriteByte(flags)
		var used byte
		for c := 0; c < clusters; c++ {
			if !ti.Demand.B[c].IsEmpty() {
				used |= 1 << uint(c)
			}
		}
		bw.WriteByte(used)
		for c := 0; c < clusters; c++ {
			if used&(1<<uint(c)) == 0 {
				continue
			}
			b := ti.Demand.B[c]
			if b.Ops > 15 || b.ALU > 15 || b.Mul > 15 || b.Mem > 15 {
				return fmt.Errorf("trace: bundle counts exceed nibble range: %+v", b)
			}
			bw.WriteByte(b.Ops<<4 | b.ALU)
			bw.WriteByte(b.Mul<<4 | b.Mem)
			var cf byte
			if b.Load {
				cf |= 1
			}
			if b.Stor {
				cf |= 2
			}
			if b.Comm {
				cf |= 4
			}
			bw.WriteByte(cf)
			if b.Mem != 0 {
				binary.LittleEndian.PutUint64(buf[:8], ti.MemAddr[c])
				bw.Write(buf[:8])
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace.
func Read(r io.Reader) (name string, clusters int, instrs []synth.TInst, err error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err = io.ReadFull(br, m[:]); err != nil {
		return "", 0, nil, fmt.Errorf("trace: %w", err)
	}
	if m != magic {
		return "", 0, nil, fmt.Errorf("trace: bad magic %q", m)
	}
	cb, err := br.ReadByte()
	if err != nil {
		return "", 0, nil, err
	}
	clusters = int(cb)
	if clusters <= 0 || clusters > isa.MaxClusters {
		return "", 0, nil, fmt.Errorf("trace: bad cluster count %d", clusters)
	}
	nl, err := br.ReadByte()
	if err != nil {
		return "", 0, nil, err
	}
	nameBytes := make([]byte, nl)
	if _, err = io.ReadFull(br, nameBytes); err != nil {
		return "", 0, nil, err
	}
	name = string(nameBytes)
	var buf [8]byte
	if _, err = io.ReadFull(br, buf[:4]); err != nil {
		return "", 0, nil, err
	}
	count := binary.LittleEndian.Uint32(buf[:4])
	// count is untrusted input: cap the up-front allocation and grow by
	// appending, so a corrupt header claiming 4G instructions fails on
	// the first short read instead of sizing a slice to the claim.
	capHint := int(count)
	if capHint > 4096 {
		capHint = 4096
	}
	instrs = make([]synth.TInst, 0, capHint)
	for i := 0; i < int(count); i++ {
		instrs = append(instrs, synth.TInst{})
		ti := &instrs[i]
		if _, err = io.ReadFull(br, buf[:8]); err != nil {
			return "", 0, nil, fmt.Errorf("trace: instr %d: %w", i, err)
		}
		ti.PC = binary.LittleEndian.Uint64(buf[:8])
		if _, err = io.ReadFull(br, buf[:4]); err != nil {
			return "", 0, nil, err
		}
		ti.Size = binary.LittleEndian.Uint32(buf[:4])
		flags, err2 := br.ReadByte()
		if err2 != nil {
			return "", 0, nil, err2
		}
		ti.Taken = flags&1 != 0
		ti.Demand.HasComm = flags&2 != 0
		// Traces written before the IsBranch flag existed still mark taken
		// branches, so OR with Taken instead of trusting bit 2 alone.
		ti.IsBranch = flags&4 != 0 || ti.Taken
		used, err2 := br.ReadByte()
		if err2 != nil {
			return "", 0, nil, err2
		}
		for c := 0; c < clusters; c++ {
			if used&(1<<uint(c)) == 0 {
				continue
			}
			var pk [3]byte
			if _, err = io.ReadFull(br, pk[:]); err != nil {
				return "", 0, nil, err
			}
			b := &ti.Demand.B[c]
			b.Ops, b.ALU = pk[0]>>4, pk[0]&15
			b.Mul, b.Mem = pk[1]>>4, pk[1]&15
			b.Load = pk[2]&1 != 0
			b.Stor = pk[2]&2 != 0
			b.Comm = pk[2]&4 != 0
			if b.Mem != 0 {
				if _, err = io.ReadFull(br, buf[:8]); err != nil {
					return "", 0, nil, err
				}
				ti.MemAddr[c] = binary.LittleEndian.Uint64(buf[:8])
			}
		}
	}
	return name, clusters, instrs, nil
}

// Replayer serves a recorded trace as a synth.Stream. The trace loops if
// the consumer reads past its end (mirroring benchmark respawn).
type Replayer struct {
	name   string
	instrs []synth.TInst
	pos    int
}

// NewReplayer wraps a recorded instruction sequence.
func NewReplayer(name string, instrs []synth.TInst) (*Replayer, error) {
	if len(instrs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return &Replayer{name: name, instrs: instrs}, nil
}

// Next implements synth.Stream.
func (r *Replayer) Next(t *synth.TInst) {
	*t = r.instrs[r.pos]
	r.pos++
	if r.pos == len(r.instrs) {
		r.pos = 0
	}
}

// NextN implements synth.BatchStream. The hot case — a batch that fits
// before the wrap point — is a single copy plus one modular position
// advance; only batches that straddle the end fall back to the wrap loop.
// The method never allocates (pinned by TestReplayerNextNZeroAlloc).
func (r *Replayer) NextN(out []synth.TInst) {
	for {
		n := copy(out, r.instrs[r.pos:])
		if n == len(out) {
			r.pos += n
			if r.pos == len(r.instrs) {
				r.pos = 0
			}
			return
		}
		r.pos = 0
		out = out[n:]
	}
}

// Reset implements synth.Stream; the variant is ignored (a recorded trace
// replays identically).
func (r *Replayer) Reset(uint64) { r.pos = 0 }

// Length implements synth.Stream: one full pass over the trace.
func (r *Replayer) Length(int64) int64 { return int64(len(r.instrs)) }

// Name implements synth.Stream.
func (r *Replayer) Name() string { return r.name }

var _ synth.BatchStream = (*Replayer)(nil)

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	dst := make([]int, 16)
	for trial := 0; trial < 50; trial++ {
		r.Perm(dst)
		seen := make(map[int]bool, len(dst))
		for _, v := range dst {
			if v < 0 || v >= len(dst) || seen[v] {
				t.Fatalf("not a permutation: %v", dst)
			}
			seen[v] = true
		}
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(10)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("picked zero-weight index %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("index 0 frequency = %v, want ~0.25", frac0)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(12)
	const p = 0.25
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between parent and split child", same)
	}
}

func TestUint64nRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	_ = r.Uint64()
	_ = r.Intn(5)
}

package rng

// Seed derivation for parallel experiments.
//
// When simulation cells run concurrently they cannot share a generator:
// the interleaving of draws would depend on goroutine scheduling and the
// results would no longer be reproducible. Instead every cell derives its
// own seed purely from the experiment's base seed and the cell's identity
// (mix, technique, thread count), so a cell's entire random stream is a
// function of *what* it simulates, never of *when* or *where* it runs.
// Parallel and serial executions are therefore bit-identical.

// mix64 is the SplitMix64 output function: a bijective finalizer whose
// avalanche behavior decorrelates structured inputs (small integers,
// near-identical tuples) into statistically independent seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed folds a sequence of identity tokens into a base seed,
// splitmix-style: each token is combined with the golden-ratio increment
// and finalized, so seeds for tuples differing in any single token (or in
// token order) are decorrelated. DeriveSeed(base) with no tokens still
// finalizes, so a derived seed never collides trivially with the base.
func DeriveSeed(base uint64, tokens ...uint64) uint64 {
	h := mix64(base + 0x9e3779b97f4a7c15)
	for _, t := range tokens {
		h = mix64(h ^ mix64(t+0x9e3779b97f4a7c15))
		h += 0x9e3779b97f4a7c15
	}
	return mix64(h)
}

// StringToken hashes a string into a token for DeriveSeed (FNV-1a 64,
// finalized with mix64 to spread short ASCII labels over all 64 bits).
func StringToken(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

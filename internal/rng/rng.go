// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator. Determinism matters: the paper's
// experiments (random thread replacement on context switch, synthetic
// benchmark streams) must be exactly reproducible from a seed, and the
// generator sits on the hot path of trace generation, so it must be
// allocation-free and cheap.
//
// The core generator is SplitMix64 (Steele, Lea, Flood 2014), which passes
// BigCrush and needs only a 64-bit state word.
package rng

// Rand is a deterministic SplitMix64 pseudo-random generator. The zero value
// is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Seed resets the generator to the given seed.
func (r *Rand) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64-bit pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Uint32 returns the next 32-bit pseudo-random value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Draw returns the first bounded draw of a fresh generator seeded with
// seed, equivalent to New(seed).Intn(n) but allocation-free. It is the
// stateless form used for common-random-number schedules, where a draw
// must depend only on (seed, index), never on how many draws preceded it.
func Draw(seed uint64, n int) int {
	r := Rand{state: seed}
	return r.Intn(n)
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm fills dst with a pseudo-random permutation of [0, len(dst)) using the
// Fisher-Yates shuffle. It allocates nothing.
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Pick returns a weighted pick: index i is chosen with probability
// weights[i] / sum(weights). It panics if weights is empty or sums to <= 0.
func (r *Rand) Pick(weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		panic("rng: Pick with non-positive weight sum")
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Geometric returns a sample from a geometric distribution with success
// probability p (support {0, 1, 2, ...}). For p outside (0, 1] it returns 0.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		return 0
	}
	n := 0
	for !r.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Split returns a new independent generator derived from this one's stream.
// Streams from Split are statistically independent of the parent's future
// output because SplitMix64's output function decorrelates nearby states.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64()}
}

package rng

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, StringToken("llhh"), 3, 4)
	b := DeriveSeed(1, StringToken("llhh"), 3, 4)
	if a != b {
		t.Fatalf("same tuple, different seeds: %x vs %x", a, b)
	}
}

func TestDeriveSeedSensitivity(t *testing.T) {
	base := DeriveSeed(1, StringToken("llhh"), 3, 4)
	seen := map[uint64]string{base: "base"}
	add := func(name string, s uint64) {
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision: %s == %s (%x)", name, prev, s)
		}
		seen[s] = name
	}
	add("base-seed", DeriveSeed(2, StringToken("llhh"), 3, 4))
	add("mix", DeriveSeed(1, StringToken("llhl"), 3, 4))
	add("tech", DeriveSeed(1, StringToken("llhh"), 5, 4))
	add("threads", DeriveSeed(1, StringToken("llhh"), 3, 2))
	add("order", DeriveSeed(1, StringToken("llhh"), 4, 3))
	add("no-tokens", DeriveSeed(1))
	add("plain-base", 1)
}

func TestDeriveSeedSpread(t *testing.T) {
	// Seeds for consecutive small tuples must look independent: check that
	// each of the 64 output bits varies across a batch of derived seeds.
	var or, and uint64 = 0, ^uint64(0)
	for i := uint64(0); i < 64; i++ {
		s := DeriveSeed(1, i, i%4)
		or |= s
		and &= s
	}
	if or != ^uint64(0) {
		t.Errorf("bits never set: %064b", ^or)
	}
	if and != 0 {
		t.Errorf("bits always set: %064b", and)
	}
}

func TestStringTokenDistinct(t *testing.T) {
	labels := []string{"llll", "lmmh", "mmmm", "llmm", "llmh", "llhh", "lmhh", "mmhh", "hhhh", ""}
	seen := map[uint64]string{}
	for _, l := range labels {
		tok := StringToken(l)
		if prev, dup := seen[tok]; dup {
			t.Fatalf("token collision: %q == %q", l, prev)
		}
		seen[tok] = l
	}
}

// Package bpred models the branch-predictor front end as a pluggable
// experiment axis. The paper fixes the front end entirely — every taken
// branch pays a fixed penalty — and the "static" model reproduces that
// behavior exactly (it predicts not-taken always and never learns), so
// the default grid stays bit-identical to the unmodeled simulator. The
// other models (bimodal, gshare, and a TAGE variant) convert the fixed
// taken-branch penalty into a mispredict penalty: a branch the predictor
// calls correctly is free, and a mispredicted one — in either direction —
// pays the penalty the static front end charged for every taken branch.
//
// Determinism contract: a predictor's state is a pure function of the
// (pc, taken) sequence it has observed since construction or Reset. No
// model draws randomness, reads clocks, or allocates on Predict/Update,
// so identically-fed instances agree bit-for-bit across processes and
// machines — the property the result cache and the distributed sweeps
// inherit from the simulator.
package bpred

import (
	"fmt"
	"strings"
)

// Predictor is one branch-direction predictor. Implementations are not
// safe for concurrent use; the simulator gives each hardware context its
// own instance.
type Predictor interface {
	// Predict returns the predicted direction (true = taken) for the
	// branch at pc. Predict must not change predictor state.
	Predict(pc uint64) bool
	// Update trains the predictor with the branch's resolved direction.
	Update(pc uint64, taken bool)
	// Reset restores the just-constructed state.
	Reset()
	// Name returns the model's canonical name (one of Names).
	Name() string
}

// Default is the model every configuration gets when it names none: the
// paper's fixed front end.
const Default = "static"

// Names lists every model in canonical presentation order.
func Names() []string { return []string{"static", "bimodal", "gshare", "tage"} }

// Canonical maps a model name (or "" meaning the default) to its
// canonical form, rejecting unknown names with the list of valid ones.
func Canonical(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "" {
		return Default, nil
	}
	for _, have := range Names() {
		if n == have {
			return n, nil
		}
	}
	return "", fmt.Errorf("bpred: unknown predictor %q (have %s)", name, strings.Join(Names(), ", "))
}

// New builds a fresh predictor of the named model ("" selects Default).
func New(name string) (Predictor, error) {
	n, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	switch n {
	case "static":
		return staticPredictor{}, nil
	case "bimodal":
		return newBimodal(), nil
	case "gshare":
		return newGshare(), nil
	default: // "tage"
		return newTAGE(), nil
	}
}

// staticPredictor is the paper's front end: predict not-taken always, so
// exactly the taken branches mispredict — the same set the unmodeled
// simulator charges its fixed penalty to.
type staticPredictor struct{}

func (staticPredictor) Predict(uint64) bool { return false }
func (staticPredictor) Update(uint64, bool) {}
func (staticPredictor) Reset()              {}
func (staticPredictor) Name() string        { return "static" }

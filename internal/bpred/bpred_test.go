package bpred

import (
	"strings"
	"testing"
)

// stream is a deterministic (pc, taken) sequence for feeding predictors.
type event struct {
	pc    uint64
	taken bool
}

// synthStream builds a mixed workload: a handful of static branches with
// different behaviors (biased, alternating, history-dependent) visited in
// a fixed round-robin, plus an xorshift-scrambled PC stream so tagged
// tables see collisions.
func synthStream(n int) []event {
	ev := make([]event, 0, n)
	var x uint64 = 0x9e3779b97f4a7c15
	for i := 0; len(ev) < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		switch i % 4 {
		case 0: // strongly taken loop back-edge
			ev = append(ev, event{pc: 0x1000, taken: i%32 != 0})
		case 1: // alternating branch
			ev = append(ev, event{pc: 0x2004, taken: (i/4)%2 == 0})
		case 2: // period-3 pattern on one PC
			ev = append(ev, event{pc: 0x3008, taken: (i/4)%3 != 0})
		default: // scattered PCs, biased not-taken
			ev = append(ev, event{pc: x & 0xffffc, taken: x%10 == 0})
		}
	}
	return ev
}

func TestNamesAndCanonical(t *testing.T) {
	for _, name := range Names() {
		got, err := Canonical(name)
		if err != nil || got != name {
			t.Fatalf("Canonical(%q) = %q, %v", name, got, err)
		}
		up, err := Canonical(" " + strings.ToUpper(name) + " ")
		if err != nil || up != name {
			t.Fatalf("Canonical of noisy %q = %q, %v", name, up, err)
		}
	}
	if got, err := Canonical(""); err != nil || got != Default {
		t.Fatalf("Canonical(\"\") = %q, %v; want %q", got, err, Default)
	}
	_, err := Canonical("perceptron")
	if err == nil {
		t.Fatal("Canonical accepted unknown model")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid model %q", err, name)
		}
	}
	if _, err := New("perceptron"); err == nil {
		t.Fatal("New accepted unknown model")
	}
}

func TestNameMatchesRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
	}
	p, err := New("")
	if err != nil || p.Name() != Default {
		t.Fatalf("New(\"\") = %v, %v; want %s", p, err, Default)
	}
}

func TestStaticPredictsNotTakenAndNeverLearns(t *testing.T) {
	p, _ := New("static")
	for _, e := range synthStream(1000) {
		if p.Predict(e.pc) {
			t.Fatalf("static predicted taken at pc=%#x", e.pc)
		}
		p.Update(e.pc, e.taken)
	}
}

// TestDeterminism feeds two independently constructed instances the same
// stream and requires bit-for-bit agreement on every prediction, then
// checks Reset restores just-constructed behavior.
func TestDeterminism(t *testing.T) {
	stream := synthStream(20000)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, _ := New(name)
			b, _ := New(name)
			var first []bool
			for _, e := range stream {
				pa, pb := a.Predict(e.pc), b.Predict(e.pc)
				if pa != pb {
					t.Fatalf("instances diverged at pc=%#x", e.pc)
				}
				first = append(first, pa)
				a.Update(e.pc, e.taken)
				b.Update(e.pc, e.taken)
			}
			a.Reset()
			for i, e := range stream {
				if got := a.Predict(e.pc); got != first[i] {
					t.Fatalf("%s: post-Reset replay diverged at event %d", name, i)
				}
				a.Update(e.pc, e.taken)
			}
		})
	}
}

// TestPredictIsPure checks Predict has no side effects: interleaving extra
// Predict calls must not change the prediction sequence.
func TestPredictIsPure(t *testing.T) {
	stream := synthStream(5000)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, _ := New(name)
			b, _ := New(name)
			for _, e := range stream {
				for k := 0; k < 3; k++ {
					a.Predict(e.pc ^ uint64(k)<<20)
				}
				if a.Predict(e.pc) != b.Predict(e.pc) {
					t.Fatalf("extra Predict calls changed state at pc=%#x", e.pc)
				}
				a.Update(e.pc, e.taken)
				b.Update(e.pc, e.taken)
			}
		})
	}
}

// TestZeroAllocHotPath enforces the interface contract: neither Predict
// nor Update may allocate.
func TestZeroAllocHotPath(t *testing.T) {
	stream := synthStream(256)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, _ := New(name)
			i := 0
			allocs := testing.AllocsPerRun(1000, func() {
				e := stream[i%len(stream)]
				p.Predict(e.pc)
				p.Update(e.pc, e.taken)
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s hot path allocates %.1f/op", name, allocs)
			}
		})
	}
}

func accuracy(p Predictor, stream []event) float64 {
	hit := 0
	for _, e := range stream {
		if p.Predict(e.pc) == e.taken {
			hit++
		}
		p.Update(e.pc, e.taken)
	}
	return float64(hit) / float64(len(stream))
}

// TestAccuracyBiasedStream: a 90%-taken branch should be learned by every
// adaptive model while static stays near 10%.
func TestAccuracyBiasedStream(t *testing.T) {
	var stream []event
	for i := 0; i < 10000; i++ {
		stream = append(stream, event{pc: 0x4000, taken: i%10 != 0})
	}
	for _, name := range []string{"bimodal", "gshare", "tage"} {
		p, _ := New(name)
		if acc := accuracy(p, stream); acc < 0.80 {
			t.Errorf("%s accuracy %.3f on 90%%-taken stream, want >= 0.80", name, acc)
		}
	}
	p, _ := New("static")
	if acc := accuracy(p, stream); acc > 0.15 {
		t.Errorf("static accuracy %.3f on 90%%-taken stream, want ~0.10", acc)
	}
}

// TestAccuracyHistoryPattern: a short repeating pattern (period 4) on one
// PC is invisible to bimodal (50/50 counters) but trivial for the
// history-indexed models.
func TestAccuracyHistoryPattern(t *testing.T) {
	var stream []event
	pattern := []bool{true, true, false, false}
	for i := 0; i < 10000; i++ {
		stream = append(stream, event{pc: 0x5000, taken: pattern[i%len(pattern)]})
	}
	for _, name := range []string{"gshare", "tage"} {
		p, _ := New(name)
		if acc := accuracy(p, stream); acc < 0.95 {
			t.Errorf("%s accuracy %.3f on period-4 pattern, want >= 0.95", name, acc)
		}
	}
	p, _ := New("bimodal")
	if acc := accuracy(p, stream); acc > 0.75 {
		t.Errorf("bimodal accuracy %.3f on period-4 pattern, want well below the history models", acc)
	}
}

// TestAccuracyLongHistory: a taken-every-32nd loop-exit pattern needs 31
// bits of history — beyond gshare's 12-bit register, within reach of
// tage's 32- and 64-bit banks.
func TestAccuracyLongHistory(t *testing.T) {
	var stream []event
	for i := 0; i < 40000; i++ {
		stream = append(stream, event{pc: 0x6000, taken: i%32 == 31})
	}
	pt, _ := New("tage")
	pg, _ := New("gshare")
	accT := accuracy(pt, stream)
	accG := accuracy(pg, stream)
	if accT <= accG {
		t.Errorf("tage %.4f should beat gshare %.4f on period-32 pattern", accT, accG)
	}
	if accT < 0.99 {
		t.Errorf("tage accuracy %.4f on period-32 pattern, want >= 0.99", accT)
	}
}

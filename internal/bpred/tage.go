package bpred

// tage is a deterministic TAGE variant (Seznec/Michaud): a bimodal base
// table backed by tagged banks indexed with geometrically increasing
// global-history lengths. Prediction comes from the matching bank with
// the longest history (the provider); allocation on a mispredict claims
// an entry in the shortest longer-history bank whose usefulness counter
// has decayed to zero. Classic TAGE breaks allocation ties with a random
// draw; this variant always takes the shortest eligible bank, so the
// predictor stays a pure function of its input sequence — the property
// every model in this package must hold for results to be cacheable and
// distributable.

// tageHists are the per-bank history lengths. The longest (64) is what
// lets tage catch loop periods far beyond gshare's 12-bit reach.
var tageHists = [4]uint{8, 16, 32, 64}

const (
	tageBankBits = 10 // 1024 entries per tagged bank
	tageTagBits  = 8
	// tageAgePeriod is how many updates pass between usefulness-counter
	// decays (u >>= 1), so stale providers eventually become reclaimable.
	tageAgePeriod = 1 << 18
)

// tageEntry is one tagged-bank slot: an 8-bit tag, a 3-bit signed
// prediction counter in [-4,3] (>= 0 predicts taken), and a 2-bit
// usefulness counter guarding the slot against reallocation.
type tageEntry struct {
	tag uint8
	ctr int8
	u   uint8
}

type tage struct {
	base    [1 << tableBits]uint8
	banks   [len(tageHists)][1 << tageBankBits]tageEntry
	hist    uint64 // global history, newest outcome in bit 0
	updates uint64 // drives periodic usefulness decay
}

func newTAGE() *tage {
	t := &tage{}
	t.Reset()
	return t
}

func (t *tage) Reset() {
	for i := range t.base {
		t.base[i] = 1
	}
	for b := range t.banks {
		for i := range t.banks[b] {
			t.banks[b][i] = tageEntry{}
		}
	}
	t.hist = 0
	t.updates = 0
}

func (t *tage) Name() string { return "tage" }

// fold compresses the low bits history bits of h into width bits by
// XOR-folding successive chunks.
func fold(h uint64, bits, width uint) uint64 {
	h &= ^uint64(0) >> (64 - bits)
	var f uint64
	for ; h != 0; h >>= width {
		f ^= h & (1<<width - 1)
	}
	return f
}

func (t *tage) index(bank int, pc uint64) uint64 {
	h := fold(t.hist, tageHists[bank], tageBankBits)
	return ((pc >> 2) ^ (pc >> (2 + tageBankBits)) ^ h ^ uint64(bank)) & (1<<tageBankBits - 1)
}

func (t *tage) tag(bank int, pc uint64) uint8 {
	h := fold(t.hist, tageHists[bank], tageTagBits) ^ fold(t.hist, tageHists[bank], tageTagBits-1)<<1
	return uint8((pc >> 2) ^ (pc >> (2 + tageTagBits)) ^ h ^ uint64(bank)<<3)
}

// lookup finds the provider (longest matching bank, -1 for none) and the
// alternate prediction (next matching bank below it, or the base table).
func (t *tage) lookup(pc uint64) (provider int, providerIdx uint64, altPred bool) {
	provider = -1
	altPred = ctr2Taken(t.base[(pc>>2)&(1<<tableBits-1)])
	for b := len(t.banks) - 1; b >= 0; b-- {
		i := t.index(b, pc)
		if t.banks[b][i].tag != t.tag(b, pc) {
			continue
		}
		if provider < 0 {
			provider, providerIdx = b, i
			continue
		}
		altPred = t.banks[b][i].ctr >= 0
		return provider, providerIdx, altPred
	}
	return provider, providerIdx, altPred
}

func (t *tage) Predict(pc uint64) bool {
	provider, idx, altPred := t.lookup(pc)
	if provider < 0 {
		return altPred // base prediction
	}
	return t.banks[provider][idx].ctr >= 0
}

func (t *tage) Update(pc uint64, taken bool) {
	provider, idx, altPred := t.lookup(pc)
	pred := altPred
	if provider >= 0 {
		pred = t.banks[provider][idx].ctr >= 0
	}

	// Train the provider, and its usefulness when it disagreed with the
	// alternate (agreement teaches nothing about which to keep).
	if provider >= 0 {
		e := &t.banks[provider][idx]
		if pred != altPred {
			if pred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		if taken {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > -4 {
			e.ctr--
		}
	}
	// The base table always trains: it is the prediction of last resort
	// and the alternate for single-match lookups.
	bi := (pc >> 2) & (1<<tableBits - 1)
	t.base[bi] = ctr2Update(t.base[bi], taken)

	// Mispredict: allocate in the shortest longer-history bank whose slot
	// has no residual usefulness; failing that, age every candidate so a
	// persistent mispredict eventually claims one.
	if pred != taken && provider < len(t.banks)-1 {
		allocated := false
		for b := provider + 1; b < len(t.banks); b++ {
			i := t.index(b, pc)
			if t.banks[b][i].u == 0 {
				ctr := int8(-1)
				if taken {
					ctr = 0
				}
				t.banks[b][i] = tageEntry{tag: t.tag(b, pc), ctr: ctr}
				allocated = true
				break
			}
		}
		if !allocated {
			for b := provider + 1; b < len(t.banks); b++ {
				i := t.index(b, pc)
				if t.banks[b][i].u > 0 {
					t.banks[b][i].u--
				}
			}
		}
	}

	t.hist <<= 1
	if taken {
		t.hist |= 1
	}
	t.updates++
	if t.updates%tageAgePeriod == 0 {
		for b := range t.banks {
			for i := range t.banks[b] {
				t.banks[b][i].u >>= 1
			}
		}
	}
}

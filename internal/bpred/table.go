package bpred

// Shared machinery of the table-based models: 2-bit saturating counters
// indexed at VLIW-instruction granularity (PCs are 4-byte aligned, so
// the low two bits carry no information).

// tableBits sizes the bimodal and gshare counter tables (4096 entries —
// 1KB of predictor state, in keeping with the paper's low-cost theme).
const tableBits = 12

// ctr2Taken reports a 2-bit counter's direction (>= weakly taken).
func ctr2Taken(c uint8) bool { return c >= 2 }

// ctr2Update saturates a 2-bit counter toward the resolved direction.
func ctr2Update(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// bimodal is a per-PC table of 2-bit saturating counters: the classic
// Smith predictor. It learns each branch's bias but sees no correlation
// between branches.
type bimodal struct {
	ctr [1 << tableBits]uint8
}

func newBimodal() *bimodal {
	b := &bimodal{}
	b.Reset()
	return b
}

func (b *bimodal) index(pc uint64) uint64 { return (pc >> 2) & (1<<tableBits - 1) }

func (b *bimodal) Predict(pc uint64) bool { return ctr2Taken(b.ctr[b.index(pc)]) }

func (b *bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.ctr[i] = ctr2Update(b.ctr[i], taken)
}

// Reset initializes every counter weakly not-taken, matching the static
// model's prior until the first update.
func (b *bimodal) Reset() {
	for i := range b.ctr {
		b.ctr[i] = 1
	}
}

func (b *bimodal) Name() string { return "bimodal" }

// gshare XORs a global branch-history register into the table index
// (McFarling), so the same static branch trains different counters under
// different recent outcomes — it captures correlation up to tableBits
// history bits that bimodal cannot see.
type gshare struct {
	ctr  [1 << tableBits]uint8
	hist uint64
}

func newGshare() *gshare {
	g := &gshare{}
	g.Reset()
	return g
}

func (g *gshare) index(pc uint64) uint64 { return ((pc >> 2) ^ g.hist) & (1<<tableBits - 1) }

func (g *gshare) Predict(pc uint64) bool { return ctr2Taken(g.ctr[g.index(pc)]) }

func (g *gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.ctr[i] = ctr2Update(g.ctr[i], taken)
	g.hist <<= 1
	if taken {
		g.hist |= 1
	}
	g.hist &= 1<<tableBits - 1
}

func (g *gshare) Reset() {
	for i := range g.ctr {
		g.ctr[i] = 1
	}
	g.hist = 0
}

func (g *gshare) Name() string { return "gshare" }

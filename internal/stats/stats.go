// Package stats collects the counters the evaluation reports: IPC,
// horizontal/vertical waste, merge and split activity, and stall
// breakdowns, plus the speedup arithmetic used by Figures 14–16.
package stats

import "fmt"

// Run accumulates one simulation's counters.
type Run struct {
	Cycles       int64 // total machine cycles including stalls
	Instrs       int64 // VLIW instructions completed (all threads)
	Ops          int64 // RISC operations issued
	IssueSlots   int64 // cycles * total issue width (for waste metrics)
	EmptyCycles  int64 // cycles in which no operation issued (vertical waste)
	MergedCycles int64 // cycles whose packet contained >= 2 threads
	SplitInstrs  int64 // instructions that issued in more than one cycle

	ICacheAccesses int64
	ICacheMisses   int64
	DCacheAccesses int64
	DCacheMisses   int64

	FetchStallCycles   int64 // thread-cycles lost to ICache misses
	MemStallCycles     int64 // thread-cycles lost to DCache load misses
	BranchStallCycles  int64 // thread-cycles lost to taken-branch penalty
	MemPortStallCycles int64 // machine cycles lost to delayed-store port conflicts

	ContextSwitches int64
	Respawns        int64

	// Branch-predictor counters (internal/bpred). Both stay zero under the
	// default static front end — the simulator only counts branches when a
	// modeled predictor is configured, which keeps static runs bit-identical
	// (and their omitempty JSON exports byte-identical) to pre-predictor
	// builds.
	Branches          int64
	BranchMispredicts int64
}

// MispredictRate returns mispredicts per resolved branch (0 when the run
// used the static front end, which counts neither).
func (r *Run) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.BranchMispredicts) / float64(r.Branches)
}

// IPC returns operations per cycle, the paper's headline metric.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Cycles)
}

// VLIWPerCycle returns VLIW instructions completed per cycle.
func (r *Run) VLIWPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// VerticalWaste returns the fraction of cycles with no issue at all.
func (r *Run) VerticalWaste() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.EmptyCycles) / float64(r.Cycles)
}

// HorizontalWaste returns the fraction of issue slots left empty during
// non-empty cycles.
func (r *Run) HorizontalWaste() float64 {
	busy := r.IssueSlots - r.EmptyCycles*slotsPerCycle(r)
	if busy <= 0 {
		return 0
	}
	return float64(busy-r.Ops) / float64(busy)
}

func slotsPerCycle(r *Run) int64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.IssueSlots / r.Cycles
}

// ICacheMissRate returns the instruction cache miss rate.
func (r *Run) ICacheMissRate() float64 { return rate(r.ICacheMisses, r.ICacheAccesses) }

// DCacheMissRate returns the data cache miss rate.
func (r *Run) DCacheMissRate() float64 { return rate(r.DCacheMisses, r.DCacheAccesses) }

func rate(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// SpeedupPct returns the percentage speedup of a over b measured in IPC,
// the quantity plotted in Figures 14 and 15.
func SpeedupPct(a, b *Run) float64 {
	if b.IPC() == 0 {
		return 0
	}
	return (a.IPC()/b.IPC() - 1) * 100
}

// String gives a compact one-line summary.
func (r *Run) String() string {
	return fmt.Sprintf("cycles=%d instrs=%d ops=%d IPC=%.3f vWaste=%.1f%% ic=%.2f%% dc=%.2f%%",
		r.Cycles, r.Instrs, r.Ops, r.IPC(),
		r.VerticalWaste()*100, r.ICacheMissRate()*100, r.DCacheMissRate()*100)
}

package stats

import (
	"math"
	"strings"
	"testing"
)

func TestIPC(t *testing.T) {
	r := Run{Cycles: 100, Ops: 250}
	if r.IPC() != 2.5 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	var zero Run
	if zero.IPC() != 0 {
		t.Fatal("zero-cycle IPC not 0")
	}
}

func TestVLIWPerCycle(t *testing.T) {
	r := Run{Cycles: 200, Instrs: 100}
	if r.VLIWPerCycle() != 0.5 {
		t.Fatalf("VLIWPerCycle = %v", r.VLIWPerCycle())
	}
}

func TestWasteMetrics(t *testing.T) {
	// 10 cycles on a 16-wide machine; 2 empty cycles; 40 ops issued in the
	// other 8 cycles (128 busy slots).
	r := Run{Cycles: 10, IssueSlots: 160, EmptyCycles: 2, Ops: 40}
	if r.VerticalWaste() != 0.2 {
		t.Fatalf("vertical = %v", r.VerticalWaste())
	}
	want := (128.0 - 40.0) / 128.0
	if math.Abs(r.HorizontalWaste()-want) > 1e-12 {
		t.Fatalf("horizontal = %v, want %v", r.HorizontalWaste(), want)
	}
}

func TestMissRates(t *testing.T) {
	r := Run{ICacheAccesses: 100, ICacheMisses: 5, DCacheAccesses: 50, DCacheMisses: 10}
	if r.ICacheMissRate() != 0.05 || r.DCacheMissRate() != 0.2 {
		t.Fatal("miss rates wrong")
	}
	var zero Run
	if zero.ICacheMissRate() != 0 || zero.DCacheMissRate() != 0 {
		t.Fatal("zero-access miss rate not 0")
	}
}

func TestSpeedupPct(t *testing.T) {
	base := &Run{Cycles: 100, Ops: 100} // IPC 1
	fast := &Run{Cycles: 100, Ops: 110} // IPC 1.1
	if got := SpeedupPct(fast, base); math.Abs(got-10) > 1e-9 {
		t.Fatalf("speedup = %v, want 10", got)
	}
	if got := SpeedupPct(base, fast); got >= 0 {
		t.Fatalf("slowdown should be negative, got %v", got)
	}
	var zero Run
	if SpeedupPct(fast, &zero) != 0 {
		t.Fatal("speedup over zero-IPC base should be 0")
	}
}

func TestStringSummary(t *testing.T) {
	r := Run{Cycles: 10, Instrs: 5, Ops: 20}
	s := r.String()
	if !strings.Contains(s, "IPC=2.000") {
		t.Fatalf("summary %q", s)
	}
}

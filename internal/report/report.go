// Package report renders the reproduction's results in the layout of the
// paper's tables and figures: the Figure 13(a) benchmark table, grouped
// bar charts of speedups (Figures 14 and 15) and absolute IPC (Figure 16),
// all as plain text suitable for terminals and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"vexsmt/internal/experiments"
	"vexsmt/internal/workload"
)

// Figure13aTable renders measured-vs-paper benchmark IPC.
func Figure13aTable(rows []experiments.Fig13Row) string {
	var b strings.Builder
	b.WriteString("Figure 13(a): Benchmarks — single-thread IPC (measured vs paper)\n")
	b.WriteString(fmt.Sprintf("%-12s %-4s | %7s %7s | %7s %7s | %6s %6s\n",
		"benchmark", "ilp", "IPCr", "IPCp", "paper-r", "paper-p", "r-err%", "p-err%"))
	b.WriteString(strings.Repeat("-", 76) + "\n")
	for _, r := range rows {
		rErr := pctErr(r.IPCr, r.PaperIPCr)
		pErr := pctErr(r.IPCp, r.PaperIPCp)
		b.WriteString(fmt.Sprintf("%-12s %-4s | %7.2f %7.2f | %7.2f %7.2f | %+6.1f %+6.1f\n",
			r.Name, r.Class.String(), r.IPCr, r.IPCp, r.PaperIPCr, r.PaperIPCp, rErr, pErr))
	}
	return b.String()
}

func pctErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got/want - 1) * 100
}

// Figure13bTable renders the workload mixes.
func Figure13bTable() string {
	var b strings.Builder
	b.WriteString("Figure 13(b): Workloads\n")
	b.WriteString(fmt.Sprintf("%-6s %-12s %-12s %-12s %-12s\n",
		"mix", "thread 0", "thread 1", "thread 2", "thread 3"))
	b.WriteString(strings.Repeat("-", 58) + "\n")
	for _, m := range workload.Figure13b() {
		b.WriteString(fmt.Sprintf("%-6s %-12s %-12s %-12s %-12s\n",
			m.Label, m.Benchmarks[0], m.Benchmarks[1], m.Benchmarks[2], m.Benchmarks[3]))
	}
	return b.String()
}

// SpeedupChart renders one or more speedup series as per-workload rows with
// horizontal bars, mirroring the grouped bars of Figures 14/15.
func SpeedupChart(title string, series []experiments.SpeedupSeries) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, s := range series {
		b.WriteString("\n" + s.Label + "\n")
		for i, w := range s.Workloads {
			b.WriteString(fmt.Sprintf("  %-6s %+7.2f%% %s\n", w, s.Pct[i], bar(s.Pct[i], 2)))
		}
		b.WriteString(fmt.Sprintf("  %-6s %+7.2f%% %s\n", "avg", s.Avg, bar(s.Avg, 2)))
	}
	return b.String()
}

// IPCChart renders Figure 16: absolute IPC bars for every technique at each
// thread count.
func IPCChart(points []experiments.IPCPoint) string {
	var b strings.Builder
	b.WriteString("Figure 16: Performance of all multithreading techniques (avg IPC)\n")
	lastThreads := -1
	for _, p := range points {
		if p.Threads != lastThreads {
			b.WriteString(fmt.Sprintf("\n%d-Thread\n", p.Threads))
			lastThreads = p.Threads
		}
		b.WriteString(fmt.Sprintf("  %-8s %6.3f %s\n", p.Tech.Name(), p.IPC, bar(p.IPC, 8)))
	}
	return b.String()
}

// bar renders a non-negative horizontal bar; negative values render with a
// leading minus marker so regressions are visible.
func bar(v float64, unitsPerChar float64) string {
	n := int(v/unitsPerChar*8 + 0.5)
	if n < 0 {
		return "-" + strings.Repeat("#", min(-n, 60))
	}
	return strings.Repeat("#", min(n, 60))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Summary renders the headline comparison against the paper's averages.
type Headline struct {
	Label    string
	Measured float64
	Paper    float64
}

// HeadlineTable renders measured-vs-paper average speedups.
func HeadlineTable(rows []Headline) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-36s %10s %10s\n", "series", "measured", "paper"))
	b.WriteString(strings.Repeat("-", 58) + "\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-36s %+9.2f%% %+9.2f%%\n", r.Label, r.Measured, r.Paper))
	}
	return b.String()
}

// PaperFigure14Averages returns the paper's reported average speedups for
// Figure 14 in series order (2T NS, 2T AS, 4T NS, 4T AS).
func PaperFigure14Averages() []float64 { return []float64{6.1, 8.7, 3.5, 7.5} }

// PaperFigure15Averages returns the paper's reported average speedups for
// Figure 15 in series order (2T: COSI NS, COSI AS, OOSI NS, OOSI AS; then
// the same four at 4T).
func PaperFigure15Averages() []float64 {
	return []float64{7.5, 9.8, 8.2, 13.0, 6.4, 9.4, 7.9, 15.7}
}

// Package report renders the reproduction's results in the layout of the
// paper's tables and figures: the Figure 13(a) benchmark table, grouped
// bar charts of speedups (Figures 14 and 15) and absolute IPC (Figure 16),
// all as plain text suitable for terminals and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"vexsmt/internal/core"
	"vexsmt/internal/experiments"
	"vexsmt/internal/workload"
)

// Figure13aTable renders measured-vs-paper benchmark IPC.
func Figure13aTable(rows []experiments.Fig13Row) string {
	var b strings.Builder
	b.WriteString("Figure 13(a): Benchmarks — single-thread IPC (measured vs paper)\n")
	b.WriteString(fmt.Sprintf("%-12s %-4s | %7s %7s | %7s %7s | %6s %6s\n",
		"benchmark", "ilp", "IPCr", "IPCp", "paper-r", "paper-p", "r-err%", "p-err%"))
	b.WriteString(strings.Repeat("-", 76) + "\n")
	for _, r := range rows {
		rErr := pctErr(r.IPCr, r.PaperIPCr)
		pErr := pctErr(r.IPCp, r.PaperIPCp)
		b.WriteString(fmt.Sprintf("%-12s %-4s | %7.2f %7.2f | %7.2f %7.2f | %+6.1f %+6.1f\n",
			r.Name, r.Class.String(), r.IPCr, r.IPCp, r.PaperIPCr, r.PaperIPCp, rErr, pErr))
	}
	return b.String()
}

func pctErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got/want - 1) * 100
}

// Figure13bTable renders the workload mixes.
func Figure13bTable() string {
	var b strings.Builder
	b.WriteString("Figure 13(b): Workloads\n")
	b.WriteString(fmt.Sprintf("%-6s %-12s %-12s %-12s %-12s\n",
		"mix", "thread 0", "thread 1", "thread 2", "thread 3"))
	b.WriteString(strings.Repeat("-", 58) + "\n")
	for _, m := range workload.Figure13b() {
		b.WriteString(fmt.Sprintf("%-6s %-12s %-12s %-12s %-12s\n",
			m.Label, m.Benchmarks[0], m.Benchmarks[1], m.Benchmarks[2], m.Benchmarks[3]))
	}
	return b.String()
}

// SpeedupChart renders one or more speedup series as per-workload rows with
// horizontal bars, mirroring the grouped bars of Figures 14/15.
func SpeedupChart(title string, series []experiments.SpeedupSeries) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, s := range series {
		b.WriteString("\n" + s.Label + "\n")
		for i, w := range s.Workloads {
			b.WriteString(fmt.Sprintf("  %-6s %+7.2f%% %s\n", w, s.Pct[i], bar(s.Pct[i], 2)))
		}
		b.WriteString(fmt.Sprintf("  %-6s %+7.2f%% %s\n", "avg", s.Avg, bar(s.Avg, 2)))
	}
	return b.String()
}

// IPCChart renders Figure 16: absolute IPC bars for every technique at each
// thread count.
func IPCChart(points []experiments.IPCPoint) string {
	var b strings.Builder
	b.WriteString("Figure 16: Performance of all multithreading techniques (avg IPC)\n")
	lastThreads := -1
	for _, p := range points {
		if p.Threads != lastThreads {
			b.WriteString(fmt.Sprintf("\n%d-Thread\n", p.Threads))
			lastThreads = p.Threads
		}
		b.WriteString(fmt.Sprintf("  %-8s %6.3f %s\n", p.Tech.Name(), p.IPC, bar(p.IPC, 8)))
	}
	return b.String()
}

// bar renders a non-negative horizontal bar; negative values render with a
// leading minus marker so regressions are visible.
func bar(v float64, unitsPerChar float64) string {
	n := int(v/unitsPerChar*8 + 0.5)
	if n < 0 {
		return "-" + strings.Repeat("#", min(-n, 60))
	}
	return strings.Repeat("#", min(n, 60))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Summary renders the headline comparison against the paper's averages.
type Headline struct {
	Label    string
	Measured float64
	Paper    float64
}

// HeadlineTable renders measured-vs-paper average speedups.
func HeadlineTable(rows []Headline) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-36s %10s %10s\n", "series", "measured", "paper"))
	b.WriteString(strings.Repeat("-", 58) + "\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-36s %+9.2f%% %+9.2f%%\n", r.Label, r.Measured, r.Paper))
	}
	return b.String()
}

// seriesKey identifies one speedup series of Figures 14/15 by what it
// compares, not by its position in any particular iteration order.
type seriesKey struct {
	Tech     core.Technique
	Baseline core.Technique
	Threads  int
}

// paperAverages holds the paper's reported average speedups for every
// series of Figures 14 and 15, keyed by comparison.
var paperAverages = map[seriesKey]float64{
	// Figure 14: CCSI over CSMT.
	{core.CCSI(core.CommNoSplit), core.CSMT(), 2}:     6.1,
	{core.CCSI(core.CommAlwaysSplit), core.CSMT(), 2}: 8.7,
	{core.CCSI(core.CommNoSplit), core.CSMT(), 4}:     3.5,
	{core.CCSI(core.CommAlwaysSplit), core.CSMT(), 4}: 7.5,
	// Figure 15: COSI and OOSI over SMT.
	{core.COSI(core.CommNoSplit), core.SMT(), 2}:     7.5,
	{core.COSI(core.CommAlwaysSplit), core.SMT(), 2}: 9.8,
	{core.OOSI(core.CommNoSplit), core.SMT(), 2}:     8.2,
	{core.OOSI(core.CommAlwaysSplit), core.SMT(), 2}: 13.0,
	{core.COSI(core.CommNoSplit), core.SMT(), 4}:     6.4,
	{core.COSI(core.CommAlwaysSplit), core.SMT(), 4}: 9.4,
	{core.OOSI(core.CommNoSplit), core.SMT(), 4}:     7.9,
	{core.OOSI(core.CommAlwaysSplit), core.SMT(), 4}: 15.7,
}

// PaperAverage returns the paper's reported average speedup for the series
// comparing tech against baseline at the given thread count, and whether
// the paper reports that series at all.
func PaperAverage(tech, baseline core.Technique, threads int) (float64, bool) {
	v, ok := paperAverages[seriesKey{tech, baseline, threads}]
	return v, ok
}

// PaperAverageFor looks up the paper's reported average for a measured
// series. Matching is by the series' own comparison key, so callers never
// depend on positional correspondence between measured and paper order.
func PaperAverageFor(s experiments.SpeedupSeries) (float64, bool) {
	return PaperAverage(s.Tech, s.Baseline, s.Threads)
}

// PaperFigure14Averages returns the paper's reported average speedups for
// Figure 14 in series order (2T NS, 2T AS, 4T NS, 4T AS).
func PaperFigure14Averages() []float64 {
	var out []float64
	for _, threads := range []int{2, 4} {
		for _, comm := range []core.CommPolicy{core.CommNoSplit, core.CommAlwaysSplit} {
			v, _ := PaperAverage(core.CCSI(comm), core.CSMT(), threads)
			out = append(out, v)
		}
	}
	return out
}

// PaperFigure15Averages returns the paper's reported average speedups for
// Figure 15 in series order (2T: COSI NS, COSI AS, OOSI NS, OOSI AS; then
// the same four at 4T).
func PaperFigure15Averages() []float64 {
	var out []float64
	for _, threads := range []int{2, 4} {
		for _, tech := range []core.Technique{
			core.COSI(core.CommNoSplit), core.COSI(core.CommAlwaysSplit),
			core.OOSI(core.CommNoSplit), core.OOSI(core.CommAlwaysSplit),
		} {
			v, _ := PaperAverage(tech, core.SMT(), threads)
			out = append(out, v)
		}
	}
	return out
}

package report

import (
	"strings"
	"testing"

	"vexsmt/internal/core"
	"vexsmt/internal/experiments"
	"vexsmt/internal/synth"
)

func TestFigure13aTable(t *testing.T) {
	rows := []experiments.Fig13Row{
		{Name: "mcf", Class: synth.LowILP, PaperIPCr: 0.96, PaperIPCp: 1.34, IPCr: 0.95, IPCp: 1.35},
	}
	s := Figure13aTable(rows)
	if !strings.Contains(s, "mcf") || !strings.Contains(s, "0.95") || !strings.Contains(s, "1.34") {
		t.Fatalf("table missing content:\n%s", s)
	}
}

func TestFigure13bTable(t *testing.T) {
	s := Figure13bTable()
	for _, label := range []string{"llll", "hhhh", "colorspace", "mcf"} {
		if !strings.Contains(s, label) {
			t.Errorf("table missing %q", label)
		}
	}
}

func TestSpeedupChart(t *testing.T) {
	series := []experiments.SpeedupSeries{{
		Label:     "CCSI AS over CSMT, 4-Thread",
		Tech:      core.CCSI(core.CommAlwaysSplit),
		Baseline:  core.CSMT(),
		Threads:   4,
		Workloads: []string{"llll", "hhhh"},
		Pct:       []float64{5.0, -1.0},
		Avg:       2.0,
	}}
	s := SpeedupChart("Figure 14", series)
	if !strings.Contains(s, "llll") || !strings.Contains(s, "+5.00%") {
		t.Fatalf("chart missing rows:\n%s", s)
	}
	if !strings.Contains(s, "avg") {
		t.Fatal("chart missing average row")
	}
	if !strings.Contains(s, "-#") {
		t.Fatal("negative bar not marked")
	}
}

func TestIPCChart(t *testing.T) {
	points := []experiments.IPCPoint{
		{Tech: core.CSMT(), Threads: 2, IPC: 3.1},
		{Tech: core.SMT(), Threads: 2, IPC: 3.7},
		{Tech: core.CSMT(), Threads: 4, IPC: 4.4},
	}
	s := IPCChart(points)
	if !strings.Contains(s, "2-Thread") || !strings.Contains(s, "4-Thread") {
		t.Fatalf("chart missing thread sections:\n%s", s)
	}
	if !strings.Contains(s, "CSMT") || !strings.Contains(s, "3.100") {
		t.Fatalf("chart missing bars:\n%s", s)
	}
}

func TestHeadlineTable(t *testing.T) {
	s := HeadlineTable([]Headline{{Label: "CCSI AS over CSMT (4T)", Measured: 6.3, Paper: 7.5}})
	if !strings.Contains(s, "+6.30%") || !strings.Contains(s, "+7.50%") {
		t.Fatalf("headline table wrong:\n%s", s)
	}
}

func TestPaperAverages(t *testing.T) {
	if len(PaperFigure14Averages()) != 4 {
		t.Fatal("figure 14 has four series")
	}
	if len(PaperFigure15Averages()) != 8 {
		t.Fatal("figure 15 has eight series")
	}
}

func TestBarClamp(t *testing.T) {
	if len(bar(1e9, 1)) > 61 {
		t.Fatal("bar not clamped")
	}
}

package report

import (
	"strings"
	"testing"

	"vexsmt/internal/core"
	"vexsmt/internal/experiments"
	"vexsmt/internal/synth"
)

func TestFigure13aTable(t *testing.T) {
	rows := []experiments.Fig13Row{
		{Name: "mcf", Class: synth.LowILP, PaperIPCr: 0.96, PaperIPCp: 1.34, IPCr: 0.95, IPCp: 1.35},
	}
	s := Figure13aTable(rows)
	if !strings.Contains(s, "mcf") || !strings.Contains(s, "0.95") || !strings.Contains(s, "1.34") {
		t.Fatalf("table missing content:\n%s", s)
	}
}

func TestFigure13bTable(t *testing.T) {
	s := Figure13bTable()
	for _, label := range []string{"llll", "hhhh", "colorspace", "mcf"} {
		if !strings.Contains(s, label) {
			t.Errorf("table missing %q", label)
		}
	}
}

func TestSpeedupChart(t *testing.T) {
	series := []experiments.SpeedupSeries{{
		Label:     "CCSI AS over CSMT, 4-Thread",
		Tech:      core.CCSI(core.CommAlwaysSplit),
		Baseline:  core.CSMT(),
		Threads:   4,
		Workloads: []string{"llll", "hhhh"},
		Pct:       []float64{5.0, -1.0},
		Avg:       2.0,
	}}
	s := SpeedupChart("Figure 14", series)
	if !strings.Contains(s, "llll") || !strings.Contains(s, "+5.00%") {
		t.Fatalf("chart missing rows:\n%s", s)
	}
	if !strings.Contains(s, "avg") {
		t.Fatal("chart missing average row")
	}
	if !strings.Contains(s, "-#") {
		t.Fatal("negative bar not marked")
	}
}

func TestIPCChart(t *testing.T) {
	points := []experiments.IPCPoint{
		{Tech: core.CSMT(), Threads: 2, IPC: 3.1},
		{Tech: core.SMT(), Threads: 2, IPC: 3.7},
		{Tech: core.CSMT(), Threads: 4, IPC: 4.4},
	}
	s := IPCChart(points)
	if !strings.Contains(s, "2-Thread") || !strings.Contains(s, "4-Thread") {
		t.Fatalf("chart missing thread sections:\n%s", s)
	}
	if !strings.Contains(s, "CSMT") || !strings.Contains(s, "3.100") {
		t.Fatalf("chart missing bars:\n%s", s)
	}
}

func TestHeadlineTable(t *testing.T) {
	s := HeadlineTable([]Headline{{Label: "CCSI AS over CSMT (4T)", Measured: 6.3, Paper: 7.5}})
	if !strings.Contains(s, "+6.30%") || !strings.Contains(s, "+7.50%") {
		t.Fatalf("headline table wrong:\n%s", s)
	}
}

func TestPaperAverages(t *testing.T) {
	if len(PaperFigure14Averages()) != 4 {
		t.Fatal("figure 14 has four series")
	}
	if len(PaperFigure15Averages()) != 8 {
		t.Fatal("figure 15 has eight series")
	}
}

func TestPaperAverageKeyedLookup(t *testing.T) {
	// The paper's reported Figure 14/15 values, keyed by comparison.
	cases := []struct {
		tech, baseline core.Technique
		threads        int
		want           float64
	}{
		{core.CCSI(core.CommNoSplit), core.CSMT(), 2, 6.1},
		{core.CCSI(core.CommAlwaysSplit), core.CSMT(), 2, 8.7},
		{core.CCSI(core.CommNoSplit), core.CSMT(), 4, 3.5},
		{core.CCSI(core.CommAlwaysSplit), core.CSMT(), 4, 7.5},
		{core.COSI(core.CommNoSplit), core.SMT(), 2, 7.5},
		{core.COSI(core.CommAlwaysSplit), core.SMT(), 2, 9.8},
		{core.OOSI(core.CommNoSplit), core.SMT(), 2, 8.2},
		{core.OOSI(core.CommAlwaysSplit), core.SMT(), 2, 13.0},
		{core.COSI(core.CommNoSplit), core.SMT(), 4, 6.4},
		{core.COSI(core.CommAlwaysSplit), core.SMT(), 4, 9.4},
		{core.OOSI(core.CommNoSplit), core.SMT(), 4, 7.9},
		{core.OOSI(core.CommAlwaysSplit), core.SMT(), 4, 15.7},
	}
	for _, c := range cases {
		got, ok := PaperAverage(c.tech, c.baseline, c.threads)
		if !ok || got != c.want {
			t.Errorf("PaperAverage(%s, %s, %d) = %v, %v; want %v",
				c.tech.Name(), c.baseline.Name(), c.threads, got, ok, c.want)
		}
	}
	// Series the paper does not report must not silently match.
	if _, ok := PaperAverage(core.SMT(), core.CSMT(), 4); ok {
		t.Error("unreported series returned a paper average")
	}
}

func TestPaperAverageMatchesSeriesOrder(t *testing.T) {
	// Keyed lookup must agree with the documented positional order of
	// Figure15() series (2T: COSI NS, COSI AS, OOSI NS, OOSI AS; then 4T),
	// the correspondence the old identity permute15 hard-coded.
	positional := PaperFigure15Averages()
	i := 0
	for _, threads := range []int{2, 4} {
		for _, tech := range []core.Technique{
			core.COSI(core.CommNoSplit), core.COSI(core.CommAlwaysSplit),
			core.OOSI(core.CommNoSplit), core.OOSI(core.CommAlwaysSplit),
		} {
			keyed, ok := PaperAverageFor(experiments.SpeedupSeries{
				Tech: tech, Baseline: core.SMT(), Threads: threads,
			})
			if !ok || keyed != positional[i] {
				t.Errorf("series %d (%s %dT): keyed %v (ok=%v), positional %v",
					i, tech.Name(), threads, keyed, ok, positional[i])
			}
			i++
		}
	}
}

func TestBarClamp(t *testing.T) {
	if len(bar(1e9, 1)) > 61 {
		t.Fatal("bar not clamped")
	}
}

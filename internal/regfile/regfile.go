// Package regfile models the two multithreaded register file organizations
// of Section V-C: shared (one register file per cluster with extra
// registers, ports shared between threads) and partitioned (one register
// file per thread per cluster, each with its own ports).
//
// The key architectural constraint reproduced here: split-issue requires W
// write ports *per thread* at each cluster, because the last parts of
// several threads may commit their delay buffers in the same cycle. The
// shared organization cannot provide that without adding ports, so the
// paper mandates the partitioned organization for split-issue.
package regfile

import (
	"fmt"

	"vexsmt/internal/isa"
)

// Org selects the register file organization.
type Org uint8

const (
	// Shared is a single register file per cluster, with the threads'
	// architectural registers mapped into disjoint windows and the W write
	// ports shared between all threads.
	Shared Org = iota
	// Partitioned gives each thread its own register file per cluster,
	// each with its own W write ports.
	Partitioned
)

func (o Org) String() string {
	if o == Partitioned {
		return "partitioned"
	}
	return "shared"
}

// CheckSplitCompat enforces Section V-C: "A shared register file
// organization cannot be used with split-issue because the sharing of the
// ports limits the number of simultaneous writes."
func CheckSplitCompat(o Org, splitIssue bool) error {
	if splitIssue && o == Shared {
		return fmt.Errorf("regfile: split-issue requires the partitioned register file organization (paper Section V-C)")
	}
	return nil
}

// File is the register state for one cluster across all hardware threads,
// with per-cycle write port accounting.
type File struct {
	org        Org
	threads    int
	writePorts int       // per physical register file (= cluster issue width W)
	gpr        [][]int32 // [thread][reg]
	br         [][]bool  // [thread][breg]
	writesUsed []int     // per-cycle, indexed by port domain
}

// NewFile builds the register state of one cluster. writePorts is W, the
// cluster issue width.
func NewFile(org Org, threads, writePorts int) (*File, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("regfile: thread count %d", threads)
	}
	if writePorts <= 0 {
		return nil, fmt.Errorf("regfile: write port count %d", writePorts)
	}
	f := &File{org: org, threads: threads, writePorts: writePorts}
	f.gpr = make([][]int32, threads)
	f.br = make([][]bool, threads)
	for t := range f.gpr {
		f.gpr[t] = make([]int32, isa.NumGPR)
		f.br[t] = make([]bool, isa.NumBR)
	}
	if org == Shared {
		f.writesUsed = make([]int, 1) // one shared port pool
	} else {
		f.writesUsed = make([]int, threads) // per-thread pools
	}
	return f, nil
}

// Org returns the organization.
func (f *File) Org() Org { return f.org }

func (f *File) pool(thread int) int {
	if f.org == Shared {
		return 0
	}
	return thread
}

// BeginCycle resets per-cycle write port accounting.
func (f *File) BeginCycle() {
	for i := range f.writesUsed {
		f.writesUsed[i] = 0
	}
}

// ErrPortConflict is returned when a cycle attempts more writes than the
// organization provides ports for.
type ErrPortConflict struct {
	Thread int
	Org    Org
}

func (e *ErrPortConflict) Error() string {
	return fmt.Sprintf("regfile: write port conflict (org=%s, thread=%d)", e.Org, e.Thread)
}

// Write stores val into thread t's register r, consuming one write port
// from the thread's port pool. It fails when the pool is exhausted — the
// situation Section V-C shows the shared organization runs into under
// split-issue.
func (f *File) Write(thread int, r isa.Reg, val int32) error {
	p := f.pool(thread)
	if f.writesUsed[p] >= f.writePorts {
		return &ErrPortConflict{Thread: thread, Org: f.org}
	}
	f.writesUsed[p]++
	f.gpr[thread][r] = val
	return nil
}

// Read returns thread t's register r. Reads are not port-limited in this
// model (VEX clusters provision full read bandwidth).
func (f *File) Read(thread int, r isa.Reg) int32 { return f.gpr[thread][r] }

// WriteBR sets a branch register (branch registers have dedicated ports).
func (f *File) WriteBR(thread int, b isa.BReg, val bool) { f.br[thread][b] = val }

// ReadBR returns a branch register.
func (f *File) ReadBR(thread int, b isa.BReg) bool { return f.br[thread][b] }

// PortsFree returns how many write ports thread t may still use this cycle.
func (f *File) PortsFree(thread int) int {
	return f.writePorts - f.writesUsed[f.pool(thread)]
}

package regfile

import (
	"errors"
	"testing"
)

func TestCheckSplitCompat(t *testing.T) {
	if err := CheckSplitCompat(Shared, true); err == nil {
		t.Error("shared org accepted with split-issue (paper forbids it)")
	}
	if err := CheckSplitCompat(Shared, false); err != nil {
		t.Errorf("shared org rejected without split-issue: %v", err)
	}
	if err := CheckSplitCompat(Partitioned, true); err != nil {
		t.Errorf("partitioned org rejected with split-issue: %v", err)
	}
}

func TestNewFileValidation(t *testing.T) {
	if _, err := NewFile(Shared, 0, 4); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewFile(Shared, 2, 0); err == nil {
		t.Error("zero ports accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	f, err := NewFile(Partitioned, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.BeginCycle()
	if err := f.Write(0, 5, 42); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(1, 5, 99); err != nil {
		t.Fatal(err)
	}
	if f.Read(0, 5) != 42 || f.Read(1, 5) != 99 {
		t.Fatal("threads not isolated")
	}
	f.WriteBR(0, 2, true)
	if !f.ReadBR(0, 2) || f.ReadBR(1, 2) {
		t.Fatal("branch registers wrong")
	}
}

func TestSharedPortExhaustion(t *testing.T) {
	// 2 threads, 2 write ports shared: thread 0 uses both, thread 1's write
	// must fail — the precise failure mode that rules shared org out for
	// split-issue.
	f, _ := NewFile(Shared, 2, 2)
	f.BeginCycle()
	if err := f.Write(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	err := f.Write(1, 3, 3)
	if err == nil {
		t.Fatal("third write on 2-port shared file succeeded")
	}
	var pc *ErrPortConflict
	if !errors.As(err, &pc) {
		t.Fatalf("error type: %T", err)
	}
	if pc.Thread != 1 || pc.Org != Shared {
		t.Fatalf("conflict details: %+v", pc)
	}
}

func TestPartitionedPortsIndependent(t *testing.T) {
	// Same scenario under partitioned org: each thread has its own ports,
	// so simultaneous last-part commits from both threads succeed.
	f, _ := NewFile(Partitioned, 2, 2)
	f.BeginCycle()
	for th := 0; th < 2; th++ {
		if err := f.Write(th, 1, 1); err != nil {
			t.Fatalf("thread %d write 1: %v", th, err)
		}
		if err := f.Write(th, 2, 2); err != nil {
			t.Fatalf("thread %d write 2: %v", th, err)
		}
	}
	// But a single thread is still limited to W writes.
	if err := f.Write(0, 3, 3); err == nil {
		t.Fatal("third write by one thread succeeded on 2-port file")
	}
}

func TestBeginCycleResetsPorts(t *testing.T) {
	f, _ := NewFile(Shared, 1, 1)
	f.BeginCycle()
	if err := f.Write(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 2, 2); err == nil {
		t.Fatal("port not exhausted")
	}
	f.BeginCycle()
	if err := f.Write(0, 2, 2); err != nil {
		t.Fatalf("port not replenished: %v", err)
	}
}

func TestPortsFree(t *testing.T) {
	f, _ := NewFile(Partitioned, 2, 3)
	f.BeginCycle()
	if f.PortsFree(0) != 3 {
		t.Fatalf("initial free = %d", f.PortsFree(0))
	}
	_ = f.Write(0, 1, 1)
	if f.PortsFree(0) != 2 || f.PortsFree(1) != 3 {
		t.Fatal("per-thread accounting wrong")
	}
}

func TestOrgString(t *testing.T) {
	if Shared.String() != "shared" || Partitioned.String() != "partitioned" {
		t.Fatal("org strings")
	}
}

package experiments

import (
	"fmt"

	"vexsmt/internal/core"
	"vexsmt/internal/workload"
)

// Cell identifies one simulation of the evaluation grid: one workload mix
// run under one technique at one thread count, optionally with a modeled
// branch predictor. Cells are comparable and carry everything needed to
// derive the cell's deterministic seed, so a cell simulates to the same
// result no matter which figure requested it or which worker ran it.
type Cell struct {
	Mix     workload.Mix
	Tech    core.Technique
	Threads int
	// Pred names the branch-predictor model; "" is the canonical internal
	// spelling of the default static front end, which keeps the original
	// three-field grid (and everything keyed on it) unchanged.
	Pred string
	// WL names a replayed trace workload as a full "name@sha256" content
	// reference; "" is the canonical internal spelling of a synthetic-mix
	// cell. When set, Mix is zero and every hardware context replays the
	// referenced trace — the identity (and thus the seed and cache key)
	// travels with the cell, so any worker holding the same trace bytes
	// resolves it bit-identically.
	WL string
}

func (c Cell) String() string {
	label := c.Mix.Label
	if c.WL != "" {
		label = c.WL
	}
	if c.Pred != "" {
		return fmt.Sprintf("%s/%s/%dT/%s", label, c.Tech.Name(), c.Threads, c.Pred)
	}
	return fmt.Sprintf("%s/%s/%dT", label, c.Tech.Name(), c.Threads)
}

// Plan is an ordered, deduplicated set of cells to simulate. Figures
// 14, 15 and 16 overlap heavily (every speedup series needs its baseline,
// and Figure 16 re-measures every technique the other figures use); the
// planner enumerates each figure's demands and collapses the overlap so a
// shared cell simulates exactly once.
type Plan struct {
	cells []Cell
	seen  map[Cell]bool
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{seen: make(map[Cell]bool)}
}

// Add appends cells not already planned, preserving first-seen order.
func (p *Plan) Add(cells ...Cell) {
	for _, c := range cells {
		if p.seen[c] {
			continue
		}
		p.seen[c] = true
		p.cells = append(p.cells, c)
	}
}

// AddMixSweep plans one technique at one thread count across all nine
// workload mixes of Figure 13(b).
func (p *Plan) AddMixSweep(tech core.Technique, threads int) {
	for _, mix := range workload.Figure13b() {
		p.Add(Cell{Mix: mix, Tech: tech, Threads: threads})
	}
}

// figure14Techniques are the techniques Figure 14 compares: the CSMT
// baseline and cluster-level split-issue under both comm policies.
func figure14Techniques() []core.Technique {
	return []core.Technique{
		core.CSMT(),
		core.CCSI(core.CommNoSplit),
		core.CCSI(core.CommAlwaysSplit),
	}
}

// figure15Techniques are the techniques Figure 15 compares: the SMT
// baseline and the COSI/OOSI split-issue variants.
func figure15Techniques() []core.Technique {
	return []core.Technique{
		core.SMT(),
		core.COSI(core.CommNoSplit), core.COSI(core.CommAlwaysSplit),
		core.OOSI(core.CommNoSplit), core.OOSI(core.CommAlwaysSplit),
	}
}

// figureThreadCounts are the machine sizes every figure evaluates.
func figureThreadCounts() []int { return []int{2, 4} }

// AddFigure14 plans every cell Figure 14 needs.
func (p *Plan) AddFigure14() {
	for _, threads := range figureThreadCounts() {
		for _, tech := range figure14Techniques() {
			p.AddMixSweep(tech, threads)
		}
	}
}

// AddFigure15 plans every cell Figure 15 needs.
func (p *Plan) AddFigure15() {
	for _, threads := range figureThreadCounts() {
		for _, tech := range figure15Techniques() {
			p.AddMixSweep(tech, threads)
		}
	}
}

// AddFigure16 plans every cell Figure 16 needs (all eight techniques).
func (p *Plan) AddFigure16() {
	for _, threads := range figureThreadCounts() {
		for _, tech := range core.AllTechniques() {
			p.AddMixSweep(tech, threads)
		}
	}
}

// PlanFigures builds the combined deduplicated plan for the named figures
// ("14", "15", "16"). Unknown names are an error; figures 13a/13b do not
// use the matrix and plan no cells.
func PlanFigures(figures ...string) (*Plan, error) {
	p := NewPlan()
	for _, f := range figures {
		switch f {
		case "13a", "13b":
			// No matrix cells: 13a is single-threaded, 13b is a table.
		case "14":
			p.AddFigure14()
		case "15":
			p.AddFigure15()
		case "16":
			p.AddFigure16()
		default:
			return nil, fmt.Errorf("experiments: unknown figure %q", f)
		}
	}
	return p, nil
}

// Cells returns the planned cells in plan order.
func (p *Plan) Cells() []Cell { return p.cells }

// Len returns the number of planned cells.
func (p *Plan) Len() int { return len(p.cells) }

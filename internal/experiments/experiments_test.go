package experiments

import (
	"context"
	"runtime"
	"testing"
	"time"

	"vexsmt/internal/core"
	"vexsmt/internal/stats"
	"vexsmt/internal/workload"
	"vexsmt/pkg/vexsmt/sched"
)

// quickScale keeps experiment tests fast; statistical assertions are coarse.
const quickScale = 4000

// ctx is shared by tests that don't exercise cancellation.
var ctx = context.Background()

func TestMatrixMemoizes(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	mix, _ := workload.MixByLabel("mmmm")
	a, err := m.Run(ctx, mix, core.SMT(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(ctx, mix, core.SMT(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Run did not return the memoized result")
	}
	if m.Cells() != 1 {
		t.Fatalf("cells = %d, want 1", m.Cells())
	}
	if len(m.SortedCellKeys()) != 1 {
		t.Fatal("cell keys wrong")
	}
}

func TestFigure13aRows(t *testing.T) {
	rows, err := Figure13a(ctx, quickScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.IPCr <= 0 || r.IPCp < r.IPCr*0.99 {
			t.Errorf("%s: IPCr %.2f IPCp %.2f", r.Name, r.IPCr, r.IPCp)
		}
	}
	// Class ordering must survive measurement: every h beats every l.
	var maxLow, minHigh float64 = 0, 99
	for _, r := range rows {
		if r.Class == 'l' && r.IPCp > maxLow {
			maxLow = r.IPCp
		}
		if r.Class == 'h' && r.IPCp < minHigh {
			minHigh = r.IPCp
		}
	}
	if maxLow >= minHigh {
		t.Errorf("ILP classes overlap: max low %.2f, min high %.2f", maxLow, minHigh)
	}
}

func TestSpeedupSeriesShape(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	s, err := m.Speedups(ctx, core.CCSI(core.CommAlwaysSplit), core.CSMT(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Workloads) != 9 || len(s.Pct) != 9 {
		t.Fatalf("series covers %d workloads, want 9", len(s.Workloads))
	}
	if s.Label != "CCSI AS over CSMT, 4-Thread" {
		t.Fatalf("label %q", s.Label)
	}
	// The headline claim at 4 threads, coarse: positive average speedup.
	if s.Avg <= 0 {
		t.Errorf("CCSI AS average speedup %.2f%% not positive", s.Avg)
	}
}

func TestFigure14SeriesCount(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	series, err := m.Figure14(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4", len(series))
	}
	// 9 workloads x (CSMT + CCSI NS + CCSI AS) x 2 thread counts = 54 runs.
	if m.Cells() != 54 {
		t.Fatalf("cells = %d, want 54", m.Cells())
	}
}

func TestThreadScaling(t *testing.T) {
	mix, _ := workload.MixByLabel("llmh")
	points, err := ThreadScaling(ctx, mix, core.SMT(), []int{1, 2, 4}, quickScale, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if !(points[0].IPC < points[1].IPC && points[1].IPC < points[2].IPC) {
		t.Fatalf("IPC not increasing with threads: %+v", points)
	}
}

func TestPlanDedupsAcrossFigures(t *testing.T) {
	p := NewPlan()
	p.AddFigure14()
	if p.Len() != 54 { // (CSMT + CCSI NS + CCSI AS) x 2 thread counts x 9 mixes
		t.Fatalf("figure 14 plans %d cells, want 54", p.Len())
	}
	p.AddFigure15()
	if p.Len() != 54+90 { // figure 15 adds (SMT + COSI/OOSI NS/AS) x 2 x 9
		t.Fatalf("figures 14+15 plan %d cells, want 144", p.Len())
	}
	// Figure 16 measures all eight techniques: every cell already planned.
	p.AddFigure16()
	if p.Len() != 144 {
		t.Fatalf("figures 14+15+16 plan %d cells, want 144 (full dedup)", p.Len())
	}
	// Adding a figure twice must not grow the plan.
	p.AddFigure14()
	if p.Len() != 144 {
		t.Fatalf("re-adding figure 14 grew the plan to %d", p.Len())
	}
}

func TestPlanFiguresRejectsUnknown(t *testing.T) {
	if _, err := PlanFigures("14", "nonsense"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	p, err := PlanFigures("13a", "13b")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatalf("figures 13a/13b planned %d matrix cells, want 0", p.Len())
	}
}

func TestCellSeedsPairedAndStable(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	p := NewPlan()
	p.AddFigure16()
	// Seeds depend on the workload identity (mix, threads) only: distinct
	// across workload identities, shared across techniques so that
	// technique-vs-baseline comparisons are paired (common random numbers).
	type workloadKey struct {
		mix     string
		threads int
	}
	byWorkload := map[workloadKey]uint64{}
	bySeed := map[uint64]workloadKey{}
	for _, c := range p.Cells() {
		s := m.CellSeed(c)
		if s != m.CellSeed(c) {
			t.Fatalf("%s: seed not stable", c)
		}
		k := workloadKey{c.Mix.Label, c.Threads}
		if prev, ok := byWorkload[k]; ok {
			if s != prev {
				t.Fatalf("%s: seed %x differs from its workload pair %x — comparison unpaired", c, s, prev)
			}
			continue
		}
		if prevK, dup := bySeed[s]; dup {
			t.Fatalf("seed collision between workloads %v and %v", k, prevK)
		}
		byWorkload[k] = s
		bySeed[s] = k
	}
	if len(byWorkload) != 18 { // 9 mixes x 2 thread counts
		t.Fatalf("%d distinct workload seeds, want 18", len(byWorkload))
	}
	// A different base seed must move every cell's seed.
	m2 := NewMatrix(quickScale, 2)
	for _, c := range p.Cells() {
		if _, clash := bySeed[m2.CellSeed(c)]; clash {
			t.Fatalf("%s: base seed 2 collides with base seed 1 grid", c)
		}
	}
}

// detScale keeps the full-grid determinism comparison fast: the assertion
// is bit-identity, not statistics, so tiny runs suffice.
const detScale = 20000

func TestParallelMatchesSerial(t *testing.T) {
	plan, err := PlanFigures("14", "15", "16")
	if err != nil {
		t.Fatal(err)
	}
	serial := NewMatrix(detScale, 1, WithParallelism(1))
	if err := serial.Prefetch(ctx, plan); err != nil {
		t.Fatal(err)
	}
	parallel := NewMatrix(detScale, 1, WithParallelism(8))
	if err := parallel.Prefetch(ctx, plan); err != nil {
		t.Fatal(err)
	}
	sr, pr := serial.Results(), parallel.Results()
	if len(sr) != plan.Len() || len(pr) != plan.Len() {
		t.Fatalf("results: serial %d, parallel %d, want %d", len(sr), len(pr), plan.Len())
	}
	for c, want := range sr {
		got, ok := pr[c]
		if !ok {
			t.Fatalf("%s: missing from parallel results", c)
		}
		if got != want {
			t.Errorf("%s: parallel run differs from serial:\nserial:   %+v\nparallel: %+v", c, want, got)
		}
	}
}

func TestConcurrentRunsSingleflight(t *testing.T) {
	// Hammer one cell from many goroutines: every caller must get the same
	// memoized *stats.Run and the matrix must hold exactly one cell.
	m := NewMatrix(detScale, 1)
	mix, _ := workload.MixByLabel("mmmm")
	const callers = 16
	runs := make([]interface{ IPC() float64 }, callers)
	err := sched.ForEach(ctx, callers, callers, func(i int) error {
		r, err := m.Run(ctx, mix, core.SMT(), 2)
		runs[i] = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < callers; i++ {
		if runs[i] != runs[0] {
			t.Fatal("concurrent callers received different result pointers")
		}
	}
	if m.Cells() != 1 {
		t.Fatalf("cells = %d, want 1", m.Cells())
	}
}

func TestFigure16OrderAndShape(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	points, err := m.Figure16(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 16 {
		t.Fatalf("%d points, want 16", len(points))
	}
	get := func(name string, threads int) float64 {
		for _, p := range points {
			if p.Tech.Name() == name && p.Threads == threads {
				return p.IPC
			}
		}
		t.Fatalf("missing point %s %dT", name, threads)
		return 0
	}
	// Qualitative shape of Figure 16 at 4 threads, where effects are
	// largest: operation-level merging beats cluster-level; split-issue
	// beats no-split within each merge policy.
	if !(get("SMT", 4) > get("CSMT", 4)) {
		t.Error("SMT <= CSMT at 4T")
	}
	if !(get("CCSI AS", 4) > get("CSMT", 4)) {
		t.Error("CCSI AS <= CSMT at 4T")
	}
	if !(get("OOSI AS", 4) > get("SMT", 4)) {
		t.Error("OOSI AS <= SMT at 4T")
	}
	// 4 threads outperform 2 threads for every technique.
	for _, tech := range core.AllTechniques() {
		if !(get(tech.Name(), 4) > get(tech.Name(), 2)) {
			t.Errorf("%s: 4T not above 2T", tech.Name())
		}
	}
	// Split-issue narrows the CSMT-to-SMT gap (the paper's 27% -> 13%
	// observation, qualitatively).
	gapNoSplit := get("SMT", 4) / get("CSMT", 4)
	gapSplit := get("SMT", 4) / get("CCSI AS", 4)
	if !(gapSplit < gapNoSplit) {
		t.Errorf("CCSI AS did not narrow the CSMT/SMT gap: %.3f vs %.3f", gapSplit, gapNoSplit)
	}
}

func TestStreamMatchesSerial(t *testing.T) {
	// The determinism guarantee extends to the streaming path: every cell
	// delivered by Stream is bit-identical to the serial Prefetch result,
	// regardless of completion order.
	plan, err := PlanFigures("14", "15", "16")
	if err != nil {
		t.Fatal(err)
	}
	serial := NewMatrix(detScale, 1, WithParallelism(1))
	if err := serial.Prefetch(ctx, plan); err != nil {
		t.Fatal(err)
	}
	want := serial.Results()

	streamed := NewMatrix(detScale, 1, WithParallelism(8))
	got := make(map[Cell]stats.Run)
	for o := range streamed.Stream(ctx, plan) {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Cell, o.Err)
		}
		if _, dup := got[o.Cell]; dup {
			t.Fatalf("%s: delivered twice", o.Cell)
		}
		got[o.Cell] = *o.Run
	}
	if len(got) != plan.Len() {
		t.Fatalf("streamed %d cells, want %d", len(got), plan.Len())
	}
	for c, w := range want {
		if g, ok := got[c]; !ok {
			t.Fatalf("%s: missing from stream", c)
		} else if g != w {
			t.Errorf("%s: streamed run differs from serial:\nserial:   %+v\nstreamed: %+v", c, w, g)
		}
	}
}

func TestStreamCancellation(t *testing.T) {
	// Cancelling mid-grid must close the stream promptly and leave no
	// workers behind. Scale 50 makes every cell slow enough (~4M instrs)
	// that the grid cannot finish before the cancel lands.
	before := runtime.NumGoroutine()
	plan, err := PlanFigures("14")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	m := NewMatrix(50, 1, WithParallelism(4))
	ch := m.Stream(cctx, plan)
	<-time.After(10 * time.Millisecond)
	cancel()
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, open = <-ch:
		case <-deadline:
			t.Fatal("stream did not close within 5s of cancellation")
		}
	}
	// Workers unwind asynchronously after the channel closes; poll briefly.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before stream, %d after drain", before, runtime.NumGoroutine())
}

func TestCancelledCellNotMemoized(t *testing.T) {
	m := NewMatrix(detScale, 1)
	mix, _ := workload.MixByLabel("mmmm")
	c := Cell{Mix: mix, Tech: core.SMT(), Threads: 2}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunCell(cancelled, c); err == nil {
		t.Fatal("cancelled RunCell returned no error")
	}
	if m.Cells() != 0 {
		t.Fatalf("cancelled cell stayed memoized: %d cells", m.Cells())
	}
	r, err := m.RunCell(ctx, c)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if r.IPC() <= 0 {
		t.Fatal("retried cell produced no work")
	}
}

func TestWaiterSurvivesCancelledLeader(t *testing.T) {
	// One plan's cancellation must not poison another plan sharing cells:
	// a waiter with a live context that piggy-backed on a cancelled leader
	// retries and gets a real result, never the foreign context error.
	mix, _ := workload.MixByLabel("mmmm")
	c := Cell{Mix: mix, Tech: core.SMT(), Threads: 2}
	for round := 0; round < 8; round++ {
		m := NewMatrix(detScale, 1)
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		leaderDone := make(chan struct{})
		go func() {
			defer close(leaderDone)
			_, _ = m.RunCell(cancelled, c) // may or may not win the leadership race
		}()
		r, err := m.RunCell(ctx, c)
		<-leaderDone
		if err != nil {
			t.Fatalf("round %d: live waiter got %v", round, err)
		}
		if r.IPC() <= 0 {
			t.Fatalf("round %d: live waiter got an empty run", round)
		}
	}
}

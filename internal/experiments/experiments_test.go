package experiments

import (
	"testing"

	"vexsmt/internal/core"
	"vexsmt/internal/workload"
)

// quickScale keeps experiment tests fast; statistical assertions are coarse.
const quickScale = 4000

func TestMatrixMemoizes(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	mix, _ := workload.MixByLabel("mmmm")
	a, err := m.Run(mix, core.SMT(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(mix, core.SMT(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Run did not return the memoized result")
	}
	if m.Cells() != 1 {
		t.Fatalf("cells = %d, want 1", m.Cells())
	}
	if len(m.SortedCellKeys()) != 1 {
		t.Fatal("cell keys wrong")
	}
}

func TestFigure13aRows(t *testing.T) {
	rows, err := Figure13a(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.IPCr <= 0 || r.IPCp < r.IPCr*0.99 {
			t.Errorf("%s: IPCr %.2f IPCp %.2f", r.Name, r.IPCr, r.IPCp)
		}
	}
	// Class ordering must survive measurement: every h beats every l.
	var maxLow, minHigh float64 = 0, 99
	for _, r := range rows {
		if r.Class == 'l' && r.IPCp > maxLow {
			maxLow = r.IPCp
		}
		if r.Class == 'h' && r.IPCp < minHigh {
			minHigh = r.IPCp
		}
	}
	if maxLow >= minHigh {
		t.Errorf("ILP classes overlap: max low %.2f, min high %.2f", maxLow, minHigh)
	}
}

func TestSpeedupSeriesShape(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	s, err := m.Speedups(core.CCSI(core.CommAlwaysSplit), core.CSMT(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Workloads) != 9 || len(s.Pct) != 9 {
		t.Fatalf("series covers %d workloads, want 9", len(s.Workloads))
	}
	if s.Label != "CCSI AS over CSMT, 4-Thread" {
		t.Fatalf("label %q", s.Label)
	}
	// The headline claim at 4 threads, coarse: positive average speedup.
	if s.Avg <= 0 {
		t.Errorf("CCSI AS average speedup %.2f%% not positive", s.Avg)
	}
}

func TestFigure14SeriesCount(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	series, err := m.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4", len(series))
	}
	// 9 workloads x (CSMT + CCSI NS + CCSI AS) x 2 thread counts = 54 runs.
	if m.Cells() != 54 {
		t.Fatalf("cells = %d, want 54", m.Cells())
	}
}

func TestThreadScaling(t *testing.T) {
	mix, _ := workload.MixByLabel("llmh")
	points, err := ThreadScaling(mix, core.SMT(), []int{1, 2, 4}, quickScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if !(points[0].IPC < points[1].IPC && points[1].IPC < points[2].IPC) {
		t.Fatalf("IPC not increasing with threads: %+v", points)
	}
}

func TestFigure16OrderAndShape(t *testing.T) {
	m := NewMatrix(quickScale, 1)
	points, err := m.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 16 {
		t.Fatalf("%d points, want 16", len(points))
	}
	get := func(name string, threads int) float64 {
		for _, p := range points {
			if p.Tech.Name() == name && p.Threads == threads {
				return p.IPC
			}
		}
		t.Fatalf("missing point %s %dT", name, threads)
		return 0
	}
	// Qualitative shape of Figure 16 at 4 threads, where effects are
	// largest: operation-level merging beats cluster-level; split-issue
	// beats no-split within each merge policy.
	if !(get("SMT", 4) > get("CSMT", 4)) {
		t.Error("SMT <= CSMT at 4T")
	}
	if !(get("CCSI AS", 4) > get("CSMT", 4)) {
		t.Error("CCSI AS <= CSMT at 4T")
	}
	if !(get("OOSI AS", 4) > get("SMT", 4)) {
		t.Error("OOSI AS <= SMT at 4T")
	}
	// 4 threads outperform 2 threads for every technique.
	for _, tech := range core.AllTechniques() {
		if !(get(tech.Name(), 4) > get(tech.Name(), 2)) {
			t.Errorf("%s: 4T not above 2T", tech.Name())
		}
	}
	// Split-issue narrows the CSMT-to-SMT gap (the paper's 27% -> 13%
	// observation, qualitatively).
	gapNoSplit := get("SMT", 4) / get("CSMT", 4)
	gapSplit := get("SMT", 4) / get("CCSI AS", 4)
	if !(gapSplit < gapNoSplit) {
		t.Errorf("CCSI AS did not narrow the CSMT/SMT gap: %.3f vs %.3f", gapSplit, gapNoSplit)
	}
}

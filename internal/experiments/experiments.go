// Package experiments orchestrates the paper's evaluation (Section VI):
// the single-thread benchmark characterization of Figure 13(a) and the
// 2-thread/4-thread multithreading sweeps behind Figures 14, 15 and 16.
// A Matrix memoizes runs so the three figures share the same simulations,
// exactly as in the paper.
package experiments

import (
	"fmt"
	"sort"

	"vexsmt/internal/core"
	"vexsmt/internal/sim"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
	"vexsmt/internal/workload"
)

// Matrix lazily runs and memoizes (mix, technique, thread-count) cells.
type Matrix struct {
	Scale int64 // divisor of paper scale (1 = paper scale)
	Seed  uint64
	cells map[cellKey]*stats.Run
}

type cellKey struct {
	mix     string
	tech    core.Technique
	threads int
}

// NewMatrix builds an empty result matrix at the given scale.
func NewMatrix(scale int64, seed uint64) *Matrix {
	return &Matrix{Scale: scale, Seed: seed, cells: make(map[cellKey]*stats.Run)}
}

// Run returns the memoized run for one cell, simulating on first use.
func (m *Matrix) Run(mix workload.Mix, tech core.Technique, threads int) (*stats.Run, error) {
	key := cellKey{mix.Label, tech, threads}
	if r, ok := m.cells[key]; ok {
		return r, nil
	}
	cfg := sim.DefaultConfig(tech, threads).WithScale(m.Scale)
	cfg.Seed = m.Seed
	profs, err := mix.Profiles()
	if err != nil {
		return nil, err
	}
	s, err := sim.NewWorkload(cfg, profs)
	if err != nil {
		return nil, err
	}
	r, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s/%dT: %w", mix.Label, tech.Name(), threads, err)
	}
	m.cells[key] = r
	return r, nil
}

// ---------------------------------------------------------------------------
// Figure 13(a)

// Fig13Row pairs paper-reported and measured single-thread IPC.
type Fig13Row struct {
	Name                 string
	Class                synth.ILPClass
	PaperIPCr, PaperIPCp float64
	IPCr, IPCp           float64
}

// Figure13a measures every benchmark single-threaded with real and perfect
// memory.
func Figure13a(scale int64) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, pr := range workload.PaperFigure13a() {
		prof, ok := synth.ByName(pr.Name)
		if !ok {
			return nil, fmt.Errorf("experiments: no profile for %s", pr.Name)
		}
		ipcr, ipcp, err := sim.MeasuredIPC(prof, scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig13Row{
			Name: pr.Name, Class: pr.Class,
			PaperIPCr: pr.IPCr, PaperIPCp: pr.IPCp,
			IPCr: ipcr, IPCp: ipcp,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figures 14 and 15: per-workload speedups

// SpeedupSeries is one bar group: speedup percentage per workload plus the
// average, for one (technique, baseline, thread count) combination.
type SpeedupSeries struct {
	Label     string // e.g. "CCSI AS over CSMT, 4-Thread"
	Tech      core.Technique
	Baseline  core.Technique
	Threads   int
	Workloads []string
	Pct       []float64 // per workload, same order as Workloads
	Avg       float64
}

// Speedups computes one series across all nine mixes.
func (m *Matrix) Speedups(tech, baseline core.Technique, threads int) (SpeedupSeries, error) {
	s := SpeedupSeries{
		Label: fmt.Sprintf("%s over %s, %d-Thread", tech.Name(), baseline.Name(), threads),
		Tech:  tech, Baseline: baseline, Threads: threads,
	}
	var sum float64
	for _, mix := range workload.Figure13b() {
		rt, err := m.Run(mix, tech, threads)
		if err != nil {
			return s, err
		}
		rb, err := m.Run(mix, baseline, threads)
		if err != nil {
			return s, err
		}
		pct := stats.SpeedupPct(rt, rb)
		s.Workloads = append(s.Workloads, mix.Label)
		s.Pct = append(s.Pct, pct)
		sum += pct
	}
	s.Avg = sum / float64(len(s.Pct))
	return s, nil
}

// Figure14 returns the four series of the paper's Figure 14: CCSI NS and
// CCSI AS over CSMT, for 2-thread and 4-thread machines.
func (m *Matrix) Figure14() ([]SpeedupSeries, error) {
	var out []SpeedupSeries
	for _, threads := range []int{2, 4} {
		for _, comm := range []core.CommPolicy{core.CommNoSplit, core.CommAlwaysSplit} {
			s, err := m.Speedups(core.CCSI(comm), core.CSMT(), threads)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Figure15 returns the eight series of the paper's Figure 15: COSI NS/AS
// and OOSI NS/AS over SMT, for 2-thread and 4-thread machines.
func (m *Matrix) Figure15() ([]SpeedupSeries, error) {
	var out []SpeedupSeries
	for _, threads := range []int{2, 4} {
		for _, tech := range []core.Technique{
			core.COSI(core.CommNoSplit), core.COSI(core.CommAlwaysSplit),
			core.OOSI(core.CommNoSplit), core.OOSI(core.CommAlwaysSplit),
		} {
			s, err := m.Speedups(tech, core.SMT(), threads)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 16: absolute IPC of every technique

// IPCPoint is one bar of Figure 16.
type IPCPoint struct {
	Tech    core.Technique
	Threads int
	IPC     float64 // average over the nine workloads
}

// Figure16 returns average IPC for the eight techniques at 2 and 4 threads,
// in the paper's presentation order.
func (m *Matrix) Figure16() ([]IPCPoint, error) {
	var out []IPCPoint
	for _, threads := range []int{2, 4} {
		for _, tech := range core.AllTechniques() {
			var sum float64
			for _, mix := range workload.Figure13b() {
				r, err := m.Run(mix, tech, threads)
				if err != nil {
					return nil, err
				}
				sum += r.IPC()
			}
			out = append(out, IPCPoint{Tech: tech, Threads: threads,
				IPC: sum / float64(len(workload.Figure13b()))})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Thread scaling (not a paper figure; supports the Section I motivation)

// ScalePoint is one point of a thread-count scaling study.
type ScalePoint struct {
	Threads int
	IPC     float64
}

// ThreadScaling measures one mix under one technique across thread counts.
func ThreadScaling(mix workload.Mix, tech core.Technique, threadCounts []int, scale int64, seed uint64) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, th := range threadCounts {
		cfg := sim.DefaultConfig(tech, th).WithScale(scale)
		cfg.Seed = seed
		profs, err := mix.Profiles()
		if err != nil {
			return nil, err
		}
		s, err := sim.NewWorkload(cfg, profs)
		if err != nil {
			return nil, err
		}
		r, err := s.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{Threads: th, IPC: r.IPC()})
	}
	return out, nil
}

// Cells returns the memoized cell count (test instrumentation).
func (m *Matrix) Cells() int { return len(m.cells) }

// SortedCellKeys aids deterministic debugging output.
func (m *Matrix) SortedCellKeys() []string {
	keys := make([]string, 0, len(m.cells))
	for k := range m.cells {
		keys = append(keys, fmt.Sprintf("%s/%s/%dT", k.mix, k.tech.Name(), k.threads))
	}
	sort.Strings(keys)
	return keys
}

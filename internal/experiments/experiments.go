// Package experiments orchestrates the paper's evaluation (Section VI):
// the single-thread benchmark characterization of Figure 13(a) and the
// 2-thread/4-thread multithreading sweeps behind Figures 14, 15 and 16.
//
// The evaluation is a grid of independent (mix, technique, thread-count)
// simulations, organized plan-then-execute: a Plan enumerates and dedups
// the cells a set of figures needs, and a Matrix executes them over a
// bounded worker pool with singleflight memoization, so the three figures
// share the same simulations — exactly as in the paper — while saturating
// the machine. Per-cell seeds derive from the cell's workload identity
// (internal/rng), so parallel and serial runs are bit-identical and
// technique-vs-baseline comparisons stay paired.
package experiments

import (
	"context"
	"fmt"

	"vexsmt/internal/core"
	"vexsmt/internal/sim"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
	"vexsmt/internal/workload"
	"vexsmt/pkg/vexsmt/sched"
)

// ---------------------------------------------------------------------------
// Figure 13(a)

// Fig13Row pairs paper-reported and measured single-thread IPC.
type Fig13Row struct {
	Name                 string
	Class                synth.ILPClass
	PaperIPCr, PaperIPCp float64
	IPCr, IPCp           float64
}

// Figure13a measures every benchmark single-threaded with real and perfect
// memory. Benchmarks are independent, so they run concurrently over at
// most parallel workers (< 1 selects GOMAXPROCS); the row order is the
// paper's table order regardless of completion order.
func Figure13a(ctx context.Context, scale int64, parallel int) ([]Fig13Row, error) {
	paper := workload.PaperFigure13a()
	rows := make([]Fig13Row, len(paper))
	err := sched.ForEach(ctx, parallel, len(paper), func(i int) error {
		pr := paper[i]
		prof, ok := synth.ByName(pr.Name)
		if !ok {
			return fmt.Errorf("experiments: no profile for %s", pr.Name)
		}
		ipcr, ipcp, err := sim.MeasuredIPC(prof, scale)
		if err != nil {
			return err
		}
		rows[i] = Fig13Row{
			Name: pr.Name, Class: pr.Class,
			PaperIPCr: pr.IPCr, PaperIPCp: pr.IPCp,
			IPCr: ipcr, IPCp: ipcp,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figures 14 and 15: per-workload speedups

// SpeedupSeries is one bar group: speedup percentage per workload plus the
// average, for one (technique, baseline, thread count) combination.
type SpeedupSeries struct {
	Label     string // e.g. "CCSI AS over CSMT, 4-Thread"
	Tech      core.Technique
	Baseline  core.Technique
	Threads   int
	Workloads []string
	Pct       []float64 // per workload, same order as Workloads
	Avg       float64
}

// Speedups computes one series across all nine mixes: both techniques'
// cells are prefetched in parallel, then the series assembles from the
// memoized results.
func (m *Matrix) Speedups(ctx context.Context, tech, baseline core.Technique, threads int) (SpeedupSeries, error) {
	s := SpeedupSeries{
		Label: fmt.Sprintf("%s over %s, %d-Thread", tech.Name(), baseline.Name(), threads),
		Tech:  tech, Baseline: baseline, Threads: threads,
	}
	p := NewPlan()
	p.AddMixSweep(tech, threads)
	p.AddMixSweep(baseline, threads)
	if err := m.Prefetch(ctx, p); err != nil {
		return s, err
	}
	var sum float64
	for _, mix := range workload.Figure13b() {
		rt, err := m.Run(ctx, mix, tech, threads)
		if err != nil {
			return s, err
		}
		rb, err := m.Run(ctx, mix, baseline, threads)
		if err != nil {
			return s, err
		}
		pct := stats.SpeedupPct(rt, rb)
		s.Workloads = append(s.Workloads, mix.Label)
		s.Pct = append(s.Pct, pct)
		sum += pct
	}
	s.Avg = sum / float64(len(s.Pct))
	return s, nil
}

// Figure14 returns the four series of the paper's Figure 14: CCSI NS and
// CCSI AS over CSMT, for 2-thread and 4-thread machines. The whole grid is
// prefetched concurrently before the series assemble.
func (m *Matrix) Figure14(ctx context.Context) ([]SpeedupSeries, error) {
	p := NewPlan()
	p.AddFigure14()
	if err := m.Prefetch(ctx, p); err != nil {
		return nil, err
	}
	var out []SpeedupSeries
	for _, threads := range figureThreadCounts() {
		for _, comm := range []core.CommPolicy{core.CommNoSplit, core.CommAlwaysSplit} {
			s, err := m.Speedups(ctx, core.CCSI(comm), core.CSMT(), threads)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Figure15 returns the eight series of the paper's Figure 15: COSI NS/AS
// and OOSI NS/AS over SMT, for 2-thread and 4-thread machines.
func (m *Matrix) Figure15(ctx context.Context) ([]SpeedupSeries, error) {
	p := NewPlan()
	p.AddFigure15()
	if err := m.Prefetch(ctx, p); err != nil {
		return nil, err
	}
	var out []SpeedupSeries
	for _, threads := range figureThreadCounts() {
		for _, tech := range []core.Technique{
			core.COSI(core.CommNoSplit), core.COSI(core.CommAlwaysSplit),
			core.OOSI(core.CommNoSplit), core.OOSI(core.CommAlwaysSplit),
		} {
			s, err := m.Speedups(ctx, tech, core.SMT(), threads)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 16: absolute IPC of every technique

// IPCPoint is one bar of Figure 16.
type IPCPoint struct {
	Tech    core.Technique
	Threads int
	IPC     float64 // average over the nine workloads
}

// Figure16 returns average IPC for the eight techniques at 2 and 4 threads,
// in the paper's presentation order.
func (m *Matrix) Figure16(ctx context.Context) ([]IPCPoint, error) {
	p := NewPlan()
	p.AddFigure16()
	if err := m.Prefetch(ctx, p); err != nil {
		return nil, err
	}
	var out []IPCPoint
	for _, threads := range figureThreadCounts() {
		for _, tech := range core.AllTechniques() {
			var sum float64
			for _, mix := range workload.Figure13b() {
				r, err := m.Run(ctx, mix, tech, threads)
				if err != nil {
					return nil, err
				}
				sum += r.IPC()
			}
			out = append(out, IPCPoint{Tech: tech, Threads: threads,
				IPC: sum / float64(len(workload.Figure13b()))})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Thread scaling (not a paper figure; supports the Section I motivation)

// ScalePoint is one point of a thread-count scaling study.
type ScalePoint struct {
	Threads int
	IPC     float64
}

// ThreadScaling measures one mix under one technique across thread counts
// over at most parallel workers (< 1 selects GOMAXPROCS).
// Points run concurrently; all share the caller's seed so every point sees
// identical workload streams and the curve isolates the thread-count
// effect (each point's simulator owns its random stream, so sharing the
// seed is parallel-safe).
func ThreadScaling(ctx context.Context, mix workload.Mix, tech core.Technique, threadCounts []int, scale int64, seed uint64, parallel int) ([]ScalePoint, error) {
	out := make([]ScalePoint, len(threadCounts))
	err := sched.ForEach(ctx, parallel, len(threadCounts), func(i int) error {
		th := threadCounts[i]
		cfg := sim.DefaultConfig(tech, th).WithScale(scale)
		cfg.Seed = seed
		profs, err := mix.Profiles()
		if err != nil {
			return err
		}
		s, err := sim.NewWorkload(cfg, profs)
		if err != nil {
			return err
		}
		r, err := s.RunContext(ctx)
		if err != nil {
			return err
		}
		out[i] = ScalePoint{Threads: th, IPC: r.IPC()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

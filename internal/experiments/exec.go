package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vexsmt/internal/core"
	"vexsmt/internal/rng"
	"vexsmt/internal/sim"
	"vexsmt/internal/stats"
	"vexsmt/internal/workload"
)

// Matrix runs and memoizes (mix, technique, thread-count) cells. It is
// safe for concurrent use: concurrent requests for the same cell simulate
// it exactly once (singleflight), and every cell draws its random stream
// from a seed derived purely from the cell's workload identity, so
// results are bit-identical no matter how many workers run the grid or
// in what order. Cancelling the context passed to RunCell/Prefetch/Stream
// aborts in-flight simulations within one timeslice; cancelled cells are
// not memoized, so a later call with a live context re-simulates them.
type Matrix struct {
	Scale int64 // divisor of paper scale (1 = paper scale)
	Seed  uint64

	parallel int // fixed at construction; no mid-run mutation

	mu    sync.Mutex
	cells map[Cell]*cellCall
}

// cellCall is one memoized simulation: done closes when run/err are final.
type cellCall struct {
	done chan struct{}
	run  *stats.Run
	err  error
}

// MatrixOption configures a Matrix at construction time.
type MatrixOption func(*Matrix)

// WithParallelism bounds the worker pool used by Prefetch, Stream and the
// figure methods; n < 1 selects GOMAXPROCS. Parallelism is fixed for the
// matrix's lifetime — the old SetParallelism mutator was a data race
// waiting to happen once figures ran concurrently.
func WithParallelism(n int) MatrixOption {
	return func(m *Matrix) {
		if n >= 1 {
			m.parallel = n
		}
	}
}

// NewMatrix builds an empty result matrix at the given scale. Parallelism
// defaults to GOMAXPROCS and is fixed at construction.
func NewMatrix(scale int64, seed uint64, opts ...MatrixOption) *Matrix {
	m := &Matrix{
		Scale:    scale,
		Seed:     seed,
		parallel: runtime.GOMAXPROCS(0),
		cells:    make(map[Cell]*cellCall),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Parallelism returns the worker-pool bound.
func (m *Matrix) Parallelism() int { return m.parallel }

// CellSeed derives the deterministic seed for one cell, splitmix-style
// from {Seed, mix, threads}. The technique is deliberately excluded:
// cfg.Seed drives the synthetic instruction streams and the context-
// switch schedule, and the paper's speedup figures divide a technique's
// IPC by its baseline's on the *same* workload — a common-random-numbers
// pairing that small-scale runs need for stability. Every technique of a
// (mix, threads) pair therefore shares one seed, while parallel and
// serial execution stay bit-identical because each cell's simulator owns
// its entire random stream. Exposed so tests and tools can reproduce a
// single cell in isolation.
func (m *Matrix) CellSeed(c Cell) uint64 {
	return rng.DeriveSeed(m.Seed,
		rng.StringToken(c.Mix.Label),
		uint64(c.Threads))
}

// Run returns the memoized run for one cell, simulating on first use.
// Concurrent callers of the same cell share one simulation.
func (m *Matrix) Run(ctx context.Context, mix workload.Mix, tech core.Technique, threads int) (*stats.Run, error) {
	return m.RunCell(ctx, Cell{Mix: mix, Tech: tech, Threads: threads})
}

// RunCell is Run keyed by Cell. A cell that aborts on context cancellation
// is forgotten rather than memoized, so retrying with a live context
// simulates it afresh. A waiter piggy-backing on a leader that was
// cancelled does not inherit the foreign context error: if its own
// context is still live it becomes (or joins) the next leader and the
// cell simulates again — one plan's cancellation never poisons another
// plan sharing cells on the same matrix.
func (m *Matrix) RunCell(ctx context.Context, c Cell) (*stats.Run, error) {
	for {
		m.mu.Lock()
		if call, ok := m.cells[c]; ok {
			m.mu.Unlock()
			select {
			case <-call.done:
				if call.err != nil && isCtxErr(call.err) && ctx.Err() == nil {
					continue // leader cancelled, we are live: retry
				}
				return call.run, call.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		call := &cellCall{done: make(chan struct{})}
		m.cells[c] = call
		m.mu.Unlock()

		call.run, call.err = m.simulate(ctx, c)
		if call.err != nil && ctx.Err() != nil {
			// Cancelled, not failed: drop the memo so a retry re-simulates.
			m.mu.Lock()
			delete(m.cells, c)
			m.mu.Unlock()
		}
		close(call.done)
		return call.run, call.err
	}
}

// isCtxErr reports whether err stems from context cancellation or
// deadline expiry (possibly wrapped by simulate).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// simulate runs one cell from scratch. It touches no Matrix state beyond
// the immutable Scale/Seed, so any number of cells may simulate at once.
func (m *Matrix) simulate(ctx context.Context, c Cell) (*stats.Run, error) {
	cfg := sim.DefaultConfig(c.Tech, c.Threads).WithScale(m.Scale)
	cfg.Seed = m.CellSeed(c)
	profs, err := c.Mix.Profiles()
	if err != nil {
		return nil, err
	}
	s, err := sim.NewWorkload(cfg, profs)
	if err != nil {
		return nil, err
	}
	r, err := s.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", c, err)
	}
	return r, nil
}

// Prefetch simulates every cell of a plan over a bounded worker pool and
// returns the first error. After a successful Prefetch, figure assembly
// only reads memoized results. Cancelling ctx stops dispatching new cells
// and aborts in-flight ones within a timeslice.
func (m *Matrix) Prefetch(ctx context.Context, p *Plan) error {
	cells := p.Cells()
	return forEachLimit(ctx, m.parallel, len(cells), func(i int) error {
		_, err := m.RunCell(ctx, cells[i])
		return err
	})
}

// CellOutcome is one streamed cell completion: the cell, its memoized run
// on success, or the error that stopped it.
type CellOutcome struct {
	Cell Cell
	Run  *stats.Run
	Err  error
}

// Stream simulates every cell of a plan over the worker pool and delivers
// each outcome as it completes, instead of blocking behind Prefetch's
// barrier. The channel closes once all cells have been delivered or, after
// cancellation, once the in-flight cells have drained (within one
// timeslice — workers never leak). Completion order is nondeterministic
// but every delivered result is bit-identical to a serial run: cells
// derive their seeds from workload identity alone.
func (m *Matrix) Stream(ctx context.Context, p *Plan) <-chan CellOutcome {
	cells := p.Cells()
	out := make(chan CellOutcome)
	go func() {
		defer close(out)
		_ = forEachLimit(ctx, m.parallel, len(cells), func(i int) error {
			r, err := m.RunCell(ctx, cells[i])
			select {
			case out <- CellOutcome{Cell: cells[i], Run: r, Err: err}:
			case <-ctx.Done():
			}
			return err
		})
	}()
	return out
}

// Results returns a snapshot of every successfully simulated cell.
func (m *Matrix) Results() map[Cell]stats.Run {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Cell]stats.Run, len(m.cells))
	for c, call := range m.cells {
		select {
		case <-call.done:
			if call.err == nil {
				out[c] = *call.run
			}
		default: // still simulating; skip
		}
	}
	return out
}

// Cells returns the memoized cell count (test instrumentation).
func (m *Matrix) Cells() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cells)
}

// SortedCellKeys aids deterministic debugging output.
func (m *Matrix) SortedCellKeys() []string {
	m.mu.Lock()
	keys := make([]string, 0, len(m.cells))
	for c := range m.cells {
		keys = append(keys, c.String())
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// forEachLimit runs fn(0..n-1) over at most limit concurrent workers and
// returns the first error. Plain errors do not stop the sweep — simulation
// cells are independent, so finishing them keeps the memo warm for whoever
// retries — but a cancelled context stops dispatching immediately and the
// pool drains.
func forEachLimit(ctx context.Context, limit, n int, fn func(i int) error) error {
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if first == nil {
					first = err
				}
				break
			}
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		next  = make(chan int)
	)
	record := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					record(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			record(ctx.Err())
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return first
}

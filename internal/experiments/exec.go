package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vexsmt/internal/core"
	"vexsmt/internal/rng"
	"vexsmt/internal/sim"
	"vexsmt/internal/stats"
	"vexsmt/internal/workload"
)

// Matrix runs and memoizes (mix, technique, thread-count) cells. It is
// safe for concurrent use: concurrent requests for the same cell simulate
// it exactly once (singleflight), and every cell draws its random stream
// from a seed derived purely from the cell's workload identity, so
// results are bit-identical no matter how many workers run the grid or
// in what order.
type Matrix struct {
	Scale int64 // divisor of paper scale (1 = paper scale)
	Seed  uint64

	parallel int

	mu    sync.Mutex
	cells map[Cell]*cellCall
}

// cellCall is one memoized simulation: done closes when run/err are final.
type cellCall struct {
	done chan struct{}
	run  *stats.Run
	err  error
}

// NewMatrix builds an empty result matrix at the given scale. Parallelism
// defaults to GOMAXPROCS.
func NewMatrix(scale int64, seed uint64) *Matrix {
	return &Matrix{
		Scale:    scale,
		Seed:     seed,
		parallel: runtime.GOMAXPROCS(0),
		cells:    make(map[Cell]*cellCall),
	}
}

// SetParallelism bounds the worker pool used by Prefetch and the figure
// methods; n < 1 resets to GOMAXPROCS. It must not be called concurrently
// with running figures.
func (m *Matrix) SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	m.parallel = n
}

// Parallelism returns the current worker-pool bound.
func (m *Matrix) Parallelism() int { return m.parallel }

// CellSeed derives the deterministic seed for one cell, splitmix-style
// from {Seed, mix, threads}. The technique is deliberately excluded:
// cfg.Seed drives the synthetic instruction streams and the context-
// switch schedule, and the paper's speedup figures divide a technique's
// IPC by its baseline's on the *same* workload — a common-random-numbers
// pairing that small-scale runs need for stability. Every technique of a
// (mix, threads) pair therefore shares one seed, while parallel and
// serial execution stay bit-identical because each cell's simulator owns
// its entire random stream. Exposed so tests and tools can reproduce a
// single cell in isolation.
func (m *Matrix) CellSeed(c Cell) uint64 {
	return rng.DeriveSeed(m.Seed,
		rng.StringToken(c.Mix.Label),
		uint64(c.Threads))
}

// Run returns the memoized run for one cell, simulating on first use.
// Concurrent callers of the same cell share one simulation.
func (m *Matrix) Run(mix workload.Mix, tech core.Technique, threads int) (*stats.Run, error) {
	return m.RunCell(Cell{Mix: mix, Tech: tech, Threads: threads})
}

// RunCell is Run keyed by Cell.
func (m *Matrix) RunCell(c Cell) (*stats.Run, error) {
	m.mu.Lock()
	if call, ok := m.cells[c]; ok {
		m.mu.Unlock()
		<-call.done
		return call.run, call.err
	}
	call := &cellCall{done: make(chan struct{})}
	m.cells[c] = call
	m.mu.Unlock()

	call.run, call.err = m.simulate(c)
	close(call.done)
	return call.run, call.err
}

// simulate runs one cell from scratch. It touches no Matrix state beyond
// the immutable Scale/Seed, so any number of cells may simulate at once.
func (m *Matrix) simulate(c Cell) (*stats.Run, error) {
	cfg := sim.DefaultConfig(c.Tech, c.Threads).WithScale(m.Scale)
	cfg.Seed = m.CellSeed(c)
	profs, err := c.Mix.Profiles()
	if err != nil {
		return nil, err
	}
	s, err := sim.NewWorkload(cfg, profs)
	if err != nil {
		return nil, err
	}
	r, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", c, err)
	}
	return r, nil
}

// Prefetch simulates every cell of a plan over a bounded worker pool and
// returns the first error. After a successful Prefetch, figure assembly
// only reads memoized results.
func (m *Matrix) Prefetch(p *Plan) error {
	cells := p.Cells()
	return forEachLimit(m.parallel, len(cells), func(i int) error {
		_, err := m.RunCell(cells[i])
		return err
	})
}

// Results returns a snapshot of every successfully simulated cell.
func (m *Matrix) Results() map[Cell]stats.Run {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Cell]stats.Run, len(m.cells))
	for c, call := range m.cells {
		select {
		case <-call.done:
			if call.err == nil {
				out[c] = *call.run
			}
		default: // still simulating; skip
		}
	}
	return out
}

// Cells returns the memoized cell count (test instrumentation).
func (m *Matrix) Cells() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cells)
}

// SortedCellKeys aids deterministic debugging output.
func (m *Matrix) SortedCellKeys() []string {
	m.mu.Lock()
	keys := make([]string, 0, len(m.cells))
	for c := range m.cells {
		keys = append(keys, c.String())
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// forEachLimit runs fn(0..n-1) over at most limit concurrent workers and
// returns the first error. All items run even after an error is recorded;
// simulation cells are independent, so finishing them keeps the memo warm
// for whoever retries.
func forEachLimit(limit, n int, fn func(i int) error) error {
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		next  = make(chan int)
	)
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return first
}

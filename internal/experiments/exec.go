package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vexsmt/internal/core"
	"vexsmt/internal/rng"
	"vexsmt/internal/sim"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
	"vexsmt/internal/workload"
	"vexsmt/internal/wstore"
	"vexsmt/pkg/vexsmt/sched"
)

// Matrix runs and memoizes (mix, technique, thread-count) cells. It is
// safe for concurrent use: concurrent requests for the same cell resolve
// it exactly once (singleflight), and every cell draws its random stream
// from a seed derived purely from the cell's workload identity, so
// results are bit-identical no matter how many workers run the grid or
// in what order. Cancelling the context passed to RunCell/Prefetch/Stream
// aborts in-flight simulations within one timeslice; cancelled cells are
// not memoized, so a later call with a live context re-simulates them.
//
// The worker pool behind Prefetch/Stream is pkg/vexsmt/sched — the same
// cell-level scheduler the distributed coordinator uses — with the matrix
// as its single backend. An optional ResultCache short-circuits
// simulation entirely: a cell found in the cache is decoded instead of
// simulated, and a simulated cell is stored for the next run.
type Matrix struct {
	Scale int64 // divisor of paper scale (1 = paper scale)
	Seed  uint64

	parallel int // fixed at construction; no mid-run mutation

	cache    ResultCache
	cacheKey func(Cell) string
	wl       *wstore.Store // trace workloads; defaults to the process-global store

	sims atomic.Int64 // simulator runs actually performed (cache hits excluded)

	mu    sync.Mutex
	cells map[Cell]*cellCall
}

// ResultCache is the content-addressed store a Matrix consults before
// simulating and populates after. Payloads are the JSON encoding of
// stats.Run — all-integer counters, so the round trip is exact and a
// cached cell is bit-identical to a simulated one. Both methods must be
// concurrency-safe and best-effort (a miss costs a re-simulation, never
// correctness). pkg/vexsmt supplies the key function; this package stays
// ignorant of how keys are derived.
type ResultCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
}

// cellCall is one memoized resolution: done closes when run/err are final.
type cellCall struct {
	done   chan struct{}
	run    *stats.Run
	cached bool // recalled from the ResultCache rather than simulated
	err    error
}

// MatrixOption configures a Matrix at construction time.
type MatrixOption func(*Matrix)

// WithParallelism bounds the worker pool used by Prefetch, Stream and the
// figure methods; n < 1 selects GOMAXPROCS. Parallelism is fixed for the
// matrix's lifetime — the old SetParallelism mutator was a data race
// waiting to happen once figures ran concurrently.
func WithParallelism(n int) MatrixOption {
	return func(m *Matrix) {
		if n >= 1 {
			m.parallel = n
		}
	}
}

// WithResultCache attaches a result cache and the function deriving each
// cell's content address. Both must be non-nil for the option to take
// effect.
func WithResultCache(c ResultCache, key func(Cell) string) MatrixOption {
	return func(m *Matrix) {
		if c != nil && key != nil {
			m.cache = c
			m.cacheKey = key
		}
	}
}

// WithWorkloadStore points trace-backed cells at a specific wstore. The
// default is the process-global shared store; tests substitute private
// ones.
func WithWorkloadStore(s *wstore.Store) MatrixOption {
	return func(m *Matrix) {
		if s != nil {
			m.wl = s
		}
	}
}

// NewMatrix builds an empty result matrix at the given scale. Parallelism
// defaults to GOMAXPROCS and is fixed at construction.
func NewMatrix(scale int64, seed uint64, opts ...MatrixOption) *Matrix {
	m := &Matrix{
		Scale:    scale,
		Seed:     seed,
		parallel: runtime.GOMAXPROCS(0),
		wl:       wstore.Shared(),
		cells:    make(map[Cell]*cellCall),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Parallelism returns the worker-pool bound.
func (m *Matrix) Parallelism() int { return m.parallel }

// Simulations returns how many simulator runs the matrix has performed.
// Cache hits do not count: a fully warm sweep reports 0.
func (m *Matrix) Simulations() int64 { return m.sims.Load() }

// CellSeed derives the deterministic seed for one cell, splitmix-style
// from {Seed, mix, threads}. The technique — and the predictor, for the
// same reason — is deliberately excluded: cfg.Seed drives the synthetic
// instruction streams and the context-switch schedule, and the paper's
// speedup figures divide a technique's IPC by its baseline's on the
// *same* workload — a common-random-numbers pairing that small-scale
// runs need for stability. Every technique (and predictor) of a
// (mix, threads) pair therefore shares one seed, so a predictor sweep
// measures front-end effects against an identical instruction stream,
// while parallel and serial execution stay bit-identical because each
// cell's simulator owns its entire random stream. Exposed so tests and
// tools can reproduce a single cell in isolation.
func (m *Matrix) CellSeed(c Cell) uint64 {
	if c.WL != "" {
		// Trace cells: the content reference plays the mix label's role.
		// A reference always contains '@' + a hex hash, so it can never
		// collide with a four-letter mix label.
		return rng.DeriveSeed(m.Seed,
			rng.StringToken(c.WL),
			uint64(c.Threads))
	}
	return rng.DeriveSeed(m.Seed,
		rng.StringToken(c.Mix.Label),
		uint64(c.Threads))
}

// Run returns the memoized run for one cell, simulating on first use.
// Concurrent callers of the same cell share one simulation.
func (m *Matrix) Run(ctx context.Context, mix workload.Mix, tech core.Technique, threads int) (*stats.Run, error) {
	return m.RunCell(ctx, Cell{Mix: mix, Tech: tech, Threads: threads})
}

// RunCell is Run keyed by Cell.
func (m *Matrix) RunCell(ctx context.Context, c Cell) (*stats.Run, error) {
	r, _, err := m.RunCellInfo(ctx, c)
	return r, err
}

// RunCellInfo resolves one cell and additionally reports whether the
// result came from the ResultCache rather than a simulation (a cell
// memoized by an earlier call reports however it was first resolved).
// A cell that aborts on context cancellation is forgotten rather than
// memoized, so retrying with a live context resolves it afresh. A waiter
// piggy-backing on a leader that was cancelled does not inherit the
// foreign context error: if its own context is still live it becomes (or
// joins) the next leader and the cell resolves again — one plan's
// cancellation never poisons another plan sharing cells on the same
// matrix.
func (m *Matrix) RunCellInfo(ctx context.Context, c Cell) (*stats.Run, bool, error) {
	for {
		m.mu.Lock()
		if call, ok := m.cells[c]; ok {
			m.mu.Unlock()
			select {
			case <-call.done:
				if call.err != nil && isCtxErr(call.err) && ctx.Err() == nil {
					continue // leader cancelled, we are live: retry
				}
				return call.run, call.cached, call.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		call := &cellCall{done: make(chan struct{})}
		m.cells[c] = call
		m.mu.Unlock()

		call.run, call.cached, call.err = m.fetchOrSimulate(ctx, c)
		if call.err != nil && ctx.Err() != nil {
			// Cancelled, not failed: drop the memo so a retry re-simulates.
			m.mu.Lock()
			delete(m.cells, c)
			m.mu.Unlock()
		}
		close(call.done)
		return call.run, call.cached, call.err
	}
}

// isCtxErr reports whether err stems from context cancellation or
// deadline expiry (possibly wrapped by simulate).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// fetchOrSimulate resolves one cell: cache first, simulator on a miss,
// populating the cache on the way out. A cache entry that fails to decode
// (foreign payload behind a valid checksum) degrades to a miss.
func (m *Matrix) fetchOrSimulate(ctx context.Context, c Cell) (*stats.Run, bool, error) {
	if m.cache != nil {
		if b, ok := m.cache.Get(m.cacheKey(c)); ok {
			var r stats.Run
			if err := json.Unmarshal(b, &r); err == nil {
				return &r, true, nil
			}
		}
	}
	r, err := m.simulate(ctx, c)
	if err != nil {
		return nil, false, err
	}
	if m.cache != nil {
		if b, err := json.Marshal(r); err == nil {
			m.cache.Put(m.cacheKey(c), b)
		}
	}
	return r, false, nil
}

// simulate runs one cell from scratch. It touches no Matrix state beyond
// the immutable Scale/Seed and the simulation counter, so any number of
// cells may simulate at once.
func (m *Matrix) simulate(ctx context.Context, c Cell) (*stats.Run, error) {
	cfg := sim.DefaultConfig(c.Tech, c.Threads).WithScale(m.Scale)
	cfg.Seed = m.CellSeed(c)
	cfg.Predictor = c.Pred
	var s *sim.Simulator
	var err error
	if c.WL != "" {
		s, err = m.newTraceSim(cfg, c)
	} else {
		var profs []synth.Profile
		profs, err = c.Mix.Profiles()
		if err != nil {
			return nil, err
		}
		s, err = sim.NewWorkload(cfg, profs)
	}
	if err != nil {
		return nil, err
	}
	r, err := s.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", c, err)
	}
	// Counted on completion only, so a cancelled attempt that re-simulates
	// later doesn't double-count and Simulations() means what it says.
	m.sims.Add(1)
	return r, nil
}

// newTraceSim builds a simulator whose every hardware context replays the
// cell's trace workload from the shared wstore arena: one zero-copy cursor
// per context, no decoding, no per-cell copies. The simulator's own seed
// (context-switch schedule, cache state) still derives from the cell, so
// trace cells are exactly as deterministic as synthetic ones.
func (m *Matrix) newTraceSim(cfg sim.Config, c Cell) (*sim.Simulator, error) {
	tr, ok := m.wl.Resolve(c.WL)
	if !ok {
		return nil, fmt.Errorf("experiments: workload %q is not loaded in this process", c.WL)
	}
	jobs := make([]*sim.Job, c.Threads)
	for i := range jobs {
		r, err := tr.NewReplayer()
		if err != nil {
			return nil, err
		}
		jobs[i] = sim.NewJob(r, cfg.ScaleDiv)
	}
	return sim.New(cfg, jobs)
}

// Prefetch resolves every cell of a plan over the scheduler and returns
// the first error. After a successful Prefetch, figure assembly only
// reads memoized results. Plain cell errors do not stop the sweep —
// cells are independent, and finishing keeps the memo warm for whoever
// retries — but cancelling ctx stops dispatching and drains the workers.
func (m *Matrix) Prefetch(ctx context.Context, p *Plan) error {
	var first error
	for o := range m.Stream(ctx, p) {
		if o.Err != nil && first == nil {
			first = o.Err
		}
	}
	if err := ctx.Err(); err != nil && first == nil {
		first = err
	}
	return first
}

// CellOutcome is one streamed cell completion: the cell, its memoized run
// on success (with Cached reporting whether it was recalled from the
// ResultCache), or the error that stopped it.
type CellOutcome struct {
	Cell   Cell
	Run    *stats.Run
	Cached bool
	Err    error
}

// cellRes pairs a run with its cache provenance through the scheduler.
type cellRes struct {
	run    *stats.Run
	cached bool
}

// Stream resolves every cell of a plan over the cell scheduler
// (pkg/vexsmt/sched, with this matrix as the single backend at the
// configured parallelism) and delivers each outcome as it completes,
// instead of blocking behind Prefetch's barrier. The channel closes once
// all cells have been delivered or, after cancellation, once the
// in-flight cells have drained (within one timeslice — workers never
// leak). Completion order is nondeterministic but every delivered result
// is bit-identical to a serial run: cells derive their seeds from
// workload identity alone.
func (m *Matrix) Stream(ctx context.Context, p *Plan) <-chan CellOutcome {
	cells := p.Cells()
	out := make(chan CellOutcome)
	backend := sched.NewFunc("matrix", m.parallel, func(ctx context.Context, c Cell) (cellRes, error) {
		r, cached, err := m.RunCellInfo(ctx, c)
		if err != nil {
			// Cell failures are deterministic (the seed travels with the
			// cell); retrying locally would reproduce them.
			return cellRes{}, sched.Permanent(err)
		}
		return cellRes{run: r, cached: cached}, nil
	})
	ch, err := sched.Run(ctx, cells, []sched.Backend[Cell, cellRes]{backend}, sched.Options{})
	if err != nil { // unreachable: Run only rejects an empty backend list
		close(out)
		return out
	}
	go func() {
		defer close(out)
		for r := range ch {
			select {
			case out <- CellOutcome{Cell: r.Item, Run: r.Value.run, Cached: r.Value.cached, Err: r.Err}:
			case <-ctx.Done():
				// Keep draining so the scheduler's workers unwind.
			}
		}
	}()
	return out
}

// Results returns a snapshot of every successfully resolved cell.
func (m *Matrix) Results() map[Cell]stats.Run {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Cell]stats.Run, len(m.cells))
	for c, call := range m.cells {
		select {
		case <-call.done:
			if call.err == nil {
				out[c] = *call.run
			}
		default: // still simulating; skip
		}
	}
	return out
}

// Cells returns the memoized cell count (test instrumentation).
func (m *Matrix) Cells() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cells)
}

// SortedCellKeys aids deterministic debugging output.
func (m *Matrix) SortedCellKeys() []string {
	m.mu.Lock()
	keys := make([]string, 0, len(m.cells))
	for c := range m.cells {
		keys = append(keys, c.String())
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Package hwcost estimates the merging-hardware complexity of each
// multithreading technique, quantifying the paper's central cost argument
// (Sections II-B, III and V-A): operation-level split-issue needs an issue
// queue and delay-buffer renaming comparable to a superscalar, while
// cluster-level split-issue only adds per-cluster independence and a
// last-part signal to the CSMT merging hardware.
//
// The model counts the structures of Figure 7 in comparator-equivalent
// gates and critical-path levels. The absolute numbers are first-order
// estimates (as in Palacharla/Jouppi/Smith-style complexity studies); the
// *ratios* between techniques are what the paper argues from.
package hwcost

import (
	"fmt"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
)

// Estimate summarizes the issue-path hardware of one technique.
type Estimate struct {
	Tech core.Technique

	// CollisionGates counts gate-equivalents in the collision-detection
	// logic (CL blocks of Figure 7): cluster-level CL is a busy-bit AND;
	// operation-level CL sums per-class operation counts and compares
	// against per-cluster resources.
	CollisionGates int
	// MergeGates counts the merge multiplexers (ML blocks): per issue slot
	// and thread level, a W-wide mux of operation lanes.
	MergeGates int
	// IssueQueueEntries is the dynamic-scheduling window operation-level
	// split-issue requires (threads × machine width); zero for the others
	// ("an issue queue logic of 32 entries is required for supporting
	// split-issue on a 4-thread 8-issue VLIW processor").
	IssueQueueEntries int
	// RenameEntries counts delay-buffer renaming entries (operation-level
	// split-issue only).
	RenameEntries int
	// BufferWords counts the RF/memory delay buffer storage all split
	// techniques need (issue-width words per thread plus one word per
	// memory unit per thread, Section V-B).
	BufferWords int
	// CriticalPathLevels approximates logic levels through CL+ML before
	// the execution packet is ready; cluster-level split-issue *removes*
	// the cross-cluster AND (Figure 7b), shortening the path.
	CriticalPathLevels int
	// LastPartSignals counts the extra per-thread completion signals
	// cluster-level split-issue adds (not on the critical path).
	LastPartSignals int
}

const (
	gatesPerComparator = 12 // n-bit magnitude comparator, gate equivalents
	gatesPerBusyBitAND = 1
	gatesPerOpMux      = 8 // per-operation 2:1 mux lane through ML
)

// Model estimates the issue-path hardware for a technique on a machine
// geometry with the given hardware thread count.
func Model(geom isa.Geometry, tech core.Technique, threads int) (Estimate, error) {
	if err := geom.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := tech.Validate(); err != nil {
		return Estimate{}, err
	}
	if threads <= 0 {
		return Estimate{}, fmt.Errorf("hwcost: thread count %d", threads)
	}
	e := Estimate{Tech: tech}
	mergeLevels := threads - 1 // T0+T1, then +T2, ... (Figure 7)
	if mergeLevels < 1 {
		mergeLevels = 1
	}

	// Collision detection per cluster per merge level.
	switch tech.Merge {
	case core.MergeCluster:
		e.CollisionGates = geom.Clusters * mergeLevels * gatesPerBusyBitAND
	case core.MergeOperation:
		// Adders + comparators for slots, ALU, MUL, MEM classes.
		const classes = 4
		e.CollisionGates = geom.Clusters * mergeLevels * classes * gatesPerComparator
	}
	// Merge multiplexers: one lane per issue slot per cluster per level.
	e.MergeGates = geom.Clusters * geom.IssueWidth * mergeLevels * gatesPerOpMux

	// Critical path: CL then ML per level; whole-instruction merging also
	// needs the across-cluster AND reduction (Figure 7a) which cluster-
	// level split-issue removes (Figure 7b).
	perLevel := 2 // CL + ML
	if tech.Merge == core.MergeOperation {
		perLevel = 4 // adders + comparators before the mux
	}
	e.CriticalPathLevels = mergeLevels * perLevel
	if tech.Split == core.SplitNone || tech.Comm == core.CommNoSplit {
		// The AND across clusters gates the merge decision. (NS keeps the
		// whole-instruction path for comm instructions, so it remains.)
		e.CriticalPathLevels += log2ceil(geom.Clusters)
	}

	// Split-issue additions.
	if tech.Split != core.SplitNone {
		e.BufferWords = threads * (geom.TotalIssueWidth() + geom.Clusters*geom.MemUnits)
		e.LastPartSignals = threads
	}
	if tech.Split == core.SplitOperation {
		// "an issue queue logic of 32 entries is required for supporting
		// split-issue on a 4-thread 8-issue VLIW processor" -> threads ×
		// total issue width entries, plus renaming for the delay buffers.
		e.IssueQueueEntries = threads * geom.TotalIssueWidth()
		e.RenameEntries = threads * geom.TotalIssueWidth()
	}
	return e, nil
}

// TotalGates returns a single gate-equivalent figure, costing issue-queue
// and rename entries at superscalar-typical CAM-cell weights.
func (e Estimate) TotalGates() int {
	const gatesPerIQEntry = 120 // wakeup CAM + select logic per entry
	const gatesPerRenameEntry = 40
	const gatesPerBufferWord = 10 // latch + bypass-free write mux
	return e.CollisionGates + e.MergeGates +
		e.IssueQueueEntries*gatesPerIQEntry +
		e.RenameEntries*gatesPerRenameEntry +
		e.BufferWords*gatesPerBufferWord
}

// Table builds estimates for the paper's eight configurations.
func Table(geom isa.Geometry, threads int) ([]Estimate, error) {
	var out []Estimate
	for _, tech := range core.AllTechniques() {
		e, err := Model(geom, tech, threads)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func log2ceil(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

package hwcost

import (
	"testing"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
)

func TestModelValidation(t *testing.T) {
	if _, err := Model(isa.Geometry{}, core.SMT(), 4); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := Model(isa.ST200x4, core.SMT(), 0); err == nil {
		t.Error("zero threads accepted")
	}
	bad := core.Technique{Merge: core.MergeCluster, Split: core.SplitOperation}
	if _, err := Model(isa.ST200x4, bad, 4); err == nil {
		t.Error("ruled-out technique accepted")
	}
}

// The paper's cost ordering: cluster-level merging is cheaper than
// operation-level; cluster-level split-issue adds little; operation-level
// split-issue needs superscalar-class structures.
func TestCostOrdering(t *testing.T) {
	g := isa.ST200x4
	csmt, _ := Model(g, core.CSMT(), 4)
	ccsi, _ := Model(g, core.CCSI(core.CommAlwaysSplit), 4)
	smt, _ := Model(g, core.SMT(), 4)
	oosi, _ := Model(g, core.OOSI(core.CommAlwaysSplit), 4)
	cosi, _ := Model(g, core.COSI(core.CommAlwaysSplit), 4)

	if !(csmt.TotalGates() < smt.TotalGates()) {
		t.Errorf("CSMT %d not cheaper than SMT %d", csmt.TotalGates(), smt.TotalGates())
	}
	// "Cluster-level merging is much cheaper to implement than
	// operation-level": the merge-path logic itself.
	mergePath := func(e Estimate) int { return e.CollisionGates + e.MergeGates }
	if !(mergePath(ccsi) < mergePath(smt)) {
		t.Errorf("CCSI merge path %d not cheaper than SMT's %d", mergePath(ccsi), mergePath(smt))
	}
	// "Cluster-level split-issue is a more cost effective solution than
	// operation-level split-issue": totals including buffers and queues.
	if !(ccsi.TotalGates() < oosi.TotalGates()/2) {
		t.Errorf("CCSI %d not far cheaper than OOSI %d — the paper's cost argument", ccsi.TotalGates(), oosi.TotalGates())
	}
	if !(oosi.TotalGates() > 2*cosi.TotalGates()) {
		t.Errorf("OOSI %d not clearly above COSI %d (issue queue + renaming)", oosi.TotalGates(), cosi.TotalGates())
	}
	if oosi.IssueQueueEntries == 0 || oosi.RenameEntries == 0 {
		t.Error("OOSI lacks issue queue / renaming entries")
	}
	if ccsi.IssueQueueEntries != 0 || cosi.IssueQueueEntries != 0 {
		t.Error("cluster-level split-issue must not need an issue queue")
	}
}

// Paper Section II-B: "an issue queue logic of 32 entries is required for
// supporting split-issue on a 4-thread 8-issue VLIW processor".
func TestIssueQueuePaperExample(t *testing.T) {
	g := isa.Geometry{Clusters: 2, IssueWidth: 4, ALUs: 4, Muls: 2, MemUnits: 1}
	e, err := Model(g, core.OOSI(core.CommAlwaysSplit), 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.IssueQueueEntries != 32 {
		t.Fatalf("issue queue entries = %d, want 32", e.IssueQueueEntries)
	}
}

// Figure 7(b): per-cluster independent merging removes the across-cluster
// AND, so CCSI AS has a shorter critical path than CSMT.
func TestSplitShortensCriticalPath(t *testing.T) {
	g := isa.ST200x4
	csmt, _ := Model(g, core.CSMT(), 4)
	ccsiAS, _ := Model(g, core.CCSI(core.CommAlwaysSplit), 4)
	ccsiNS, _ := Model(g, core.CCSI(core.CommNoSplit), 4)
	if !(ccsiAS.CriticalPathLevels < csmt.CriticalPathLevels) {
		t.Errorf("CCSI AS path %d not shorter than CSMT %d",
			ccsiAS.CriticalPathLevels, csmt.CriticalPathLevels)
	}
	// NS retains the whole-instruction path for comm instructions.
	if !(ccsiNS.CriticalPathLevels >= ccsiAS.CriticalPathLevels) {
		t.Error("NS path shorter than AS path")
	}
}

func TestBufferSizing(t *testing.T) {
	// Section V-B: per thread, issue-width words for the RF buffers plus
	// one word per memory unit.
	g := isa.ST200x4
	e, _ := Model(g, core.CCSI(core.CommNoSplit), 2)
	want := 2 * (16 + 4)
	if e.BufferWords != want {
		t.Fatalf("buffer words = %d, want %d", e.BufferWords, want)
	}
	smt, _ := Model(g, core.SMT(), 2)
	if smt.BufferWords != 0 || smt.LastPartSignals != 0 {
		t.Fatal("no-split technique has split-issue structures")
	}
}

func TestTableCoversAllTechniques(t *testing.T) {
	rows, err := Table(isa.ST200x4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.TotalGates() <= 0 {
			t.Errorf("%s: non-positive gate count", r.Tech.Name())
		}
	}
}

func TestScalesWithThreads(t *testing.T) {
	g := isa.ST200x4
	two, _ := Model(g, core.OOSI(core.CommAlwaysSplit), 2)
	four, _ := Model(g, core.OOSI(core.CommAlwaysSplit), 4)
	if !(four.TotalGates() > two.TotalGates()) {
		t.Error("cost does not grow with thread count")
	}
	one, _ := Model(g, core.SMT(), 1)
	if one.CriticalPathLevels <= 0 {
		t.Error("single-thread path must still be positive")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

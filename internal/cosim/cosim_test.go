package cosim

import (
	"testing"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
	"vexsmt/internal/vexmach"
)

// buildProgram generates a compiler-legal branch-free program whose
// instructions mix ALU/MUL/MEM work across clusters, with optional
// send/recv pairs; every destination register is unique per cluster within
// an instruction (no intra-instruction WAW).
func buildProgram(t *testing.T, r *rng.Rand, g isa.Geometry, n int, commProb float64) *vexmach.Program {
	t.Helper()
	var instrs []*isa.Instruction
	setup := &isa.Instruction{}
	for c := 0; c < g.Clusters; c++ {
		setup.Bundles[c] = isa.Bundle{
			{Op: isa.Mov, Dest: 1, Imm: int32(0x40000 + c*0x2000), UseImm: true},
			{Op: isa.Mov, Dest: 2, Imm: int32(r.Intn(1000) + 1), UseImm: true},
		}
	}
	instrs = append(instrs, setup)
	src := func() isa.Reg { return isa.Reg(2 + r.Intn(14)) }
	for i := 0; i < n; i++ {
		in := &isa.Instruction{}
		var destUsed [isa.MaxClusters][isa.NumGPR]bool
		dest := func(c int) isa.Reg {
			for {
				d := isa.Reg(2 + r.Intn(14))
				if !destUsed[c][d] {
					destUsed[c][d] = true
					return d
				}
			}
		}
		commSrc, commDst := -1, -1
		if r.Bool(commProb) && g.Clusters > 1 {
			commSrc = r.Intn(g.Clusters)
			commDst = (commSrc + 1 + r.Intn(g.Clusters-1)) % g.Clusters
		}
		for c := 0; c < g.Clusters; c++ {
			budget := g.IssueWidth
			if c == commSrc || c == commDst {
				budget-- // leave room for the copy op
			}
			nops := r.Intn(budget + 1)
			if c == 0 && nops == 0 && commSrc < 0 {
				nops = 1 // keep instructions non-empty
			}
			var b isa.Bundle
			mems, muls := 0, 0
			for len(b) < nops {
				switch k := r.Intn(10); {
				case k < 2 && mems < g.MemUnits:
					mems++
					if r.Bool(0.5) {
						b = append(b, isa.Operation{Op: isa.Ldw, Dest: dest(c), Src1: 1, Imm: int32(4 * r.Intn(32))})
					} else {
						b = append(b, isa.Operation{Op: isa.Stw, Src1: 1, Src2: src(), Imm: int32(4 * r.Intn(32))})
					}
				case k < 4 && muls < g.Muls:
					muls++
					b = append(b, isa.Operation{Op: isa.Mpy, Dest: dest(c), Src1: src(), Src2: src()})
				default:
					ops := []isa.Opcode{isa.Add, isa.Sub, isa.Xor, isa.And, isa.Or, isa.Shl, isa.Max}
					b = append(b, isa.Operation{Op: ops[r.Intn(len(ops))], Dest: dest(c), Src1: src(), Src2: src()})
				}
			}
			in.Bundles[c] = b
		}
		if commSrc >= 0 {
			in.Bundles[commSrc] = append(in.Bundles[commSrc],
				isa.Operation{Op: isa.Send, Src1: src(), Target: uint32(commDst)})
			in.Bundles[commDst] = append(in.Bundles[commDst],
				isa.Operation{Op: isa.Recv, Dest: dest(commDst), Target: uint32(commSrc)})
		}
		if in.NumOps() == 0 {
			in.Bundles[0] = isa.Bundle{{Op: isa.Add, Dest: dest(0), Src1: src(), Src2: src()}}
		}
		instrs = append(instrs, in)
	}
	p, err := vexmach.NewProgram(g, 0x1000, instrs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCoSimMatchesSerial is the central correctness theorem: under every
// technique, every thread's final architectural state equals serial atomic
// execution of its program, regardless of how the merging hardware
// interleaved and split the instructions.
func TestCoSimMatchesSerial(t *testing.T) {
	g := isa.ST200x4
	r := rng.New(20240611)
	for _, tech := range core.AllTechniques() {
		for trial := 0; trial < 3; trial++ {
			progs := []*vexmach.Program{
				buildProgram(t, r, g, 40, 0.2),
				buildProgram(t, r, g, 40, 0.2),
				buildProgram(t, r, g, 40, 0.2),
				buildProgram(t, r, g, 40, 0.2),
			}
			cs, err := New(g, tech, progs, false)
			if err != nil {
				t.Fatal(err)
			}
			cycles, err := cs.Run(100_000)
			if err != nil {
				t.Fatalf("%s trial %d: %v", tech.Name(), trial, err)
			}
			if cycles == 0 {
				t.Fatalf("%s: zero cycles", tech.Name())
			}
			for th := 0; th < 4; th++ {
				ref, err := cs.RunSerial(th, 10_000)
				if err != nil {
					t.Fatal(err)
				}
				if d := cs.Thread(th).Machine.Diff(ref); d != "" {
					t.Fatalf("%s trial %d thread %d diverged from serial execution: %s",
						tech.Name(), trial, th, d)
				}
				if cs.Thread(th).Steps() != 41 {
					t.Fatalf("thread %d committed %d instructions, want 41", th, cs.Thread(th).Steps())
				}
			}
		}
	}
}

// TestCoSimWithRenaming checks the same theorem with cluster renaming
// enabled: rotated execution must match the serially executed rotated
// program.
func TestCoSimWithRenaming(t *testing.T) {
	g := isa.ST200x4
	r := rng.New(777)
	progs := []*vexmach.Program{
		buildProgram(t, r, g, 30, 0.15),
		buildProgram(t, r, g, 30, 0.15),
		buildProgram(t, r, g, 30, 0.15),
		buildProgram(t, r, g, 30, 0.15),
	}
	cs, err := New(g, core.CCSI(core.CommAlwaysSplit), progs, true)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Rotation(0) != 0 || cs.Rotation(2) != 2 {
		t.Fatalf("rotations: %d %d", cs.Rotation(0), cs.Rotation(2))
	}
	if _, err := cs.Run(100_000); err != nil {
		t.Fatal(err)
	}
	for th := 0; th < 4; th++ {
		ref, err := cs.RunSerial(th, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		if d := cs.Thread(th).Machine.Diff(ref); d != "" {
			t.Fatalf("thread %d (rotation %d) diverged: %s", th, cs.Rotation(th), d)
		}
	}
}

// TestCoSimTechniqueSpeedOrdering measures cycles on identical program sets:
// operation-level merging must not be slower than cluster-level merging,
// and split-issue must not be slower than no-split, on average.
func TestCoSimTechniqueSpeedOrdering(t *testing.T) {
	g := isa.ST200x4
	r := rng.New(31415)
	var csmt, ccsi, smt, oosi int
	for trial := 0; trial < 5; trial++ {
		seed := r.Uint64()
		cyclesFor := func(tech core.Technique) int {
			rr := rng.New(seed)
			progs := []*vexmach.Program{
				buildProgram(t, rr, g, 50, 0.1),
				buildProgram(t, rr, g, 50, 0.1),
			}
			cs, err := New(g, tech, progs, false)
			if err != nil {
				t.Fatal(err)
			}
			cycles, err := cs.Run(100_000)
			if err != nil {
				t.Fatal(err)
			}
			return cycles
		}
		csmt += cyclesFor(core.CSMT())
		ccsi += cyclesFor(core.CCSI(core.CommAlwaysSplit))
		smt += cyclesFor(core.SMT())
		oosi += cyclesFor(core.OOSI(core.CommAlwaysSplit))
	}
	if ccsi > csmt {
		t.Errorf("CCSI total cycles %d > CSMT %d", ccsi, csmt)
	}
	if oosi > smt {
		t.Errorf("OOSI total cycles %d > SMT %d", oosi, smt)
	}
	if smt > csmt {
		t.Errorf("SMT total cycles %d > CSMT %d", smt, csmt)
	}
}

func TestCoSimRejectsEmpty(t *testing.T) {
	if _, err := New(isa.ST200x4, core.SMT(), nil, false); err == nil {
		t.Fatal("empty program list accepted")
	}
}

func TestCoSimSingleThread(t *testing.T) {
	g := isa.ST200x4
	r := rng.New(55)
	prog := buildProgram(t, r, g, 25, 0.2)
	cs, err := New(g, core.OOSI(core.CommAlwaysSplit), []*vexmach.Program{prog}, false)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := cs.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	// A single thread issues one instruction per cycle.
	if cycles != 26 {
		t.Fatalf("single-thread cycles = %d, want 26", cycles)
	}
	ref, err := cs.RunSerial(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d := cs.Thread(0).Machine.Diff(ref); d != "" {
		t.Fatalf("diverged: %s", d)
	}
}

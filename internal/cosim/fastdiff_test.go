package cosim

import (
	"fmt"
	"testing"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
	"vexsmt/internal/sim"
	"vexsmt/internal/synth"
	"vexsmt/internal/workload"
)

// These tests are the differential half of the package's correctness
// charter: the timing simulator's event-driven fast path (stall
// fast-forwarding, precompiled issue tables, batched trace prefetch) must
// be bit-identical to the one-iteration-per-cycle reference loop. Each
// test runs the same configuration twice — Config.ReferenceLoop false and
// true — and requires the full stats.Run counter structs to be equal, not
// just the headline IPC.

// runPair executes one configuration under the fast and the reference
// loop and fails the test on any counter difference.
func runPair(t *testing.T, label string, cfg sim.Config, profs []synth.Profile) {
	t.Helper()
	fastSim, err := sim.NewWorkload(cfg, profs)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	fast, fastErr := fastSim.Run()

	ref := cfg
	ref.ReferenceLoop = true
	refSim, err := sim.NewWorkload(ref, profs)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	want, wantErr := refSim.Run()

	if (fastErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: error mismatch: fast=%v ref=%v", label, fastErr, wantErr)
	}
	if *fast != *want {
		t.Fatalf("%s: fast loop diverged from reference loop:\nfast %+v\nref  %+v",
			label, fast, want)
	}
}

// TestFastLoopMatchesReferenceGrid sweeps the paper's whole technique
// space — all eight techniques (NS and AS variants included), all three
// multithreading modes, 1/2/4 hardware threads — plus perfect-memory and
// no-timeslice variants, comparing full counter structs between the fast
// and reference loops.
func TestFastLoopMatchesReferenceGrid(t *testing.T) {
	mix, err := workload.MixByLabel("llhh")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mix.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	const scale = 20000
	for _, tech := range core.AllTechniques() {
		for _, mode := range []sim.Mode{sim.ModeSimultaneous, sim.ModeInterleaved, sim.ModeBlocked} {
			for _, threads := range []int{1, 2, 4} {
				cfg := sim.DefaultConfig(tech, threads).WithScale(scale)
				cfg.Mode = mode
				label := fmt.Sprintf("%s/%s/%dT", tech.Name(), mode, threads)
				runPair(t, label, cfg, profs[:min(len(profs), max(threads, 2))])
			}
		}
	}
	// Perfect memory throttles every stall source except branches; the
	// no-timeslice single-job variant exercises fast-forward without the
	// timeslice bound.
	base := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), 2).WithScale(scale)
	base.PerfectMemory = true
	runPair(t, "perfect-memory", base, profs[:2])

	solo := sim.DefaultConfig(core.OOSI(core.CommNoSplit), 1).WithScale(scale)
	solo.TimesliceCycles = 0
	runPair(t, "no-timeslice", solo, profs[:1])

	// Mixed runnability: fewer jobs than contexts on a wide interleaved
	// machine, the wake-up queue's target scenario — most issue slots are
	// permanently dead and nearly every loop iteration is a jump.
	for _, threads := range []int{4, 8} {
		for _, jobs := range []int{1, 2} {
			wide := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), threads).WithScale(scale)
			wide.Mode = sim.ModeInterleaved
			runPair(t, fmt.Sprintf("imt-mixed-%dT-%dj", threads, jobs), wide, profs[:jobs])
		}
	}
}

// TestWakeOnTimesliceBoundary sweeps timeslice lengths around the cache
// miss penalties so that stall expiries land before, exactly on, and after
// timeslice boundaries (which wake idle contexts through the switch mask).
// The queue caps every jump at the boundary; an off-by-one in that cap
// would context-switch on a different cycle and diverge immediately.
func TestWakeOnTimesliceBoundary(t *testing.T) {
	mix, err := workload.MixByLabel("llhh")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mix.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	base := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), 2).WithScale(40000)
	pen := int64(base.DCache.MissPenalty)
	for _, slice := range []int64{pen - 1, pen, pen + 1, 2*pen + 1, 97, 256} {
		cfg := base
		cfg.TimesliceCycles = slice
		// Oversubscribe so boundary switches actually swap jobs in and out.
		runPair(t, fmt.Sprintf("slice-%d", slice), cfg, profs[:3])
	}
}

// TestRespawnAcrossFetchBatch gives every job a spawn length that is not a
// multiple of the prefetch batch, so respawn boundaries repeatedly fall
// mid-refill; the batched fast path must clamp each refill to the spawn
// and draw the replacement stream on exactly the same instruction as the
// one-at-a-time reference loop.
func TestRespawnAcrossFetchBatch(t *testing.T) {
	r := rng.New(0xba7c)
	geom := isa.ST200x4
	// ~100-instruction spawns against a 64-instruction fetch batch, across
	// a few profile shapes.
	for i := 0; i < 3; i++ {
		prof := randomProfile(r, 100+i, geom)
		prof.LengthMInstr = 10 + float64(i) // 100+10i instrs at scale 100000
		cfg := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), 2).WithScale(100_000)
		cfg.Seed = r.Uint64()
		profs := []synth.Profile{prof, randomProfile(r, 200+i, geom)}
		fastSim, err := sim.NewWorkload(cfg, profs)
		if err != nil {
			t.Fatal(err)
		}
		run, err := fastSim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if run.Respawns == 0 {
			t.Fatalf("trial %d: no respawns; spawn lengths too long for the scenario", i)
		}
		runPair(t, fmt.Sprintf("respawn-%d", i), cfg, profs)
	}
}

// TestAllContextsWakeSameCycle runs identically-seeded copies of one
// profile on every context: the threads stall and wake in lockstep, so
// whole-machine sleeps end with every context waking on the same cycle and
// the queue minimum is an n-way tie. Ties must resolve to the same cycle
// the reference loop reaches by stepping.
func TestAllContextsWakeSameCycle(t *testing.T) {
	prof, ok := synth.ByName("mcf") // memory-bound: stalls constantly
	if !ok {
		t.Fatal("missing profile")
	}
	for _, mode := range []sim.Mode{sim.ModeSimultaneous, sim.ModeInterleaved, sim.ModeBlocked} {
		cfg := sim.DefaultConfig(core.SMT(), 4).WithScale(40000)
		cfg.Mode = mode
		// Four byte-identical streams: same profile, and NewWorkload derives
		// every job's generator seed from the same (profile seed, config
		// seed) pair, so all four contexts draw the same instructions.
		profs := []synth.Profile{prof, prof, prof, prof}
		runPair(t, fmt.Sprintf("lockstep-%s", mode), cfg, profs)
	}
}

// randomProfile draws a structurally valid synthetic-benchmark profile:
// the point is to explore stall patterns (cache-heavy, branch-heavy,
// comm-heavy) the calibrated catalog does not cover.
func randomProfile(r *rng.Rand, i int, geom isa.Geometry) synth.Profile {
	return synth.Profile{
		Name:         fmt.Sprintf("rand-%d", i),
		Seed:         r.Uint64(),
		MeanOps:      1 + r.Float64()*float64(geom.TotalIssueWidth()-1)*0.8,
		SpreadProb:   r.Float64(),
		MemFrac:      r.Float64() * 0.5,
		MulFrac:      r.Float64() * 0.3,
		StoreFrac:    r.Float64(),
		CommProb:     r.Float64() * 0.3,
		BranchProb:   r.Float64() * 0.4,
		TakenProb:    r.Float64(),
		LoopInstrs:   2 + r.Intn(40),
		LoopIters:    1 + r.Intn(50),
		CodeKB:       1 + r.Intn(256),
		DataKB:       1 + r.Intn(512),
		StreamKB:     1 + r.Intn(128),
		StreamFrac:   r.Float64(),
		LengthMInstr: 10 + r.Float64()*90,
	}
}

// TestFastLoopPropertyRandomized is the randomized differential property:
// random profiles, geometries, techniques, thread counts (up to the full
// 8-context machine), issue modes, job counts (under- and oversubscribed)
// and scheduling parameters, with full stats.Run equality between the fast
// and reference cores on every draw. Undersubscribed interleaved draws are
// the wake-up queue's hardest case: most issue slots are permanently dead,
// so nearly every fast-loop step is a computed jump.
func TestFastLoopPropertyRandomized(t *testing.T) {
	r := rng.New(0xd1ff)
	geoms := []isa.Geometry{
		isa.ST200x4,
		{Clusters: 2, IssueWidth: 8, ALUs: 8, Muls: 4, MemUnits: 2},
		{Clusters: 8, IssueWidth: 2, ALUs: 2, Muls: 1, MemUnits: 1},
		{Clusters: 1, IssueWidth: 4, ALUs: 4, Muls: 2, MemUnits: 1},
	}
	techs := core.AllTechniques()
	modes := []sim.Mode{sim.ModeSimultaneous, sim.ModeInterleaved, sim.ModeBlocked}
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		geom := geoms[r.Intn(len(geoms))]
		tech := techs[r.Intn(len(techs))]
		threads := 1 + r.Intn(8)
		cfg := sim.DefaultConfig(tech, threads).WithScale(20000 + int64(r.Intn(20000)))
		cfg.Geom = geom
		cfg.Mode = modes[r.Intn(len(modes))]
		cfg.Seed = r.Uint64()
		cfg.ClusterRenaming = r.Bool(0.5)
		cfg.PerfectMemory = r.Bool(0.2)
		if r.Bool(0.3) {
			// Shrink the timeslice so context switches (and their interaction
			// with fast-forwarded stalls) happen often.
			cfg.TimesliceCycles = int64(500 + r.Intn(5000))
		}
		nprofs := threads
		switch {
		case r.Bool(0.4):
			nprofs = threads + 1 + r.Intn(2) // oversubscribe: waiting jobs rotate in
		case r.Bool(0.5):
			nprofs = 1 + r.Intn(threads) // undersubscribe: idle contexts, dead slots
		}
		profs := make([]synth.Profile, nprofs)
		for i := range profs {
			profs[i] = randomProfile(r, trial*10+i, geom)
		}
		label := fmt.Sprintf("trial %d (%s, %s, %dC, %dT, %d jobs, slice %d, perfect %v)",
			trial, tech.Name(), cfg.Mode, geom.Clusters, threads, nprofs, cfg.TimesliceCycles, cfg.PerfectMemory)
		runPair(t, label, cfg, profs)
	}
}

package cosim

import (
	"fmt"
	"testing"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
	"vexsmt/internal/sim"
	"vexsmt/internal/synth"
	"vexsmt/internal/workload"
)

// These tests are the differential half of the package's correctness
// charter: the timing simulator's event-driven fast path (stall
// fast-forwarding, precompiled issue tables, batched trace prefetch) must
// be bit-identical to the one-iteration-per-cycle reference loop. Each
// test runs the same configuration twice — Config.ReferenceLoop false and
// true — and requires the full stats.Run counter structs to be equal, not
// just the headline IPC.

// runPair executes one configuration under the fast and the reference
// loop and fails the test on any counter difference.
func runPair(t *testing.T, label string, cfg sim.Config, profs []synth.Profile) {
	t.Helper()
	fastSim, err := sim.NewWorkload(cfg, profs)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	fast, fastErr := fastSim.Run()

	ref := cfg
	ref.ReferenceLoop = true
	refSim, err := sim.NewWorkload(ref, profs)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	want, wantErr := refSim.Run()

	if (fastErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: error mismatch: fast=%v ref=%v", label, fastErr, wantErr)
	}
	if *fast != *want {
		t.Fatalf("%s: fast loop diverged from reference loop:\nfast %+v\nref  %+v",
			label, fast, want)
	}
}

// TestFastLoopMatchesReferenceGrid sweeps the paper's whole technique
// space — all eight techniques (NS and AS variants included), all three
// multithreading modes, 1/2/4 hardware threads — plus perfect-memory and
// no-timeslice variants, comparing full counter structs between the fast
// and reference loops.
func TestFastLoopMatchesReferenceGrid(t *testing.T) {
	mix, err := workload.MixByLabel("llhh")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mix.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	const scale = 20000
	for _, tech := range core.AllTechniques() {
		for _, mode := range []sim.Mode{sim.ModeSimultaneous, sim.ModeInterleaved, sim.ModeBlocked} {
			for _, threads := range []int{1, 2, 4} {
				cfg := sim.DefaultConfig(tech, threads).WithScale(scale)
				cfg.Mode = mode
				label := fmt.Sprintf("%s/%s/%dT", tech.Name(), mode, threads)
				runPair(t, label, cfg, profs[:min(len(profs), max(threads, 2))])
			}
		}
	}
	// Perfect memory throttles every stall source except branches; the
	// no-timeslice single-job variant exercises fast-forward without the
	// timeslice bound.
	base := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), 2).WithScale(scale)
	base.PerfectMemory = true
	runPair(t, "perfect-memory", base, profs[:2])

	solo := sim.DefaultConfig(core.OOSI(core.CommNoSplit), 1).WithScale(scale)
	solo.TimesliceCycles = 0
	runPair(t, "no-timeslice", solo, profs[:1])
}

// randomProfile draws a structurally valid synthetic-benchmark profile:
// the point is to explore stall patterns (cache-heavy, branch-heavy,
// comm-heavy) the calibrated catalog does not cover.
func randomProfile(r *rng.Rand, i int, geom isa.Geometry) synth.Profile {
	return synth.Profile{
		Name:         fmt.Sprintf("rand-%d", i),
		Seed:         r.Uint64(),
		MeanOps:      1 + r.Float64()*float64(geom.TotalIssueWidth()-1)*0.8,
		SpreadProb:   r.Float64(),
		MemFrac:      r.Float64() * 0.5,
		MulFrac:      r.Float64() * 0.3,
		StoreFrac:    r.Float64(),
		CommProb:     r.Float64() * 0.3,
		BranchProb:   r.Float64() * 0.4,
		TakenProb:    r.Float64(),
		LoopInstrs:   2 + r.Intn(40),
		LoopIters:    1 + r.Intn(50),
		CodeKB:       1 + r.Intn(256),
		DataKB:       1 + r.Intn(512),
		StreamKB:     1 + r.Intn(128),
		StreamFrac:   r.Float64(),
		LengthMInstr: 10 + r.Float64()*90,
	}
}

// TestFastLoopPropertyRandomized is the randomized differential property:
// random profiles, geometries, techniques, thread counts, seeds and
// scheduling parameters, with full stats.Run equality between the fast
// and reference cores on every draw.
func TestFastLoopPropertyRandomized(t *testing.T) {
	r := rng.New(0xd1ff)
	geoms := []isa.Geometry{
		isa.ST200x4,
		{Clusters: 2, IssueWidth: 8, ALUs: 8, Muls: 4, MemUnits: 2},
		{Clusters: 8, IssueWidth: 2, ALUs: 2, Muls: 1, MemUnits: 1},
		{Clusters: 1, IssueWidth: 4, ALUs: 4, Muls: 2, MemUnits: 1},
	}
	techs := core.AllTechniques()
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		geom := geoms[r.Intn(len(geoms))]
		tech := techs[r.Intn(len(techs))]
		threads := 1 + r.Intn(4)
		cfg := sim.DefaultConfig(tech, threads).WithScale(20000 + int64(r.Intn(20000)))
		cfg.Geom = geom
		cfg.Seed = r.Uint64()
		cfg.ClusterRenaming = r.Bool(0.5)
		cfg.PerfectMemory = r.Bool(0.2)
		if r.Bool(0.3) {
			// Shrink the timeslice so context switches (and their interaction
			// with fast-forwarded stalls) happen often.
			cfg.TimesliceCycles = int64(500 + r.Intn(5000))
		}
		nprofs := threads
		if r.Bool(0.5) {
			nprofs = threads + 1 + r.Intn(2) // oversubscribe: waiting jobs rotate in
		}
		profs := make([]synth.Profile, nprofs)
		for i := range profs {
			profs[i] = randomProfile(r, trial*10+i, geom)
		}
		label := fmt.Sprintf("trial %d (%s, %dC, %dT, slice %d, perfect %v)",
			trial, tech.Name(), geom.Clusters, threads, cfg.TimesliceCycles, cfg.PerfectMemory)
		runPair(t, label, cfg, profs)
	}
}

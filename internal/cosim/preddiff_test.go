package cosim

import (
	"fmt"
	"testing"

	"vexsmt/internal/bpred"
	"vexsmt/internal/core"
	"vexsmt/internal/rng"
	"vexsmt/internal/sim"
	"vexsmt/internal/synth"
	"vexsmt/internal/workload"
)

// The predictor differentials extend the fast-vs-reference charter to the
// branch-predictor front end (internal/bpred): every predictor model must
// be bit-identical between the event-driven fast loop and the reference
// loop (the per-context predictors resolve at retire, where both loops
// agree on order by the existing differentials), and the default static
// configuration must be bit-identical to a configuration that predates
// the predictor axis entirely.

// TestStaticPredictorIsLegacy machine-checks the PR's central bit-identity
// claim at the simulator level: Config.Predictor "" (the pre-predictor
// spelling), "static", and noisy spellings of it all produce the same
// full counter struct — including zero branch counters, so the JSON
// export above stays byte-identical too.
func TestStaticPredictorIsLegacy(t *testing.T) {
	mix, err := workload.MixByLabel("llhh")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mix.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []core.Technique{core.SMT(), core.CCSI(core.CommAlwaysSplit)} {
		for _, threads := range []int{2, 4} {
			base := sim.DefaultConfig(tech, threads).WithScale(20000)
			legacySim, err := sim.NewWorkload(base, profs[:threads])
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := legacySim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if legacy.Branches != 0 || legacy.BranchMispredicts != 0 {
				t.Fatalf("%s/%dT: legacy config counted branches: %d/%d",
					tech.Name(), threads, legacy.Branches, legacy.BranchMispredicts)
			}
			for _, spelling := range []string{"static", " STATIC "} {
				cfg := base
				cfg.Predictor = spelling
				s, err := sim.NewWorkload(cfg, profs[:threads])
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if *got != *legacy {
					t.Fatalf("%s/%dT: predictor %q diverged from the legacy front end:\nstatic %+v\nlegacy %+v",
						tech.Name(), threads, spelling, got, legacy)
				}
			}
		}
	}
}

// TestPredictorFastLoopMatchesReferenceGrid sweeps predictor models across
// techniques, issue modes and thread counts, comparing full counter
// structs between the fast and reference loops. Mispredict penalties move
// per-context wake cycles, so this is the machine check that the PR 6
// wake-up queue computes predictor-dependent wake cycles correctly.
func TestPredictorFastLoopMatchesReferenceGrid(t *testing.T) {
	mix, err := workload.MixByLabel("llhh")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mix.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	const scale = 20000
	techs := []core.Technique{
		core.SMT(), core.CSMT(),
		core.CCSI(core.CommAlwaysSplit), core.OOSI(core.CommNoSplit),
	}
	for _, pred := range []string{"bimodal", "gshare", "tage"} {
		for _, tech := range techs {
			for _, mode := range []sim.Mode{sim.ModeSimultaneous, sim.ModeInterleaved, sim.ModeBlocked} {
				for _, threads := range []int{1, 2, 4} {
					cfg := sim.DefaultConfig(tech, threads).WithScale(scale)
					cfg.Mode = mode
					cfg.Predictor = pred
					label := fmt.Sprintf("%s/%s/%s/%dT", pred, tech.Name(), mode, threads)
					runPair(t, label, cfg, profs[:min(len(profs), max(threads, 2))])
				}
			}
		}
	}
}

// TestPredictorModelsActuallyPredict is the sanity bound behind the grid:
// modeled predictors must observe branches, and a learning predictor must
// beat static's mispredict count (static mispredicts every taken branch
// by construction) on the synthetic workloads, which are loop-dominated.
func TestPredictorModelsActuallyPredict(t *testing.T) {
	mix, err := workload.MixByLabel("llhh")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mix.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	base := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), 2).WithScale(10000)
	legacySim, err := sim.NewWorkload(base, profs[:2])
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := legacySim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"bimodal", "gshare", "tage"} {
		cfg := base
		cfg.Predictor = pred
		s, err := sim.NewWorkload(cfg, profs[:2])
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Branches == 0 {
			t.Fatalf("%s: no branches observed", pred)
		}
		if r.BranchMispredicts >= r.Branches {
			t.Fatalf("%s: mispredicted everything (%d/%d)", pred, r.BranchMispredicts, r.Branches)
		}
		// The synthetic back-edges are heavily taken, so static's penalty
		// count (== its mispredict count) should exceed a trained model's.
		if r.BranchStallCycles >= legacy.BranchStallCycles {
			t.Errorf("%s: branch stalls %d not below static's %d on a loop-heavy mix",
				pred, r.BranchStallCycles, legacy.BranchStallCycles)
		}
		// The synthetic taken bits are stochastic, so history predictors
		// converge to the per-branch bias, not to zero: bound loosely.
		if r.MispredictRate() > 0.6 {
			t.Errorf("%s: mispredict rate %.2f implausibly high", pred, r.MispredictRate())
		}
	}
}

// TestPredictorRandomizedDifferential is the randomized property for the
// predictor axis: random profiles (including branch- and taken-heavy
// draws), techniques, modes, thread counts and predictor models, with
// full counter equality between the fast and reference loops.
func TestPredictorRandomizedDifferential(t *testing.T) {
	r := rng.New(0xb9ed)
	techs := core.AllTechniques()
	modes := []sim.Mode{sim.ModeSimultaneous, sim.ModeInterleaved, sim.ModeBlocked}
	models := bpred.Names()[1:] // skip static: covered by the legacy differential
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		threads := 1 + r.Intn(4)
		cfg := sim.DefaultConfig(techs[r.Intn(len(techs))], threads).WithScale(20000 + int64(r.Intn(20000)))
		cfg.Mode = modes[r.Intn(len(modes))]
		cfg.Seed = r.Uint64()
		cfg.Predictor = models[r.Intn(len(models))]
		if r.Bool(0.3) {
			cfg.TimesliceCycles = int64(500 + r.Intn(5000))
		}
		nprofs := threads
		if r.Bool(0.4) {
			nprofs = threads + 1 // oversubscribe: predictors persist across switches
		}
		profs := make([]synth.Profile, nprofs)
		for i := range profs {
			profs[i] = randomProfile(r, trial*10+i, cfg.Geom)
			// Push branch density up so predictor state actually churns.
			profs[i].BranchProb = 0.2 + r.Float64()*0.6
			profs[i].TakenProb = r.Float64()
		}
		label := fmt.Sprintf("trial %d (%s, %s, %s, %dT, %d jobs)",
			trial, cfg.Predictor, cfg.Tech.Name(), cfg.Mode, threads, nprofs)
		runPair(t, label, cfg, profs)
	}
}

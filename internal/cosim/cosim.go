// Package cosim couples the issue engine (timing) with functional machines
// (semantics): N programs run simultaneously on one SMT clustered VLIW, the
// merging/split-issue hardware decides each cycle which parts of which
// thread's instruction issue, and split-execution sessions perform exactly
// those parts with the delay-buffer machinery.
//
// Its purpose is the paper's implicit correctness theorem: *whatever*
// schedule the merging hardware produces — whole instructions, split
// bundles, split operations, any interleaving across threads — every
// thread's architectural result equals serial atomic execution of its own
// program. The property tests in this package machine-check that claim for
// every technique.
package cosim

import (
	"fmt"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/vexmach"
)

// Thread is one hardware context executing one program.
type Thread struct {
	Machine *vexmach.Machine
	Program *vexmach.Program

	session *vexmach.Session
	current *isa.Instruction
	steps   int
	done    bool
}

// Steps returns the number of VLIW instructions the thread has committed.
func (t *Thread) Steps() int { return t.steps }

// Done reports whether the thread has run off its program.
func (t *Thread) Done() bool { return t.done }

// CoSim is the coupled timing+functional simulator.
type CoSim struct {
	geom    isa.Geometry
	tech    core.Technique
	eng     *core.Engine
	threads []*Thread
	// Rename enables cluster renaming: thread t's instructions are rotated
	// by core.RenameRotation(t, ...) before issue. The thread's serial
	// reference must then execute the identically rotated program.
	rename bool
}

// New builds a co-simulation of the given programs, one per hardware
// context. Machines start with zeroed state and PC at each program's base.
func New(geom isa.Geometry, tech core.Technique, progs []*vexmach.Program, rename bool) (*CoSim, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("cosim: no programs")
	}
	eng, err := core.NewEngine(geom, tech, len(progs))
	if err != nil {
		return nil, err
	}
	cs := &CoSim{geom: geom, tech: tech, eng: eng, rename: rename}
	for _, p := range progs {
		m, err := vexmach.New(geom)
		if err != nil {
			return nil, err
		}
		m.SetPC(p.Base)
		cs.threads = append(cs.threads, &Thread{Machine: m, Program: p})
	}
	return cs, nil
}

// Thread returns hardware context t.
func (cs *CoSim) Thread(t int) *Thread { return cs.threads[t] }

// Rotation returns the cluster renaming rotation applied to thread t.
func (cs *CoSim) Rotation(t int) int {
	if !cs.rename {
		return 0
	}
	return core.RenameRotation(t, cs.geom.Clusters, len(cs.threads))
}

// Run executes until every thread halts or maxCycles elapse, returning the
// cycle count.
func (cs *CoSim) Run(maxCycles int) (int, error) {
	var ready [core.MaxThreads]bool
	var before [core.MaxThreads][isa.MaxClusters]isa.BundleDemand
	for cycle := 0; cycle < maxCycles; cycle++ {
		anyActive := false
		for t, th := range cs.threads {
			if th.done {
				ready[t] = false
				continue
			}
			if th.current == nil {
				idx, ok := th.Program.IndexOf(th.Machine.PC())
				if !ok {
					th.done = true
					ready[t] = false
					continue
				}
				in := th.Program.Instrs[idx].Rotate(cs.Rotation(t), cs.geom.Clusters)
				th.current = in
				th.session = th.Machine.Begin(in)
				cs.eng.Load(t, isa.DemandOf(in))
			}
			ready[t] = true
			anyActive = true
		}
		if !anyActive {
			return cycle, nil
		}
		for t := range cs.threads {
			for c := 0; c < cs.geom.Clusters; c++ {
				before[t][c] = cs.eng.Remaining(t, c)
			}
		}
		res := cs.eng.Cycle(&ready)
		for t, th := range cs.threads {
			tr := res.Thread[t]
			if tr.Ops == 0 {
				continue
			}
			// Execute exactly the parts the engine issued: the difference
			// between the remaining demand before and after the cycle.
			for c := 0; c < cs.geom.Clusters; c++ {
				take := subDemand(before[t][c], cs.eng.Remaining(t, c))
				if take.IsEmpty() {
					continue
				}
				if err := th.session.IssueOpCounts(c, take); err != nil {
					return cycle, fmt.Errorf("cosim: thread %d pc=0x%x: %w", t, th.current.Addr, err)
				}
			}
			if tr.LastPart {
				if !th.session.Done() {
					return cycle, fmt.Errorf("cosim: thread %d: engine reported last part but session has unissued ops", t)
				}
				if err := th.session.Commit(); err != nil {
					return cycle, fmt.Errorf("cosim: thread %d commit: %w", t, err)
				}
				th.steps++
				th.current = nil
				th.session = nil
			}
		}
	}
	return maxCycles, fmt.Errorf("cosim: exceeded %d cycles", maxCycles)
}

func subDemand(a, b isa.BundleDemand) isa.BundleDemand {
	return isa.BundleDemand{
		Ops: a.Ops - b.Ops,
		ALU: a.ALU - b.ALU,
		Mul: a.Mul - b.Mul,
		Mem: a.Mem - b.Mem,
	}
}

// RunSerial executes one program alone with atomic VLIW semantics (the
// reference for equivalence checks), applying the same rotation thread t
// would receive in this co-simulation.
func (cs *CoSim) RunSerial(t int, maxSteps int) (*vexmach.Machine, error) {
	m, err := vexmach.New(cs.geom)
	if err != nil {
		return nil, err
	}
	p := cs.threads[t].Program
	m.SetPC(p.Base)
	rot := cs.Rotation(t)
	steps := 0
	for {
		idx, ok := p.IndexOf(m.PC())
		if !ok {
			return m, nil
		}
		if steps >= maxSteps {
			return m, fmt.Errorf("cosim: serial reference exceeded %d steps", maxSteps)
		}
		if err := m.Exec(p.Instrs[idx].Rotate(rot, cs.geom.Clusters)); err != nil {
			return m, err
		}
		steps++
	}
}

package synth

import (
	"testing"

	"vexsmt/internal/isa"
)

// TestGeneratorZeroAllocs pins the zero-allocation contract of trace
// synthesis: Next and NextN must never touch the heap once the generator
// is built, across the whole calibrated catalog.
func TestGeneratorZeroAllocs(t *testing.T) {
	for _, prof := range Catalog() {
		g := MustNewGenerator(prof, isa.ST200x4)
		var ti TInst
		if allocs := testing.AllocsPerRun(1000, func() { g.Next(&ti) }); allocs != 0 {
			t.Errorf("%s: Next allocated %.1f per call, want 0", prof.Name, allocs)
		}
		buf := make([]TInst, 64)
		if allocs := testing.AllocsPerRun(200, func() { g.NextN(buf) }); allocs != 0 {
			t.Errorf("%s: NextN allocated %.1f per call, want 0", prof.Name, allocs)
		}
		if allocs := testing.AllocsPerRun(200, func() { FillN(g, buf) }); allocs != 0 {
			t.Errorf("%s: FillN allocated %.1f per call, want 0", prof.Name, allocs)
		}
	}
}

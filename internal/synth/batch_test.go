package synth

import (
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
)

var _ BatchStream = (*Generator)(nil)

// TestNextNMatchesNext drives two identically seeded generators, one via
// per-instruction Next and one via NextN in randomized chunk sizes
// (crossing loop back-edges, region changes and a mid-stream Reset), and
// requires the produced traces to be identical.
func TestNextNMatchesNext(t *testing.T) {
	for _, prof := range Catalog() {
		a := MustNewGenerator(prof, isa.ST200x4)
		b := MustNewGenerator(prof, isa.ST200x4)
		r := rng.New(prof.Seed + 42)
		buf := make([]TInst, 257)
		var want TInst
		total := 0
		for total < 20_000 {
			n := 1 + r.Intn(len(buf))
			chunk := buf[:n]
			FillN(b, chunk)
			for i := range chunk {
				a.Next(&want)
				if chunk[i] != want {
					t.Fatalf("%s: instruction %d diverged:\nNextN %+v\nNext  %+v",
						prof.Name, total+i, chunk[i], want)
				}
			}
			total += n
		}
		// A respawn must leave both paths in the same state.
		a.Reset(7)
		b.Reset(7)
		FillN(b, buf[:64])
		for i := 0; i < 64; i++ {
			a.Next(&want)
			if buf[i] != want {
				t.Fatalf("%s: post-Reset instruction %d diverged", prof.Name, i)
			}
		}
	}
}

// TestFillNFallback checks the non-batch path consumes the same prefix.
type nextOnly struct{ g *Generator }

func (n *nextOnly) Next(t *TInst)        { n.g.Next(t) }
func (n *nextOnly) Reset(v uint64)       { n.g.Reset(v) }
func (n *nextOnly) Length(d int64) int64 { return n.g.Length(d) }
func (n *nextOnly) Name() string         { return n.g.Name() }

func TestFillNFallback(t *testing.T) {
	prof := Catalog()[0]
	batched := MustNewGenerator(prof, isa.ST200x4)
	plain := &nextOnly{g: MustNewGenerator(prof, isa.ST200x4)}
	a := make([]TInst, 300)
	b := make([]TInst, 300)
	FillN(batched, a)
	FillN(plain, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d diverged between batch and fallback path", i)
		}
	}
}

package synth

// Vector/SIMD-flavored stress profiles, inspired by SLAP's variable-
// vector-length loop pipeline (PAPERS.md): media kernels vectorized for a
// clustered VLIW show long runs of near-full-width instructions — every
// lane group occupies an issue slot on every cluster — punctuated by
// narrow scalar bookkeeping. That shape is the worst case for split-issue
// merging (dense bundles leave no slack for a co-scheduled thread), which
// is exactly why it belongs on the experiment grid.
//
// BurstProb turns templates into wide vector-op bursts; the burst width is
// the region's vector length, drawn per loop region so consecutive
// strip-mined loops process different VLs (SLAP's variable vector length).
// Profiles with BurstProb == 0 draw nothing extra from the layout RNG, so
// every pre-existing catalog stream stays bit-identical.

// VectorCatalog returns the vector stress profiles. They are additions to
// the paper's Figure 13(a) set, not part of it — Catalog() is unchanged —
// and exist to be recorded via tracegen into replayable trace corpora.
func VectorCatalog() []Profile {
	return []Profile{
		{
			// Variable-VL FIR filter: strip-mined MAC loops over a streaming
			// sample buffer, VL varying per strip.
			Name: "vvlfir", Class: HighILP, Seed: 0x766c66,
			MeanOps: 2.6, MemFrac: 0.24, MulFrac: 0.20, StoreFrac: 0.25, CommProb: 0.12,
			BurstProb:  0.60,
			BranchProb: 0.03, TakenProb: 0.35, LoopInstrs: 24, LoopIters: 48,
			CodeKB: 16, DataKB: 16, StreamKB: 1024, StreamFrac: 0.85,
			LengthMInstr: 40,
		},
		{
			// Sum-of-absolute-differences motion search: ALU-dominated wide
			// compares with light multiply traffic, block-resident data.
			Name: "vecsad", Class: HighILP, Seed: 0x767364,
			MeanOps: 3.0, MemFrac: 0.22, MulFrac: 0.04, StoreFrac: 0.15, CommProb: 0.16,
			BurstProb:  0.70,
			BranchProb: 0.04, TakenProb: 0.40, LoopInstrs: 20, LoopIters: 32,
			CodeKB: 12, DataKB: 32, StreamKB: 256, StreamFrac: 0.40,
			LengthMInstr: 35,
		},
		{
			// Matrix-vector product: multiplier-heavy bursts streaming the
			// matrix while the vector stays cache-resident.
			Name: "gemv", Class: HighILP, Seed: 0x676d76,
			MeanOps: 2.8, MemFrac: 0.28, MulFrac: 0.24, StoreFrac: 0.12, CommProb: 0.10,
			BurstProb:  0.50,
			BranchProb: 0.02, TakenProb: 0.35, LoopInstrs: 28, LoopIters: 64,
			CodeKB: 20, DataKB: 24, StreamKB: 2048, StreamFrac: 0.90,
			LengthMInstr: 50,
		},
	}
}

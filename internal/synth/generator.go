package synth

import (
	"fmt"

	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
)

// TInst is one trace instruction: the resource demand the issue engine
// needs plus the addresses the cache models need. It carries no operand
// values — a statically scheduled VLIW's timing does not depend on them.
type TInst struct {
	Demand   isa.InstrDemand
	PC       uint64
	Size     uint32
	Taken    bool // instruction ends with a taken branch
	IsBranch bool // instruction ends with a conditional branch (taken or not)
	MemAddr  [isa.MaxClusters]uint64
}

// Stream produces a deterministic instruction trace.
type Stream interface {
	// Next fills t with the next instruction of the trace.
	Next(t *TInst)
	// Reset restarts the trace; variant perturbs dynamic behaviour (data
	// addresses, iteration counts) so a respawned benchmark does not replay
	// bit-identically, while code layout stays fixed.
	Reset(variant uint64)
	// Length returns the number of instructions to completion at the given
	// scale divisor (paper scale: divisor 1 -> hundreds of millions).
	Length(scaleDiv int64) int64
	// Name identifies the benchmark.
	Name() string
}

// BatchStream is an optional Stream extension for producers that can fill
// whole instruction runs at once. NextN(out) must be exactly equivalent to
// len(out) successive Next calls; batching exists so a fetch loop can
// amortize the per-instruction interface dispatch over basic-block-sized
// runs.
type BatchStream interface {
	Stream
	// NextN fills out with the next len(out) instructions of the trace.
	NextN(out []TInst)
}

// BatchSize is the recommended refill size for prefetch buffers drawing
// from a Stream: roughly one basic-block run, big enough to amortize the
// per-instruction interface dispatch of Next. Consumers must clamp a
// refill to the current spawn (respawn boundaries fall mid-refill
// otherwise), which also bounds how far a buffer can run ahead of what a
// context will consume — the event-driven run loop jumps the clock over
// dead cycles, but each context still drains its buffer strictly in trace
// order, so larger batches buy nothing once dispatch is amortized.
const BatchSize = 64

// FillN fills out from s, using the batch path when s implements
// BatchStream and falling back to per-instruction Next calls otherwise.
// Either way the consumed trace prefix is identical.
func FillN(s Stream, out []TInst) {
	if b, ok := s.(BatchStream); ok {
		b.NextN(out)
		return
	}
	for i := range out {
		s.Next(&out[i])
	}
}

// codeBase separates benchmark code layouts so per-thread ICache streams
// do not alias by construction; the generator offsets by a seed-derived
// amount as well.
const codeBase = 0x0040_0000

// dataBase is where each benchmark's data footprint starts.
const dataBase = 0x2000_0000

// template is one precomputed body instruction of a loop region. Templates
// are deterministic per (profile, region, position), so every iteration of
// a loop re-fetches the same addresses — the property the ICache model
// depends on.
type template struct {
	demand isa.InstrDemand
	pc     uint64
	size   uint32
	brKind uint8 // 0 none, 1 inner conditional, 2 back-edge
	skip   uint8 // inner-branch forward skip (instructions)
}

const (
	brNone     = 0
	brInner    = 1
	brBackEdge = 2
)

// region is one loop nest of the synthetic program.
type region struct {
	body      []template
	meanIters int
}

// Generator implements Stream for a benchmark profile.
type Generator struct {
	prof    Profile
	geom    isa.Geometry
	regions []region

	dyn       *rng.Rand // dynamic decisions: taken, iteration counts, data addresses
	ri        int       // current region
	pos       int       // position in region body
	itersLeft int
	streamPos uint64
}

// NewGenerator builds the (deterministic) code layout for a profile on the
// given geometry and primes the dynamic state.
func NewGenerator(prof Profile, geom isa.Geometry) (*Generator, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if prof.MeanOps < 1 || prof.MeanOps > float64(geom.TotalIssueWidth()) {
		return nil, fmt.Errorf("synth: %s: mean ops %.2f outside [1,%d]",
			prof.Name, prof.MeanOps, geom.TotalIssueWidth())
	}
	if prof.LoopInstrs <= 0 || prof.LoopIters <= 0 {
		return nil, fmt.Errorf("synth: %s: loop shape must be positive", prof.Name)
	}
	g := &Generator{prof: prof, geom: geom}
	g.buildRegions()
	g.Reset(0)
	return g, nil
}

// MustNewGenerator panics on error (known-good catalog profiles).
func MustNewGenerator(prof Profile, geom isa.Geometry) *Generator {
	g, err := NewGenerator(prof, geom)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Stream.
func (g *Generator) Name() string { return g.prof.Name }

// CodeCycleInstrs estimates the instructions executed per full pass over
// the benchmark's code footprint (every region, every iteration). Warmup
// phases should cover at least one pass so compulsory ICache misses do not
// bias short scaled-down measurements.
func (g *Generator) CodeCycleInstrs() int64 {
	var total int64
	for _, reg := range g.regions {
		total += int64(len(reg.body)) * int64(reg.meanIters)
	}
	return total
}

// Length implements Stream.
func (g *Generator) Length(scaleDiv int64) int64 {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	n := int64(g.prof.LengthMInstr * 1e6 / float64(scaleDiv))
	if n < 1 {
		n = 1
	}
	return n
}

// Reset implements Stream. It reseeds the dynamic generator in place so a
// respawn allocates nothing.
func (g *Generator) Reset(variant uint64) {
	seed := g.prof.Seed*0x9e37_79b9 + 0xd1b5_4a32 + variant*0x100_0001b3
	if g.dyn == nil {
		g.dyn = rng.New(seed)
	} else {
		g.dyn.Seed(seed)
	}
	g.ri = 0
	g.pos = 0
	g.itersLeft = g.jitterIters(g.regions[0].meanIters)
	g.streamPos = 0
}

// buildRegions lays out loop regions until the code footprint reaches
// CodeKB. Layout is derived purely from the profile seed.
func (g *Generator) buildRegions() {
	layout := rng.New(g.prof.Seed ^ 0xc0de_5eed)
	pc := uint64(codeBase) + (g.prof.Seed%64)*4096
	targetBytes := uint64(g.prof.CodeKB) * 1024
	var total uint64
	for total < targetBytes || len(g.regions) == 0 {
		bodyLen := g.prof.LoopInstrs/2 + layout.Intn(g.prof.LoopInstrs+1)
		if bodyLen < 2 {
			bodyLen = 2
		}
		vecLen := 0
		if g.prof.BurstProb > 0 {
			// SLAP-style variable vector length: each region is one
			// strip-mined vector loop with its own VL, a multiple of the
			// per-cluster issue width up to the full machine width. The
			// draw is guarded so BurstProb==0 profiles consume an
			// unchanged layout-RNG stream.
			w := g.geom.IssueWidth
			vecLen = w * (1 + layout.Intn(g.geom.Clusters))
		}
		reg := region{meanIters: g.prof.LoopIters}
		for i := 0; i < bodyLen; i++ {
			last := i == bodyLen-1
			t := g.buildTemplate(layout, pc, last, bodyLen-1-i, vecLen)
			reg.body = append(reg.body, t)
			pc += uint64(t.size)
			total += uint64(t.size)
		}
		g.regions = append(g.regions, reg)
	}
}

// buildTemplate synthesizes one compiler-legal instruction template. A
// non-zero vecLen marks the enclosing region as a vector loop: templates
// then become wide-op bursts with probability BurstProb, occupying vecLen
// issue slots spread evenly across clusters (SIMD lane groups).
func (g *Generator) buildTemplate(r *rng.Rand, pc uint64, backEdge bool, room int, vecLen int) template {
	w := g.geom.IssueWidth
	maxOps := g.geom.TotalIssueWidth()
	burst := vecLen > 0 && r.Bool(g.prof.BurstProb)
	var ops int
	if burst {
		ops = vecLen
	} else {
		// ops ~ 1 + Binomial(maxOps-1, p) with mean MeanOps, compensated for
		// the ~2*CommProb ops the send/recv pairs add on average so the
		// measured ops/instruction lands on MeanOps.
		target := g.prof.MeanOps - 2*g.prof.CommProb
		if target < 1 {
			target = 1
		}
		p := (target - 1) / float64(maxOps-1)
		ops = 1
		for i := 0; i < maxOps-1; i++ {
			if r.Bool(p) {
				ops++
			}
		}
	}

	// Cluster assignment mimics Bottom-Up-Greedy: operations follow their
	// data. Placement is bimodal — dependence chains pack into one cluster
	// (dense bundles that cause operation-level resource conflicts between
	// threads), while independent operations spread across clusters (thin
	// bundles that cause partial cluster-level conflicts) — and the anchor
	// cluster wanders instruction to instruction. Both kinds of
	// variability are what give the merging hardware conflicts to resolve;
	// renaming alone cannot separate threads whose placements wander.
	// Vector bursts instead spread lane groups evenly over as many
	// clusters as the VL fills — the dense, slack-free placement a
	// vectorizing compiler emits.
	k := (ops + w - 1) / w
	if burst {
		if k > g.geom.Clusters {
			k = g.geom.Clusters
		}
	} else if !r.Bool(0.5) { // spread mode
		spread := g.prof.SpreadProb
		if spread == 0 {
			spread = 0.85
		}
		for k < g.geom.Clusters && k < ops && r.Bool(spread) {
			k++
		}
	}
	start := 0
	if r.Bool(0.5) {
		start = r.Intn(g.geom.Clusters)
	}
	var perCluster [isa.MaxClusters]int
	for i := 0; i < ops; i++ {
		perCluster[(start+i%k)%g.geom.Clusters]++
	}

	var d isa.InstrDemand
	memBudget := int(float64(ops)*g.prof.MemFrac + 0.5)
	mulBudget := int(float64(ops)*g.prof.MulFrac + 0.5)
	for j := 0; j < k; j++ {
		c := (start + j) % g.geom.Clusters
		n := perCluster[c]
		b := isa.BundleDemand{Ops: uint8(n)}
		if memBudget > 0 && g.geom.MemUnits > 0 && n > 0 {
			b.Mem = 1
			memBudget--
			n--
			if r.Bool(g.prof.StoreFrac) {
				b.Stor = true
			} else {
				b.Load = true
			}
		}
		for n > 0 && mulBudget > 0 && int(b.Mul) < g.geom.Muls {
			b.Mul++
			mulBudget--
			n--
		}
		b.ALU = uint8(n)
		d.B[c] = b
	}

	// Inter-cluster copy pair: one extra ALU-class op on two clusters.
	if g.geom.Clusters > 1 && r.Bool(g.prof.CommProb) {
		src := r.Intn(g.geom.Clusters)
		dst := (src + 1 + r.Intn(g.geom.Clusters-1)) % g.geom.Clusters
		for _, c := range []int{src, dst} {
			if int(d.B[c].Ops) < w && int(d.B[c].ALU) < g.geom.ALUs {
				d.B[c].Ops++
				d.B[c].ALU++
			}
			d.B[c].Comm = d.B[c].Ops > 0
		}
		d.HasComm = d.B[src].Comm || d.B[dst].Comm
		if d.HasComm {
			ops = d.NumOps()
		}
	}

	// Control flow: the branch operation is one of the instruction's
	// ALU-class operations (it needs no separate demand accounting; the
	// Taken flag carries the timing semantics).
	t := template{demand: d, pc: pc, size: uint32(4 * d.NumOps()), brKind: brNone}
	switch {
	case backEdge:
		t.brKind = brBackEdge
	case room > 0 && r.Bool(g.prof.BranchProb):
		t.brKind = brInner
		skip := 1 + r.Intn(3)
		if skip > room {
			skip = room
		}
		t.skip = uint8(skip)
	}
	if t.size == 0 {
		t.size = 4
	}
	return t
}

func (g *Generator) jitterIters(mean int) int {
	if mean <= 1 {
		return 1
	}
	// Uniform in [mean/2, 3*mean/2].
	lo := mean / 2
	if lo < 1 {
		lo = 1
	}
	return lo + g.dyn.Intn(mean+1)
}

// Next implements Stream.
func (g *Generator) Next(t *TInst) {
	g.step(&g.regions[g.ri], t)
}

// NextN implements BatchStream: it emits the next len(out) instructions in
// one call, caching the current loop region across the run so the template
// walk stays in registers. The produced trace is exactly what len(out)
// Next calls would have produced.
func (g *Generator) NextN(out []TInst) {
	ri := -1
	var reg *region
	for i := range out {
		if g.ri != ri {
			ri = g.ri
			reg = &g.regions[ri]
		}
		g.step(reg, &out[i])
	}
}

// step emits one instruction from the current position of reg (which must
// be &g.regions[g.ri]) and advances the trace's control flow.
func (g *Generator) step(reg *region, t *TInst) {
	tm := &reg.body[g.pos]
	t.Demand = tm.demand
	t.PC = tm.pc
	t.Size = tm.size
	t.Taken = false
	t.IsBranch = tm.brKind != brNone

	// Data addresses for the cache model.
	for c := 0; c < g.geom.Clusters; c++ {
		if tm.demand.B[c].Mem == 0 {
			t.MemAddr[c] = 0
			continue
		}
		if g.dyn.Bool(g.prof.StreamFrac) {
			wrap := uint64(g.prof.StreamKB) * 1024
			if wrap < 64 {
				wrap = 64
			}
			t.MemAddr[c] = dataBase + (g.streamPos % wrap)
			g.streamPos += 4
		} else {
			foot := uint64(g.prof.DataKB) * 1024
			if foot < 64 {
				foot = 64
			}
			t.MemAddr[c] = dataBase + uint64(g.prof.StreamKB)*1024 +
				(g.dyn.Uint64n(foot) &^ 3)
		}
	}

	// Advance control flow.
	switch tm.brKind {
	case brBackEdge:
		if g.itersLeft > 0 {
			g.itersLeft--
			t.Taken = true
			g.pos = 0
			return
		}
		// Loop exit: fall through to the next region; wrapping from the
		// last region back to the first is a taken jump.
		if g.ri == len(g.regions)-1 {
			t.Taken = true
		}
		g.ri = (g.ri + 1) % len(g.regions)
		g.pos = 0
		g.itersLeft = g.jitterIters(g.regions[g.ri].meanIters)
	case brInner:
		if g.dyn.Bool(g.prof.TakenProb) {
			t.Taken = true
			g.pos += int(tm.skip) + 1
			if g.pos >= len(reg.body) {
				g.pos = len(reg.body) - 1
			}
			return
		}
		g.pos++
	default:
		g.pos++
	}
	if g.pos >= len(reg.body) {
		g.pos = 0 // defensive; back-edge handling should prevent this
	}
}

// MeasuredShape summarizes a sample of the stream; used by calibration
// tests and cmd/tracegen.
type MeasuredShape struct {
	Instrs      int64
	Ops         int64
	TakenFrac   float64
	MemPerInstr float64
	CommFrac    float64
	OpsPerInstr float64
}

// Measure draws n instructions (without disturbing determinism guarantees —
// call Reset afterwards if reuse is intended) and reports aggregate shape.
func Measure(s Stream, n int64) MeasuredShape {
	var t TInst
	var sh MeasuredShape
	var taken, comm, mem int64
	for i := int64(0); i < n; i++ {
		s.Next(&t)
		sh.Instrs++
		sh.Ops += int64(t.Demand.NumOps())
		if t.Taken {
			taken++
		}
		if t.Demand.HasComm {
			comm++
		}
		for c := range t.MemAddr {
			if t.Demand.B[c].Mem > 0 {
				mem++
			}
		}
	}
	sh.TakenFrac = float64(taken) / float64(n)
	sh.CommFrac = float64(comm) / float64(n)
	sh.MemPerInstr = float64(mem) / float64(n)
	sh.OpsPerInstr = float64(sh.Ops) / float64(n)
	return sh
}

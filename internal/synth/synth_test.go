package synth

import (
	"testing"

	"vexsmt/internal/isa"
)

func TestCatalogBasics(t *testing.T) {
	cat := Catalog()
	if len(cat) != 12 {
		t.Fatalf("catalog has %d benchmarks, want 12 (Figure 13a)", len(cat))
	}
	want := []string{"mcf", "bzip2", "blowfish", "gsmencode", "g721encode",
		"g721decode", "cjpeg", "djpeg", "imgpipe", "x264", "idct", "colorspace"}
	classes := map[string]ILPClass{
		"mcf": LowILP, "bzip2": LowILP, "blowfish": LowILP, "gsmencode": LowILP,
		"g721encode": MediumILP, "g721decode": MediumILP, "cjpeg": MediumILP, "djpeg": MediumILP,
		"imgpipe": HighILP, "x264": HighILP, "idct": HighILP, "colorspace": HighILP,
	}
	for i, p := range cat {
		if p.Name != want[i] {
			t.Errorf("position %d: %s, want %s", i, p.Name, want[i])
		}
		if p.Class != classes[p.Name] {
			t.Errorf("%s: class %c, want %c", p.Name, p.Class, classes[p.Name])
		}
		if p.Seed == 0 {
			t.Errorf("%s: zero seed", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("idct")
	if !ok || p.Name != "idct" {
		t.Fatal("ByName(idct) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("cjpeg")
	a := MustNewGenerator(p, isa.ST200x4)
	b := MustNewGenerator(p, isa.ST200x4)
	var x, y TInst
	for i := 0; i < 5000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x != y {
			t.Fatalf("streams diverged at instruction %d", i)
		}
	}
}

func TestResetRestartsStream(t *testing.T) {
	p, _ := ByName("gsmencode")
	g := MustNewGenerator(p, isa.ST200x4)
	var first []TInst
	var ti TInst
	for i := 0; i < 100; i++ {
		g.Next(&ti)
		first = append(first, ti)
	}
	g.Reset(0)
	for i := 0; i < 100; i++ {
		g.Next(&ti)
		if ti != first[i] {
			t.Fatalf("reset stream diverged at %d", i)
		}
	}
	// A different variant changes dynamic behaviour but keeps code layout.
	g.Reset(1)
	same := 0
	for i := 0; i < 100; i++ {
		g.Next(&ti)
		if ti.PC != first[i].PC {
			// PCs may legitimately diverge once dynamic branching differs;
			// stop comparing from that point.
			break
		}
		if ti == first[i] {
			same++
		}
	}
	if same == 100 {
		t.Error("variant 1 replays variant 0 exactly")
	}
}

func TestAllProfilesProduceLegalBundles(t *testing.T) {
	g := isa.ST200x4
	for _, p := range Catalog() {
		gen := MustNewGenerator(p, g)
		var ti TInst
		for i := 0; i < 20000; i++ {
			gen.Next(&ti)
			for c := 0; c < g.Clusters; c++ {
				b := ti.Demand.B[c]
				if int(b.Ops) > g.IssueWidth || int(b.ALU) > g.ALUs ||
					int(b.Mul) > g.Muls || int(b.Mem) > g.MemUnits {
					t.Fatalf("%s instr %d cluster %d: illegal bundle %+v", p.Name, i, c, b)
				}
				if b.Ops != b.ALU+b.Mul+b.Mem {
					t.Fatalf("%s instr %d cluster %d: inconsistent demand %+v", p.Name, i, c, b)
				}
				if b.Mem > 0 && ti.MemAddr[c] == 0 {
					t.Fatalf("%s instr %d cluster %d: mem op without address", p.Name, i, c)
				}
				if b.Mem == 0 && ti.MemAddr[c] != 0 {
					t.Fatalf("%s instr %d cluster %d: address without mem op", p.Name, i, c)
				}
			}
			if ti.Demand.NumOps() == 0 {
				t.Fatalf("%s instr %d: empty instruction", p.Name, i)
			}
			if ti.Size == 0 {
				t.Fatalf("%s instr %d: zero size", p.Name, i)
			}
		}
	}
}

func TestMeanOpsNearTarget(t *testing.T) {
	for _, p := range Catalog() {
		gen := MustNewGenerator(p, isa.ST200x4)
		sh := Measure(gen, 100_000)
		lo, hi := p.MeanOps*0.85, p.MeanOps*1.25
		if sh.OpsPerInstr < lo || sh.OpsPerInstr > hi {
			t.Errorf("%s: ops/instr %.3f outside [%.3f, %.3f]",
				p.Name, sh.OpsPerInstr, lo, hi)
		}
	}
}

func TestILPClassOrdering(t *testing.T) {
	// High-ILP profiles must measure wider than medium, medium wider than low.
	widest := map[ILPClass]float64{}
	narrowest := map[ILPClass]float64{LowILP: 99, MediumILP: 99, HighILP: 99}
	for _, p := range Catalog() {
		gen := MustNewGenerator(p, isa.ST200x4)
		sh := Measure(gen, 50_000)
		if sh.OpsPerInstr > widest[p.Class] {
			widest[p.Class] = sh.OpsPerInstr
		}
		if sh.OpsPerInstr < narrowest[p.Class] {
			narrowest[p.Class] = sh.OpsPerInstr
		}
	}
	if widest[LowILP] >= narrowest[MediumILP] {
		t.Errorf("low ILP (max %.2f) overlaps medium (min %.2f)", widest[LowILP], narrowest[MediumILP])
	}
	if widest[MediumILP] >= narrowest[HighILP] {
		t.Errorf("medium ILP (max %.2f) overlaps high (min %.2f)", widest[MediumILP], narrowest[HighILP])
	}
}

func TestCodeFootprintRepeats(t *testing.T) {
	// Loop bodies must re-execute at identical PCs, or the ICache model
	// would see an infinite stream of cold addresses.
	p, _ := ByName("g721encode")
	gen := MustNewGenerator(p, isa.ST200x4)
	seen := make(map[uint64]int)
	var ti TInst
	for i := 0; i < 50_000; i++ {
		gen.Next(&ti)
		seen[ti.PC]++
	}
	repeated := 0
	for _, n := range seen {
		if n > 1 {
			repeated++
		}
	}
	if frac := float64(repeated) / float64(len(seen)); frac < 0.9 {
		t.Errorf("only %.0f%% of PCs repeat; code layout unstable", frac*100)
	}
	// Total distinct code bytes must be near the configured footprint.
	var bytes uint64
	for pc := range seen {
		_ = pc
		bytes += 8 // rough average instruction size; just check magnitude
	}
	if len(seen) < 50 {
		t.Errorf("suspiciously few distinct instructions: %d", len(seen))
	}
}

func TestLengthScaling(t *testing.T) {
	p, _ := ByName("blowfish")
	g := MustNewGenerator(p, isa.ST200x4)
	full := g.Length(1)
	scaled := g.Length(100)
	if full != 60_000_000 {
		t.Fatalf("full length = %d", full)
	}
	if scaled != 600_000 {
		t.Fatalf("scaled length = %d", scaled)
	}
	if g.Length(0) != full {
		t.Fatal("scale divisor < 1 not clamped")
	}
}

func TestHighILPUsesMoreComm(t *testing.T) {
	// The paper: "high IPC benchmarks use inter-cluster communication
	// operations more frequently than the low and medium IPC benchmarks."
	commByClass := map[ILPClass]float64{}
	countByClass := map[ILPClass]int{}
	for _, p := range Catalog() {
		gen := MustNewGenerator(p, isa.ST200x4)
		sh := Measure(gen, 30_000)
		commByClass[p.Class] += sh.CommFrac
		countByClass[p.Class]++
	}
	low := commByClass[LowILP] / float64(countByClass[LowILP])
	high := commByClass[HighILP] / float64(countByClass[HighILP])
	if high <= low*2 {
		t.Errorf("high-ILP comm %.4f not clearly above low-ILP %.4f", high, low)
	}
}

func TestRejectsBadProfiles(t *testing.T) {
	bad := Profile{Name: "x", MeanOps: 0.5, LoopInstrs: 4, LoopIters: 4}
	if _, err := NewGenerator(bad, isa.ST200x4); err == nil {
		t.Error("mean ops < 1 accepted")
	}
	bad2 := Profile{Name: "x", MeanOps: 2, LoopInstrs: 0, LoopIters: 4}
	if _, err := NewGenerator(bad2, isa.ST200x4); err == nil {
		t.Error("zero loop length accepted")
	}
	bad3 := Profile{Name: "x", MeanOps: 99, LoopInstrs: 4, LoopIters: 4}
	if _, err := NewGenerator(bad3, isa.ST200x4); err == nil {
		t.Error("mean ops beyond machine width accepted")
	}
}

// Package synth generates synthetic compiler-scheduled VLIW instruction
// streams standing in for the paper's benchmark binaries (MediaBench,
// SPECint 2000, imgpipe, x264, idct, colorspace — Figure 13a). The real
// binaries require the proprietary VEX/ST200 toolchain; each profile below
// reproduces the *timing-relevant shape* of one benchmark: operations per
// instruction and their spread over clusters (horizontal utilization),
// functional unit mix, branch behaviour, inter-cluster copy frequency, and
// instruction/data footprints that drive the real cache models. Profiles
// are calibrated so single-thread IPC with perfect and real memory lands
// near the paper's IPCp/IPCr columns.
package synth

// ILPClass is the paper's l/m/h classification by IPCp.
type ILPClass byte

const (
	LowILP    ILPClass = 'l'
	MediumILP ILPClass = 'm'
	HighILP   ILPClass = 'h'
)

func (c ILPClass) String() string {
	switch c {
	case LowILP:
		return "l"
	case MediumILP:
		return "m"
	case HighILP:
		return "h"
	}
	return "?"
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name  string
	Class ILPClass
	Seed  uint64

	// Instruction shape.
	MeanOps    float64 // mean RISC operations per VLIW instruction (1..16)
	SpreadProb float64 // per-template probability of spilling onto one more cluster (0 = default 0.35)
	MemFrac    float64 // fraction of ops targeted at the LSU (capped 1/cluster)
	MulFrac    float64 // fraction of ops targeted at multipliers (capped 2/cluster)
	StoreFrac  float64 // of memory ops, fraction that are stores
	CommProb   float64 // probability an instruction carries a send/recv pair
	BurstProb  float64 // probability a template is a wide vector-op burst (0 = scalar profile)

	// Control flow: loop regions with back-edges plus inner conditional
	// branches that skip forward a few instructions.
	BranchProb float64 // inner conditional branch per instruction
	TakenProb  float64 // probability an inner branch is taken
	LoopInstrs int     // mean loop body length (instructions)
	LoopIters  int     // mean iterations per loop entry

	// Footprints (drive the real cache models).
	CodeKB     int     // total code working set
	DataKB     int     // random-access data footprint
	StreamKB   int     // streaming buffer size (wrap-around)
	StreamFrac float64 // fraction of memory accesses that stream

	// LengthMInstr is the benchmark's run-to-completion length in millions
	// of VLIW instructions at paper scale (30–100M for the short ones;
	// mcf/bzip2 exceed the 200M limit and never complete).
	LengthMInstr float64
}

// Catalog returns the twelve benchmark profiles of Figure 13(a), in the
// paper's order. Parameter values were calibrated against the paper's
// single-thread IPCr/IPCp columns (see TestCalibration in the sim package
// and EXPERIMENTS.md).
func Catalog() []Profile {
	return []Profile{
		{
			// Minimum cost flow: pointer-chasing integer code, low ILP,
			// sizeable random data footprint (IPCp 1.34 -> IPCr 0.96).
			Name: "mcf", Class: LowILP, Seed: 0x6d6366,
			MeanOps: 1.61, MemFrac: 0.30, MulFrac: 0.04, StoreFrac: 0.45, CommProb: 0.05,
			BranchProb: 0.25, TakenProb: 0.45, LoopInstrs: 12, LoopIters: 6,
			CodeKB: 24, DataKB: 72, StreamKB: 512, StreamFrac: 0.95,
			LengthMInstr: 250,
		},
		{
			// Bzip2 compression: very branchy, narrow, mostly cache-resident
			// (IPCp 0.83 -> IPCr 0.81).
			Name: "bzip2", Class: LowILP, Seed: 0x627a32,
			MeanOps: 1.04, MemFrac: 0.25, MulFrac: 0.02, StoreFrac: 0.30, CommProb: 0.04,
			BranchProb: 0.28, TakenProb: 0.50, LoopInstrs: 10, LoopIters: 8,
			CodeKB: 40, DataKB: 56, StreamKB: 96, StreamFrac: 0.20,
			LengthMInstr: 250,
		},
		{
			// Blowfish encryption: streams through the plaintext buffer
			// (IPCp 1.47 -> IPCr 1.11).
			Name: "blowfish", Class: LowILP, Seed: 0x626c66,
			MeanOps: 1.68, MemFrac: 0.24, MulFrac: 0.03, StoreFrac: 0.20, CommProb: 0.06,
			BranchProb: 0.18, TakenProb: 0.40, LoopInstrs: 16, LoopIters: 20,
			CodeKB: 12, DataKB: 256, StreamKB: 512, StreamFrac: 0.85,
			LengthMInstr: 60,
		},
		{
			// GSM speech encoder: small kernels, everything fits in cache
			// (IPCp = IPCr = 1.07).
			Name: "gsmencode", Class: LowILP, Seed: 0x67736d,
			MeanOps: 1.29, MemFrac: 0.22, MulFrac: 0.08, StoreFrac: 0.30, CommProb: 0.06,
			BranchProb: 0.22, TakenProb: 0.45, LoopInstrs: 14, LoopIters: 12,
			CodeKB: 16, DataKB: 12, StreamKB: 16, StreamFrac: 0.30,
			LengthMInstr: 40,
		},
		{
			// G.721 voice encoder: medium ILP DSP loops, cache-resident
			// (IPCp 1.76 -> IPCr 1.75).
			Name: "g721encode", Class: MediumILP, Seed: 0x673765,
			MeanOps: 1.97, MemFrac: 0.20, MulFrac: 0.12, StoreFrac: 0.25, CommProb: 0.10,
			BranchProb: 0.12, TakenProb: 0.40, LoopInstrs: 24, LoopIters: 30,
			CodeKB: 20, DataKB: 16, StreamKB: 16, StreamFrac: 0.20,
			LengthMInstr: 50,
		},
		{
			// G.721 voice decoder: twin of the encoder (IPCp 1.76 -> 1.75).
			Name: "g721decode", Class: MediumILP, Seed: 0x673764,
			MeanOps: 1.97, MemFrac: 0.20, MulFrac: 0.12, StoreFrac: 0.25, CommProb: 0.10,
			BranchProb: 0.12, TakenProb: 0.40, LoopInstrs: 22, LoopIters: 28,
			CodeKB: 20, DataKB: 16, StreamKB: 16, StreamFrac: 0.20,
			LengthMInstr: 50,
		},
		{
			// JPEG encoder: DCT/quantization loops streaming the input image
			// (IPCp 1.66 -> IPCr 1.12: significant memory stalls).
			Name: "cjpeg", Class: MediumILP, Seed: 0x636a70,
			MeanOps: 1.83, MemFrac: 0.28, MulFrac: 0.14, StoreFrac: 0.30, CommProb: 0.10,
			BranchProb: 0.10, TakenProb: 0.40, LoopInstrs: 20, LoopIters: 16,
			CodeKB: 24, DataKB: 24, StreamKB: 1024, StreamFrac: 0.95,
			LengthMInstr: 35,
		},
		{
			// JPEG decoder: output tiles stay cache-resident
			// (IPCp 1.77 -> IPCr 1.76).
			Name: "djpeg", Class: MediumILP, Seed: 0x646a70,
			MeanOps: 1.95, MemFrac: 0.24, MulFrac: 0.14, StoreFrac: 0.35, CommProb: 0.10,
			BranchProb: 0.10, TakenProb: 0.40, LoopInstrs: 20, LoopIters: 16,
			CodeKB: 24, DataKB: 16, StreamKB: 16, StreamFrac: 0.25,
			LengthMInstr: 30,
		},
		{
			// Imaging pipeline used in high-performance printers: wide
			// software-pipelined loops (IPCp 4.05 -> IPCr 3.81).
			Name: "imgpipe", Class: HighILP, Seed: 0x696d67,
			MeanOps: 4.23, MemFrac: 0.22, MulFrac: 0.12, StoreFrac: 0.35, CommProb: 0.20,
			BranchProb: 0.02, TakenProb: 0.40, LoopInstrs: 26, LoopIters: 50,
			CodeKB: 28, DataKB: 32, StreamKB: 2048, StreamFrac: 0.08,
			LengthMInstr: 80,
		},
		{
			// H.264 encoder: wide SAD/transform kernels, good locality
			// (IPCp 4.04 -> IPCr 3.89).
			Name: "x264", Class: HighILP, Seed: 0x783264,
			MeanOps: 4.20, MemFrac: 0.20, MulFrac: 0.10, StoreFrac: 0.30, CommProb: 0.18,
			BranchProb: 0.03, TakenProb: 0.40, LoopInstrs: 24, LoopIters: 40,
			CodeKB: 40, DataKB: 48, StreamKB: 1024, StreamFrac: 0.04,
			LengthMInstr: 100,
		},
		{
			// Inverse DCT from ffmpeg: unrolled butterfly kernels
			// (IPCp 5.27 -> IPCr 4.79).
			Name: "idct", Class: HighILP, Seed: 0x696463,
			MeanOps: 5.43, MemFrac: 0.20, MulFrac: 0.16, StoreFrac: 0.40, CommProb: 0.22,
			BranchProb: 0.02, TakenProb: 0.35, LoopInstrs: 28, LoopIters: 60,
			CodeKB: 20, DataKB: 24, StreamKB: 1024, StreamFrac: 0.10,
			LengthMInstr: 45,
		},
		{
			// Production colour-space conversion: almost branch-free 16-wide
			// kernels streaming whole images (IPCp 8.88 -> IPCr 5.47).
			Name: "colorspace", Class: HighILP, Seed: 0x636c72,
			MeanOps: 9.00, MemFrac: 0.25, MulFrac: 0.14, StoreFrac: 0.40, CommProb: 0.30,
			BranchProb: 0.01, TakenProb: 0.30, LoopInstrs: 32, LoopIters: 80,
			CodeKB: 16, DataKB: 16, StreamKB: 4096, StreamFrac: 0.32,
			LengthMInstr: 70,
		},
	}
}

// ByName returns the profile with the given benchmark name, searching the
// paper catalog first and the vector stress catalog second.
func ByName(name string) (Profile, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range VectorCatalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

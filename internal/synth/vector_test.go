package synth

import (
	"testing"

	"vexsmt/internal/isa"
)

func TestVectorCatalogBasics(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Catalog() {
		seen[p.Name] = true
	}
	for _, p := range VectorCatalog() {
		if seen[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
		if p.BurstProb <= 0 {
			t.Fatalf("%s: vector profile without bursts", p.Name)
		}
		if got, ok := ByName(p.Name); !ok || got.Name != p.Name {
			t.Fatalf("ByName(%q) failed", p.Name)
		}
	}
}

func TestVectorProfilesLegalAndBursty(t *testing.T) {
	g := isa.ST200x4
	for _, p := range VectorCatalog() {
		gen := MustNewGenerator(p, g)
		var ti TInst
		widths := map[int]int{}
		full := 0
		for i := 0; i < 20000; i++ {
			gen.Next(&ti)
			ops := 0
			for c := 0; c < g.Clusters; c++ {
				b := ti.Demand.B[c]
				if int(b.Ops) > g.IssueWidth || int(b.ALU) > g.ALUs ||
					int(b.Mul) > g.Muls || int(b.Mem) > g.MemUnits {
					t.Fatalf("%s instr %d cluster %d: illegal bundle %+v", p.Name, i, c, b)
				}
				if b.Ops != b.ALU+b.Mul+b.Mem {
					t.Fatalf("%s instr %d cluster %d: inconsistent demand %+v", p.Name, i, c, b)
				}
				ops += int(b.Ops)
			}
			widths[ops]++
			if ops == g.TotalIssueWidth() {
				full++
			}
		}
		// Wide-op bursts must actually occur, including full-width ones.
		if full == 0 {
			t.Fatalf("%s: no full-width burst in 20k instructions", p.Name)
		}
		// Variable vector length: more than one burst width beyond the
		// scalar tail (VLs are multiples of the per-cluster issue width).
		burstWidths := 0
		for w, n := range widths {
			if w >= g.IssueWidth && w%g.IssueWidth == 0 && n > 50 {
				burstWidths++
			}
		}
		if burstWidths < 2 {
			t.Fatalf("%s: burst widths not variable: %v", p.Name, widths)
		}
	}
}

func TestVectorProfilesDeterministic(t *testing.T) {
	for _, p := range VectorCatalog() {
		a := MustNewGenerator(p, isa.ST200x4)
		b := MustNewGenerator(p, isa.ST200x4)
		var x, y TInst
		for i := 0; i < 5000; i++ {
			a.Next(&x)
			b.Next(&y)
			if x != y {
				t.Fatalf("%s: diverged at %d", p.Name, i)
			}
		}
	}
}

package core

import "testing"

func TestTechniqueNames(t *testing.T) {
	cases := []struct {
		tech Technique
		want string
	}{
		{SMT(), "SMT"},
		{CSMT(), "CSMT"},
		{CCSI(CommNoSplit), "CCSI NS"},
		{CCSI(CommAlwaysSplit), "CCSI AS"},
		{COSI(CommNoSplit), "COSI NS"},
		{COSI(CommAlwaysSplit), "COSI AS"},
		{OOSI(CommNoSplit), "OOSI NS"},
		{OOSI(CommAlwaysSplit), "OOSI AS"},
	}
	for _, c := range cases {
		if got := c.tech.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestParseTechniqueRoundTrip(t *testing.T) {
	for _, tech := range AllTechniques() {
		got, err := ParseTechnique(tech.Name())
		if err != nil {
			t.Errorf("ParseTechnique(%q): %v", tech.Name(), err)
			continue
		}
		if got != tech {
			t.Errorf("round trip %q: got %+v", tech.Name(), got)
		}
	}
	if _, err := ParseTechnique("BOGUS"); err == nil {
		t.Error("bogus technique accepted")
	}
	// Bare split names default to NS.
	ccsi, err := ParseTechnique("CCSI")
	if err != nil || ccsi.Comm != CommNoSplit {
		t.Errorf("CCSI default comm: %+v, %v", ccsi, err)
	}
}

func TestFigure4RuledOutCombination(t *testing.T) {
	// Operation-level split with cluster-level merging is "—" in Figure 4.
	bad := Technique{Merge: MergeCluster, Split: SplitOperation}
	if err := bad.Validate(); err == nil {
		t.Fatal("cluster-merge + operation-split accepted")
	}
	for _, tech := range AllTechniques() {
		if err := tech.Validate(); err != nil {
			t.Errorf("%s rejected: %v", tech.Name(), err)
		}
	}
}

func TestAllTechniquesOrder(t *testing.T) {
	// The paper's Figure 16 presents: CSMT, CCSI NS, CCSI AS, SMT, COSI NS,
	// COSI AS, OOSI NS, OOSI AS.
	want := []string{"CSMT", "CCSI NS", "CCSI AS", "SMT", "COSI NS", "COSI AS", "OOSI NS", "OOSI AS"}
	got := AllTechniques()
	if len(got) != len(want) {
		t.Fatalf("%d techniques, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name() != want[i] {
			t.Errorf("position %d: %s, want %s", i, got[i].Name(), want[i])
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if MergeCluster.String() != "cluster-merge" || MergeOperation.String() != "operation-merge" {
		t.Error("merge policy strings")
	}
	if SplitNone.String() != "no-split" || SplitCluster.String() != "cluster-split" ||
		SplitOperation.String() != "operation-split" {
		t.Error("split policy strings")
	}
	if CommNoSplit.String() != "NS" || CommAlwaysSplit.String() != "AS" {
		t.Error("comm policy strings")
	}
}

func TestRotatorCycles(t *testing.T) {
	r := NewRotator(3)
	var buf [MaxThreads]int
	wantOrders := [][3]int{{0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {0, 1, 2}}
	for i, want := range wantOrders {
		r.Order(&buf)
		for j := 0; j < 3; j++ {
			if buf[j] != want[j] {
				t.Fatalf("cycle %d: order %v, want %v", i, buf[:3], want)
			}
		}
	}
}

func TestRotatorFairness(t *testing.T) {
	// Every thread is highest-priority exactly once per n cycles.
	const n = 4
	r := NewRotator(n)
	var buf [MaxThreads]int
	counts := make([]int, n)
	for i := 0; i < 100*n; i++ {
		r.Order(&buf)
		counts[buf[0]]++
	}
	for th, c := range counts {
		if c != 100 {
			t.Errorf("thread %d highest priority %d times, want 100", th, c)
		}
	}
}

func TestRenameRotation(t *testing.T) {
	// 4-thread 4-cluster: rotations 0,1,2,3 (paper Section IV).
	for th := 0; th < 4; th++ {
		if got := RenameRotation(th, 4, 4); got != th {
			t.Errorf("4T4C thread %d: rotation %d, want %d", th, got, th)
		}
	}
	// 2-thread 4-cluster: rotations follow the thread index -> 0 and 1.
	if RenameRotation(0, 4, 2) != 0 || RenameRotation(1, 4, 2) != 1 {
		t.Error("2T4C rotation should be 0, 1")
	}
	// 1 thread: no rotation.
	if RenameRotation(0, 4, 1) != 0 {
		t.Error("1T rotation should be 0")
	}
	// More threads than clusters wraps.
	if RenameRotation(5, 4, 8) != 1 {
		t.Errorf("8T4C thread 5: got %d, want 1", RenameRotation(5, 4, 8))
	}
	// 4-thread 4-cluster: rotations 0,1,2,3 as before.
	_ = 0
	if RenameRotation(0, 0, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

package core

import (
	"fmt"
	"math/bits"

	"vexsmt/internal/isa"
)

// MaxThreads bounds the hardware thread contexts supported by fixed-size
// arrays. The paper evaluates 1, 2 and 4 threads.
const MaxThreads = 8

// ThreadResult reports what one thread did during a cycle.
type ThreadResult struct {
	Ops      int   // operations issued this cycle
	Clusters uint8 // bitmask of clusters that received operations
	LastPart bool  // instruction completed (entirely issued) this cycle
	Split    bool  // instruction left partially issued after this cycle
	LoadsAt  uint8 // bitmask of clusters where a load issued this cycle
	StoresAt uint8 // bitmask of clusters where a store issued this cycle
}

// CycleResult reports one issue cycle of the whole machine.
type CycleResult struct {
	// Issued is the bitmask of threads that issued operations this cycle:
	// exactly the threads whose Thread entry has Ops > 0. After CycleInto,
	// Thread entries of non-issuing threads may hold stale data from an
	// earlier cycle; consumers on the scratch-reuse path must iterate via
	// Issued. (Cycle returns a fully zeroed result, so indexing Thread
	// directly remains safe there.)
	Issued uint8
	Thread [MaxThreads]ThreadResult
	// MemOps counts memory-port uses per cluster this cycle: loads execute
	// (and use the port) at issue time; stores use the port only when
	// issued in their instruction's last part. Stores issued in an earlier
	// split part write the delay buffer instead and take the port at
	// commit time (counted in Commits).
	MemOps [isa.MaxClusters]uint8
	// Commits counts delayed stores committed per cluster this cycle
	// because their instruction's last part issued (Section V-D).
	Commits [isa.MaxClusters]uint8
	// Ops is the total operation count of the execution packet.
	Ops int
	// Threads is the number of distinct threads in the packet.
	Threads int
}

// MemPortOverflow returns the number of extra cycles the pipeline must
// stall because delayed store commits plus new memory operations exceed the
// per-cluster memory ports (Figure 11: "the pipeline is stalled till all
// the memory operations have been performed"). Clusters drain in parallel,
// so the stall is the maximum per-cluster overflow.
func (r *CycleResult) MemPortOverflow(geom isa.Geometry) int {
	worst := 0
	for c := 0; c < geom.Clusters; c++ {
		total := int(r.MemOps[c]) + int(r.Commits[c])
		if over := total - geom.MemUnits; over > worst {
			worst = over
		}
	}
	return worst
}

// issueKind selects one of the specialized per-cycle issue routines: the
// merge x split policy cross-product lowered to a flat decision table
// entry at NewEngine/Load time.
type issueKind uint8

const (
	kindWhole     issueKind = iota // all remaining bundles or nothing
	kindClusterCM                  // cluster split, cluster-granularity merge (CCSI)
	kindClusterOM                  // cluster split, operation-granularity merge (COSI)
	kindOpSplit                    // operation split (OOSI)
)

// Engine is the merging hardware plus split-issue state machine. It is
// deliberately independent of fetch, caches and scheduling: the caller
// loads per-thread instruction demands and asks for one issue cycle at a
// time, passing which threads are ready (not stalled).
//
// At construction the Technique (merge policy x split policy x comm
// policy) is lowered into flat decision fields — the packet's collision
// granularity, the engine-wide split mode, the NS comm restriction and a
// precomputed priority-order table — so the per-cycle path runs on plain
// branches over precomputed state instead of consulting policy structs.
//
// Per-thread issue state is struct-of-arrays: thread membership flags are
// bitmasks over thread indices (active, started) and the per-thread fields
// (issue kind, live-cluster mask, delay-buffer mask, remaining demand) are
// flat parallel arrays, so the hot path tests and updates whole-machine
// state with bitwise operations instead of chasing per-thread structs with
// boolean fields.
type Engine struct {
	geom isa.Geometry
	tech Technique
	nt   int

	// Lowered decision state (NewEngine time).
	clusters      int
	loadKind      issueKind // issue routine for non-comm instructions
	commDowngrade bool      // NS + split: comm instructions issue whole
	// orderTab[b] is the thread priority order when the rotation base is b:
	// b, b+1 mod n, ... (Section VI-A round-robin priority).
	orderTab [MaxThreads][MaxThreads]uint8

	// Per-thread issue state, struct-of-arrays (see the type comment).
	active  uint8 // bit t: thread t has an in-flight instruction
	started uint8 // bit t: some part of it issued in an earlier cycle
	kind    [MaxThreads]issueKind
	// live[t] is the bitmask of clusters with unissued demand; it mirrors
	// remaining so the issue loops visit only clusters that still hold work.
	live [MaxThreads]uint8
	// storeBuf[t] is the bitmask of clusters whose store was split-issued
	// into the memory delay buffer and is still awaiting commit at the last
	// part (Section V-B / V-D).
	storeBuf  [MaxThreads]uint8
	remaining [MaxThreads][isa.MaxClusters]isa.BundleDemand

	packet Packet
	prio   Rotator
}

// NewEngine builds an issue engine. It returns an error for invalid
// geometry or a technique combination the paper rules out.
func NewEngine(geom isa.Geometry, tech Technique, threads int) (*Engine, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 || threads > MaxThreads {
		return nil, fmt.Errorf("core: thread count %d out of range [1,%d]", threads, MaxThreads)
	}
	e := &Engine{
		geom:          geom,
		tech:          tech,
		nt:            threads,
		clusters:      geom.Clusters,
		commDowngrade: tech.Split != SplitNone && tech.Comm == CommNoSplit,
		prio:          NewRotator(threads),
	}
	switch tech.Split {
	case SplitNone:
		e.loadKind = kindWhole
	case SplitCluster:
		if tech.Merge == MergeCluster {
			e.loadKind = kindClusterCM
		} else {
			e.loadKind = kindClusterOM
		}
	default:
		e.loadKind = kindOpSplit
	}
	e.packet.init(geom, tech.Merge == MergeCluster)
	for b := 0; b < threads; b++ {
		for i := 0; i < threads; i++ {
			e.orderTab[b][i] = uint8((b + i) % threads)
		}
	}
	return e, nil
}

// Geometry returns the machine geometry.
func (e *Engine) Geometry() isa.Geometry { return e.geom }

// PacketUsed returns the resources claimed at cluster c by the most recent
// Cycle call. Intended for tests and ablation instrumentation.
func (e *Engine) PacketUsed(c int) isa.BundleDemand { return e.packet.Used(c) }

// Technique returns the configured multithreading technique.
func (e *Engine) Technique() Technique { return e.tech }

// Threads returns the number of hardware contexts.
func (e *Engine) Threads() int { return e.nt }

// Active reports whether thread t has an in-flight instruction.
func (e *Engine) Active(t int) bool { return e.active&(1<<uint(t)) != 0 }

// ActiveMask returns the bitmask of threads with in-flight instructions.
func (e *Engine) ActiveMask() uint8 { return e.active }

// Started reports whether thread t's in-flight instruction has already
// issued some part (and therefore must not be abandoned on context switch).
func (e *Engine) Started(t int) bool {
	bit := uint8(1) << uint(t)
	return e.active&bit != 0 && e.started&bit != 0
}

// Remaining returns the unissued demand of thread t at cluster c.
func (e *Engine) Remaining(t, c int) isa.BundleDemand { return e.remaining[t][c] }

// Load hands thread t its next VLIW instruction. The caller must only call
// it when the thread has no in-flight instruction. Demands must already be
// cluster-renamed if renaming is in effect (the simulator owns renaming so
// that its per-cluster metadata stays aligned).
func (e *Engine) Load(t int, d isa.InstrDemand) {
	e.LoadFrom(t, &d)
}

// LoadFrom is Load without the by-value demand copy, for fetch loops that
// already hold the demand in stable storage. d is read, never retained.
func (e *Engine) LoadFrom(t int, d *isa.InstrDemand) {
	bit := uint8(1) << uint(t)
	if e.active&bit != 0 {
		panic("core: Load on thread with in-flight instruction")
	}
	e.active |= bit
	e.started &^= bit
	e.remaining[t] = d.B
	e.storeBuf[t] = 0
	// Lower the split decision once per instruction: under NS, an
	// instruction containing send/recv must issue whole (Section V-E).
	kind := e.loadKind
	if d.HasComm && e.commDowngrade {
		kind = kindWhole
	}
	e.kind[t] = kind
	live := uint8(0)
	for c := 0; c < e.clusters; c++ {
		if d.B[c].Ops != 0 {
			live |= 1 << uint(c)
		}
	}
	e.live[t] = live
}

// Flush abandons thread t's in-flight instruction (context switch between
// timeslices; the scheduler only switches at instruction boundaries, but
// Flush also covers squashes after taken branches in the fetch model).
func (e *Engine) Flush(t int) {
	bit := uint8(1) << uint(t)
	e.active &^= bit
	e.started &^= bit
	e.kind[t] = 0
	e.live[t] = 0
	e.storeBuf[t] = 0
	e.remaining[t] = [isa.MaxClusters]isa.BundleDemand{}
}

// Cycle assembles one execution packet. ready[t] gates which threads may
// issue this cycle (false models fetch stalls, cache-miss stalls and branch
// penalties). Threads are considered in round-robin rotated priority order;
// the highest-priority thread is always selected in its entirety (an empty
// packet never collides with it).
func (e *Engine) Cycle(ready *[MaxThreads]bool) CycleResult {
	var res CycleResult
	e.CycleInto(ready, &res)
	return res
}

// CycleInto is Cycle writing into caller-owned scratch so a simulation
// loop allocates nothing per cycle. Entries for threads [0,Threads) and
// clusters [0,Clusters) are overwritten; entries beyond them are left
// unspecified and must not be read.
func (e *Engine) CycleInto(ready *[MaxThreads]bool, res *CycleResult) {
	mask := uint8(0)
	for t := 0; t < e.nt; t++ {
		if ready[t] {
			mask |= 1 << uint(t)
		}
	}
	e.CycleMask(mask, res)
}

// CycleMask is the bitmask form of CycleInto and the engine's hot path:
// ready is the bitmask of threads that may issue this cycle. An all-stalled
// cycle (no active ready thread) reduces to the priority rotation plus the
// packet epoch bump, with no per-thread work at all — exactly the state
// SkipCycles folds when the simulator jumps over a run of such cycles.
func (e *Engine) CycleMask(ready uint8, res *CycleResult) {
	res.MemOps = [isa.MaxClusters]uint8{}
	res.Commits = [isa.MaxClusters]uint8{}
	res.Issued = 0
	res.Ops = 0
	res.Threads = 0
	e.packet.Reset()
	ord := &e.orderTab[e.prio.base]
	e.prio.advance(1)
	avail := e.active & ready
	if avail == 0 {
		return
	}
	for i := 0; i < e.nt; i++ {
		t := int(ord[i])
		bit := uint8(1) << uint(t)
		if avail&bit == 0 {
			continue
		}
		tr := &res.Thread[t]
		*tr = ThreadResult{}
		switch e.kind[t] {
		case kindWhole:
			e.issueWhole(t, tr)
		case kindClusterCM:
			e.issueClusterSplitCM(t, tr)
		case kindClusterOM:
			e.issueClusterSplitOM(t, tr)
		default:
			e.issueOpSplit(t, tr)
		}
		if tr.Ops == 0 {
			continue
		}
		res.Issued |= bit
		res.Ops += tr.Ops
		res.Threads++
		if tr.LastPart {
			// Commit delayed stores; make the context available for the
			// next instruction. Last-part stores take the memory port at
			// issue time.
			for m := e.storeBuf[t]; m != 0; m &= m - 1 {
				res.Commits[bits.TrailingZeros8(m)]++
			}
			for m := tr.StoresAt; m != 0; m &= m - 1 {
				res.MemOps[bits.TrailingZeros8(m)]++
			}
			e.active &^= bit
			e.started &^= bit
		} else {
			e.started |= bit
		}
		for m := tr.LoadsAt; m != 0; m &= m - 1 {
			res.MemOps[bits.TrailingZeros8(m)]++
		}
	}
}

// SkipCycles accounts n issue cycles during which no thread was ready: it
// is exactly equivalent to n Cycle calls with an all-false ready mask (the
// priority rotation advances; no other engine state can change), folded
// into one step. The simulator's stall fast-forward uses it to jump over
// dead cycles.
func (e *Engine) SkipCycles(n int64) {
	if n > 0 {
		e.prio.advance(n)
	}
}

// issueWhole issues thread t's instruction with whole-instruction
// semantics: all remaining bundles or nothing. (An unsplittable instruction
// always has remaining == full demand.)
func (e *Engine) issueWhole(t int, tr *ThreadResult) {
	rem := &e.remaining[t]
	live := e.live[t]
	for m := live; m != 0; m &= m - 1 {
		if !e.packet.fits(bits.TrailingZeros8(m), &rem[bits.TrailingZeros8(m)]) {
			return
		}
	}
	for m := live; m != 0; m &= m - 1 {
		c := bits.TrailingZeros8(m)
		d := &rem[c]
		e.packet.add(c, d)
		tr.Ops += int(d.Ops)
		tr.Clusters |= 1 << uint(c)
		if d.Load {
			tr.LoadsAt |= 1 << uint(c)
		}
		if d.Stor {
			tr.StoresAt |= 1 << uint(c)
		}
		rem[c] = isa.BundleDemand{}
	}
	e.live[t] = 0
	tr.LastPart = tr.Ops > 0
}

// issueClusterSplitCM issues whichever whole bundles of thread t's
// instruction land on clusters no other thread claimed this cycle (the
// paper's CCSI): operations within a bundle stay together, but bundles of
// one instruction may issue in different cycles.
func (e *Engine) issueClusterSplitCM(t int, tr *ThreadResult) {
	rem := &e.remaining[t]
	live := e.live[t]
	for m := live; m != 0; m &= m - 1 {
		c := bits.TrailingZeros8(m)
		d := &rem[c]
		if !e.packet.tryAddCM(c, d) {
			continue
		}
		tr.Ops += int(d.Ops)
		tr.Clusters |= 1 << uint(c)
		if d.Load {
			tr.LoadsAt |= 1 << uint(c)
		}
		if d.Stor {
			tr.StoresAt |= 1 << uint(c)
		}
		rem[c] = isa.BundleDemand{}
		live &^= 1 << uint(c)
	}
	e.live[t] = live
	e.finishSplit(t, tr)
}

// issueClusterSplitOM is cluster-level split with operation-granularity
// collision detection (COSI): a bundle joins a cluster whenever issue
// slots and functional units suffice.
func (e *Engine) issueClusterSplitOM(t int, tr *ThreadResult) {
	rem := &e.remaining[t]
	live := e.live[t]
	for m := live; m != 0; m &= m - 1 {
		c := bits.TrailingZeros8(m)
		d := &rem[c]
		if !e.packet.tryAddOM(c, d) {
			continue
		}
		tr.Ops += int(d.Ops)
		tr.Clusters |= 1 << uint(c)
		if d.Load {
			tr.LoadsAt |= 1 << uint(c)
		}
		if d.Stor {
			tr.StoresAt |= 1 << uint(c)
		}
		rem[c] = isa.BundleDemand{}
		live &^= 1 << uint(c)
	}
	e.live[t] = live
	e.finishSplit(t, tr)
}

// finishSplit derives the last-part/split flags shared by the split-issue
// routines and books split-issued stores into the delay buffer.
func (e *Engine) finishSplit(t int, tr *ThreadResult) {
	done := e.live[t] == 0
	tr.LastPart = done && tr.Ops > 0
	tr.Split = !done && tr.Ops > 0
	if tr.Split {
		e.storeBuf[t] |= tr.StoresAt
	}
}

// issueOpSplit issues as many individual operations of thread t's
// instruction as the packet has room for (prior work; requires
// superscalar-like hardware).
func (e *Engine) issueOpSplit(t int, tr *ThreadResult) {
	rem := &e.remaining[t]
	live := e.live[t]
	for m := live; m != 0; m &= m - 1 {
		c := bits.TrailingZeros8(m)
		d := &rem[c]
		take := e.packet.take(c, d)
		if take.IsEmpty() {
			continue
		}
		e.packet.add(c, &take)
		tr.Ops += int(take.Ops)
		tr.Clusters |= 1 << uint(c)
		if take.Load {
			tr.LoadsAt |= 1 << uint(c)
		}
		if take.Stor {
			tr.StoresAt |= 1 << uint(c)
		}
		r := subDemand(*d, take)
		rem[c] = r
		if r.IsEmpty() {
			live &^= 1 << uint(c)
		}
	}
	e.live[t] = live
	e.finishSplit(t, tr)
}

// subDemand returns d minus take (component-wise), clearing satisfied
// flags. take must be a sub-demand of d.
func subDemand(d, take isa.BundleDemand) isa.BundleDemand {
	out := isa.BundleDemand{
		Ops: d.Ops - take.Ops,
		ALU: d.ALU - take.ALU,
		Mul: d.Mul - take.Mul,
		Mem: d.Mem - take.Mem,
	}
	if out.Mem > 0 {
		out.Load = d.Load
		out.Stor = d.Stor
	}
	if d.Comm && out.ALU > 0 {
		out.Comm = true
	}
	return out
}

package core

import (
	"fmt"

	"vexsmt/internal/isa"
)

// MaxThreads bounds the hardware thread contexts supported by fixed-size
// arrays. The paper evaluates 1, 2 and 4 threads.
const MaxThreads = 8

// ThreadIssue tracks the in-flight VLIW instruction of one hardware thread
// context. Execution is always in-order between the VLIW instructions of a
// thread: the next instruction is loaded only after the current one has
// issued in its entirety (its "last part").
type ThreadIssue struct {
	active    bool
	started   bool // some part already issued in an earlier cycle
	demand    isa.InstrDemand
	remaining [isa.MaxClusters]isa.BundleDemand
	// storeBuffered marks clusters whose store was split-issued into the
	// memory delay buffer and is still awaiting commit at the last part
	// (Section V-B / V-D).
	storeBuffered [isa.MaxClusters]bool
}

// ThreadResult reports what one thread did during a cycle.
type ThreadResult struct {
	Ops      int   // operations issued this cycle
	Clusters uint8 // bitmask of clusters that received operations
	LastPart bool  // instruction completed (entirely issued) this cycle
	Split    bool  // instruction left partially issued after this cycle
	LoadsAt  uint8 // bitmask of clusters where a load issued this cycle
	StoresAt uint8 // bitmask of clusters where a store issued this cycle
}

// CycleResult reports one issue cycle of the whole machine.
type CycleResult struct {
	Thread [MaxThreads]ThreadResult
	// MemOps counts memory-port uses per cluster this cycle: loads execute
	// (and use the port) at issue time; stores use the port only when
	// issued in their instruction's last part. Stores issued in an earlier
	// split part write the delay buffer instead and take the port at
	// commit time (counted in Commits).
	MemOps [isa.MaxClusters]uint8
	// Commits counts delayed stores committed per cluster this cycle
	// because their instruction's last part issued (Section V-D).
	Commits [isa.MaxClusters]uint8
	// Ops is the total operation count of the execution packet.
	Ops int
	// Threads is the number of distinct threads in the packet.
	Threads int
}

// MemPortOverflow returns the number of extra cycles the pipeline must
// stall because delayed store commits plus new memory operations exceed the
// per-cluster memory ports (Figure 11: "the pipeline is stalled till all
// the memory operations have been performed"). Clusters drain in parallel,
// so the stall is the maximum per-cluster overflow.
func (r *CycleResult) MemPortOverflow(geom isa.Geometry) int {
	worst := 0
	for c := 0; c < geom.Clusters; c++ {
		total := int(r.MemOps[c]) + int(r.Commits[c])
		if over := total - geom.MemUnits; over > worst {
			worst = over
		}
	}
	return worst
}

// Engine is the merging hardware plus split-issue state machine. It is
// deliberately independent of fetch, caches and scheduling: the caller
// loads per-thread instruction demands and asks for one issue cycle at a
// time, passing which threads are ready (not stalled).
type Engine struct {
	geom   isa.Geometry
	tech   Technique
	nt     int
	state  [MaxThreads]ThreadIssue
	packet *Packet
	prio   Rotator
	order  [MaxThreads]int
}

// NewEngine builds an issue engine. It returns an error for invalid
// geometry or a technique combination the paper rules out.
func NewEngine(geom isa.Geometry, tech Technique, threads int) (*Engine, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 || threads > MaxThreads {
		return nil, fmt.Errorf("core: thread count %d out of range [1,%d]", threads, MaxThreads)
	}
	return &Engine{
		geom:   geom,
		tech:   tech,
		nt:     threads,
		packet: NewPacket(geom),
		prio:   NewRotator(threads),
	}, nil
}

// Geometry returns the machine geometry.
func (e *Engine) Geometry() isa.Geometry { return e.geom }

// PacketUsed returns the resources claimed at cluster c by the most recent
// Cycle call. Intended for tests and ablation instrumentation.
func (e *Engine) PacketUsed(c int) isa.BundleDemand { return e.packet.used[c] }

// Technique returns the configured multithreading technique.
func (e *Engine) Technique() Technique { return e.tech }

// Threads returns the number of hardware contexts.
func (e *Engine) Threads() int { return e.nt }

// Active reports whether thread t has an in-flight instruction.
func (e *Engine) Active(t int) bool { return e.state[t].active }

// Started reports whether thread t's in-flight instruction has already
// issued some part (and therefore must not be abandoned on context switch).
func (e *Engine) Started(t int) bool { return e.state[t].active && e.state[t].started }

// Remaining returns the unissued demand of thread t at cluster c.
func (e *Engine) Remaining(t, c int) isa.BundleDemand { return e.state[t].remaining[c] }

// Load hands thread t its next VLIW instruction. The caller must only call
// it when the thread has no in-flight instruction. Demands must already be
// cluster-renamed if renaming is in effect (the simulator owns renaming so
// that its per-cluster metadata stays aligned).
func (e *Engine) Load(t int, d isa.InstrDemand) {
	st := &e.state[t]
	if st.active {
		panic("core: Load on thread with in-flight instruction")
	}
	st.active = true
	st.started = false
	st.demand = d
	st.remaining = d.B
	for c := range st.storeBuffered {
		st.storeBuffered[c] = false
	}
}

// Flush abandons thread t's in-flight instruction (context switch between
// timeslices; the scheduler only switches at instruction boundaries, but
// Flush also covers squashes after taken branches in the fetch model).
func (e *Engine) Flush(t int) {
	e.state[t] = ThreadIssue{}
}

// splittable reports whether the in-flight instruction of st may be issued
// in parts: split-issue must be enabled, and under the NS communication
// policy instructions containing send/recv are never split.
func (e *Engine) splittable(st *ThreadIssue) bool {
	if e.tech.Split == SplitNone {
		return false
	}
	if st.demand.HasComm && e.tech.Comm == CommNoSplit {
		return false
	}
	return true
}

// Cycle assembles one execution packet. ready[t] gates which threads may
// issue this cycle (false models fetch stalls, cache-miss stalls and branch
// penalties). Threads are considered in round-robin rotated priority order;
// the highest-priority thread is always selected in its entirety (an empty
// packet never collides with it).
func (e *Engine) Cycle(ready *[MaxThreads]bool) CycleResult {
	var res CycleResult
	e.packet.Reset()
	e.prio.Order(&e.order)
	for i := 0; i < e.nt; i++ {
		t := e.order[i]
		st := &e.state[t]
		if !st.active || !ready[t] {
			continue
		}
		tr := e.tryIssue(st)
		if tr.Ops == 0 {
			continue
		}
		res.Thread[t] = tr
		res.Ops += tr.Ops
		res.Threads++
		if tr.LastPart {
			// Commit delayed stores; make the context available for the
			// next instruction.
			for c := 0; c < e.geom.Clusters; c++ {
				if st.storeBuffered[c] {
					res.Commits[c]++
				}
			}
			st.active = false
			st.started = false
		} else {
			st.started = true
		}
	}
	for t := 0; t < e.nt; t++ {
		tr := &res.Thread[t]
		if tr.Ops == 0 {
			continue
		}
		for c := 0; c < e.geom.Clusters; c++ {
			bit := uint8(1) << uint(c)
			if tr.LoadsAt&bit != 0 {
				res.MemOps[c]++
			}
			if tr.LastPart && tr.StoresAt&bit != 0 {
				res.MemOps[c]++
			}
		}
	}
	return res
}

// tryIssue attempts to add as much of st's remaining instruction to the
// packet as the technique allows, returning what happened.
func (e *Engine) tryIssue(st *ThreadIssue) ThreadResult {
	var tr ThreadResult
	if !e.splittable(st) {
		// Whole-instruction semantics: all remaining bundles or nothing.
		// (An unsplittable instruction always has remaining == full demand.)
		if !e.packet.FitsWhole(&st.remaining, e.tech.Merge) {
			return tr
		}
		for c := 0; c < e.geom.Clusters; c++ {
			d := st.remaining[c]
			if d.IsEmpty() {
				continue
			}
			e.packet.AddBundle(c, d)
			tr.Ops += int(d.Ops)
			tr.Clusters |= 1 << uint(c)
			if d.Load {
				tr.LoadsAt |= 1 << uint(c)
			}
			if d.Stor {
				tr.StoresAt |= 1 << uint(c)
			}
			st.remaining[c] = isa.BundleDemand{}
		}
		tr.LastPart = tr.Ops > 0
		return tr
	}

	switch e.tech.Split {
	case SplitCluster:
		done := true
		for c := 0; c < e.geom.Clusters; c++ {
			d := st.remaining[c]
			if d.IsEmpty() {
				continue
			}
			if !e.packet.FitsBundle(c, d, e.tech.Merge) {
				done = false
				continue
			}
			e.packet.AddBundle(c, d)
			tr.Ops += int(d.Ops)
			tr.Clusters |= 1 << uint(c)
			if d.Load {
				tr.LoadsAt |= 1 << uint(c)
			}
			if d.Stor {
				tr.StoresAt |= 1 << uint(c)
			}
			st.remaining[c] = isa.BundleDemand{}
		}
		tr.LastPart = done && tr.Ops > 0
		tr.Split = !done && tr.Ops > 0
		if tr.Split {
			e.markBufferedStores(st, tr.StoresAt)
		}
		return tr

	case SplitOperation:
		done := true
		for c := 0; c < e.geom.Clusters; c++ {
			d := st.remaining[c]
			if d.IsEmpty() {
				continue
			}
			take := e.packet.TakeOps(c, d)
			if take.IsEmpty() {
				done = false
				continue
			}
			e.packet.AddBundle(c, take)
			tr.Ops += int(take.Ops)
			tr.Clusters |= 1 << uint(c)
			if take.Load {
				tr.LoadsAt |= 1 << uint(c)
			}
			if take.Stor {
				tr.StoresAt |= 1 << uint(c)
			}
			st.remaining[c] = subDemand(d, take)
			if !st.remaining[c].IsEmpty() {
				done = false
			}
		}
		tr.LastPart = done && tr.Ops > 0
		tr.Split = !done && tr.Ops > 0
		if tr.Split {
			e.markBufferedStores(st, tr.StoresAt)
		}
		return tr
	}
	return tr
}

// markBufferedStores records that stores issued this cycle went to the
// memory delay buffer because the instruction is still split (not its last
// part); they will be committed — and will contend for memory ports — when
// the last part issues.
func (e *Engine) markBufferedStores(st *ThreadIssue, storesAt uint8) {
	for c := 0; c < e.geom.Clusters; c++ {
		if storesAt&(1<<uint(c)) != 0 {
			st.storeBuffered[c] = true
		}
	}
}

// subDemand returns d minus take (component-wise), clearing satisfied
// flags. take must be a sub-demand of d.
func subDemand(d, take isa.BundleDemand) isa.BundleDemand {
	out := isa.BundleDemand{
		Ops: d.Ops - take.Ops,
		ALU: d.ALU - take.ALU,
		Mul: d.Mul - take.Mul,
		Mem: d.Mem - take.Mem,
	}
	if out.Mem > 0 {
		out.Load = d.Load
		out.Stor = d.Stor
	}
	if d.Comm && out.ALU > 0 {
		out.Comm = true
	}
	return out
}

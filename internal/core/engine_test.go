package core

import (
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
)

func TestNewEngineRejectsBadConfigs(t *testing.T) {
	if _, err := NewEngine(isa.Geometry{}, SMT(), 2); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := NewEngine(isa.ST200x4, Technique{Merge: MergeCluster, Split: SplitOperation}, 2); err == nil {
		t.Error("ruled-out technique accepted")
	}
	if _, err := NewEngine(isa.ST200x4, SMT(), 0); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewEngine(isa.ST200x4, SMT(), MaxThreads+1); err == nil {
		t.Error("too many threads accepted")
	}
}

func TestLoadPanicsOnBusyThread(t *testing.T) {
	eng, _ := NewEngine(isa.ST200x4, SMT(), 1)
	eng.Load(0, instr(alu(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("second Load did not panic")
		}
	}()
	eng.Load(0, instr(alu(1)))
}

func TestFlushClearsState(t *testing.T) {
	eng, _ := NewEngine(isa.ST200x4, CCSI(CommNoSplit), 2)
	eng.Load(0, instr(alu(1), alu(1)))
	if !eng.Active(0) {
		t.Fatal("thread not active after Load")
	}
	eng.Flush(0)
	if eng.Active(0) || eng.Started(0) {
		t.Fatal("thread active after Flush")
	}
}

func TestSingleThreadAllTechniquesIdentical(t *testing.T) {
	// With one thread there is nothing to merge with, so all techniques
	// must produce identical cycle counts on the same instruction stream.
	r := rng.New(101)
	stream := randomStream(r, isa.ST200x4, 300, 0)
	var counts []int
	for _, tech := range AllTechniques() {
		res := schedule(t, isa.ST200x4, tech, [][]isa.InstrDemand{stream}, 10_000)
		counts = append(counts, len(res))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("technique %s: %d cycles, %s had %d",
				AllTechniques()[i].Name(), counts[i], AllTechniques()[0].Name(), counts[0])
		}
	}
	// One instruction per cycle: a single thread never conflicts with itself.
	if counts[0] != 300 {
		t.Fatalf("single thread took %d cycles for 300 instructions", counts[0])
	}
}

// randomStream produces n compiler-legal instruction demands. commProb adds
// send/recv pairs.
func randomStream(r *rng.Rand, g isa.Geometry, n int, commProb float64) []isa.InstrDemand {
	out := make([]isa.InstrDemand, n)
	for i := range out {
		var d isa.InstrDemand
		clusters := 1 + r.Intn(g.Clusters)
		for k := 0; k < clusters; k++ {
			c := r.Intn(g.Clusters)
			ops := 1 + r.Intn(g.IssueWidth)
			var b isa.BundleDemand
			for o := 0; o < ops; o++ {
				switch {
				case int(b.Mem) < g.MemUnits && r.Bool(0.2):
					b.Mem++
					if r.Bool(0.7) {
						b.Load = true
					} else {
						b.Stor = true
					}
				case int(b.Mul) < g.Muls && r.Bool(0.2):
					b.Mul++
				default:
					b.ALU++
				}
				b.Ops++
			}
			d.B[c] = b
		}
		if r.Bool(commProb) && g.Clusters > 1 {
			// Attach a send/recv pair on two clusters with slack.
			src, dst := 0, 1
			if int(d.B[src].Ops) < g.IssueWidth && int(d.B[src].ALU) < g.ALUs {
				d.B[src].Ops++
				d.B[src].ALU++
				d.B[src].Comm = true
			} else {
				d.B[src].Comm = d.B[src].Ops > 0
			}
			if int(d.B[dst].Ops) < g.IssueWidth && int(d.B[dst].ALU) < g.ALUs {
				d.B[dst].Ops++
				d.B[dst].ALU++
				d.B[dst].Comm = true
			} else {
				d.B[dst].Comm = d.B[dst].Ops > 0
			}
			d.HasComm = d.B[src].Comm || d.B[dst].Comm
		}
		out[i] = d
	}
	return out
}

func countOps(streams [][]isa.InstrDemand) int {
	total := 0
	for _, s := range streams {
		for i := range s {
			total += s[i].NumOps()
		}
	}
	return total
}

func TestOpConservationAllTechniques(t *testing.T) {
	// Every operation of every instruction is issued exactly once,
	// regardless of technique.
	r := rng.New(77)
	streams := [][]isa.InstrDemand{
		randomStream(r, isa.ST200x4, 200, 0.1),
		randomStream(r, isa.ST200x4, 200, 0.1),
		randomStream(r, isa.ST200x4, 200, 0.1),
		randomStream(r, isa.ST200x4, 200, 0.1),
	}
	want := countOps(streams)
	for _, tech := range AllTechniques() {
		res := schedule(t, isa.ST200x4, tech, streams, 100_000)
		got := 0
		for _, cr := range res {
			got += cr.Ops
		}
		if got != want {
			t.Errorf("%s: issued %d ops, want %d", tech.Name(), got, want)
		}
	}
}

func TestInstructionCompletionCounts(t *testing.T) {
	// Every instruction produces exactly one LastPart event per thread.
	r := rng.New(88)
	streams := [][]isa.InstrDemand{
		randomStream(r, isa.ST200x4, 150, 0.05),
		randomStream(r, isa.ST200x4, 150, 0.05),
	}
	for _, tech := range AllTechniques() {
		res := schedule(t, isa.ST200x4, tech, streams, 100_000)
		var completions [2]int
		for _, cr := range res {
			for th := 0; th < 2; th++ {
				if cr.Thread[th].LastPart {
					completions[th]++
				}
			}
		}
		for th := 0; th < 2; th++ {
			if completions[th] != len(streams[th]) {
				t.Errorf("%s thread %d: %d completions, want %d",
					tech.Name(), th, completions[th], len(streams[th]))
			}
		}
	}
}

func TestHighestPriorityThreadNeverSplits(t *testing.T) {
	// "Thread T0 is always selected in its entirety because it is the
	// highest priority thread" — whoever holds top priority in a cycle and
	// has a fresh (unstarted) instruction must issue it completely.
	r := rng.New(99)
	streams := [][]isa.InstrDemand{
		randomStream(r, isa.ST200x4, 100, 0),
		randomStream(r, isa.ST200x4, 100, 0),
		randomStream(r, isa.ST200x4, 100, 0),
	}
	for _, tech := range AllTechniques() {
		eng, err := NewEngine(isa.ST200x4, tech, 3)
		if err != nil {
			t.Fatal(err)
		}
		next := make([]int, 3)
		var ready [MaxThreads]bool
		for th := range ready[:3] {
			ready[th] = true
		}
		for cycle := 0; cycle < 10000; cycle++ {
			done := true
			for th := 0; th < 3; th++ {
				if !eng.Active(th) && next[th] < len(streams[th]) {
					eng.Load(th, streams[th][next[th]])
					next[th]++
				}
				if eng.Active(th) {
					done = false
				}
			}
			if done {
				break
			}
			top := eng.prio.Peek()
			freshTop := eng.Active(top) && !eng.Started(top)
			res := eng.Cycle(&ready)
			if freshTop && !res.Thread[top].LastPart {
				t.Fatalf("%s cycle %d: top-priority thread %d with fresh instruction did not complete: %+v",
					tech.Name(), cycle, top, res.Thread[top])
			}
		}
	}
}

func TestNoSplitNeverPartial(t *testing.T) {
	// SMT and CSMT must never report a split instruction.
	r := rng.New(111)
	streams := [][]isa.InstrDemand{
		randomStream(r, isa.ST200x4, 200, 0.1),
		randomStream(r, isa.ST200x4, 200, 0.1),
		randomStream(r, isa.ST200x4, 200, 0.1),
	}
	for _, tech := range []Technique{SMT(), CSMT()} {
		res := schedule(t, isa.ST200x4, tech, streams, 100_000)
		for i, cr := range res {
			for th := 0; th < 3; th++ {
				if cr.Thread[th].Split {
					t.Fatalf("%s cycle %d: thread %d split", tech.Name(), i, th)
				}
				if cr.Thread[th].Ops > 0 && !cr.Thread[th].LastPart {
					t.Fatalf("%s cycle %d: thread %d partial issue", tech.Name(), i, th)
				}
			}
		}
	}
}

func TestNSCommInstructionsNeverSplit(t *testing.T) {
	// Under the NS policy an instruction containing send/recv must always
	// issue in its entirety (single cycle), for every split technique.
	r := rng.New(123)
	streams := [][]isa.InstrDemand{
		randomStream(r, isa.ST200x4, 300, 0.5),
		randomStream(r, isa.ST200x4, 300, 0.5),
		randomStream(r, isa.ST200x4, 300, 0.5),
		randomStream(r, isa.ST200x4, 300, 0.5),
	}
	for _, tech := range []Technique{CCSI(CommNoSplit), COSI(CommNoSplit), OOSI(CommNoSplit)} {
		eng, err := NewEngine(isa.ST200x4, tech, 4)
		if err != nil {
			t.Fatal(err)
		}
		next := make([]int, 4)
		current := make([]isa.InstrDemand, 4)
		var ready [MaxThreads]bool
		for th := 0; th < 4; th++ {
			ready[th] = true
		}
		for cycle := 0; cycle < 100_000; cycle++ {
			done := true
			for th := 0; th < 4; th++ {
				if !eng.Active(th) && next[th] < len(streams[th]) {
					current[th] = streams[th][next[th]]
					eng.Load(th, current[th])
					next[th]++
				}
				if eng.Active(th) {
					done = false
				}
			}
			if done {
				break
			}
			res := eng.Cycle(&ready)
			for th := 0; th < 4; th++ {
				tr := res.Thread[th]
				if current[th].HasComm && tr.Ops > 0 && !tr.LastPart {
					t.Fatalf("%s cycle %d: comm instruction of thread %d split under NS",
						tech.Name(), cycle, th)
				}
			}
		}
	}
}

func TestASCommInstructionsMaySplit(t *testing.T) {
	// Under AS, a comm instruction can split: construct a guaranteed case.
	comm := instr(
		isa.BundleDemand{Ops: 1, ALU: 1, Comm: true},
		isa.BundleDemand{Ops: 1, ALU: 1, Comm: true},
	)
	comm.HasComm = true
	queues := [][]isa.InstrDemand{
		{instr(alu(2)), instr(alu(2))}, // thread 0 hogs cluster 0
		{comm},
	}
	res := schedule(t, fig5Geom(), CCSI(CommAlwaysSplit), queues, 20)
	sawSplit := false
	for _, cr := range res {
		if cr.Thread[1].Split {
			sawSplit = true
		}
	}
	if !sawSplit {
		t.Fatal("comm instruction never split under AS in a forced-conflict scenario")
	}
	// The same scenario under NS must not split.
	resNS := schedule(t, fig5Geom(), CCSI(CommNoSplit), queues, 20)
	for i, cr := range resNS {
		if cr.Thread[1].Split {
			t.Fatalf("cycle %d: comm instruction split under NS", i)
		}
	}
}

func TestSplitTechniquesNeverSlowerOnAverage(t *testing.T) {
	// Statistical sanity over many random 4-thread workloads: adding
	// split-issue should reduce total cycles versus the same merge policy
	// without split, and operation split should beat cluster split. These
	// are the paper's headline qualitative claims.
	r := rng.New(2024)
	var csmt, ccsi, smt, cosi, oosi int
	for trial := 0; trial < 30; trial++ {
		streams := [][]isa.InstrDemand{
			randomStream(r, isa.ST200x4, 60, 0.05),
			randomStream(r, isa.ST200x4, 60, 0.05),
			randomStream(r, isa.ST200x4, 60, 0.05),
			randomStream(r, isa.ST200x4, 60, 0.05),
		}
		csmt += len(schedule(t, isa.ST200x4, CSMT(), streams, 100_000))
		ccsi += len(schedule(t, isa.ST200x4, CCSI(CommAlwaysSplit), streams, 100_000))
		smt += len(schedule(t, isa.ST200x4, SMT(), streams, 100_000))
		cosi += len(schedule(t, isa.ST200x4, COSI(CommAlwaysSplit), streams, 100_000))
		oosi += len(schedule(t, isa.ST200x4, OOSI(CommAlwaysSplit), streams, 100_000))
	}
	if !(ccsi < csmt) {
		t.Errorf("CCSI (%d cycles) not faster than CSMT (%d)", ccsi, csmt)
	}
	if !(cosi < smt) {
		t.Errorf("COSI (%d cycles) not faster than SMT (%d)", cosi, smt)
	}
	if !(oosi <= cosi) {
		t.Errorf("OOSI (%d cycles) slower than COSI (%d)", oosi, cosi)
	}
	if !(smt < csmt) {
		t.Errorf("SMT (%d cycles) not faster than CSMT (%d)", smt, csmt)
	}
}

func TestNotReadyThreadDoesNotIssue(t *testing.T) {
	eng, _ := NewEngine(isa.ST200x4, SMT(), 2)
	eng.Load(0, instr(alu(2)))
	eng.Load(1, instr(alu(2)))
	var ready [MaxThreads]bool
	ready[0] = true // thread 1 stalled
	res := eng.Cycle(&ready)
	if res.Thread[1].Ops != 0 {
		t.Fatal("stalled thread issued")
	}
	if res.Thread[0].Ops != 2 || !res.Thread[0].LastPart {
		t.Fatalf("ready thread result: %+v", res.Thread[0])
	}
	if eng.Active(1) != true {
		t.Fatal("stalled thread lost its instruction")
	}
}

func TestOOSIInOrderBetweenInstructions(t *testing.T) {
	// Figure 2's rule: operations from Ins1 are not issued until all
	// operations of Ins0 have been issued. The engine enforces this by
	// construction (one in-flight instruction per thread); verify the
	// observable schedule on a narrow machine where Ins0 dribbles out.
	g := isa.Geometry{Clusters: 1, IssueWidth: 3, ALUs: 3, Muls: 1, MemUnits: 1}
	queues := [][]isa.InstrDemand{
		{instr(alu(3)), instr(alu(3))}, // thread 0: hog
		{instr(alu(3)), instr(alu(2))}, // thread 1: must dribble
	}
	res := schedule(t, g, OOSI(CommAlwaysSplit), queues, 50)
	completions := 0
	for i, cr := range res {
		if cr.Thread[1].Ops > 0 && completions == 0 {
			// Before thread 1's first completion, everything it issues
			// belongs to Ins0; afterwards to Ins1. A violation would
			// manifest as more total ops than Ins0 holds before LastPart.
			_ = i
		}
		if cr.Thread[1].LastPart {
			completions++
		}
	}
	if completions != 2 {
		t.Fatalf("thread 1 completed %d instructions, want 2", completions)
	}
	total := 0
	for _, cr := range res {
		total += cr.Thread[1].Ops
	}
	if total != 5 {
		t.Fatalf("thread 1 issued %d ops, want 5", total)
	}
}

func TestStartedFlag(t *testing.T) {
	g := fig5Geom()
	eng, _ := NewEngine(g, CCSI(CommNoSplit), 2)
	eng.Load(0, instr(alu(3), alu(0)))
	eng.Load(1, instr(alu(1), alu(1)))
	var ready [MaxThreads]bool
	ready[0], ready[1] = true, true
	eng.Cycle(&ready) // T0 takes cluster 0 fully; T1 splits: only cluster 1 issues
	if !eng.Started(1) {
		t.Fatal("thread 1 should be marked started after partial issue")
	}
	if eng.Started(0) {
		t.Fatal("thread 0 completed; must not be started")
	}
}

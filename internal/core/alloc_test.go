package core

import (
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
)

// TestCycleZeroAllocs pins the zero-allocation contract of the issue hot
// path: once an engine exists, loading instructions and running cycles
// must never touch the heap, for every technique.
func TestCycleZeroAllocs(t *testing.T) {
	r := rng.New(0xa110c)
	for _, tech := range AllTechniques() {
		eng, err := NewEngine(isa.ST200x4, tech, 4)
		if err != nil {
			t.Fatal(err)
		}
		streams := make([][]isa.InstrDemand, 4)
		for th := range streams {
			streams[th] = randomStream(r, isa.ST200x4, 64, 0.2)
		}
		var next [4]int
		var ready [MaxThreads]bool
		for th := 0; th < 4; th++ {
			ready[th] = true
		}
		var res CycleResult
		allocs := testing.AllocsPerRun(500, func() {
			for th := 0; th < 4; th++ {
				if !eng.Active(th) {
					d := &streams[th][next[th]%len(streams[th])]
					next[th]++
					eng.LoadFrom(th, d)
				}
			}
			eng.CycleInto(&ready, &res)
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per cycle, want 0", tech.Name(), allocs)
		}
	}
}

// TestCycleMaskZeroAllocs pins the same contract on the mask-based hot
// path the run loop calls directly (CycleInto is a wrapper over it), for
// every technique.
func TestCycleMaskZeroAllocs(t *testing.T) {
	r := rng.New(0xa110d)
	for _, tech := range AllTechniques() {
		eng, err := NewEngine(isa.ST200x4, tech, 4)
		if err != nil {
			t.Fatal(err)
		}
		streams := make([][]isa.InstrDemand, 4)
		for th := range streams {
			streams[th] = randomStream(r, isa.ST200x4, 64, 0.2)
		}
		var next [4]int
		var res CycleResult
		allocs := testing.AllocsPerRun(500, func() {
			for th := 0; th < 4; th++ {
				if !eng.Active(th) {
					d := &streams[th][next[th]%len(streams[th])]
					next[th]++
					eng.LoadFrom(th, d)
				}
			}
			eng.CycleMask(0b1111, &res)
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per cycle, want 0", tech.Name(), allocs)
		}
	}
}

// TestSkipCyclesZeroAllocs covers the fast-forward entry point.
func TestSkipCyclesZeroAllocs(t *testing.T) {
	eng, err := NewEngine(isa.ST200x4, CCSI(CommAlwaysSplit), 4)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(500, func() { eng.SkipCycles(12345) }); allocs != 0 {
		t.Errorf("SkipCycles allocated %.1f per call, want 0", allocs)
	}
}

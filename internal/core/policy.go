// Package core implements the paper's contribution: the instruction-merging
// and split-issue machinery for SMT clustered VLIW processors.
//
// Two axes define a multithreading technique (Figure 4 of the paper):
//
//   - merge granularity: operation-level (SMT) or cluster-level (CSMT);
//   - split granularity: none, cluster-level (the paper's proposal), or
//     operation-level (prior work, Rau '93 / Iyer et al. '04).
//
// The five meaningful combinations are SMT, CSMT, CCSI (cluster merge +
// cluster split), COSI (operation merge + cluster split) and OOSI
// (operation merge + operation split). Operation-level split with
// cluster-level merging is marked "—" in the paper's Figure 4 and is
// rejected by Technique.Validate.
//
// Split-capable techniques additionally choose an inter-cluster
// communication policy: NS ("No split communication") never splits an
// instruction containing send/recv, AS ("Always split") splits freely and
// relies on network buffering for correctness (Section V-E).
package core

import "fmt"

// MergePolicy selects the granularity at which the merging hardware checks
// resource collisions between threads.
type MergePolicy uint8

const (
	// MergeOperation merges at operation granularity: two bundles may share
	// a cluster as long as issue slots and functional units suffice (SMT).
	MergeOperation MergePolicy = iota
	// MergeCluster merges at cluster granularity: a cluster may carry
	// operations of at most one thread per cycle (CSMT).
	MergeCluster
)

func (m MergePolicy) String() string {
	if m == MergeCluster {
		return "cluster-merge"
	}
	return "operation-merge"
}

// SplitPolicy selects how a VLIW instruction may be divided across cycles.
type SplitPolicy uint8

const (
	// SplitNone issues every instruction in its entirety (classic VLIW SMT).
	SplitNone SplitPolicy = iota
	// SplitCluster allows bundles of one instruction to issue in different
	// cycles; operations within a bundle stay together (the paper's
	// proposal).
	SplitCluster
	// SplitOperation allows individual operations to issue in different
	// cycles (prior work; requires superscalar-like hardware).
	SplitOperation
)

func (s SplitPolicy) String() string {
	switch s {
	case SplitCluster:
		return "cluster-split"
	case SplitOperation:
		return "operation-split"
	}
	return "no-split"
}

// CommPolicy selects the handling of instructions containing inter-cluster
// communication operations under split-issue (Section VI-B).
type CommPolicy uint8

const (
	// CommNoSplit ("NS") never splits an instruction that contains a send
	// or recv, so compiler assumptions cannot be violated and no extra
	// hardware is needed.
	CommNoSplit CommPolicy = iota
	// CommAlwaysSplit ("AS") splits such instructions too; the network
	// buffers early sends and a pending-recv buffer handles recv-before-
	// send (Section V-E).
	CommAlwaysSplit
)

func (c CommPolicy) String() string {
	if c == CommAlwaysSplit {
		return "AS"
	}
	return "NS"
}

// Technique is one point in the paper's design space.
type Technique struct {
	Merge MergePolicy
	Split SplitPolicy
	Comm  CommPolicy // meaningful only when Split != SplitNone
}

// The named techniques evaluated in the paper.
func SMT() Technique  { return Technique{Merge: MergeOperation, Split: SplitNone} }
func CSMT() Technique { return Technique{Merge: MergeCluster, Split: SplitNone} }

// CCSI is cluster-level merging with cluster-level split-issue.
func CCSI(comm CommPolicy) Technique {
	return Technique{Merge: MergeCluster, Split: SplitCluster, Comm: comm}
}

// COSI is operation-level merging with cluster-level split-issue.
func COSI(comm CommPolicy) Technique {
	return Technique{Merge: MergeOperation, Split: SplitCluster, Comm: comm}
}

// OOSI is operation-level merging with operation-level split-issue
// (the previously proposed split-issue technique).
func OOSI(comm CommPolicy) Technique {
	return Technique{Merge: MergeOperation, Split: SplitOperation, Comm: comm}
}

// Validate rejects the combinations the paper marks as meaningless.
func (t Technique) Validate() error {
	if t.Split == SplitOperation && t.Merge == MergeCluster {
		return fmt.Errorf("core: operation-level split-issue makes sense only with operation-level merging (Figure 4)")
	}
	return nil
}

// Name returns the paper's name for the technique ("SMT", "CSMT",
// "CCSI NS", "COSI AS", ...).
func (t Technique) Name() string {
	switch {
	case t.Split == SplitNone && t.Merge == MergeOperation:
		return "SMT"
	case t.Split == SplitNone && t.Merge == MergeCluster:
		return "CSMT"
	case t.Split == SplitCluster && t.Merge == MergeCluster:
		return "CCSI " + t.Comm.String()
	case t.Split == SplitCluster && t.Merge == MergeOperation:
		return "COSI " + t.Comm.String()
	case t.Split == SplitOperation && t.Merge == MergeOperation:
		return "OOSI " + t.Comm.String()
	}
	return fmt.Sprintf("%s/%s/%s", t.Merge, t.Split, t.Comm)
}

// ParseTechnique parses names as produced by Name (case-sensitive),
// defaulting to NS when the comm policy is omitted.
func ParseTechnique(name string) (Technique, error) {
	switch name {
	case "SMT":
		return SMT(), nil
	case "CSMT":
		return CSMT(), nil
	case "CCSI", "CCSI NS":
		return CCSI(CommNoSplit), nil
	case "CCSI AS":
		return CCSI(CommAlwaysSplit), nil
	case "COSI", "COSI NS":
		return COSI(CommNoSplit), nil
	case "COSI AS":
		return COSI(CommAlwaysSplit), nil
	case "OOSI", "OOSI NS":
		return OOSI(CommNoSplit), nil
	case "OOSI AS":
		return OOSI(CommAlwaysSplit), nil
	}
	return Technique{}, fmt.Errorf("core: unknown technique %q", name)
}

// AllTechniques returns the eight configurations of the paper's Figure 16,
// in the paper's presentation order.
func AllTechniques() []Technique {
	return []Technique{
		CSMT(), CCSI(CommNoSplit), CCSI(CommAlwaysSplit),
		SMT(), COSI(CommNoSplit), COSI(CommAlwaysSplit),
		OOSI(CommNoSplit), OOSI(CommAlwaysSplit),
	}
}

package core

import (
	"testing"
	"testing/quick"

	"vexsmt/internal/isa"
)

func TestPacketResetAndBusy(t *testing.T) {
	p := NewPacket(isa.ST200x4)
	p.Reset()
	if p.ClusterBusy(0) || p.TotalOps() != 0 {
		t.Fatal("fresh packet not empty")
	}
	p.AddBundle(1, alu(2))
	if !p.ClusterBusy(1) || p.ClusterBusy(0) {
		t.Fatal("busy tracking wrong")
	}
	if p.TotalOps() != 2 || p.SlackOps(1) != 2 || p.SlackOps(0) != 4 {
		t.Fatal("op accounting wrong")
	}
	p.Reset()
	if p.ClusterBusy(1) || p.TotalOps() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestFitsBundleEmptyAlwaysFits(t *testing.T) {
	p := NewPacket(isa.ST200x4)
	p.Reset()
	p.AddBundle(0, alu(4)) // cluster full
	if !p.FitsBundle(0, isa.BundleDemand{}, MergeOperation) {
		t.Fatal("empty bundle rejected under operation merge")
	}
	if !p.FitsBundle(0, isa.BundleDemand{}, MergeCluster) {
		t.Fatal("empty bundle rejected under cluster merge")
	}
}

func TestFitsBundleClusterVsOperation(t *testing.T) {
	p := NewPacket(isa.ST200x4)
	p.Reset()
	p.AddBundle(2, alu(1))
	// One more ALU op fits at operation level but not at cluster level.
	if !p.FitsBundle(2, alu(1), MergeOperation) {
		t.Fatal("operation-level fit rejected")
	}
	if p.FitsBundle(2, alu(1), MergeCluster) {
		t.Fatal("cluster-level collision missed")
	}
}

func TestFitsBundlePerClassLimits(t *testing.T) {
	p := NewPacket(isa.ST200x4) // 4 slots, 4 ALU, 2 MUL, 1 MEM
	p.Reset()
	p.AddBundle(0, bd(0, 2, 0, false, false)) // both multipliers busy
	if p.FitsBundle(0, bd(0, 1, 0, false, false), MergeOperation) {
		t.Fatal("third multiply accepted")
	}
	if !p.FitsBundle(0, bd(1, 0, 1, true, false), MergeOperation) {
		t.Fatal("ALU+MEM rejected with slots free")
	}
	p.AddBundle(0, bd(1, 0, 1, true, false))
	if p.FitsBundle(0, bd(0, 0, 1, false, true), MergeOperation) {
		t.Fatal("second memory op accepted with 1 LSU")
	}
	// Slots exhausted at 4 even if classes have room.
	if p.FitsBundle(0, alu(1), MergeOperation) {
		t.Fatal("fifth op accepted on 4-issue cluster")
	}
}

func TestTakeOpsPrefersScarceUnits(t *testing.T) {
	p := NewPacket(isa.ST200x4)
	p.Reset()
	p.AddBundle(0, alu(3)) // 1 slot left
	rem := bd(1, 1, 1, true, false)
	take := p.TakeOps(0, rem)
	if take.Ops != 1 || take.Mem != 1 {
		t.Fatalf("TakeOps should grab the memory op first: %+v", take)
	}
	if !take.Load {
		t.Fatal("load flag lost")
	}
}

func TestTakeOpsEmptyWhenFull(t *testing.T) {
	p := NewPacket(isa.ST200x4)
	p.Reset()
	p.AddBundle(0, alu(4))
	if take := p.TakeOps(0, alu(2)); !take.IsEmpty() {
		t.Fatalf("took ops from a full cluster: %+v", take)
	}
	if take := p.TakeOps(1, isa.BundleDemand{}); !take.IsEmpty() {
		t.Fatal("took ops from empty demand")
	}
}

// Property: TakeOps never exceeds the remaining demand nor the cluster's
// free resources, and its class counts always sum to Ops.
func TestTakeOpsProperty(t *testing.T) {
	g := isa.ST200x4
	f := func(preALU, preMul, preMem, remALU, remMul, remMem uint8) bool {
		p := NewPacket(g)
		p.Reset()
		pre := isa.BundleDemand{
			ALU: preALU % 5, Mul: preMul % 3, Mem: preMem % 2,
		}
		pre.Ops = pre.ALU + pre.Mul + pre.Mem
		if !pre.FitsAlone(g) {
			return true // skip illegal premise
		}
		p.AddBundle(0, pre)
		rem := isa.BundleDemand{
			ALU: remALU % 6, Mul: remMul % 4, Mem: remMem % 3,
		}
		rem.Ops = rem.ALU + rem.Mul + rem.Mem
		take := p.TakeOps(0, rem)
		if take.Ops != take.ALU+take.Mul+take.Mem {
			return false
		}
		if take.ALU > rem.ALU || take.Mul > rem.Mul || take.Mem > rem.Mem {
			return false
		}
		sum := pre.Add(take)
		return int(sum.Ops) <= g.IssueWidth && int(sum.ALU) <= g.ALUs &&
			int(sum.Mul) <= g.Muls && int(sum.Mem) <= g.MemUnits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: after AddBundle of any demand accepted by FitsBundle under
// operation merge, the packet never exceeds cluster resources.
func TestAddBundleNeverOversubscribes(t *testing.T) {
	g := isa.ST200x4
	f := func(steps []uint16) bool {
		p := NewPacket(g)
		p.Reset()
		for _, s := range steps {
			d := isa.BundleDemand{
				ALU: uint8(s) % 5, Mul: uint8(s>>4) % 3, Mem: uint8(s>>8) % 2,
			}
			d.Ops = d.ALU + d.Mul + d.Mem
			c := int(s>>12) % g.Clusters
			if p.FitsBundle(c, d, MergeOperation) {
				p.AddBundle(c, d)
			}
			u := p.Used(c)
			if int(u.Ops) > g.IssueWidth || int(u.ALU) > g.ALUs ||
				int(u.Mul) > g.Muls || int(u.Mem) > g.MemUnits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// FitsWhole is the conjunction of per-cluster fits (the AND gates of
// Figure 7a).
func TestFitsWholeIsConjunction(t *testing.T) {
	g := isa.ST200x4
	p := NewPacket(g)
	p.Reset()
	p.AddBundle(0, alu(4))
	var rem [isa.MaxClusters]isa.BundleDemand
	rem[1] = alu(2)
	if !p.FitsWhole(&rem, MergeOperation) {
		t.Fatal("non-conflicting whole rejected")
	}
	rem[0] = alu(1)
	if p.FitsWhole(&rem, MergeOperation) {
		t.Fatal("conflicting whole accepted")
	}
}

// Cluster-merge acceptance implies operation-merge acceptance (the paper:
// "if a pair of instructions can be merged by CSMT, it can always be merged
// by SMT but not vice-versa").
func TestClusterMergeImpliesOperationMerge(t *testing.T) {
	g := isa.ST200x4
	f := func(aOps, bOps [4]uint8, aCl, bCl uint8) bool {
		p := NewPacket(g)
		p.Reset()
		var a, b [isa.MaxClusters]isa.BundleDemand
		for c := 0; c < 4; c++ {
			if aCl&(1<<uint(c)) != 0 {
				a[c] = alu(int(aOps[c]%4) + 1)
			}
			if bCl&(1<<uint(c)) != 0 {
				b[c] = alu(int(bOps[c]%4) + 1)
			}
		}
		for c := 0; c < 4; c++ {
			if !p.FitsBundle(c, a[c], MergeOperation) {
				return true // a alone illegal; skip
			}
			p.AddBundle(c, a[c])
		}
		if p.FitsWhole(&b, MergeCluster) && !p.FitsWhole(&b, MergeOperation) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

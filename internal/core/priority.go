package core

// Rotator implements the paper's merge priority policy: "a different
// priority is assigned to each selected thread in a round robin way every
// cycle" (Section VI-A). On cycle k the priority order is
// k mod n, k+1 mod n, ..., so every thread is periodically the
// highest-priority thread, which is always merged in its entirety.
type Rotator struct {
	n    int
	base int
}

// NewRotator returns a rotator over n threads starting at thread 0.
func NewRotator(n int) Rotator { return Rotator{n: n} }

// Order fills buf[0:n] with this cycle's priority order (highest first) and
// advances the rotation.
func (r *Rotator) Order(buf *[MaxThreads]int) {
	for i := 0; i < r.n; i++ {
		buf[i] = (r.base + i) % r.n
	}
	r.advance(1)
}

// advance rotates the priority base by k cycles in one step; k cycles of
// Order calls and one advance(k) leave the rotator in the same state. The
// engine's SkipCycles uses it to fold fast-forwarded stall cycles. The
// k==1 fast path avoids the per-cycle division.
func (r *Rotator) advance(k int64) {
	if k == 1 {
		r.base++
		if r.base == r.n {
			r.base = 0
		}
		return
	}
	r.base = int((int64(r.base) + k) % int64(r.n))
}

// Peek returns the thread that will have highest priority next cycle.
func (r *Rotator) Peek() int { return r.base }

// Reset restarts the rotation at thread 0.
func (r *Rotator) Reset() { r.base = 0 }

// RenameRotation returns the static cluster-renaming rotation for hardware
// thread context t: thread t is rotated by t modulo the cluster count
// (Section IV: "Thread 0 is rotated by 0, Thread 1 by 1, Thread 2 by 2,
// and Thread 3 by 3"). The renaming value is fixed at design time.
func RenameRotation(t, clusters, threads int) int {
	if threads <= 0 || clusters <= 0 {
		return 0
	}
	return t % clusters
}

package core

import "vexsmt/internal/isa"

// Packet is the execution packet being assembled for one cycle: the
// resources already claimed at every cluster. The collision-detection logic
// (CL in Figure 7) checks a candidate bundle against the packet; the merge
// logic (ML) then adds it.
type Packet struct {
	geom isa.Geometry
	used [isa.MaxClusters]isa.BundleDemand
	busy [isa.MaxClusters]bool // any operations present (cluster-level collision)
}

// NewPacket returns an empty packet for the given machine geometry.
func NewPacket(geom isa.Geometry) *Packet {
	return &Packet{geom: geom}
}

// Reset empties the packet for a new cycle.
func (p *Packet) Reset() {
	for c := 0; c < p.geom.Clusters; c++ {
		p.used[c] = isa.BundleDemand{}
		p.busy[c] = false
	}
}

// ClusterBusy reports whether any operations occupy cluster c.
func (p *Packet) ClusterBusy(c int) bool { return p.busy[c] }

// Used returns the resources claimed at cluster c so far this cycle.
func (p *Packet) Used(c int) isa.BundleDemand { return p.used[c] }

// FitsBundle is the collision-detection logic for one cluster: it reports
// whether demand d can join cluster c under the given merge policy.
func (p *Packet) FitsBundle(c int, d isa.BundleDemand, merge MergePolicy) bool {
	if d.IsEmpty() {
		return true
	}
	if merge == MergeCluster {
		return !p.busy[c]
	}
	u := p.used[c]
	return int(u.Ops)+int(d.Ops) <= p.geom.IssueWidth &&
		int(u.ALU)+int(d.ALU) <= p.geom.ALUs &&
		int(u.Mul)+int(d.Mul) <= p.geom.Muls &&
		int(u.Mem)+int(d.Mem) <= p.geom.MemUnits
}

// FitsWhole checks every cluster of an instruction's remaining demand: the
// AND across clusters in Figure 7(a). Only when no cluster collides may a
// whole instruction merge.
func (p *Packet) FitsWhole(rem *[isa.MaxClusters]isa.BundleDemand, merge MergePolicy) bool {
	for c := 0; c < p.geom.Clusters; c++ {
		if !p.FitsBundle(c, rem[c], merge) {
			return false
		}
	}
	return true
}

// AddBundle merges demand d into cluster c. The caller must have checked
// FitsBundle.
func (p *Packet) AddBundle(c int, d isa.BundleDemand) {
	if d.IsEmpty() {
		return
	}
	p.used[c] = p.used[c].Add(d)
	p.busy[c] = true
}

// SlackOps returns the free issue slots remaining at cluster c.
func (p *Packet) SlackOps(c int) int { return p.geom.IssueWidth - int(p.used[c].Ops) }

// TotalOps returns the number of operations in the packet.
func (p *Packet) TotalOps() int {
	n := 0
	for c := 0; c < p.geom.Clusters; c++ {
		n += int(p.used[c].Ops)
	}
	return n
}

// TakeOps carves the largest sub-demand of rem that fits cluster c under
// operation-level merging, preferring scarce units first (memory, then
// multiplier, then ALU). It returns the demand actually taken. This is the
// operation-level split-issue selection: individual operations of a bundle
// may issue in different cycles.
func (p *Packet) TakeOps(c int, rem isa.BundleDemand) isa.BundleDemand {
	if rem.IsEmpty() {
		return isa.BundleDemand{}
	}
	u := p.used[c]
	slots := p.geom.IssueWidth - int(u.Ops)
	if slots <= 0 {
		return isa.BundleDemand{}
	}
	var take isa.BundleDemand
	m := min3(int(rem.Mem), p.geom.MemUnits-int(u.Mem), slots)
	take.Mem = uint8(m)
	slots -= m
	mu := min3(int(rem.Mul), p.geom.Muls-int(u.Mul), slots)
	take.Mul = uint8(mu)
	slots -= mu
	a := min3(int(rem.ALU), p.geom.ALUs-int(u.ALU), slots)
	take.ALU = uint8(a)
	take.Ops = take.Mem + take.Mul + take.ALU
	if take.Mem > 0 {
		// The single LSU op of the bundle is either a load or a store.
		take.Load = rem.Load
		take.Stor = rem.Stor
	}
	take.Comm = rem.Comm && take.ALU > 0
	return take
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	if a < 0 {
		return 0
	}
	return a
}

package core

import "vexsmt/internal/isa"

// Packet is the execution packet being assembled for one cycle: the
// resources already claimed at every cluster. The collision-detection logic
// (CL in Figure 7) checks a candidate bundle against the packet; the merge
// logic (ML) then adds it.
//
// The per-cluster scratch is epoch-stamped: Reset is a single counter
// increment, and a cluster's claimed resources are live only when its stamp
// matches the current epoch. The per-geometry resource limits are lowered
// into flat fields at construction so the per-cycle fit checks never
// consult the Geometry struct.
type Packet struct {
	geom     isa.Geometry
	clusters int
	// Lowered per-cluster limits (NewPacket time).
	width, alus, muls, mems int
	// clusterMerge selects cluster-granularity collision detection for the
	// unexported fast path (newPacketFor); the public FitsBundle still takes
	// the policy as an argument.
	clusterMerge bool

	epoch uint32
	stamp [isa.MaxClusters]uint32
	used  [isa.MaxClusters]isa.BundleDemand
}

// NewPacket returns an empty packet for the given machine geometry.
func NewPacket(geom isa.Geometry) *Packet {
	p := &Packet{}
	p.init(geom, false)
	return p
}

// init lowers the geometry into flat limit fields; the zero epoch state
// (epoch 1, all stamps 0) reads as an empty packet.
func (p *Packet) init(geom isa.Geometry, clusterMerge bool) {
	p.geom = geom
	p.clusters = geom.Clusters
	p.width = geom.IssueWidth
	p.alus = geom.ALUs
	p.muls = geom.Muls
	p.mems = geom.MemUnits
	p.clusterMerge = clusterMerge
	p.epoch = 1
	p.stamp = [isa.MaxClusters]uint32{}
}

// Reset empties the packet for a new cycle: one increment, no clearing loop.
func (p *Packet) Reset() {
	p.epoch++
	if p.epoch == 0 {
		// Epoch wrapped (once per 2^32 cycles): stale stamps could alias the
		// new epoch, so clear them and restart.
		p.stamp = [isa.MaxClusters]uint32{}
		p.epoch = 1
	}
}

// live reports whether cluster c's scratch belongs to the current cycle.
// AddBundle only ever records non-empty demand, so a live cluster is a busy
// cluster.
func (p *Packet) live(c int) bool { return p.stamp[c] == p.epoch }

// ClusterBusy reports whether any operations occupy cluster c.
func (p *Packet) ClusterBusy(c int) bool { return p.live(c) }

// Used returns the resources claimed at cluster c so far this cycle.
func (p *Packet) Used(c int) isa.BundleDemand {
	if !p.live(c) {
		return isa.BundleDemand{}
	}
	return p.used[c]
}

// FitsBundle is the collision-detection logic for one cluster: it reports
// whether demand d can join cluster c under the given merge policy.
func (p *Packet) FitsBundle(c int, d isa.BundleDemand, merge MergePolicy) bool {
	if d.IsEmpty() {
		return true
	}
	if merge == MergeCluster {
		return !p.live(c)
	}
	return p.fitsOps(c, &d)
}

// fits is the fast-path collision check under the packet's own lowered
// merge policy. d must be non-empty.
func (p *Packet) fits(c int, d *isa.BundleDemand) bool {
	if p.clusterMerge {
		return !p.live(c)
	}
	return p.fitsOps(c, d)
}

// fitsOps checks d against the free operation-level resources of cluster c.
func (p *Packet) fitsOps(c int, d *isa.BundleDemand) bool {
	if !p.live(c) {
		return int(d.Ops) <= p.width &&
			int(d.ALU) <= p.alus &&
			int(d.Mul) <= p.muls &&
			int(d.Mem) <= p.mems
	}
	u := &p.used[c]
	return int(u.Ops)+int(d.Ops) <= p.width &&
		int(u.ALU)+int(d.ALU) <= p.alus &&
		int(u.Mul)+int(d.Mul) <= p.muls &&
		int(u.Mem)+int(d.Mem) <= p.mems
}

// FitsWhole checks every cluster of an instruction's remaining demand: the
// AND across clusters in Figure 7(a). Only when no cluster collides may a
// whole instruction merge.
func (p *Packet) FitsWhole(rem *[isa.MaxClusters]isa.BundleDemand, merge MergePolicy) bool {
	for c := 0; c < p.clusters; c++ {
		if !p.FitsBundle(c, rem[c], merge) {
			return false
		}
	}
	return true
}

// AddBundle merges demand d into cluster c. The caller must have checked
// FitsBundle.
func (p *Packet) AddBundle(c int, d isa.BundleDemand) {
	if d.IsEmpty() {
		return
	}
	p.add(c, &d)
}

// add is AddBundle without the empty check (fast-path callers only hold
// non-empty demands).
func (p *Packet) add(c int, d *isa.BundleDemand) {
	if !p.live(c) {
		p.used[c] = *d
		p.stamp[c] = p.epoch
		return
	}
	p.used[c] = p.used[c].Add(*d)
}

// tryAddCM is the fused collision-check-and-merge for cluster-granularity
// merging: a cluster carries at most one thread per cycle, so a non-empty
// bundle joins exactly when the cluster is still stale this epoch.
func (p *Packet) tryAddCM(c int, d *isa.BundleDemand) bool {
	if p.live(c) {
		return false
	}
	p.used[c] = *d
	p.stamp[c] = p.epoch
	return true
}

// tryAddOM is the fused collision-check-and-merge for operation-
// granularity merging: one pass over the cluster's claimed resources
// instead of a fits check followed by an add.
func (p *Packet) tryAddOM(c int, d *isa.BundleDemand) bool {
	if !p.live(c) {
		if int(d.Ops) <= p.width &&
			int(d.ALU) <= p.alus &&
			int(d.Mul) <= p.muls &&
			int(d.Mem) <= p.mems {
			p.used[c] = *d
			p.stamp[c] = p.epoch
			return true
		}
		return false
	}
	u := &p.used[c]
	if int(u.Ops)+int(d.Ops) > p.width ||
		int(u.ALU)+int(d.ALU) > p.alus ||
		int(u.Mul)+int(d.Mul) > p.muls ||
		int(u.Mem)+int(d.Mem) > p.mems {
		return false
	}
	u.Ops += d.Ops
	u.ALU += d.ALU
	u.Mul += d.Mul
	u.Mem += d.Mem
	u.Load = u.Load || d.Load
	u.Stor = u.Stor || d.Stor
	u.Comm = u.Comm || d.Comm
	return true
}

// SlackOps returns the free issue slots remaining at cluster c.
func (p *Packet) SlackOps(c int) int {
	if !p.live(c) {
		return p.width
	}
	return p.width - int(p.used[c].Ops)
}

// TotalOps returns the number of operations in the packet.
func (p *Packet) TotalOps() int {
	n := 0
	for c := 0; c < p.clusters; c++ {
		if p.live(c) {
			n += int(p.used[c].Ops)
		}
	}
	return n
}

// TakeOps carves the largest sub-demand of rem that fits cluster c under
// operation-level merging, preferring scarce units first (memory, then
// multiplier, then ALU). It returns the demand actually taken. This is the
// operation-level split-issue selection: individual operations of a bundle
// may issue in different cycles.
func (p *Packet) TakeOps(c int, rem isa.BundleDemand) isa.BundleDemand {
	if rem.IsEmpty() {
		return isa.BundleDemand{}
	}
	return p.take(c, &rem)
}

// take is TakeOps without the empty check.
func (p *Packet) take(c int, rem *isa.BundleDemand) isa.BundleDemand {
	var u *isa.BundleDemand
	if p.live(c) {
		u = &p.used[c]
	} else {
		u = &emptyDemand
	}
	slots := p.width - int(u.Ops)
	if slots <= 0 {
		return isa.BundleDemand{}
	}
	var take isa.BundleDemand
	m := min3(int(rem.Mem), p.mems-int(u.Mem), slots)
	take.Mem = uint8(m)
	slots -= m
	mu := min3(int(rem.Mul), p.muls-int(u.Mul), slots)
	take.Mul = uint8(mu)
	slots -= mu
	a := min3(int(rem.ALU), p.alus-int(u.ALU), slots)
	take.ALU = uint8(a)
	take.Ops = take.Mem + take.Mul + take.ALU
	if take.Mem > 0 {
		// The single LSU op of the bundle is either a load or a store.
		take.Load = rem.Load
		take.Stor = rem.Stor
	}
	take.Comm = rem.Comm && take.ALU > 0
	return take
}

var emptyDemand isa.BundleDemand

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	if a < 0 {
		return 0
	}
	return a
}

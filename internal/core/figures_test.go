package core

// Tests in this file reproduce the worked examples of the paper: Figure 1
// (SMT vs CSMT mergeability), Figures 5 and 6 (cycle-by-cycle split-issue
// schedules) and Figure 11 (memory-port contention from delayed stores).

import (
	"testing"

	"vexsmt/internal/isa"
)

// bd builds a bundle demand from per-class op counts.
func bd(alu, mul, mem int, load, stor bool) isa.BundleDemand {
	return isa.BundleDemand{
		Ops: uint8(alu + mul + mem), ALU: uint8(alu), Mul: uint8(mul),
		Mem: uint8(mem), Load: load, Stor: stor,
	}
}

func alu(n int) isa.BundleDemand { return bd(n, 0, 0, false, false) }

// instr builds an InstrDemand from up to MaxClusters bundle demands.
func instr(bundles ...isa.BundleDemand) isa.InstrDemand {
	var d isa.InstrDemand
	for c, b := range bundles {
		d.B[c] = b
		if b.Comm {
			d.HasComm = true
		}
	}
	return d
}

// schedule drives the engine with per-thread instruction queues until all
// drain (or maxCycles elapse) and returns the per-cycle results.
func schedule(t *testing.T, geom isa.Geometry, tech Technique, queues [][]isa.InstrDemand, maxCycles int) []CycleResult {
	t.Helper()
	eng, err := NewEngine(geom, tech, len(queues))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	next := make([]int, len(queues))
	var results []CycleResult
	var ready [MaxThreads]bool
	for cycle := 0; cycle < maxCycles; cycle++ {
		done := true
		for th := range queues {
			if !eng.Active(th) && next[th] < len(queues[th]) {
				eng.Load(th, queues[th][next[th]])
				next[th]++
			}
			ready[th] = true
			if eng.Active(th) {
				done = false
			}
		}
		if done {
			break
		}
		res := eng.Cycle(&ready)
		// Invariant: the packet never exceeds per-cluster resources.
		for c := 0; c < geom.Clusters; c++ {
			u := eng.PacketUsed(c)
			if int(u.Ops) > geom.IssueWidth || int(u.ALU) > geom.ALUs ||
				int(u.Mul) > geom.Muls || int(u.Mem) > geom.MemUnits {
				t.Fatalf("cycle %d: cluster %d over-subscribed: %+v", cycle, c, u)
			}
		}
		results = append(results, res)
	}
	return results
}

func totalCycles(results []CycleResult) int { return len(results) }

// ---------------------------------------------------------------------------
// Figure 1: instruction merging in SMT and CSMT on a 4-cluster 2-issue/cluster
// machine. Pair I merges under neither policy, Pair II only under SMT,
// Pair III under both.

func fig1Geom() isa.Geometry {
	return isa.Geometry{Clusters: 4, IssueWidth: 2, ALUs: 2, Muls: 1, MemUnits: 1}
}

// canMergePair reports whether thread 1's instruction can join a packet
// already holding thread 0's instruction.
func canMergePair(t *testing.T, geom isa.Geometry, merge MergePolicy, a, b isa.InstrDemand) bool {
	t.Helper()
	p := NewPacket(geom)
	p.Reset()
	for c := 0; c < geom.Clusters; c++ {
		if !p.FitsBundle(c, a.B[c], merge) {
			t.Fatalf("first instruction does not fit an empty packet at cluster %d", c)
		}
		p.AddBundle(c, a.B[c])
	}
	return p.FitsWhole(&b.B, merge)
}

func TestFigure1PairI(t *testing.T) {
	g := fig1Geom()
	// Thread 0 uses clusters 0, 1, 3 with full 2-op bundles (6 ops, two
	// empty issue slots as in the paper); Thread 1 collides at those three
	// clusters even at operation level.
	t0 := instr(bd(1, 0, 1, true, false), alu(2), alu(0), alu(2))
	t1 := instr(bd(0, 1, 0, false, false), alu(1), bd(1, 1, 0, false, false), alu(1))
	if canMergePair(t, g, MergeOperation, t0, t1) {
		t.Error("Pair I merged by SMT; paper says conflicts at clusters 0, 1, 3")
	}
	if canMergePair(t, g, MergeCluster, t0, t1) {
		t.Error("Pair I merged by CSMT")
	}
}

func TestFigure1PairII(t *testing.T) {
	g := fig1Geom()
	// Both threads use clusters 0, 2 and 3, one op each: no operation-level
	// conflict, but cluster-level conflicts everywhere they overlap.
	t0 := instr(alu(1), alu(0), alu(1), bd(0, 0, 1, false, true))
	t1 := instr(alu(1), alu(0), alu(1), alu(1))
	if !canMergePair(t, g, MergeOperation, t0, t1) {
		t.Error("Pair II not merged by SMT; paper says no operation-level conflicts")
	}
	if canMergePair(t, g, MergeCluster, t0, t1) {
		t.Error("Pair II merged by CSMT; paper says clusters 0, 2, 3 conflict")
	}
}

func TestFigure1PairIII(t *testing.T) {
	g := fig1Geom()
	// Thread 0 uses only clusters 1 and 2, thread 1 only clusters 0 and 3.
	t0 := instr(alu(0), bd(1, 0, 1, true, false), bd(0, 0, 1, false, true), alu(0))
	t1 := instr(alu(2), alu(0), alu(0), bd(1, 1, 0, false, false))
	if !canMergePair(t, g, MergeOperation, t0, t1) {
		t.Error("Pair III not merged by SMT")
	}
	if !canMergePair(t, g, MergeCluster, t0, t1) {
		t.Error("Pair III not merged by CSMT")
	}
}

// mergedPacketIdentical checks the paper's note: "if both CSMT and SMT can
// merge a pair of instructions, the final merged instruction is identical".
func TestFigure1MergedPacketIdentical(t *testing.T) {
	g := fig1Geom()
	t0 := instr(alu(0), bd(1, 0, 1, true, false), bd(0, 0, 1, false, true), alu(0))
	t1 := instr(alu(2), alu(0), alu(0), bd(1, 1, 0, false, false))
	var got [2][isa.MaxClusters]isa.BundleDemand
	for i, merge := range []MergePolicy{MergeOperation, MergeCluster} {
		p := NewPacket(g)
		p.Reset()
		for c := 0; c < g.Clusters; c++ {
			p.AddBundle(c, t0.B[c])
		}
		if !p.FitsWhole(&t1.B, merge) {
			t.Fatalf("merge policy %v cannot merge pair III", merge)
		}
		for c := 0; c < g.Clusters; c++ {
			p.AddBundle(c, t1.B[c])
			got[i][c] = p.Used(c)
		}
	}
	if got[0] != got[1] {
		t.Errorf("merged packets differ:\nSMT:  %+v\nCSMT: %+v", got[0], got[1])
	}
}

// ---------------------------------------------------------------------------
// Figure 5: operation-level (OOSI) vs cluster-level (COSI) split-issue under
// operation-level merging, 2 clusters x 3 issue slots.

func fig5Geom() isa.Geometry {
	return isa.Geometry{Clusters: 2, IssueWidth: 3, ALUs: 3, Muls: 2, MemUnits: 1}
}

func fig5Queues() [][]isa.InstrDemand {
	t0Ins0 := instr(alu(2), bd(0, 0, 1, true, false))                     // add,sub | ld
	t0Ins1 := instr(bd(1, 0, 1, false, true), alu(2))                     // st,shr | xor,add
	t1Ins0 := instr(bd(1, 1, 0, false, false), bd(1, 1, 0, false, false)) // mpy,shl | mpy,and
	t1Ins1 := instr(bd(1, 0, 1, true, false), alu(1))                     // sub,ld | or
	return [][]isa.InstrDemand{{t0Ins0, t0Ins1}, {t1Ins0, t1Ins1}}
}

func TestFigure5NoSplitTakesFourCycles(t *testing.T) {
	res := schedule(t, fig5Geom(), SMT(), fig5Queues(), 20)
	if totalCycles(res) != 4 {
		t.Fatalf("SMT took %d cycles, paper says 4 without split-issue", totalCycles(res))
	}
	// No cycle may contain two threads: the paper says merging is
	// impossible at every cycle.
	for i, r := range res {
		if r.Threads != 1 {
			t.Errorf("cycle %d: %d threads in packet, want 1", i, r.Threads)
		}
	}
}

func TestFigure5OOSISchedule(t *testing.T) {
	res := schedule(t, fig5Geom(), OOSI(CommNoSplit), fig5Queues(), 20)
	if totalCycles(res) != 3 {
		t.Fatalf("OOSI took %d cycles, paper says 3", totalCycles(res))
	}
	// Cycle 0: T0 Ins0 fully (3 ops, last part); T1 Ins0 partially: mpy at
	// cluster 0, both cluster-1 ops (3 ops, split).
	c0 := res[0]
	if !c0.Thread[0].LastPart || c0.Thread[0].Ops != 3 {
		t.Errorf("cycle 0 thread 0: %+v", c0.Thread[0])
	}
	if c0.Thread[1].Ops != 3 || c0.Thread[1].LastPart || !c0.Thread[1].Split {
		t.Errorf("cycle 0 thread 1: %+v", c0.Thread[1])
	}
	// Cycle 1: T1 finishes Ins0 (1 op: shl, last part); T0 issues Ins1
	// fully (4 ops) — the paper shows st and shr joining shl at cluster 0.
	c1 := res[1]
	if !c1.Thread[1].LastPart || c1.Thread[1].Ops != 1 {
		t.Errorf("cycle 1 thread 1: %+v", c1.Thread[1])
	}
	if !c1.Thread[0].LastPart || c1.Thread[0].Ops != 4 {
		t.Errorf("cycle 1 thread 0: %+v", c1.Thread[0])
	}
	// Cycle 2: only T1's Ins1 (3 ops) — "OOSI issues operations only from
	// Thread 1" at the third cycle.
	c2 := res[2]
	if c2.Threads != 1 || !c2.Thread[1].LastPart || c2.Thread[1].Ops != 3 {
		t.Errorf("cycle 2: %+v", c2)
	}
}

func TestFigure5COSISchedule(t *testing.T) {
	res := schedule(t, fig5Geom(), COSI(CommNoSplit), fig5Queues(), 20)
	// COSI needs one extra cycle to drain thread 1's cluster-0 bundle; the
	// paper counts 3 cycles for the merge window because that leftover
	// merges with later instructions in steady state.
	if totalCycles(res) != 4 {
		t.Fatalf("COSI took %d cycles, want 4 (3 + leftover bundle)", totalCycles(res))
	}
	// Cycle 0: T0 Ins0 fully; T1 can only place its cluster-1 bundle (the
	// cluster-0 bundle may not split mpy from shl).
	c0 := res[0]
	if !c0.Thread[0].LastPart || c0.Thread[0].Ops != 3 {
		t.Errorf("cycle 0 thread 0: %+v", c0.Thread[0])
	}
	if c0.Thread[1].Ops != 2 || c0.Thread[1].Clusters != 0b10 {
		t.Errorf("cycle 0 thread 1: %+v", c0.Thread[1])
	}
	// Cycle 1: T1 finishes Ins0 at cluster 0 (2 ops, last part); T0 places
	// only Ins1's cluster-1 bundle (cluster 0 has 1 free slot, bundle needs 2).
	c1 := res[1]
	if !c1.Thread[1].LastPart || c1.Thread[1].Ops != 2 || c1.Thread[1].Clusters != 0b01 {
		t.Errorf("cycle 1 thread 1: %+v", c1.Thread[1])
	}
	if c1.Thread[0].Ops != 2 || c1.Thread[0].Clusters != 0b10 || c1.Thread[0].LastPart {
		t.Errorf("cycle 1 thread 0: %+v", c1.Thread[0])
	}
	// Cycle 2: T0 finishes Ins1 at cluster 0; T1's Ins1 merges only its
	// cluster-1 bundle ("merged with instruction Ins1 of Thread 1").
	c2 := res[2]
	if !c2.Thread[0].LastPart || c2.Thread[0].Clusters != 0b01 {
		t.Errorf("cycle 2 thread 0: %+v", c2.Thread[0])
	}
	if c2.Thread[1].Ops != 1 || c2.Thread[1].Clusters != 0b10 || c2.Thread[1].LastPart {
		t.Errorf("cycle 2 thread 1: %+v", c2.Thread[1])
	}
	// Cycle 3: leftover cluster-0 bundle of T1 Ins1.
	c3 := res[3]
	if !c3.Thread[1].LastPart || c3.Thread[1].Ops != 2 {
		t.Errorf("cycle 3 thread 1: %+v", c3.Thread[1])
	}
}

// ---------------------------------------------------------------------------
// Figure 6: cluster-level split-issue with cluster-level merging (CCSI).

func fig6Queues() [][]isa.InstrDemand {
	t0Ins0 := instr(bd(1, 0, 1, true, false))         // add, ld | -
	t0Ins1 := instr(bd(1, 0, 1, false, true), alu(2)) // sub, st | shr, and
	t1Ins0 := instr(bd(1, 1, 0, false, false), bd(1, 1, 0, false, false))
	t1Ins1 := instr(alu(0), alu(2)) // - | shl, sub
	return [][]isa.InstrDemand{{t0Ins0, t0Ins1}, {t1Ins0, t1Ins1}}
}

func TestFigure6CSMTTakesFourCycles(t *testing.T) {
	res := schedule(t, fig5Geom(), CSMT(), fig6Queues(), 20)
	if totalCycles(res) != 4 {
		t.Fatalf("CSMT took %d cycles, paper says 4", totalCycles(res))
	}
	for i, r := range res {
		if r.Threads != 1 {
			t.Errorf("cycle %d: %d threads merged, paper says no merging possible", i, r.Threads)
		}
	}
}

func TestFigure6CCSISchedule(t *testing.T) {
	res := schedule(t, fig5Geom(), CCSI(CommNoSplit), fig6Queues(), 20)
	if totalCycles(res) != 3 {
		t.Fatalf("CCSI took %d cycles, paper says 3", totalCycles(res))
	}
	// Cycle 0: T0 Ins0 at cluster 0 (last part); T1 Ins0's cluster-1 bundle.
	c0 := res[0]
	if !c0.Thread[0].LastPart || c0.Thread[0].Clusters != 0b01 {
		t.Errorf("cycle 0 thread 0: %+v", c0.Thread[0])
	}
	if c0.Thread[1].Clusters != 0b10 || c0.Thread[1].LastPart {
		t.Errorf("cycle 0 thread 1: %+v", c0.Thread[1])
	}
	// Cycle 1: T1 finishes Ins0 at cluster 0; T0's Ins1 places its
	// cluster-1 bundle ("cluster 1 is no longer used by Thread 1").
	c1 := res[1]
	if !c1.Thread[1].LastPart || c1.Thread[1].Clusters != 0b01 {
		t.Errorf("cycle 1 thread 1: %+v", c1.Thread[1])
	}
	if c1.Thread[0].Clusters != 0b10 || c1.Thread[0].LastPart {
		t.Errorf("cycle 1 thread 0: %+v", c1.Thread[0])
	}
	// Cycle 2: T0 finishes at cluster 0; T1's Ins1 issues entirely.
	c2 := res[2]
	if !c2.Thread[0].LastPart || c2.Thread[0].Clusters != 0b01 {
		t.Errorf("cycle 2 thread 0: %+v", c2.Thread[0])
	}
	if !c2.Thread[1].LastPart || c2.Thread[1].Clusters != 0b10 {
		t.Errorf("cycle 2 thread 1: %+v", c2.Thread[1])
	}
}

// ---------------------------------------------------------------------------
// Figure 11: a split-issued store commits from the memory delay buffer when
// the last part issues; if another thread issues a memory operation at the
// same cluster that cycle, the single memory port forces a pipeline stall.

func TestFigure11MemoryPortContention(t *testing.T) {
	g := fig5Geom() // 2 clusters, 1 memory port each
	queues := [][]isa.InstrDemand{
		{ // Thread 0
			instr(alu(0), alu(3)),                   // Ins0: fill cluster 1
			instr(bd(0, 0, 1, false, true), alu(1)), // Ins1: st @c0, alu @c1
		},
		{ // Thread 1
			instr(alu(0), alu(1)),                   // Ins0: 1 op at cluster 1
			instr(bd(0, 0, 1, true, false), alu(0)), // Ins1: ld @c0
		},
	}
	res := schedule(t, g, CCSI(CommNoSplit), queues, 20)
	if len(res) != 3 {
		t.Fatalf("schedule took %d cycles, want 3", len(res))
	}
	// Cycle 1: T0's store split-issues at cluster 0 while cluster 1 is held
	// by T1.
	c1 := res[1]
	if c1.Thread[0].Clusters != 0b01 || c1.Thread[0].LastPart {
		t.Fatalf("cycle 1 thread 0: %+v (store should split-issue alone)", c1.Thread[0])
	}
	// Cycle 2: T0's last part issues at cluster 1, committing the buffered
	// store at cluster 0; T1's load also issues at cluster 0.
	c2 := res[2]
	if !c2.Thread[0].LastPart {
		t.Fatalf("cycle 2 thread 0: %+v", c2.Thread[0])
	}
	if c2.Commits[0] != 1 {
		t.Fatalf("cycle 2 commits at cluster 0 = %d, want 1", c2.Commits[0])
	}
	if c2.MemOps[0] != 1 {
		t.Fatalf("cycle 2 mem ops at cluster 0 = %d, want 1 (thread 1's load)", c2.MemOps[0])
	}
	if over := c2.MemPortOverflow(g); over != 1 {
		t.Fatalf("memory port overflow = %d, want 1 stall cycle", over)
	}
}

// A store issued in the instruction's last part writes memory directly and
// must not be double-counted as a delayed commit.
func TestLastPartStoreNotBuffered(t *testing.T) {
	g := fig5Geom()
	queues := [][]isa.InstrDemand{
		{instr(bd(0, 0, 1, false, true), alu(1))},
	}
	res := schedule(t, g, CCSI(CommNoSplit), queues, 5)
	if len(res) != 1 {
		t.Fatalf("took %d cycles, want 1", len(res))
	}
	if res[0].Commits[0] != 0 {
		t.Fatalf("commits = %d, want 0 for unsplit store", res[0].Commits[0])
	}
	if res[0].MemOps[0] != 1 {
		t.Fatalf("mem ops = %d, want 1", res[0].MemOps[0])
	}
	if res[0].MemPortOverflow(g) != 0 {
		t.Fatal("unexpected overflow")
	}
}

package core

import (
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
)

// This file carries a reference copy of the issue engine as it existed
// before the hot path was lowered into precompiled decision state (per-Load
// split modes, live-cluster masks, epoch-stamped packet scratch, the
// priority order table and SkipCycles). The reference consults the
// Technique policy struct on every cycle, exactly like the original code;
// the property tests drive both engines in lockstep over randomized
// streams, geometries and ready masks and require bit-identical
// CycleResults. Together with the cosim functional equivalence suite this
// machine-checks that the optimization changed no observable behavior.

type refThreadIssue struct {
	active        bool
	started       bool
	demand        isa.InstrDemand
	remaining     [isa.MaxClusters]isa.BundleDemand
	storeBuffered [isa.MaxClusters]bool
}

type refEngine struct {
	geom   isa.Geometry
	tech   Technique
	nt     int
	state  [MaxThreads]refThreadIssue
	packet *Packet
	prio   Rotator
	order  [MaxThreads]int
}

func newRefEngine(geom isa.Geometry, tech Technique, threads int) *refEngine {
	return &refEngine{
		geom:   geom,
		tech:   tech,
		nt:     threads,
		packet: NewPacket(geom),
		prio:   NewRotator(threads),
	}
}

func (e *refEngine) Active(t int) bool { return e.state[t].active }

func (e *refEngine) Load(t int, d isa.InstrDemand) {
	st := &e.state[t]
	if st.active {
		panic("refEngine: Load on busy thread")
	}
	st.active = true
	st.started = false
	st.demand = d
	st.remaining = d.B
	for c := range st.storeBuffered {
		st.storeBuffered[c] = false
	}
}

func (e *refEngine) splittable(st *refThreadIssue) bool {
	if e.tech.Split == SplitNone {
		return false
	}
	if st.demand.HasComm && e.tech.Comm == CommNoSplit {
		return false
	}
	return true
}

func (e *refEngine) Cycle(ready *[MaxThreads]bool) CycleResult {
	var res CycleResult
	e.packet.Reset()
	e.prio.Order(&e.order)
	for i := 0; i < e.nt; i++ {
		t := e.order[i]
		st := &e.state[t]
		if !st.active || !ready[t] {
			continue
		}
		tr := e.tryIssue(st)
		if tr.Ops == 0 {
			continue
		}
		res.Thread[t] = tr
		res.Issued |= 1 << uint(t)
		res.Ops += tr.Ops
		res.Threads++
		if tr.LastPart {
			for c := 0; c < e.geom.Clusters; c++ {
				if st.storeBuffered[c] {
					res.Commits[c]++
				}
			}
			st.active = false
			st.started = false
		} else {
			st.started = true
		}
	}
	for t := 0; t < e.nt; t++ {
		tr := &res.Thread[t]
		if tr.Ops == 0 {
			continue
		}
		for c := 0; c < e.geom.Clusters; c++ {
			bit := uint8(1) << uint(c)
			if tr.LoadsAt&bit != 0 {
				res.MemOps[c]++
			}
			if tr.LastPart && tr.StoresAt&bit != 0 {
				res.MemOps[c]++
			}
		}
	}
	return res
}

func (e *refEngine) tryIssue(st *refThreadIssue) ThreadResult {
	var tr ThreadResult
	if !e.splittable(st) {
		if !e.packet.FitsWhole(&st.remaining, e.tech.Merge) {
			return tr
		}
		for c := 0; c < e.geom.Clusters; c++ {
			d := st.remaining[c]
			if d.IsEmpty() {
				continue
			}
			e.packet.AddBundle(c, d)
			tr.Ops += int(d.Ops)
			tr.Clusters |= 1 << uint(c)
			if d.Load {
				tr.LoadsAt |= 1 << uint(c)
			}
			if d.Stor {
				tr.StoresAt |= 1 << uint(c)
			}
			st.remaining[c] = isa.BundleDemand{}
		}
		tr.LastPart = tr.Ops > 0
		return tr
	}

	switch e.tech.Split {
	case SplitCluster:
		done := true
		for c := 0; c < e.geom.Clusters; c++ {
			d := st.remaining[c]
			if d.IsEmpty() {
				continue
			}
			if !e.packet.FitsBundle(c, d, e.tech.Merge) {
				done = false
				continue
			}
			e.packet.AddBundle(c, d)
			tr.Ops += int(d.Ops)
			tr.Clusters |= 1 << uint(c)
			if d.Load {
				tr.LoadsAt |= 1 << uint(c)
			}
			if d.Stor {
				tr.StoresAt |= 1 << uint(c)
			}
			st.remaining[c] = isa.BundleDemand{}
		}
		tr.LastPart = done && tr.Ops > 0
		tr.Split = !done && tr.Ops > 0
		if tr.Split {
			e.markBufferedStores(st, tr.StoresAt)
		}
		return tr

	case SplitOperation:
		done := true
		for c := 0; c < e.geom.Clusters; c++ {
			d := st.remaining[c]
			if d.IsEmpty() {
				continue
			}
			take := e.packet.TakeOps(c, d)
			if take.IsEmpty() {
				done = false
				continue
			}
			e.packet.AddBundle(c, take)
			tr.Ops += int(take.Ops)
			tr.Clusters |= 1 << uint(c)
			if take.Load {
				tr.LoadsAt |= 1 << uint(c)
			}
			if take.Stor {
				tr.StoresAt |= 1 << uint(c)
			}
			st.remaining[c] = subDemand(d, take)
			if !st.remaining[c].IsEmpty() {
				done = false
			}
		}
		tr.LastPart = done && tr.Ops > 0
		tr.Split = !done && tr.Ops > 0
		if tr.Split {
			e.markBufferedStores(st, tr.StoresAt)
		}
		return tr
	}
	return tr
}

func (e *refEngine) markBufferedStores(st *refThreadIssue, storesAt uint8) {
	for c := 0; c < e.geom.Clusters; c++ {
		if storesAt&(1<<uint(c)) != 0 {
			st.storeBuffered[c] = true
		}
	}
}

// equivGeometries are the shapes the lockstep tests sweep: the paper's
// machine plus wide/narrow cluster splits of the same total issue width.
func equivGeometries() []isa.Geometry {
	return []isa.Geometry{
		isa.ST200x4,
		{Clusters: 2, IssueWidth: 8, ALUs: 8, Muls: 4, MemUnits: 2},
		{Clusters: 8, IssueWidth: 2, ALUs: 2, Muls: 1, MemUnits: 1},
		{Clusters: 1, IssueWidth: 4, ALUs: 4, Muls: 2, MemUnits: 1},
	}
}

// TestCycleMatchesReference drives the lowered engine and the reference
// implementation in lockstep: identical Loads, identical (random) ready
// masks, and a bit-identical CycleResult required every cycle, across all
// eight techniques, several geometries and thread counts.
func TestCycleMatchesReference(t *testing.T) {
	r := rng.New(0xfa57)
	for _, g := range equivGeometries() {
		for _, tech := range AllTechniques() {
			for _, nt := range []int{1, 2, 4} {
				fast, err := NewEngine(g, tech, nt)
				if err != nil {
					t.Fatal(err)
				}
				ref := newRefEngine(g, tech, nt)
				streams := make([][]isa.InstrDemand, nt)
				next := make([]int, nt)
				for th := range streams {
					streams[th] = randomStream(r, g, 120, 0.25)
				}
				var ready [MaxThreads]bool
				for cycle := 0; cycle < 50_000; cycle++ {
					done := true
					for th := 0; th < nt; th++ {
						if fast.Active(th) != ref.Active(th) {
							t.Fatalf("%s %dC %dT cycle %d: Active(%d) diverged",
								tech.Name(), g.Clusters, nt, cycle, th)
						}
						if !fast.Active(th) && next[th] < len(streams[th]) {
							d := streams[th][next[th]]
							fast.Load(th, d)
							ref.Load(th, d)
							next[th]++
						}
						if fast.Active(th) {
							done = false
						}
					}
					if done {
						break
					}
					for th := 0; th < nt; th++ {
						ready[th] = r.Bool(0.8)
					}
					got := fast.Cycle(&ready)
					want := ref.Cycle(&ready)
					if got != want {
						t.Fatalf("%s %dC %dT cycle %d diverged:\n got %+v\nwant %+v",
							tech.Name(), g.Clusters, nt, cycle, got, want)
					}
				}
			}
		}
	}
}

// TestSkipCyclesMatchesDeadCycles proves SkipCycles(k) equals k Cycle calls
// with an all-false ready mask: same rotation state afterwards, and
// identical results for every subsequent cycle.
func TestSkipCyclesMatchesDeadCycles(t *testing.T) {
	r := rng.New(0x51c1e5)
	for _, tech := range AllTechniques() {
		fast, err := NewEngine(isa.ST200x4, tech, 4)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefEngine(isa.ST200x4, tech, 4)
		streams := make([][]isa.InstrDemand, 4)
		next := make([]int, 4)
		for th := range streams {
			streams[th] = randomStream(r, isa.ST200x4, 80, 0.2)
		}
		var ready, dead [MaxThreads]bool
		for cycle := 0; cycle < 20_000; cycle++ {
			done := true
			for th := 0; th < 4; th++ {
				if !fast.Active(th) && next[th] < len(streams[th]) {
					d := streams[th][next[th]]
					fast.Load(th, d)
					ref.Load(th, d)
					next[th]++
				}
				if fast.Active(th) {
					done = false
				}
			}
			if done {
				break
			}
			if r.Bool(0.3) {
				// Fast-forward a random stall: the reference burns the dead
				// cycles one by one.
				k := int64(1 + r.Intn(1000))
				fast.SkipCycles(k)
				for i := int64(0); i < k; i++ {
					ref.Cycle(&dead)
				}
			}
			for th := 0; th < 4; th++ {
				ready[th] = r.Bool(0.7)
			}
			got := fast.Cycle(&ready)
			want := ref.Cycle(&ready)
			if got != want {
				t.Fatalf("%s cycle %d diverged after skip:\n got %+v\nwant %+v",
					tech.Name(), cycle, got, want)
			}
		}
	}
}

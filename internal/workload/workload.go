// Package workload holds the paper's benchmark table (Figure 13a) and the
// nine four-thread workload mixes (Figure 13b).
package workload

import (
	"fmt"

	"vexsmt/internal/synth"
)

// PaperRow is one line of Figure 13(a): the paper-reported single-thread
// IPC with real memory (IPCr) and with perfect memory (IPCp). Our
// reproduction calibrates synthetic benchmarks against these values.
type PaperRow struct {
	Name        string
	Class       synth.ILPClass
	Description string
	IPCr        float64
	IPCp        float64
}

// PaperFigure13a returns the paper's benchmark table.
func PaperFigure13a() []PaperRow {
	return []PaperRow{
		{"mcf", synth.LowILP, "Minimum Cost Flow", 0.96, 1.34},
		{"bzip2", synth.LowILP, "Bzip2 Compression", 0.81, 0.83},
		{"blowfish", synth.LowILP, "Encryption", 1.11, 1.47},
		{"gsmencode", synth.LowILP, "GSM Encoder", 1.07, 1.07},
		{"g721encode", synth.MediumILP, "G721 Encoder", 1.75, 1.76},
		{"g721decode", synth.MediumILP, "G721 Decoder", 1.75, 1.76},
		{"cjpeg", synth.MediumILP, "Jpeg Encoder", 1.12, 1.66},
		{"djpeg", synth.MediumILP, "Jpeg Decoder", 1.76, 1.77},
		{"imgpipe", synth.HighILP, "Imaging pipeline", 3.81, 4.05},
		{"x264", synth.HighILP, "H.264 encoder", 3.89, 4.04},
		{"idct", synth.HighILP, "Inverse DCT", 4.79, 5.27},
		{"colorspace", synth.HighILP, "Colorspace Conversion", 5.47, 8.88},
	}
}

// Mix is one workload of Figure 13(b): four benchmarks named by their ILP
// combination.
type Mix struct {
	Label      string // e.g. "llhh"
	Benchmarks [4]string
}

// Figure13b returns the paper's nine workload mixes in presentation order.
func Figure13b() []Mix {
	return []Mix{
		{"llll", [4]string{"mcf", "bzip2", "blowfish", "gsmencode"}},
		{"lmmh", [4]string{"bzip2", "cjpeg", "djpeg", "imgpipe"}},
		{"mmmm", [4]string{"g721encode", "g721decode", "cjpeg", "djpeg"}},
		{"llmm", [4]string{"gsmencode", "blowfish", "g721encode", "djpeg"}},
		{"llmh", [4]string{"mcf", "blowfish", "cjpeg", "x264"}},
		{"llhh", [4]string{"mcf", "blowfish", "x264", "idct"}},
		{"lmhh", [4]string{"gsmencode", "g721encode", "imgpipe", "colorspace"}},
		{"mmhh", [4]string{"djpeg", "g721decode", "idct", "colorspace"}},
		{"hhhh", [4]string{"x264", "idct", "imgpipe", "colorspace"}},
	}
}

// MixByLabel returns the mix with the given label.
func MixByLabel(label string) (Mix, error) {
	for _, m := range Figure13b() {
		if m.Label == label {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", label)
}

// Profiles resolves the mix's benchmark names to synthetic profiles.
func (m Mix) Profiles() ([]synth.Profile, error) {
	out := make([]synth.Profile, 0, len(m.Benchmarks))
	for _, name := range m.Benchmarks {
		p, ok := synth.ByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: mix %s references unknown benchmark %q", m.Label, name)
		}
		out = append(out, p)
	}
	return out, nil
}

// Validate checks that every mix's label matches its benchmarks' ILP
// classes and that all names resolve.
func Validate() error {
	for _, m := range Figure13b() {
		profs, err := m.Profiles()
		if err != nil {
			return err
		}
		counts := map[synth.ILPClass]int{}
		for _, p := range profs {
			counts[p.Class]++
		}
		want := map[synth.ILPClass]int{}
		for _, ch := range m.Label {
			want[synth.ILPClass(ch)]++
		}
		for class, n := range want {
			if counts[class] != n {
				return fmt.Errorf("workload: mix %s has %d %c-class benchmarks, label implies %d",
					m.Label, counts[class], class, n)
			}
		}
	}
	return nil
}

package workload

import (
	"testing"

	"vexsmt/internal/synth"
)

func TestPaperTableComplete(t *testing.T) {
	rows := PaperFigure13a()
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if _, ok := synth.ByName(r.Name); !ok {
			t.Errorf("paper row %s has no synthetic profile", r.Name)
		}
		if r.IPCp < r.IPCr {
			t.Errorf("%s: IPCp %.2f < IPCr %.2f", r.Name, r.IPCp, r.IPCr)
		}
	}
}

func TestNineMixes(t *testing.T) {
	mixes := Figure13b()
	if len(mixes) != 9 {
		t.Fatalf("%d mixes, want 9", len(mixes))
	}
	order := []string{"llll", "lmmh", "mmmm", "llmm", "llmh", "llhh", "lmhh", "mmhh", "hhhh"}
	for i, m := range mixes {
		if m.Label != order[i] {
			t.Errorf("position %d: %s, want %s", i, m.Label, order[i])
		}
	}
}

func TestValidateLabelsMatchClasses(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixByLabel(t *testing.T) {
	m, err := MixByLabel("mmhh")
	if err != nil {
		t.Fatal(err)
	}
	if m.Benchmarks != [4]string{"djpeg", "g721decode", "idct", "colorspace"} {
		t.Fatalf("mmhh = %v", m.Benchmarks)
	}
	if _, err := MixByLabel("zzzz"); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestProfilesResolve(t *testing.T) {
	for _, m := range Figure13b() {
		profs, err := m.Profiles()
		if err != nil {
			t.Fatal(err)
		}
		if len(profs) != 4 {
			t.Fatalf("%s: %d profiles", m.Label, len(profs))
		}
	}
}

func TestPaperValuesMatchText(t *testing.T) {
	// Spot checks against Figure 13a.
	byName := map[string]PaperRow{}
	for _, r := range PaperFigure13a() {
		byName[r.Name] = r
	}
	if byName["colorspace"].IPCp != 8.88 || byName["colorspace"].IPCr != 5.47 {
		t.Error("colorspace paper values wrong")
	}
	if byName["mcf"].IPCr != 0.96 {
		t.Error("mcf paper IPCr wrong")
	}
	if byName["gsmencode"].IPCr != byName["gsmencode"].IPCp {
		t.Error("gsmencode should have equal IPCr/IPCp")
	}
}

// Package isa defines the VEX-like instruction set architecture used by the
// reproduction: a 32-bit clustered integer VLIW modeled on the HP/ST ST200
// family, as described in Section IV of the paper. An *operation* is the
// basic execution unit; the operations scheduled on one cluster in one cycle
// form a *bundle*; the set of bundles forms the VLIW *instruction* (the
// paper borrows this terminology from the Lx architecture).
package isa

import "fmt"

// Class identifies the functional-unit class an operation executes on.
type Class uint8

const (
	// ClassALU operations execute on one of the per-cluster ALUs.
	ClassALU Class = iota
	// ClassMul operations execute on one of the per-cluster multipliers.
	ClassMul
	// ClassMem operations execute on the per-cluster load/store unit.
	ClassMem
	// ClassBranch operations are the control-flow half of VEX two-phase
	// branches. They execute on the cluster's branch capability, which in
	// this model occupies an ALU slot (VEX branch FUs read branch registers
	// set by earlier compare operations).
	ClassBranch
	// ClassComm operations are the explicit inter-cluster copies (send and
	// recv). They occupy an issue slot and an ALU in their cluster and use
	// the inter-cluster communication network.
	ClassComm

	numClasses
)

// String returns a short human-readable class name.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassMem:
		return "mem"
	case ClassBranch:
		return "br"
	case ClassComm:
		return "comm"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Opcode enumerates the operations of the VEX-like ISA.
type Opcode uint8

const (
	// Nop does nothing. Empty issue slots are represented by absent
	// operations, not by Nop; Nop exists for explicitly scheduled no-ops.
	Nop Opcode = iota

	// Integer ALU operations (single-cycle).
	Add // Dest = Src1 + Src2/Imm
	Sub // Dest = Src1 - Src2/Imm
	Shl // Dest = Src1 << Src2/Imm
	Shr // Dest = Src1 >> Src2/Imm (arithmetic)
	And // Dest = Src1 & Src2/Imm
	Or  // Dest = Src1 | Src2/Imm
	Xor // Dest = Src1 ^ Src2/Imm
	Mov // Dest = Src1 (or Imm with UseImm)
	Max // Dest = max(Src1, Src2/Imm)
	Min // Dest = min(Src1, Src2/Imm)

	// Compare operations: write a branch register (single-cycle, ALU).
	CmpEQ // BDest = (Src1 == Src2/Imm)
	CmpNE // BDest = (Src1 != Src2/Imm)
	CmpLT // BDest = (Src1 < Src2/Imm), signed
	CmpGE // BDest = (Src1 >= Src2/Imm), signed

	// Multiplier operations (2-cycle latency).
	Mpy   // Dest = Src1 * Src2/Imm (low 32 bits)
	MpyH  // Dest = high 32 bits of Src1 * Src2/Imm
	MpySh // Dest = (Src1 * Src2/Imm) >> 16, a typical DSP fixed-point multiply

	// Memory operations (2-cycle latency, 1 load/store unit per cluster).
	Ldw // Dest = mem32[Src1 + Imm]
	Stw // mem32[Src1 + Imm] = Src2

	// Control flow. VEX branches are two-phase: a compare sets a branch
	// register at least 2 cycles ahead, then Br/Brf consumes it. Taken
	// branches pay a 1-cycle penalty (no branch predictor; fall-through is
	// the predicted path).
	Br   // if BSrc is true, jump to Target
	Brf  // if BSrc is false, jump to Target
	Goto // unconditional jump to Target

	// Inter-cluster communication (Section V-E). Send reads Src1 from its
	// cluster's register file and puts it on the network addressed to
	// cluster Target; Recv reads the network value sent from cluster Target
	// and writes it to Dest. VEX semantics require the pair to issue in the
	// same cycle; split-issue relaxes this with buffering.
	Send
	Recv

	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	Nop: "nop", Add: "add", Sub: "sub", Shl: "shl", Shr: "shr",
	And: "and", Or: "or", Xor: "xor", Mov: "mov", Max: "max", Min: "min",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpGE: "cmpge",
	Mpy: "mpy", MpyH: "mpyh", MpySh: "mpysh",
	Ldw: "ldw", Stw: "stw",
	Br: "br", Brf: "brf", Goto: "goto",
	Send: "send", Recv: "recv",
}

// String returns the assembler mnemonic of the opcode.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

var opcodeClasses = [numOpcodes]Class{
	Nop: ClassALU, Add: ClassALU, Sub: ClassALU, Shl: ClassALU, Shr: ClassALU,
	And: ClassALU, Or: ClassALU, Xor: ClassALU, Mov: ClassALU,
	Max: ClassALU, Min: ClassALU,
	CmpEQ: ClassALU, CmpNE: ClassALU, CmpLT: ClassALU, CmpGE: ClassALU,
	Mpy: ClassMul, MpyH: ClassMul, MpySh: ClassMul,
	Ldw: ClassMem, Stw: ClassMem,
	Br: ClassBranch, Brf: ClassBranch, Goto: ClassBranch,
	Send: ClassComm, Recv: ClassComm,
}

// ClassOf returns the functional-unit class of an opcode.
func ClassOf(o Opcode) Class {
	if int(o) < len(opcodeClasses) {
		return opcodeClasses[o]
	}
	return ClassALU
}

// Latency returns the architectural latency in cycles exposed to the
// compiler: 2 for multiply and memory operations, 1 for everything else
// (Section IV). VEX is a less-than-or-equal machine: hardware may finish
// sooner, and memory may take longer, in which case execution stalls.
func Latency(o Opcode) int {
	switch ClassOf(o) {
	case ClassMul, ClassMem:
		return 2
	default:
		return 1
	}
}

// IsBranch reports whether the opcode changes control flow.
func IsBranch(o Opcode) bool { return ClassOf(o) == ClassBranch }

// IsComm reports whether the opcode is an inter-cluster copy.
func IsComm(o Opcode) bool { return ClassOf(o) == ClassComm }

// IsMem reports whether the opcode accesses memory.
func IsMem(o Opcode) bool { return ClassOf(o) == ClassMem }

// WritesGPR reports whether the opcode writes a general-purpose register.
func WritesGPR(o Opcode) bool {
	switch o {
	case Nop, CmpEQ, CmpNE, CmpLT, CmpGE, Stw, Br, Brf, Goto, Send:
		return false
	default:
		return true
	}
}

// ParseOpcode returns the opcode for an assembler mnemonic.
func ParseOpcode(name string) (Opcode, bool) {
	for op, n := range opcodeNames {
		if n == name {
			return Opcode(op), true
		}
	}
	return Nop, false
}

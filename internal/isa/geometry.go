package isa

import "fmt"

// Geometry describes the per-cluster resources of the machine. The paper's
// base architecture (Section IV) is 4 clusters, each 4-issue with 4 ALUs,
// 2 multipliers and 1 load/store unit.
type Geometry struct {
	Clusters   int // number of clusters
	IssueWidth int // issue slots per cluster
	ALUs       int // ALUs per cluster (also execute branches and comm copies)
	Muls       int // multipliers per cluster
	MemUnits   int // load/store units per cluster
}

// ST200x4 is the paper's evaluation machine: 16-issue, 4 clusters,
// 4-issue per cluster.
var ST200x4 = Geometry{Clusters: 4, IssueWidth: 4, ALUs: 4, Muls: 2, MemUnits: 1}

// TotalIssueWidth returns Clusters * IssueWidth.
func (g Geometry) TotalIssueWidth() int { return g.Clusters * g.IssueWidth }

// Validate checks that the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.Clusters <= 0 || g.Clusters > MaxClusters:
		return fmt.Errorf("isa: clusters must be in [1,%d], got %d", MaxClusters, g.Clusters)
	case g.IssueWidth <= 0:
		return fmt.Errorf("isa: issue width must be positive, got %d", g.IssueWidth)
	case g.ALUs <= 0:
		return fmt.Errorf("isa: need at least one ALU per cluster")
	case g.Muls < 0 || g.MemUnits < 0:
		return fmt.Errorf("isa: negative functional unit count")
	}
	return nil
}

// ValidateBundle checks that a single bundle respects the per-cluster
// resource limits a VEX compiler would have honored: at most IssueWidth
// operations, at most Muls multiplies, at most MemUnits memory operations.
func (g Geometry) ValidateBundle(b Bundle) error {
	if len(b) > g.IssueWidth {
		return fmt.Errorf("isa: bundle has %d ops, issue width is %d", len(b), g.IssueWidth)
	}
	var muls, mems int
	for i := range b {
		switch b[i].Class() {
		case ClassMul:
			muls++
		case ClassMem:
			mems++
		}
	}
	if muls > g.Muls {
		return fmt.Errorf("isa: bundle has %d multiplies, cluster has %d multipliers", muls, g.Muls)
	}
	if mems > g.MemUnits {
		return fmt.Errorf("isa: bundle has %d memory ops, cluster has %d memory units", mems, g.MemUnits)
	}
	return nil
}

// ValidateInstruction checks every bundle of the instruction, plus the
// cross-cluster constraint that send/recv operations name valid partner
// clusters.
func (g Geometry) ValidateInstruction(in *Instruction) error {
	for c := 0; c < MaxClusters; c++ {
		if c >= g.Clusters && len(in.Bundles[c]) > 0 {
			return fmt.Errorf("isa: bundle on cluster %d but machine has %d clusters", c, g.Clusters)
		}
		if err := g.ValidateBundle(in.Bundles[c]); err != nil {
			return fmt.Errorf("cluster %d: %w", c, err)
		}
		for i := range in.Bundles[c] {
			op := &in.Bundles[c][i]
			if IsComm(op.Op) {
				if int(op.Target) >= g.Clusters {
					return fmt.Errorf("isa: cluster %d: %s names cluster %d, machine has %d",
						c, op.Op, op.Target, g.Clusters)
				}
				if int(op.Target) == c {
					return fmt.Errorf("isa: cluster %d: %s targets its own cluster", c, op.Op)
				}
			}
		}
	}
	return nil
}

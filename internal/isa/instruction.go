package isa

import (
	"fmt"
	"strings"
)

// MaxClusters bounds the number of clusters supported by fixed-size arrays
// on the simulator hot path. The paper evaluates 4 clusters; the model
// supports up to 8 for scaling studies.
const MaxClusters = 8

// NumGPR is the number of 32-bit general-purpose registers per cluster
// (VEX/ST200 have 64).
const NumGPR = 64

// NumBR is the number of single-bit branch registers per cluster.
const NumBR = 8

// Reg names a general-purpose register within a cluster (0..NumGPR-1).
type Reg uint8

// BReg names a branch register within a cluster (0..NumBR-1).
type BReg uint8

// RegNone marks an absent register operand.
const RegNone Reg = 0xFF

// BRegNone marks an absent branch-register operand.
const BRegNone BReg = 0xFF

// Operation is one RISC-like operation, the basic execution unit.
type Operation struct {
	Op     Opcode
	Dest   Reg   // GPR destination, RegNone if none
	Src1   Reg   // first GPR source, RegNone if none
	Src2   Reg   // second GPR source, RegNone if unused or immediate form
	Imm    int32 // immediate; used when UseImm is set (or as Ldw/Stw offset)
	UseImm bool  // second operand is Imm instead of Src2
	BDest  BReg  // branch-register destination (compares), BRegNone if none
	BSrc   BReg  // branch-register source (Br/Brf), BRegNone if none
	Target uint32
	// Target is the branch target address for control-flow operations, and
	// the partner cluster index for Send (destination cluster) and Recv
	// (source cluster).
}

// Class returns the functional-unit class of the operation.
func (op *Operation) Class() Class { return ClassOf(op.Op) }

// String renders the operation in assembler-like syntax.
func (op *Operation) String() string {
	var b strings.Builder
	b.WriteString(op.Op.String())
	switch op.Op {
	case Nop:
	case Ldw:
		fmt.Fprintf(&b, " $r%d = %d[$r%d]", op.Dest, op.Imm, op.Src1)
	case Stw:
		fmt.Fprintf(&b, " %d[$r%d] = $r%d", op.Imm, op.Src1, op.Src2)
	case Br, Brf:
		fmt.Fprintf(&b, " $b%d, 0x%x", op.BSrc, op.Target)
	case Goto:
		fmt.Fprintf(&b, " 0x%x", op.Target)
	case Send:
		fmt.Fprintf(&b, " $r%d -> c%d", op.Src1, op.Target)
	case Recv:
		fmt.Fprintf(&b, " $r%d <- c%d", op.Dest, op.Target)
	case CmpEQ, CmpNE, CmpLT, CmpGE:
		fmt.Fprintf(&b, " $b%d = $r%d, ", op.BDest, op.Src1)
		op.writeSecond(&b)
	case Mov:
		fmt.Fprintf(&b, " $r%d = ", op.Dest)
		op.writeSecondAsFirst(&b)
	default:
		fmt.Fprintf(&b, " $r%d = $r%d, ", op.Dest, op.Src1)
		op.writeSecond(&b)
	}
	return b.String()
}

func (op *Operation) writeSecond(b *strings.Builder) {
	if op.UseImm {
		fmt.Fprintf(b, "%d", op.Imm)
	} else {
		fmt.Fprintf(b, "$r%d", op.Src2)
	}
}

func (op *Operation) writeSecondAsFirst(b *strings.Builder) {
	if op.UseImm {
		fmt.Fprintf(b, "%d", op.Imm)
	} else {
		fmt.Fprintf(b, "$r%d", op.Src1)
	}
}

// Bundle is the set of operations scheduled on one cluster in one VLIW
// instruction. A nil or empty bundle means the cluster is idle.
type Bundle []Operation

// Instruction is one VLIW instruction: at most one bundle per cluster plus
// the fetch metadata used by the timing model.
type Instruction struct {
	Bundles [MaxClusters]Bundle
	Addr    uint64 // fetch address
	Size    uint32 // encoded size in bytes (compressed encoding)
}

// NumOps returns the total operation count across all bundles.
func (in *Instruction) NumOps() int {
	n := 0
	for c := range in.Bundles {
		n += len(in.Bundles[c])
	}
	return n
}

// HasComm reports whether any bundle contains a send or recv operation.
func (in *Instruction) HasComm() bool {
	for c := range in.Bundles {
		for i := range in.Bundles[c] {
			if IsComm(in.Bundles[c][i].Op) {
				return true
			}
		}
	}
	return false
}

// UsedClusters returns a bitmask of clusters with non-empty bundles.
func (in *Instruction) UsedClusters() uint8 {
	var mask uint8
	for c := range in.Bundles {
		if len(in.Bundles[c]) > 0 {
			mask |= 1 << uint(c)
		}
	}
	return mask
}

// String renders the instruction with per-cluster bundles separated by ";"
// and terminated by ";;" as in VEX assembly listings.
func (in *Instruction) String() string {
	var parts []string
	for c := range in.Bundles {
		for i := range in.Bundles[c] {
			parts = append(parts, fmt.Sprintf("c%d %s", c, in.Bundles[c][i].String()))
		}
	}
	if len(parts) == 0 {
		return ";;"
	}
	return strings.Join(parts, " ; ") + " ;;"
}

// Rotate returns a copy of the instruction with every bundle moved from
// cluster c to cluster (c+by) mod clusters, implementing the static cluster
// renaming of Gupta et al. (ICCD 2007) that all experiments in the paper
// apply: the rotation rebalances per-thread cluster bias. Send/Recv partner
// cluster indices are rotated consistently.
func (in *Instruction) Rotate(by, clusters int) *Instruction {
	if clusters <= 0 || by%clusters == 0 {
		return in
	}
	by = ((by % clusters) + clusters) % clusters
	out := &Instruction{Addr: in.Addr, Size: in.Size}
	for c := 0; c < clusters; c++ {
		src := in.Bundles[c]
		if len(src) == 0 {
			continue
		}
		dst := make(Bundle, len(src))
		copy(dst, src)
		for i := range dst {
			if IsComm(dst[i].Op) {
				dst[i].Target = uint32((int(dst[i].Target) + by) % clusters)
			}
		}
		out.Bundles[(c+by)%clusters] = dst
	}
	return out
}

package isa

// BundleDemand summarizes the resources one bundle needs from its cluster.
// The timing simulator works on demands instead of full operation lists so
// that trace-driven synthetic workloads and the functional machine share one
// issue engine.
type BundleDemand struct {
	Ops  uint8 // issue slots (total operations)
	ALU  uint8 // operations needing an ALU (includes branches and comm)
	Mul  uint8 // operations needing a multiplier
	Mem  uint8 // operations needing the load/store unit
	Load bool  // the memory op (if any) is a load
	Stor bool  // the memory op (if any) is a store
	Comm bool  // bundle contains a send or recv
}

// IsEmpty reports whether the bundle demands nothing.
func (d BundleDemand) IsEmpty() bool { return d.Ops == 0 }

// Add returns the component-wise sum of two demands.
func (d BundleDemand) Add(o BundleDemand) BundleDemand {
	return BundleDemand{
		Ops: d.Ops + o.Ops, ALU: d.ALU + o.ALU, Mul: d.Mul + o.Mul, Mem: d.Mem + o.Mem,
		Load: d.Load || o.Load, Stor: d.Stor || o.Stor, Comm: d.Comm || o.Comm,
	}
}

// FitsAlone reports whether the demand fits the per-cluster resources on an
// otherwise empty cluster.
func (d BundleDemand) FitsAlone(g Geometry) bool {
	return int(d.Ops) <= g.IssueWidth &&
		int(d.ALU) <= g.ALUs &&
		int(d.Mul) <= g.Muls &&
		int(d.Mem) <= g.MemUnits
}

// InstrDemand summarizes a whole VLIW instruction for the issue engine.
type InstrDemand struct {
	B       [MaxClusters]BundleDemand
	HasComm bool // any bundle contains send/recv
	Taken   bool // instruction ends with a taken branch (trace-driven hint)
}

// DemandOfBundle computes the resource demand of an operation list.
func DemandOfBundle(b Bundle) BundleDemand {
	var d BundleDemand
	for i := range b {
		d.Ops++
		switch b[i].Class() {
		case ClassMul:
			d.Mul++
		case ClassMem:
			d.Mem++
			if b[i].Op == Ldw {
				d.Load = true
			} else {
				d.Stor = true
			}
		case ClassComm:
			d.ALU++
			d.Comm = true
		default: // ALU and branch occupy an ALU
			d.ALU++
		}
	}
	return d
}

// DemandOf computes the per-cluster demand of a full instruction.
func DemandOf(in *Instruction) InstrDemand {
	var d InstrDemand
	for c := range in.Bundles {
		d.B[c] = DemandOfBundle(in.Bundles[c])
		if d.B[c].Comm {
			d.HasComm = true
		}
	}
	return d
}

// NumOps returns the total operation count of the instruction demand.
func (d *InstrDemand) NumOps() int {
	n := 0
	for c := range d.B {
		n += int(d.B[c].Ops)
	}
	return n
}

// UsedClusters returns a bitmask of clusters with non-empty demand.
func (d *InstrDemand) UsedClusters() uint8 {
	var mask uint8
	for c := range d.B {
		if !d.B[c].IsEmpty() {
			mask |= 1 << uint(c)
		}
	}
	return mask
}

// Rotate returns the demand rotated by `by` clusters (cluster renaming).
func (d *InstrDemand) Rotate(by, clusters int) InstrDemand {
	if clusters <= 0 {
		return *d
	}
	by = ((by % clusters) + clusters) % clusters
	if by == 0 {
		return *d
	}
	out := InstrDemand{HasComm: d.HasComm, Taken: d.Taken}
	for c := 0; c < clusters; c++ {
		out.B[(c+by)%clusters] = d.B[c]
	}
	return out
}

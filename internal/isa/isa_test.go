package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLatencies(t *testing.T) {
	// Section IV: memory and multiply have latency 2, everything else 1.
	cases := []struct {
		op   Opcode
		want int
	}{
		{Add, 1}, {Sub, 1}, {Shl, 1}, {Mov, 1}, {CmpEQ, 1}, {Br, 1},
		{Send, 1}, {Recv, 1},
		{Mpy, 2}, {MpyH, 2}, {MpySh, 2}, {Ldw, 2}, {Stw, 2},
	}
	for _, c := range cases {
		if got := Latency(c.op); got != c.want {
			t.Errorf("Latency(%v) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestClasses(t *testing.T) {
	if ClassOf(Mpy) != ClassMul || ClassOf(Ldw) != ClassMem ||
		ClassOf(Br) != ClassBranch || ClassOf(Send) != ClassComm ||
		ClassOf(Add) != ClassALU {
		t.Fatal("opcode class mapping wrong")
	}
}

func TestWritesGPR(t *testing.T) {
	writes := []Opcode{Add, Sub, Mpy, Ldw, Mov, Recv}
	noWrites := []Opcode{Nop, Stw, Br, Brf, Goto, Send, CmpEQ, CmpLT}
	for _, op := range writes {
		if !WritesGPR(op) {
			t.Errorf("WritesGPR(%v) = false, want true", op)
		}
	}
	for _, op := range noWrites {
		if WritesGPR(op) {
			t.Errorf("WritesGPR(%v) = true, want false", op)
		}
	}
}

func TestParseOpcodeRoundTrip(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		got, ok := ParseOpcode(op.String())
		if !ok || got != op {
			t.Errorf("ParseOpcode(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := ParseOpcode("frobnicate"); ok {
		t.Error("ParseOpcode accepted a bogus mnemonic")
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := ST200x4.Validate(); err != nil {
		t.Fatalf("ST200x4 invalid: %v", err)
	}
	bad := []Geometry{
		{Clusters: 0, IssueWidth: 4, ALUs: 4},
		{Clusters: 9, IssueWidth: 4, ALUs: 4},
		{Clusters: 4, IssueWidth: 0, ALUs: 4},
		{Clusters: 4, IssueWidth: 4, ALUs: 0},
		{Clusters: 4, IssueWidth: 4, ALUs: 4, Muls: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: bad geometry accepted", i)
		}
	}
}

func TestValidateBundleResourceLimits(t *testing.T) {
	g := ST200x4
	ok := Bundle{
		{Op: Add}, {Op: Mpy}, {Op: Mpy}, {Op: Ldw},
	}
	if err := g.ValidateBundle(ok); err != nil {
		t.Fatalf("legal bundle rejected: %v", err)
	}
	tooWide := Bundle{{Op: Add}, {Op: Add}, {Op: Add}, {Op: Add}, {Op: Add}}
	if err := g.ValidateBundle(tooWide); err == nil {
		t.Error("5-op bundle accepted on 4-issue cluster")
	}
	tooManyMuls := Bundle{{Op: Mpy}, {Op: Mpy}, {Op: Mpy}}
	if err := g.ValidateBundle(tooManyMuls); err == nil {
		t.Error("3-mul bundle accepted with 2 multipliers")
	}
	tooManyMems := Bundle{{Op: Ldw}, {Op: Stw}}
	if err := g.ValidateBundle(tooManyMems); err == nil {
		t.Error("2-mem bundle accepted with 1 LSU")
	}
}

func TestValidateInstructionCommTargets(t *testing.T) {
	g := ST200x4
	in := &Instruction{}
	in.Bundles[0] = Bundle{{Op: Send, Src1: 3, Target: 1}}
	in.Bundles[1] = Bundle{{Op: Recv, Dest: 5, Target: 0}}
	if err := g.ValidateInstruction(in); err != nil {
		t.Fatalf("legal comm instruction rejected: %v", err)
	}
	in2 := &Instruction{}
	in2.Bundles[0] = Bundle{{Op: Send, Src1: 3, Target: 7}}
	if err := g.ValidateInstruction(in2); err == nil {
		t.Error("send to nonexistent cluster accepted")
	}
	in3 := &Instruction{}
	in3.Bundles[2] = Bundle{{Op: Send, Src1: 3, Target: 2}}
	if err := g.ValidateInstruction(in3); err == nil {
		t.Error("send to own cluster accepted")
	}
	in4 := &Instruction{}
	in4.Bundles[5] = Bundle{{Op: Add}}
	if err := g.ValidateInstruction(in4); err == nil {
		t.Error("bundle beyond cluster count accepted")
	}
}

func TestInstructionHelpers(t *testing.T) {
	in := &Instruction{}
	in.Bundles[1] = Bundle{{Op: Add}, {Op: Mpy}}
	in.Bundles[3] = Bundle{{Op: Send, Target: 1}}
	if in.NumOps() != 3 {
		t.Errorf("NumOps = %d, want 3", in.NumOps())
	}
	if !in.HasComm() {
		t.Error("HasComm = false")
	}
	if in.UsedClusters() != 0b1010 {
		t.Errorf("UsedClusters = %b, want 1010", in.UsedClusters())
	}
	var empty Instruction
	if empty.HasComm() || empty.NumOps() != 0 || empty.UsedClusters() != 0 {
		t.Error("empty instruction helpers wrong")
	}
}

func TestRotateMovesBundlesAndCommTargets(t *testing.T) {
	in := &Instruction{}
	in.Bundles[0] = Bundle{{Op: Send, Src1: 1, Target: 2}}
	in.Bundles[2] = Bundle{{Op: Recv, Dest: 1, Target: 0}}
	out := in.Rotate(1, 4)
	if len(out.Bundles[1]) != 1 || out.Bundles[1][0].Op != Send {
		t.Fatal("send bundle not rotated to cluster 1")
	}
	if out.Bundles[1][0].Target != 3 {
		t.Errorf("send target = %d, want 3", out.Bundles[1][0].Target)
	}
	if len(out.Bundles[3]) != 1 || out.Bundles[3][0].Target != 1 {
		t.Errorf("recv not rotated correctly: %+v", out.Bundles[3])
	}
	// Rotating by 0 or a multiple of clusters is the identity.
	if in.Rotate(0, 4) != in || in.Rotate(4, 4) != in {
		t.Error("identity rotation should return the receiver")
	}
}

func TestRotatePreservesValidity(t *testing.T) {
	g := ST200x4
	f := func(c0 uint8, c1 uint8, by uint8) bool {
		in := &Instruction{}
		if c0%3 != 0 {
			in.Bundles[0] = Bundle{{Op: Add}, {Op: Ldw}}
		}
		if c1%2 == 0 {
			in.Bundles[1] = Bundle{{Op: Mpy}}
		}
		out := in.Rotate(int(by%4), 4)
		return g.ValidateInstruction(out) == nil && out.NumOps() == in.NumOps()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDemandOfBundle(t *testing.T) {
	b := Bundle{
		{Op: Add}, {Op: Mpy}, {Op: Ldw, Dest: 1, Src1: 2},
		{Op: Send, Src1: 3, Target: 1},
	}
	d := DemandOfBundle(b)
	if d.Ops != 4 || d.ALU != 2 || d.Mul != 1 || d.Mem != 1 {
		t.Fatalf("demand = %+v", d)
	}
	if !d.Load || d.Stor || !d.Comm {
		t.Fatalf("flags = %+v", d)
	}
}

func TestDemandOfInstruction(t *testing.T) {
	in := &Instruction{}
	in.Bundles[0] = Bundle{{Op: Stw, Src1: 1, Src2: 2}}
	in.Bundles[2] = Bundle{{Op: Add}, {Op: Add}}
	d := DemandOf(in)
	if d.HasComm {
		t.Error("HasComm = true for comm-free instruction")
	}
	if d.B[0].Mem != 1 || !d.B[0].Stor || d.B[0].Load {
		t.Errorf("cluster 0 demand = %+v", d.B[0])
	}
	if d.B[2].Ops != 2 || d.B[2].ALU != 2 {
		t.Errorf("cluster 2 demand = %+v", d.B[2])
	}
	if d.NumOps() != 3 {
		t.Errorf("NumOps = %d", d.NumOps())
	}
	if d.UsedClusters() != 0b101 {
		t.Errorf("UsedClusters = %b", d.UsedClusters())
	}
}

func TestDemandRotate(t *testing.T) {
	var d InstrDemand
	d.B[0] = BundleDemand{Ops: 2, ALU: 2}
	d.B[3] = BundleDemand{Ops: 1, Mem: 1, Load: true}
	r := d.Rotate(2, 4)
	if r.B[2].Ops != 2 || r.B[1].Mem != 1 {
		t.Fatalf("rotate wrong: %+v", r)
	}
	// Rotation is invertible.
	back := r.Rotate(-2, 4)
	if back != d {
		t.Fatalf("rotate not invertible: %+v vs %+v", back, d)
	}
}

func TestFitsAlone(t *testing.T) {
	g := ST200x4
	if !(BundleDemand{Ops: 4, ALU: 2, Mul: 2}).FitsAlone(g) {
		t.Error("legal demand rejected")
	}
	if (BundleDemand{Ops: 5}).FitsAlone(g) {
		t.Error("over-wide demand accepted")
	}
	if (BundleDemand{Ops: 2, Mem: 2}).FitsAlone(g) {
		t.Error("2 mem ops accepted with 1 LSU")
	}
}

func TestOperationString(t *testing.T) {
	cases := []struct {
		op   Operation
		want string
	}{
		{Operation{Op: Add, Dest: 1, Src1: 2, Src2: 3}, "add $r1 = $r2, $r3"},
		{Operation{Op: Add, Dest: 1, Src1: 2, Imm: 7, UseImm: true}, "add $r1 = $r2, 7"},
		{Operation{Op: Ldw, Dest: 4, Src1: 6, Imm: 16}, "ldw $r4 = 16[$r6]"},
		{Operation{Op: Stw, Src1: 6, Src2: 2, Imm: 4}, "stw 4[$r6] = $r2"},
		{Operation{Op: Send, Src1: 3, Target: 1}, "send $r3 -> c1"},
		{Operation{Op: Recv, Dest: 5, Target: 0}, "recv $r5 <- c0"},
		{Operation{Op: Nop}, "nop"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestInstructionString(t *testing.T) {
	in := &Instruction{}
	in.Bundles[0] = Bundle{{Op: Add, Dest: 1, Src1: 2, Src2: 3}}
	s := in.String()
	if !strings.Contains(s, "c0 add") || !strings.HasSuffix(s, ";;") {
		t.Errorf("String() = %q", s)
	}
	var empty Instruction
	if empty.String() != ";;" {
		t.Errorf("empty String() = %q", empty.String())
	}
}

package wstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
)

func writeVXT(t *testing.T, dir, name, bench string, n int) (string, []synth.TInst) {
	t.Helper()
	p, ok := synth.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	instrs := trace.Record(synth.MustNewGenerator(p, isa.ST200x4), n)
	var buf bytes.Buffer
	if err := trace.Write(&buf, bench, isa.ST200x4.Clusters, instrs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, instrs
}

const loopVEX = `
  c0 mov $r1 = 0
  c0 mov $r2 = 0
;;
loop:
  c0 add $r1 = $r1, 1
;;
  c0 add $r2 = $r2, $r1
  c0 cmplt $b0 = $r1, 10
;;
  c0 br $b0, loop
;;
`

func TestLoadVXTDecodesOnce(t *testing.T) {
	dir := t.TempDir()
	path, want := writeVXT(t, dir, "idct.vxt", "idct", 300)
	s := New()
	tr, err := s.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "idct" || tr.Clusters != 4 || tr.Len() != len(want) {
		t.Fatalf("header: %q clusters=%d len=%d", tr.Name, tr.Clusters, tr.Len())
	}
	for i, ti := range tr.Instrs() {
		if ti != want[i] {
			t.Fatalf("instr %d mismatch", i)
		}
	}
	again, err := s.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if again != tr {
		t.Fatal("same content decoded twice")
	}
	// Same bytes under a different name: still one arena, aliased name.
	raw, _ := os.ReadFile(path)
	alias := filepath.Join(dir, "alias.vxt")
	if err := os.WriteFile(alias, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	at, err := s.Load(alias)
	if err != nil {
		t.Fatal(err)
	}
	if at != tr {
		t.Fatal("identical content not shared by hash")
	}
	if got, ok := s.ByName("alias"); !ok || got != tr {
		t.Fatal("alias name not registered")
	}
}

func TestReplayerSharesArena(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeVXT(t, dir, "mcf.vxt", "mcf", 50)
	s := New()
	tr, err := s.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := tr.NewReplayer()
	if err != nil {
		t.Fatal(err)
	}
	// Zero-copy contract: the replayer reads the store's arena directly.
	tr.Instrs()[0].PC = 0xdeadbeef
	var ti synth.TInst
	r.Next(&ti)
	if ti.PC != 0xdeadbeef {
		t.Fatal("replayer copied the arena instead of sharing it")
	}
}

func TestLoadVEXProgram(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "loop.vex")
	if err := os.WriteFile(path, []byte(loopVEX), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New()
	tr, err := s.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// 1 setup + 10 iterations × 3 body instructions.
	if tr.Len() != 31 {
		t.Fatalf("executed %d instructions, want 31", tr.Len())
	}
	instrs := tr.Instrs()
	taken, branches := 0, 0
	for _, ti := range instrs {
		if ti.IsBranch {
			branches++
		}
		if ti.Taken {
			taken++
		}
	}
	// The br executes 10 times: 9 taken back to loop, the last falls off.
	if branches != 10 || taken != 9 {
		t.Fatalf("branches=%d taken=%d, want 10/9", branches, taken)
	}
	if instrs[0].Demand.B[0].Ops != 2 {
		t.Fatalf("first bundle demand: %+v", instrs[0].Demand.B[0])
	}
	// Deterministic identity: reloading yields the same object.
	again, err := s.Load(path)
	if err != nil || again != tr {
		t.Fatalf("reload: %v, shared=%v", err, again == tr)
	}
}

func TestLoadVEXMemAddrs(t *testing.T) {
	src := `
  c0 mov $r1 = 0x10000
  c0 mov $r2 = 77
;;
  c0 stw 8[$r1] = $r2
;;
  c0 ldw $r3 = 8[$r1]
;;
`
	dir := t.TempDir()
	path := filepath.Join(dir, "mem.vex")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := New().Load(path)
	if err != nil {
		t.Fatal(err)
	}
	instrs := tr.Instrs()
	if len(instrs) != 3 {
		t.Fatalf("len=%d", len(instrs))
	}
	if instrs[1].MemAddr[0] != 0x10008 || instrs[2].MemAddr[0] != 0x10008 {
		t.Fatalf("mem addrs: %#x %#x, want 0x10008", instrs[1].MemAddr[0], instrs[2].MemAddr[0])
	}
	if !instrs[1].Demand.B[0].Stor || !instrs[2].Demand.B[0].Load {
		t.Fatal("load/store demand flags wrong")
	}
}

func TestNameConflictRejected(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	p1, _ := writeVXT(t, d1, "same.vxt", "idct", 50)
	p2, _ := writeVXT(t, d2, "same.vxt", "mcf", 50)
	s := New()
	if _, err := s.Load(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(p2); err == nil {
		t.Fatal("conflicting content under one name accepted")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeVXT(t, dir, "b.vxt", "idct", 60)
	writeVXT(t, dir, "a.vxt", "mcf", 40)
	if err := os.WriteFile(filepath.Join(dir, "c.vex"), []byte(loopVEX), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New()
	traces, err := s.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("loaded %d traces", len(traces))
	}
	want := []string{"a", "b", "c"}
	for i, tr := range traces {
		if tr.Name != want[i] {
			t.Fatalf("order: got %q at %d", tr.Name, i)
		}
	}
	if names := s.Names(); len(names) != 3 || names[0] != "a" {
		t.Fatalf("names: %v", names)
	}
	for _, ref := range s.Refs() {
		tr, ok := s.Resolve(ref)
		if !ok {
			t.Fatalf("ref %q does not resolve", ref)
		}
		if got, ok := s.Get(tr.Hash); !ok || got != tr {
			t.Fatalf("hash lookup failed for %q", ref)
		}
	}
	if _, ok := s.Resolve("a"); !ok {
		t.Fatal("bare name does not resolve")
	}
	if _, ok := s.Resolve("nope@0000"); ok {
		t.Fatal("bogus hash resolved")
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := New().LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestLoadBadFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.vxt")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New().Load(bad); err == nil {
		t.Fatal("garbage trace accepted")
	}
	empty := filepath.Join(dir, "empty.vxt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New().Load(empty); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestSplitRef(t *testing.T) {
	if n, h := SplitRef("name@abc"); n != "name" || h != "abc" {
		t.Fatalf("got %q %q", n, h)
	}
	if n, h := SplitRef("bare"); n != "bare" || h != "" {
		t.Fatalf("got %q %q", n, h)
	}
}

//go:build linux || darwin

package wstore

import (
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the bytes plus a release
// function. Mapping failures (empty files, exotic filesystems) fall back
// to a plain read; the caller cannot tell the difference.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		return readFallback(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return readFallback(path)
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}

// Package wstore is the content-addressed, load-once workload store behind
// the experiment grid's workload axis. Binary VXT1 traces are mmap'd (with
// a plain-read fallback) and decoded exactly once per process into an
// immutable flat []synth.TInst arena keyed by the sha256 of the file
// bytes; every concurrent cell and daemon job replays the same arena
// through zero-copy trace.Replayer cursors. VEX assembly programs enter
// the same store: they are assembled and executed through the functional
// machine once at load time, the executed instruction stream recorded as
// a trace, and from then on are indistinguishable from a loaded .vxt.
//
// Content addressing is what makes the workload axis safe to cache and to
// distribute: a cell's cache key folds in the workload's content hash, so
// two daemons only share results when they replay byte-identical inputs,
// and editing a trace file invalidates exactly the cells built on it.
package wstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
)

// Trace is one immutable decoded workload. The instruction arena is shared
// by every consumer — callers must never mutate the slice returned by
// Instrs or feed it to code that does.
type Trace struct {
	Name     string // workload name: the source file's base name sans extension
	Hash     string // sha256 hex of the source file bytes
	Clusters int
	instrs   []synth.TInst
}

// Len returns the trace length in instructions.
func (t *Trace) Len() int { return len(t.instrs) }

// Instrs exposes the shared arena. Read-only by contract.
func (t *Trace) Instrs() []synth.TInst { return t.instrs }

// Ref is the full workload identity, "name@sha256hex". It is what travels
// in experiment cells and cache keys: the name for humans, the hash for
// correctness.
func (t *Trace) Ref() string { return t.Name + "@" + t.Hash }

// NewReplayer returns a fresh zero-copy cursor over the shared arena.
func (t *Trace) NewReplayer() (*trace.Replayer, error) {
	return trace.NewReplayer(t.Name, t.instrs)
}

// SplitRef splits a "name@hash" workload reference. The hash part is empty
// when the reference carries only a name.
func SplitRef(ref string) (name, hash string) {
	if i := strings.LastIndexByte(ref, '@'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return ref, ""
}

// Store maps content hashes and workload names to decoded traces. The zero
// value is not usable; call New. Most callers want the process-global
// Shared store, which is what gives "decoded exactly once per process".
type Store struct {
	mu     sync.Mutex
	byHash map[string]*Trace
	byName map[string]*Trace
}

// New returns an empty store (tests use private stores; production code
// shares one).
func New() *Store {
	return &Store{byHash: map[string]*Trace{}, byName: map[string]*Trace{}}
}

var shared = New()

// Shared returns the process-global store.
func Shared() *Store { return shared }

// Get looks up a trace by content hash.
func (s *Store) Get(hash string) (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byHash[hash]
	return t, ok
}

// ByName looks up a trace by workload name.
func (s *Store) ByName(name string) (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byName[name]
	return t, ok
}

// Resolve looks up a trace by "name@hash" reference, by bare hash, or by
// bare name, in that order of authority.
func (s *Store) Resolve(ref string) (*Trace, bool) {
	name, hash := SplitRef(ref)
	if hash != "" {
		if t, ok := s.Get(hash); ok {
			return t, true
		}
		return nil, false
	}
	return s.ByName(name)
}

// Names returns the sorted workload names currently loaded.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byName))
	for n := range s.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Refs returns the sorted "name@hash" references currently loaded.
func (s *Store) Refs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byName))
	for _, t := range s.byName {
		out = append(out, t.Ref())
	}
	sort.Strings(out)
	return out
}

// Load reads, hashes, and decodes one workload file (.vxt trace or .vex
// program). The file bytes are mapped read-only when the platform allows
// it and copied otherwise; either way the mapping is released after the
// one-time decode. Loading the same content twice returns the already
// decoded trace without touching the decoder.
func (s *Store) Load(path string) (*Trace, error) {
	data, release, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("wstore: %w", err)
	}
	defer release()
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	name := workloadName(path)

	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.byHash[hash]; ok {
		// Decode-once: same content, possibly under a new name.
		if prev, clash := s.byName[name]; clash && prev.Hash != hash {
			return nil, fmt.Errorf("wstore: workload %q already loaded with different content (%s vs %s)",
				name, short(prev.Hash), short(hash))
		}
		s.byName[name] = t
		return t, nil
	}
	if prev, clash := s.byName[name]; clash && prev.Hash != hash {
		return nil, fmt.Errorf("wstore: workload %q already loaded with different content (%s vs %s)",
			name, short(prev.Hash), short(hash))
	}

	t, err := decode(name, path, data)
	if err != nil {
		return nil, err
	}
	t.Hash = hash
	s.byHash[hash] = t
	s.byName[name] = t
	return t, nil
}

// LoadDir loads every .vxt and .vex file in dir (sorted, deterministic)
// and returns the loaded traces in name order.
func (s *Store) LoadDir(dir string) ([]*Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wstore: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".vxt", ".vex":
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("wstore: no .vxt or .vex workloads in %s", dir)
	}
	sort.Strings(paths)
	out := make([]*Trace, 0, len(paths))
	for _, p := range paths {
		t, err := s.Load(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(p), err)
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func decode(name, path string, data []byte) (*Trace, error) {
	switch filepath.Ext(path) {
	case ".vex":
		instrs, clusters, err := recordVEX(data)
		if err != nil {
			return nil, fmt.Errorf("wstore: %s: %w", name, err)
		}
		return &Trace{Name: name, Clusters: clusters, instrs: instrs}, nil
	default:
		_, clusters, instrs, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("wstore: %s: %w", name, err)
		}
		if len(instrs) == 0 {
			return nil, fmt.Errorf("wstore: %s: empty trace", name)
		}
		if clusters > isa.MaxClusters {
			return nil, fmt.Errorf("wstore: %s: %d clusters exceeds maximum %d", name, clusters, isa.MaxClusters)
		}
		return &Trace{Name: name, Clusters: clusters, instrs: instrs}, nil
	}
}

func workloadName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

package wstore

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
)

// FuzzDecodeVXT runs arbitrary bytes through the .vxt arm of the
// workload-store decoder (the path every -workload-dir file takes on
// daemon startup): corrupt files must error, never panic, and accepted
// traces must be non-empty with an in-range cluster count.
func FuzzDecodeVXT(f *testing.F) {
	var seed bytes.Buffer
	in := synth.TInst{PC: 0x40, Size: 16}
	in.Demand.B[0] = isa.BundleDemand{Ops: 2, ALU: 1, Mem: 1, Stor: true}
	in.MemAddr[0] = 0x8000
	if err := trace.Write(&seed, "w", 1, []synth.TInst{in}); err != nil {
		f.Fatal(err)
	}
	valid := seed.Bytes()
	f.Add(valid)
	f.Add(valid[:7]) // truncated header
	empty := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(empty[7:11], 0) // name "w": count at offset 7
	f.Add(empty[:11])                             // zero instructions: decodes but must be rejected
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := decode("fuzz", "fuzz.vxt", data)
		if err != nil {
			return
		}
		if tr.Len() == 0 {
			t.Fatal("decoder accepted an empty trace")
		}
		if tr.Clusters <= 0 || tr.Clusters > isa.MaxClusters {
			t.Fatalf("decoder accepted cluster count %d", tr.Clusters)
		}
		if _, err := tr.NewReplayer(); err != nil {
			t.Fatalf("accepted trace cannot replay: %v", err)
		}
	})
}

//go:build !(linux || darwin)

package wstore

// mapFile on platforms without a memory-map path reads the file whole.
func mapFile(path string) ([]byte, func(), error) {
	return readFallback(path)
}

package wstore

import (
	"fmt"
	"os"

	"vexsmt/internal/asm"
	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
	"vexsmt/internal/vexmach"
)

// vexMaxSteps caps functional execution of a loaded VEX program. Workload
// programs are kernels, not applications; a million executed instructions
// is far beyond anything the assembler's immediate-driven loops express,
// so hitting the cap means a runaway (non-terminating) program.
const vexMaxSteps = 1 << 20

// vexBase is where loaded programs are linked, matching cmd/vexasm.
const vexBase = 0x1000

// recordVEX assembles src for the paper's 4-cluster machine, executes it
// once on the functional model, and records the executed instruction
// stream as trace input: per-cluster resource demands from the static
// bundles, taken/branch flags from the observed control flow, and memory
// addresses from the architectural registers at issue time. The recording
// is purely deterministic — same source bytes, same trace.
func recordVEX(src []byte) ([]synth.TInst, int, error) {
	geom := isa.ST200x4
	prog, err := asm.Assemble(geom, vexBase, string(src))
	if err != nil {
		return nil, 0, err
	}
	if len(prog.Instrs) == 0 {
		return nil, 0, fmt.Errorf("program has no instructions")
	}
	m := vexmach.MustNew(geom)
	m.SetPC(prog.Base)

	instrs := make([]synth.TInst, 0, len(prog.Instrs))
	for steps := 0; ; steps++ {
		idx, ok := prog.IndexOf(m.PC())
		if !ok {
			break // fell off the program: halt
		}
		if steps >= vexMaxSteps {
			return nil, 0, fmt.Errorf("program did not halt within %d steps", vexMaxSteps)
		}
		in := prog.Instrs[idx]
		var ti synth.TInst
		ti.Demand = isa.DemandOf(in)
		ti.PC = in.Addr
		ti.Size = in.Size
		fillMemAddrs(&ti, m, in, geom.Clusters)
		isBranch := hasBranch(in)
		if err := m.Exec(in); err != nil {
			return nil, 0, fmt.Errorf("pc=0x%x: %w", in.Addr, err)
		}
		ti.Taken = isBranch && m.PC() != in.Addr+uint64(in.Size)
		ti.IsBranch = isBranch
		instrs = append(instrs, ti)
	}
	if len(instrs) == 0 {
		return nil, 0, fmt.Errorf("program executed no instructions")
	}
	return instrs, geom.Clusters, nil
}

// fillMemAddrs records the effective address of each cluster's memory
// operation, computed exactly as the functional model will (base register
// plus offset, truncated to 32 bits), before the instruction commits.
func fillMemAddrs(ti *synth.TInst, m *vexmach.Machine, in *isa.Instruction, clusters int) {
	for c := 0; c < clusters; c++ {
		if ti.Demand.B[c].Mem == 0 {
			continue
		}
		for i := range in.Bundles[c] {
			op := &in.Bundles[c][i]
			if op.Op == isa.Ldw || op.Op == isa.Stw {
				ti.MemAddr[c] = uint64(uint32(m.Reg(c, op.Src1) + op.Imm))
				break
			}
		}
	}
}

// hasBranch reports whether the instruction contains a control-flow
// operation. Gotos count: the generator marks every control-transfer
// template as a branch, and the front-end models (static penalty vs
// modeled predictor) key off IsBranch, so an unconditional jump must be
// visible to both the same way.
func hasBranch(in *isa.Instruction) bool {
	for c := range in.Bundles {
		for i := range in.Bundles[c] {
			switch in.Bundles[c][i].Op {
			case isa.Br, isa.Brf, isa.Goto:
				return true
			}
		}
	}
	return false
}

func readFallback(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

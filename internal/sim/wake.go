package sim

import "vexsmt/internal/core"

// wakeQueue is the per-context wake-up event queue of the event-driven run
// loop: one computed wake-up cycle per hardware context, held in a fixed
// flat array. Every stall source is computable at the point it begins
// (DCache miss penalties, ICache fetch stalls, taken-branch penalties,
// timeslice waits, and — under interleaved multithreading — the wait for
// the context's next issue slot), so the loop asks the queue for the
// earliest wake-up and jumps straight to it.
//
// The queue is deliberately a flat array with a linear minimum scan, not a
// heap: the context count is at most core.MaxThreads (8), every entry can
// change on every simulated event, and an unordered fixed array makes
// set/park single stores and min() a handful of conditional moves — cheaper
// than maintaining any sorted invariant at this size, and allocation-free
// by construction.
type wakeQueue struct {
	n   int
	cyc [core.MaxThreads]int64
}

// reset sizes the queue for n contexts and parks them all at horizon.
func (q *wakeQueue) reset(n int, horizon int64) {
	q.n = n
	for t := 0; t < n; t++ {
		q.cyc[t] = horizon
	}
}

// set records context t's next wake-up cycle.
func (q *wakeQueue) set(t int, cycle int64) { q.cyc[t] = cycle }

// park removes context t from consideration until horizon (a context with
// no job, no instruction and no pending switch: only a timeslice boundary
// can make it runnable again, and jumps are capped there separately).
func (q *wakeQueue) park(t int, horizon int64) { q.cyc[t] = horizon }

// min returns the earliest wake-up cycle over all contexts.
func (q *wakeQueue) min() int64 {
	m := q.cyc[0]
	for t := 1; t < q.n; t++ {
		if c := q.cyc[t]; c < m {
			m = c
		}
	}
	return m
}

package sim

import (
	"testing"

	"vexsmt/internal/core"
)

// TestWakeQueueBasics pins the queue's semantics: reset parks everything at
// the horizon, set/park are per-context stores, and min scans all sized
// contexts (and only those).
func TestWakeQueueBasics(t *testing.T) {
	var q wakeQueue
	q.reset(4, 1000)
	if got := q.min(); got != 1000 {
		t.Fatalf("fresh queue min = %d, want horizon 1000", got)
	}
	q.set(2, 70)
	q.set(0, 90)
	if got := q.min(); got != 70 {
		t.Fatalf("min = %d, want 70", got)
	}
	q.park(2, 1000)
	if got := q.min(); got != 90 {
		t.Fatalf("min after park = %d, want 90", got)
	}
	// Entries beyond n must not leak into min: size down to 2 contexts
	// after planting an early wake-up in slot 3.
	q.set(3, 1)
	q.reset(2, 500)
	if got := q.min(); got != 500 {
		t.Fatalf("resized queue min = %d, want 500 (slot 3 out of range)", got)
	}
}

// TestNextEventCycleIMTSlotRounding checks the interleaved-mode refinement
// directly: a loaded, runnable context's wake-up rounds up to its own issue
// slot (cycles congruent to its index mod the context count), while an
// unloaded context keeps its exact stall expiry (ICache penalties are
// relative to the fetch cycle, so fetching later would change behavior).
func TestNextEventCycleIMTSlotRounding(t *testing.T) {
	cfg := testConfig(core.CCSI(core.CommAlwaysSplit), 4)
	cfg.Mode = ModeInterleaved
	m := mustMix(t, "hhhh")
	profs, err := m.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWorkload(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	s.beginRun()

	// Context 2 is the only live context: loaded and ready since cycle 0.
	// At cycle 5 its next issue slot is cycle 6 (6 mod 4 == 2).
	s.have, s.loaded = 1<<2, 1<<2
	for i := range s.ctxs {
		if i != 2 {
			s.ctxs[i].job = nil
		}
		s.ready[i] = 0
	}
	if got := s.nextEventCycle(5); got != 6 {
		t.Fatalf("loaded context slot rounding: next = %d, want 6", got)
	}
	// Stalled until cycle 8: first own slot at or after 8 is 10.
	s.ready[2] = 8
	if got := s.nextEventCycle(5); got != 10 {
		t.Fatalf("stalled loaded context: next = %d, want 10", got)
	}
	// Stalled across multiple rotations: 21 rounds up to 22.
	s.ready[2] = 21
	if got := s.nextEventCycle(5); got != 22 {
		t.Fatalf("multi-rotation stall: next = %d, want 22", got)
	}
	// Unloaded context: the wake-up is the exact stall expiry (a fetch
	// event), not a slot.
	s.loaded = 0
	s.ready[2] = 8
	if got := s.nextEventCycle(5); got != 8 {
		t.Fatalf("unloaded context: next = %d, want exact expiry 8", got)
	}
}

// TestFastForwardJumpZeroAllocsIMT pins zero allocations per fast-forward
// jump on the wake-up queue's target scenario: an interleaved machine with
// most contexts empty, where nearly every loop iteration is a queue rebuild
// followed by a multi-cycle jump.
func TestFastForwardJumpZeroAllocsIMT(t *testing.T) {
	cfg := testConfig(core.CCSI(core.CommAlwaysSplit), 8)
	cfg.Mode = ModeInterleaved
	m := mustMix(t, "llhh")
	profs, err := m.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWorkload(cfg, profs[:2])
	if err != nil {
		t.Fatal(err)
	}
	s.beginRun()
	cycle := int64(0)
	jumps := 0
	allocs := testing.AllocsPerRun(20_000, func() {
		s.expireTimeslice(cycle)
		if next := s.nextEventCycle(cycle); next > cycle {
			skip := next - cycle
			s.run.Cycles += skip
			s.run.EmptyCycles += skip
			s.eng.SkipCycles(skip)
			cycle = next
			jumps++
			return
		}
		s.fetchPhase(cycle)
		s.issuePhase(cycle, &s.st.res)
		s.commitPhase(cycle, &s.st.res)
		cycle += s.portStallCycles(&s.st.res) + 1
	})
	if allocs != 0 {
		t.Errorf("%.2f allocs per iteration, want 0", allocs)
	}
	if jumps == 0 {
		t.Error("mixed-runnability IMT run performed no jumps; scenario is not exercising the queue")
	}
}

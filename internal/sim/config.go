// Package sim is the cycle-level timing simulator of the paper's base
// architecture (Section IV) under all multithreading techniques: per-thread
// fetch with a shared ICache, the core issue engine (merging + split-issue),
// DCache load stalls with VEX less-than-or-equal semantics, taken-branch
// penalties, delayed-store memory-port stalls, the multitasking scheduler
// with 5M-cycle timeslices and random replacement, and benchmark respawn.
package sim

import (
	"fmt"

	"vexsmt/internal/bpred"
	"vexsmt/internal/cache"
	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/regfile"
)

// Mode selects the multithreading execution mode. The paper evaluates
// simultaneous issue (SMT-family); interleaved and blocked multithreading
// are implemented as ablation baselines from the introduction's taxonomy.
type Mode uint8

const (
	// ModeSimultaneous merges instructions from all ready threads every
	// cycle (the paper's machine).
	ModeSimultaneous Mode = iota
	// ModeInterleaved issues from one thread per cycle, rotating each cycle
	// (IMT; removes only vertical waste).
	ModeInterleaved
	// ModeBlocked runs one thread until it stalls, then switches (BMT).
	ModeBlocked
)

func (m Mode) String() string {
	switch m {
	case ModeInterleaved:
		return "IMT"
	case ModeBlocked:
		return "BMT"
	}
	return "SMT"
}

// Config is a full machine + experiment configuration.
type Config struct {
	Geom            isa.Geometry
	Threads         int            // hardware thread contexts
	Tech            core.Technique // merging/split-issue technique
	Mode            Mode
	RFOrg           regfile.Org
	ClusterRenaming bool

	ICache        cache.Config
	DCache        cache.Config
	PerfectMemory bool // no cache misses anywhere (IPCp runs)

	TakenBranchPenalty int

	// Predictor names the branch-predictor model (internal/bpred). "" and
	// "static" both select the paper's fixed front end and keep the legacy
	// taken-branch-penalty path byte-for-byte: penalties, counters, and
	// exports are untouched. Any other model charges TakenBranchPenalty on
	// mispredicts (either direction) instead of on every taken branch.
	Predictor string

	// Scheduling (Section VI-A): timeslice length in cycles; 0 disables
	// multitasking (all jobs must fit the hardware contexts).
	TimesliceCycles int64

	// Termination: run until one job has executed LimitInstrs VLIW
	// instructions. ScaleDiv divides the paper-scale benchmark lengths and
	// the paper-scale limit (200M) and timeslice (5M); ScaleDiv 1 is paper
	// scale.
	LimitInstrs int64
	ScaleDiv    int64

	// WarmupInstrs runs this many VLIW instructions before statistics
	// collection begins (caches stay warm, counters reset). Scaled-down
	// runs need this to avoid cold-start bias that the paper's 200M-
	// instruction runs do not suffer.
	WarmupInstrs int64

	// MaxCycles is a runaway guard; 0 picks a generous default.
	MaxCycles int64

	// ReferenceLoop disables the event-driven fast path (stall
	// fast-forwarding and batched trace prefetch) and runs the original
	// one-iteration-per-cycle loop with per-instruction fetch. Completed
	// runs are bit-identical either way; the flag exists so the
	// differential tests in internal/cosim can machine-check that claim.
	// It is not part of the experiment identity and must never influence
	// result cache keys.
	ReferenceLoop bool

	Seed uint64
}

// paper-scale constants (Section VI-A).
const (
	PaperLimitInstrs     = 200_000_000
	PaperTimesliceCycles = 5_000_000
)

// DefaultConfig returns the paper's base machine at 1/100 scale: 16-issue
// 4-cluster ST200-like geometry, 64KB 4-way caches with 20-cycle miss
// penalty, partitioned register file, cluster renaming on, round-robin
// priorities, 2M-instruction limit and 50K-cycle timeslices.
func DefaultConfig(tech core.Technique, threads int) Config {
	const scale = 100
	return Config{
		Geom:               isa.ST200x4,
		Threads:            threads,
		Tech:               tech,
		Mode:               ModeSimultaneous,
		RFOrg:              regfile.Partitioned,
		ClusterRenaming:    true,
		ICache:             cache.Paper64KB4Way,
		DCache:             cache.Paper64KB4Way,
		TakenBranchPenalty: 1,
		TimesliceCycles:    PaperTimesliceCycles / scale,
		LimitInstrs:        PaperLimitInstrs / scale,
		WarmupInstrs:       PaperLimitInstrs / scale / 10,
		ScaleDiv:           scale,
		Seed:               1,
	}
}

// WithScale rescales the limit and timeslice to a new divisor of paper
// scale.
func (c Config) WithScale(div int64) Config {
	if div < 1 {
		div = 1
	}
	c.ScaleDiv = div
	c.LimitInstrs = PaperLimitInstrs / div
	c.TimesliceCycles = PaperTimesliceCycles / div
	c.WarmupInstrs = c.LimitInstrs / 10
	return c
}

// Validate checks configuration consistency, including the paper's
// shared-RF/split-issue incompatibility.
func (c Config) Validate() error {
	if err := c.Geom.Validate(); err != nil {
		return err
	}
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	if c.Threads <= 0 || c.Threads > core.MaxThreads {
		return fmt.Errorf("sim: thread count %d out of range", c.Threads)
	}
	if err := regfile.CheckSplitCompat(c.RFOrg, c.Tech.Split != core.SplitNone); err != nil {
		return err
	}
	if !c.PerfectMemory {
		if err := c.ICache.Validate(); err != nil {
			return fmt.Errorf("sim: icache: %w", err)
		}
		if err := c.DCache.Validate(); err != nil {
			return fmt.Errorf("sim: dcache: %w", err)
		}
	}
	if c.LimitInstrs <= 0 {
		return fmt.Errorf("sim: LimitInstrs must be positive")
	}
	if c.TakenBranchPenalty < 0 {
		return fmt.Errorf("sim: negative branch penalty")
	}
	if _, err := bpred.Canonical(c.Predictor); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

package sim

import (
	"vexsmt/internal/core"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
)

// SingleThreadConfig returns the configuration for the Figure 13(a)
// single-thread measurements: one context, no multitasking, technique
// irrelevant (nothing to merge with).
func SingleThreadConfig(perfectMemory bool, scaleDiv int64) Config {
	cfg := DefaultConfig(core.SMT(), 1).WithScale(scaleDiv)
	cfg.PerfectMemory = perfectMemory
	cfg.TimesliceCycles = 0 // single job, no multitasking needed
	return cfg
}

// RunSingle measures one benchmark on the single-thread machine; it runs
// min(LimitInstrs, one full benchmark length) instructions.
func RunSingle(prof synth.Profile, perfectMemory bool, scaleDiv int64) (*stats.Run, error) {
	cfg := SingleThreadConfig(perfectMemory, scaleDiv)
	gen, err := synth.NewGenerator(prof, cfg.Geom)
	if err != nil {
		return nil, err
	}
	job := NewJob(gen, cfg.ScaleDiv)
	if job.remaining < cfg.LimitInstrs {
		cfg.LimitInstrs = job.remaining
		cfg.WarmupInstrs = cfg.LimitInstrs / 10
	}
	// Cover at least one full pass over the benchmark's code so compulsory
	// ICache misses do not distort the scaled-down measurement.
	if wrap := gen.CodeCycleInstrs() * 5 / 4; wrap > cfg.WarmupInstrs {
		cfg.WarmupInstrs = wrap
		if max := cfg.LimitInstrs / 2; cfg.WarmupInstrs > max {
			cfg.WarmupInstrs = max
		}
	}
	s, err := New(cfg, []*Job{job})
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// MeasuredIPC reports a benchmark's simulated IPCr and IPCp at the given
// scale (the reproduction of one Figure 13(a) row).
func MeasuredIPC(prof synth.Profile, scaleDiv int64) (ipcr, ipcp float64, err error) {
	real, err := RunSingle(prof, false, scaleDiv)
	if err != nil {
		return 0, 0, err
	}
	perfect, err := RunSingle(prof, true, scaleDiv)
	if err != nil {
		return 0, 0, err
	}
	return real.IPC(), perfect.IPC(), nil
}

package sim

import (
	"strings"
	"testing"

	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/regfile"
	"vexsmt/internal/synth"
	"vexsmt/internal/workload"
)

const testScale = 2000 // 100K-instruction runs: fast but stable enough for coarse checks

func testConfig(tech core.Technique, threads int) Config {
	cfg := DefaultConfig(tech, threads).WithScale(testScale)
	return cfg
}

func mustMix(t *testing.T, label string) workload.Mix {
	t.Helper()
	m, err := workload.MixByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runMix(t *testing.T, label string, tech core.Technique, threads int) *Simulator {
	t.Helper()
	cfg := testConfig(tech, threads)
	m := mustMix(t, label)
	profs, err := m.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWorkload(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(core.SMT(), 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Threads = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	bad = good
	bad.Tech = core.Technique{Merge: core.MergeCluster, Split: core.SplitOperation}
	if err := bad.Validate(); err == nil {
		t.Error("ruled-out technique accepted")
	}
	bad = good
	bad.LimitInstrs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero instruction limit accepted")
	}
	// Paper Section V-C: shared RF forbids split-issue.
	bad = testConfig(core.CCSI(core.CommNoSplit), 4)
	bad.RFOrg = regfile.Shared
	if err := bad.Validate(); err == nil {
		t.Error("shared RF accepted with split-issue")
	}
	okShared := testConfig(core.SMT(), 4)
	okShared.RFOrg = regfile.Shared
	if err := okShared.Validate(); err != nil {
		t.Errorf("shared RF rejected without split-issue: %v", err)
	}
}

func TestNewRejectsJobOverflowWithoutTimeslicing(t *testing.T) {
	cfg := testConfig(core.SMT(), 2)
	cfg.TimesliceCycles = 0
	prof, _ := synth.ByName("gsmencode")
	jobs := []*Job{
		NewJob(synth.MustNewGenerator(prof, cfg.Geom), cfg.ScaleDiv),
		NewJob(synth.MustNewGenerator(prof, cfg.Geom), cfg.ScaleDiv),
		NewJob(synth.MustNewGenerator(prof, cfg.Geom), cfg.ScaleDiv),
	}
	if _, err := New(cfg, jobs); err == nil {
		t.Fatal("3 jobs on 2 contexts without multitasking accepted")
	}
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("no jobs accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := runMix(t, "llmm", core.CCSI(core.CommAlwaysSplit), 2)
	b := runMix(t, "llmm", core.CCSI(core.CommAlwaysSplit), 2)
	ra, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if *ra != *rb {
		t.Fatalf("same config, different results:\n%+v\n%+v", ra, rb)
	}
}

func TestRunReachesInstructionLimit(t *testing.T) {
	s := runMix(t, "mmmm", core.SMT(), 4)
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Instrs < s.cfg.LimitInstrs {
		t.Fatalf("completed %d instrs, limit %d", r.Instrs, s.cfg.LimitInstrs)
	}
	if r.Cycles <= 0 || r.Ops <= 0 {
		t.Fatalf("degenerate run: %+v", r)
	}
	if r.IPC() <= 0 || r.IPC() > float64(s.cfg.Geom.TotalIssueWidth()) {
		t.Fatalf("impossible IPC %v", r.IPC())
	}
}

func TestMoreThreadsMoreThroughput(t *testing.T) {
	// 4 hardware contexts must outperform 2 which must outperform 1 on the
	// same multiprogrammed workload (the premise of the whole paper).
	var ipc [3]float64
	for i, threads := range []int{1, 2, 4} {
		s := runMix(t, "llhh", core.SMT(), threads)
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		ipc[i] = r.IPC()
	}
	if !(ipc[0] < ipc[1] && ipc[1] < ipc[2]) {
		t.Fatalf("IPC not increasing with threads: %v", ipc)
	}
}

func TestSMTBeatsCSMT(t *testing.T) {
	// Operation-level merging dominates cluster-level merging (Figure 16).
	smt, err := runMix(t, "hhhh", core.SMT(), 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	csmt, err := runMix(t, "hhhh", core.CSMT(), 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	if smt.IPC() <= csmt.IPC() {
		t.Fatalf("SMT %.3f <= CSMT %.3f", smt.IPC(), csmt.IPC())
	}
}

func TestSplitIssueImprovesThroughput(t *testing.T) {
	// The headline result: CCSI beats CSMT on 4 threads (Figure 14).
	base, err := runMix(t, "mmhh", core.CSMT(), 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	ccsi, err := runMix(t, "mmhh", core.CCSI(core.CommAlwaysSplit), 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ccsi.IPC() <= base.IPC() {
		t.Fatalf("CCSI %.3f <= CSMT %.3f", ccsi.IPC(), base.IPC())
	}
	if ccsi.SplitInstrs == 0 {
		t.Fatal("CCSI run recorded no split instructions")
	}
	if base.SplitInstrs != 0 {
		t.Fatal("CSMT run recorded split instructions")
	}
}

func TestNoSplitInstrsWithoutSplitIssue(t *testing.T) {
	for _, tech := range []core.Technique{core.SMT(), core.CSMT()} {
		r, err := runMix(t, "llmh", tech, 4).Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.SplitInstrs != 0 {
			t.Fatalf("%s: %d split instrs", tech.Name(), r.SplitInstrs)
		}
		if r.MemPortStallCycles != 0 {
			t.Fatalf("%s: %d port stalls without delayed stores", tech.Name(), r.MemPortStallCycles)
		}
	}
}

func TestPerfectMemoryNoCacheStats(t *testing.T) {
	cfg := testConfig(core.SMT(), 2)
	cfg.PerfectMemory = true
	m := mustMix(t, "llll")
	profs, _ := m.Profiles()
	s, err := NewWorkload(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.ICacheAccesses != 0 || r.DCacheAccesses != 0 ||
		r.MemStallCycles != 0 || r.FetchStallCycles != 0 {
		t.Fatalf("perfect memory produced cache traffic: %+v", r)
	}
	// Perfect memory must beat real memory.
	real, err := runMix(t, "llll", core.SMT(), 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= real.IPC() {
		t.Fatalf("perfect IPC %.3f <= real IPC %.3f", r.IPC(), real.IPC())
	}
}

func TestContextSwitchingHappens(t *testing.T) {
	// 2 contexts, 4 jobs: the scheduler must rotate jobs in.
	r, err := runMix(t, "llmh", core.SMT(), 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.ContextSwitches == 0 {
		t.Fatal("no context switches in a 4-job 2-context run")
	}
}

func TestRespawnHappens(t *testing.T) {
	// djpeg is 30M instrs at paper scale; at 1/2000 it is 15K, far below the
	// 100K limit, so it must respawn.
	cfg := testConfig(core.SMT(), 1)
	cfg.TimesliceCycles = 0
	prof, _ := synth.ByName("djpeg")
	s, err := NewWorkload(cfg, []synth.Profile{prof})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Respawns == 0 {
		t.Fatal("short benchmark did not respawn")
	}
}

func TestBranchAndMemStallsAccounted(t *testing.T) {
	r, err := runMix(t, "llll", core.SMT(), 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.BranchStallCycles == 0 {
		t.Error("no branch penalty cycles on branchy workload")
	}
	if r.MemStallCycles == 0 {
		t.Error("no memory stalls on cache-missing workload")
	}
	if r.DCacheMisses == 0 || r.ICacheAccesses == 0 {
		t.Error("cache counters empty")
	}
}

func TestSingleThreadTechniqueIrrelevant(t *testing.T) {
	// On one hardware context the technique must not matter.
	prof, _ := synth.ByName("cjpeg")
	var ipcs []float64
	for _, tech := range core.AllTechniques() {
		cfg := testConfig(tech, 1)
		cfg.TimesliceCycles = 0
		s, err := NewWorkload(cfg, []synth.Profile{prof})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		ipcs = append(ipcs, r.IPC())
	}
	for i := 1; i < len(ipcs); i++ {
		if ipcs[i] != ipcs[0] {
			t.Fatalf("technique changed single-thread IPC: %v", ipcs)
		}
	}
}

func TestIMTAndBMTModes(t *testing.T) {
	// IMT and BMT remove only vertical waste, so SMT must beat both, and
	// both must beat single-threaded on a stall-heavy workload.
	get := func(mode Mode, threads int) float64 {
		cfg := testConfig(core.SMT(), threads)
		cfg.Mode = mode
		m := mustMix(t, "llhh")
		profs, _ := m.Profiles()
		s, err := NewWorkload(cfg, profs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.IPC()
	}
	single := get(ModeSimultaneous, 1)
	imt := get(ModeInterleaved, 4)
	bmt := get(ModeBlocked, 4)
	smt := get(ModeSimultaneous, 4)
	if !(smt > imt) {
		t.Errorf("SMT %.3f not above IMT %.3f", smt, imt)
	}
	if !(smt > bmt) {
		t.Errorf("SMT %.3f not above BMT %.3f", smt, bmt)
	}
	if !(imt > single) {
		t.Errorf("IMT %.3f not above single-thread %.3f", imt, single)
	}
	if !(bmt > single) {
		t.Errorf("BMT %.3f not above single-thread %.3f", bmt, single)
	}
}

func TestClusterRenamingHelps(t *testing.T) {
	// The renaming ablation: without renaming all threads pile onto the
	// same clusters and CSMT merging collapses (the CSMT paper's result).
	on := runMix(t, "llmm", core.CSMT(), 4)
	roff := testConfig(core.CSMT(), 4)
	roff.ClusterRenaming = false
	m := mustMix(t, "llmm")
	profs, _ := m.Profiles()
	soff, err := NewWorkload(roff, profs)
	if err != nil {
		t.Fatal(err)
	}
	ron, err := on.Run()
	if err != nil {
		t.Fatal(err)
	}
	roffRun, err := soff.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ron.IPC() <= roffRun.IPC() {
		t.Fatalf("renaming on %.3f <= off %.3f", ron.IPC(), roffRun.IPC())
	}
}

func TestMeasuredIPCSanity(t *testing.T) {
	prof, _ := synth.ByName("gsmencode")
	ipcr, ipcp, err := MeasuredIPC(prof, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if ipcr <= 0 || ipcp < ipcr {
		t.Fatalf("IPCr %.3f IPCp %.3f", ipcr, ipcp)
	}
}

func TestWarmupDiscardsCounters(t *testing.T) {
	cfg := testConfig(core.SMT(), 2)
	cfg.WarmupInstrs = cfg.LimitInstrs / 2
	m := mustMix(t, "mmmm")
	profs, _ := m.Profiles()
	s, err := NewWorkload(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// After warmup reset, we still need LimitInstrs *post-warmup*.
	if r.Instrs < cfg.LimitInstrs {
		t.Fatalf("instrs %d below limit %d", r.Instrs, cfg.LimitInstrs)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := testConfig(core.SMT(), 2)
	cfg.MaxCycles = 100 // absurdly small
	cfg.WarmupInstrs = 0
	m := mustMix(t, "mmmm")
	profs, _ := m.Profiles()
	s, err := NewWorkload(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("runaway guard did not fire")
	} else if !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRotateHelper(t *testing.T) {
	var ti synth.TInst
	ti.Demand.B[0] = isa.BundleDemand{Ops: 2, ALU: 2}
	ti.Demand.B[1] = isa.BundleDemand{Ops: 1, Mem: 1, Load: true}
	ti.MemAddr[1] = 0xBEEF
	var out synth.TInst
	rotateInto(&out, &ti, 2, 4)
	if out.Demand.B[2].Ops != 2 || out.Demand.B[3].Mem != 1 {
		t.Fatalf("demand not rotated: %+v", out.Demand)
	}
	if out.MemAddr[3] != 0xBEEF || out.MemAddr[1] != 0 {
		t.Fatalf("addresses not rotated with demand: %v", out.MemAddr)
	}
	var same synth.TInst
	rotateInto(&same, &ti, 0, 4)
	if same != ti {
		t.Fatal("zero rotation changed instruction")
	}
}

package sim

import (
	"testing"

	"vexsmt/internal/core"
)

// TestPhasesZeroAllocs pins the zero-allocation contract of the run loop:
// once a simulator exists, the per-cycle phase functions — fetch (with
// batched trace prefetch, respawns and context switches), issue (engine
// scratch reuse) and commit (cache accounting and retirement) — must
// never touch the heap. This is what keeps thousands of concurrent cell
// simulations from fighting the garbage collector.
func TestPhasesZeroAllocs(t *testing.T) {
	for _, tech := range []core.Technique{core.CCSI(core.CommAlwaysSplit), core.SMT(), core.OOSI(core.CommNoSplit)} {
		s := runMix(t, "mmhh", tech, 4)
		s.beginRun()
		cycle := int64(0)
		allocs := testing.AllocsPerRun(20_000, func() {
			s.expireTimeslice(cycle)
			s.fetchPhase(cycle)
			s.issuePhase(cycle, &s.st.res)
			s.commitPhase(cycle, &s.st.res)
			cycle += s.portStallCycles(&s.st.res) + 1
		})
		if allocs != 0 {
			t.Errorf("%s: %.2f allocs per simulated cycle, want 0", tech.Name(), allocs)
		}
	}
}

// TestFastForwardZeroAllocs covers the stall fast-forward path of the
// event-driven loop.
func TestFastForwardZeroAllocs(t *testing.T) {
	s := runMix(t, "llmm", core.CSMT(), 2)
	s.beginRun()
	cycle := int64(0)
	allocs := testing.AllocsPerRun(20_000, func() {
		if next := s.nextEventCycle(cycle); next > cycle {
			skip := next - cycle
			s.run.Cycles += skip
			s.run.EmptyCycles += skip
			s.eng.SkipCycles(skip)
			cycle = next
			return
		}
		s.fetchPhase(cycle)
		s.issuePhase(cycle, &s.st.res)
		s.commitPhase(cycle, &s.st.res)
		cycle += s.portStallCycles(&s.st.res) + 1
	})
	if allocs != 0 {
		t.Errorf("%.2f allocs per simulated cycle, want 0", allocs)
	}
}

// TestRunZeroAllocsSteadyState measures a whole Run after a first warm
// run: construction aside, repeated runs reuse every buffer.
func TestRunZeroAllocsSteadyState(t *testing.T) {
	s := runMix(t, "llhh", core.COSI(core.CommAlwaysSplit), 4)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Run allocated %.1f per run, want 0", allocs)
	}
}

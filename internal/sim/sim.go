package sim

import (
	"fmt"

	"vexsmt/internal/cache"
	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
)

// Job is one software thread of the workload: a benchmark instance that
// respawns when it runs to completion (Section VI-A).
type Job struct {
	Stream    synth.Stream
	Executed  int64 // cumulative VLIW instructions (drives termination)
	remaining int64 // instructions left in the current spawn
	variant   uint64
}

// NewJob wraps a stream; scaleDiv scales the benchmark length.
func NewJob(s synth.Stream, scaleDiv int64) *Job {
	return &Job{Stream: s, remaining: s.Length(scaleDiv)}
}

// ctx is one hardware thread context.
type ctx struct {
	job        *Job
	ti         synth.TInst // current instruction, cluster-renamed
	haveInstr  bool
	loaded     bool
	wasSplit   bool
	ready      int64 // cycle at which the context may fetch/issue again
	wantSwitch bool
	rotation   int
}

// Simulator runs one configuration over one workload.
type Simulator struct {
	cfg  Config
	eng  *core.Engine
	ic   *cache.Cache
	dc   *cache.Cache
	jobs []*Job
	ctxs []ctx
	r    *rng.Rand
	run  stats.Run

	bmtCur      int
	switchCount uint64
}

// New builds a simulator over the given jobs. Jobs beyond the hardware
// context count wait and enter at context switches.
func New(cfg Config, jobs []*Job) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sim: no jobs")
	}
	if cfg.TimesliceCycles <= 0 && len(jobs) > cfg.Threads {
		return nil, fmt.Errorf("sim: %d jobs exceed %d contexts and multitasking is disabled",
			len(jobs), cfg.Threads)
	}
	eng, err := core.NewEngine(cfg.Geom, cfg.Tech, cfg.Threads)
	if err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, eng: eng, jobs: jobs, r: rng.New(cfg.Seed)}
	if !cfg.PerfectMemory {
		if s.ic, err = cache.New(cfg.ICache); err != nil {
			return nil, err
		}
		if s.dc, err = cache.New(cfg.DCache); err != nil {
			return nil, err
		}
	}
	s.ctxs = make([]ctx, cfg.Threads)
	for t := range s.ctxs {
		if t < len(jobs) {
			s.ctxs[t].job = jobs[t]
		}
		if cfg.ClusterRenaming {
			s.ctxs[t].rotation = core.RenameRotation(t, cfg.Geom.Clusters, cfg.Threads)
		}
	}
	return s, nil
}

// NewWorkload builds jobs from benchmark profiles and a simulator over
// them; each job's generator is independently seeded.
func NewWorkload(cfg Config, profiles []synth.Profile) (*Simulator, error) {
	jobs := make([]*Job, len(profiles))
	for i, p := range profiles {
		p.Seed ^= cfg.Seed * 0x9E3779B97F4A7C15
		gen, err := synth.NewGenerator(p, cfg.Geom)
		if err != nil {
			return nil, err
		}
		jobs[i] = NewJob(gen, cfg.ScaleDiv)
	}
	return New(cfg, jobs)
}

// Run executes the experiment and returns the counters.
func (s *Simulator) Run() (*stats.Run, error) {
	cfg := &s.cfg
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = cfg.LimitInstrs*64 + 10_000_000
	}
	sliceEnd := cfg.TimesliceCycles
	var ready [core.MaxThreads]bool
	warming := cfg.WarmupInstrs > 0

	for cycle := int64(0); ; cycle++ {
		// End of warmup: discard counters, keep caches and pipeline state.
		if warming && s.run.Instrs >= cfg.WarmupInstrs {
			warming = false
			s.run = stats.Run{}
			for _, j := range s.jobs {
				j.Executed = 0
			}
		}
		if cycle >= maxCycles {
			s.finish(cycle)
			return &s.run, fmt.Errorf("sim: exceeded %d cycles without reaching the instruction limit", maxCycles)
		}
		// Timeslice expiry: mark every context for replacement; switches
		// happen at each context's next instruction boundary.
		if cfg.TimesliceCycles > 0 && cycle >= sliceEnd {
			for t := range s.ctxs {
				s.ctxs[t].wantSwitch = true
			}
			sliceEnd += cfg.TimesliceCycles
		}

		// Fetch stage.
		for t := range s.ctxs {
			s.fetch(t, cycle)
		}

		// Issue stage.
		anyActive := false
		for t := range s.ctxs {
			ready[t] = s.ctxs[t].loaded && cycle >= s.ctxs[t].ready
			if ready[t] {
				anyActive = true
			}
		}
		s.applyMode(cycle, &ready)
		res := s.eng.Cycle(&ready)

		// Statistics and per-thread consequences.
		s.run.Cycles++
		if res.Ops == 0 {
			s.run.EmptyCycles++
		} else {
			s.run.Ops += int64(res.Ops)
		}
		if res.Threads >= 2 {
			s.run.MergedCycles++
		}
		done := false
		for t := range s.ctxs {
			tr := res.Thread[t]
			if tr.Ops == 0 {
				continue
			}
			c := &s.ctxs[t]
			if tr.Split {
				c.wasSplit = true
			}
			// DCache: loads access at issue time and stall the thread on a
			// miss (VEX less-than-or-equal semantics).
			if tr.LoadsAt != 0 && !cfg.PerfectMemory {
				for cl := 0; cl < cfg.Geom.Clusters; cl++ {
					if tr.LoadsAt&(1<<uint(cl)) == 0 {
						continue
					}
					s.run.DCacheAccesses++
					if !s.dc.Access(c.ti.MemAddr[cl]) {
						s.run.DCacheMisses++
						pen := int64(cfg.DCache.MissPenalty)
						if nr := cycle + 1 + pen; nr > c.ready {
							s.run.MemStallCycles += pen
							c.ready = nr
						}
					}
				}
			}
			if tr.LastPart {
				if c.wasSplit {
					s.run.SplitInstrs++
					c.wasSplit = false
				}
				// Stores commit at the last part (directly or from the
				// delay buffers); account their cache accesses here.
				if !cfg.PerfectMemory {
					for cl := 0; cl < cfg.Geom.Clusters; cl++ {
						if c.ti.Demand.B[cl].Stor {
							s.run.DCacheAccesses++
							if !s.dc.Access(c.ti.MemAddr[cl]) {
								s.run.DCacheMisses++ // write-allocate, no stall
							}
						}
					}
				}
				s.run.Instrs++
				c.job.Executed++
				c.job.remaining--
				c.haveInstr = false
				c.loaded = false
				if c.ti.Taken {
					pen := int64(cfg.TakenBranchPenalty)
					if nr := cycle + 1 + pen; nr > c.ready {
						s.run.BranchStallCycles += pen
						c.ready = nr
					}
				}
				if c.job.Executed >= cfg.LimitInstrs {
					done = true
				}
			}
		}

		// Delayed-store memory port contention stalls the whole pipeline
		// (Section V-D, Figure 11).
		if over := res.MemPortOverflow(cfg.Geom); over > 0 {
			s.run.Cycles += int64(over)
			s.run.EmptyCycles += int64(over)
			s.run.MemPortStallCycles += int64(over)
			cycle += int64(over)
		}

		if done {
			s.finish(cycle + 1)
			return &s.run, nil
		}
		_ = anyActive
	}
}

// fetch advances one context's front end: context switches at instruction
// boundaries, respawn, ICache access, and engine load.
func (s *Simulator) fetch(t int, cycle int64) {
	cfg := &s.cfg
	c := &s.ctxs[t]
	if c.haveInstr && !c.loaded && cycle >= c.ready {
		s.eng.Load(t, c.ti.Demand)
		c.loaded = true
		return
	}
	if c.haveInstr {
		return
	}
	if cycle < c.ready {
		return
	}
	if c.wantSwitch {
		s.contextSwitch(t)
		c.wantSwitch = false
	}
	if c.job == nil {
		return
	}
	// Respawn a completed benchmark (Section VI-A).
	if c.job.remaining <= 0 {
		c.job.variant++
		c.job.Stream.Reset(c.job.variant)
		c.job.remaining = c.job.Stream.Length(cfg.ScaleDiv)
		s.run.Respawns++
	}
	var raw synth.TInst
	c.job.Stream.Next(&raw)
	c.ti = rotate(&raw, c.rotation, cfg.Geom.Clusters)
	c.haveInstr = true
	if !cfg.PerfectMemory {
		s.run.ICacheAccesses++
		if pen := s.ic.AccessPenalty(raw.PC); pen > 0 {
			s.run.ICacheMisses++
			s.run.FetchStallCycles += int64(pen)
			c.ready = cycle + int64(pen)
			return
		}
	}
	s.eng.Load(t, c.ti.Demand)
	c.loaded = true
}

// contextSwitch replaces the context's job with a randomly chosen waiting
// job ("replacement threads are picked at random from the workload").
func (s *Simulator) contextSwitch(t int) {
	waiting := make([]*Job, 0, len(s.jobs))
	runningSet := make(map[*Job]bool, len(s.ctxs))
	for i := range s.ctxs {
		if s.ctxs[i].job != nil {
			runningSet[s.ctxs[i].job] = true
		}
	}
	for _, j := range s.jobs {
		if !runningSet[j] {
			waiting = append(waiting, j)
		}
	}
	if len(waiting) == 0 {
		return // pool fits the contexts; keep running the same job
	}
	// Common random numbers: the pick depends only on (seed, switch index),
	// so different techniques see the same replacement schedule and their
	// IPC comparison is paired, which the small-scale runs need for
	// stability. (Paper-scale runs are long enough not to care.)
	s.switchCount++
	pick := rng.New(s.cfg.Seed*0x5851f42d + s.switchCount).Intn(len(waiting))
	s.ctxs[t].job = waiting[pick]
	s.run.ContextSwitches++
}

// applyMode restricts the ready mask for the IMT/BMT ablation modes.
func (s *Simulator) applyMode(cycle int64, ready *[core.MaxThreads]bool) {
	switch s.cfg.Mode {
	case ModeInterleaved:
		pick := int(cycle % int64(s.cfg.Threads))
		for t := range s.ctxs {
			if t != pick {
				ready[t] = false
			}
		}
	case ModeBlocked:
		// Stay on the current thread while it is ready; otherwise rotate to
		// the next ready one.
		if !ready[s.bmtCur] {
			for i := 1; i <= s.cfg.Threads; i++ {
				cand := (s.bmtCur + i) % s.cfg.Threads
				if ready[cand] {
					s.bmtCur = cand
					break
				}
			}
		}
		for t := range s.ctxs {
			if t != s.bmtCur {
				ready[t] = false
			}
		}
	}
}

func (s *Simulator) finish(cycles int64) {
	s.run.IssueSlots = s.run.Cycles * int64(s.cfg.Geom.TotalIssueWidth())
	_ = cycles
}

// rotate applies cluster renaming to a fetched instruction: demand and
// per-cluster memory addresses move together.
func rotate(ti *synth.TInst, by, clusters int) synth.TInst {
	out := *ti
	if by == 0 {
		return out
	}
	out.Demand = ti.Demand.Rotate(by, clusters)
	for c := 0; c < clusters; c++ {
		out.MemAddr[(c+by)%clusters] = ti.MemAddr[c]
	}
	for c := clusters; c < isa.MaxClusters; c++ {
		out.MemAddr[c] = ti.MemAddr[c]
	}
	return out
}

package sim

import (
	"fmt"

	"vexsmt/internal/bpred"
	"vexsmt/internal/cache"
	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
)

// fetchBatch is how many instructions a job prefetches from its stream per
// refill; the sizing rationale lives with the generator (synth.BatchSize).
const fetchBatch = synth.BatchSize

// Job is one software thread of the workload: a benchmark instance that
// respawns when it runs to completion (Section VI-A).
type Job struct {
	Stream    synth.Stream
	Executed  int64 // cumulative VLIW instructions (drives termination)
	remaining int64 // instructions left in the current spawn
	variant   uint64

	// Prefetch buffer: raw (un-renamed) instructions drawn from Stream in
	// fetchBatch runs. The buffer travels with the job across context
	// switches; renaming is applied per-context at consumption time.
	buf       []synth.TInst
	bufPos    int
	drawsLeft int64 // instructions left to draw from Stream this spawn
}

// NewJob wraps a stream; scaleDiv scales the benchmark length.
func NewJob(s synth.Stream, scaleDiv int64) *Job {
	n := s.Length(scaleDiv)
	return &Job{Stream: s, remaining: n, drawsLeft: n}
}

// ctx is one hardware thread context's boxed state: the job it runs and
// its in-flight instruction. The context's scheduling state — wake-up
// cycle and pipeline condition flags — lives in flat struct-of-arrays on
// the Simulator (ready, and the have/loaded/wantSw/wasSplit bitmasks), so
// the per-cycle paths evaluate whole-machine conditions with bitwise
// operations instead of walking per-context structs with bool fields.
type ctx struct {
	job      *Job
	ti       synth.TInst // current instruction, cluster-renamed
	rotation int
}

// Simulator runs one configuration over one workload. A Simulator owns all
// of its mutable state — engine, caches, contexts, scratch buffers — so
// independent simulators can run on concurrent goroutines without
// synchronization. The run loop itself lives in run.go, split into
// fetch/issue/commit phases.
type Simulator struct {
	cfg  Config
	eng  *core.Engine
	ic   *cache.Cache
	dc   *cache.Cache
	jobs []*Job
	ctxs []ctx
	r    *rng.Rand
	run  stats.Run

	// preds holds one predictor per hardware context, or nil when the
	// configuration models the paper's fixed front end ("static"). A nil
	// slice keeps retire() on the exact legacy taken-branch path, which is
	// what makes the default bit-identical to the pre-predictor simulator.
	preds []bpred.Predictor

	// Per-context scheduling state, struct-of-arrays (bit t of a mask is
	// hardware context t; see the ctx type comment).
	ready    [core.MaxThreads]int64 // cycle at which the context may fetch/issue again
	have     uint8                  // contexts holding a fetched instruction
	loaded   uint8                  // contexts whose instruction is loaded into the engine
	wantSw   uint8                  // contexts marked for replacement at the next boundary
	wasSplit uint8                  // contexts whose current instruction has split-issued
	allCtx   uint8                  // (1 << Threads) - 1

	st      runState // per-run bookkeeping and per-cycle scratch
	waiting []*Job   // reusable context-switch candidate buffer

	bmtCur      int
	switchCount uint64
}

// New builds a simulator over the given jobs. Jobs beyond the hardware
// context count wait and enter at context switches.
func New(cfg Config, jobs []*Job) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sim: no jobs")
	}
	if cfg.TimesliceCycles <= 0 && len(jobs) > cfg.Threads {
		return nil, fmt.Errorf("sim: %d jobs exceed %d contexts and multitasking is disabled",
			len(jobs), cfg.Threads)
	}
	eng, err := core.NewEngine(cfg.Geom, cfg.Tech, cfg.Threads)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:     cfg,
		eng:     eng,
		jobs:    jobs,
		r:       rng.New(cfg.Seed),
		waiting: make([]*Job, 0, len(jobs)),
	}
	if !cfg.PerfectMemory {
		if s.ic, err = cache.New(cfg.ICache); err != nil {
			return nil, err
		}
		if s.dc, err = cache.New(cfg.DCache); err != nil {
			return nil, err
		}
	}
	for _, j := range jobs {
		if j.buf == nil {
			j.buf = make([]synth.TInst, 0, fetchBatch)
		}
	}
	if name, _ := bpred.Canonical(cfg.Predictor); name != bpred.Default {
		s.preds = make([]bpred.Predictor, cfg.Threads)
		for t := range s.preds {
			if s.preds[t], err = bpred.New(name); err != nil {
				return nil, err
			}
		}
	}
	s.ctxs = make([]ctx, cfg.Threads)
	s.allCtx = uint8(1)<<uint(cfg.Threads) - 1
	for t := range s.ctxs {
		if t < len(jobs) {
			s.ctxs[t].job = jobs[t]
		}
		if cfg.ClusterRenaming {
			s.ctxs[t].rotation = core.RenameRotation(t, cfg.Geom.Clusters, cfg.Threads)
		}
	}
	return s, nil
}

// NewWorkload builds jobs from benchmark profiles and a simulator over
// them; each job's generator is independently seeded.
func NewWorkload(cfg Config, profiles []synth.Profile) (*Simulator, error) {
	jobs := make([]*Job, len(profiles))
	for i, p := range profiles {
		p.Seed ^= cfg.Seed * 0x9E3779B97F4A7C15
		gen, err := synth.NewGenerator(p, cfg.Geom)
		if err != nil {
			return nil, err
		}
		jobs[i] = NewJob(gen, cfg.ScaleDiv)
	}
	return New(cfg, jobs)
}

// rotateInto applies cluster renaming to a fetched instruction, writing
// the result in place: demand and per-cluster memory addresses move
// together in one modulo-free pass (equivalent to InstrDemand.Rotate plus
// the address rotation, fused for the fetch hot path). src and dst must
// not alias.
func rotateInto(dst, src *synth.TInst, by, clusters int) {
	if by == 0 {
		*dst = *src
		return
	}
	dst.Demand.HasComm = src.Demand.HasComm
	dst.Demand.Taken = src.Demand.Taken
	j := by
	for c := 0; c < clusters; c++ {
		dst.Demand.B[j] = src.Demand.B[c]
		dst.MemAddr[j] = src.MemAddr[c]
		j++
		if j == clusters {
			j = 0
		}
	}
	for c := clusters; c < isa.MaxClusters; c++ {
		dst.Demand.B[c] = src.Demand.B[c]
		dst.MemAddr[c] = src.MemAddr[c]
	}
	dst.PC = src.PC
	dst.Size = src.Size
	dst.Taken = src.Taken
	dst.IsBranch = src.IsBranch
}

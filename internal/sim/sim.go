package sim

import (
	"fmt"

	"vexsmt/internal/cache"
	"vexsmt/internal/core"
	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
)

// Job is one software thread of the workload: a benchmark instance that
// respawns when it runs to completion (Section VI-A).
type Job struct {
	Stream    synth.Stream
	Executed  int64 // cumulative VLIW instructions (drives termination)
	remaining int64 // instructions left in the current spawn
	variant   uint64
}

// NewJob wraps a stream; scaleDiv scales the benchmark length.
func NewJob(s synth.Stream, scaleDiv int64) *Job {
	return &Job{Stream: s, remaining: s.Length(scaleDiv)}
}

// ctx is one hardware thread context.
type ctx struct {
	job        *Job
	ti         synth.TInst // current instruction, cluster-renamed
	haveInstr  bool
	loaded     bool
	wasSplit   bool
	ready      int64 // cycle at which the context may fetch/issue again
	wantSwitch bool
	rotation   int
}

// Simulator runs one configuration over one workload. A Simulator owns all
// of its mutable state — engine, caches, contexts, scratch buffers — so
// independent simulators can run on concurrent goroutines without
// synchronization. The run loop itself lives in run.go, split into
// fetch/issue/commit phases.
type Simulator struct {
	cfg  Config
	eng  *core.Engine
	ic   *cache.Cache
	dc   *cache.Cache
	jobs []*Job
	ctxs []ctx
	r    *rng.Rand
	run  stats.Run

	st      runState // per-run bookkeeping and per-cycle scratch
	waiting []*Job   // reusable context-switch candidate buffer

	bmtCur      int
	switchCount uint64
}

// New builds a simulator over the given jobs. Jobs beyond the hardware
// context count wait and enter at context switches.
func New(cfg Config, jobs []*Job) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sim: no jobs")
	}
	if cfg.TimesliceCycles <= 0 && len(jobs) > cfg.Threads {
		return nil, fmt.Errorf("sim: %d jobs exceed %d contexts and multitasking is disabled",
			len(jobs), cfg.Threads)
	}
	eng, err := core.NewEngine(cfg.Geom, cfg.Tech, cfg.Threads)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:     cfg,
		eng:     eng,
		jobs:    jobs,
		r:       rng.New(cfg.Seed),
		waiting: make([]*Job, 0, len(jobs)),
	}
	if !cfg.PerfectMemory {
		if s.ic, err = cache.New(cfg.ICache); err != nil {
			return nil, err
		}
		if s.dc, err = cache.New(cfg.DCache); err != nil {
			return nil, err
		}
	}
	s.ctxs = make([]ctx, cfg.Threads)
	for t := range s.ctxs {
		if t < len(jobs) {
			s.ctxs[t].job = jobs[t]
		}
		if cfg.ClusterRenaming {
			s.ctxs[t].rotation = core.RenameRotation(t, cfg.Geom.Clusters, cfg.Threads)
		}
	}
	return s, nil
}

// NewWorkload builds jobs from benchmark profiles and a simulator over
// them; each job's generator is independently seeded.
func NewWorkload(cfg Config, profiles []synth.Profile) (*Simulator, error) {
	jobs := make([]*Job, len(profiles))
	for i, p := range profiles {
		p.Seed ^= cfg.Seed * 0x9E3779B97F4A7C15
		gen, err := synth.NewGenerator(p, cfg.Geom)
		if err != nil {
			return nil, err
		}
		jobs[i] = NewJob(gen, cfg.ScaleDiv)
	}
	return New(cfg, jobs)
}

// rotate applies cluster renaming to a fetched instruction: demand and
// per-cluster memory addresses move together.
func rotate(ti *synth.TInst, by, clusters int) synth.TInst {
	out := *ti
	if by == 0 {
		return out
	}
	out.Demand = ti.Demand.Rotate(by, clusters)
	for c := 0; c < clusters; c++ {
		out.MemAddr[(c+by)%clusters] = ti.MemAddr[c]
	}
	for c := clusters; c < isa.MaxClusters; c++ {
		out.MemAddr[c] = ti.MemAddr[c]
	}
	return out
}

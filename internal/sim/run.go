package sim

import (
	"context"
	"fmt"
	"math/bits"

	"vexsmt/internal/core"
	"vexsmt/internal/rng"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
)

// The run loop is organized as three pipeline phases per cycle — fetch,
// issue, commit — plus the scheduling bookkeeping (warmup, timeslices,
// memory-port stalls) around them. All per-cycle scratch lives in runState
// so a cycle allocates nothing; simulators share zero mutable state, so
// any number of them may run on concurrent goroutines.
//
// The loop is event-driven around a per-context wake-up queue: every
// hardware context owns a computed wake-up cycle (DCache-miss stalls,
// ICache fetch stalls, taken-branch penalties, timeslice waits, and the
// wait for the context's own issue slot under interleaved multithreading
// are all computable at the point they begin). nextEventCycle takes the
// queue minimum — capped at timeslice boundaries and cancellation polls —
// and the loop jumps straight to it, folding the skipped cycles into the
// counters and the engine's priority rotation in one step. Unlike a
// global all-stalled check, the queue jumps even when some contexts are
// runnable: under IMT a runnable thread still leaves the cycles between
// its issue slots provably dead. Completed runs are bit-identical to the
// one-iteration-per-cycle reference loop (Config.ReferenceLoop), which
// the differential tests in internal/cosim machine-check.

// runState holds one run's bookkeeping and reusable per-cycle buffers.
type runState struct {
	wq         wakeQueue        // per-context wake-up event queue
	res        core.CycleResult // engine scratch, rewritten every cycle
	raw        synth.TInst      // reference-loop fetch scratch
	maxCycles  int64
	sliceEnd   int64
	ctxCheckAt int64 // next cycle at which ctx.Err() is polled
	ctxEvery   int64 // cancellation poll interval in cycles
	warming    bool
	done       bool
}

// cancelCheckCycles bounds the cancellation poll interval when timeslicing
// is disabled: one check every 64K cycles keeps the hot loop at a single
// integer compare per cycle while still honoring cancellation promptly.
const cancelCheckCycles = 1 << 16

// Run executes the experiment and returns the counters.
func (s *Simulator) Run() (*stats.Run, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: ctx.Err() is polled once
// per timeslice (or every 64K cycles when timeslicing is off), so a cancelled
// run returns within one timeslice with the counters accumulated so far and
// the context's error. Cancellation never perturbs determinism — a run that
// completes did exactly the same work it would have done under Run.
func (s *Simulator) RunContext(ctx context.Context) (*stats.Run, error) {
	s.beginRun()
	fast := !s.cfg.ReferenceLoop
	// Jump-check policy: attempting a jump costs a wake-up-queue rebuild,
	// so it runs lazily, only on the iteration right after an empty cycle.
	// A dead stretch always announces itself with one empty cycle — a cycle
	// where nothing issues — so at most one dead cycle per stretch executes
	// through the phases before the queue folds the rest into a jump, while
	// productive cycles (the expensive ones) never pay for a rebuild. The
	// policy is bit-identical by construction: a forgone jump just executes
	// dead cycles one at a time, exactly like the reference loop.
	tryJump := fast
	for cycle := int64(0); ; cycle++ {
		// End of warmup: discard counters, keep caches and pipeline state.
		if s.st.warming && s.run.Instrs >= s.cfg.WarmupInstrs {
			s.endWarmup()
		}
		if cycle >= s.st.maxCycles {
			s.finish()
			return &s.run, fmt.Errorf("sim: exceeded %d cycles without reaching the instruction limit", s.st.maxCycles)
		}
		if cycle >= s.st.ctxCheckAt {
			if err := ctx.Err(); err != nil {
				s.finish()
				return &s.run, err
			}
			s.st.ctxCheckAt = cycle + s.st.ctxEvery
		}
		s.expireTimeslice(cycle)

		if tryJump {
			tryJump = false // re-armed by the next empty cycle
			if next := s.nextEventCycle(cycle); next > cycle {
				// No context can fetch, load or issue before next: each
				// skipped cycle would have run the three phases to no effect
				// beyond one empty machine cycle and one priority-rotation
				// step. Fold them all in one jump.
				skip := next - cycle
				s.run.Cycles += skip
				s.run.EmptyCycles += skip
				s.eng.SkipCycles(skip)
				cycle = next - 1 // the loop increment lands on next
				continue
			}
		}

		s.fetchPhase(cycle)
		res := &s.st.res
		s.issuePhase(cycle, res)
		s.commitPhase(cycle, res)

		// Delayed-store memory port contention stalls the whole pipeline
		// (Section V-D, Figure 11).
		cycle += s.portStallCycles(res)

		if s.st.done {
			s.finish()
			return &s.run, nil
		}
		tryJump = fast && res.Ops == 0
	}
}

// nextEventCycle rebuilds the per-context wake-up queue and returns the
// earliest cycle at which any context can act. A return equal to cycle
// means some context can fetch, load or issue right now; a later return
// means every cycle in [cycle, next) is provably dead: the phases would
// only count an empty cycle and rotate the issue priority.
//
// A context's wake-up cycle is its stall expiry (ready), with one
// mode-dependent refinement: under interleaved multithreading a context
// whose instruction is already loaded can only issue on its own slot —
// cycles congruent to its index modulo the context count — so its wake-up
// rounds up to that slot and the loop jumps over the dead slots of other
// contexts even while this one is runnable. The jump is capped at the next
// timeslice boundary (which can wake idle contexts via the switch mask),
// the next cancellation poll, and the runaway guard, so all scheduling
// bookkeeping still happens on exactly the cycles it would have happened
// on.
func (s *Simulator) nextEventCycle(cycle int64) int64 {
	q := &s.st.wq
	horizon := s.st.maxCycles
	imt := s.cfg.Mode == ModeInterleaved
	n := int64(len(s.ctxs))
	pick := int64(0)
	if imt {
		pick = cycle % n // the cycle's issue-slot phase, computed once
	}
	for t := range s.ctxs {
		bit := uint8(1) << uint(t)
		if s.have&bit == 0 && s.ctxs[t].job == nil && s.wantSw&bit == 0 {
			q.park(t, horizon) // nothing can wake it before the next timeslice
			continue
		}
		w := s.ready[t]
		if w < cycle {
			w = cycle
		}
		if imt && s.loaded&bit != 0 {
			// Round w up to the context's own issue slot (cycles congruent
			// to t mod n), derived from the precomputed phase with small
			// adjustments: (t - w) mod n = (t - pick - (w-cycle) mod n) mod n,
			// and the inner reduction only needs a division in the rare case
			// of a loaded context stalled a full rotation or more ahead.
			d := w - cycle
			if d >= n {
				d %= n
			}
			off := int64(t) - pick - d // in [-(2n-2), n-1]
			if off < 0 {
				off += n
				if off < 0 {
					off += n
				}
			}
			w += off
		}
		q.set(t, w)
	}
	next := q.min()
	if s.cfg.TimesliceCycles > 0 && s.st.sliceEnd < next {
		next = s.st.sliceEnd
	}
	if s.st.ctxCheckAt < next {
		next = s.st.ctxCheckAt
	}
	if next < cycle {
		// A memory-port stall pushed the clock past an already-due boundary;
		// let the normal path handle this cycle.
		next = cycle
	}
	return next
}

// beginRun resets the run bookkeeping; counters and pipeline state carry
// over so the scheduling semantics match the single-pass loop exactly.
func (s *Simulator) beginRun() {
	cfg := &s.cfg
	s.st.maxCycles = cfg.MaxCycles
	if s.st.maxCycles == 0 {
		s.st.maxCycles = cfg.LimitInstrs*64 + 10_000_000
	}
	s.st.wq.reset(len(s.ctxs), s.st.maxCycles)
	s.st.sliceEnd = cfg.TimesliceCycles
	s.st.ctxEvery = cfg.TimesliceCycles
	if s.st.ctxEvery <= 0 || s.st.ctxEvery > cancelCheckCycles {
		s.st.ctxEvery = cancelCheckCycles
	}
	s.st.ctxCheckAt = s.st.ctxEvery
	s.st.warming = cfg.WarmupInstrs > 0
	s.st.done = false
}

// endWarmup discards the warmup counters, keeping caches and pipeline
// state warm.
func (s *Simulator) endWarmup() {
	s.st.warming = false
	s.run = stats.Run{}
	for _, j := range s.jobs {
		j.Executed = 0
	}
}

// expireTimeslice marks every context for replacement when its timeslice
// ends; switches happen at each context's next instruction boundary.
func (s *Simulator) expireTimeslice(cycle int64) {
	if s.cfg.TimesliceCycles > 0 && cycle >= s.st.sliceEnd {
		s.wantSw = s.allCtx
		s.st.sliceEnd += s.cfg.TimesliceCycles
	}
}

// fetchPhase advances the front end of every context that is not already
// loaded into the engine (a loaded bit implies the have bit, and such
// contexts have nothing to fetch — the same early return fetch itself
// would take).
func (s *Simulator) fetchPhase(cycle int64) {
	for m := s.allCtx &^ s.loaded; m != 0; m &= m - 1 {
		s.fetch(bits.TrailingZeros8(m), cycle)
	}
}

// issuePhase builds the ready mask branchlessly from the struct-of-arrays
// context state, applies the IMT/BMT mode restriction, and runs the
// merge/split engine for one cycle, writing the result into caller-owned
// scratch.
func (s *Simulator) issuePhase(cycle int64, res *core.CycleResult) {
	mask := uint8(0)
	for t := range s.ctxs {
		// Bit t is set when ready[t] <= cycle: the sign bit of
		// cycle-ready[t], inverted — no compare-and-branch per context.
		mask |= uint8((^uint64(cycle-s.ready[t]))>>63) << uint(t)
	}
	mask &= s.loaded
	if s.cfg.Mode != ModeSimultaneous {
		mask = s.applyMode(cycle, mask)
	}
	s.eng.CycleMask(mask, res)
}

// commitPhase accounts the cycle's results: global counters, per-thread
// split tracking, load stalls, and instruction retirement.
func (s *Simulator) commitPhase(cycle int64, res *core.CycleResult) {
	s.run.Cycles++
	if res.Ops == 0 {
		s.run.EmptyCycles++
	} else {
		s.run.Ops += int64(res.Ops)
	}
	if res.Threads >= 2 {
		s.run.MergedCycles++
	}
	for m := res.Issued; m != 0; m &= m - 1 {
		t := bits.TrailingZeros8(m)
		tr := &res.Thread[t]
		if tr.Split {
			s.wasSplit |= 1 << uint(t)
		}
		s.accountLoads(t, tr, cycle)
		if tr.LastPart {
			s.retire(t, cycle)
		}
	}
}

// accountLoads charges DCache accesses for loads, which access at issue
// time and stall the thread on a miss (VEX less-than-or-equal semantics).
func (s *Simulator) accountLoads(t int, tr *core.ThreadResult, cycle int64) {
	if tr.LoadsAt == 0 || s.cfg.PerfectMemory {
		return
	}
	c := &s.ctxs[t]
	for m := tr.LoadsAt; m != 0; m &= m - 1 {
		cl := bits.TrailingZeros8(m)
		s.run.DCacheAccesses++
		if !s.dc.Access(c.ti.MemAddr[cl]) {
			s.run.DCacheMisses++
			pen := int64(s.cfg.DCache.MissPenalty)
			if nr := cycle + 1 + pen; nr > s.ready[t] {
				s.run.MemStallCycles += pen
				s.ready[t] = nr
			}
		}
	}
}

// retire completes a VLIW instruction on its last issued part: split
// accounting, store commit, counters, branch penalty, and the run's
// termination condition.
func (s *Simulator) retire(t int, cycle int64) {
	bit := uint8(1) << uint(t)
	if s.wasSplit&bit != 0 {
		s.run.SplitInstrs++
		s.wasSplit &^= bit
	}
	c := &s.ctxs[t]
	s.commitStores(c)
	s.run.Instrs++
	c.job.Executed++
	c.job.remaining--
	s.have &^= bit
	s.loaded &^= bit
	if s.preds == nil {
		// Paper front end: every taken branch pays the fixed penalty. This
		// branchless-of-predictor path is byte-identical to the pre-bpred
		// simulator and must stay that way.
		if c.ti.Taken {
			pen := int64(s.cfg.TakenBranchPenalty)
			if nr := cycle + 1 + pen; nr > s.ready[t] {
				s.run.BranchStallCycles += pen
				s.ready[t] = nr
			}
		}
	} else if c.ti.IsBranch {
		// Modeled front end: the per-context predictor resolves here, at
		// retire, and mispredicts (either direction) charge the same stall
		// path the paper charges taken branches. Writing s.ready[t] is all
		// the wake-queue needs — nextEventCycle reads it directly.
		s.run.Branches++
		p := s.preds[t]
		mispredict := p.Predict(c.ti.PC) != c.ti.Taken
		p.Update(c.ti.PC, c.ti.Taken)
		if mispredict {
			s.run.BranchMispredicts++
			pen := int64(s.cfg.TakenBranchPenalty)
			if nr := cycle + 1 + pen; nr > s.ready[t] {
				s.run.BranchStallCycles += pen
				s.ready[t] = nr
			}
		}
	}
	if c.job.Executed >= s.cfg.LimitInstrs {
		s.st.done = true
	}
}

// commitStores accounts the instruction's stores, which commit at the last
// part (directly or from the delay buffers).
func (s *Simulator) commitStores(c *ctx) {
	if s.cfg.PerfectMemory {
		return
	}
	for cl := 0; cl < s.cfg.Geom.Clusters; cl++ {
		if c.ti.Demand.B[cl].Stor {
			s.run.DCacheAccesses++
			if !s.dc.Access(c.ti.MemAddr[cl]) {
				s.run.DCacheMisses++ // write-allocate, no stall
			}
		}
	}
}

// portStallCycles converts delayed-store port overflow into whole-pipeline
// stall cycles and returns how far the clock must advance.
func (s *Simulator) portStallCycles(res *core.CycleResult) int64 {
	over := int64(res.MemPortOverflow(s.cfg.Geom))
	if over > 0 {
		s.run.Cycles += over
		s.run.EmptyCycles += over
		s.run.MemPortStallCycles += over
	}
	return over
}

// fetch advances one context's front end: context switches at instruction
// boundaries, respawn, ICache access, and engine load.
func (s *Simulator) fetch(t int, cycle int64) {
	cfg := &s.cfg
	c := &s.ctxs[t]
	bit := uint8(1) << uint(t)
	if s.have&bit != 0 {
		if s.loaded&bit == 0 && cycle >= s.ready[t] {
			s.eng.LoadFrom(t, &c.ti.Demand)
			s.loaded |= bit
		}
		return
	}
	if cycle < s.ready[t] {
		return
	}
	if s.wantSw&bit != 0 {
		s.contextSwitch(t)
		s.wantSw &^= bit
	}
	if c.job == nil {
		return
	}
	// Respawn a completed benchmark (Section VI-A).
	if c.job.remaining <= 0 {
		s.respawn(c.job)
	}
	raw := s.nextInstr(c.job)
	rotateInto(&c.ti, raw, c.rotation, cfg.Geom.Clusters)
	s.have |= bit
	if !cfg.PerfectMemory {
		s.run.ICacheAccesses++
		if pen := s.ic.AccessPenalty(raw.PC); pen > 0 {
			s.run.ICacheMisses++
			s.run.FetchStallCycles += int64(pen)
			s.ready[t] = cycle + int64(pen)
			return
		}
	}
	s.eng.LoadFrom(t, &c.ti.Demand)
	s.loaded |= bit
}

// respawn restarts a completed benchmark with a fresh variant. The job's
// prefetch buffer is empty at this point by construction: a spawn draws
// exactly Length instructions, and the respawn check only runs once all of
// them have retired.
func (s *Simulator) respawn(j *Job) {
	j.variant++
	j.Stream.Reset(j.variant)
	j.remaining = j.Stream.Length(s.cfg.ScaleDiv)
	j.drawsLeft = j.remaining
	j.buf = j.buf[:0]
	j.bufPos = 0
	s.run.Respawns++
}

// nextInstr returns the job's next raw (un-renamed) trace instruction. The
// fast path consumes the job's prefetch buffer, refilling it with whole
// basic-block-sized runs via synth.FillN — never drawing past the current
// spawn so respawn boundaries fall on exactly the same instruction as
// per-instruction fetching. The reference loop bypasses the buffer and
// draws one instruction at a time.
func (s *Simulator) nextInstr(j *Job) *synth.TInst {
	if j.bufPos == len(j.buf) {
		if s.cfg.ReferenceLoop {
			j.Stream.Next(&s.st.raw)
			j.drawsLeft--
			return &s.st.raw
		}
		n := fetchBatch
		if int64(n) > j.drawsLeft {
			n = int(j.drawsLeft)
		}
		j.buf = j.buf[:n]
		synth.FillN(j.Stream, j.buf)
		j.drawsLeft -= int64(n)
		j.bufPos = 0
	}
	raw := &j.buf[j.bufPos]
	j.bufPos++
	return raw
}

// contextSwitch replaces the context's job with a randomly chosen waiting
// job ("replacement threads are picked at random from the workload"). The
// waiting list is a reusable buffer: switches allocate nothing.
func (s *Simulator) contextSwitch(t int) {
	waiting := s.waiting[:0]
	for _, j := range s.jobs {
		running := false
		for i := range s.ctxs {
			if s.ctxs[i].job == j {
				running = true
				break
			}
		}
		if !running {
			waiting = append(waiting, j)
		}
	}
	if len(waiting) == 0 {
		return // pool fits the contexts; keep running the same job
	}
	// Common random numbers: the pick depends only on (seed, switch index),
	// so different techniques see the same replacement schedule and their
	// IPC comparison is paired, which the small-scale runs need for
	// stability. (Paper-scale runs are long enough not to care.)
	s.switchCount++
	pick := rng.Draw(s.cfg.Seed*0x5851f42d+s.switchCount, len(waiting))
	s.ctxs[t].job = waiting[pick]
	s.run.ContextSwitches++
}

// applyMode restricts the ready mask for the IMT/BMT ablation modes.
func (s *Simulator) applyMode(cycle int64, mask uint8) uint8 {
	switch s.cfg.Mode {
	case ModeInterleaved:
		return mask & (1 << uint(cycle%int64(s.cfg.Threads)))
	case ModeBlocked:
		// Stay on the current thread while it is ready; otherwise rotate to
		// the next ready one.
		if mask&(1<<uint(s.bmtCur)) == 0 {
			for i := 1; i <= s.cfg.Threads; i++ {
				cand := (s.bmtCur + i) % s.cfg.Threads
				if mask&(1<<uint(cand)) != 0 {
					s.bmtCur = cand
					break
				}
			}
		}
		return mask & (1 << uint(s.bmtCur))
	}
	return mask
}

func (s *Simulator) finish() {
	s.run.IssueSlots = s.run.Cycles * int64(s.cfg.Geom.TotalIssueWidth())
}

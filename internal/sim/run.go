package sim

import (
	"context"
	"fmt"

	"vexsmt/internal/core"
	"vexsmt/internal/rng"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
)

// The run loop is organized as three pipeline phases per cycle — fetch,
// issue, commit — plus the scheduling bookkeeping (warmup, timeslices,
// memory-port stalls) around them. All per-cycle scratch lives in runState
// so a cycle allocates nothing; simulators share zero mutable state, so
// any number of them may run on concurrent goroutines.

// runState holds one run's bookkeeping and reusable per-cycle buffers.
type runState struct {
	ready      [core.MaxThreads]bool // issue mask, rebuilt every cycle
	maxCycles  int64
	sliceEnd   int64
	ctxCheckAt int64 // next cycle at which ctx.Err() is polled
	ctxEvery   int64 // cancellation poll interval in cycles
	warming    bool
	done       bool
}

// cancelCheckCycles bounds the cancellation poll interval when timeslicing
// is disabled: one check every 64K cycles keeps the hot loop at a single
// integer compare per cycle while still honoring cancellation promptly.
const cancelCheckCycles = 1 << 16

// Run executes the experiment and returns the counters.
func (s *Simulator) Run() (*stats.Run, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: ctx.Err() is polled once
// per timeslice (or every 64K cycles when timeslicing is off), so a cancelled
// run returns within one timeslice with the counters accumulated so far and
// the context's error. Cancellation never perturbs determinism — a run that
// completes did exactly the same work it would have done under Run.
func (s *Simulator) RunContext(ctx context.Context) (*stats.Run, error) {
	s.beginRun()
	for cycle := int64(0); ; cycle++ {
		// End of warmup: discard counters, keep caches and pipeline state.
		if s.st.warming && s.run.Instrs >= s.cfg.WarmupInstrs {
			s.endWarmup()
		}
		if cycle >= s.st.maxCycles {
			s.finish(cycle)
			return &s.run, fmt.Errorf("sim: exceeded %d cycles without reaching the instruction limit", s.st.maxCycles)
		}
		if cycle >= s.st.ctxCheckAt {
			if err := ctx.Err(); err != nil {
				s.finish(cycle)
				return &s.run, err
			}
			s.st.ctxCheckAt = cycle + s.st.ctxEvery
		}
		s.expireTimeslice(cycle)

		s.fetchPhase(cycle)
		res := s.issuePhase(cycle)
		s.commitPhase(cycle, &res)

		// Delayed-store memory port contention stalls the whole pipeline
		// (Section V-D, Figure 11).
		cycle += s.portStallCycles(&res)

		if s.st.done {
			s.finish(cycle + 1)
			return &s.run, nil
		}
	}
}

// beginRun resets the run bookkeeping; counters and pipeline state carry
// over so the scheduling semantics match the single-pass loop exactly.
func (s *Simulator) beginRun() {
	cfg := &s.cfg
	s.st.maxCycles = cfg.MaxCycles
	if s.st.maxCycles == 0 {
		s.st.maxCycles = cfg.LimitInstrs*64 + 10_000_000
	}
	s.st.sliceEnd = cfg.TimesliceCycles
	s.st.ctxEvery = cfg.TimesliceCycles
	if s.st.ctxEvery <= 0 || s.st.ctxEvery > cancelCheckCycles {
		s.st.ctxEvery = cancelCheckCycles
	}
	s.st.ctxCheckAt = s.st.ctxEvery
	s.st.warming = cfg.WarmupInstrs > 0
	s.st.done = false
}

// endWarmup discards the warmup counters, keeping caches and pipeline
// state warm.
func (s *Simulator) endWarmup() {
	s.st.warming = false
	s.run = stats.Run{}
	for _, j := range s.jobs {
		j.Executed = 0
	}
}

// expireTimeslice marks every context for replacement when its timeslice
// ends; switches happen at each context's next instruction boundary.
func (s *Simulator) expireTimeslice(cycle int64) {
	if s.cfg.TimesliceCycles > 0 && cycle >= s.st.sliceEnd {
		for t := range s.ctxs {
			s.ctxs[t].wantSwitch = true
		}
		s.st.sliceEnd += s.cfg.TimesliceCycles
	}
}

// fetchPhase advances every context's front end.
func (s *Simulator) fetchPhase(cycle int64) {
	for t := range s.ctxs {
		s.fetch(t, cycle)
	}
}

// issuePhase rebuilds the ready mask, applies the IMT/BMT mode
// restriction, and runs the merge/split engine for one cycle.
func (s *Simulator) issuePhase(cycle int64) core.CycleResult {
	for t := range s.ctxs {
		s.st.ready[t] = s.ctxs[t].loaded && cycle >= s.ctxs[t].ready
	}
	s.applyMode(cycle, &s.st.ready)
	return s.eng.Cycle(&s.st.ready)
}

// commitPhase accounts the cycle's results: global counters, per-thread
// split tracking, load stalls, and instruction retirement.
func (s *Simulator) commitPhase(cycle int64, res *core.CycleResult) {
	s.run.Cycles++
	if res.Ops == 0 {
		s.run.EmptyCycles++
	} else {
		s.run.Ops += int64(res.Ops)
	}
	if res.Threads >= 2 {
		s.run.MergedCycles++
	}
	for t := range s.ctxs {
		tr := &res.Thread[t]
		if tr.Ops == 0 {
			continue
		}
		c := &s.ctxs[t]
		if tr.Split {
			c.wasSplit = true
		}
		s.accountLoads(c, tr, cycle)
		if tr.LastPart {
			s.retire(c, cycle)
		}
	}
}

// accountLoads charges DCache accesses for loads, which access at issue
// time and stall the thread on a miss (VEX less-than-or-equal semantics).
func (s *Simulator) accountLoads(c *ctx, tr *core.ThreadResult, cycle int64) {
	if tr.LoadsAt == 0 || s.cfg.PerfectMemory {
		return
	}
	for cl := 0; cl < s.cfg.Geom.Clusters; cl++ {
		if tr.LoadsAt&(1<<uint(cl)) == 0 {
			continue
		}
		s.run.DCacheAccesses++
		if !s.dc.Access(c.ti.MemAddr[cl]) {
			s.run.DCacheMisses++
			pen := int64(s.cfg.DCache.MissPenalty)
			if nr := cycle + 1 + pen; nr > c.ready {
				s.run.MemStallCycles += pen
				c.ready = nr
			}
		}
	}
}

// retire completes a VLIW instruction on its last issued part: split
// accounting, store commit, counters, branch penalty, and the run's
// termination condition.
func (s *Simulator) retire(c *ctx, cycle int64) {
	if c.wasSplit {
		s.run.SplitInstrs++
		c.wasSplit = false
	}
	s.commitStores(c)
	s.run.Instrs++
	c.job.Executed++
	c.job.remaining--
	c.haveInstr = false
	c.loaded = false
	if c.ti.Taken {
		pen := int64(s.cfg.TakenBranchPenalty)
		if nr := cycle + 1 + pen; nr > c.ready {
			s.run.BranchStallCycles += pen
			c.ready = nr
		}
	}
	if c.job.Executed >= s.cfg.LimitInstrs {
		s.st.done = true
	}
}

// commitStores accounts the instruction's stores, which commit at the last
// part (directly or from the delay buffers).
func (s *Simulator) commitStores(c *ctx) {
	if s.cfg.PerfectMemory {
		return
	}
	for cl := 0; cl < s.cfg.Geom.Clusters; cl++ {
		if c.ti.Demand.B[cl].Stor {
			s.run.DCacheAccesses++
			if !s.dc.Access(c.ti.MemAddr[cl]) {
				s.run.DCacheMisses++ // write-allocate, no stall
			}
		}
	}
}

// portStallCycles converts delayed-store port overflow into whole-pipeline
// stall cycles and returns how far the clock must advance.
func (s *Simulator) portStallCycles(res *core.CycleResult) int64 {
	over := int64(res.MemPortOverflow(s.cfg.Geom))
	if over > 0 {
		s.run.Cycles += over
		s.run.EmptyCycles += over
		s.run.MemPortStallCycles += over
	}
	return over
}

// fetch advances one context's front end: context switches at instruction
// boundaries, respawn, ICache access, and engine load.
func (s *Simulator) fetch(t int, cycle int64) {
	cfg := &s.cfg
	c := &s.ctxs[t]
	if c.haveInstr && !c.loaded && cycle >= c.ready {
		s.eng.Load(t, c.ti.Demand)
		c.loaded = true
		return
	}
	if c.haveInstr {
		return
	}
	if cycle < c.ready {
		return
	}
	if c.wantSwitch {
		s.contextSwitch(t)
		c.wantSwitch = false
	}
	if c.job == nil {
		return
	}
	// Respawn a completed benchmark (Section VI-A).
	if c.job.remaining <= 0 {
		c.job.variant++
		c.job.Stream.Reset(c.job.variant)
		c.job.remaining = c.job.Stream.Length(cfg.ScaleDiv)
		s.run.Respawns++
	}
	var raw synth.TInst
	c.job.Stream.Next(&raw)
	c.ti = rotate(&raw, c.rotation, cfg.Geom.Clusters)
	c.haveInstr = true
	if !cfg.PerfectMemory {
		s.run.ICacheAccesses++
		if pen := s.ic.AccessPenalty(raw.PC); pen > 0 {
			s.run.ICacheMisses++
			s.run.FetchStallCycles += int64(pen)
			c.ready = cycle + int64(pen)
			return
		}
	}
	s.eng.Load(t, c.ti.Demand)
	c.loaded = true
}

// contextSwitch replaces the context's job with a randomly chosen waiting
// job ("replacement threads are picked at random from the workload"). The
// waiting list is a reusable buffer: switches allocate nothing.
func (s *Simulator) contextSwitch(t int) {
	waiting := s.waiting[:0]
	for _, j := range s.jobs {
		running := false
		for i := range s.ctxs {
			if s.ctxs[i].job == j {
				running = true
				break
			}
		}
		if !running {
			waiting = append(waiting, j)
		}
	}
	if len(waiting) == 0 {
		return // pool fits the contexts; keep running the same job
	}
	// Common random numbers: the pick depends only on (seed, switch index),
	// so different techniques see the same replacement schedule and their
	// IPC comparison is paired, which the small-scale runs need for
	// stability. (Paper-scale runs are long enough not to care.)
	s.switchCount++
	pick := rng.Draw(s.cfg.Seed*0x5851f42d+s.switchCount, len(waiting))
	s.ctxs[t].job = waiting[pick]
	s.run.ContextSwitches++
}

// applyMode restricts the ready mask for the IMT/BMT ablation modes.
func (s *Simulator) applyMode(cycle int64, ready *[core.MaxThreads]bool) {
	switch s.cfg.Mode {
	case ModeInterleaved:
		pick := int(cycle % int64(s.cfg.Threads))
		for t := range s.ctxs {
			if t != pick {
				ready[t] = false
			}
		}
	case ModeBlocked:
		// Stay on the current thread while it is ready; otherwise rotate to
		// the next ready one.
		if !ready[s.bmtCur] {
			for i := 1; i <= s.cfg.Threads; i++ {
				cand := (s.bmtCur + i) % s.cfg.Threads
				if ready[cand] {
					s.bmtCur = cand
					break
				}
			}
		}
		for t := range s.ctxs {
			if t != s.bmtCur {
				ready[t] = false
			}
		}
	}
}

func (s *Simulator) finish(cycles int64) {
	s.run.IssueSlots = s.run.Cycles * int64(s.cfg.Geom.TotalIssueWidth())
	_ = cycles
}

package sim

import (
	"context"
	"fmt"
	"math/bits"

	"vexsmt/internal/core"
	"vexsmt/internal/rng"
	"vexsmt/internal/stats"
	"vexsmt/internal/synth"
)

// The run loop is organized as three pipeline phases per cycle — fetch,
// issue, commit — plus the scheduling bookkeeping (warmup, timeslices,
// memory-port stalls) around them. All per-cycle scratch lives in runState
// so a cycle allocates nothing; simulators share zero mutable state, so
// any number of them may run on concurrent goroutines.
//
// The loop is event-driven: when every hardware context is blocked for a
// computable number of cycles (DCache-miss stalls, ICache fetch stalls,
// taken-branch penalties, waiting for a timeslice switch), nextEventCycle
// computes the first cycle at which any state can change and the loop
// jumps straight to it, folding the skipped cycles into the counters and
// the engine's priority rotation in one step. Completed runs are
// bit-identical to the one-iteration-per-cycle reference loop
// (Config.ReferenceLoop), which the differential tests in internal/cosim
// machine-check.

// runState holds one run's bookkeeping and reusable per-cycle buffers.
type runState struct {
	ready      [core.MaxThreads]bool // issue mask, rebuilt every cycle
	res        core.CycleResult      // engine scratch, rewritten every cycle
	raw        synth.TInst           // reference-loop fetch scratch
	maxCycles  int64
	sliceEnd   int64
	ctxCheckAt int64 // next cycle at which ctx.Err() is polled
	ctxEvery   int64 // cancellation poll interval in cycles
	warming    bool
	done       bool
}

// cancelCheckCycles bounds the cancellation poll interval when timeslicing
// is disabled: one check every 64K cycles keeps the hot loop at a single
// integer compare per cycle while still honoring cancellation promptly.
const cancelCheckCycles = 1 << 16

// Run executes the experiment and returns the counters.
func (s *Simulator) Run() (*stats.Run, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: ctx.Err() is polled once
// per timeslice (or every 64K cycles when timeslicing is off), so a cancelled
// run returns within one timeslice with the counters accumulated so far and
// the context's error. Cancellation never perturbs determinism — a run that
// completes did exactly the same work it would have done under Run.
func (s *Simulator) RunContext(ctx context.Context) (*stats.Run, error) {
	s.beginRun()
	fast := !s.cfg.ReferenceLoop
	for cycle := int64(0); ; cycle++ {
		// End of warmup: discard counters, keep caches and pipeline state.
		if s.st.warming && s.run.Instrs >= s.cfg.WarmupInstrs {
			s.endWarmup()
		}
		if cycle >= s.st.maxCycles {
			s.finish()
			return &s.run, fmt.Errorf("sim: exceeded %d cycles without reaching the instruction limit", s.st.maxCycles)
		}
		if cycle >= s.st.ctxCheckAt {
			if err := ctx.Err(); err != nil {
				s.finish()
				return &s.run, err
			}
			s.st.ctxCheckAt = cycle + s.st.ctxEvery
		}
		s.expireTimeslice(cycle)

		if fast {
			if next := s.nextEventCycle(cycle); next > cycle {
				// Every context is blocked until at least next: each skipped
				// cycle would have run the three phases to no effect beyond
				// one empty machine cycle and one priority-rotation step.
				// Fold them all in one jump.
				skip := next - cycle
				s.run.Cycles += skip
				s.run.EmptyCycles += skip
				s.eng.SkipCycles(skip)
				cycle = next - 1 // the loop increment lands on next
				continue
			}
		}

		s.fetchPhase(cycle)
		res := &s.st.res
		s.issuePhase(cycle, res)
		s.commitPhase(cycle, res)

		// Delayed-store memory port contention stalls the whole pipeline
		// (Section V-D, Figure 11).
		cycle += s.portStallCycles(res)

		if s.st.done {
			s.finish()
			return &s.run, nil
		}
	}
}

// nextEventCycle returns the earliest cycle at which any context can act.
// A return equal to cycle means some thread can fetch, load or issue right
// now; a later return means every cycle in [cycle, next) is provably dead:
// the phases would only count an empty cycle and rotate the issue
// priority. The jump is capped at the next timeslice boundary (which can
// wake idle contexts via wantSwitch), the next cancellation poll, and the
// runaway guard, so all scheduling bookkeeping still happens on exactly
// the cycles it would have happened on.
func (s *Simulator) nextEventCycle(cycle int64) int64 {
	next := s.st.maxCycles
	for t := range s.ctxs {
		c := &s.ctxs[t]
		if !c.haveInstr && c.job == nil && !c.wantSwitch {
			continue // nothing can wake this context before the next timeslice
		}
		if c.ready <= cycle {
			return cycle
		}
		if c.ready < next {
			next = c.ready
		}
	}
	if s.cfg.TimesliceCycles > 0 && s.st.sliceEnd < next {
		next = s.st.sliceEnd
	}
	if s.st.ctxCheckAt < next {
		next = s.st.ctxCheckAt
	}
	if next < cycle {
		// A memory-port stall pushed the clock past an already-due boundary;
		// let the normal path handle this cycle.
		next = cycle
	}
	return next
}

// beginRun resets the run bookkeeping; counters and pipeline state carry
// over so the scheduling semantics match the single-pass loop exactly.
func (s *Simulator) beginRun() {
	cfg := &s.cfg
	s.st.maxCycles = cfg.MaxCycles
	if s.st.maxCycles == 0 {
		s.st.maxCycles = cfg.LimitInstrs*64 + 10_000_000
	}
	s.st.sliceEnd = cfg.TimesliceCycles
	s.st.ctxEvery = cfg.TimesliceCycles
	if s.st.ctxEvery <= 0 || s.st.ctxEvery > cancelCheckCycles {
		s.st.ctxEvery = cancelCheckCycles
	}
	s.st.ctxCheckAt = s.st.ctxEvery
	s.st.warming = cfg.WarmupInstrs > 0
	s.st.done = false
}

// endWarmup discards the warmup counters, keeping caches and pipeline
// state warm.
func (s *Simulator) endWarmup() {
	s.st.warming = false
	s.run = stats.Run{}
	for _, j := range s.jobs {
		j.Executed = 0
	}
}

// expireTimeslice marks every context for replacement when its timeslice
// ends; switches happen at each context's next instruction boundary.
func (s *Simulator) expireTimeslice(cycle int64) {
	if s.cfg.TimesliceCycles > 0 && cycle >= s.st.sliceEnd {
		for t := range s.ctxs {
			s.ctxs[t].wantSwitch = true
		}
		s.st.sliceEnd += s.cfg.TimesliceCycles
	}
}

// fetchPhase advances every context's front end. Contexts whose current
// instruction is already loaded into the engine have nothing to fetch
// (the same early return fetch itself would take).
func (s *Simulator) fetchPhase(cycle int64) {
	for t := range s.ctxs {
		c := &s.ctxs[t]
		if c.haveInstr && c.loaded {
			continue
		}
		s.fetch(t, cycle)
	}
}

// issuePhase rebuilds the ready mask, applies the IMT/BMT mode
// restriction, and runs the merge/split engine for one cycle, writing the
// result into caller-owned scratch.
func (s *Simulator) issuePhase(cycle int64, res *core.CycleResult) {
	for t := range s.ctxs {
		s.st.ready[t] = s.ctxs[t].loaded && cycle >= s.ctxs[t].ready
	}
	if s.cfg.Mode != ModeSimultaneous {
		s.applyMode(cycle, &s.st.ready)
	}
	s.eng.CycleInto(&s.st.ready, res)
}

// commitPhase accounts the cycle's results: global counters, per-thread
// split tracking, load stalls, and instruction retirement.
func (s *Simulator) commitPhase(cycle int64, res *core.CycleResult) {
	s.run.Cycles++
	if res.Ops == 0 {
		s.run.EmptyCycles++
	} else {
		s.run.Ops += int64(res.Ops)
	}
	if res.Threads >= 2 {
		s.run.MergedCycles++
	}
	for m := res.Issued; m != 0; m &= m - 1 {
		t := bits.TrailingZeros8(m)
		tr := &res.Thread[t]
		c := &s.ctxs[t]
		if tr.Split {
			c.wasSplit = true
		}
		s.accountLoads(c, tr, cycle)
		if tr.LastPart {
			s.retire(c, cycle)
		}
	}
}

// accountLoads charges DCache accesses for loads, which access at issue
// time and stall the thread on a miss (VEX less-than-or-equal semantics).
func (s *Simulator) accountLoads(c *ctx, tr *core.ThreadResult, cycle int64) {
	if tr.LoadsAt == 0 || s.cfg.PerfectMemory {
		return
	}
	for m := tr.LoadsAt; m != 0; m &= m - 1 {
		cl := bits.TrailingZeros8(m)
		s.run.DCacheAccesses++
		if !s.dc.Access(c.ti.MemAddr[cl]) {
			s.run.DCacheMisses++
			pen := int64(s.cfg.DCache.MissPenalty)
			if nr := cycle + 1 + pen; nr > c.ready {
				s.run.MemStallCycles += pen
				c.ready = nr
			}
		}
	}
}

// retire completes a VLIW instruction on its last issued part: split
// accounting, store commit, counters, branch penalty, and the run's
// termination condition.
func (s *Simulator) retire(c *ctx, cycle int64) {
	if c.wasSplit {
		s.run.SplitInstrs++
		c.wasSplit = false
	}
	s.commitStores(c)
	s.run.Instrs++
	c.job.Executed++
	c.job.remaining--
	c.haveInstr = false
	c.loaded = false
	if c.ti.Taken {
		pen := int64(s.cfg.TakenBranchPenalty)
		if nr := cycle + 1 + pen; nr > c.ready {
			s.run.BranchStallCycles += pen
			c.ready = nr
		}
	}
	if c.job.Executed >= s.cfg.LimitInstrs {
		s.st.done = true
	}
}

// commitStores accounts the instruction's stores, which commit at the last
// part (directly or from the delay buffers).
func (s *Simulator) commitStores(c *ctx) {
	if s.cfg.PerfectMemory {
		return
	}
	for cl := 0; cl < s.cfg.Geom.Clusters; cl++ {
		if c.ti.Demand.B[cl].Stor {
			s.run.DCacheAccesses++
			if !s.dc.Access(c.ti.MemAddr[cl]) {
				s.run.DCacheMisses++ // write-allocate, no stall
			}
		}
	}
}

// portStallCycles converts delayed-store port overflow into whole-pipeline
// stall cycles and returns how far the clock must advance.
func (s *Simulator) portStallCycles(res *core.CycleResult) int64 {
	over := int64(res.MemPortOverflow(s.cfg.Geom))
	if over > 0 {
		s.run.Cycles += over
		s.run.EmptyCycles += over
		s.run.MemPortStallCycles += over
	}
	return over
}

// fetch advances one context's front end: context switches at instruction
// boundaries, respawn, ICache access, and engine load.
func (s *Simulator) fetch(t int, cycle int64) {
	cfg := &s.cfg
	c := &s.ctxs[t]
	if c.haveInstr {
		if !c.loaded && cycle >= c.ready {
			s.eng.LoadFrom(t, &c.ti.Demand)
			c.loaded = true
		}
		return
	}
	if cycle < c.ready {
		return
	}
	if c.wantSwitch {
		s.contextSwitch(t)
		c.wantSwitch = false
	}
	if c.job == nil {
		return
	}
	// Respawn a completed benchmark (Section VI-A).
	if c.job.remaining <= 0 {
		s.respawn(c.job)
	}
	raw := s.nextInstr(c.job)
	rotateInto(&c.ti, raw, c.rotation, cfg.Geom.Clusters)
	c.haveInstr = true
	if !cfg.PerfectMemory {
		s.run.ICacheAccesses++
		if pen := s.ic.AccessPenalty(raw.PC); pen > 0 {
			s.run.ICacheMisses++
			s.run.FetchStallCycles += int64(pen)
			c.ready = cycle + int64(pen)
			return
		}
	}
	s.eng.LoadFrom(t, &c.ti.Demand)
	c.loaded = true
}

// respawn restarts a completed benchmark with a fresh variant. The job's
// prefetch buffer is empty at this point by construction: a spawn draws
// exactly Length instructions, and the respawn check only runs once all of
// them have retired.
func (s *Simulator) respawn(j *Job) {
	j.variant++
	j.Stream.Reset(j.variant)
	j.remaining = j.Stream.Length(s.cfg.ScaleDiv)
	j.drawsLeft = j.remaining
	j.buf = j.buf[:0]
	j.bufPos = 0
	s.run.Respawns++
}

// nextInstr returns the job's next raw (un-renamed) trace instruction. The
// fast path consumes the job's prefetch buffer, refilling it with whole
// basic-block-sized runs via synth.FillN — never drawing past the current
// spawn so respawn boundaries fall on exactly the same instruction as
// per-instruction fetching. The reference loop bypasses the buffer and
// draws one instruction at a time.
func (s *Simulator) nextInstr(j *Job) *synth.TInst {
	if j.bufPos == len(j.buf) {
		if s.cfg.ReferenceLoop {
			j.Stream.Next(&s.st.raw)
			j.drawsLeft--
			return &s.st.raw
		}
		n := fetchBatch
		if int64(n) > j.drawsLeft {
			n = int(j.drawsLeft)
		}
		j.buf = j.buf[:n]
		synth.FillN(j.Stream, j.buf)
		j.drawsLeft -= int64(n)
		j.bufPos = 0
	}
	raw := &j.buf[j.bufPos]
	j.bufPos++
	return raw
}

// contextSwitch replaces the context's job with a randomly chosen waiting
// job ("replacement threads are picked at random from the workload"). The
// waiting list is a reusable buffer: switches allocate nothing.
func (s *Simulator) contextSwitch(t int) {
	waiting := s.waiting[:0]
	for _, j := range s.jobs {
		running := false
		for i := range s.ctxs {
			if s.ctxs[i].job == j {
				running = true
				break
			}
		}
		if !running {
			waiting = append(waiting, j)
		}
	}
	if len(waiting) == 0 {
		return // pool fits the contexts; keep running the same job
	}
	// Common random numbers: the pick depends only on (seed, switch index),
	// so different techniques see the same replacement schedule and their
	// IPC comparison is paired, which the small-scale runs need for
	// stability. (Paper-scale runs are long enough not to care.)
	s.switchCount++
	pick := rng.Draw(s.cfg.Seed*0x5851f42d+s.switchCount, len(waiting))
	s.ctxs[t].job = waiting[pick]
	s.run.ContextSwitches++
}

// applyMode restricts the ready mask for the IMT/BMT ablation modes.
func (s *Simulator) applyMode(cycle int64, ready *[core.MaxThreads]bool) {
	switch s.cfg.Mode {
	case ModeInterleaved:
		pick := int(cycle % int64(s.cfg.Threads))
		for t := range s.ctxs {
			if t != pick {
				ready[t] = false
			}
		}
	case ModeBlocked:
		// Stay on the current thread while it is ready; otherwise rotate to
		// the next ready one.
		if !ready[s.bmtCur] {
			for i := 1; i <= s.cfg.Threads; i++ {
				cand := (s.bmtCur + i) % s.cfg.Threads
				if ready[cand] {
					s.bmtCur = cand
					break
				}
			}
		}
		for t := range s.ctxs {
			if t != s.bmtCur {
				ready[t] = false
			}
		}
	}
}

func (s *Simulator) finish() {
	s.run.IssueSlots = s.run.Cycles * int64(s.cfg.Geom.TotalIssueWidth())
}

module vexsmt

go 1.21

module vexsmt

go 1.22

// Package vexsmt_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (Section VI) as Go benchmarks:
//
//	BenchmarkFigure13a — per-benchmark single-thread IPCr/IPCp
//	BenchmarkFigure14  — CCSI speedup over CSMT (2T/4T, NS/AS)
//	BenchmarkFigure15  — COSI and OOSI speedups over SMT
//	BenchmarkFigure16  — absolute IPC of all eight techniques
//
// plus ablations the paper motivates but does not plot (cluster renaming,
// IMT/BMT modes, cluster-count scaling) and micro-benchmarks of the
// simulator substrates. Figures report their headline numbers through
// b.ReportMetric, so `go test -bench=.` prints the reproduced series.
// Benchmarks run at a reduced scale for tractability; `cmd/paperbench
// -scale 1` reproduces paper-scale runs.
package vexsmt_test

import (
	"context"
	"runtime"
	"testing"

	"vexsmt/internal/cache"
	"vexsmt/internal/core"
	"vexsmt/internal/experiments"
	"vexsmt/internal/isa"
	"vexsmt/internal/rng"
	"vexsmt/internal/sim"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
	"vexsmt/internal/workload"
	"vexsmt/pkg/vexsmt"
	rescache "vexsmt/pkg/vexsmt/cache"
)

// benchScale divides the paper's 200M-instruction runs for benchmarking.
const benchScale = 2000

// BenchmarkFigure13a reproduces the benchmark characterization table: one
// sub-benchmark per paper benchmark, reporting measured IPCr and IPCp next
// to the paper's values.
func BenchmarkFigure13a(b *testing.B) {
	for _, row := range workload.PaperFigure13a() {
		b.Run(row.Name, func(b *testing.B) {
			prof, ok := synth.ByName(row.Name)
			if !ok {
				b.Fatal("missing profile")
			}
			var ipcr, ipcp float64
			for i := 0; i < b.N; i++ {
				var err error
				ipcr, ipcp, err = sim.MeasuredIPC(prof, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ipcr, "IPCr")
			b.ReportMetric(ipcp, "IPCp")
			b.ReportMetric(row.IPCr, "paper-IPCr")
			b.ReportMetric(row.IPCp, "paper-IPCp")
		})
	}
}

// BenchmarkFigure14 reproduces the CCSI-over-CSMT speedup series.
func BenchmarkFigure14(b *testing.B) {
	paper := map[string]float64{
		"NS-2T": 6.1, "AS-2T": 8.7, "NS-4T": 3.5, "AS-4T": 7.5,
	}
	for _, threads := range []int{2, 4} {
		for _, comm := range []core.CommPolicy{core.CommNoSplit, core.CommAlwaysSplit} {
			name := comm.String() + "-" + map[int]string{2: "2T", 4: "4T"}[threads]
			b.Run(name, func(b *testing.B) {
				var avg float64
				for i := 0; i < b.N; i++ {
					m := experiments.NewMatrix(benchScale, 1)
					s, err := m.Speedups(context.Background(), core.CCSI(comm), core.CSMT(), threads)
					if err != nil {
						b.Fatal(err)
					}
					avg = s.Avg
				}
				b.ReportMetric(avg, "speedup-%")
				b.ReportMetric(paper[name], "paper-%")
			})
		}
	}
}

// BenchmarkFigure15 reproduces the COSI/OOSI-over-SMT speedup series.
func BenchmarkFigure15(b *testing.B) {
	type series struct {
		name  string
		tech  core.Technique
		th    int
		paper float64
	}
	list := []series{
		{"COSI-NS-2T", core.COSI(core.CommNoSplit), 2, 7.5},
		{"COSI-AS-2T", core.COSI(core.CommAlwaysSplit), 2, 9.8},
		{"OOSI-NS-2T", core.OOSI(core.CommNoSplit), 2, 8.2},
		{"OOSI-AS-2T", core.OOSI(core.CommAlwaysSplit), 2, 13.0},
		{"COSI-NS-4T", core.COSI(core.CommNoSplit), 4, 6.4},
		{"COSI-AS-4T", core.COSI(core.CommAlwaysSplit), 4, 9.4},
		{"OOSI-NS-4T", core.OOSI(core.CommNoSplit), 4, 7.9},
		{"OOSI-AS-4T", core.OOSI(core.CommAlwaysSplit), 4, 15.7},
	}
	for _, s := range list {
		b.Run(s.name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				m := experiments.NewMatrix(benchScale, 1)
				sp, err := m.Speedups(context.Background(), s.tech, core.SMT(), s.th)
				if err != nil {
					b.Fatal(err)
				}
				avg = sp.Avg
			}
			b.ReportMetric(avg, "speedup-%")
			b.ReportMetric(s.paper, "paper-%")
		})
	}
}

// BenchmarkFigure16 reproduces the absolute-IPC comparison of all eight
// techniques at 2 and 4 threads.
func BenchmarkFigure16(b *testing.B) {
	for _, threads := range []int{2, 4} {
		for _, tech := range core.AllTechniques() {
			name := map[int]string{2: "2T/", 4: "4T/"}[threads] + tech.Name()
			b.Run(name, func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					m := experiments.NewMatrix(benchScale, 1)
					var sum float64
					for _, mix := range workload.Figure13b() {
						r, err := m.Run(context.Background(), mix, tech, threads)
						if err != nil {
							b.Fatal(err)
						}
						sum += r.IPC()
					}
					ipc = sum / 9
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// matrixBenchScale keeps one full-grid matrix iteration tractable.
const matrixBenchScale = 8000

// benchmarkMatrix runs the full deduplicated Figure 14+15+16 grid (144
// cells) through the plan-then-execute engine at the given parallelism.
func benchmarkMatrix(b *testing.B, parallel int) {
	plan, err := experiments.PlanFigures("14", "15", "16")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(matrixBenchScale, 1, experiments.WithParallelism(parallel))
		if err := m.Prefetch(context.Background(), plan); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.Len()*b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkMatrixSerial is the single-worker baseline for the grid.
func BenchmarkMatrixSerial(b *testing.B) { benchmarkMatrix(b, 1) }

// BenchmarkMatrixParallel fans the grid out over GOMAXPROCS workers; the
// cells/s ratio against BenchmarkMatrixSerial is the engine's speedup and
// tracks the perf trajectory on multi-core hardware.
func BenchmarkMatrixParallel(b *testing.B) { benchmarkMatrix(b, runtime.GOMAXPROCS(0)) }

// benchmarkCachedGrid runs the full figure grid through the public
// Service with a disk result cache rooted at dir.
func benchmarkCachedGrid(b *testing.B, dir string) *vexsmt.Service {
	d, err := rescache.NewDisk(dir)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := vexsmt.New(vexsmt.WithScale(matrixBenchScale), vexsmt.WithCache(d))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Collect(context.Background(), vexsmt.Plan{Figures: []string{"14", "15", "16"}}); err != nil {
		b.Fatal(err)
	}
	return svc
}

// BenchmarkCacheColdVsWarm measures what the content-addressed result
// cache buys a repeated sweep: "cold" simulates the 144-cell grid into a
// fresh cache, "warm" replays it entirely from disk. The cells/s ratio is
// the headline number of the caching layer (warm runs are typically
// orders of magnitude faster and perform zero simulator runs).
func BenchmarkCacheColdVsWarm(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc := benchmarkCachedGrid(b, b.TempDir())
			if svc.SimulationsRun() == 0 {
				b.Fatal("cold run simulated nothing")
			}
		}
		b.ReportMetric(float64(144*b.N)/b.Elapsed().Seconds(), "cells/s")
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		benchmarkCachedGrid(b, dir) // populate once, outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc := benchmarkCachedGrid(b, dir)
			if svc.SimulationsRun() != 0 {
				b.Fatalf("warm run simulated %d cells", svc.SimulationsRun())
			}
		}
		b.ReportMetric(float64(144*b.N)/b.Elapsed().Seconds(), "cells/s")
	})
}

// BenchmarkAblationRenaming quantifies cluster renaming (used by all paper
// experiments; proposed in the authors' CSMT paper).
func BenchmarkAblationRenaming(b *testing.B) {
	for _, renaming := range []bool{true, false} {
		name := map[bool]string{true: "on", false: "off"}[renaming]
		b.Run(name, func(b *testing.B) {
			mix, _ := workload.MixByLabel("llmm")
			profs, _ := mix.Profiles()
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(core.CSMT(), 4).WithScale(benchScale)
				cfg.ClusterRenaming = renaming
				s, err := sim.NewWorkload(cfg, profs)
				if err != nil {
					b.Fatal(err)
				}
				r, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationModes compares the multithreading taxonomy of the
// paper's introduction: single-thread, IMT, BMT, SMT.
func BenchmarkAblationModes(b *testing.B) {
	type mode struct {
		name    string
		m       sim.Mode
		threads int
	}
	for _, md := range []mode{
		{"single", sim.ModeSimultaneous, 1},
		{"IMT-4T", sim.ModeInterleaved, 4},
		{"BMT-4T", sim.ModeBlocked, 4},
		{"SMT-4T", sim.ModeSimultaneous, 4},
	} {
		b.Run(md.name, func(b *testing.B) {
			mix, _ := workload.MixByLabel("llhh")
			profs, _ := mix.Profiles()
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(core.SMT(), md.threads).WithScale(benchScale)
				cfg.Mode = md.m
				s, err := sim.NewWorkload(cfg, profs)
				if err != nil {
					b.Fatal(err)
				}
				r, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationClusters sweeps the cluster count at constant total
// issue width, an axis the paper's related work discusses.
func BenchmarkAblationClusters(b *testing.B) {
	geoms := map[string]isa.Geometry{
		"2x8": {Clusters: 2, IssueWidth: 8, ALUs: 8, Muls: 4, MemUnits: 2},
		"4x4": isa.ST200x4,
		"8x2": {Clusters: 8, IssueWidth: 2, ALUs: 2, Muls: 1, MemUnits: 1},
	}
	for _, name := range []string{"2x8", "4x4", "8x2"} {
		b.Run(name, func(b *testing.B) {
			mix, _ := workload.MixByLabel("mmhh")
			profs, _ := mix.Profiles()
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), 4).WithScale(benchScale)
				cfg.Geom = geoms[name]
				s, err := sim.NewWorkload(cfg, profs)
				if err != nil {
					b.Fatal(err)
				}
				r, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates.

func BenchmarkEngineCycle(b *testing.B) {
	for _, tech := range []core.Technique{core.CSMT(), core.CCSI(core.CommAlwaysSplit), core.SMT(), core.OOSI(core.CommAlwaysSplit)} {
		b.Run(tech.Name(), func(b *testing.B) {
			eng, err := core.NewEngine(isa.ST200x4, tech, 4)
			if err != nil {
				b.Fatal(err)
			}
			prof, _ := synth.ByName("x264")
			gens := make([]*synth.Generator, 4)
			for t := range gens {
				p := prof
				p.Seed += uint64(t)
				gens[t] = synth.MustNewGenerator(p, isa.ST200x4)
			}
			var ti synth.TInst
			var ready [core.MaxThreads]bool
			for t := 0; t < 4; t++ {
				ready[t] = true
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for t := 0; t < 4; t++ {
					if !eng.Active(t) {
						gens[t].Next(&ti)
						eng.Load(t, ti.Demand)
					}
				}
				eng.Cycle(&ready)
			}
		})
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	for _, name := range []string{"bzip2", "colorspace"} {
		b.Run(name, func(b *testing.B) {
			prof, _ := synth.ByName(name)
			gen := synth.MustNewGenerator(prof, isa.ST200x4)
			var ti synth.TInst
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen.Next(&ti)
			}
		})
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.MustNew(cache.Paper64KB4Way)
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64() % (256 << 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}

func benchmarkThroughput(b *testing.B, threads int, benchNames []string, mode sim.Mode, reference bool) {
	// Whole-simulator speed in VLIW instructions per second.
	profs := make([]synth.Profile, 0, len(benchNames))
	for _, name := range benchNames {
		p, ok := synth.ByName(name)
		if !ok {
			b.Fatalf("missing profile %q", name)
		}
		profs = append(profs, p)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), threads).WithScale(benchScale)
		cfg.Mode = mode
		cfg.ReferenceLoop = reference
		s, err := sim.NewWorkload(cfg, profs)
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// mixNames resolves a Figure 13(b) mix label to its benchmark names.
func mixNames(b *testing.B, label string) []string {
	mix, err := workload.MixByLabel(label)
	if err != nil {
		b.Fatal(err)
	}
	return mix.Benchmarks[:]
}

// imtMix is the mixed-runnability workload the per-context wake-up queue
// targets: two software threads — one memory-bound, one compute-bound — on
// an eight-context barrel-style interleaved machine. Six of the eight issue
// slots are permanently dead and the other two go dead whenever their
// thread stalls, so most cycles are skippable even though a thread is
// runnable almost all the time — exactly the case the old global
// all-stalled check could never skip.
var imtMix = []string{"mcf", "x264"}

const imtThreads = 8

func BenchmarkSimulatorThroughput(b *testing.B) {
	benchmarkThroughput(b, 4, mixNames(b, "mmhh"), sim.ModeSimultaneous, false)
}

// BenchmarkSimulatorThroughputIMT is the wake-up queue's target scenario
// (see imtMix). cmd/benchgate gates it separately from the SMT-heavy
// default so the IMT/BMT fast path cannot silently regress.
func BenchmarkSimulatorThroughputIMT(b *testing.B) {
	benchmarkThroughput(b, imtThreads, imtMix, sim.ModeInterleaved, false)
}

// BenchmarkSimulatorThroughputIMTReference is the bit-identical
// one-iteration-per-cycle loop on the IMT workload; the IMT fast/reference
// ratio is the hardware-independent quantity benchgate gates.
func BenchmarkSimulatorThroughputIMTReference(b *testing.B) {
	benchmarkThroughput(b, imtThreads, imtMix, sim.ModeInterleaved, true)
}

// BenchmarkSimulatorThroughputBMT tracks the blocked-multithreading
// ablation on a stall-heavy four-thread mix (reported, not gated).
func BenchmarkSimulatorThroughputBMT(b *testing.B) {
	benchmarkThroughput(b, 4, mixNames(b, "hhhh"), sim.ModeBlocked, false)
}

// BenchmarkSimulatorThroughputReference runs the bit-identical
// one-iteration-per-cycle reference loop (no stall fast-forward, no
// batched prefetch). The ratio against BenchmarkSimulatorThroughput is
// the event-driven core's speedup measured on the same hardware in the
// same run — the hardware-independent quantity cmd/benchgate gates on.
func BenchmarkSimulatorThroughputReference(b *testing.B) {
	benchmarkThroughput(b, 4, mixNames(b, "mmhh"), sim.ModeSimultaneous, true)
}

// benchmarkTraceThroughput is the synthetic headline scenario (mmhh, CCSI
// AS, 4 threads) with the generators swapped for the zero-copy trace
// replay engine: each thread's stream is recorded once outside the timer
// and replayed from a shared immutable arena, exactly how internal/wstore
// serves first-class workloads. The instrs/s ratio against
// BenchmarkSimulatorThroughput is the replay path's relative speed — it
// should be at least as fast as generating (no generator arithmetic, one
// batched copy per fetch), and cmd/benchgate gates the ratio.
func benchmarkTraceThroughput(b *testing.B, reference bool) {
	names := mixNames(b, "mmhh")
	cfg := sim.DefaultConfig(core.CCSI(core.CommAlwaysSplit), len(names)).WithScale(benchScale)
	cfg.ReferenceLoop = reference
	arenas := make([][]synth.TInst, len(names))
	for i, name := range names {
		p, ok := synth.ByName(name)
		if !ok {
			b.Fatalf("missing profile %q", name)
		}
		gen := synth.MustNewGenerator(p, isa.ST200x4)
		// One spawn's worth of instructions, so replay does the same work
		// per run as the synthetic path.
		arenas[i] = trace.Record(gen, int(gen.Length(cfg.ScaleDiv)))
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		jobs := make([]*sim.Job, len(arenas))
		for t, arena := range arenas {
			rep, err := trace.NewReplayer(names[t], arena)
			if err != nil {
				b.Fatal(err)
			}
			jobs[t] = sim.NewJob(rep, cfg.ScaleDiv)
		}
		s, err := sim.New(cfg, jobs)
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTraceReplayThroughput is the trace-replay headline benchgate
// gates against BenchmarkSimulatorThroughput (same run, same hardware).
func BenchmarkTraceReplayThroughput(b *testing.B) {
	benchmarkTraceThroughput(b, false)
}

// BenchmarkTraceReplayThroughputReference replays the same traces through
// the bit-identical one-iteration-per-cycle loop (reported, not gated).
func BenchmarkTraceReplayThroughputReference(b *testing.B) {
	benchmarkTraceThroughput(b, true)
}

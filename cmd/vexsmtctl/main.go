// Command vexsmtctl runs an experiment grid across one or more vexsmtd
// shards and merges the results into a single canonical document.
//
// It is the client half of distributed mode: the grid of the named
// figures is resolved once, partitioned into K deterministic shards
// (pkg/vexsmt/shard), fanned out over the backends with health-based
// placement, retry and failover, and merged under the strict checks of
// ResultSet.Merge. Because per-cell seeds derive from workload identity,
// the merged output is byte-identical to what a single process would
// produce — `vexsmtctl -json out` files diff clean no matter how many
// machines ran the sweep. Interrupting a run (SIGINT) propagates a DELETE
// to every shard within one timeslice-bounded poll.
//
// Usage:
//
//	vexsmtctl -fig 14                                   # in-process run
//	vexsmtctl -shards http://a:8080,http://b:8080       # two-shard sweep
//	vexsmtctl -shards http://a:8080 -k 4                # 4 shards, 1 daemon
//	vexsmtctl -fig 14,15 -scale 1000 -json results.json # JSON export
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vexsmtctl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		shards   = flag.String("shards", "", "comma-separated vexsmtd base URLs (e.g. http://a:8080,http://b:8080); empty runs in-process")
		fig      = flag.String("fig", "all", "figures whose grid to run: comma-separated list of 13a, 13b, 14, 15, 16, or all")
		sweep    = flag.Bool("sweep", false, "also sweep every technique over all nine mixes at 2 and 4 threads")
		scale    = flag.Int64("scale", 100, "scale divisor of paper scale (1 = paper scale)")
		quick    = flag.Bool("quick", false, "shorthand for -scale 1000")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		k        = flag.Int("k", 0, "number of shards to split the grid into (default: one per backend)")
		conc     = flag.Int("concurrency", 0, "max shards in flight (default: auto-sized from the backends' /healthz capacity)")
		retries  = flag.Int("retries", 2, "extra attempts per shard after a backend failure (0 disables)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool bound for in-process execution")
		jsonOut  = flag.String("json", "", "write the merged grid as schema-versioned JSON to this file")
		verbose  = flag.Bool("v", false, "log placement, retries and backend failures")
	)
	flag.Parse()
	if *quick {
		*scale = 1000
	}

	// SIGTERM too: CI cancellation and `timeout` send it, and dying without
	// cancelling the run context would orphan running shards on the daemons.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	figures, err := vexsmt.ParseFigures(*fig)
	if err != nil {
		return err
	}
	plan := vexsmt.Plan{Figures: figures, Sweep: *sweep}

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	start := time.Now()
	var rs *vexsmt.ResultSet
	nBackends := len(urls)
	// Both in-process paths (plain Collect and local sharding) use one
	// service built from the same flags — constructed once so the two can
	// never drift apart.
	var svc *vexsmt.Service
	if len(urls) == 0 {
		nBackends = 1
		svc, err = vexsmt.New(
			vexsmt.WithScale(*scale),
			vexsmt.WithSeed(*seed),
			vexsmt.WithParallelism(*parallel),
		)
		if err != nil {
			return err
		}
	}
	if svc != nil && *k <= 1 {
		// Single-process reference path: a plain Service.Collect. Its
		// canonical encoding is exactly what distributed runs are diffed
		// against.
		rs, err = svc.Collect(ctx, plan)
		if err != nil {
			return err
		}
		rs.Canonicalize()
	} else {
		var backends []shard.Backend
		if svc != nil {
			// Sharded, but in-process: one local backend, K shards.
			backends = append(backends, shard.NewLocal("local", svc))
		} else {
			for _, u := range urls {
				b, err := shard.NewHTTP(u)
				if err != nil {
					return err
				}
				backends = append(backends, b)
			}
		}
		cfg := shard.Config{
			Scale:       *scale,
			Seed:        *seed,
			Shards:      *k,
			Concurrency: *conc,
			Retries:     *retries,
		}
		if *retries <= 0 {
			cfg.Retries = -1 // Config treats 0 as "default"; the flag means "disable"
		}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "vexsmtctl: "+format+"\n", args...)
			}
		}
		progressDone := liveProgress(&cfg)
		coord, err := shard.New(cfg, backends...)
		if err != nil {
			return err
		}
		rs, err = coord.Collect(ctx, plan)
		progressDone()
		if err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				return fmt.Errorf("cancelled; DELETE propagated to all shards")
			}
			return err
		}
	}

	fmt.Printf("%d cells (1/%d scale, seed %d) in %.1fs across %d backend(s)\n",
		len(rs.Cells), *scale, *seed, time.Since(start).Seconds(), nBackends)
	if *jsonOut != "" {
		if err := vexsmt.EncodeToFile(*jsonOut, rs); err != nil {
			return err
		}
		fmt.Printf("wrote %d cells to %s (schema v%d)\n", len(rs.Cells), *jsonOut, vexsmt.SchemaVersion)
		return nil
	}
	printIPCSummary(rs)
	return nil
}

// liveProgress wires a single-line progress meter into cfg and returns a
// function that finishes the line.
func liveProgress(cfg *shard.Config) func() {
	wrote := false
	cfg.OnProgress = func(p shard.Progress) {
		wrote = true
		fmt.Fprintf(os.Stderr, "\rcells %d/%d  shards %d/%d  retries %d ",
			p.CellsDone, p.CellsTotal, p.ShardsDone, p.ShardsTotal, p.Retries)
	}
	return func() {
		if wrote {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// printIPCSummary renders the merged grid as a technique × thread-count
// mean-IPC table (a Figure 16 view computed purely from merged cells —
// no local simulation state exists to render the full figures from).
func printIPCSummary(rs *vexsmt.ResultSet) {
	if len(rs.Cells) == 0 {
		return
	}
	type key struct {
		tech    string
		threads int
	}
	sum := make(map[key]float64)
	n := make(map[key]int)
	threadSet := make(map[int]bool)
	for _, c := range rs.Cells {
		k := key{c.Technique, c.Threads}
		sum[k] += c.IPC
		n[k]++
		threadSet[c.Threads] = true
	}
	var threads []int
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)

	fmt.Printf("\nmean IPC over %d cells:\n%-10s", len(rs.Cells), "technique")
	for _, t := range threads {
		fmt.Printf("  %4dT", t)
	}
	fmt.Println()
	for _, tech := range vexsmt.Techniques() {
		any := false
		row := fmt.Sprintf("%-10s", tech)
		for _, t := range threads {
			k := key{tech, t}
			if n[k] == 0 {
				row += "     -"
				continue
			}
			any = true
			row += fmt.Sprintf("  %5.2f", sum[k]/float64(n[k]))
		}
		if any {
			fmt.Println(row)
		}
	}
}

// Command vexsmtctl runs an experiment grid across one or more vexsmtd
// backends and assembles the results into a single canonical document.
//
// It is the client half of distributed mode: the grid of the named
// figures is resolved once into cells, and the cells — not shards — are
// scheduled over the backends (pkg/vexsmt/sched via pkg/vexsmt/shard)
// with health-based slot sizing, work stealing for stragglers, and
// per-cell retry and failover. Because per-cell seeds derive from
// workload identity and cached results are byte-identical to simulated
// ones, the output is byte-identical to what a single process would
// produce — `vexsmtctl -json out` files diff clean no matter how many
// machines ran the sweep or how warm their caches were. Interrupting a
// run (SIGINT) propagates a DELETE to every in-flight cell within one
// timeslice-bounded poll.
//
// Usage:
//
//	vexsmtctl -fig 14                                   # in-process run
//	vexsmtctl -shards http://a:8080,http://b:8080       # two-backend sweep
//	vexsmtctl -fig 14,15 -scale 1000 -json results.json # JSON export
//	vexsmtctl -cache off                                # bypass result caches
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
	"vexsmt/pkg/vexsmt/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vexsmtctl:", err)
		os.Exit(1)
	}
}

// gridPlan resolves the -fig/-sweep flags into the grid plan, rejecting
// unknown figure names up front (with the list of valid ones) and plans
// that name no grid cells at all — "-fig 13a" would otherwise "run"
// an empty sweep and print a zero-cell summary as if it had worked.
func gridPlan(figList string, sweep bool) (vexsmt.Plan, error) {
	figures, err := vexsmt.ParseFigures(figList)
	if err != nil {
		return vexsmt.Plan{}, err
	}
	plan := vexsmt.Plan{Figures: figures, Sweep: sweep}
	scratch, err := vexsmt.New()
	if err != nil {
		return vexsmt.Plan{}, err
	}
	n, err := scratch.PlanSize(plan)
	if err != nil {
		return vexsmt.Plan{}, err
	}
	if n == 0 {
		return vexsmt.Plan{}, fmt.Errorf("figures %q plan no grid cells (13a is single-threaded, 13b is a table; render them with paperbench); grid figures are 14, 15, 16",
			figList)
	}
	return plan, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("vexsmtctl", flag.ContinueOnError)
	var (
		shards   = fs.String("shards", "", "comma-separated vexsmtd base URLs (e.g. http://a:8080,http://b:8080); empty runs in-process")
		fig      = fs.String("fig", "all", "figures whose grid to run: comma-separated list of 13a, 13b, 14, 15, 16, or all")
		sweep    = fs.Bool("sweep", false, "also sweep every technique over all nine mixes at 2 and 4 threads")
		scale    = fs.Int64("scale", 100, "scale divisor of paper scale (1 = paper scale)")
		quick    = fs.Bool("quick", false, "shorthand for -scale 1000")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		retries  = fs.Int("retries", 2, "extra attempts per cell after a backend failure (0 disables)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool bound for in-process execution")
		jsonOut  = fs.String("json", "", "write the grid as schema-versioned JSON to this file")
		cacheOn  = fs.String("cache", "on", "result cache: on (in-process runs use the disk cache; remote backends use theirs) or off (bypass everywhere)")
		cacheDir = fs.String("cache-dir", "", "in-process result cache directory (default: the user cache dir, e.g. ~/.cache/vexsmt)")
		verbose  = fs.Bool("v", false, "log placement, steals, retries and backend failures")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*scale = 1000
	}

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	// Only the in-process path opens the disk cache — a remote run
	// forwards the on/off decision to the daemons, which own their caches,
	// and must not create an unused directory on the client. The mode is
	// still validated up front either way, so a bad -cache value dies
	// before any daemon is contacted.
	var diskCache *cache.Disk
	if len(urls) == 0 {
		var err error
		if diskCache, err = cache.FromFlag(*cacheOn, *cacheDir); err != nil {
			return err
		}
	} else if err := cache.ValidateMode(*cacheOn); err != nil {
		return err
	}

	// SIGTERM too: CI cancellation and `timeout` send it, and dying without
	// cancelling the run context would orphan running cells on the daemons.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	plan, err := gridPlan(*fig, *sweep)
	if err != nil {
		return err
	}

	start := time.Now()
	var rs *vexsmt.ResultSet
	nBackends := len(urls)
	var cacheStats func() vexsmt.CacheStats
	if len(urls) == 0 {
		// Single-process reference path: a plain Service.Collect routed
		// through the same cell scheduler as everything else. Its canonical
		// encoding is exactly what distributed runs are diffed against.
		nBackends = 1
		opts := []vexsmt.Option{
			vexsmt.WithScale(*scale),
			vexsmt.WithSeed(*seed),
			vexsmt.WithParallelism(*parallel),
		}
		if diskCache != nil {
			opts = append(opts, vexsmt.WithCache(diskCache))
			if *verbose {
				fmt.Fprintf(os.Stderr, "vexsmtctl: result cache at %s\n", diskCache.Dir())
			}
		}
		svc, err := vexsmt.New(opts...)
		if err != nil {
			return err
		}
		cacheStats = svc.CacheStats
		rs, err = svc.Collect(ctx, plan)
		if err != nil {
			return err
		}
		rs.Canonicalize()
	} else {
		var backends []shard.Backend
		for _, u := range urls {
			b, err := shard.NewHTTP(u)
			if err != nil {
				return err
			}
			backends = append(backends, b)
		}
		cfg := shard.Config{
			Scale:    *scale,
			Seed:     *seed,
			Retries:  *retries,
			CacheOff: *cacheOn == "off",
		}
		if *retries <= 0 {
			cfg.Retries = -1 // Config treats 0 as "default"; the flag means "disable"
		}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "vexsmtctl: "+format+"\n", args...)
			}
		}
		progressDone := liveProgress(&cfg)
		coord, err := shard.New(cfg, backends...)
		if err != nil {
			return err
		}
		rs, err = coord.Collect(ctx, plan)
		progressDone()
		if err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				return fmt.Errorf("cancelled; DELETE propagated to all in-flight cells")
			}
			return err
		}
	}

	fmt.Printf("%d cells (1/%d scale, seed %d) in %.1fs across %d backend(s)\n",
		len(rs.Cells), *scale, *seed, time.Since(start).Seconds(), nBackends)
	if cacheStats != nil {
		if st := cacheStats(); st.Hits+st.Misses > 0 {
			fmt.Printf("cache: %d hit(s), %d miss(es), %d put(s)\n", st.Hits, st.Misses, st.Puts)
		}
	}
	if *jsonOut != "" {
		if err := vexsmt.EncodeToFile(*jsonOut, rs); err != nil {
			return err
		}
		fmt.Printf("wrote %d cells to %s (schema v%d)\n", len(rs.Cells), *jsonOut, vexsmt.SchemaVersion)
		return nil
	}
	printIPCSummary(rs)
	return nil
}

// liveProgress wires a single-line progress meter into cfg and returns a
// function that finishes the line.
func liveProgress(cfg *shard.Config) func() {
	wrote := false
	cfg.OnProgress = func(p shard.Progress) {
		wrote = true
		fmt.Fprintf(os.Stderr, "\rcells %d/%d  stolen %d  retries %d  cache %d/%d ",
			p.CellsDone, p.CellsTotal, p.Stolen, p.Retries, p.CacheHits, p.CacheHits+p.CacheMisses)
	}
	return func() {
		if wrote {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// printIPCSummary renders the grid as a technique × thread-count
// mean-IPC table (a Figure 16 view computed purely from collected cells —
// no local simulation state exists to render the full figures from).
func printIPCSummary(rs *vexsmt.ResultSet) {
	if len(rs.Cells) == 0 {
		return
	}
	type key struct {
		tech    string
		threads int
	}
	sum := make(map[key]float64)
	n := make(map[key]int)
	threadSet := make(map[int]bool)
	for _, c := range rs.Cells {
		k := key{c.Technique, c.Threads}
		sum[k] += c.IPC
		n[k]++
		threadSet[c.Threads] = true
	}
	var threads []int
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)

	fmt.Printf("\nmean IPC over %d cells:\n%-10s", len(rs.Cells), "technique")
	for _, t := range threads {
		fmt.Printf("  %4dT", t)
	}
	fmt.Println()
	for _, tech := range vexsmt.Techniques() {
		any := false
		row := fmt.Sprintf("%-10s", tech)
		for _, t := range threads {
			k := key{tech, t}
			if n[k] == 0 {
				row += "     -"
				continue
			}
			any = true
			row += fmt.Sprintf("  %5.2f", sum[k]/float64(n[k]))
		}
		if any {
			fmt.Println(row)
		}
	}
}

// Command vexsmtctl runs an experiment grid across one or more vexsmtd
// backends and assembles the results into a single canonical document.
//
// It is the client half of distributed mode: the grid of the named
// figures is resolved once into cells, and the cells — not shards — are
// scheduled over the backends (pkg/vexsmt/sched via pkg/vexsmt/shard)
// with health-based slot sizing, work stealing for stragglers, and
// per-cell retry and failover. Because per-cell seeds derive from
// workload identity and cached results are byte-identical to simulated
// ones, the output is byte-identical to what a single process would
// produce — `vexsmtctl -json out` files diff clean no matter how many
// machines ran the sweep or how warm their caches were. Interrupting a
// run (SIGINT) propagates a DELETE to every in-flight cell within one
// timeslice-bounded poll.
//
// Usage:
//
//	vexsmtctl -fig 14                                   # in-process run
//	vexsmtctl -shards http://a:8080,http://b:8080       # two-backend sweep
//	vexsmtctl -fig 14,15 -scale 1000 -json results.json # JSON export
//	vexsmtctl -cache off                                # bypass result caches
//	vexsmtctl -corpus traces/ -fig 14                   # trace workloads join the grid
//
// Fleet mode (see pkg/vexsmt/fleet) replaces the static -shards list with
// a registry daemons join on their own:
//
//	vexsmtctl -coordinator :9090            # host the fleet registry
//	vexsmtctl -fleet http://host:9090 -status            # member table
//	vexsmtctl -fleet http://host:9090 -fig 14            # fleet sweep
//	vexsmtctl -fleet http://host:9090 -fig 14 -prefetch  # warm caches only
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
	"vexsmt/pkg/vexsmt/fault"
	"vexsmt/pkg/vexsmt/fleet"
	"vexsmt/pkg/vexsmt/resilience"
	"vexsmt/pkg/vexsmt/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vexsmtctl:", err)
		os.Exit(1)
	}
}

// gridPlan resolves the -fig/-sweep/-predictor/-corpus flags into the
// grid plan, rejecting unknown figure and predictor names up front (with
// the lists of valid ones) and plans that name no grid cells at all —
// "-fig 13a" would otherwise "run" an empty sweep and print a zero-cell
// summary as if it had worked. Workloads arrive as full "name@sha256"
// references (from vexsmt.LoadWorkloads), so a distributed sweep's
// daemons accept a trace cell only when they hold byte-identical content.
func gridPlan(figList string, sweep bool, predList string, workloads []string) (vexsmt.Plan, error) {
	figures, err := vexsmt.ParseFigures(figList)
	if err != nil {
		return vexsmt.Plan{}, err
	}
	preds, err := vexsmt.ParsePredictors(predList)
	if err != nil {
		return vexsmt.Plan{}, err
	}
	plan := vexsmt.Plan{Figures: figures, Sweep: sweep, Predictors: preds, Workloads: workloads}
	scratch, err := vexsmt.New()
	if err != nil {
		return vexsmt.Plan{}, err
	}
	n, err := scratch.PlanSize(plan)
	if err != nil {
		return vexsmt.Plan{}, err
	}
	if n == 0 {
		return vexsmt.Plan{}, fmt.Errorf("figures %q plan no grid cells (13a is single-threaded, 13b is a table; render them with paperbench); grid figures are 14, 15, 16",
			figList)
	}
	return plan, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("vexsmtctl", flag.ContinueOnError)
	var (
		shards   = fs.String("shards", "", "comma-separated vexsmtd base URLs (e.g. http://a:8080,http://b:8080); empty runs in-process")
		fig      = fs.String("fig", "all", "figures whose grid to run: comma-separated list of 13a, 13b, 14, 15, 16, or all")
		sweep    = fs.Bool("sweep", false, "also sweep every technique over all nine mixes at 2 and 4 threads")
		pred     = fs.String("predictor", "static", "branch predictors to cross the grid with: comma-separated list of static, bimodal, gshare, tage, or all")
		corpus   = fs.String("corpus", "", "trace corpus directory (.vxt/.vex): every workload in it joins the plan, swept under all techniques at 2 and 4 threads")
		scale    = fs.Int64("scale", 100, "scale divisor of paper scale (1 = paper scale)")
		quick    = fs.Bool("quick", false, "shorthand for -scale 1000")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		retries  = fs.Int("retries", 2, "extra attempts per cell after a backend failure (0 disables)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool bound for in-process execution")
		jsonOut  = fs.String("json", "", "write the grid as schema-versioned JSON to this file")
		cacheOn  = fs.String("cache", "on", "result cache: on (in-process runs use the disk cache; remote backends use theirs) or off (bypass everywhere)")
		cacheDir = fs.String("cache-dir", "", "in-process result cache directory (default: the user cache dir, e.g. ~/.cache/vexsmt)")
		verbose  = fs.Bool("v", false, "log placement, steals, retries and backend failures")

		chaosSeed     = fs.Uint64("chaos-seed", 0, "fault-injection seed; the same seed and profile reproduce the identical fault schedule")
		chaosProfile  = fs.String("chaos-profile", "off", "fault-injection profile for the client paths: off, light or heavy (results stay byte-identical)")
		localFallback = fs.Bool("local-fallback", false, "degrade to in-process execution when no backend is healthy instead of failing the run")

		coordinator = fs.String("coordinator", "", "serve a standalone fleet registry on this address (e.g. :9090) instead of running a sweep")
		fleetTTL    = fs.Duration("fleet-ttl", fleet.DefaultTTL, "with -coordinator: registration lease; members silent longer are evicted")
		fleetURL    = fs.String("fleet", "", "fleet registry URL; the sweep runs across the daemons registered there")
		status      = fs.Bool("status", false, "with -fleet: print the fleet's member table and exit")
		prefetch    = fs.Bool("prefetch", false, "with -fleet: push the plan's cells to the fleet's caches, wait for warm-up, and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*scale = 1000
	}
	// Chaos wiring is strictly opt-in: with the profile off no client is
	// wrapped and the fault layer costs zero. The chaos seed also feeds
	// the retry policy's deterministic jitter, so a reproduced failure
	// replays its timing too.
	chaos, err := fault.ParseProfile(*chaosProfile)
	if err != nil {
		return err
	}
	var inj *fault.Injector
	chaosClient := http.DefaultClient
	if chaos.Enabled() {
		inj = fault.New(*chaosSeed, chaos)
		chaosClient = fault.Client(inj, nil)
		fmt.Fprintf(os.Stderr, "vexsmtctl: chaos profile %s, seed %d\n", chaos.Name, *chaosSeed)
	}

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if *fleetURL != "" && len(urls) > 0 {
		return fmt.Errorf("-fleet and -shards are exclusive: the fleet registry replaces the static backend list")
	}
	if (*status || *prefetch) && *fleetURL == "" {
		return fmt.Errorf("-status and -prefetch need -fleet (the registry to talk to)")
	}

	// Only the in-process sweep path opens the disk cache — a remote run
	// forwards the on/off decision to the daemons, which own their caches,
	// and must not create an unused directory on the client. The mode is
	// still validated up front either way, so a bad -cache value dies
	// before any daemon is contacted.
	var diskCache *cache.Disk
	switch {
	case *coordinator != "" || *status:
		// No sweep runs; no cache is involved.
	case len(urls) > 0 || *fleetURL != "":
		if err := cache.ValidateMode(*cacheOn); err != nil {
			return err
		}
	default:
		var err error
		if diskCache, err = cache.FromFlag(*cacheOn, *cacheDir); err != nil {
			return err
		}
	}

	// SIGTERM too: CI cancellation and `timeout` send it, and dying without
	// cancelling the run context would orphan running cells on the daemons.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordinator != "" {
		return runCoordinator(ctx, *coordinator, *fleetTTL)
	}
	if *status {
		return printFleetStatus(ctx, *fleetURL)
	}

	// The corpus loads into the process-shared store, so the in-process
	// path replays it directly; distributed runs only ship the references,
	// and every daemon resolves them against its own -workload-dir corpus.
	var wlRefs []string
	if *corpus != "" {
		refs, err := vexsmt.LoadWorkloads(*corpus)
		if err != nil {
			return err
		}
		wlRefs = refs
		if *verbose {
			fmt.Fprintf(os.Stderr, "vexsmtctl: corpus %s: %s\n", *corpus, strings.Join(refs, ", "))
		}
	}

	plan, err := gridPlan(*fig, *sweep, *pred, wlRefs)
	if err != nil {
		return err
	}
	if *prefetch {
		return runPrefetch(ctx, *fleetURL, plan, *scale, *seed)
	}

	start := time.Now()
	var rs *vexsmt.ResultSet
	nBackends := len(urls)
	var cacheStats func() vexsmt.CacheStats
	if len(urls) == 0 && *fleetURL == "" {
		// Single-process reference path: a plain Service.Collect routed
		// through the same cell scheduler as everything else. Its canonical
		// encoding is exactly what distributed runs are diffed against.
		nBackends = 1
		opts := []vexsmt.Option{
			vexsmt.WithScale(*scale),
			vexsmt.WithSeed(*seed),
			vexsmt.WithParallelism(*parallel),
		}
		if diskCache != nil {
			var cc vexsmt.CellCache = diskCache
			if inj != nil {
				// Chaos grinds the in-process cache tier too; the consumer's
				// decode-or-miss path absorbs every injected corruption.
				cc = fault.NewCache(inj, diskCache)
			}
			opts = append(opts, vexsmt.WithCache(cc))
			if *verbose {
				fmt.Fprintf(os.Stderr, "vexsmtctl: result cache at %s\n", diskCache.Dir())
			}
		}
		svc, err := vexsmt.New(opts...)
		if err != nil {
			return err
		}
		cacheStats = svc.CacheStats
		rs, err = svc.Collect(ctx, plan)
		if err != nil {
			return err
		}
		rs.Canonicalize()
	} else {
		cfg := shard.Config{
			Scale:         *scale,
			Seed:          *seed,
			Retries:       *retries,
			CacheOff:      *cacheOn == "off",
			LocalFallback: *localFallback,
		}
		cfg.Policy = resilience.Default()
		cfg.Policy.Seed = *chaosSeed
		if *retries <= 0 {
			cfg.Retries = -1 // Config treats 0 as "default"; the flag means "disable"
		}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "vexsmtctl: "+format+"\n", args...)
			}
		}
		progressDone := liveProgress(&cfg)
		var coord *shard.Coordinator
		if *fleetURL != "" {
			// The registry is the backend source, re-resolved per sweep —
			// daemons that joined since the last run are picked up here.
			// The source's client carries the chaos transport (when on) to
			// every backend it yields.
			src, err := fleet.NewHTTPSource(*fleetURL, chaosClient)
			if err != nil {
				return err
			}
			members, err := fleet.FetchMembers(ctx, nil, *fleetURL)
			if err != nil {
				return err
			}
			if len(members) == 0 {
				return fmt.Errorf("fleet at %s has no registered daemons", *fleetURL)
			}
			nBackends = len(members)
			if coord, err = shard.NewFromSource(cfg, src); err != nil {
				return err
			}
		} else {
			var backends []shard.Backend
			for _, u := range urls {
				b, err := shard.NewHTTP(u, shard.WithClient(chaosClient))
				if err != nil {
					return err
				}
				backends = append(backends, b)
			}
			var err error
			if coord, err = shard.New(cfg, backends...); err != nil {
				return err
			}
		}
		rs, err = coord.Collect(ctx, plan)
		progressDone()
		if err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				return fmt.Errorf("cancelled; DELETE propagated to all in-flight cells")
			}
			return err
		}
	}

	fmt.Printf("%d cells (1/%d scale, seed %d) in %.1fs across %d backend(s)\n",
		len(rs.Cells), *scale, *seed, time.Since(start).Seconds(), nBackends)
	if cacheStats != nil {
		if st := cacheStats(); st.Hits+st.Misses > 0 {
			fmt.Printf("cache: %d hit(s), %d miss(es), %d put(s)\n", st.Hits, st.Misses, st.Puts)
		}
	}
	if *jsonOut != "" {
		if err := vexsmt.EncodeToFile(*jsonOut, rs); err != nil {
			return err
		}
		fmt.Printf("wrote %d cells to %s (schema v%d)\n", len(rs.Cells), *jsonOut, vexsmt.SchemaVersion)
		return nil
	}
	printIPCSummary(rs)
	return nil
}

// runCoordinator hosts a standalone fleet registry: daemons register
// under /v1/fleet/ and /healthz answers with a fleet-wide rollup, so one
// curl shows the whole fleet's capacity and cache footprint. Serves
// until SIGINT/SIGTERM.
func runCoordinator(ctx context.Context, addr string, ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("-fleet-ttl must be positive")
	}
	// Three beats per lease: one dropped heartbeat never evicts a member,
	// a dead one leaves within a lease.
	interval := ttl / 3
	if interval < 200*time.Millisecond {
		interval = 200 * time.Millisecond
	}
	reg := fleet.NewRegistry(fleet.WithTTL(ttl), fleet.WithHeartbeatInterval(interval))
	mux := http.NewServeMux()
	mux.Handle("/v1/fleet/", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"ok": true, "role": "coordinator", "fleet": reg.Rollup()})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("vexsmtctl coordinator listening on %s (lease %s, heartbeat %s)\n", ln.Addr(), ttl, interval)
	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(shctx)
}

// printFleetStatus renders the registry's member table.
func printFleetStatus(ctx context.Context, registryURL string) error {
	members, err := fleet.FetchMembers(ctx, nil, registryURL)
	if err != nil {
		return err
	}
	if len(members) == 0 {
		fmt.Println("fleet: no registered daemons")
		return nil
	}
	fmt.Printf("%-20s %-28s %5s %5s %6s %-14s %3s %8s %9s %9s\n",
		"MEMBER", "URL", "CAP", "RUN", "SIMS", "PRED", "WL", "ENTRIES", "PEERHITS", "UPTIME")
	for _, m := range members {
		cacheEntries := "-"
		if m.CacheEnabled {
			cacheEntries = fmt.Sprintf("%d", m.CacheSize.Entries)
		}
		pred := m.Predictors
		if pred == "" {
			pred = "-" // idle: no plans running, no predictor axis to report
		}
		wl := 0 // advertised trace corpus size
		if m.Workloads != "" {
			wl = strings.Count(m.Workloads, ",") + 1
		}
		fmt.Printf("%-20s %-28s %5d %5d %6d %-14s %3d %8s %9d %9s\n",
			m.ID, m.URL, m.Capacity, m.Running, m.Simulations, pred, wl,
			cacheEntries, m.Cache.PeerHits,
			(time.Duration(m.UptimeSeconds) * time.Second).String())
	}
	return nil
}

// runPrefetch pushes the plan's cells across the fleet's caches
// (round-robin over the cacheful members) and waits until every member's
// background warm-up drains, so a sweep scheduled right after runs
// against a warm fleet.
func runPrefetch(ctx context.Context, registryURL string, plan vexsmt.Plan, scale int64, seed uint64) error {
	scratch, err := vexsmt.New(vexsmt.WithScale(scale), vexsmt.WithSeed(seed))
	if err != nil {
		return err
	}
	cells, err := scratch.PlanCells(plan)
	if err != nil {
		return err
	}
	members, err := fleet.FetchMembers(ctx, nil, registryURL)
	if err != nil {
		return err
	}
	assignments := fleet.Assign(cells, members)
	if err := fleet.Push(ctx, nil, assignments, scale, seed); err != nil {
		return err
	}
	for _, a := range assignments {
		fmt.Printf("prefetch: %d cell(s) -> %s\n", len(a.Cells), a.Member.ID)
	}
	deadline := time.Now().Add(10 * time.Minute)
	for {
		warming := 0
		for _, a := range assignments {
			n, err := prefetchActive(ctx, a.Member.URL)
			if err != nil {
				continue // a dead member costs warmth, not the prefetch
			}
			warming += n
		}
		if warming == 0 {
			fmt.Printf("prefetch: fleet warm (%d cells over %d member(s))\n", len(cells), len(assignments))
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("prefetch still warming after 10m")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// prefetchActive reads one daemon's background warm-up count off
// /healthz.
func prefetchActive(ctx context.Context, baseURL string) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		PrefetchActive int `json:"prefetch_active"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.PrefetchActive, nil
}

// liveProgress wires a single-line progress meter into cfg and returns a
// function that finishes the line.
func liveProgress(cfg *shard.Config) func() {
	wrote := false
	cfg.OnProgress = func(p shard.Progress) {
		wrote = true
		fmt.Fprintf(os.Stderr, "\rcells %d/%d  stolen %d  retries %d  cache %d/%d ",
			p.CellsDone, p.CellsTotal, p.Stolen, p.Retries, p.CacheHits, p.CacheHits+p.CacheMisses)
	}
	return func() {
		if wrote {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// printIPCSummary renders the grid as a technique × thread-count
// mean-IPC table (a Figure 16 view computed purely from collected cells —
// no local simulation state exists to render the full figures from).
func printIPCSummary(rs *vexsmt.ResultSet) {
	if len(rs.Cells) == 0 {
		return
	}
	type key struct {
		tech    string
		threads int
	}
	sum := make(map[key]float64)
	n := make(map[key]int)
	threadSet := make(map[int]bool)
	for _, c := range rs.Cells {
		k := key{c.Technique, c.Threads}
		sum[k] += c.IPC
		n[k]++
		threadSet[c.Threads] = true
	}
	var threads []int
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)

	fmt.Printf("\nmean IPC over %d cells:\n%-10s", len(rs.Cells), "technique")
	for _, t := range threads {
		fmt.Printf("  %4dT", t)
	}
	fmt.Println()
	for _, tech := range vexsmt.Techniques() {
		any := false
		row := fmt.Sprintf("%-10s", tech)
		for _, t := range threads {
			k := key{tech, t}
			if n[k] == 0 {
				row += "     -"
				continue
			}
			any = true
			row += fmt.Sprintf("  %5.2f", sum[k]/float64(n[k]))
		}
		if any {
			fmt.Println(row)
		}
	}
}

package main

import (
	"strings"
	"testing"
)

// TestUnknownFigureRejectedUpFront: a typo'd -fig must fail immediately
// with the list of valid names instead of silently running an empty (or
// wrong) plan.
func TestUnknownFigureRejectedUpFront(t *testing.T) {
	for _, bad := range []string{"bogus", "14,bogus", "all,bogus"} {
		err := run([]string{"-fig", bad})
		if err == nil {
			t.Fatalf("-fig %q accepted", bad)
		}
		if !strings.Contains(err.Error(), "13a, 13b, 14, 15, 16") {
			t.Errorf("-fig %q: error does not list the valid figures: %v", bad, err)
		}
	}
}

// TestEmptyGridPlanRejected: figures that plan no grid cells (13a/13b)
// used to "run" a zero-cell sweep and print an empty summary as if it
// had worked; now they fail up front and point at paperbench.
func TestEmptyGridPlanRejected(t *testing.T) {
	for _, figs := range []string{"13a", "13b", "13a,13b"} {
		err := run([]string{"-fig", figs})
		if err == nil {
			t.Fatalf("-fig %q ran an empty grid plan", figs)
		}
		if !strings.Contains(err.Error(), "no grid cells") {
			t.Errorf("-fig %q: unhelpful error: %v", figs, err)
		}
	}
	// The same figures alongside a grid figure are fine — the grid is
	// non-empty.
	if _, err := gridPlan("13a,14", false, "static", nil); err != nil {
		t.Fatalf("13a,14: %v", err)
	}
	// A sweep makes any figure list non-empty.
	if _, err := gridPlan("13a", true, "static", nil); err != nil {
		t.Fatalf("13a with -sweep: %v", err)
	}
}

// TestUnknownPredictorRejectedUpFront: a typo'd -predictor must fail
// immediately with the list of valid models instead of running the wrong
// (or no) sweep.
func TestUnknownPredictorRejectedUpFront(t *testing.T) {
	for _, bad := range []string{"perceptron", "bimodal,perceptron", "all,perceptron"} {
		err := run([]string{"-fig", "14", "-predictor", bad})
		if err == nil {
			t.Fatalf("-predictor %q accepted", bad)
		}
		if !strings.Contains(err.Error(), "static, bimodal, gshare, tage") {
			t.Errorf("-predictor %q: error does not list the valid models: %v", bad, err)
		}
	}
	if err := run([]string{"-fig", "14", "-predictor", ","}); err == nil {
		t.Fatal("-predictor \",\" accepted")
	}
}

// TestBadCacheFlagRejected: -cache accepts only on/off.
func TestBadCacheFlagRejected(t *testing.T) {
	err := run([]string{"-fig", "14", "-cache", "sideways"})
	if err == nil || !strings.Contains(err.Error(), "want on or off") {
		t.Fatalf("-cache sideways: %v", err)
	}
}

// TestFleetFlagValidation: fleet flags that cannot work together (or
// alone) die before any network traffic.
func TestFleetFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"fleet-and-shards":       {"-fleet", "http://r:9090", "-shards", "http://a:8080"},
		"status-without-fleet":   {"-status"},
		"prefetch-without-fleet": {"-prefetch"},
		"bad-fleet-url":          {"-fleet", "not-a-url", "-fig", "14"},
		"negative-ttl":           {"-coordinator", "127.0.0.1:0", "-fleet-ttl", "-1s"},
	} {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("args %v accepted", args)
			}
		})
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vexsmt/internal/wstore"
)

// TestFlagValidation: bad invocations die with a helpful error instead of
// a partial run.
func TestFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"no-mode":             {},
		"unknown-flag":        {"-bogus"},
		"record-needs-bench":  {"-record", "100"},
		"record-needs-out":    {"-bench", "idct", "-record", "100"},
		"unknown-bench":       {"-bench", "nosuch"},
		"replay-missing-file": {"-replay", filepath.Join(t.TempDir(), "nope.vxt")},
	} {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("args %v accepted", args)
			}
		})
	}
}

// TestRecordReplayRoundTrip: -record writes a VXT1 file that -replay (and
// the workload store) read back.
func TestRecordReplayRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "idct.vxt")
	if err := run([]string{"-bench", "idct", "-record", "500", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-replay", out}); err != nil {
		t.Fatal(err)
	}
}

// TestCorpusRecordsVectorProfiles: -corpus emits one loadable .vxt per
// vector profile — the corpus vexsmtd -workload-dir serves.
func TestCorpusRecordsVectorProfiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-corpus", dir, "-record", "300"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("corpus has %d files, want 3 vector profiles", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".vxt") {
			t.Errorf("unexpected corpus file %s", e.Name())
		}
	}
	traces, err := wstore.New().LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if tr.Len() != 300 {
			t.Errorf("%s: %d instructions, want 300", tr.Name, tr.Len())
		}
	}
}

// Command tracegen inspects the synthetic benchmark generators: it dumps
// sample instructions, measures stream shape (ops/instruction, branch and
// memory behaviour), and reports single-thread IPC against the paper's
// Figure 13(a) values.
//
// Usage:
//
//	tracegen -bench colorspace -dump 20
//	tracegen -bench mcf -measure 100000
//	tracegen -table            # full Figure 13(a) reproduction
//	tracegen -table -scale 100 # longer, more accurate runs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"vexsmt/internal/experiments"
	"vexsmt/internal/isa"
	"vexsmt/internal/report"
	"vexsmt/internal/sim"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name (see -list)")
		list    = flag.Bool("list", false, "list benchmark profiles")
		dump    = flag.Int("dump", 0, "dump N sample instructions")
		measure = flag.Int64("measure", 0, "measure stream shape over N instructions")
		table   = flag.Bool("table", false, "reproduce the Figure 13(a) IPC table")
		scale   = flag.Int64("scale", 150, "scale divisor for -table (1 = paper scale)")
		record  = flag.Int("record", 0, "record N instructions of -bench to -out")
		out     = flag.String("out", "", "output trace file for -record")
		replay  = flag.String("replay", "", "replay a recorded trace file and print its shape")
	)
	flag.Parse()

	switch {
	case *record > 0:
		prof, ok := synth.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("-record needs -bench (try -list)"))
		}
		if *out == "" {
			fatal(fmt.Errorf("-record needs -out"))
		}
		gen, err := synth.NewGenerator(prof, isa.ST200x4)
		if err != nil {
			fatal(err)
		}
		instrs := trace.Record(gen, *record)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.Write(f, prof.Name, isa.ST200x4.Clusters, instrs); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", len(instrs), prof.Name, *out)

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		name, clusters, instrs, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		rep, err := trace.NewReplayer(name, instrs)
		if err != nil {
			fatal(err)
		}
		sh := synth.Measure(rep, int64(len(instrs)))
		fmt.Printf("trace %s: %d instructions, %d clusters\n", name, len(instrs), clusters)
		fmt.Printf("  ops/instr %.3f  taken %.3f  mem/instr %.3f  comm %.3f\n",
			sh.OpsPerInstr, sh.TakenFrac, sh.MemPerInstr, sh.CommFrac)
	case *list:
		fmt.Printf("%-12s %-4s %8s %8s %8s %8s\n", "name", "ilp", "meanOps", "memFrac", "commPr", "lenM")
		for _, p := range synth.Catalog() {
			fmt.Printf("%-12s %-4s %8.2f %8.2f %8.2f %8.0f\n",
				p.Name, p.Class.String(), p.MeanOps, p.MemFrac, p.CommProb, p.LengthMInstr)
		}

	case *table:
		rows, err := experiments.Figure13a(context.Background(), *scale, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Figure13aTable(rows))

	case *bench != "":
		prof, ok := synth.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q (try -list)", *bench))
		}
		gen, err := synth.NewGenerator(prof, isa.ST200x4)
		if err != nil {
			fatal(err)
		}
		if *dump > 0 {
			var ti synth.TInst
			for i := 0; i < *dump; i++ {
				gen.Next(&ti)
				fmt.Printf("pc=0x%06x ops=%2d taken=%-5v clusters=%04b",
					ti.PC, ti.Demand.NumOps(), ti.Taken, ti.Demand.UsedClusters())
				for c := 0; c < isa.ST200x4.Clusters; c++ {
					b := ti.Demand.B[c]
					if !b.IsEmpty() {
						fmt.Printf("  c%d[%da %dm %dx]", c, b.ALU, b.Mul, b.Mem)
					}
				}
				fmt.Println()
			}
			return
		}
		n := *measure
		if n == 0 {
			n = 100_000
		}
		sh := synth.Measure(gen, n)
		fmt.Printf("%s over %d instructions:\n", prof.Name, sh.Instrs)
		fmt.Printf("  ops/instr   %.3f\n", sh.OpsPerInstr)
		fmt.Printf("  taken frac  %.3f\n", sh.TakenFrac)
		fmt.Printf("  mem/instr   %.3f\n", sh.MemPerInstr)
		fmt.Printf("  comm frac   %.3f\n", sh.CommFrac)
		ipcr, ipcp, err := sim.MeasuredIPC(prof, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  IPCr %.2f  IPCp %.2f (at 1/%d paper scale)\n", ipcr, ipcp, *scale)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

// Command tracegen inspects the synthetic benchmark generators: it dumps
// sample instructions, measures stream shape (ops/instruction, branch and
// memory behaviour), reports single-thread IPC against the paper's
// Figure 13(a) values, and records generator streams as VXT1 trace files
// that the replay engine (internal/wstore) serves as first-class
// workloads.
//
// Usage:
//
//	tracegen -bench colorspace -dump 20
//	tracegen -bench mcf -measure 100000
//	tracegen -table                      # full Figure 13(a) reproduction
//	tracegen -table -scale 100           # longer, more accurate runs
//	tracegen -bench fir -record 100000 -out fir.vxt
//	tracegen -corpus traces/             # record every vector profile
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vexsmt/internal/experiments"
	"vexsmt/internal/isa"
	"vexsmt/internal/report"
	"vexsmt/internal/sim"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		bench   = fs.String("bench", "", "benchmark name (see -list)")
		list    = fs.Bool("list", false, "list benchmark profiles (scalar and vector)")
		dump    = fs.Int("dump", 0, "dump N sample instructions")
		measure = fs.Int64("measure", 0, "measure stream shape over N instructions")
		table   = fs.Bool("table", false, "reproduce the Figure 13(a) IPC table")
		scale   = fs.Int64("scale", 150, "scale divisor for -table (1 = paper scale)")
		record  = fs.Int("record", 0, "record N instructions of -bench to -out (also sizes -corpus traces)")
		out     = fs.String("out", "", "output trace file for -record")
		replay  = fs.String("replay", "", "replay a recorded trace file and print its shape")
		corpus  = fs.String("corpus", "", "record every vector profile into this directory as <name>.vxt")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *corpus != "":
		// A ready-to-serve trace corpus: every vector/SIMD profile, one
		// VXT1 file each, loadable by vexsmtd -workload-dir and
		// vexsmtctl -corpus.
		n := *record
		if n == 0 {
			n = 100_000
		}
		if err := os.MkdirAll(*corpus, 0o755); err != nil {
			return err
		}
		for _, prof := range synth.VectorCatalog() {
			if err := recordTrace(prof, n, filepath.Join(*corpus, prof.Name+".vxt")); err != nil {
				return err
			}
		}
		return nil

	case *record > 0:
		prof, ok := synth.ByName(*bench)
		if !ok {
			return fmt.Errorf("-record needs -bench (try -list)")
		}
		if *out == "" {
			return fmt.Errorf("-record needs -out")
		}
		return recordTrace(prof, *record, *out)

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		name, clusters, instrs, err := trace.Read(f)
		if err != nil {
			return err
		}
		rep, err := trace.NewReplayer(name, instrs)
		if err != nil {
			return err
		}
		sh := synth.Measure(rep, int64(len(instrs)))
		fmt.Printf("trace %s: %d instructions, %d clusters\n", name, len(instrs), clusters)
		fmt.Printf("  ops/instr %.3f  taken %.3f  mem/instr %.3f  comm %.3f\n",
			sh.OpsPerInstr, sh.TakenFrac, sh.MemPerInstr, sh.CommFrac)
		return nil

	case *list:
		fmt.Printf("%-12s %-4s %8s %8s %8s %8s %8s\n",
			"name", "ilp", "meanOps", "memFrac", "commPr", "burstPr", "lenM")
		for _, p := range append(synth.Catalog(), synth.VectorCatalog()...) {
			fmt.Printf("%-12s %-4s %8.2f %8.2f %8.2f %8.2f %8.0f\n",
				p.Name, p.Class.String(), p.MeanOps, p.MemFrac, p.CommProb, p.BurstProb, p.LengthMInstr)
		}
		return nil

	case *table:
		rows, err := experiments.Figure13a(context.Background(), *scale, 0)
		if err != nil {
			return err
		}
		fmt.Print(report.Figure13aTable(rows))
		return nil

	case *bench != "":
		prof, ok := synth.ByName(*bench)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", *bench)
		}
		gen, err := synth.NewGenerator(prof, isa.ST200x4)
		if err != nil {
			return err
		}
		if *dump > 0 {
			var ti synth.TInst
			for i := 0; i < *dump; i++ {
				gen.Next(&ti)
				fmt.Printf("pc=0x%06x ops=%2d taken=%-5v clusters=%04b",
					ti.PC, ti.Demand.NumOps(), ti.Taken, ti.Demand.UsedClusters())
				for c := 0; c < isa.ST200x4.Clusters; c++ {
					b := ti.Demand.B[c]
					if !b.IsEmpty() {
						fmt.Printf("  c%d[%da %dm %dx]", c, b.ALU, b.Mul, b.Mem)
					}
				}
				fmt.Println()
			}
			return nil
		}
		n := *measure
		if n == 0 {
			n = 100_000
		}
		sh := synth.Measure(gen, n)
		fmt.Printf("%s over %d instructions:\n", prof.Name, sh.Instrs)
		fmt.Printf("  ops/instr   %.3f\n", sh.OpsPerInstr)
		fmt.Printf("  taken frac  %.3f\n", sh.TakenFrac)
		fmt.Printf("  mem/instr   %.3f\n", sh.MemPerInstr)
		fmt.Printf("  comm frac   %.3f\n", sh.CommFrac)
		ipcr, ipcp, err := sim.MeasuredIPC(prof, *scale)
		if err != nil {
			return err
		}
		fmt.Printf("  IPCr %.2f  IPCp %.2f (at 1/%d paper scale)\n", ipcr, ipcp, *scale)
		return nil

	default:
		fs.Usage()
		return fmt.Errorf("no mode selected (want -list, -bench, -table, -record, -replay or -corpus)")
	}
}

// recordTrace generates n instructions of prof and writes them as a VXT1
// trace file.
func recordTrace(prof synth.Profile, n int, path string) error {
	gen, err := synth.NewGenerator(prof, isa.ST200x4)
	if err != nil {
		return err
	}
	instrs := trace.Record(gen, n)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Write(f, prof.Name, isa.ST200x4.Clusters, instrs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", len(instrs), prof.Name, path)
	return nil
}

// Command paperbench regenerates every table and figure of the paper's
// evaluation section:
//
//	Figure 13(a) — benchmark characterization (IPCr/IPCp)
//	Figure 13(b) — workload mixes
//	Figure 14    — CCSI speedups over CSMT (2T/4T, NS/AS)
//	Figure 15    — COSI and OOSI speedups over SMT (2T/4T, NS/AS)
//	Figure 16    — absolute IPC of all eight techniques
//
// The simulation grid is planned once, deduplicated across figures, and
// executed over a bounded worker pool; -parallel 1 runs serially and is
// bit-identical to any other parallelism.
//
// Usage:
//
//	paperbench                 # all figures at the default 1/100 scale
//	paperbench -quick          # 1/1000 scale smoke run
//	paperbench -fig 14         # a single figure
//	paperbench -scale 1        # full paper scale (slow: 200M instrs/run)
//	paperbench -parallel 8     # bound the worker pool explicitly
//	paperbench -cpuprofile p   # write a pprof CPU profile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vexsmt/internal/experiments"
	"vexsmt/internal/report"
)

func main() {
	// All work happens in run so its deferred cleanup (CPU profile flush,
	// file close) executes even on error paths; os.Exit lives only here.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 13a, 13b, 14, 15, 16, all")
		scale      = flag.Int64("scale", 100, "scale divisor of paper scale (1 = paper scale)")
		quick      = flag.Bool("quick", false, "shorthand for -scale 1000")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()
	if *quick {
		*scale = 1000
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	figures := []string{"13a", "13b", "14", "15", "16"}
	if *fig != "all" {
		figures = []string{*fig}
	}

	m := experiments.NewMatrix(*scale, *seed)
	m.SetParallelism(*parallel)
	start := time.Now()

	// Plan the whole grid up front: cells shared between figures simulate
	// once, concurrently, before any figure renders.
	plan, err := experiments.PlanFigures(figures...)
	if err != nil {
		return err
	}
	prefetchStart := time.Now()
	if err := m.Prefetch(plan); err != nil {
		return err
	}
	if plan.Len() > 0 {
		fmt.Printf("(planned %d unique cells, simulated in %.1fs over %d workers)\n\n",
			plan.Len(), time.Since(prefetchStart).Seconds(), m.Parallelism())
	}

	for _, f := range figures {
		figStart := time.Now()
		if err := renderFigure(m, f, *scale); err != nil {
			return err
		}
		fmt.Printf("(figure %s in %.2fs)\n\n", f, time.Since(figStart).Seconds())
	}
	fmt.Printf("(%d simulations, %.1fs total, 1/%d paper scale, seed %d, parallelism %d)\n",
		m.Cells(), time.Since(start).Seconds(), *scale, *seed, m.Parallelism())
	return nil
}

// renderFigure prints one figure; grid cells are already memoized, so only
// Figure 13(a)'s single-thread runs simulate here.
func renderFigure(m *experiments.Matrix, fig string, scale int64) error {
	switch fig {
	case "13a":
		rows, err := experiments.Figure13a(max64(scale, 150))
		if err != nil {
			return err
		}
		fmt.Print(report.Figure13aTable(rows))
	case "13b":
		fmt.Print(report.Figure13bTable())
	case "14":
		series, err := m.Figure14()
		if err != nil {
			return err
		}
		fmt.Print(report.SpeedupChart("Figure 14: Cluster-level split-issue (CCSI) speedups over CSMT", series))
		fmt.Println()
		fmt.Print(report.HeadlineTable(headlines(series)))
	case "15":
		series, err := m.Figure15()
		if err != nil {
			return err
		}
		fmt.Print(report.SpeedupChart("Figure 15: COSI and OOSI speedups over SMT", series))
		fmt.Println()
		fmt.Print(report.HeadlineTable(headlines(series)))
	case "16":
		points, err := m.Figure16()
		if err != nil {
			return err
		}
		fmt.Print(report.IPCChart(points))
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// headlines pairs each measured series with the paper's reported average,
// matched by the series' comparison key rather than by position.
func headlines(series []experiments.SpeedupSeries) []report.Headline {
	var rows []report.Headline
	for _, s := range series {
		paper, ok := report.PaperAverageFor(s)
		if !ok {
			continue // the paper reports no average for this series
		}
		rows = append(rows, report.Headline{Label: s.Label, Measured: s.Avg, Paper: paper})
	}
	return rows
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

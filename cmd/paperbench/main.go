// Command paperbench regenerates every table and figure of the paper's
// evaluation section:
//
//	Figure 13(a) — benchmark characterization (IPCr/IPCp)
//	Figure 13(b) — workload mixes
//	Figure 14    — CCSI speedups over CSMT (2T/4T, NS/AS)
//	Figure 15    — COSI and OOSI speedups over SMT (2T/4T, NS/AS)
//	Figure 16    — absolute IPC of all eight techniques
//
// It is a thin client of the public pkg/vexsmt API: the simulation grid is
// planned once, deduplicated across figures, and streamed over a bounded
// worker pool; -parallel 1 runs serially and is bit-identical to any other
// parallelism. Interrupting the run (SIGINT) cancels the grid within one
// simulated timeslice.
//
// Usage:
//
//	paperbench                 # all figures at the default 1/100 scale
//	paperbench -quick          # 1/1000 scale smoke run
//	paperbench -fig 14         # a single figure
//	paperbench -fig 14,15      # a comma-separated list of figures
//	paperbench -scale 1        # full paper scale (slow: 200M instrs/run)
//	paperbench -parallel 8     # bound the worker pool explicitly
//	paperbench -json results   # also write the grid as schema-versioned JSON
//	paperbench -cpuprofile p   # write a pprof CPU profile
//	paperbench -memprofile p   # write an end-of-run heap profile
//	paperbench -cache off      # re-simulate everything, bypass the cache
//	paperbench -cache-dir d    # result cache location (default ~/.cache/vexsmt)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
)

func main() {
	// All work happens in run so its deferred cleanup (CPU profile flush,
	// file close) executes even on error paths; os.Exit lives only here.
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "figures to regenerate: comma-separated list of 13a, 13b, 14, 15, 16, or all")
		pred       = fs.String("predictor", "static", "branch predictors to cross the grid with: comma-separated list of static, bimodal, gshare, tage, or all (text figures always render the static front end)")
		scale      = fs.Int64("scale", 100, "scale divisor of paper scale (1 = paper scale)")
		quick      = fs.Bool("quick", false, "shorthand for -scale 1000")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations")
		jsonOut    = fs.String("json", "", "write the simulated grid as schema-versioned JSON to this file")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an end-of-run heap profile to this file")
		cacheOn    = fs.String("cache", "on", "result cache: on (grid cells recall prior runs from the disk cache) or off")
		cacheDir   = fs.String("cache-dir", "", "result cache directory (default: the user cache dir, e.g. ~/.cache/vexsmt)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*scale = 1000
	}

	// Validate the figure and predictor lists before any side effects
	// (profiles, signal handlers): a typo must die here with the list of
	// valid names, not after machinery has spun up.
	figures, err := vexsmt.ParseFigures(*fig)
	if err != nil {
		return err
	}
	preds, err := vexsmt.ParsePredictors(*pred)
	if err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []vexsmt.Option{
		vexsmt.WithScale(*scale),
		vexsmt.WithSeed(*seed),
		vexsmt.WithParallelism(*parallel),
	}
	if d, err := cache.FromFlag(*cacheOn, *cacheDir); err != nil {
		return err
	} else if d != nil {
		opts = append(opts, vexsmt.WithCache(d))
	}
	svc, err := vexsmt.New(opts...)
	if err != nil {
		return err
	}
	start := time.Now()

	// Plan the whole grid up front: cells shared between figures simulate
	// once, concurrently, before any figure renders. The predictor axis
	// multiplies the grid; the text figures below always render the static
	// front end (the paper's machine), so modeled-predictor cells surface
	// through the JSON export, not the figure text.
	prefetchStart := time.Now()
	plan := vexsmt.Plan{Figures: figures, Predictors: preds}
	n, err := svc.Prefetch(ctx, plan)
	if err != nil {
		return err
	}
	if n > 0 {
		fmt.Printf("(planned %d unique cells, simulated in %.1fs over %d workers)\n\n",
			n, time.Since(prefetchStart).Seconds(), svc.Parallelism())
	}

	for _, f := range figures {
		figStart := time.Now()
		text, err := svc.RenderFigure(ctx, f)
		if err != nil {
			return err
		}
		fmt.Print(text)
		fmt.Printf("(figure %s in %.2fs)\n\n", f, time.Since(figStart).Seconds())
	}

	if *jsonOut != "" {
		if err := writeJSON(ctx, svc, plan, *jsonOut); err != nil {
			return err
		}
	}
	fmt.Printf("(%d cells, %d simulator runs, %.1fs total, 1/%d paper scale, seed %d, parallelism %d)\n",
		svc.CellsSimulated(), svc.SimulationsRun(), time.Since(start).Seconds(), svc.Scale(), svc.Seed(), svc.Parallelism())
	if st := svc.CacheStats(); st.Hits+st.Misses > 0 {
		fmt.Printf("(cache: %d hit(s), %d miss(es), %d put(s))\n", st.Hits, st.Misses, st.Puts)
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			return err
		}
	}
	return nil
}

// writeHeapProfile snapshots live-heap allocations after a GC, the shape
// that shows what the simulated grid retains (caches, result sets) rather
// than transient garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// writeJSON exports the (already memoized) grid as a canonical
// schema-versioned results document, via the same EncodeToFile helper
// vexsmtctl uses — so a paperbench export diffs clean against a
// distributed run of the same plan, seed and scale.
func writeJSON(ctx context.Context, svc *vexsmt.Service, plan vexsmt.Plan, path string) error {
	rs, err := svc.Collect(ctx, plan)
	if err != nil {
		return err
	}
	if err := vexsmt.EncodeToFile(path, rs); err != nil {
		return err
	}
	fmt.Printf("(wrote %d cells to %s, schema v%d)\n\n", len(rs.Cells), path, vexsmt.SchemaVersion)
	return nil
}

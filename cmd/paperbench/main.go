// Command paperbench regenerates every table and figure of the paper's
// evaluation section:
//
//	Figure 13(a) — benchmark characterization (IPCr/IPCp)
//	Figure 13(b) — workload mixes
//	Figure 14    — CCSI speedups over CSMT (2T/4T, NS/AS)
//	Figure 15    — COSI and OOSI speedups over SMT (2T/4T, NS/AS)
//	Figure 16    — absolute IPC of all eight techniques
//
// Usage:
//
//	paperbench                 # all figures at the default 1/100 scale
//	paperbench -quick          # 1/1000 scale smoke run
//	paperbench -fig 14         # a single figure
//	paperbench -scale 1        # full paper scale (slow: 200M instrs/run)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vexsmt/internal/experiments"
	"vexsmt/internal/report"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: 13a, 13b, 14, 15, 16, all")
		scale = flag.Int64("scale", 100, "scale divisor of paper scale (1 = paper scale)")
		quick = flag.Bool("quick", false, "shorthand for -scale 1000")
		seed  = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if *quick {
		*scale = 1000
	}

	m := experiments.NewMatrix(*scale, *seed)
	start := time.Now()

	if *fig == "all" || *fig == "13a" {
		rows, err := experiments.Figure13a(max64(*scale, 150))
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Figure13aTable(rows))
		fmt.Println()
	}
	if *fig == "all" || *fig == "13b" {
		fmt.Print(report.Figure13bTable())
		fmt.Println()
	}
	if *fig == "all" || *fig == "14" {
		series, err := m.Figure14()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.SpeedupChart("Figure 14: Cluster-level split-issue (CCSI) speedups over CSMT", series))
		fmt.Println()
		paper := report.PaperFigure14Averages()
		var rows []report.Headline
		for i, s := range series {
			rows = append(rows, report.Headline{Label: s.Label, Measured: s.Avg, Paper: paper[i]})
		}
		fmt.Print(report.HeadlineTable(rows))
		fmt.Println()
	}
	if *fig == "all" || *fig == "15" {
		series, err := m.Figure15()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.SpeedupChart("Figure 15: COSI and OOSI speedups over SMT", series))
		fmt.Println()
		paper := report.PaperFigure15Averages()
		var rows []report.Headline
		for i, s := range series {
			rows = append(rows, report.Headline{Label: s.Label, Measured: s.Avg, Paper: paper[permute15(i)]})
		}
		fmt.Print(report.HeadlineTable(rows))
		fmt.Println()
	}
	if *fig == "all" || *fig == "16" {
		points, err := m.Figure16()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.IPCChart(points))
		fmt.Println()
	}
	fmt.Printf("(%d simulations, %.1fs, 1/%d paper scale, seed %d)\n",
		m.Cells(), time.Since(start).Seconds(), *scale, *seed)
}

// permute15 maps Figure15() series order (2T: COSI NS, COSI AS, OOSI NS,
// OOSI AS; then 4T same) onto PaperFigure15Averages order (COSI NS, COSI
// AS, OOSI NS, OOSI AS at 2T, then 4T) — identical, so identity; kept as a
// named function to document the correspondence.
func permute15(i int) int { return i }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}

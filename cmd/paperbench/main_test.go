package main

import (
	"strings"
	"testing"
)

// TestUnknownFigureRejectedUpFront: a typo'd -fig must fail immediately
// with the list of valid names, before any simulation machinery starts.
func TestUnknownFigureRejectedUpFront(t *testing.T) {
	for _, bad := range []string{"bogus", "14,bogus", "all,bogus", ","} {
		err := run([]string{"-fig", bad})
		if err == nil {
			t.Fatalf("-fig %q accepted", bad)
		}
		if bad != "," && !strings.Contains(err.Error(), "13a, 13b, 14, 15, 16") {
			t.Errorf("-fig %q: error does not list the valid figures: %v", bad, err)
		}
	}
}

// TestUnknownPredictorRejectedUpFront: a typo'd -predictor must fail
// immediately with the list of valid models, before any simulation
// machinery starts.
func TestUnknownPredictorRejectedUpFront(t *testing.T) {
	for _, bad := range []string{"perceptron", "gshare,perceptron", "all,perceptron", ","} {
		err := run([]string{"-fig", "14", "-predictor", bad})
		if err == nil {
			t.Fatalf("-predictor %q accepted", bad)
		}
		if bad != "," && !strings.Contains(err.Error(), "static, bimodal, gshare, tage") {
			t.Errorf("-predictor %q: error does not list the valid models: %v", bad, err)
		}
	}
}

// TestBadCacheFlagRejected: -cache accepts only on/off.
func TestBadCacheFlagRejected(t *testing.T) {
	err := run([]string{"-fig", "13b", "-cache", "sideways"})
	if err == nil || !strings.Contains(err.Error(), "want on or off") {
		t.Fatalf("-cache sideways: %v", err)
	}
}

package main

import (
	"strings"
	"testing"
)

// TestUnknownFigureRejectedUpFront: a typo'd -fig must fail immediately
// with the list of valid names, before any simulation machinery starts.
func TestUnknownFigureRejectedUpFront(t *testing.T) {
	for _, bad := range []string{"bogus", "14,bogus", "all,bogus", ","} {
		err := run([]string{"-fig", bad})
		if err == nil {
			t.Fatalf("-fig %q accepted", bad)
		}
		if bad != "," && !strings.Contains(err.Error(), "13a, 13b, 14, 15, 16") {
			t.Errorf("-fig %q: error does not list the valid figures: %v", bad, err)
		}
	}
}

// TestBadCacheFlagRejected: -cache accepts only on/off.
func TestBadCacheFlagRejected(t *testing.T) {
	err := run([]string{"-fig", "13b", "-cache", "sideways"})
	if err == nil || !strings.Contains(err.Error(), "want on or off") {
		t.Fatalf("-cache sideways: %v", err)
	}
}

// Command vexsim runs one workload mix under one machine configuration and
// prints detailed statistics.
//
// Usage:
//
//	vexsim -mix llhh -tech "CCSI AS" -threads 4
//	vexsim -mix hhhh -tech SMT -threads 2 -scale 100 -seed 7
//	vexsim -mix llll -tech CSMT -threads 4 -mode BMT        # ablation mode
//	vexsim -mix mmhh -tech "COSI NS" -threads 4 -no-renaming
package main

import (
	"flag"
	"fmt"
	"os"

	"vexsmt/internal/core"
	"vexsmt/internal/sim"
	"vexsmt/internal/workload"
)

func main() {
	var (
		mixLabel = flag.String("mix", "llhh", "workload mix label (Figure 13b) or 'list'")
		techName = flag.String("tech", "CCSI AS", `technique: SMT, CSMT, "CCSI NS", "CCSI AS", "COSI NS", "COSI AS", "OOSI NS", "OOSI AS"`)
		threads  = flag.Int("threads", 4, "hardware thread contexts")
		scale    = flag.Int64("scale", 100, "scale divisor of paper scale (1 = 200M instructions)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		mode     = flag.String("mode", "SMT", "issue mode: SMT, IMT, BMT (IMT/BMT are ablations)")
		perfect  = flag.Bool("perfect", false, "perfect memory (no cache misses)")
		noRename = flag.Bool("no-renaming", false, "disable cluster renaming (ablation)")
	)
	flag.Parse()

	if *mixLabel == "list" {
		for _, m := range workload.Figure13b() {
			fmt.Printf("%-6s %v\n", m.Label, m.Benchmarks)
		}
		return
	}
	mix, err := workload.MixByLabel(*mixLabel)
	if err != nil {
		fatal(err)
	}
	tech, err := core.ParseTechnique(*techName)
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig(tech, *threads).WithScale(*scale)
	cfg.Seed = *seed
	cfg.PerfectMemory = *perfect
	cfg.ClusterRenaming = !*noRename
	switch *mode {
	case "SMT":
		cfg.Mode = sim.ModeSimultaneous
	case "IMT":
		cfg.Mode = sim.ModeInterleaved
	case "BMT":
		cfg.Mode = sim.ModeBlocked
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	profs, err := mix.Profiles()
	if err != nil {
		fatal(err)
	}
	s, err := sim.NewWorkload(cfg, profs)
	if err != nil {
		fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload %s on %d-thread %s machine (%s mode, 1/%d scale, seed %d)\n",
		mix.Label, *threads, tech.Name(), cfg.Mode, *scale, *seed)
	fmt.Printf("  cycles             %12d\n", r.Cycles)
	fmt.Printf("  VLIW instructions  %12d\n", r.Instrs)
	fmt.Printf("  operations         %12d\n", r.Ops)
	fmt.Printf("  IPC                %12.3f\n", r.IPC())
	fmt.Printf("  VLIW/cycle         %12.3f\n", r.VLIWPerCycle())
	fmt.Printf("  vertical waste     %11.1f%%\n", r.VerticalWaste()*100)
	fmt.Printf("  horizontal waste   %11.1f%%\n", r.HorizontalWaste()*100)
	fmt.Printf("  merged cycles      %12d\n", r.MergedCycles)
	fmt.Printf("  split instructions %12d\n", r.SplitInstrs)
	fmt.Printf("  icache miss rate   %11.2f%%\n", r.ICacheMissRate()*100)
	fmt.Printf("  dcache miss rate   %11.2f%%\n", r.DCacheMissRate()*100)
	fmt.Printf("  fetch stalls       %12d thread-cycles\n", r.FetchStallCycles)
	fmt.Printf("  memory stalls      %12d thread-cycles\n", r.MemStallCycles)
	fmt.Printf("  branch stalls      %12d thread-cycles\n", r.BranchStallCycles)
	fmt.Printf("  mem-port stalls    %12d cycles\n", r.MemPortStallCycles)
	fmt.Printf("  context switches   %12d\n", r.ContextSwitches)
	fmt.Printf("  respawns           %12d\n", r.Respawns)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vexsim:", err)
	os.Exit(1)
}

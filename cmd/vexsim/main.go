// Command vexsim runs one workload mix under one machine configuration and
// prints detailed statistics.
//
// Usage:
//
//	vexsim -mix llhh -tech "CCSI AS" -threads 4
//	vexsim -mix hhhh -tech SMT -threads 2 -scale 100 -seed 7
//	vexsim -mix llll -tech CSMT -threads 4 -mode BMT        # ablation mode
//	vexsim -mix mmhh -tech "COSI NS" -threads 4 -no-renaming
//	vexsim -mix hhhh -mode IMT -reference-loop              # bit-identity check
//	vexsim -mix llhh -predictor gshare                      # modeled front end
//	vexsim -mix mmhh -scale 10 -cpuprofile cpu.prof         # profile the hot loop
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"vexsmt/internal/bpred"
	"vexsmt/internal/core"
	"vexsmt/internal/sim"
	"vexsmt/internal/workload"
)

func main() {
	// All work happens in run so its deferred cleanup (CPU profile flush,
	// file close) executes even on error paths; os.Exit lives only here.
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vexsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vexsim", flag.ContinueOnError)
	var (
		mixLabel   = fs.String("mix", "llhh", "workload mix label (Figure 13b) or 'list'")
		techName   = fs.String("tech", "CCSI AS", `technique: SMT, CSMT, "CCSI NS", "CCSI AS", "COSI NS", "COSI AS", "OOSI NS", "OOSI AS"`)
		threads    = fs.Int("threads", 4, "hardware thread contexts")
		scale      = fs.Int64("scale", 100, "scale divisor of paper scale (1 = 200M instructions)")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		mode       = fs.String("mode", "SMT", "issue mode: SMT, IMT, BMT (IMT/BMT are ablations)")
		predictor  = fs.String("predictor", "static", "branch predictor: static, bimodal, gshare, tage")
		perfect    = fs.Bool("perfect", false, "perfect memory (no cache misses)")
		noRename   = fs.Bool("no-renaming", false, "disable cluster renaming (ablation)")
		refLoop    = fs.Bool("reference-loop", false, "use the one-iteration-per-cycle reference loop (bit-identical to the event-driven fast path, slower; for differential debugging)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *mixLabel == "list" {
		for _, m := range workload.Figure13b() {
			fmt.Printf("%-6s %v\n", m.Label, m.Benchmarks)
		}
		return nil
	}
	mix, err := workload.MixByLabel(*mixLabel)
	if err != nil {
		return err
	}
	tech, err := core.ParseTechnique(*techName)
	if err != nil {
		return err
	}
	pred, err := bpred.Canonical(*predictor)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(tech, *threads).WithScale(*scale)
	cfg.Seed = *seed
	cfg.Predictor = pred
	cfg.PerfectMemory = *perfect
	cfg.ClusterRenaming = !*noRename
	cfg.ReferenceLoop = *refLoop
	switch *mode {
	case "SMT":
		cfg.Mode = sim.ModeSimultaneous
	case "IMT":
		cfg.Mode = sim.ModeInterleaved
	case "BMT":
		cfg.Mode = sim.ModeBlocked
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	profs, err := mix.Profiles()
	if err != nil {
		return err
	}
	s, err := sim.NewWorkload(cfg, profs)
	if err != nil {
		return err
	}
	r, err := s.Run()
	if err != nil {
		return err
	}

	fmt.Printf("workload %s on %d-thread %s machine (%s mode, 1/%d scale, seed %d)\n",
		mix.Label, *threads, tech.Name(), cfg.Mode, *scale, *seed)
	fmt.Printf("  cycles             %12d\n", r.Cycles)
	fmt.Printf("  VLIW instructions  %12d\n", r.Instrs)
	fmt.Printf("  operations         %12d\n", r.Ops)
	fmt.Printf("  IPC                %12.3f\n", r.IPC())
	fmt.Printf("  VLIW/cycle         %12.3f\n", r.VLIWPerCycle())
	fmt.Printf("  vertical waste     %11.1f%%\n", r.VerticalWaste()*100)
	fmt.Printf("  horizontal waste   %11.1f%%\n", r.HorizontalWaste()*100)
	fmt.Printf("  merged cycles      %12d\n", r.MergedCycles)
	fmt.Printf("  split instructions %12d\n", r.SplitInstrs)
	fmt.Printf("  icache miss rate   %11.2f%%\n", r.ICacheMissRate()*100)
	fmt.Printf("  dcache miss rate   %11.2f%%\n", r.DCacheMissRate()*100)
	fmt.Printf("  fetch stalls       %12d thread-cycles\n", r.FetchStallCycles)
	fmt.Printf("  memory stalls      %12d thread-cycles\n", r.MemStallCycles)
	fmt.Printf("  branch stalls      %12d thread-cycles\n", r.BranchStallCycles)
	fmt.Printf("  mem-port stalls    %12d cycles\n", r.MemPortStallCycles)
	fmt.Printf("  context switches   %12d\n", r.ContextSwitches)
	fmt.Printf("  respawns           %12d\n", r.Respawns)
	if pred != bpred.Default {
		fmt.Printf("  predictor          %12s\n", pred)
		fmt.Printf("  branches           %12d\n", r.Branches)
		fmt.Printf("  mispredicts        %12d (%.2f%%)\n", r.BranchMispredicts, r.MispredictRate()*100)
	}
	return nil
}

package main

import (
	"strings"
	"testing"
)

// TestBadFlagsRejected: invalid identities die with a helpful error before
// any simulation starts.
func TestBadFlagsRejected(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"unknown-predictor":      {[]string{"-predictor", "perceptron"}, "static, bimodal, gshare, tage"},
		"unknown-predictor-typo": {[]string{"-predictor", "Tage2"}, "static, bimodal, gshare, tage"},
		"unknown-mix":            {[]string{"-mix", "zzzz"}, "unknown mix"},
		"unknown-technique":      {[]string{"-tech", "XXSI"}, "unknown technique"},
		"unknown-mode":           {[]string{"-mode", "QMT"}, "unknown mode"},
	} {
		t.Run(name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestPredictorNameCaseInsensitive: predictor names normalize like every
// other identity flag — a noisy spelling runs (a tiny simulation here)
// instead of erroring.
func TestPredictorNameCaseInsensitive(t *testing.T) {
	args := []string{"-mix", "llhh", "-tech", "SMT", "-threads", "2",
		"-scale", "20000", "-predictor", " GSHARE "}
	if err := run(args); err != nil {
		t.Fatalf("args %v: %v", args, err)
	}
}

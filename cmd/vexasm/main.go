// Command vexasm assembles a VEX-flavoured assembly file and executes it on
// the functional machine — atomically, and optionally under every split
// execution order, verifying that the architectural results agree (the
// paper's correctness property for split-issue).
//
// Usage:
//
//	vexasm prog.vex                 # assemble + run, dump changed registers
//	vexasm -verify prog.vex         # also run split orders and diff state
//	vexasm -dis prog.vex            # disassemble only
//	echo '...' | vexasm -           # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vexsmt/internal/asm"
	"vexsmt/internal/isa"
	"vexsmt/internal/vexmach"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vexasm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vexasm", flag.ContinueOnError)
	var (
		verify   = fs.Bool("verify", false, "run split-issue orders and verify state equivalence")
		dis      = fs.Bool("dis", false, "disassemble and exit")
		maxSteps = fs.Int("max-steps", 1_000_000, "step limit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: vexasm [-verify|-dis] <file.vex | ->")
	}
	src, err := readSource(fs.Arg(0))
	if err != nil {
		return err
	}
	geom := isa.ST200x4
	prog, err := asm.Assemble(geom, 0x1000, src)
	if err != nil {
		return err
	}
	if *dis {
		fmt.Print(asm.Disassemble(prog))
		return nil
	}

	atomic := vexmach.MustNew(geom)
	atomic.SetPC(prog.Base)
	steps, err := atomic.Run(prog, *maxSteps)
	if err != nil {
		return err
	}
	fmt.Printf("executed %d instructions (atomic VLIW semantics)\n", steps)
	dumpState(atomic)

	if *verify {
		orders := map[string]vexmach.SplitOrder{
			"sequential-clusters": vexmach.SequentialClusters(geom),
			"reverse-clusters":    vexmach.ReverseClusters(geom),
		}
		for name, order := range orders {
			m := vexmach.MustNew(geom)
			m.SetPC(prog.Base)
			if _, err := m.RunSplit(prog, *maxSteps, order); err != nil {
				return fmt.Errorf("split order %s: %w", name, err)
			}
			if d := m.Diff(atomic); d != "" {
				return fmt.Errorf("split order %s diverged from atomic execution: %s", name, d)
			}
			fmt.Printf("split order %-20s matches atomic execution\n", name)
		}
	}
	return nil
}

func readSource(arg string) (string, error) {
	if arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(arg)
	return string(b), err
}

func dumpState(m *vexmach.Machine) {
	g := m.Geometry()
	for c := 0; c < g.Clusters; c++ {
		printed := false
		for r := 1; r < isa.NumGPR; r++ {
			if v := m.Reg(c, isa.Reg(r)); v != 0 {
				if !printed {
					fmt.Printf("cluster %d:", c)
					printed = true
				}
				fmt.Printf(" $r%d=%d", r, v)
			}
		}
		if printed {
			fmt.Println()
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

const countVEX = `# count to 5
        c0 mov $r1 = 0
        c0 mov $r2 = 5
;;
loop:
        c0 add $r1 = $r1, 1
;;
        c0 cmplt $b0 = $r1, $r2
;;
        c0 br $b0, loop
;;
`

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.vex")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFlagValidation: bad invocations die with an error instead of a
// partial run.
func TestFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"no-file":      {},
		"two-files":    {"a.vex", "b.vex"},
		"unknown-flag": {"-bogus", "a.vex"},
		"missing-file": {filepath.Join(t.TempDir(), "nope.vex")},
	} {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("args %v accepted", args)
			}
		})
	}
}

// TestAssembleRunAndVerify: a well-formed program assembles, runs, and
// passes the split-order equivalence check.
func TestAssembleRunAndVerify(t *testing.T) {
	path := writeProg(t, countVEX)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dis", path}); err != nil {
		t.Fatal(err)
	}
}

// TestBadSourceRejected: an assembly error surfaces as a run error.
func TestBadSourceRejected(t *testing.T) {
	path := writeProg(t, "c0 frobnicate $r1 = 3\n;;\n")
	if err := run([]string{path}); err == nil {
		t.Fatal("nonsense opcode assembled")
	}
}

// TestStepLimitEnforced: an infinite loop trips -max-steps instead of
// hanging.
func TestStepLimitEnforced(t *testing.T) {
	path := writeProg(t, "loop:\n        c0 goto loop\n;;\n")
	if err := run([]string{"-max-steps", "100", path}); err == nil {
		t.Fatal("infinite loop ran to completion")
	}
}

// Command vexsmtd serves the split-issue simulator over HTTP/JSON, built
// entirely on the public pkg/vexsmt API. Plans are submitted, observed
// (snapshot or NDJSON stream) and cancelled through a small /v1 surface:
//
//	vexsmtd -addr :8080 -scale 1000
//
//	curl -s localhost:8080/v1/plans -d '{"figures":["14"]}'
//	curl -s 'localhost:8080/v1/results?id=plan-1'
//	curl -sN 'localhost:8080/v1/results?id=plan-1&stream=1'
//	curl -s -X DELETE 'localhost:8080/v1/plans?id=plan-1'
//
// Results follow the versioned JSON schema of pkg/vexsmt (SchemaVersion);
// see the package documentation for the determinism and cancellation
// contract.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scale    = flag.Int64("scale", 100, "default scale divisor of paper scale")
		seed     = flag.Uint64("seed", 1, "default simulation seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "default max concurrent simulations per plan")
	)
	flag.Parse()

	srv := NewServer(*scale, *seed, *parallel)
	fmt.Printf("vexsmtd listening on %s (defaults: 1/%d scale, seed %d, parallelism %d)\n",
		*addr, *scale, *seed, *parallel)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "vexsmtd:", err)
		os.Exit(1)
	}
}

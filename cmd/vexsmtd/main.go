// Command vexsmtd serves the split-issue simulator over HTTP/JSON, built
// entirely on the public pkg/vexsmt API (see pkg/vexsmt/server for the
// implementation). Plans are submitted, observed (snapshot or NDJSON
// stream) and cancelled through a small /v1 surface:
//
//	vexsmtd -addr :8080 -scale 1000
//
//	curl -s localhost:8080/v1/plans -d '{"figures":["14"]}'
//	curl -s 'localhost:8080/v1/results?id=plan-1'
//	curl -sN 'localhost:8080/v1/results?id=plan-1&stream=1'
//	curl -s -X DELETE 'localhost:8080/v1/plans?id=plan-1'
//	curl -s localhost:8080/healthz
//
// Results follow the versioned JSON schema of pkg/vexsmt (SchemaVersion);
// see the package documentation for the determinism and cancellation
// contract. On SIGINT/SIGTERM the daemon cancels every running plan (so
// attached NDJSON streams receive a terminal "cancelled" status line),
// drains in-flight requests for up to -drain, and exits.
//
// With -join, the daemon becomes a fleet member (see pkg/vexsmt/fleet):
// it registers with the registry at the given URL, heartbeats its
// capacity and cache footprint, fills local cache misses from its peers'
// caches before simulating, and deregisters on shutdown:
//
//	vexsmtd -addr :0 -join http://coordinator:9090
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
	"vexsmt/pkg/vexsmt/fault"
	"vexsmt/pkg/vexsmt/fleet"
	"vexsmt/pkg/vexsmt/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vexsmtd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address (port 0 picks an ephemeral port)")
		scale     = flag.Int64("scale", 100, "default scale divisor of paper scale")
		seed      = flag.Uint64("seed", 1, "default simulation seed")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "default max concurrent simulations per plan")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
		cacheOn   = flag.String("cache", "on", "result cache: on (content-addressed disk cache, shared across runs) or off")
		cacheDir  = flag.String("cache-dir", "", "result cache directory (default: the user cache dir, e.g. ~/.cache/vexsmt)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
		wlDir     = flag.String("workload-dir", "", "trace corpus directory (.vxt/.vex) served as plan workloads; empty disables the workload axis")
		join      = flag.String("join", "", "fleet registry URL to register with (e.g. http://coordinator:9090); empty runs standalone")
		name      = flag.String("name", "", "fleet member id (default: the advertised host:port)")
		advertise = flag.String("advertise", "", "base URL peers reach this daemon at (default: derived from the bound listener)")

		chaosSeed    = flag.Uint64("chaos-seed", 0, "fault-injection seed; the same seed and profile reproduce the identical fault schedule")
		chaosProfile = flag.String("chaos-profile", "off", "fault-injection profile: off, light or heavy (wraps the result cache and the fleet client paths; results stay byte-identical)")
	)
	flag.Parse()

	// Chaos wiring is strictly opt-in: with the profile off nothing is
	// wrapped, so the fault layer costs zero when disabled.
	chaos, err := fault.ParseProfile(*chaosProfile)
	if err != nil {
		return err
	}
	var inj *fault.Injector
	if chaos.Enabled() {
		inj = fault.New(*chaosSeed, chaos)
		fmt.Printf("vexsmtd chaos profile %s, seed %d (deterministic fault injection active)\n",
			chaos.Name, *chaosSeed)
	}

	// Profiling stays on its own listener so the /v1 API surface never
	// exposes pprof, and a wedged simulation pool cannot starve it.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Printf("vexsmtd pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "vexsmtd: pprof server:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := cache.FromFlag(*cacheOn, *cacheDir)
	if err != nil {
		return err
	}
	// Load the trace corpus eagerly so a bad -workload-dir fails startup,
	// not the first plan. The files decode once into the process-shared
	// store; the server and every per-plan service replay the same arena.
	var corpus []string
	if *wlDir != "" {
		if corpus, err = vexsmt.LoadWorkloads(*wlDir); err != nil {
			return err
		}
		fmt.Printf("vexsmtd workload corpus %s: %d workloads\n", *wlDir, len(corpus))
	}
	// Listen explicitly (rather than ListenAndServe) so the bound address is
	// printable: with -addr :0 the kernel picks the port, and shard
	// coordinators or test harnesses scrape it from this line. Listening
	// before building the server also fixes the advertised URL a fleet
	// member registers under.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	// Fleet wiring: the heartbeat's snapshot closes over srv (assigned
	// below, before the heartbeat loop starts), and the cache gains a
	// peer-fill tier reading the heartbeat's peer view. Under chaos the
	// local tier is wrapped first, so injected corruption sits below the
	// peer-fill layer exactly where real disk faults would: entries this
	// daemon serves to peers pass through it too, and the consumers'
	// decode-or-miss paths (plus the peer protocol's checksum) are what
	// keep results byte-identical anyway.
	var srv *server.Server
	var cellCache vexsmt.CellCache
	if d != nil {
		cellCache = d
		if inj != nil {
			cellCache = fault.NewCache(inj, d)
		}
	}
	var hb *fleet.Heartbeat
	if *join != "" {
		advURL := *advertise
		if advURL == "" {
			advURL = deriveAdvertise(ln.Addr())
		}
		id := *name
		if id == "" {
			id = advURL
		}
		snapshot := func() fleet.Member {
			m := fleet.Member{ID: id, URL: advURL}
			if srv == nil {
				return m
			}
			st := srv.Stats()
			m.Capacity = st.Capacity
			m.Running = st.Running
			m.UptimeSeconds = st.UptimeSeconds
			m.Simulations = st.Simulations
			m.Predictors = st.Predictors
			m.Workloads = strings.Join(st.Corpus, ",")
			m.CacheEnabled = st.CacheEnabled
			m.Cache = st.Cache
			m.CacheSize = st.CacheSize
			return m
		}
		// Under chaos the heartbeat and peer-fill clients go through the
		// fault transport (swallowed heartbeats, dropped/slowed peer GETs)
		// and the peer view may read one update stale.
		var hbOpts []fleet.HeartbeatOption
		var fetchOpts []fleet.FetcherOption
		peerView := func() []fleet.Member { return hb.Peers() }
		if inj != nil {
			hbOpts = append(hbOpts, fleet.WithHeartbeatClient(fault.Client(inj, nil)))
			fetchOpts = append(fetchOpts, fleet.WithFetchClient(fault.Client(inj, nil)))
			peerView = fault.StaleView(inj, "fleet.peers.stale", peerView)
		}
		if hb, err = fleet.NewHeartbeat(*join, snapshot, hbOpts...); err != nil {
			ln.Close()
			return err
		}
		if cellCache != nil {
			cellCache = cache.WithPeerFill(cellCache, fleet.NewFetcher(id, peerView, fetchOpts...).Fetch)
		}
		fmt.Printf("vexsmtd joining fleet at %s as %s (%s)\n", *join, id, advURL)
	}

	var srvOpts []server.Option
	if cellCache != nil {
		srvOpts = append(srvOpts, server.WithCache(cellCache))
		fmt.Printf("vexsmtd result cache at %s\n", d.Dir())
	}
	if *wlDir != "" {
		srvOpts = append(srvOpts, server.WithWorkloads(*wlDir))
	}
	srv = server.New(*scale, *seed, *parallel, srvOpts...)
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if hb != nil {
		go hb.Run(ctx)
	}
	fmt.Printf("vexsmtd listening on %s (defaults: 1/%d scale, seed %d, parallelism %d)\n",
		ln.Addr(), *scale, *seed, *parallel)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills instead of waiting
	fmt.Println("vexsmtd: signal received; cancelling running plans and draining")
	shctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Shutdown stops intake and waits for in-flight requests — but NDJSON
	// result streams only end once their jobs reach a terminal state, so
	// jobs must be cancelled while Shutdown drains. A plan can also slip in
	// between a CancelJobs snapshot and intake actually closing, so keep
	// cancelling until the drain completes, then sweep once more for any
	// job registered by a request that finished during the last gap.
	done := make(chan error, 1)
	go func() { done <- hs.Shutdown(shctx) }()
	var drainErr error
	for draining := true; draining; {
		srv.CancelJobs()
		select {
		case drainErr = <-done:
			draining = false
		case <-time.After(200 * time.Millisecond):
		}
	}
	srv.CancelJobs()
	if drainErr != nil {
		hs.Close()
		return fmt.Errorf("drain: %w", drainErr)
	}
	return nil
}

// deriveAdvertise turns the bound listener address into a URL peers can
// dial. A wildcard bind (":8080", "0.0.0.0", "::") advertises loopback —
// right for single-machine fleets and CI; multi-host fleets pass
// -advertise explicitly.
func deriveAdvertise(addr net.Addr) string {
	host, port := "127.0.0.1", ""
	if ta, ok := addr.(*net.TCPAddr); ok {
		port = strconv.Itoa(ta.Port)
		if ta.IP != nil && !ta.IP.IsUnspecified() {
			host = ta.IP.String()
		}
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Command benchgate is the CI benchmark regression gate: it reads the
// output of `go test -bench -json` for the simulator micro-benchmarks,
// extracts the headline metrics (BenchmarkSimulatorThroughput and
// BenchmarkTraceReplayThroughput instrs/s and the per-technique
// BenchmarkEngineCycle ns/op), writes them as a machine-readable
// BENCH_*.json artifact, and fails when throughput regresses more than
// the allowed fraction below the checked-in baseline.
//
//	go test -run '^$' -bench 'BenchmarkSimulatorThroughput|BenchmarkTraceReplayThroughput|BenchmarkEngineCycle' \
//	    -benchtime 1s -json . | tee bench_raw.json
//	benchgate -raw bench_raw.json -baseline BENCH_baseline.json -out BENCH_pr9.json
//
// Keep the -bench pattern unanchored: it must also select
// BenchmarkSimulatorThroughputReference, whose in-job fast/reference
// ratio is the hardware-independent half of the gate (benchgate warns
// and skips that check when the reference metric is absent). The
// trace/synthetic ratio (-min-trace-ratio) is gated the same way: both
// headlines come from the same run on the same hardware, so the check
// catches a replay-path pessimization without depending on the runner's
// hardware class.
//
// The baseline records absolute numbers from a reference machine, so the
// gate is hardware-relative: refresh it with -update when the CI hardware
// class changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Baseline is the checked-in expectation (BENCH_baseline.json).
type Baseline struct {
	// SimulatorInstrsPerSec is the expected BenchmarkSimulatorThroughput
	// headline on the reference hardware; the gate fails when the measured
	// value drops more than MaxRegress below it.
	SimulatorInstrsPerSec float64 `json:"simulator_instrs_per_sec"`
	// PrePRInstrsPerSec is the same benchmark measured on the same
	// reference hardware before the event-driven core landed (PR 5); the
	// report derives the speedup from it.
	PrePRInstrsPerSec float64 `json:"pre_pr_instrs_per_sec"`
	// IMTInstrsPerSec is the expected BenchmarkSimulatorThroughputIMT
	// headline — the mixed-runnability interleaved-multithreading workload
	// the per-context wake-up queue (PR 6) targets. Gated like the SMT
	// headline; zero skips the check (pre-PR-6 baselines).
	IMTInstrsPerSec float64 `json:"imt_instrs_per_sec,omitempty"`
	// PrePRIMTInstrsPerSec is the IMT benchmark measured on the same
	// reference hardware before the wake-up queue landed.
	PrePRIMTInstrsPerSec float64 `json:"pre_pr_imt_instrs_per_sec,omitempty"`
	// TraceReplayInstrsPerSec is the expected BenchmarkTraceReplayThroughput
	// headline — the same SMT workload replayed from recorded traces through
	// the zero-copy workload store (PR 9) instead of the synthetic
	// generators. Gated like the other headlines; zero skips the check
	// (pre-PR-9 baselines).
	TraceReplayInstrsPerSec float64 `json:"trace_replay_instrs_per_sec,omitempty"`
	// EngineCycleNsPerOp records the per-technique engine cycle costs for
	// context; they are reported, not gated (ns/op is too noisy across
	// hardware classes for a hard limit).
	EngineCycleNsPerOp map[string]float64 `json:"engine_cycle_ns_per_op,omitempty"`
	Note               string             `json:"note,omitempty"`
}

// Report is the artifact written for each CI run (BENCH_pr5.json).
type Report struct {
	InstrsPerSec         float64 `json:"instrs_per_sec"`
	BaselineInstrsPerSec float64 `json:"baseline_instrs_per_sec"`
	RatioVsBaseline      float64 `json:"ratio_vs_baseline"`
	PrePRInstrsPerSec    float64 `json:"pre_pr_instrs_per_sec,omitempty"`
	SpeedupVsPrePR       float64 `json:"speedup_vs_pre_pr,omitempty"`
	// ReferenceInstrsPerSec is BenchmarkSimulatorThroughputReference (the
	// bit-identical per-cycle loop) measured in the same run; the
	// fast/reference ratio is hardware-independent, so it gates that the
	// event-driven path never becomes a pessimization even when the
	// absolute numbers shift with the runner's hardware class.
	ReferenceInstrsPerSec float64 `json:"reference_instrs_per_sec,omitempty"`
	FastOverReference     float64 `json:"fast_over_reference_ratio,omitempty"`
	// The IMT block mirrors the SMT headline for the mixed-runnability
	// interleaved workload (BenchmarkSimulatorThroughputIMT and its
	// bit-identical reference loop).
	IMTInstrsPerSec          float64 `json:"imt_instrs_per_sec,omitempty"`
	BaselineIMTInstrsPerSec  float64 `json:"baseline_imt_instrs_per_sec,omitempty"`
	IMTRatioVsBaseline       float64 `json:"imt_ratio_vs_baseline,omitempty"`
	PrePRIMTInstrsPerSec     float64 `json:"pre_pr_imt_instrs_per_sec,omitempty"`
	IMTSpeedupVsPrePR        float64 `json:"imt_speedup_vs_pre_pr,omitempty"`
	IMTReferenceInstrsPerSec float64 `json:"imt_reference_instrs_per_sec,omitempty"`
	IMTFastOverReference     float64 `json:"imt_fast_over_reference_ratio,omitempty"`
	// The trace block covers the recorded-workload replay path
	// (BenchmarkTraceReplayThroughput): absolute floor against the baseline,
	// in-job fast/reference ratio, and TraceOverSynthetic — the
	// hardware-independent check that zero-copy replay stays within
	// -min-trace-ratio of the synthetic-generator headline measured in the
	// same run.
	TraceInstrsPerSec          float64            `json:"trace_replay_instrs_per_sec,omitempty"`
	BaselineTraceInstrsPerSec  float64            `json:"baseline_trace_replay_instrs_per_sec,omitempty"`
	TraceRatioVsBaseline       float64            `json:"trace_ratio_vs_baseline,omitempty"`
	TraceReferenceInstrsPerSec float64            `json:"trace_reference_instrs_per_sec,omitempty"`
	TraceFastOverReference     float64            `json:"trace_fast_over_reference_ratio,omitempty"`
	TraceOverSynthetic         float64            `json:"trace_over_synthetic_ratio,omitempty"`
	EngineCycleNsPerOp         map[string]float64 `json:"engine_cycle_ns_per_op,omitempty"`
	MaxRegressionAllowed       float64            `json:"max_regression_allowed"`
	MinFastOverReference       float64            `json:"min_fast_over_reference,omitempty"`
	MinTraceOverSynthetic      float64            `json:"min_trace_over_synthetic,omitempty"`
	Pass                       bool               `json:"pass"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		raw        = fs.String("raw", "", "benchmark output to parse: `go test -bench -json` stream or plain -bench text")
		baseline   = fs.String("baseline", "BENCH_baseline.json", "checked-in baseline file")
		out        = fs.String("out", "", "write the gate report as JSON to this file")
		maxRegress = fs.Float64("max-regress", 0.10, "maximum allowed fractional drop of instrs/s below the baseline")
		minRatio   = fs.Float64("min-ratio", 0.85, "minimum fast-loop/reference-loop throughput ratio (hardware-independent; 0 disables)")
		minTrace   = fs.Float64("min-trace-ratio", 0.90, "minimum trace-replay/synthetic throughput ratio measured in the same run (hardware-independent; 0 disables)")
		update     = fs.Bool("update", false, "rewrite the baseline from the measured numbers instead of gating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *raw == "" {
		return fmt.Errorf("-raw is required")
	}
	m, err := parseBench(*raw)
	if err != nil {
		return err
	}
	if m.instrs == 0 {
		return fmt.Errorf("%s: no instrs/s metric found (did BenchmarkSimulatorThroughput run?)", *raw)
	}

	if *update {
		var base Baseline
		if data, err := os.ReadFile(*baseline); err == nil {
			_ = json.Unmarshal(data, &base) // keep pre-PR references and note
		}
		base.SimulatorInstrsPerSec = m.instrs
		base.IMTInstrsPerSec = m.imt
		base.TraceReplayInstrsPerSec = m.trc
		base.EngineCycleNsPerOp = m.engine
		return writeJSON(*baseline, &base)
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", *baseline, err)
	}
	if base.SimulatorInstrsPerSec <= 0 {
		return fmt.Errorf("baseline %s: simulator_instrs_per_sec missing", *baseline)
	}

	rep := Report{
		InstrsPerSec:               m.instrs,
		BaselineInstrsPerSec:       base.SimulatorInstrsPerSec,
		RatioVsBaseline:            m.instrs / base.SimulatorInstrsPerSec,
		PrePRInstrsPerSec:          base.PrePRInstrsPerSec,
		ReferenceInstrsPerSec:      m.ref,
		IMTInstrsPerSec:            m.imt,
		BaselineIMTInstrsPerSec:    base.IMTInstrsPerSec,
		PrePRIMTInstrsPerSec:       base.PrePRIMTInstrsPerSec,
		IMTReferenceInstrsPerSec:   m.imtRef,
		TraceInstrsPerSec:          m.trc,
		BaselineTraceInstrsPerSec:  base.TraceReplayInstrsPerSec,
		TraceReferenceInstrsPerSec: m.trcRef,
		EngineCycleNsPerOp:         m.engine,
		MaxRegressionAllowed:       *maxRegress,
		MinFastOverReference:       *minRatio,
		MinTraceOverSynthetic:      *minTrace,
	}
	if base.PrePRInstrsPerSec > 0 {
		rep.SpeedupVsPrePR = m.instrs / base.PrePRInstrsPerSec
	}
	if m.ref > 0 {
		rep.FastOverReference = m.instrs / m.ref
	}
	if m.imt > 0 && base.IMTInstrsPerSec > 0 {
		rep.IMTRatioVsBaseline = m.imt / base.IMTInstrsPerSec
	}
	if m.imt > 0 && base.PrePRIMTInstrsPerSec > 0 {
		rep.IMTSpeedupVsPrePR = m.imt / base.PrePRIMTInstrsPerSec
	}
	if m.imt > 0 && m.imtRef > 0 {
		rep.IMTFastOverReference = m.imt / m.imtRef
	}
	if m.trc > 0 && base.TraceReplayInstrsPerSec > 0 {
		rep.TraceRatioVsBaseline = m.trc / base.TraceReplayInstrsPerSec
	}
	if m.trc > 0 && m.trcRef > 0 {
		rep.TraceFastOverReference = m.trc / m.trcRef
	}
	if m.trc > 0 {
		rep.TraceOverSynthetic = m.trc / m.instrs
	}
	absOK := rep.RatioVsBaseline >= 1.0-*maxRegress
	ratioOK := *minRatio <= 0 || m.ref == 0 || rep.FastOverReference >= *minRatio
	// The IMT and trace checks mirror the SMT ones and are skipped
	// field-by-field when the baseline or the benchmark predates them.
	imtAbsOK := base.IMTInstrsPerSec <= 0 || m.imt == 0 || rep.IMTRatioVsBaseline >= 1.0-*maxRegress
	imtRatioOK := *minRatio <= 0 || m.imt == 0 || m.imtRef == 0 || rep.IMTFastOverReference >= *minRatio
	trcAbsOK := base.TraceReplayInstrsPerSec <= 0 || m.trc == 0 || rep.TraceRatioVsBaseline >= 1.0-*maxRegress
	trcRatioOK := *minRatio <= 0 || m.trc == 0 || m.trcRef == 0 || rep.TraceFastOverReference >= *minRatio
	trcSynthOK := *minTrace <= 0 || m.trc == 0 || rep.TraceOverSynthetic >= *minTrace
	rep.Pass = absOK && ratioOK && imtAbsOK && imtRatioOK && trcAbsOK && trcRatioOK && trcSynthOK
	if *minRatio > 0 && m.ref == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: warning: BenchmarkSimulatorThroughputReference metric absent; "+
			"fast/reference ratio check skipped (use an unanchored -bench pattern to include it)")
	}
	if base.IMTInstrsPerSec > 0 && m.imt == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: warning: BenchmarkSimulatorThroughputIMT metric absent; "+
			"IMT checks skipped (use an unanchored -bench pattern to include it)")
	}
	if (base.TraceReplayInstrsPerSec > 0 || *minTrace > 0) && m.trc == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: warning: BenchmarkTraceReplayThroughput metric absent; "+
			"trace-replay checks skipped (add BenchmarkTraceReplayThroughput to the -bench pattern)")
	}

	// Write the artifact before gating so a failing job still uploads the
	// measured numbers.
	if *out != "" {
		if err := writeJSON(*out, &rep); err != nil {
			return err
		}
	}
	fmt.Printf("benchgate: %.0f instrs/s (baseline %.0f, ratio %.2f, fast/reference %.2f, speedup vs pre-PR %.2fx)\n",
		rep.InstrsPerSec, rep.BaselineInstrsPerSec, rep.RatioVsBaseline, rep.FastOverReference, rep.SpeedupVsPrePR)
	if m.imt > 0 {
		fmt.Printf("benchgate: IMT %.0f instrs/s (baseline %.0f, ratio %.2f, fast/reference %.2f, speedup vs pre-PR %.2fx)\n",
			rep.IMTInstrsPerSec, rep.BaselineIMTInstrsPerSec, rep.IMTRatioVsBaseline, rep.IMTFastOverReference, rep.IMTSpeedupVsPrePR)
	}
	if m.trc > 0 {
		fmt.Printf("benchgate: trace replay %.0f instrs/s (baseline %.0f, ratio %.2f, fast/reference %.2f, trace/synthetic %.2f)\n",
			rep.TraceInstrsPerSec, rep.BaselineTraceInstrsPerSec, rep.TraceRatioVsBaseline, rep.TraceFastOverReference, rep.TraceOverSynthetic)
	}
	if !absOK {
		return fmt.Errorf("throughput regression: %.0f instrs/s is more than %.0f%% below baseline %.0f",
			m.instrs, *maxRegress*100, base.SimulatorInstrsPerSec)
	}
	if !ratioOK {
		return fmt.Errorf("fast loop slower than reference loop: ratio %.3f below %.3f (%.0f vs %.0f instrs/s)",
			rep.FastOverReference, *minRatio, m.instrs, m.ref)
	}
	if !imtAbsOK {
		return fmt.Errorf("IMT throughput regression: %.0f instrs/s is more than %.0f%% below baseline %.0f",
			m.imt, *maxRegress*100, base.IMTInstrsPerSec)
	}
	if !imtRatioOK {
		return fmt.Errorf("IMT fast loop slower than reference loop: ratio %.3f below %.3f (%.0f vs %.0f instrs/s)",
			rep.IMTFastOverReference, *minRatio, m.imt, m.imtRef)
	}
	if !trcAbsOK {
		return fmt.Errorf("trace-replay throughput regression: %.0f instrs/s is more than %.0f%% below baseline %.0f",
			m.trc, *maxRegress*100, base.TraceReplayInstrsPerSec)
	}
	if !trcRatioOK {
		return fmt.Errorf("trace-replay fast loop slower than reference loop: ratio %.3f below %.3f (%.0f vs %.0f instrs/s)",
			rep.TraceFastOverReference, *minRatio, m.trc, m.trcRef)
	}
	if !trcSynthOK {
		return fmt.Errorf("trace replay slower than synthetic generation: ratio %.3f below %.3f (%.0f vs %.0f instrs/s)",
			rep.TraceOverSynthetic, *minTrace, m.trc, m.instrs)
	}
	return nil
}

// benchMetrics is everything parseBench extracts from one benchmark run.
type benchMetrics struct {
	instrs float64 // BenchmarkSimulatorThroughput (SMT headline)
	ref    float64 // BenchmarkSimulatorThroughputReference
	imt    float64 // BenchmarkSimulatorThroughputIMT
	imtRef float64 // BenchmarkSimulatorThroughputIMTReference
	trc    float64 // BenchmarkTraceReplayThroughput
	trcRef float64 // BenchmarkTraceReplayThroughputReference
	engine map[string]float64
}

// headlineBenchmarks maps instrs/s benchmark names to the benchMetrics
// field that records them. The table is ordered most-specific-first and
// matched by prefix, because go test suffixes names with -GOMAXPROCS and
// the throughput benchmarks share name prefixes: IMTReference must win
// over IMT, each Reference variant over its bare headline. A nil dst
// recognizes the name so a later, shorter prefix cannot claim it, but
// records nothing.
var headlineBenchmarks = []struct {
	prefix string
	dst    func(*benchMetrics) *float64
}{
	{"BenchmarkSimulatorThroughputIMTReference", func(m *benchMetrics) *float64 { return &m.imtRef }},
	{"BenchmarkSimulatorThroughputIMT", func(m *benchMetrics) *float64 { return &m.imt }},
	{"BenchmarkSimulatorThroughputBMT", nil}, // reported in the raw stream for trend-watching; not gated
	{"BenchmarkSimulatorThroughputReference", func(m *benchMetrics) *float64 { return &m.ref }},
	{"BenchmarkSimulatorThroughput", func(m *benchMetrics) *float64 { return &m.instrs }},
	{"BenchmarkTraceReplayThroughputReference", func(m *benchMetrics) *float64 { return &m.trcRef }},
	{"BenchmarkTraceReplayThroughput", func(m *benchMetrics) *float64 { return &m.trc }},
}

// parseBench extracts the instrs/s headlines and per-technique engine-cycle
// ns/op from benchmark output, accepting either the test2json event stream
// of `go test -json` or plain `go test -bench` text. test2json splits a
// benchmark result line over several output events (the name arrives with
// a trailing tab, the metrics separately), so events are reassembled into
// a plain text stream before line parsing.
func parseBench(path string) (benchMetrics, error) {
	var m benchMetrics
	f, err := os.Open(path)
	if err != nil {
		return m, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Action string `json:"Action"`
				Output string `json:"Output"`
			}
			if json.Unmarshal([]byte(line), &ev) == nil && ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return m, err
	}

	m.engine = make(map[string]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, metrics := parseBenchLine(line)
		if strings.HasPrefix(name, "BenchmarkEngineCycle/") {
			if v, ok := metrics["ns/op"]; ok {
				tech := strings.ReplaceAll(strings.TrimPrefix(name, "BenchmarkEngineCycle/"), "_", " ")
				// Strip the -<GOMAXPROCS> suffix go test appends.
				if i := strings.LastIndex(tech, "-"); i > 0 {
					if _, err := strconv.Atoi(tech[i+1:]); err == nil {
						tech = tech[:i]
					}
				}
				m.engine[tech] = v
			}
			continue
		}
		for _, h := range headlineBenchmarks {
			if !strings.HasPrefix(name, h.prefix) {
				continue
			}
			if h.dst != nil {
				if v, ok := metrics["instrs/s"]; ok {
					*h.dst(&m) = v
				}
			}
			break
		}
	}
	return m, nil
}

// parseBenchLine splits "BenchmarkX-8  31  77076432 ns/op  4432891 instrs/s"
// into the benchmark name and its value-unit metric pairs.
func parseBenchLine(line string) (string, map[string]float64) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", nil
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		metrics[fields[i+1]] = v
	}
	return fields[0], metrics
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// rawJSON mirrors real test2json output: benchmark result lines arrive
// split over two output events (name with a trailing tab, then metrics).
const rawJSON = `{"Action":"start","Package":"vexsmt"}
{"Action":"output","Package":"vexsmt","Output":"goos: linux\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkEngineCycle/CSMT-8    \t"}
{"Action":"output","Package":"vexsmt","Output":"10368650\t       108.7 ns/op\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkEngineCycle/CCSI_AS-8 \t 8984086\t       136.7 ns/op\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkSimulatorThroughput-8 \t"}
{"Action":"output","Package":"vexsmt","Output":"      31\t  74810503 ns/op\t   4567159 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkSimulatorThroughputIMT-8 \t      52\t  46060006 ns/op\t   4200000 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkSimulatorThroughputIMTReference-8 \t      36\t  68802022 ns/op\t   2800000 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkSimulatorThroughputBMT-8 \t      39\t  56521036 ns/op\t   4300000 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkSimulatorThroughputReference-8 \t      30\t  76000000 ns/op\t   4400000 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkTraceReplayThroughput-8 \t      34\t  70000000 ns/op\t   4900000 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkTraceReplayThroughputReference-8 \t      28\t  80000000 ns/op\t   4100000 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"PASS\n"}
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchJSONStream(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	m, err := parseBench(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.instrs != 4567159 {
		t.Fatalf("instrs/s = %v, want 4567159", m.instrs)
	}
	if m.ref != 4400000 {
		t.Fatalf("reference instrs/s = %v, want 4400000", m.ref)
	}
	// The shared BenchmarkSimulatorThroughput prefix must not leak the
	// IMT/BMT variants into the SMT headline.
	if m.imt != 4200000 || m.imtRef != 2800000 {
		t.Fatalf("IMT metrics = %v/%v, want 4200000/2800000", m.imt, m.imtRef)
	}
	// The trace pair shares its prefix the same way: Reference must not
	// clobber the bare headline or vice versa.
	if m.trc != 4900000 || m.trcRef != 4100000 {
		t.Fatalf("trace metrics = %v/%v, want 4900000/4100000", m.trc, m.trcRef)
	}
	if m.engine["CSMT"] != 108.7 || m.engine["CCSI AS"] != 136.7 {
		t.Fatalf("engine metrics wrong: %v", m.engine)
	}
}

func TestParseBenchPlainText(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.txt",
		"BenchmarkSimulatorThroughput \t      31\t  74810503 ns/op\t   4567159 instrs/s\nPASS\n")
	m, err := parseBench(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.instrs != 4567159 {
		t.Fatalf("instrs/s = %v, want 4567159", m.instrs)
	}
	if m.ref != 0 {
		t.Fatalf("reference instrs/s = %v, want 0 (absent)", m.ref)
	}
	if m.imt != 0 || m.imtRef != 0 {
		t.Fatalf("IMT metrics = %v/%v, want absent", m.imt, m.imtRef)
	}
}

func TestGatePassAndReport(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json",
		`{"simulator_instrs_per_sec": 4314664, "pre_pr_instrs_per_sec": 2157332,
		  "imt_instrs_per_sec": 4000000, "pre_pr_imt_instrs_per_sec": 2100000}`)
	out := filepath.Join(dir, "report.json")
	if err := run([]string{"-raw", raw, "-baseline", base, "-out", out}); err != nil {
		t.Fatalf("gate failed on healthy numbers: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.InstrsPerSec != 4567159 {
		t.Fatalf("report wrong: %+v", rep)
	}
	if rep.SpeedupVsPrePR < 2.0 {
		t.Fatalf("speedup vs pre-PR %v, want >= 2.0", rep.SpeedupVsPrePR)
	}
	if rep.FastOverReference <= 1.0 {
		t.Fatalf("fast/reference ratio %v, want > 1.0", rep.FastOverReference)
	}
	if rep.IMTInstrsPerSec != 4200000 || rep.IMTSpeedupVsPrePR < 1.5 {
		t.Fatalf("IMT report wrong: %+v", rep)
	}
	if rep.IMTFastOverReference <= 1.0 {
		t.Fatalf("IMT fast/reference ratio %v, want > 1.0", rep.IMTFastOverReference)
	}
	if rep.TraceInstrsPerSec != 4900000 || rep.TraceOverSynthetic <= 1.0 {
		t.Fatalf("trace report wrong: %+v", rep)
	}
}

func TestGateFailsOnTraceRegression(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	// SMT and IMT headlines healthy, trace baseline far above the measured
	// 4900000.
	base := write(t, dir, "base.json",
		`{"simulator_instrs_per_sec": 4314664, "trace_replay_instrs_per_sec": 9000000}`)
	err := run([]string{"-raw", raw, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "trace-replay throughput regression") {
		t.Fatalf("expected trace regression failure, got %v", err)
	}
}

func TestGateFailsWhenTraceSlowerThanSynthetic(t *testing.T) {
	dir := t.TempDir()
	// Trace replay at 77% of the synthetic headline: under the 90% floor
	// even though it clears its own baseline and reference loop.
	raw := write(t, dir, "raw.txt",
		"BenchmarkSimulatorThroughput \t 10\t 100 ns/op\t 4500000 instrs/s\n"+
			"BenchmarkTraceReplayThroughput \t 10\t 100 ns/op\t 3500000 instrs/s\n"+
			"BenchmarkTraceReplayThroughputReference \t 10\t 100 ns/op\t 3400000 instrs/s\n")
	base := write(t, dir, "base.json",
		`{"simulator_instrs_per_sec": 4500000, "trace_replay_instrs_per_sec": 3500000}`)
	err := run([]string{"-raw", raw, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "slower than synthetic") {
		t.Fatalf("expected trace-vs-synthetic failure, got %v", err)
	}
	// The check can be disabled explicitly.
	if err := run([]string{"-raw", raw, "-baseline", base, "-min-trace-ratio", "0"}); err != nil {
		t.Fatalf("-min-trace-ratio 0 should disable the trace/synthetic gate: %v", err)
	}
}

func TestGateSkipsTraceWithOldBaseline(t *testing.T) {
	// A pre-PR-9 run has no trace benchmark at all: every trace check is
	// skipped (with a warning) rather than failing the gate.
	dir := t.TempDir()
	raw := write(t, dir, "raw.txt",
		"BenchmarkSimulatorThroughput \t 10\t 100 ns/op\t 4500000 instrs/s\n")
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 4500000}`)
	if err := run([]string{"-raw", raw, "-baseline", base}); err != nil {
		t.Fatalf("absent trace benchmark should skip the trace checks: %v", err)
	}
}

func TestGateFailsOnIMTRegression(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	// SMT headline healthy, IMT baseline far above the measured 4200000.
	base := write(t, dir, "base.json",
		`{"simulator_instrs_per_sec": 4314664, "imt_instrs_per_sec": 9000000}`)
	err := run([]string{"-raw", raw, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "IMT throughput regression") {
		t.Fatalf("expected IMT regression failure, got %v", err)
	}
}

func TestGateFailsWhenIMTFastSlowerThanReference(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.txt",
		"BenchmarkSimulatorThroughput \t 10\t 100 ns/op\t 4500000 instrs/s\n"+
			"BenchmarkSimulatorThroughputReference \t 10\t 100 ns/op\t 4400000 instrs/s\n"+
			"BenchmarkSimulatorThroughputIMT \t 10\t 100 ns/op\t 3000000 instrs/s\n"+
			"BenchmarkSimulatorThroughputIMTReference \t 10\t 100 ns/op\t 4000000 instrs/s\n")
	base := write(t, dir, "base.json",
		`{"simulator_instrs_per_sec": 4500000, "imt_instrs_per_sec": 3000000}`)
	err := run([]string{"-raw", raw, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "IMT fast loop slower") {
		t.Fatalf("expected IMT ratio failure, got %v", err)
	}
}

func TestGateSkipsIMTWithOldBaseline(t *testing.T) {
	// A pre-PR-6 baseline has no imt_instrs_per_sec field: the IMT absolute
	// check is skipped, but the in-job IMT fast/reference ratio still gates.
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 4314664}`)
	if err := run([]string{"-raw", raw, "-baseline", base}); err != nil {
		t.Fatalf("old baseline should skip the IMT absolute check: %v", err)
	}
}

func TestGateFailsWhenFastSlowerThanReference(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.txt",
		"BenchmarkSimulatorThroughput \t 10\t 100 ns/op\t 4000000 instrs/s\n"+
			"BenchmarkSimulatorThroughputReference \t 10\t 100 ns/op\t 5000000 instrs/s\n")
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 4000000}`)
	err := run([]string{"-raw", raw, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "slower than reference") {
		t.Fatalf("expected fast-vs-reference failure, got %v", err)
	}
	// The hardware-independent check can be disabled explicitly.
	if err := run([]string{"-raw", raw, "-baseline", base, "-min-ratio", "0"}); err != nil {
		t.Fatalf("-min-ratio 0 should disable the ratio gate: %v", err)
	}
}

func TestReportWrittenEvenOnFailure(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 9000000}`)
	out := filepath.Join(dir, "report.json")
	if err := run([]string{"-raw", raw, "-baseline", base, "-out", out}); err == nil {
		t.Fatal("expected regression failure")
	}
	var rep Report
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written on gate failure: %v", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.InstrsPerSec != 4567159 {
		t.Fatalf("failure report wrong: %+v", rep)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 9000000}`)
	err := run([]string{"-raw", raw, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("expected regression failure, got %v", err)
	}
}

func TestGateToleratesSmallRegression(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	// Measured 4567159 is ~5% below this baseline: within the 10% budget.
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 4800000}`)
	if err := run([]string{"-raw", raw, "-baseline", base}); err != nil {
		t.Fatalf("5%% dip should pass the 10%% gate: %v", err)
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json",
		`{"simulator_instrs_per_sec": 1, "pre_pr_instrs_per_sec": 2157332, "note": "keep me"}`)
	if err := run([]string{"-raw", raw, "-baseline", base, "-update"}); err != nil {
		t.Fatal(err)
	}
	var b Baseline
	data, _ := os.ReadFile(base)
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.SimulatorInstrsPerSec != 4567159 || b.PrePRInstrsPerSec != 2157332 || b.Note != "keep me" {
		t.Fatalf("baseline not updated in place: %+v", b)
	}
	if b.IMTInstrsPerSec != 4200000 {
		t.Fatalf("baseline IMT headline not updated: %+v", b)
	}
	if b.TraceReplayInstrsPerSec != 4900000 {
		t.Fatalf("baseline trace headline not updated: %+v", b)
	}
}

func TestMissingMetricRejected(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", `{"Action":"output","Output":"PASS\n"}`)
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 1}`)
	if err := run([]string{"-raw", raw, "-baseline", base}); err == nil {
		t.Fatal("missing instrs/s metric accepted")
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// rawJSON mirrors real test2json output: benchmark result lines arrive
// split over two output events (name with a trailing tab, then metrics).
const rawJSON = `{"Action":"start","Package":"vexsmt"}
{"Action":"output","Package":"vexsmt","Output":"goos: linux\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkEngineCycle/CSMT-8    \t"}
{"Action":"output","Package":"vexsmt","Output":"10368650\t       108.7 ns/op\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkEngineCycle/CCSI_AS-8 \t 8984086\t       136.7 ns/op\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkSimulatorThroughput-8 \t"}
{"Action":"output","Package":"vexsmt","Output":"      31\t  74810503 ns/op\t   4567159 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"BenchmarkSimulatorThroughputReference-8 \t      30\t  76000000 ns/op\t   4400000 instrs/s\n"}
{"Action":"output","Package":"vexsmt","Output":"PASS\n"}
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchJSONStream(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	instrs, refInstrs, engine, err := parseBench(raw)
	if err != nil {
		t.Fatal(err)
	}
	if instrs != 4567159 {
		t.Fatalf("instrs/s = %v, want 4567159", instrs)
	}
	if refInstrs != 4400000 {
		t.Fatalf("reference instrs/s = %v, want 4400000", refInstrs)
	}
	if engine["CSMT"] != 108.7 || engine["CCSI AS"] != 136.7 {
		t.Fatalf("engine metrics wrong: %v", engine)
	}
}

func TestParseBenchPlainText(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.txt",
		"BenchmarkSimulatorThroughput \t      31\t  74810503 ns/op\t   4567159 instrs/s\nPASS\n")
	instrs, refInstrs, _, err := parseBench(raw)
	if err != nil {
		t.Fatal(err)
	}
	if instrs != 4567159 {
		t.Fatalf("instrs/s = %v, want 4567159", instrs)
	}
	if refInstrs != 0 {
		t.Fatalf("reference instrs/s = %v, want 0 (absent)", refInstrs)
	}
}

func TestGatePassAndReport(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json",
		`{"simulator_instrs_per_sec": 4314664, "pre_pr_instrs_per_sec": 2157332}`)
	out := filepath.Join(dir, "report.json")
	if err := run([]string{"-raw", raw, "-baseline", base, "-out", out}); err != nil {
		t.Fatalf("gate failed on healthy numbers: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.InstrsPerSec != 4567159 {
		t.Fatalf("report wrong: %+v", rep)
	}
	if rep.SpeedupVsPrePR < 2.0 {
		t.Fatalf("speedup vs pre-PR %v, want >= 2.0", rep.SpeedupVsPrePR)
	}
	if rep.FastOverReference <= 1.0 {
		t.Fatalf("fast/reference ratio %v, want > 1.0", rep.FastOverReference)
	}
}

func TestGateFailsWhenFastSlowerThanReference(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.txt",
		"BenchmarkSimulatorThroughput \t 10\t 100 ns/op\t 4000000 instrs/s\n"+
			"BenchmarkSimulatorThroughputReference \t 10\t 100 ns/op\t 5000000 instrs/s\n")
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 4000000}`)
	err := run([]string{"-raw", raw, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "slower than reference") {
		t.Fatalf("expected fast-vs-reference failure, got %v", err)
	}
	// The hardware-independent check can be disabled explicitly.
	if err := run([]string{"-raw", raw, "-baseline", base, "-min-ratio", "0"}); err != nil {
		t.Fatalf("-min-ratio 0 should disable the ratio gate: %v", err)
	}
}

func TestReportWrittenEvenOnFailure(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 9000000}`)
	out := filepath.Join(dir, "report.json")
	if err := run([]string{"-raw", raw, "-baseline", base, "-out", out}); err == nil {
		t.Fatal("expected regression failure")
	}
	var rep Report
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written on gate failure: %v", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.InstrsPerSec != 4567159 {
		t.Fatalf("failure report wrong: %+v", rep)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 9000000}`)
	err := run([]string{"-raw", raw, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("expected regression failure, got %v", err)
	}
}

func TestGateToleratesSmallRegression(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	// Measured 4567159 is ~5% below this baseline: within the 10% budget.
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 4800000}`)
	if err := run([]string{"-raw", raw, "-baseline", base}); err != nil {
		t.Fatalf("5%% dip should pass the 10%% gate: %v", err)
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", rawJSON)
	base := write(t, dir, "base.json",
		`{"simulator_instrs_per_sec": 1, "pre_pr_instrs_per_sec": 2157332, "note": "keep me"}`)
	if err := run([]string{"-raw", raw, "-baseline", base, "-update"}); err != nil {
		t.Fatal(err)
	}
	var b Baseline
	data, _ := os.ReadFile(base)
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.SimulatorInstrsPerSec != 4567159 || b.PrePRInstrsPerSec != 2157332 || b.Note != "keep me" {
		t.Fatalf("baseline not updated in place: %+v", b)
	}
}

func TestMissingMetricRejected(t *testing.T) {
	dir := t.TempDir()
	raw := write(t, dir, "raw.json", `{"Action":"output","Output":"PASS\n"}`)
	base := write(t, dir, "base.json", `{"simulator_instrs_per_sec": 1}`)
	if err := run([]string{"-raw", raw, "-baseline", base}); err == nil {
		t.Fatal("missing instrs/s metric accepted")
	}
}

package vexsmt

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// encodeCanonical returns rs's canonical encoding without mutating it.
func encodeCanonical(t *testing.T, rs *ResultSet) string {
	t.Helper()
	cp := &ResultSet{Meta: rs.Meta, Cells: append([]CellResult(nil), rs.Cells...)}
	cp.Canonicalize()
	var buf bytes.Buffer
	if err := EncodeResults(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestMergeOfDisjointShardsMatchesCollect(t *testing.T) {
	svc := testService(t)
	plan := Plan{Figures: []string{"14"}}
	whole, err := svc.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := svc.PlanCells(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(whole.Cells) {
		t.Fatalf("PlanCells %d vs Collect %d", len(cells), len(whole.Cells))
	}

	// Split the grid three ways (unbalanced on purpose) and Collect each
	// part separately; the merge must reproduce the whole, bit for bit.
	parts := [][]CellSpec{cells[:5], cells[5:7], cells[7:]}
	sets := make([]*ResultSet, len(parts))
	for i, part := range parts {
		sets[i], err = svc.Collect(context.Background(), Plan{Cells: part})
		if err != nil {
			t.Fatal(err)
		}
	}
	merged, err := sets[0].Merge(sets[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeCanonical(t, merged), encodeCanonical(t, whole); got != want {
		t.Fatal("merge of disjoint shards differs from single Collect")
	}
	if merged.Meta.Parallelism != 0 {
		t.Fatalf("merged parallelism %d, want 0 (informational only)", merged.Meta.Parallelism)
	}
}

func TestMergeDeduplicatesIdenticalCells(t *testing.T) {
	svc := testService(t)
	plan := Plan{Cells: []CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2},
		{Mix: "mmmm", Technique: "SMT", Threads: 2},
	}}
	a, err := svc.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := a.Merge(b)
	if err != nil {
		t.Fatalf("identical duplicates rejected: %v", err)
	}
	if len(merged.Cells) != 2 {
		t.Fatalf("merged %d cells, want 2 after dedup", len(merged.Cells))
	}
}

func TestMergeRejectsConflictsAndForeignMeta(t *testing.T) {
	svc := testService(t)
	rs, err := svc.Collect(context.Background(), Plan{Cells: []CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}

	conflicting := &ResultSet{Meta: rs.Meta, Cells: append([]CellResult(nil), rs.Cells...)}
	conflicting.Cells[0].IPC++
	if _, err := rs.Merge(conflicting); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting duplicate cell not rejected: %v", err)
	}

	for name, mutate := range map[string]func(*RunMeta){
		"seed":       func(m *RunMeta) { m.Seed++ },
		"scale":      func(m *RunMeta) { m.Scale++ },
		"schema":     func(m *RunMeta) { m.SchemaVersion++ },
		"techniques": func(m *RunMeta) { m.Techniques = "SMT" },
	} {
		foreign := &ResultSet{Meta: rs.Meta}
		mutate(&foreign.Meta)
		if _, err := rs.Merge(foreign); err == nil {
			t.Errorf("merge across mismatched %s accepted", name)
		}
	}
}

func TestPlanCellsMatchesPlanSizeAndOrder(t *testing.T) {
	svc := testService(t)
	plan := Plan{Figures: []string{"14", "15", "16"}}
	cells, err := svc.PlanCells(plan)
	if err != nil {
		t.Fatal(err)
	}
	n, err := svc.PlanSize(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != n {
		t.Fatalf("PlanCells %d vs PlanSize %d", len(cells), n)
	}
	seen := make(map[CellSpec]bool, len(cells))
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %+v in PlanCells", c)
		}
		seen[c] = true
	}
	again, err := svc.PlanCells(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatal("PlanCells order is not deterministic")
		}
	}
}

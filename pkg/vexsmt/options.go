package vexsmt

import (
	"fmt"

	"vexsmt/internal/bpred"
	"vexsmt/internal/core"
	"vexsmt/internal/wstore"
)

// Option configures a Service at construction time. All knobs are fixed
// once New returns — there are no mutators, so a Service can be shared by
// any number of goroutines and mid-run reconfiguration races (the old
// Matrix.SetParallelism footgun) are impossible by construction.
type Option func(*Service) error

// WithScale sets the scale divisor of paper scale: 1 simulates the paper's
// full 200M-instruction runs, 100 (the default) runs 1/100 of that.
func WithScale(div int64) Option {
	return func(s *Service) error {
		if div < 1 {
			return fmt.Errorf("vexsmt: scale divisor %d < 1", div)
		}
		s.scale = div
		return nil
	}
}

// WithSeed sets the base seed every cell seed derives from. Two services
// with the same seed, scale and plan produce bit-identical results.
func WithSeed(seed uint64) Option {
	return func(s *Service) error {
		s.seed = seed
		return nil
	}
}

// WithParallelism bounds the simulation worker pool; n < 1 is rejected.
// The default is GOMAXPROCS. Parallelism never affects results, only
// wall-clock time.
func WithParallelism(n int) Option {
	return func(s *Service) error {
		if n < 1 {
			return fmt.Errorf("vexsmt: parallelism %d < 1", n)
		}
		s.parallel = n
		return nil
	}
}

// WithCache attaches a content-addressed result cache (see CellCache and
// pkg/vexsmt/cache): every cell consults it before simulating and
// populates it after, keyed by CacheKey. Caching never changes results —
// a hit returns exactly the bytes a simulation would produce — it only
// makes repeated sweeps of the same (seed, scale, cell) grid near-
// instant. A nil cache is ignored.
func WithCache(c CellCache) Option {
	return func(s *Service) error {
		s.cache = c
		return nil
	}
}

// WithTechniques restricts the service to the named techniques ("SMT",
// "CSMT", "CCSI NS", "CCSI AS", "COSI NS", "COSI AS", "OOSI NS",
// "OOSI AS"). Sweep plans expand over exactly this set, and resolving a
// plan that needs a technique outside it fails up front rather than
// silently simulating it. The default is all eight techniques of the
// paper's Figure 16.
func WithTechniques(names ...string) Option {
	return func(s *Service) error {
		if len(names) == 0 {
			return fmt.Errorf("vexsmt: WithTechniques requires at least one technique")
		}
		techs := make([]core.Technique, 0, len(names))
		seen := make(map[string]bool, len(names))
		for _, name := range names {
			t, err := core.ParseTechnique(name)
			if err != nil {
				return fmt.Errorf("vexsmt: %w", err)
			}
			if seen[t.Name()] {
				continue
			}
			seen[t.Name()] = true
			techs = append(techs, t)
		}
		s.techniques = techs
		return nil
	}
}

// WithPredictors restricts the service to the named branch-predictor
// models ("static", "bimodal", "gshare", "tage"). Plans naming a
// predictor outside the set fail at resolution rather than silently
// simulating it. The default is every model in internal/bpred.
func WithPredictors(names ...string) Option {
	return func(s *Service) error {
		if len(names) == 0 {
			return fmt.Errorf("vexsmt: WithPredictors requires at least one predictor")
		}
		preds := make([]string, 0, len(names))
		seen := make(map[string]bool, len(names))
		for _, name := range names {
			canon, err := bpred.Canonical(name)
			if err != nil {
				return fmt.Errorf("vexsmt: %w", err)
			}
			if seen[canon] {
				continue
			}
			seen[canon] = true
			preds = append(preds, canon)
		}
		s.predictors = preds
		return nil
	}
}

// WithWorkloadDir loads a trace corpus directory (.vxt binary traces and
// .vex assembly programs; see internal/wstore) and enables the workload
// axis: Plan.Workloads and CellSpec.Workload resolve against the loaded
// corpus. Files are content-hashed and decoded at most once per process
// no matter how many services name the same directory — concurrent cells
// replay one shared immutable arena. An empty dir is rejected at New.
func WithWorkloadDir(dir string) Option {
	return func(s *Service) error {
		if dir == "" {
			return fmt.Errorf("vexsmt: WithWorkloadDir requires a directory")
		}
		s.workloadDir = dir
		return nil
	}
}

// withWorkloadStore injects a private trace store (tests only; production
// services share the process-global store so corpora decode once).
func withWorkloadStore(st *wstore.Store) Option {
	return func(s *Service) error {
		s.wl = st
		return nil
	}
}

// Predictors returns the names of every branch-predictor model, in
// canonical presentation order — the default set of a Service.
func Predictors() []string { return bpred.Names() }

// Techniques returns the names of every technique the paper evaluates, in
// the presentation order of Figure 16 — the default set of a Service.
func Techniques() []string {
	all := core.AllTechniques()
	names := make([]string, len(all))
	for i, t := range all {
		names[i] = t.Name()
	}
	return names
}

// Mixes returns the labels of the paper's nine workload mixes
// (Figure 13(b)) in presentation order.
func Mixes() []string {
	names := make([]string, 0, 9)
	for _, m := range mixTable() {
		names = append(names, m.Label)
	}
	return names
}

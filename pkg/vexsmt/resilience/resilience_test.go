package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBackoffCappedExponential(t *testing.T) {
	p := Default()
	p.JitterFrac = 0 // isolate the exponential shape
	want := []time.Duration{
		250 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
		2 * time.Second,
		2 * time.Second, // capped
	}
	for i, w := range want {
		if got := p.Backoff("site", i+1); got != w {
			t.Errorf("Backoff(site, %d) = %s, want %s", i+1, got, w)
		}
	}
	if got := p.Backoff("site", 0); got != 250*time.Millisecond {
		t.Errorf("Backoff(site, 0) = %s, want first-failure wait", got)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := Default()
	p.Seed = 42
	for n := 1; n <= 6; n++ {
		a := p.Backoff("shard", n)
		b := p.Backoff("shard", n)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %s vs %s", n, a, b)
		}
		base := Default()
		base.JitterFrac = 0
		center := base.Backoff("shard", n)
		lo := center - time.Duration(float64(center)*p.JitterFrac)
		hi := center + time.Duration(float64(center)*p.JitterFrac)
		if a < lo || a > hi {
			t.Errorf("attempt %d: backoff %s outside [%s, %s]", n, a, lo, hi)
		}
	}
	// Distinct sites (and distinct seeds) must decorrelate: at least one
	// attempt count jitters differently.
	q := p
	q.Seed = 43
	same := 0
	for n := 1; n <= 6; n++ {
		if p.Backoff("a", n) == p.Backoff("b", n) {
			same++
		}
		if p.Backoff("a", n) == q.Backoff("a", n) {
			same++
		}
	}
	if same == 12 {
		t.Error("jitter identical across sites and seeds; stream not decorrelating")
	}
}

func TestAttemptContextNeverExtends(t *testing.T) {
	p := Default()
	p.AttemptTimeout = time.Hour
	short, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	actx, acancel := p.AttemptContext(short)
	defer acancel()
	d, ok := actx.Deadline()
	if !ok {
		t.Fatal("attempt context lost the caller's deadline")
	}
	if time.Until(d) > time.Second {
		t.Fatalf("attempt context extended the caller's 10ms budget to %s", time.Until(d))
	}
}

func TestAttemptContextAppliesBudget(t *testing.T) {
	p := Default()
	p.AttemptTimeout = 5 * time.Millisecond
	actx, cancel := p.AttemptContext(context.Background())
	defer cancel()
	select {
	case <-actx.Done():
	case <-time.After(time.Second):
		t.Fatal("attempt timeout never fired")
	}
}

func TestAttemptContextZeroIsPassthrough(t *testing.T) {
	p := Default()
	p.AttemptTimeout = 0
	ctx := context.Background()
	actx, cancel := p.AttemptContext(ctx)
	cancel() // must be a no-op
	if actx != ctx {
		t.Error("zero AttemptTimeout should return the caller's context unchanged")
	}
	if err := actx.Err(); err != nil {
		t.Errorf("no-op cancel cancelled the caller's context: %v", err)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	p := Default()
	p.BaseBackoff, p.MaxBackoff = time.Millisecond, 2*time.Millisecond
	calls := 0
	err := p.Do(context.Background(), "test", func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success on call 3", err, calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Default()
	p.BaseBackoff, p.MaxBackoff = time.Millisecond, 2*time.Millisecond
	calls := 0
	wantErr := errors.New("still down")
	err := p.Do(context.Background(), "test", func(context.Context) error {
		calls++
		return fmt.Errorf("attempt %d: %w", calls, wantErr)
	})
	if calls != p.MaxAttempts {
		t.Fatalf("Do made %d calls, want MaxAttempts=%d", calls, p.MaxAttempts)
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("Do returned %v, want the last attempt's error", err)
	}
}

func TestDoHonorsCallerCancellation(t *testing.T) {
	p := Default()
	p.BaseBackoff, p.MaxBackoff = time.Hour, time.Hour // backoff must not block cancellation
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	err := p.Do(ctx, "test", func(context.Context) error { return errors.New("down") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled from the backoff wait", err)
	}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	bad := Default()
	bad.MaxAttempts = 0
	if Validate := bad.Validate(); Validate == nil {
		t.Error("MaxAttempts 0 accepted")
	}
	bad = Default()
	bad.JitterFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("JitterFrac 1.5 accepted")
	}
}

func TestPresets(t *testing.T) {
	if p := PeerFill(); p.AttemptTimeout != time.Second || p.MaxAttempts != 1 {
		t.Errorf("PeerFill preset drifted: %+v", p)
	}
	if p := Probe(); p.AttemptTimeout != 2*time.Second || p.MaxAttempts != 1 {
		t.Errorf("Probe preset drifted: %+v", p)
	}
	var zero Policy
	if zero.Breaker() != Default().BreakerThreshold {
		t.Errorf("zero policy breaker = %d, want default %d", zero.Breaker(), Default().BreakerThreshold)
	}
}

// Package resilience is the single home of the repo's failure-handling
// knobs. Before it existed they were scattered and hardcoded: the cell
// scheduler grew its own 250ms-doubling backoff and 3-failure circuit
// breaker, the shard coordinator pinned health probes at 3s, the fleet
// peer fetcher overrode every caller with a fixed 1s timeout built on
// context.Background(), and several fleet HTTP paths picked their own 5s
// deadlines. A Policy gathers those decisions into one value that the
// distributed layers (sched, shard, fleet, server, the CLIs) share, so a
// deployment tunes failure behavior in one place and the layers cannot
// drift apart.
//
// Two properties are deliberate:
//
//   - Backoff jitter is deterministic. Randomized jitter would make a
//     failing run's timing — and therefore its interleaving — different
//     on every attempt, which is poison for reproducing a field failure.
//     Jitter here derives from rng.DeriveSeed over (seed, site, attempt),
//     so two runs of the same schedule jitter identically while distinct
//     sites still decorrelate (no thundering herd of synchronized
//     retries).
//
//   - Per-attempt deadlines never extend a caller's budget.
//     AttemptContext layers the policy's attempt timeout onto the
//     caller's context with context.WithTimeout, whose semantics are
//     "whichever deadline is earlier wins" — a caller that gave the whole
//     operation 500ms cannot be held for the policy's 2s by a lower
//     layer.
package resilience

import (
	"context"
	"fmt"
	"time"

	"vexsmt/internal/rng"
)

// RetryAfterHint is the machine-readable backoff hint (in seconds) that
// load-shedding 503 responses carry in their Retry-After header. Clients
// treat a 503+Retry-After as "place elsewhere, come back in a beat", and
// the scheduler's backoff (see Policy.Backoff) spaces the comeback.
const RetryAfterHint = 1

// Policy is one layer's failure-handling contract: how often to retry,
// how long to wait between attempts, how much wall-clock each attempt may
// spend, and when to stop trusting a backend entirely. The zero value is
// not valid; start from Default (or a sibling preset) and override.
type Policy struct {
	// MaxAttempts is the total number of tries an operation gets (first
	// attempt included). Retry loops driven by Do stop after this many.
	MaxAttempts int

	// BaseBackoff is the wait after the first failure; each further
	// consecutive failure doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration

	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration

	// JitterFrac spreads each backoff by ±(JitterFrac × backoff),
	// deterministically (see Backoff). 0 disables jitter; 0.25 means a
	// 1s backoff lands anywhere in [750ms, 1250ms].
	JitterFrac float64

	// AttemptTimeout bounds one attempt's wall clock via AttemptContext.
	// 0 means the attempt runs on the caller's deadline alone.
	AttemptTimeout time.Duration

	// BreakerThreshold is how many consecutive failures take a backend
	// out of rotation (while an alternative exists). 0 selects the
	// default.
	BreakerThreshold int

	// Seed feeds the deterministic jitter stream. Two policies with equal
	// seeds jitter identically; reproducing a field failure means reusing
	// its seed.
	Seed uint64
}

// Default is the general-purpose policy: 3 attempts, 250ms doubling to a
// 2s cap with ±25% deterministic jitter, 5s per attempt, and a 3-failure
// circuit breaker. These are exactly the values the scheduler and fleet
// layers hardcoded before this package existed, so adopting the policy
// changed no behavior.
func Default() Policy {
	return Policy{
		MaxAttempts:      3,
		BaseBackoff:      250 * time.Millisecond,
		MaxBackoff:       2 * time.Second,
		JitterFrac:       0.25,
		AttemptTimeout:   5 * time.Second,
		BreakerThreshold: 3,
	}
}

// PeerFill is the policy for fleet cache peer fills: entries are a few
// hundred bytes, so a peer that cannot answer in a second is slower than
// simulating locally — and a peer fill is never retried (the next peer,
// or the simulator, is the retry).
func PeerFill() Policy {
	p := Default()
	p.MaxAttempts = 1
	p.AttemptTimeout = time.Second
	return p
}

// Probe is the policy for health probes: a placement signal, not work —
// a backend that cannot answer in 2s is left out of the round rather
// than allowed to stall it.
func Probe() Policy {
	p := Default()
	p.MaxAttempts = 1
	p.AttemptTimeout = 2 * time.Second
	return p
}

// Validate reports a policy that cannot drive a retry loop.
func (p Policy) Validate() error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("resilience: MaxAttempts %d < 1", p.MaxAttempts)
	}
	if p.BaseBackoff < 0 || p.MaxBackoff < 0 {
		return fmt.Errorf("resilience: negative backoff (base %s, max %s)", p.BaseBackoff, p.MaxBackoff)
	}
	if p.JitterFrac < 0 || p.JitterFrac >= 1 {
		return fmt.Errorf("resilience: JitterFrac %g outside [0,1)", p.JitterFrac)
	}
	return nil
}

// orDefault fills zero fields from Default so a partially-specified
// policy (or the zero value reaching a layer that tolerates it) still
// behaves.
func (p Policy) orDefault() Policy {
	d := Default()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.BreakerThreshold < 1 {
		p.BreakerThreshold = d.BreakerThreshold
	}
	return p
}

// Breaker returns the consecutive-failure threshold past which a backend
// leaves rotation, defaulting zero to Default's.
func (p Policy) Breaker() int { return p.orDefault().BreakerThreshold }

// Backoff returns the wait after the n-th consecutive failure (n ≥ 1) at
// the given site: BaseBackoff doubling per failure, capped at MaxBackoff,
// spread by ±JitterFrac deterministically. The jitter is a pure function
// of (Seed, site, n) — same policy, same site, same failure count, same
// wait — so a chaos run's timing replays exactly, while distinct sites
// (or distinct attempt counts) decorrelate instead of retrying in
// lockstep.
func (p Policy) Backoff(site string, n int) time.Duration {
	p = p.orDefault()
	if n < 1 {
		n = 1
	}
	d := p.BaseBackoff
	// Shift with an overflow guard: past the cap the exact power is moot.
	for i := 1; i < n && d < p.MaxBackoff; i++ {
		d <<= 1
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.JitterFrac > 0 {
		// Uniform in [-1, 1) from the per-(site, attempt) seed stream.
		u := unit(rng.DeriveSeed(p.Seed, rng.StringToken("backoff"), rng.StringToken(site), uint64(n)))
		d += time.Duration(float64(d) * p.JitterFrac * (2*u - 1))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// AttemptContext bounds one attempt: the returned context carries the
// policy's AttemptTimeout layered on ctx, which can only shorten —
// never extend — a deadline ctx already has. With AttemptTimeout 0 the
// caller's context is returned as-is (with a no-op cancel), so callers
// can defer cancel() unconditionally.
func (p Policy) AttemptContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.AttemptTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, p.AttemptTimeout)
}

// Do runs op under the policy's retry loop: up to MaxAttempts tries, each
// bounded by AttemptContext, with Backoff(site, n) between consecutive
// failures. It returns nil on the first success, the last error once the
// budget is spent, and ctx's error as soon as the caller's context fires
// (backoff waits watch it too).
func (p Policy) Do(ctx context.Context, site string, op func(ctx context.Context) error) error {
	p = p.orDefault()
	var last error
	for n := 1; n <= p.MaxAttempts; n++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		actx, cancel := p.AttemptContext(ctx)
		err := op(actx)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		if n == p.MaxAttempts {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(p.Backoff(site, n)):
		}
	}
	return last
}

// unit maps a 64-bit draw to [0, 1) with 53-bit precision.
func unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

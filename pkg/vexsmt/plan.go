package vexsmt

import (
	"fmt"
	"strings"

	"vexsmt/internal/core"
	"vexsmt/internal/experiments"
	"vexsmt/internal/workload"
)

// CellSpec names one grid cell by its public identity. Technique names are
// the paper's ("SMT", "CCSI AS", ...); mixes are Figure 13(b) labels.
type CellSpec struct {
	Mix       string `json:"mix"`
	Technique string `json:"technique"`
	Threads   int    `json:"threads"`
}

// Plan describes the work of one run. The three fields compose: the
// resolved plan is the deduplicated union of the named figures' grids, the
// explicit cells, and — when Sweep is set — the service's technique set
// swept over all nine mixes at the paper's 2- and 4-thread machines.
//
// Figure names are "13a", "13b", "14", "15", "16" or "all"; figures 13a
// and 13b plan no grid cells (13a is single-threaded, 13b is a table), but
// naming them keeps one Plan vocabulary across the streaming API and the
// figure renderer.
type Plan struct {
	Figures []string   `json:"figures,omitempty"`
	Cells   []CellSpec `json:"cells,omitempty"`
	Sweep   bool       `json:"sweep,omitempty"`
}

// AllFigures lists every figure name a Plan accepts, in paper order.
func AllFigures() []string { return []string{"13a", "13b", "14", "15", "16"} }

// ParseFigures expands a comma-separated figure list ("14,15", "all") into
// figure names, validating each against AllFigures.
func ParseFigures(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" || list == "all" {
		return AllFigures(), nil
	}
	known := make(map[string]bool)
	for _, f := range AllFigures() {
		known[f] = true
	}
	// Validate every token before honoring "all": "-fig all,bogus" must be
	// an error, not a silent full-grid run with a swallowed typo.
	var out []string
	sawAll := false
	seen := make(map[string]bool)
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if f == "all" {
			sawAll = true
			continue
		}
		if !known[f] {
			return nil, fmt.Errorf("vexsmt: unknown figure %q (have %s, all)",
				f, strings.Join(AllFigures(), ", "))
		}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	if sawAll {
		return AllFigures(), nil
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vexsmt: empty figure list %q", list)
	}
	return out, nil
}

// mixTable returns the paper's nine mixes (internal type; used by
// resolution and the Mixes accessor).
func mixTable() []workload.Mix { return workload.Figure13b() }

// resolve turns a public Plan into the internal deduplicated cell plan,
// enforcing the service's technique set.
func (s *Service) resolve(p Plan) (*experiments.Plan, error) {
	ip, err := experiments.PlanFigures(p.Figures...)
	if err != nil {
		return nil, fmt.Errorf("vexsmt: %w", err)
	}
	if p.Sweep {
		for _, threads := range []int{2, 4} {
			for _, t := range s.techniques {
				ip.AddMixSweep(t, threads)
			}
		}
	}
	for _, spec := range p.Cells {
		c, err := s.cell(spec)
		if err != nil {
			return nil, err
		}
		ip.Add(c)
	}
	for _, c := range ip.Cells() {
		if !s.allowed(c.Tech) {
			return nil, fmt.Errorf("vexsmt: technique %s not enabled on this service (WithTechniques)",
				c.Tech.Name())
		}
	}
	return ip, nil
}

// cell validates one CellSpec against the public vocabulary and the
// machine's limits.
func (s *Service) cell(spec CellSpec) (experiments.Cell, error) {
	mix, err := workload.MixByLabel(spec.Mix)
	if err != nil {
		return experiments.Cell{}, fmt.Errorf("vexsmt: %w", err)
	}
	tech, err := core.ParseTechnique(spec.Technique)
	if err != nil {
		return experiments.Cell{}, fmt.Errorf("vexsmt: %w", err)
	}
	if spec.Threads < 1 || spec.Threads > core.MaxThreads {
		return experiments.Cell{}, fmt.Errorf("vexsmt: thread count %d out of range [1,%d]",
			spec.Threads, core.MaxThreads)
	}
	return experiments.Cell{Mix: mix, Tech: tech, Threads: spec.Threads}, nil
}

func (s *Service) allowed(t core.Technique) bool {
	for _, have := range s.techniques {
		if have == t {
			return true
		}
	}
	return false
}

package vexsmt

import (
	"fmt"
	"strings"

	"vexsmt/internal/bpred"
	"vexsmt/internal/core"
	"vexsmt/internal/experiments"
	"vexsmt/internal/workload"
)

// CellSpec names one grid cell by its public identity. Technique names are
// the paper's ("SMT", "CCSI AS", ...); mixes are Figure 13(b) labels;
// predictor names come from internal/bpred ("static", "bimodal", "gshare",
// "tage"). An empty Predictor means "static" — the default front end is
// spelled as absence so static specs (and their JSON) are identical to
// pre-predictor ones.
type CellSpec struct {
	Mix       string `json:"mix"`
	Technique string `json:"technique"`
	Threads   int    `json:"threads"`
	Predictor string `json:"predictor,omitempty"`
	// Workload names a replayed trace workload instead of a synthetic
	// mix: either a bare workload name ("fir") resolved against the
	// service's loaded corpus, or a full "name@sha256" content reference
	// as produced by PlanCells — the reference form is what travels
	// between coordinator and daemons, so a shard only accepts the cell
	// when it holds byte-identical trace content. Mutually exclusive
	// with Mix.
	Workload string `json:"workload,omitempty"`
}

// Plan describes the work of one run. The three fields compose: the
// resolved plan is the deduplicated union of the named figures' grids, the
// explicit cells, and — when Sweep is set — the service's technique set
// swept over all nine mixes at the paper's 2- and 4-thread machines.
//
// Figure names are "13a", "13b", "14", "15", "16" or "all"; figures 13a
// and 13b plan no grid cells (13a is single-threaded, 13b is a table), but
// naming them keeps one Plan vocabulary across the streaming API and the
// figure renderer.
type Plan struct {
	Figures []string   `json:"figures,omitempty"`
	Cells   []CellSpec `json:"cells,omitempty"`
	Sweep   bool       `json:"sweep,omitempty"`

	// Predictors crosses the figure/sweep grid with branch-predictor
	// models: every planned grid cell is simulated once per named model.
	// Empty means ["static"] — the unexpanded grid. Explicit Cells are not
	// crossed; they carry their own Predictor field.
	Predictors []string `json:"predictors,omitempty"`

	// Workloads adds trace-backed cells to the grid: each named workload
	// (bare name or "name@sha256" reference, resolved against the
	// service's loaded corpus) is simulated under every service technique
	// at the paper's 2- and 4-thread machines, crossed with the
	// Predictors axis exactly like the mix grid. Explicit Cells are not
	// crossed; they carry their own Workload field.
	Workloads []string `json:"workloads,omitempty"`
}

// AllFigures lists every figure name a Plan accepts, in paper order.
func AllFigures() []string { return []string{"13a", "13b", "14", "15", "16"} }

// ParseFigures expands a comma-separated figure list ("14,15", "all") into
// figure names, validating each against AllFigures.
func ParseFigures(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" || list == "all" {
		return AllFigures(), nil
	}
	known := make(map[string]bool)
	for _, f := range AllFigures() {
		known[f] = true
	}
	// Validate every token before honoring "all": "-fig all,bogus" must be
	// an error, not a silent full-grid run with a swallowed typo.
	var out []string
	sawAll := false
	seen := make(map[string]bool)
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if f == "all" {
			sawAll = true
			continue
		}
		if !known[f] {
			return nil, fmt.Errorf("vexsmt: unknown figure %q (have %s, all)",
				f, strings.Join(AllFigures(), ", "))
		}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	if sawAll {
		return AllFigures(), nil
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vexsmt: empty figure list %q", list)
	}
	return out, nil
}

// ParsePredictors expands a comma-separated predictor list
// ("static,bimodal", "all") into canonical model names, validating each
// against Predictors(). An empty list means the default static front end.
func ParsePredictors(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return []string{bpred.Default}, nil
	}
	var out []string
	sawAll := false
	seen := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			sawAll = true
			continue
		}
		canon, err := bpred.Canonical(name)
		if err != nil {
			return nil, fmt.Errorf("vexsmt: unknown predictor %q (have %s, all)",
				name, strings.Join(bpred.Names(), ", "))
		}
		if !seen[canon] {
			seen[canon] = true
			out = append(out, canon)
		}
	}
	if sawAll {
		return bpred.Names(), nil
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vexsmt: empty predictor list %q", list)
	}
	return out, nil
}

// canonPredictor maps a public predictor name to the internal cell
// spelling: canonical per bpred, with the default static model spelled ""
// so static cells stay identical to pre-predictor ones everywhere they
// are compared, keyed, or serialized.
func canonPredictor(name string) (string, error) {
	canon, err := bpred.Canonical(name)
	if err != nil {
		return "", fmt.Errorf("vexsmt: %w", err)
	}
	if canon == bpred.Default {
		return "", nil
	}
	return canon, nil
}

// mixTable returns the paper's nine mixes (internal type; used by
// resolution and the Mixes accessor).
func mixTable() []workload.Mix { return workload.Figure13b() }

// resolve turns a public Plan into the internal deduplicated cell plan,
// enforcing the service's technique and predictor sets. The figure/sweep
// grid is crossed with the plan's Predictors axis (predictor-major, so
// one model's full grid streams before the next begins and paired
// comparisons complete early); explicit Cells carry their own Predictor
// and are never crossed.
func (s *Service) resolve(p Plan) (*experiments.Plan, error) {
	grid, err := experiments.PlanFigures(p.Figures...)
	if err != nil {
		return nil, fmt.Errorf("vexsmt: %w", err)
	}
	if p.Sweep {
		for _, threads := range []int{2, 4} {
			for _, t := range s.techniques {
				grid.AddMixSweep(t, threads)
			}
		}
	}
	preds := p.Predictors
	if len(preds) == 0 {
		preds = []string{bpred.Default}
	}
	// Resolve workload names to full content references up front, so a
	// bad name fails the whole plan before anything simulates.
	wlRefs := make([]string, 0, len(p.Workloads))
	for _, w := range p.Workloads {
		ref, err := s.workloadRef(w)
		if err != nil {
			return nil, err
		}
		wlRefs = append(wlRefs, ref)
	}
	ip := experiments.NewPlan()
	for _, name := range preds {
		pred, err := canonPredictor(name)
		if err != nil {
			return nil, err
		}
		for _, c := range grid.Cells() {
			c.Pred = pred
			ip.Add(c)
		}
		for _, ref := range wlRefs {
			for _, threads := range []int{2, 4} {
				for _, t := range s.techniques {
					ip.Add(experiments.Cell{WL: ref, Tech: t, Threads: threads, Pred: pred})
				}
			}
		}
	}
	for _, spec := range p.Cells {
		c, err := s.cell(spec)
		if err != nil {
			return nil, err
		}
		ip.Add(c)
	}
	for _, c := range ip.Cells() {
		if !s.allowed(c.Tech) {
			return nil, fmt.Errorf("vexsmt: technique %s not enabled on this service (WithTechniques)",
				c.Tech.Name())
		}
		if !s.allowedPred(c.Pred) {
			return nil, fmt.Errorf("vexsmt: predictor %s not enabled on this service (WithPredictors)",
				publicPredictor(c.Pred))
		}
	}
	return ip, nil
}

// cell validates one CellSpec against the public vocabulary and the
// machine's limits. A spec names either a mix or a trace workload, never
// both.
func (s *Service) cell(spec CellSpec) (experiments.Cell, error) {
	tech, err := core.ParseTechnique(spec.Technique)
	if err != nil {
		return experiments.Cell{}, fmt.Errorf("vexsmt: %w", err)
	}
	if spec.Threads < 1 || spec.Threads > core.MaxThreads {
		return experiments.Cell{}, fmt.Errorf("vexsmt: thread count %d out of range [1,%d]",
			spec.Threads, core.MaxThreads)
	}
	pred, err := canonPredictor(spec.Predictor)
	if err != nil {
		return experiments.Cell{}, err
	}
	if spec.Workload != "" {
		if spec.Mix != "" {
			return experiments.Cell{}, fmt.Errorf("vexsmt: cell names both mix %q and workload %q", spec.Mix, spec.Workload)
		}
		ref, err := s.workloadRef(spec.Workload)
		if err != nil {
			return experiments.Cell{}, err
		}
		return experiments.Cell{WL: ref, Tech: tech, Threads: spec.Threads, Pred: pred}, nil
	}
	mix, err := workload.MixByLabel(spec.Mix)
	if err != nil {
		return experiments.Cell{}, fmt.Errorf("vexsmt: %w", err)
	}
	return experiments.Cell{Mix: mix, Tech: tech, Threads: spec.Threads, Pred: pred}, nil
}

func (s *Service) allowed(t core.Technique) bool {
	for _, have := range s.techniques {
		if have == t {
			return true
		}
	}
	return false
}

// publicPredictor maps the internal cell spelling back to the public
// model name ("" -> "static").
func publicPredictor(pred string) string {
	if pred == "" {
		return bpred.Default
	}
	return pred
}

func (s *Service) allowedPred(pred string) bool {
	name := publicPredictor(pred)
	for _, have := range s.predictors {
		if have == name {
			return true
		}
	}
	return false
}

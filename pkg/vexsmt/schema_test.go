package vexsmt

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// testScale keeps simulation-backed tests fast; assertions are structural
// or bit-identity, never statistical.
const testScale = 20000

func testService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	svc, err := New(append([]Option{WithScale(testScale)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestSchemaRoundTrip(t *testing.T) {
	svc := testService(t)
	rs, err := svc.Collect(context.Background(), Plan{Cells: []CellSpec{
		{Mix: "mmhh", Technique: "CSMT", Threads: 4},
		{Mix: "mmhh", Technique: "CCSI AS", Threads: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(rs.Cells))
	}

	var buf bytes.Buffer
	if err := EncodeResults(&buf, rs); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != rs.Meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", got.Meta, rs.Meta)
	}
	if len(got.Cells) != len(rs.Cells) {
		t.Fatalf("cell count round-trip: got %d, want %d", len(got.Cells), len(rs.Cells))
	}
	for i := range rs.Cells {
		if got.Cells[i] != rs.Cells[i] {
			t.Errorf("cell %d round-trip:\ngot:  %+v\nwant: %+v", i, got.Cells[i], rs.Cells[i])
		}
	}
}

func TestSchemaRejectsWrongVersion(t *testing.T) {
	doc := `{"meta":{"schema_version":99,"seed":1,"scale":100,"parallelism":1},"cells":[]}`
	if _, err := DecodeResults(strings.NewReader(doc)); err == nil {
		t.Fatal("schema version 99 accepted")
	} else if !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("wrong error: %v", err)
	}
	// Version 0 (missing field) must also be rejected: absence of a version
	// is not a claim of compatibility.
	if _, err := DecodeResults(strings.NewReader(`{"cells":[]}`)); err == nil {
		t.Fatal("versionless document accepted")
	}
}

func TestSchemaRejectsGarbage(t *testing.T) {
	if _, err := DecodeResults(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEncodeStampsVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResults(&buf, &ResultSet{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version": 1`) {
		t.Fatalf("encoded document missing schema version:\n%s", buf.String())
	}
}

func TestCollectDeterministicOrderAndSpeedup(t *testing.T) {
	// Two Collects of the same plan must encode byte-identically, and the
	// paired-seed contract must hold: CSMT and CCSI AS cells of one
	// (mix, threads) share a seed.
	plan := Plan{Cells: []CellSpec{
		{Mix: "mmhh", Technique: "CCSI AS", Threads: 4},
		{Mix: "mmhh", Technique: "CSMT", Threads: 4},
		{Mix: "llll", Technique: "CSMT", Threads: 2},
	}}
	a, err := testService(t).Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testService(t).Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	var abuf, bbuf bytes.Buffer
	if err := EncodeResults(&abuf, a); err != nil {
		t.Fatal(err)
	}
	if err := EncodeResults(&bbuf, b); err != nil {
		t.Fatal(err)
	}
	if abuf.String() != bbuf.String() {
		t.Fatal("two identical Collects encoded differently")
	}
	var csmt, ccsi CellResult
	for _, c := range a.Cells {
		if c.Mix != "mmhh" {
			continue
		}
		switch c.Technique {
		case "CSMT":
			csmt = c
		case "CCSI AS":
			ccsi = c
		}
	}
	if csmt.Seed == 0 || csmt.Seed != ccsi.Seed {
		t.Fatalf("paired cells have unpaired seeds: CSMT %x, CCSI AS %x", csmt.Seed, ccsi.Seed)
	}
	if SpeedupPct(ccsi, csmt) == 0 {
		t.Error("speedup of CCSI AS over CSMT is exactly zero — suspicious")
	}
}

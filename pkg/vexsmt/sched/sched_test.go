package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var bg = context.Background()

// collect drains a Run channel into a map keyed by item index.
func collect[T comparable, R any](t *testing.T, ch <-chan Result[T, R]) map[int]Result[T, R] {
	t.Helper()
	out := make(map[int]Result[T, R])
	for r := range ch {
		if _, dup := out[r.Index]; dup {
			t.Fatalf("item %d delivered twice", r.Index)
		}
		out[r.Index] = r
	}
	return out
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestRunDeliversEveryItemOnce(t *testing.T) {
	b := NewFunc("sq", 4, func(_ context.Context, i int) (int, error) { return i * i, nil })
	ch, err := Run(bg, ints(50), []Backend[int, int]{b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	if len(got) != 50 {
		t.Fatalf("delivered %d items, want 50", len(got))
	}
	for i, r := range got {
		if r.Err != nil || r.Value != i*i || r.Item != i || r.Attempts != 1 {
			t.Fatalf("item %d: %+v", i, r)
		}
	}
}

func TestRunEmptyAndNoBackends(t *testing.T) {
	b := NewFunc("noop", 1, func(_ context.Context, i int) (int, error) { return i, nil })
	ch, err := Run(bg, nil, []Backend[int, int]{b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(collect(t, ch)) != 0 {
		t.Fatal("empty run delivered items")
	}
	if _, err := Run[int, int](bg, ints(1), nil, Options{}); err == nil {
		t.Fatal("Run with no backends accepted")
	}
}

func TestWorkStealingDrainsStraggler(t *testing.T) {
	// One fast and one very slow backend: the fast one must steal most of
	// the slow one's queue, so the run finishes far sooner than the slow
	// backend could alone, and the steal counter records it.
	var slowRan atomic.Int64
	slow := NewFunc("slow", 1, func(ctx context.Context, i int) (int, error) {
		slowRan.Add(1)
		select {
		case <-time.After(30 * time.Millisecond):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		return i, nil
	})
	fast := NewFunc("fast", 2, func(_ context.Context, i int) (int, error) { return i, nil })
	var last Progress
	var mu sync.Mutex
	ch, err := Run(bg, ints(40), []Backend[int, int]{slow, fast}, Options{
		OnProgress: func(p Progress) { mu.Lock(); last = p; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	if len(got) != 40 {
		t.Fatalf("delivered %d items, want 40", len(got))
	}
	mu.Lock()
	defer mu.Unlock()
	if last.Done != 40 || last.Total != 40 {
		t.Fatalf("final progress %+v", last)
	}
	if last.Stolen == 0 {
		t.Fatal("fast backend never stole from the straggler")
	}
	if n := slowRan.Load(); n >= 40 {
		t.Fatalf("slow backend ran all %d items — nothing was stolen", n)
	}
}

func TestTransientFailureFailsOverAndRecords(t *testing.T) {
	// Backend "flaky" fails every item; "steady" runs everything. With one
	// retry, every item must complete, and items that started on flaky
	// carry Attempts == 2.
	flaky := NewFunc("flaky", 1, func(_ context.Context, i int) (int, error) {
		return 0, errors.New("injected")
	})
	steady := NewFunc("steady", 2, func(_ context.Context, i int) (int, error) { return i + 100, nil })
	ch, err := Run(bg, ints(10), []Backend[int, int]{flaky, steady}, Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	if len(got) != 10 {
		t.Fatalf("delivered %d items, want 10", len(got))
	}
	retried := 0
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("item %d failed: %v", i, r.Err)
		}
		if r.Value != i+100 || r.Backend != "steady" {
			t.Fatalf("item %d: %+v", i, r)
		}
		if r.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no item records a retry — flaky was never tried")
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	var attempts atomic.Int64
	bad := NewFunc("bad", 1, func(_ context.Context, i int) (int, error) {
		attempts.Add(1)
		return 0, Permanent(fmt.Errorf("cell %d is broken", i))
	})
	ch, err := Run(bg, []int{7}, []Backend[int, int]{bad}, Options{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	r := got[0]
	if r.Err == nil || r.Attempts != 1 || attempts.Load() != 1 {
		t.Fatalf("permanent error was retried: %+v (attempts %d)", r, attempts.Load())
	}
	if IsPermanent(r.Err) {
		t.Fatal("delivered error still carries the Permanent marker")
	}
	if r.Err.Error() != "cell 7 is broken" {
		t.Fatalf("error text mangled: %q", r.Err)
	}
}

func TestAllBackendsFailExhaustsBudget(t *testing.T) {
	fail := func(name string) Backend[int, int] {
		return NewFunc(name, 1, func(_ context.Context, i int) (int, error) {
			return 0, errors.New("down: " + name)
		})
	}
	ch, err := Run(bg, ints(3), []Backend[int, int]{fail("a"), fail("b")}, Options{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	if len(got) != 3 {
		t.Fatalf("delivered %d items, want 3", len(got))
	}
	for i, r := range got {
		if r.Err == nil {
			t.Fatalf("item %d succeeded on a dead fleet", i)
		}
		// Exclusions are forgiven while budget remains, so the budget —
		// not the backend count — is the attempt cap.
		if r.Attempts > 3 {
			t.Fatalf("item %d burned %d attempts on a budget of 3", i, r.Attempts)
		}
	}
}

// TestSingleBackendTransientRetry: with one backend, a transient blip
// must be retried on that same backend (exclusions are forgiven while
// retry budget remains), not promoted to a final failure.
func TestSingleBackendTransientRetry(t *testing.T) {
	var calls atomic.Int64
	flaky := NewFunc("flaky", 1, func(_ context.Context, i int) (int, error) {
		if calls.Add(1) == 1 {
			return 0, errors.New("momentary 503")
		}
		return i * 10, nil
	})
	ch, err := Run(bg, []int{4}, []Backend[int, int]{flaky}, Options{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := collect(t, ch)[0]
	if r.Err != nil {
		t.Fatalf("single-backend transient failure was final: %v", r.Err)
	}
	if r.Value != 40 || r.Attempts != 2 {
		t.Fatalf("result %+v, want value 40 after 2 attempts", r)
	}
}

func TestConsecutiveFailuresRemoveBackend(t *testing.T) {
	// A backend that always fails is taken out of rotation after
	// maxConsecutiveFailures, so a long run does not pay one failed
	// attempt (plus backoff) per item.
	var deadRuns atomic.Int64
	dead := NewFunc("dead", 1, func(_ context.Context, i int) (int, error) {
		deadRuns.Add(1)
		return 0, errors.New("down")
	})
	alive := NewFunc("alive", 4, func(_ context.Context, i int) (int, error) { return i, nil })
	removed := make(chan struct{}, 1)
	ch, err := Run(bg, ints(64), []Backend[int, int]{dead, alive}, Options{
		Retries: 2,
		Logf: func(format string, args ...any) {
			if len(args) > 0 {
				if name, ok := args[0].(string); ok && name == "dead" && len(removed) == 0 {
					select {
					case removed <- struct{}{}:
					default:
					}
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	if len(got) != 64 {
		t.Fatalf("delivered %d items, want 64", len(got))
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("item %d failed: %v", i, r.Err)
		}
	}
	if n := deadRuns.Load(); n > maxConsecutiveFailures+2 {
		t.Fatalf("dead backend ran %d attempts; breaker never tripped", n)
	}
}

func TestCancellationClosesPromptlyNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(bg)
	slow := NewFunc("slow", 4, func(ctx context.Context, i int) (int, error) {
		select {
		case <-time.After(10 * time.Second):
			return i, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	})
	ch, err := Run(ctx, ints(100), []Backend[int, int]{slow}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, open = <-ch:
		case <-deadline:
			t.Fatal("channel did not close within 5s of cancellation")
		}
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestForEach(t *testing.T) {
	var ran atomic.Int64
	if err := ForEach(bg, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100", ran.Load())
	}
	// Plain errors do not stop the sweep; the first is returned.
	ran.Store(0)
	err := ForEach(bg, 2, 10, func(i int) error {
		ran.Add(1)
		if i%2 == 1 {
			return fmt.Errorf("odd %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran.Load() != 10 {
		t.Fatalf("sweep stopped early: ran %d of 10", ran.Load())
	}
	// Serial ForEach visits items in order.
	var order []int
	if err := ForEach(bg, 1, 5, func(i int) error { order = append(order, i); return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
	// A cancelled context surfaces as an error.
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	if err := ForEach(cancelled, 2, 10, func(i int) error { return nil }); err == nil {
		t.Fatal("cancelled ForEach returned nil")
	}
}

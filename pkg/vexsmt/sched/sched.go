// Package sched is the cell-level scheduling core shared by the local
// execution path (internal/experiments, pkg/vexsmt) and the distributed
// coordinator (pkg/vexsmt/shard). It replaces the two parallel fan-out
// implementations that used to live in those layers — a worker pool over
// grid indices and a shard-level placement loop — with one work-stealing
// queue scheduler that is generic over the item and result types, so it
// depends on neither the simulation vocabulary nor the transport.
//
// The unit of scheduling is a single item (for the simulator: one grid
// cell, never a shard). Items are dealt round-robin across the backends'
// queues, each backend runs as many workers as it has Slots, and an idle
// backend steals queued items from the tail of the longest other queue —
// so a straggling backend sheds its backlog to whoever is free instead of
// serializing the run. A transient failure re-enqueues the item on a
// backend that has not yet failed it (bounded by Options.Retries);
// failures marked Permanent are delivered immediately, because every
// backend would reproduce them. A backend that keeps failing is taken out
// of rotation while at least one other backend stays live.
//
// The scheduler never reorders results semantically: delivery order is
// nondeterministic, but which backend runs an item cannot change the
// item's result — that property is the caller's contract (per-cell seeds,
// content-addressed caching), and it is what makes stealing and failover
// invisible in the output.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Backend runs items. Implementations must honor ctx cancellation and
// return promptly once it fires.
type Backend[T, R any] interface {
	// Name identifies the backend in logs and results.
	Name() string
	// Slots is how many items may run concurrently on this backend;
	// values below 1 are treated as 1.
	Slots() int
	// Run executes one item to completion.
	Run(ctx context.Context, item T) (R, error)
}

// NewFunc adapts a function to a Backend.
func NewFunc[T, R any](name string, slots int, fn func(ctx context.Context, item T) (R, error)) Backend[T, R] {
	return &funcBackend[T, R]{name: name, slots: slots, fn: fn}
}

type funcBackend[T, R any] struct {
	name  string
	slots int
	fn    func(context.Context, T) (R, error)
}

func (b *funcBackend[T, R]) Name() string { return b.name }
func (b *funcBackend[T, R]) Slots() int   { return b.slots }
func (b *funcBackend[T, R]) Run(ctx context.Context, item T) (R, error) {
	return b.fn(ctx, item)
}

// Permanent marks err as non-retryable: the failure is a property of the
// item (a deterministic simulation error), not of the backend that ran
// it, so rescheduling elsewhere would only reproduce it. Permanent(nil)
// is nil. The marker is transparent to errors.Is/As and is stripped
// before the error is delivered.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// unwrapPermanent strips the marker so delivered errors read exactly as
// the backend produced them.
func unwrapPermanent(err error) error {
	var pe *permanentError
	if errors.As(err, &pe) {
		return pe.err
	}
	return err
}

// Result is one completed item: its value or final error, plus where and
// how it ran.
type Result[T, R any] struct {
	Item     T
	Index    int    // position of Item in the submitted slice
	Value    R      // valid when Err is nil
	Err      error  // final error after retries, Permanent marker stripped
	Backend  string // backend that produced the final outcome
	Attempts int    // 1 for a first-try success
	Stolen   bool   // final outcome came from a backend other than the initial assignment
}

// Progress is a live snapshot of a run. Callbacks are serialized.
type Progress struct {
	Done    int // items with a final outcome
	Total   int
	Retries int // attempts beyond each item's first
	Stolen  int // items picked up from another backend's queue
}

// Options parameterizes Run. The zero value retries nothing and reports
// nothing.
type Options struct {
	// Retries is how many extra attempts an item gets after a transient
	// failure, each on a backend that has not yet failed it. Negative is
	// treated as 0.
	Retries int
	// OnProgress, when non-nil, observes scheduling progress; calls are
	// serialized.
	OnProgress func(Progress)
	// Logf, when non-nil, receives steal, retry and backend-removal
	// events.
	Logf func(format string, args ...any)
	// Backoff, when non-nil, returns the wait a backend observes after
	// its n-th consecutive failure before pulling the next item —
	// typically resilience.Policy.Backoff, which adds deterministic
	// jitter. Nil selects the historical default (250ms doubling, 2s
	// cap, no jitter).
	Backoff func(backend string, n int) time.Duration
	// BreakerThreshold is how many consecutive transient failures take a
	// backend out of rotation while another backend stays live. Values
	// below 1 select the default (3).
	BreakerThreshold int
}

// maxConsecutiveFailures is the default BreakerThreshold: how many
// transient failures in a row take a backend out of rotation (only
// while another backend stays live) — a dead machine should shed its
// queue to the survivors, not grind through the grid one failed attempt
// at a time.
const maxConsecutiveFailures = 3

// Run schedules items over the backends and returns a channel delivering
// one Result per item. The channel closes when every item has a final
// outcome or, after ctx is cancelled, once in-flight items abort — no
// workers leak either way. Callers must drain the channel or cancel ctx;
// abandoning it while ctx stays live blocks the workers.
func Run[T, R any](ctx context.Context, items []T, backends []Backend[T, R], opts Options) (<-chan Result[T, R], error) {
	if len(backends) == 0 {
		return nil, errors.New("sched: no backends")
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	st := &state[T, R]{
		queues:   make([][]*task[T], len(backends)),
		live:     make([]bool, len(backends)),
		consec:   make([]int, len(backends)),
		backends: backends,
		pending:  len(items),
		total:    len(items),
		opts:     opts,
		out:      make(chan Result[T, R]),
	}
	st.cond = sync.NewCond(&st.mu)
	for i := range st.live {
		st.live[i] = true
	}
	// Deal items round-robin: deterministic, balanced to within one item,
	// and — because grid plans list expensive high-thread cells
	// contiguously — naturally interleaving heavy and light work.
	for i := range items {
		bi := i % len(backends)
		st.queues[bi] = append(st.queues[bi], &task[T]{item: items[i], index: i, origin: bi})
	}

	var wg sync.WaitGroup
	for bi, b := range backends {
		slots := b.Slots()
		if slots < 1 {
			slots = 1
		}
		if slots > len(items) {
			// Concurrency can never usefully exceed the item count; a
			// one-cell run must not spin up a whole worker fleet.
			slots = len(items)
		}
		for w := 0; w < slots; w++ {
			wg.Add(1)
			go func(bi int, b Backend[T, R]) {
				defer wg.Done()
				st.worker(ctx, bi, b)
			}(bi, b)
		}
	}
	workersDone := make(chan struct{})
	// Cancellation watcher: cond.Wait cannot observe ctx directly, so a
	// broadcast wakes the idle workers when the context fires. The watcher
	// exits with the workers, so a Run under context.Background leaks
	// nothing.
	go func() {
		select {
		case <-ctx.Done():
			st.mu.Lock()
			st.cancelled = true
			st.mu.Unlock()
			st.cond.Broadcast()
		case <-workersDone:
		}
	}()
	go func() {
		wg.Wait()
		close(workersDone)
		close(st.out)
	}()
	return st.out, nil
}

// ForEach runs fn(0..n-1) over at most parallel concurrent workers
// (parallel < 1 selects GOMAXPROCS) and returns the first error. Plain
// errors do not stop the sweep — items are independent — but a cancelled
// context stops dispatching and drains the workers.
func ForEach(ctx context.Context, parallel, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	b := NewFunc("foreach", parallel, func(_ context.Context, i int) (struct{}, error) {
		// Permanent: fn's errors are the items' own, never the worker's.
		return struct{}{}, Permanent(fn(i))
	})
	ch, err := Run(ctx, items, []Backend[int, struct{}]{b}, Options{})
	if err != nil {
		return err
	}
	var first error
	for r := range ch {
		if r.Err != nil && first == nil {
			first = r.Err
		}
	}
	if err := ctx.Err(); err != nil && first == nil {
		first = err
	}
	return first
}

// task is one schedulable item and its retry history.
type task[T any] struct {
	item     T
	index    int
	origin   int // backend the initial deal assigned
	attempts int
	excluded map[int]bool // backends that failed this task
	lastErr  error
}

// state is the shared scheduler state of one Run.
type state[T, R any] struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queues    [][]*task[T]
	live      []bool
	consec    []int // consecutive transient failures per backend
	backends  []Backend[T, R]
	pending   int // items without a final outcome
	done      int
	retries   int
	stolen    int
	total     int
	cancelled bool

	opts Options
	out  chan Result[T, R]

	notifyMu sync.Mutex // serializes OnProgress
}

func (st *state[T, R]) logf(format string, args ...any) {
	if st.opts.Logf != nil {
		st.opts.Logf(format, args...)
	}
}

func (st *state[T, R]) progressLocked() Progress {
	return Progress{Done: st.done, Total: st.total, Retries: st.retries, Stolen: st.stolen}
}

// notify reports the current progress. The snapshot is taken under
// notifyMu (then st.mu, briefly), so concurrent completions cannot
// deliver snapshots out of order — counters only grow, and each callback
// reads state no older than its predecessor's. Callers must not hold
// st.mu.
func (st *state[T, R]) notify() {
	if st.opts.OnProgress == nil {
		return
	}
	st.notifyMu.Lock()
	defer st.notifyMu.Unlock()
	st.mu.Lock()
	p := st.progressLocked()
	st.mu.Unlock()
	st.opts.OnProgress(p)
}

// next blocks until backend bi has something to run: its own next queued
// task, or one stolen from the tail of the longest foreign queue that
// holds a task this backend has not failed. It returns ok=false when the
// run is over for this backend (nothing pending, cancelled, or the
// backend was taken out of rotation).
func (st *state[T, R]) next(bi int) (*task[T], bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.cancelled || st.pending == 0 || !st.live[bi] {
			return nil, false
		}
		// Own queue first, oldest item first.
		if t := popEligible(&st.queues[bi], bi, false); t != nil {
			return t, true
		}
		// Steal from the victim with the longest queue.
		victim, best := -1, 0
		for vi := range st.queues {
			if vi == bi {
				continue
			}
			if n := eligibleCount(st.queues[vi], bi); n > 0 && n > best {
				victim, best = vi, n
			}
		}
		if victim >= 0 {
			t := popEligible(&st.queues[victim], bi, true)
			st.stolen++
			st.logf("sched: %s steals item %d from %s", st.backends[bi].Name(), t.index, st.backends[victim].Name())
			st.mu.Unlock()
			st.notify()
			st.mu.Lock()
			return t, true
		}
		st.cond.Wait()
	}
}

// eligibleCount counts queued tasks backend bi may run.
func eligibleCount[T any](q []*task[T], bi int) int {
	n := 0
	for _, t := range q {
		if !t.excluded[bi] {
			n++
		}
	}
	return n
}

// popEligible removes and returns the first (fromTail=false) or last
// (fromTail=true) task in q that backend bi has not failed, or nil.
func popEligible[T any](q *[]*task[T], bi int, fromTail bool) *task[T] {
	s := *q
	if fromTail {
		for i := len(s) - 1; i >= 0; i-- {
			if !s[i].excluded[bi] {
				t := s[i]
				*q = append(s[:i], s[i+1:]...)
				return t
			}
		}
		return nil
	}
	for i := range s {
		if !s[i].excluded[bi] {
			t := s[i]
			*q = append(s[:i], s[i+1:]...)
			return t
		}
	}
	return nil
}

// deliver sends a final outcome and retires the item.
func (st *state[T, R]) deliver(ctx context.Context, r Result[T, R]) {
	select {
	case st.out <- r:
	case <-ctx.Done():
		// Consumer cancelled; the outcome is dropped, matching the
		// pre-sched worker pools.
	}
	st.mu.Lock()
	st.pending--
	st.done++
	finished := st.pending == 0
	st.mu.Unlock()
	if finished {
		st.cond.Broadcast()
	}
	st.notify()
}

// requeue reschedules a transiently failed task onto the least-loaded
// live backend that has not failed it. When every live backend has
// already failed the task but retry budget remains, the exclusions are
// forgiven — a backend that failed once may have recovered (a momentary
// 503, a network blip), and trying it again beats giving up; the
// worker-side failure backoff spaces those repeat attempts. requeue
// reports whether the task is final (budget exhausted or no live
// backend left at all).
func (st *state[T, R]) requeue(t *task[T], failed int, budget int) bool {
	st.mu.Lock()
	if t.excluded == nil {
		t.excluded = make(map[int]bool)
	}
	t.excluded[failed] = true
	if t.attempts > budget {
		st.mu.Unlock()
		return true
	}
	pick := func(ignoreExclusions bool) int {
		best := -1
		for bi := range st.queues {
			if !st.live[bi] || (!ignoreExclusions && t.excluded[bi]) {
				continue
			}
			if best < 0 || len(st.queues[bi]) < len(st.queues[best]) {
				best = bi
			}
		}
		return best
	}
	best := pick(false)
	if best < 0 {
		if best = pick(true); best >= 0 {
			t.excluded = nil // forgiven: the task is poppable everywhere again
		}
	}
	if best < 0 {
		st.mu.Unlock()
		return true
	}
	st.queues[best] = append(st.queues[best], t)
	st.retries++
	st.logf("sched: item %d retries on %s (attempt %d): %v",
		t.index, st.backends[best].Name(), t.attempts+1, t.lastErr)
	st.mu.Unlock()
	st.cond.Broadcast()
	st.notify()
	return false
}

// noteOutcome updates the backend's consecutive-failure count and, past
// the threshold, takes it out of rotation while another backend is live.
// Tasks stranded by the removal — queued with every remaining live
// backend excluded — have their exclusions forgiven so a survivor can
// pick them up: queued tasks always have retry budget left (requeue
// enforces it), so forgiving is always the right call here.
func (st *state[T, R]) noteOutcome(bi int, failed bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !failed {
		st.consec[bi] = 0
		return
	}
	st.consec[bi]++
	if st.consec[bi] < st.breaker() || !st.live[bi] {
		return
	}
	liveOthers := 0
	for i, l := range st.live {
		if l && i != bi {
			liveOthers++
		}
	}
	if liveOthers == 0 {
		return // last backend standing keeps trying
	}
	st.live[bi] = false
	st.logf("sched: backend %s removed after %d consecutive failures", st.backends[bi].Name(), st.consec[bi])
	for qi := range st.queues {
		for _, t := range st.queues[qi] {
			runnable := false
			for i, l := range st.live {
				if l && !t.excluded[i] {
					runnable = true
					break
				}
			}
			if !runnable {
				t.excluded = nil
			}
		}
	}
	st.cond.Broadcast()
}

// worker is one slot of one backend: pull (or steal) a task, run it,
// deliver or reschedule.
func (st *state[T, R]) worker(ctx context.Context, bi int, b Backend[T, R]) {
	for {
		t, ok := st.next(bi)
		if !ok {
			return
		}
		t.attempts++
		v, err := b.Run(ctx, t.item)
		if err == nil {
			st.noteOutcome(bi, false)
			st.deliver(ctx, Result[T, R]{
				Item: t.item, Index: t.index, Value: v,
				Backend: b.Name(), Attempts: t.attempts, Stolen: bi != t.origin,
			})
			continue
		}
		if ctx.Err() != nil {
			// Cancellation abort, not a failure: the run is over.
			return
		}
		t.lastErr = err
		if IsPermanent(err) {
			// The item's own fault; the backend stays in good standing.
			st.deliver(ctx, Result[T, R]{
				Item: t.item, Index: t.index, Err: unwrapPermanent(err),
				Backend: b.Name(), Attempts: t.attempts, Stolen: bi != t.origin,
			})
			continue
		}
		st.noteOutcome(bi, true)
		if st.requeue(t, bi, st.opts.Retries) {
			st.deliver(ctx, Result[T, R]{
				Item: t.item, Index: t.index, Err: unwrapPermanent(err),
				Backend: b.Name(), Attempts: t.attempts, Stolen: bi != t.origin,
			})
		}
		// Back off before pulling the next item: a backend that 503'd on
		// admission frees a slot in well under a second, and hammering it
		// would burn retry budgets for nothing.
		st.mu.Lock()
		n := st.consec[bi]
		st.mu.Unlock()
		if n > 0 {
			select {
			case <-time.After(st.backoffFor(b.Name(), n)):
			case <-ctx.Done():
				return
			}
		}
	}
}

// breaker returns the effective consecutive-failure threshold.
func (st *state[T, R]) breaker() int {
	if st.opts.BreakerThreshold >= 1 {
		return st.opts.BreakerThreshold
	}
	return maxConsecutiveFailures
}

// backoffFor returns the post-failure wait, from Options.Backoff when
// set and the package default otherwise.
func (st *state[T, R]) backoffFor(backend string, n int) time.Duration {
	if st.opts.Backoff != nil {
		return st.opts.Backoff(backend, n)
	}
	return failureBackoff(n)
}

// failureBackoff is the default wait after the n-th consecutive
// failure: 250ms doubling, capped at 2s — the same shape
// resilience.Default() describes, without the jitter.
func failureBackoff(n int) time.Duration {
	d := 250 * time.Millisecond
	// Shift with an overflow guard: a last-backend-standing can fail many
	// more times than any reasonable shift width.
	for i := 1; i < n && d < 2*time.Second; i++ {
		d <<= 1
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

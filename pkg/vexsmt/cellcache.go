package vexsmt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CellCache is the content-addressed result cache a Service consults
// before simulating a cell and populates after. Implementations live in
// pkg/vexsmt/cache (in-memory LRU, on-disk); the interface is defined
// here so the facade can depend on the contract without importing the
// implementations (which import this package for the key vocabulary).
//
// Both methods must be safe for concurrent use, and both are best-effort:
// a Get miss or a dropped Put costs a re-simulation, never correctness.
// Whatever Put stored under a key, Get must return byte-identically or
// report a miss — the determinism contract (cached == simulated, bit for
// bit) rides on it, and the disk implementation enforces it with a
// self-checksum so a corrupted file degrades to a miss instead of
// corrupting results.
type CellCache interface {
	// Get returns the payload stored under key, or ok=false on a miss.
	Get(key string) ([]byte, bool)
	// Put stores a payload under key, overwriting any previous value.
	Put(key string, value []byte)
	// Stats returns the cache's counters since construction.
	Stats() CacheStats
}

// CacheStats counts cache traffic. Errors counts entries that existed but
// failed verification (corrupt files, short reads); every such entry also
// counts as a miss. PeerHits/PeerMisses count local misses that were then
// resolved (or not) by asking fleet peers for the key — they are only
// non-zero behind a peer-fill wrapper (see pkg/vexsmt/cache.WithPeerFill),
// and a peer hit is also a local miss in Misses: the local store was
// consulted first.
type CacheStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Puts       int64 `json:"puts"`
	Errors     int64 `json:"errors"`
	PeerHits   int64 `json:"peer_hits,omitempty"`
	PeerMisses int64 `json:"peer_misses,omitempty"`
}

// CacheSize is a cache's current footprint: live entries and their payload
// bytes. Both are sizing signals (prefetch planning, eviction pressure,
// the fleet /healthz rollup), not accounting — implementations sharing a
// directory between processes report their best local approximation.
type CacheSize struct {
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// CacheSizer is optionally implemented by CellCache implementations that
// can report their footprint. The server's /healthz checks for it; caches
// that cannot size themselves simply omit the numbers.
type CacheSizer interface {
	CacheSize() CacheSize
}

// CacheEpoch versions the simulator's *behavior* for cache addressing.
// SchemaVersion guards the JSON wire format; CacheEpoch guards the
// simulation semantics behind it: bump it whenever a change to
// internal/sim, internal/core, internal/synth, the workload tables or
// seed derivation alters any cell's counters without touching the
// schema. Either bump changes every CacheKey at once, so stale entries
// from the previous code can never be served as current results.
//
// Epoch 2: the key gained the predictor field and static runs gained the
// (always-zero) branch counters; entries written before the predictor
// axis existed must miss rather than collide with static cells.
//
// Epoch 3: the key gained the workload field — a trace-backed cell's
// "name@sha256" content reference, empty for synthetic mixes — so every
// epoch-2 entry misses rather than colliding with the extended identity.
// Folding the content hash into the key is what lets daemons that have
// never seen each other's corpus directories share results safely: equal
// key implies equal trace bytes, not merely an equal file name.
const CacheEpoch = 3

// CacheKey is the content address of one cell's result: a canonical
// digest over everything that determines the cell's bits — the results
// schema version, the simulator behavior epoch (CacheEpoch), the base
// seed, the scale divisor, and the cell identity (mix, technique,
// threads, predictor, workload reference) — and nothing that does not
// (parallelism, the service's enabled-technique set, shard placement).
// Two runs agreeing on those inputs may share each other's cache entries
// no matter which process, machine or thread count produced them; bumping
// SchemaVersion or CacheEpoch invalidates every prior entry at once,
// which is the cache's only invalidation mechanism.
//
// The predictor is keyed in its canonical internal spelling — "" for the
// default static front end — and "static" normalizes to "" here so a spec
// arriving with either spelling addresses the same entry. The workload is
// keyed as the full "name@sha256" content reference ("" for synthetic
// mixes), so the trace bytes — not the file name — address the entry.
func CacheKey(meta RunMeta, spec CellSpec) string {
	pred := spec.Predictor
	if pred == "static" {
		pred = ""
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("vexsmt/cell/v%d/e%d|seed=%d|scale=%d|mix=%s|tech=%s|threads=%d|pred=%s|wl=%s",
		meta.SchemaVersion, CacheEpoch, meta.Seed, meta.Scale, spec.Mix, spec.Technique, spec.Threads, pred, spec.Workload)))
	return hex.EncodeToString(sum[:])
}

package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"vexsmt/pkg/vexsmt/resilience"
	"vexsmt/pkg/vexsmt/shard"
)

// membersToBackends maps live members to HTTP shard backends, passing
// opts (e.g. shard.WithClient for a custom or fault-injecting
// transport) to every backend. A member whose advertised URL does not
// parse is skipped (it could never have registered with one, but the
// registry is not the only possible producer of a Member list).
func membersToBackends(members []Member, opts ...shard.HTTPOption) []shard.Backend {
	out := make([]shard.Backend, 0, len(members))
	for _, m := range members {
		b, err := shard.NewHTTP(m.URL, opts...)
		if err != nil {
			continue
		}
		out = append(out, b)
	}
	return out
}

// registrySource adapts an in-process Registry to shard.Source.
type registrySource struct{ r *Registry }

func (s registrySource) Backends(context.Context) ([]shard.Backend, error) {
	return membersToBackends(s.r.Members()), nil
}

// ShardSource exposes the registry's live membership as a shard backend
// source: a coordinator built with shard.NewFromSource re-resolves it at
// every sweep, so daemons joining or leaving between sweeps need no
// coordinator restart.
func (r *Registry) ShardSource() shard.Source { return registrySource{r} }

// HTTPSource is a shard.Source backed by a remote registry: each
// resolution GETs /v1/fleet/members and builds an HTTP backend per live
// member. This is how a vexsmtctl on one machine sweeps a fleet whose
// registry lives on another.
type HTTPSource struct {
	base   string
	client *http.Client
}

// NewHTTPSource builds a source against the registry at registryURL.
func NewHTTPSource(registryURL string, client *http.Client) (*HTTPSource, error) {
	u, err := url.Parse(registryURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("fleet: registry url %q: need scheme and host", registryURL)
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPSource{base: strings.TrimRight(registryURL, "/"), client: client}, nil
}

// Backends implements shard.Source. The source's own client (transport
// included) carries over to every backend it yields, so a sweep whose
// registry lookups go through a custom transport — a proxy, a fault
// injector — submits its cells through the same one.
func (s *HTTPSource) Backends(ctx context.Context) ([]shard.Backend, error) {
	members, err := FetchMembers(ctx, s.client, s.base)
	if err != nil {
		return nil, err
	}
	return membersToBackends(members, shard.WithClient(s.client)), nil
}

// FetchMembers GETs a registry's live member list — shared by HTTPSource
// and status tooling. A nil client uses http.DefaultClient.
func FetchMembers(ctx context.Context, client *http.Client, registryURL string) ([]Member, error) {
	if client == nil {
		client = http.DefaultClient
	}
	ctx, cancel := resilience.Default().AttemptContext(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(registryURL, "/")+"/v1/fleet/members", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: members from %s: %w", registryURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("fleet: members from %s: status %d: %s",
			registryURL, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var out struct {
		Members []Member `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("fleet: members from %s: %w", registryURL, err)
	}
	return out.Members, nil
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/resilience"
)

// Assignment is one member's share of a prefetch: the cells it is asked
// to warm its cache with.
type Assignment struct {
	Member Member
	Cells  []vexsmt.CellSpec
}

// Assign deals cells round-robin over the members sorted by ID. The
// deal is deterministic — same cells, same membership, same assignments
// — so repeated prefetches of one plan land each cell on the same
// daemon, and a subsequent sweep finds entries either locally or one
// peer fill away. Members without a cache warm nothing; with no cacheful
// member the result is empty.
func Assign(cells []vexsmt.CellSpec, members []Member) []Assignment {
	targets := make([]Assignment, 0, len(members))
	for _, m := range members {
		if m.CacheEnabled {
			targets = append(targets, Assignment{Member: m})
		}
	}
	if len(targets) == 0 || len(cells) == 0 {
		return nil
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Member.ID < targets[j].Member.ID })
	for i, c := range cells {
		t := &targets[i%len(targets)]
		t.Cells = append(t.Cells, c)
	}
	out := targets[:0]
	for _, t := range targets {
		if len(t.Cells) > 0 {
			out = append(out, t)
		}
	}
	return out
}

// Push POSTs each assignment to its member's /v1/prefetch, pinning the
// keys' seed and scale. Pushes are best-effort per member — a dead
// daemon costs its share of warmth — but a fleet that accepts nothing is
// an error. A nil client uses http.DefaultClient.
func Push(ctx context.Context, client *http.Client, assignments []Assignment, scale int64, seed uint64) error {
	if client == nil {
		client = http.DefaultClient
	}
	if len(assignments) == 0 {
		return fmt.Errorf("fleet: nothing to prefetch (no cacheful members?)")
	}
	accepted := 0
	var firstErr error
	for _, a := range assignments {
		if err := pushOne(ctx, client, a, scale, seed); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted++
	}
	if accepted == 0 {
		return fmt.Errorf("fleet: no member accepted its prefetch: %w", firstErr)
	}
	return nil
}

func pushOne(ctx context.Context, client *http.Client, a Assignment, scale int64, seed uint64) error {
	body, err := json.Marshal(struct {
		Cells []vexsmt.CellSpec `json:"cells"`
		Scale int64             `json:"scale"`
		Seed  uint64            `json:"seed"`
	}{Cells: a.Cells, Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	ctx, cancel := resilience.Default().AttemptContext(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(a.Member.URL, "/")+"/v1/prefetch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: prefetch to %s: %w", a.Member.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("fleet: prefetch to %s: status %d: %s",
			a.Member.ID, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"vexsmt/pkg/vexsmt/resilience"
)

// maxPeerEntry bounds a peer cache response; real entries are a few
// hundred bytes, so anything near the cap is a protocol violation.
const maxPeerEntry = 1 << 20

// Fetcher asks fleet peers for content-addressed cache entries — the
// demand side of peer fill. Its Fetch method matches the hook
// cache.WithPeerFill takes, so wiring a daemon is one line:
//
//	cache.WithPeerFill(local, fetcher.Fetch)
//
// Peers are tried in ID order (deterministic, so a warm fleet answers
// from the same peer every time), self is skipped, and every response is
// verified against its X-Vexsmt-Sha256 digest — a torn transfer is a
// peer miss, never a poisoned cache entry.
type Fetcher struct {
	selfID string
	peers  func() []Member
	client *http.Client
	policy resilience.Policy
}

// FetcherOption configures a Fetcher.
type FetcherOption func(*Fetcher)

// WithFetchClient substitutes the http.Client used for peer requests.
func WithFetchClient(c *http.Client) FetcherOption {
	return func(f *Fetcher) { f.client = c }
}

// WithFetchPolicy substitutes the per-peer resilience policy. Only the
// policy's AttemptTimeout participates — a peer fill is never retried
// (the next peer, or the simulator, is the retry) — and it layers onto
// the caller's context, never overriding an earlier deadline. The
// default is resilience.PeerFill (1s per peer).
func WithFetchPolicy(p resilience.Policy) FetcherOption {
	return func(f *Fetcher) { f.policy = p }
}

// WithFetchTimeout bounds each peer's round-trip; non-positive restores
// the default. Retained for older call sites — it is shorthand for
// WithFetchPolicy with the timeout swapped in.
func WithFetchTimeout(d time.Duration) FetcherOption {
	return func(f *Fetcher) {
		f.policy = resilience.PeerFill()
		if d > 0 {
			f.policy.AttemptTimeout = d
		}
	}
}

// NewFetcher builds a fetcher for the member selfID whose peer view is
// read from peers at each Fetch (pass Heartbeat.Peers for a daemon, or a
// Registry-backed closure on a coordinator).
func NewFetcher(selfID string, peers func() []Member, opts ...FetcherOption) *Fetcher {
	f := &Fetcher{
		selfID: selfID,
		peers:  peers,
		client: http.DefaultClient,
		policy: resilience.PeerFill(),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Fetch implements the cache.WithPeerFill hook (which carries no
// context); it is FetchContext under context.Background.
func (f *Fetcher) Fetch(key string) ([]byte, bool) {
	return f.FetchContext(context.Background(), key)
}

// FetchContext tries each peer's /v1/cache/{key} and returns the first
// verified entry. Any failure — unreachable peer, miss, checksum
// mismatch — moves on to the next peer; exhausting them is a peer miss
// and the caller simulates. Each peer's round-trip is bounded by the
// fetch policy's attempt budget layered onto ctx — a caller whose
// deadline is nearer than the policy's is respected, not overridden —
// and a ctx already done stops the peer walk entirely.
func (f *Fetcher) FetchContext(ctx context.Context, key string) ([]byte, bool) {
	if f.peers == nil || key == "" || strings.ContainsAny(key, "/\\") {
		return nil, false
	}
	peers := append([]Member(nil), f.peers()...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	for _, p := range peers {
		if ctx.Err() != nil {
			return nil, false
		}
		if p.ID == f.selfID || !p.CacheEnabled {
			continue
		}
		if payload, ok := f.fetchOne(ctx, p, key); ok {
			return payload, true
		}
	}
	return nil, false
}

func (f *Fetcher) fetchOne(ctx context.Context, p Member, key string) ([]byte, bool) {
	ctx, cancel := f.policy.AttemptContext(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(p.URL, "/")+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntry+1))
	if err != nil || len(payload) > maxPeerEntry {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if resp.Header.Get("X-Vexsmt-Sha256") != hex.EncodeToString(sum[:]) {
		return nil, false
	}
	return payload, true
}

package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// defaultPeerTimeout bounds one peer's GET /v1/cache round-trip: cache
// entries are a few hundred bytes, so a peer that cannot answer in a
// second is slower than simulating locally.
const defaultPeerTimeout = time.Second

// maxPeerEntry bounds a peer cache response; real entries are a few
// hundred bytes, so anything near the cap is a protocol violation.
const maxPeerEntry = 1 << 20

// Fetcher asks fleet peers for content-addressed cache entries — the
// demand side of peer fill. Its Fetch method matches the hook
// cache.WithPeerFill takes, so wiring a daemon is one line:
//
//	cache.WithPeerFill(local, fetcher.Fetch)
//
// Peers are tried in ID order (deterministic, so a warm fleet answers
// from the same peer every time), self is skipped, and every response is
// verified against its X-Vexsmt-Sha256 digest — a torn transfer is a
// peer miss, never a poisoned cache entry.
type Fetcher struct {
	selfID  string
	peers   func() []Member
	client  *http.Client
	timeout time.Duration
}

// FetcherOption configures a Fetcher.
type FetcherOption func(*Fetcher)

// WithFetchClient substitutes the http.Client used for peer requests.
func WithFetchClient(c *http.Client) FetcherOption {
	return func(f *Fetcher) { f.client = c }
}

// WithFetchTimeout bounds each peer's round-trip; non-positive restores
// the default (1s).
func WithFetchTimeout(d time.Duration) FetcherOption {
	return func(f *Fetcher) {
		if d > 0 {
			f.timeout = d
		} else {
			f.timeout = defaultPeerTimeout
		}
	}
}

// NewFetcher builds a fetcher for the member selfID whose peer view is
// read from peers at each Fetch (pass Heartbeat.Peers for a daemon, or a
// Registry-backed closure on a coordinator).
func NewFetcher(selfID string, peers func() []Member, opts ...FetcherOption) *Fetcher {
	f := &Fetcher{
		selfID:  selfID,
		peers:   peers,
		client:  http.DefaultClient,
		timeout: defaultPeerTimeout,
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Fetch implements the cache.WithPeerFill hook: try each peer's
// /v1/cache/{key} and return the first verified entry. Any failure —
// unreachable peer, miss, checksum mismatch — moves on to the next peer;
// exhausting them is a peer miss and the caller simulates.
func (f *Fetcher) Fetch(key string) ([]byte, bool) {
	if f.peers == nil || key == "" || strings.ContainsAny(key, "/\\") {
		return nil, false
	}
	peers := append([]Member(nil), f.peers()...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	for _, p := range peers {
		if p.ID == f.selfID || !p.CacheEnabled {
			continue
		}
		if payload, ok := f.fetchOne(p, key); ok {
			return payload, true
		}
	}
	return nil, false
}

func (f *Fetcher) fetchOne(p Member, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(p.URL, "/")+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntry+1))
	if err != nil || len(payload) > maxPeerEntry {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if resp.Header.Get("X-Vexsmt-Sha256") != hex.EncodeToString(sum[:]) {
		return nil, false
	}
	return payload, true
}

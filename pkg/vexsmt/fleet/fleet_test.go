package fleet_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/fleet"
)

func member(id, url string) fleet.Member {
	return fleet.Member{ID: id, URL: url, Capacity: 4, CacheEnabled: true,
		Workloads: "idct@" + strings.Repeat("a", 64)}
}

func TestRegistryLeaseLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	r := fleet.NewRegistry(fleet.WithTTL(10*time.Second), fleet.WithNow(clock))

	if _, err := r.Upsert(member("a", "http://a:1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Upsert(member("b", "http://b:1")); err != nil {
		t.Fatal(err)
	}
	ms := r.Members()
	if len(ms) != 2 || ms[0].ID != "a" || ms[1].ID != "b" {
		t.Fatalf("members %+v, want [a b]", ms)
	}
	firstSeen := ms[0].FirstSeen

	// b heartbeats, a goes silent past the TTL: only b survives, and b's
	// FirstSeen is its original registration, not the refresh.
	now = now.Add(8 * time.Second)
	if _, err := r.Upsert(member("b", "http://b:1")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(4 * time.Second) // a last seen 12s ago, b 4s ago
	ms = r.Members()
	if len(ms) != 1 || ms[0].ID != "b" {
		t.Fatalf("members %+v, want [b]", ms)
	}
	if !ms[0].FirstSeen.Equal(time.Unix(1000, 0)) {
		t.Fatalf("refresh moved FirstSeen to %v", ms[0].FirstSeen)
	}

	// A re-registration after expiry is a new lease: FirstSeen resets.
	now = now.Add(time.Minute)
	if _, err := r.Upsert(member("b", "http://b:1")); err != nil {
		t.Fatal(err)
	}
	if ms = r.Members(); ms[0].FirstSeen.Equal(firstSeen) {
		t.Fatal("expired member kept its old FirstSeen")
	}

	r.Remove("b")
	if ms = r.Members(); len(ms) != 0 {
		t.Fatalf("members %+v after deregister, want none", ms)
	}
}

func TestRegistryRejectsBadMembers(t *testing.T) {
	r := fleet.NewRegistry()
	for _, m := range []fleet.Member{
		{URL: "http://a:1"},           // no id
		{ID: "a"},                     // no url
		{ID: "a", URL: "not-a-url"},   // no scheme/host
		{ID: "a", URL: "/just/path"},  // relative
		{ID: "a", URL: "host:8080/x"}, // scheme-less
	} {
		if _, err := r.Upsert(m); err == nil {
			t.Errorf("member %+v accepted", m)
		}
	}
	if len(r.Members()) != 0 {
		t.Fatal("rejected members leaked into the table")
	}
}

func TestRegistryRollup(t *testing.T) {
	r := fleet.NewRegistry()
	a := member("a", "http://a:1")
	a.Running = 2
	a.Simulations = 10
	a.Cache = vexsmt.CacheStats{Hits: 5, Misses: 3, PeerHits: 1}
	a.CacheSize = vexsmt.CacheSize{Entries: 7, Bytes: 700}
	b := member("b", "http://b:1")
	b.Simulations = 4
	b.CacheSize = vexsmt.CacheSize{Entries: 2, Bytes: 200}
	for _, m := range []fleet.Member{a, b} {
		if _, err := r.Upsert(m); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Rollup()
	want := fleet.Rollup{
		Members: 2, Capacity: 8, Running: 2, Simulations: 14,
		CacheEntries: 9, CacheBytes: 900, CacheHits: 5, CacheMisses: 3, PeerHits: 1,
	}
	if got != want {
		t.Fatalf("rollup %+v, want %+v", got, want)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := fleet.NewRegistry(fleet.WithTTL(7*time.Second), fleet.WithHeartbeatInterval(2*time.Second))
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	body, _ := json.Marshal(member("a", "http://a:1"))
	resp, err := http.Post(ts.URL+"/v1/fleet/register", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		IntervalSeconds float64        `json:"interval_seconds"`
		TTLSeconds      float64        `json:"ttl_seconds"`
		Members         []fleet.Member `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	if rr.IntervalSeconds != 2 || rr.TTLSeconds != 7 {
		t.Fatalf("lease terms %+v", rr)
	}
	if len(rr.Members) != 1 || rr.Members[0].ID != "a" {
		t.Fatalf("register response members %+v", rr.Members)
	}

	// The member list endpoint sees the registration, with the advertised
	// workload corpus (the coordinator's trace-placement signal) intact.
	members, err := fleet.FetchMembers(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].ID != "a" {
		t.Fatalf("members %+v", members)
	}
	if !strings.HasPrefix(members[0].Workloads, "idct@") {
		t.Fatalf("workload advertisement lost in round-trip: %+v", members[0])
	}

	// Bad member bodies are 400s.
	resp, err = http.Post(ts.URL+"/v1/fleet/register", "application/json", strings.NewReader(`{"id":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad member: status %d, want 400", resp.StatusCode)
	}

	// Deregister empties the table.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/register?id=a", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("deregister: status %d, want 204", resp.StatusCode)
	}
	if members, err = fleet.FetchMembers(context.Background(), nil, ts.URL); err != nil || len(members) != 0 {
		t.Fatalf("members %+v err %v after deregister", members, err)
	}
}

func TestHeartbeatBeatsAndDeregisters(t *testing.T) {
	r := fleet.NewRegistry(fleet.WithHeartbeatInterval(time.Hour)) // Run must not beat twice
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	// A second member is already present; the beat must learn about it.
	if _, err := r.Upsert(member("other", "http://other:1")); err != nil {
		t.Fatal(err)
	}
	h, err := fleet.NewHeartbeat(ts.URL, func() fleet.Member { return member("self", "http://self:1") })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Beat(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("Err() %v after successful beat", err)
	}
	peers := h.Peers()
	if len(peers) != 1 || peers[0].ID != "other" {
		t.Fatalf("peers %+v, want [other]", peers)
	}

	// Run with a cancelled context still deregisters on the way out.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.Run(ctx)
	for _, m := range r.Members() {
		if m.ID == "self" {
			t.Fatal("member still registered after Run returned")
		}
	}
}

func TestHeartbeatSurvivesRegistryOutage(t *testing.T) {
	h, err := fleet.NewHeartbeat("http://127.0.0.1:1", func() fleet.Member {
		return member("self", "http://self:1")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Beat(context.Background()); err == nil {
		t.Fatal("beat against nothing succeeded")
	}
	if h.Err() == nil {
		t.Fatal("Err() nil after failed beat")
	}
	if len(h.Peers()) != 0 {
		t.Fatal("peers invented without a successful beat")
	}
}

func TestAssignRoundRobinIsDeterministic(t *testing.T) {
	cells := []vexsmt.CellSpec{
		{Mix: "c0"}, {Mix: "c1"}, {Mix: "c2"}, {Mix: "c3"}, {Mix: "c4"},
	}
	noCache := member("a-first", "http://a:1")
	noCache.CacheEnabled = false
	// Members arrive unsorted; the deal is by ID order among cacheful ones.
	members := []fleet.Member{member("m2", "http://m2:1"), noCache, member("m1", "http://m1:1")}

	as := fleet.Assign(cells, members)
	if len(as) != 2 {
		t.Fatalf("%d assignments, want 2 (cacheless member excluded)", len(as))
	}
	if as[0].Member.ID != "m1" || as[1].Member.ID != "m2" {
		t.Fatalf("assignment order %s,%s, want m1,m2", as[0].Member.ID, as[1].Member.ID)
	}
	if got := fmt.Sprint(as[0].Cells); got != fmt.Sprint([]vexsmt.CellSpec{{Mix: "c0"}, {Mix: "c2"}, {Mix: "c4"}}) {
		t.Fatalf("m1 cells %v", as[0].Cells)
	}
	if got := fmt.Sprint(as[1].Cells); got != fmt.Sprint([]vexsmt.CellSpec{{Mix: "c1"}, {Mix: "c3"}}) {
		t.Fatalf("m2 cells %v", as[1].Cells)
	}

	// Same inputs, same deal.
	again := fleet.Assign(cells, members)
	if fmt.Sprint(again) != fmt.Sprint(as) {
		t.Fatal("assignment is not deterministic")
	}

	if fleet.Assign(cells, []fleet.Member{noCache}) != nil {
		t.Fatal("assignment to a cacheless fleet should be empty")
	}
}

// peerServer stubs a daemon's /v1/cache/{key} with scripted entries and
// a checksum the test can deliberately corrupt.
func peerServer(t *testing.T, entries map[string][]byte, corrupt bool) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		payload, ok := entries[key]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		sum := sha256.Sum256(payload)
		digest := hex.EncodeToString(sum[:])
		if corrupt {
			digest = strings.Repeat("0", 64)
		}
		w.Header().Set("X-Vexsmt-Sha256", digest)
		w.Write(payload)
	}))
}

func TestFetcherVerifiesAndFailsOver(t *testing.T) {
	entry := []byte(`{"mix":"mmhh"}`)
	// If the fetcher failed to skip self, it would hit this server first
	// (ID order) and return the marker payload.
	selfSrv := peerServer(t, map[string][]byte{"k1": []byte("self-must-be-skipped")}, false)
	bad := peerServer(t, map[string][]byte{"k1": entry}, true) // corrupt digest
	good := peerServer(t, map[string][]byte{"k1": entry}, false)
	defer selfSrv.Close()
	defer bad.Close()
	defer good.Close()

	peers := func() []fleet.Member {
		return []fleet.Member{
			member("b-bad", bad.URL), // tried first among peers, fails checksum
			member("c-good", good.URL),
			member("a-self", selfSrv.URL),
		}
	}
	f := fleet.NewFetcher("a-self", peers)
	got, ok := f.Fetch("k1")
	if !ok || string(got) != string(entry) {
		t.Fatalf("fetch k1: ok=%v got=%q", ok, got)
	}
	// A fleet-wide miss is a miss.
	if _, ok := f.Fetch("absent"); ok {
		t.Fatal("fetched an entry nobody has")
	}
	// Keys that would escape the path are refused client-side.
	if _, ok := f.Fetch("a/b"); ok {
		t.Fatal("path-escaping key fetched")
	}
}

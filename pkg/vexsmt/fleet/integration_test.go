package fleet_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
	"vexsmt/pkg/vexsmt/fleet"
	"vexsmt/pkg/vexsmt/server"
	"vexsmt/pkg/vexsmt/shard"
)

const testScale = 20000

var testPlan = vexsmt.Plan{Figures: []string{"14"}}

func encodeCanonical(t *testing.T, rs *vexsmt.ResultSet) string {
	t.Helper()
	cp := &vexsmt.ResultSet{Meta: rs.Meta, Cells: append([]vexsmt.CellResult(nil), rs.Cells...)}
	cp.Canonicalize()
	var buf bytes.Buffer
	if err := vexsmt.EncodeResults(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFleetSweepAndPeerFill drives the whole fleet stack in-process: two
// daemons self-register (the registry rides on daemon A via WithFleet),
// a registry-sourced coordinator sweeps them, and then cold daemons
// join and serve the same plan purely from their peers' caches — first
// pulled on demand by a sweep, then pushed ahead of one by prefetch. The
// exports of all three sweeps must be byte-identical to a single-process
// run.
func TestFleetSweepAndPeerFill(t *testing.T) {
	svc, err := vexsmt.New(vexsmt.WithScale(testScale), vexsmt.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	base, err := svc.Collect(context.Background(), testPlan)
	if err != nil {
		t.Fatal(err)
	}
	baseline := encodeCanonical(t, base)
	cells, err := svc.PlanCells(testPlan)
	if err != nil {
		t.Fatal(err)
	}

	// Daemon A hosts the registry and a plain local cache.
	registry := fleet.NewRegistry()
	memA := cache.NewMemory(0)
	srvA := server.New(testScale, 1, 2, server.WithCache(memA), server.WithFleet(registry.Handler()))
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	// Daemon B peer-fills through its heartbeat's peer view.
	var urlB string
	snapB := func() fleet.Member {
		return fleet.Member{ID: "b", URL: urlB, CacheEnabled: true}
	}
	hbB, err := fleet.NewHeartbeat(tsA.URL, snapB)
	if err != nil {
		t.Fatal(err)
	}
	pfB := cache.WithPeerFill(cache.NewMemory(0), fleet.NewFetcher("b", hbB.Peers).Fetch)
	srvB := server.New(testScale, 1, 2, server.WithCache(pfB))
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	urlB = tsB.URL

	// Both daemons register; B beats after A so its peer view includes A.
	hbA, err := fleet.NewHeartbeat(tsA.URL, func() fleet.Member {
		return fleet.Member{ID: "a", URL: tsA.URL, CacheEnabled: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hbA.Beat(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := hbB.Beat(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Sweep 1: a registry-sourced coordinator over the self-assembled
	// fleet, byte-identical to the single-process baseline.
	coord, err := shard.NewFromSource(shard.Config{Scale: testScale, Seed: 1}, registry.ShardSource())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), testPlan)
	if err != nil {
		t.Fatal(err)
	}
	if encodeCanonical(t, rs) != baseline {
		t.Fatal("fleet sweep diverged from single-process baseline")
	}

	// Daemon C joins cold after the sweep; its fetcher reads the registry
	// directly (a coordinator-side peer view works identically).
	pfC := cache.WithPeerFill(cache.NewMemory(0),
		fleet.NewFetcher("c", func() []fleet.Member { return registry.Members() }).Fetch)
	srvC := server.New(testScale, 1, 2, server.WithCache(pfC))
	tsC := httptest.NewServer(srvC.Handler())
	defer tsC.Close()

	// Sweep 2, routed entirely at C: every cell must come from a peer's
	// cache — the progress counters (taken before canonicalization strips
	// the Cached transport hint) prove C never simulated, and the
	// peer-hit counter proves where the payloads came from.
	bC, err := shard.NewHTTP(tsC.URL)
	if err != nil {
		t.Fatal(err)
	}
	var progC shard.Progress
	coordC, err := shard.New(shard.Config{
		Scale: testScale, Seed: 1,
		OnProgress: func(p shard.Progress) { progC = p },
	}, bC)
	if err != nil {
		t.Fatal(err)
	}
	rsC, err := coordC.Collect(context.Background(), testPlan)
	if err != nil {
		t.Fatal(err)
	}
	if encodeCanonical(t, rsC) != baseline {
		t.Fatal("cold-daemon sweep diverged from single-process baseline")
	}
	if progC.CacheMisses != 0 || progC.CacheHits != len(cells) {
		t.Fatalf("replacement daemon simulated: %+v, want %d pure cache hits", progC, len(cells))
	}
	if st := pfC.Stats(); st.PeerHits != int64(len(cells)) {
		t.Fatalf("peer hits %d, want %d (every cell filled from a peer)", st.PeerHits, len(cells))
	}

	// Daemon D joins cold and is warmed by a coordinated prefetch push
	// before any sweep touches it.
	pfD := cache.WithPeerFill(cache.NewMemory(0),
		fleet.NewFetcher("d", func() []fleet.Member { return registry.Members() }).Fetch)
	srvD := server.New(testScale, 1, 2, server.WithCache(pfD))
	tsD := httptest.NewServer(srvD.Handler())
	defer tsD.Close()

	as := fleet.Assign(cells, []fleet.Member{{ID: "d", URL: tsD.URL, CacheEnabled: true}})
	if err := fleet.Push(context.Background(), nil, as, testScale, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for srvD.Stats().PrefetchActive > 0 {
		if time.Now().After(deadline) {
			t.Fatal("prefetch never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := pfD.Stats(); st.PeerHits != int64(len(cells)) {
		t.Fatalf("prefetch peer hits %d, want %d (warm-up must not simulate)", st.PeerHits, len(cells))
	}

	// Sweep 3 at D: pure cache recall of the pushed entries.
	bD, err := shard.NewHTTP(tsD.URL)
	if err != nil {
		t.Fatal(err)
	}
	var progD shard.Progress
	coordD, err := shard.New(shard.Config{
		Scale: testScale, Seed: 1,
		OnProgress: func(p shard.Progress) { progD = p },
	}, bD)
	if err != nil {
		t.Fatal(err)
	}
	rsD, err := coordD.Collect(context.Background(), testPlan)
	if err != nil {
		t.Fatal(err)
	}
	if encodeCanonical(t, rsD) != baseline {
		t.Fatal("prefetched sweep diverged from single-process baseline")
	}
	if progD.CacheMisses != 0 || progD.CacheHits != len(cells) {
		t.Fatalf("prefetched daemon simulated: %+v, want %d pure cache hits", progD, len(cells))
	}
}

// Package fleet makes a set of vexsmtd daemons self-assembling: daemons
// register with a registry and heartbeat their capacity, load and cache
// footprint; the registry ages members out on a TTL so crashed daemons
// disappear from placement without operator action; and the membership
// doubles as a cache fabric — a daemon that misses its local result
// cache asks its peers for the content-addressed entry before
// simulating, and a coordinator can push an upcoming plan's cells to the
// fleet for background warming.
//
// None of this machinery can change results. Cache entries are
// content-addressed (vexsmt.CacheKey) and checksummed in transit, so a
// peer-filled cell is byte-identical to a locally simulated one, and a
// fleet-mode sweep exports byte-identically to a single-process run of
// the same plan, seed and scale.
//
// The registry is an http.Handler (mount it on any daemon with
// server.WithFleet, or serve it standalone from vexsmtctl -coordinator);
// membership state lives in that one process. Losing it costs
// coordination, not results: running sweeps finish on the members they
// resolved, and daemons re-register as soon as a registry is back.
package fleet

import (
	"fmt"
	"net/url"
	"sort"
	"sync"
	"time"

	"vexsmt/pkg/vexsmt"
)

// Member is one registered daemon: its identity, where to reach it, and
// the placement/cache signals from its latest heartbeat (the same
// numbers the daemon's own /healthz reports — see server.Stats).
// FirstSeen/LastSeen are stamped by the registry, never by the member.
type Member struct {
	ID            string  `json:"id"`
	URL           string  `json:"url"`
	Capacity      int     `json:"capacity"`
	Running       int     `json:"running"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Simulations   int64   `json:"simulations"`
	Predictors    string  `json:"predictors,omitempty"`
	// Workloads advertises the trace corpus this daemon holds, as
	// comma-joined sorted "name@sha256" references — a coordinator can
	// route a trace-backed cell only to members advertising its reference,
	// since equal reference means byte-identical trace content.
	Workloads    string            `json:"workloads,omitempty"`
	CacheEnabled bool              `json:"cache_enabled"`
	Cache        vexsmt.CacheStats `json:"cache"`
	CacheSize    vexsmt.CacheSize  `json:"cache_size"`

	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
}

// Validate checks the fields a member must supply itself.
func (m Member) Validate() error {
	if m.ID == "" {
		return fmt.Errorf("fleet: member has no id")
	}
	u, err := url.Parse(m.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fleet: member %s: url %q: need scheme and host", m.ID, m.URL)
	}
	return nil
}

// Defaults for the registration lease. The TTL is a few missed
// heartbeats, so one dropped packet does not evict a live daemon but a
// SIGKILLed one leaves placement within seconds.
const (
	DefaultTTL               = 10 * time.Second
	DefaultHeartbeatInterval = 3 * time.Second
)

// Registry is the fleet's membership table. Registration and heartbeat
// are the same idempotent upsert; a member that stops heartbeating is
// evicted lazily once its lease (TTL) expires, so reads never observe a
// dead daemon older than one TTL and no background reaper is needed.
type Registry struct {
	ttl      time.Duration
	interval time.Duration
	now      func() time.Time

	mu      sync.Mutex
	members map[string]Member
}

// RegistryOption configures a Registry.
type RegistryOption func(*Registry)

// WithTTL sets the registration lease; members unseen for longer are
// evicted. Non-positive restores the default.
func WithTTL(d time.Duration) RegistryOption {
	return func(r *Registry) {
		if d > 0 {
			r.ttl = d
		} else {
			r.ttl = DefaultTTL
		}
	}
}

// WithHeartbeatInterval sets the cadence the registry asks members to
// heartbeat at (returned in every register response). Non-positive
// restores the default.
func WithHeartbeatInterval(d time.Duration) RegistryOption {
	return func(r *Registry) {
		if d > 0 {
			r.interval = d
		} else {
			r.interval = DefaultHeartbeatInterval
		}
	}
}

// WithNow substitutes the clock (test instrumentation).
func WithNow(now func() time.Time) RegistryOption {
	return func(r *Registry) {
		if now != nil {
			r.now = now
		}
	}
}

// NewRegistry builds an empty registry.
func NewRegistry(opts ...RegistryOption) *Registry {
	r := &Registry{
		ttl:      DefaultTTL,
		interval: DefaultHeartbeatInterval,
		now:      time.Now,
		members:  make(map[string]Member),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// TTL returns the registration lease.
func (r *Registry) TTL() time.Duration { return r.ttl }

// HeartbeatInterval returns the cadence members are asked to beat at.
func (r *Registry) HeartbeatInterval() time.Duration { return r.interval }

// Upsert registers m or refreshes its lease and stats, returning the
// live member list (m included) so heartbeats double as the peer
// discovery channel. FirstSeen survives refreshes; LastSeen is stamped
// now.
func (r *Registry) Upsert(m Member) ([]Member, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	now := r.now()
	r.mu.Lock()
	if prev, ok := r.members[m.ID]; ok && now.Sub(prev.LastSeen) <= r.ttl {
		m.FirstSeen = prev.FirstSeen
	} else {
		m.FirstSeen = now
	}
	m.LastSeen = now
	r.members[m.ID] = m
	live := r.liveLocked(now)
	r.mu.Unlock()
	return live, nil
}

// Remove deregisters a member by id (graceful shutdown); unknown ids are
// a no-op.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	delete(r.members, id)
	r.mu.Unlock()
}

// Members returns the live members sorted by ID, evicting expired
// leases on the way.
func (r *Registry) Members() []Member {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveLocked(now)
}

// liveLocked evicts expired members and returns the survivors sorted by
// ID. Caller holds r.mu.
func (r *Registry) liveLocked(now time.Time) []Member {
	out := make([]Member, 0, len(r.members))
	for id, m := range r.members {
		if now.Sub(m.LastSeen) > r.ttl {
			delete(r.members, id)
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Rollup is the fleet-wide aggregate of the members' signals — what a
// coordinator's /healthz reports about the fleet it fronts.
type Rollup struct {
	Members      int   `json:"members"`
	Capacity     int   `json:"capacity"`
	Running      int   `json:"running"`
	Simulations  int64 `json:"simulations"`
	CacheEntries int64 `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	PeerHits     int64 `json:"peer_hits"`
	PeerMisses   int64 `json:"peer_misses"`
}

// Rollup aggregates the live members.
func (r *Registry) Rollup() Rollup {
	var out Rollup
	for _, m := range r.Members() {
		out.Members++
		out.Capacity += m.Capacity
		out.Running += m.Running
		out.Simulations += m.Simulations
		out.CacheEntries += m.CacheSize.Entries
		out.CacheBytes += m.CacheSize.Bytes
		out.CacheHits += m.Cache.Hits
		out.CacheMisses += m.Cache.Misses
		out.PeerHits += m.Cache.PeerHits
		out.PeerMisses += m.Cache.PeerMisses
	}
	return out
}

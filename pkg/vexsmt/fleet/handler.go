package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// registerResponse answers a registration/heartbeat: the lease terms the
// member must honor and the live membership, so every beat refreshes the
// member's peer view without a second round-trip.
type registerResponse struct {
	IntervalSeconds float64  `json:"interval_seconds"`
	TTLSeconds      float64  `json:"ttl_seconds"`
	Members         []Member `json:"members"`
}

// Handler exposes the registry over HTTP:
//
//	POST   /v1/fleet/register       register/heartbeat (body: Member)
//	DELETE /v1/fleet/register?id=X  deregister (graceful shutdown)
//	GET    /v1/fleet/members        live member list
//
// Paths are absolute, so the same handler serves both mounted on a
// daemon (server.WithFleet) and standalone (vexsmtctl -coordinator).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fleet/register", r.handleRegister)
	mux.HandleFunc("/v1/fleet/members", r.handleMembers)
	return mux
}

func (r *Registry) handleRegister(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost:
		var m Member
		if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&m); err != nil {
			fleetError(w, http.StatusBadRequest, "bad member: %v", err)
			return
		}
		members, err := r.Upsert(m)
		if err != nil {
			fleetError(w, http.StatusBadRequest, "%v", err)
			return
		}
		fleetJSON(w, http.StatusOK, registerResponse{
			IntervalSeconds: r.interval.Seconds(),
			TTLSeconds:      r.ttl.Seconds(),
			Members:         members,
		})
	case http.MethodDelete:
		id := req.URL.Query().Get("id")
		if id == "" {
			fleetError(w, http.StatusBadRequest, "deregister needs an id")
			return
		}
		r.Remove(id)
		w.WriteHeader(http.StatusNoContent)
	default:
		fleetError(w, http.StatusMethodNotAllowed, "use POST or DELETE")
	}
}

func (r *Registry) handleMembers(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		fleetError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	fleetJSON(w, http.StatusOK, map[string]any{"members": r.Members()})
}

func fleetJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func fleetError(w http.ResponseWriter, code int, format string, args ...any) {
	fleetJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"vexsmt/pkg/vexsmt/resilience"
)

// Heartbeat keeps one daemon registered: it POSTs a fresh self-snapshot
// to the registry on the cadence the registry asks for, remembers the
// member list each response carries (Peers), and deregisters on the way
// out. Registry outages are absorbed — beats keep retrying on the last
// known cadence and the stale peer view stays usable until a response
// replaces it.
type Heartbeat struct {
	registry string
	client   *http.Client
	snapshot func() Member
	policy   resilience.Policy

	mu       sync.Mutex
	interval time.Duration
	peers    []Member
	lastErr  error
}

// HeartbeatOption configures a Heartbeat.
type HeartbeatOption func(*Heartbeat)

// WithHeartbeatClient substitutes the http.Client used for every
// request.
func WithHeartbeatClient(c *http.Client) HeartbeatOption {
	return func(h *Heartbeat) { h.client = c }
}

// WithHeartbeatPolicy substitutes the resilience policy bounding each
// registration round-trip (the policy's AttemptTimeout, layered onto
// the beat's context). The default is resilience.Default (5s).
func WithHeartbeatPolicy(p resilience.Policy) HeartbeatOption {
	return func(h *Heartbeat) { h.policy = p }
}

// NewHeartbeat builds a heartbeat against the registry at registryURL.
// snapshot is called once per beat and must return the member's current
// identity and stats (ID and URL must be stable across beats).
func NewHeartbeat(registryURL string, snapshot func() Member, opts ...HeartbeatOption) (*Heartbeat, error) {
	u, err := url.Parse(registryURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("fleet: registry url %q: need scheme and host", registryURL)
	}
	if snapshot == nil {
		return nil, fmt.Errorf("fleet: heartbeat needs a snapshot function")
	}
	h := &Heartbeat{
		registry: strings.TrimRight(registryURL, "/"),
		client:   http.DefaultClient,
		snapshot: snapshot,
		policy:   resilience.Default(),
		interval: DefaultHeartbeatInterval,
	}
	for _, o := range opts {
		o(h)
	}
	return h, nil
}

// Beat performs one registration round-trip, updating the peer view and
// the cadence from the response.
func (h *Heartbeat) Beat(ctx context.Context) error {
	m := h.snapshot()
	body, err := json.Marshal(m)
	if err != nil {
		return h.setErr(err)
	}
	ctx, cancel := h.policy.AttemptContext(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.registry+"/v1/fleet/register", bytes.NewReader(body))
	if err != nil {
		return h.setErr(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return h.setErr(fmt.Errorf("fleet: register with %s: %w", h.registry, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return h.setErr(fmt.Errorf("fleet: register with %s: status %d: %s",
			h.registry, resp.StatusCode, strings.TrimSpace(string(msg))))
	}
	var rr registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return h.setErr(fmt.Errorf("fleet: register response: %w", err))
	}
	h.mu.Lock()
	if d := time.Duration(rr.IntervalSeconds * float64(time.Second)); d > 0 {
		h.interval = d
	}
	h.peers = rr.Members
	h.lastErr = nil
	h.mu.Unlock()
	return nil
}

func (h *Heartbeat) setErr(err error) error {
	h.mu.Lock()
	h.lastErr = err
	h.mu.Unlock()
	return err
}

// Run beats until ctx is cancelled, then deregisters best-effort. Beat
// failures are retried on the next tick — a registry outage must not
// kill the daemon.
func (h *Heartbeat) Run(ctx context.Context) {
	for {
		_ = h.Beat(ctx)
		h.mu.Lock()
		d := h.interval
		h.mu.Unlock()
		select {
		case <-ctx.Done():
			h.deregister()
			return
		case <-time.After(d):
		}
	}
}

// Peers returns the member list from the most recent successful beat,
// excluding this member itself.
func (h *Heartbeat) Peers() []Member {
	self := h.snapshot().ID
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Member, 0, len(h.peers))
	for _, m := range h.peers {
		if m.ID != self {
			out = append(out, m)
		}
	}
	return out
}

// Err returns the most recent beat failure, nil after a successful beat
// (surfaced by daemons in logs/status, not fatal).
func (h *Heartbeat) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastErr
}

// deregister tells the registry this member is leaving. Best-effort with
// a fresh context: Run's context is already cancelled when shutdown
// reaches here.
func (h *Heartbeat) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		h.registry+"/v1/fleet/register?id="+url.QueryEscape(h.snapshot().ID), nil)
	if err != nil {
		return
	}
	if resp, err := h.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

package vexsmt

import (
	"context"
	"runtime"
	"testing"
	"time"
)

func TestStreamMatchesSerialCollect(t *testing.T) {
	// The determinism contract at the public boundary: a parallel stream
	// delivers cell-for-cell exactly what a serial Collect produces,
	// regardless of completion order.
	plan := Plan{Figures: []string{"14"}}
	ctx := context.Background()

	serial, err := testService(t, WithParallelism(1)).Collect(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[CellSpec]CellResult, len(serial.Cells))
	for _, c := range serial.Cells {
		want[CellSpec{Mix: c.Mix, Technique: c.Technique, Threads: c.Threads, Predictor: c.Predictor}] = c
	}

	ch, err := testService(t, WithParallelism(8)).Stream(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for cell := range ch {
		if cell.Err != "" {
			t.Fatalf("%s/%s/%dT: %s", cell.Mix, cell.Technique, cell.Threads, cell.Err)
		}
		n++
		w, ok := want[CellSpec{Mix: cell.Mix, Technique: cell.Technique, Threads: cell.Threads, Predictor: cell.Predictor}]
		if !ok {
			t.Fatalf("stream delivered unplanned cell %s/%s/%dT", cell.Mix, cell.Technique, cell.Threads)
		}
		if cell != w {
			t.Errorf("%s/%s/%dT: streamed cell differs from serial:\nserial:   %+v\nstreamed: %+v",
				cell.Mix, cell.Technique, cell.Threads, w, cell)
		}
	}
	if n != len(serial.Cells) {
		t.Fatalf("streamed %d cells, want %d", n, len(serial.Cells))
	}
}

func TestStreamCancellationPromptNoLeak(t *testing.T) {
	// Cancelling mid-grid must close the stream well before the grid could
	// finish, and every worker goroutine must unwind. Scale 50 makes each
	// cell ~4M instructions, so the 144-cell grid cannot complete in the
	// cancellation window.
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	svc, err := New(WithScale(50), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := svc.Stream(ctx, Plan{Figures: []string{"14", "15", "16"}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	closeDeadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, open = <-ch:
		case <-closeDeadline:
			t.Fatal("stream did not close within 5s of cancellation")
		}
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before stream, %d after drain", before, runtime.NumGoroutine())
}

func TestCollectHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	svc, err := New(WithScale(50), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Collect(ctx, Plan{Figures: []string{"14"}}); err == nil {
		t.Fatal("Collect returned no error under a cancelled context")
	}
}

func TestCancelledCellsResimulate(t *testing.T) {
	// A cell aborted by cancellation must not poison the memo: a fresh
	// context re-simulates it and gets a real result.
	svc := testService(t)
	spec := CellSpec{Mix: "mmmm", Technique: "SMT", Threads: 2}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.RunCell(cancelled, spec); err == nil {
		t.Fatal("cancelled RunCell returned no error")
	}
	r, err := svc.RunCell(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.Counters.Instrs <= 0 {
		t.Fatalf("retried cell produced no work: %+v", r)
	}
}

package vexsmt

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vexsmt/internal/isa"
	"vexsmt/internal/synth"
	"vexsmt/internal/trace"
	"vexsmt/internal/wstore"
)

// This file tests the trace-workload experiment axis: corpus loading, name
// and reference resolution, plan crossing, the mix/workload exclusivity
// rule, byte-identity across execution strategies, and cache addressing
// (including that the epoch bump orphans every pre-workload entry).

// writeTestCorpus records the named synthetic profiles as .vxt traces in a
// fresh directory — the same files tracegen -record would produce.
func writeTestCorpus(t *testing.T, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range names {
		p, ok := synth.ByName(name)
		if !ok {
			t.Fatalf("no synthetic profile %q", name)
		}
		gen := synth.MustNewGenerator(p, isa.ST200x4)
		instrs := trace.Record(gen, 2000)
		f, err := os.Create(filepath.Join(dir, name+".vxt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Write(f, name, isa.ST200x4.Clusters, instrs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// workloadService builds a service over a private store (so tests do not
// pollute the process-global corpus) with the given directory loaded.
func workloadService(t *testing.T, dir string, opts ...Option) *Service {
	t.Helper()
	opts = append([]Option{withWorkloadStore(wstore.New()), WithWorkloadDir(dir)}, opts...)
	return testService(t, opts...)
}

func TestWithWorkloadDirLoadsCorpus(t *testing.T) {
	dir := writeTestCorpus(t, "idct", "mcf")
	svc := workloadService(t, dir)
	refs := svc.WorkloadRefs()
	if len(refs) != 2 {
		t.Fatalf("loaded %d workloads, want 2: %v", len(refs), refs)
	}
	// Sorted by name, each a full name@sha256 reference.
	for i, want := range []string{"idct@", "mcf@"} {
		name, hash := wstore.SplitRef(refs[i])
		if !strings.HasPrefix(refs[i], want) || len(hash) != 64 {
			t.Fatalf("ref %d = %q (name %q, hash %q), want %s<64 hex digits>", i, refs[i], name, hash, want)
		}
	}
	// A service without a corpus advertises none.
	if refs := testService(t).WorkloadRefs(); len(refs) != 0 {
		t.Fatalf("corpus-less service advertises %v", refs)
	}
}

func TestWorkloadResolution(t *testing.T) {
	dir := writeTestCorpus(t, "idct")
	svc := workloadService(t, dir)

	// A bare name in a spec resolves to the full content reference, so the
	// cells PlanCells hands a coordinator pin the trace bytes.
	cells, err := svc.PlanCells(Plan{Cells: []CellSpec{
		{Workload: "idct", Technique: "SMT", Threads: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || !strings.HasPrefix(cells[0].Workload, "idct@") {
		t.Fatalf("bare name not resolved to reference: %+v", cells)
	}
	ref := cells[0].Workload

	// The reference form resolves to itself; a matching-name wrong-hash
	// reference is unknown (content addressing, not file naming).
	cells, err = svc.PlanCells(Plan{Cells: []CellSpec{
		{Workload: ref, Technique: "SMT", Threads: 2},
	}})
	if err != nil || cells[0].Workload != ref {
		t.Fatalf("reference did not resolve to itself: %v %+v", err, cells)
	}
	bogus := "idct@" + strings.Repeat("0", 64)
	if _, err := svc.PlanCells(Plan{Workloads: []string{bogus}}); err == nil {
		t.Fatal("wrong-hash reference accepted")
	}

	// Unknown names fail the whole plan up front and list what is loaded.
	if _, err := svc.PlanCells(Plan{Workloads: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown workload accepted")
	} else if !strings.Contains(err.Error(), "idct") {
		t.Fatalf("error does not list the loaded corpus: %v", err)
	}

	// Without any corpus the error points at WithWorkloadDir instead of
	// listing an empty corpus.
	if _, err := testService(t, withWorkloadStore(wstore.New())).PlanCells(Plan{Workloads: []string{"idct"}}); err == nil {
		t.Fatal("workload accepted without a corpus")
	} else if !strings.Contains(err.Error(), "no trace corpus loaded") {
		t.Fatalf("corpus-less error: %v", err)
	}

	// A spec naming both a mix and a workload is contradictory.
	if _, err := svc.PlanCells(Plan{Cells: []CellSpec{
		{Mix: "llll", Workload: "idct", Technique: "SMT", Threads: 2},
	}}); err == nil {
		t.Fatal("cell naming both mix and workload accepted")
	}
}

func TestWorkloadAxisCrossesGrid(t *testing.T) {
	dir := writeTestCorpus(t, "idct", "mcf")
	svc := workloadService(t, dir, WithTechniques("SMT", "CSMT"))

	// Workloads cross techniques x {2,4} threads, additive with the figure
	// grid and multiplied by the predictor axis like mix cells.
	cells, err := svc.PlanCells(Plan{Workloads: []string{"idct", "mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2 { // 2 workloads x 2 techniques x 2 thread counts
		t.Fatalf("workload plan has %d cells, want 8", len(cells))
	}
	for _, c := range cells {
		if c.Mix != "" || c.Workload == "" {
			t.Fatalf("workload cell carries a mix: %+v", c)
		}
	}
	crossed, err := svc.PlanCells(Plan{
		Workloads:  []string{"idct"},
		Predictors: []string{"static", "bimodal"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(crossed) != 2*2*2 { // 2 predictors x 2 techniques x 2 thread counts
		t.Fatalf("predictor-crossed workload plan has %d cells, want 8", len(crossed))
	}
}

// TestWorkloadCellsByteIdentical is the determinism contract on the replay
// path: the same trace-backed plan produces byte-identical canonical JSON
// whether simulated serially, in parallel, or recalled from a result
// cache — the distributed modes (shards, daemons, peer fill) are built on
// exactly these three equivalences.
func TestWorkloadCellsByteIdentical(t *testing.T) {
	dir := writeTestCorpus(t, "idct", "mcf")
	plan := Plan{Workloads: []string{"idct", "mcf"}}
	opts := []Option{WithTechniques("SMT", "CCSI AS")}

	collect := func(svc *Service) string {
		t.Helper()
		rs, err := svc.Collect(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		return encodeCanonical(t, rs)
	}

	serial := collect(workloadService(t, dir, append(opts, WithParallelism(1))...))
	parallel := collect(workloadService(t, dir, append(opts, WithParallelism(4))...))
	if serial != parallel {
		t.Fatalf("parallel replay diverged from serial:\n%s\nvs\n%s", serial, parallel)
	}

	// Cached recall: the second sweep runs zero simulations and returns the
	// same bytes the first one stored.
	cached := workloadService(t, dir, append(opts, WithCache(newMapCache()))...)
	first := collect(cached)
	if n := cached.SimulationsRun(); n == 0 {
		t.Fatal("cold sweep simulated nothing")
	}
	warm := workloadService(t, dir, append(opts, WithCache(cached.cache))...)
	second := collect(warm)
	if n := warm.SimulationsRun(); n != 0 {
		t.Fatalf("warm sweep ran %d simulations, want 0", n)
	}
	if first != second || first != serial {
		t.Fatal("cached replay not byte-identical to simulation")
	}
}

// newMapCache is a minimal in-memory CellCache for identity tests.
type mapCache struct {
	m     map[string][]byte
	stats CacheStats
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string][]byte)} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	v, ok := c.m[key]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return v, ok
}

func (c *mapCache) Put(key string, value []byte) {
	c.stats.Puts++
	c.m[key] = append([]byte(nil), value...)
}

func (c *mapCache) Stats() CacheStats { return c.stats }

func TestCacheKeyWorkloadAddressing(t *testing.T) {
	meta := RunMeta{SchemaVersion: SchemaVersion, Seed: 1, Scale: 100}
	synthetic := CellSpec{Mix: "llll", Technique: "SMT", Threads: 2}
	traced := CellSpec{Workload: "idct@" + strings.Repeat("a", 64), Technique: "SMT", Threads: 2}
	if CacheKey(meta, synthetic) == CacheKey(meta, traced) {
		t.Error("trace cell shares the synthetic cache entry")
	}
	// Same name, different content hash: different entry. The hash — not
	// the file name — is the address.
	other := traced
	other.Workload = "idct@" + strings.Repeat("b", 64)
	if CacheKey(meta, traced) == CacheKey(meta, other) {
		t.Error("workload content hash not part of the cache key")
	}
}

// TestEpoch3OrphansEpoch2Entries: the workload field rode in on a
// CacheEpoch bump, so a warm epoch-2 cache misses every epoch-3 key — no
// pre-workload entry can be served as a current result, even for purely
// synthetic cells whose spec did not change.
func TestEpoch3OrphansEpoch2Entries(t *testing.T) {
	if CacheEpoch != 3 {
		t.Fatalf("CacheEpoch = %d; this test pins the 2->3 bump", CacheEpoch)
	}
	meta := RunMeta{SchemaVersion: SchemaVersion, Seed: 1, Scale: 100}
	spec := CellSpec{Mix: "llll", Technique: "SMT", Threads: 2}
	// The epoch-2 key layout, verbatim from the pre-workload CacheKey.
	epoch2 := sha256.Sum256([]byte(fmt.Sprintf("vexsmt/cell/v%d/e2|seed=%d|scale=%d|mix=%s|tech=%s|threads=%d|pred=%s",
		meta.SchemaVersion, meta.Seed, meta.Scale, spec.Mix, spec.Technique, spec.Threads, "")))
	if CacheKey(meta, spec) == hex.EncodeToString(epoch2[:]) {
		t.Fatal("epoch-3 key collides with the epoch-2 layout")
	}
}

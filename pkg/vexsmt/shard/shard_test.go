package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
	"vexsmt/pkg/vexsmt/server"
	"vexsmt/pkg/vexsmt/shard"
)

// testScale keeps simulation-backed tests fast; every assertion is
// structural or bit-identity, never statistical.
const testScale = 20000

// fullGrid is the complete figure grid: every technique, mix and machine
// size the paper's Figures 14–16 evaluate.
var fullGrid = vexsmt.Plan{Figures: []string{"14", "15", "16"}}

func testService(t *testing.T) *vexsmt.Service { return testServiceAt(t, testScale) }

func testServiceAt(t *testing.T, scale int64, opts ...vexsmt.Option) *vexsmt.Service {
	t.Helper()
	svc, err := vexsmt.New(append([]vexsmt.Option{vexsmt.WithScale(scale)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// encodeCanonical returns rs's canonical encoding without mutating it.
func encodeCanonical(t *testing.T, rs *vexsmt.ResultSet) string {
	t.Helper()
	cp := &vexsmt.ResultSet{Meta: rs.Meta, Cells: append([]vexsmt.CellResult(nil), rs.Cells...)}
	cp.Canonicalize()
	var buf bytes.Buffer
	if err := vexsmt.EncodeResults(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func collectBaseline(t *testing.T, svc *vexsmt.Service, plan vexsmt.Plan) string {
	t.Helper()
	rs, err := svc.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return encodeCanonical(t, rs)
}

// TestCoordinatorMatchesCollectLocal is the in-process half of the
// cell-scheduling determinism property: for several backend counts, a
// coordinated run over in-process backends is bit-identical to a single
// Service.Collect of the full figure grid. All backends wrap the baseline
// service, so the whole test simulates the grid exactly once.
func TestCoordinatorMatchesCollectLocal(t *testing.T) {
	svc := testService(t)
	want := collectBaseline(t, svc, fullGrid)
	for _, k := range []int{1, 2, 3} {
		var backends []shard.Backend
		for i := 0; i < k; i++ {
			backends = append(backends, shard.NewLocal("local-"+string(rune('a'+i)), svc))
		}
		var last shard.Progress
		coord, err := shard.New(shard.Config{
			Scale:      testScale,
			Seed:       svc.Seed(),
			OnProgress: func(p shard.Progress) { last = p },
		}, backends...)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := coord.Collect(context.Background(), fullGrid)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := encodeCanonical(t, rs); got != want {
			t.Fatalf("k=%d: coordinated result differs from Service.Collect", k)
		}
		if last.CellsDone != last.CellsTotal || last.Retries != 0 {
			t.Fatalf("k=%d: final progress %+v", k, last)
		}
	}
}

// TestCoordinatorMatchesCollectHTTP is the remote half of the property:
// the same grid coordinated cell-by-cell across two real vexsmtd servers
// (httptest) over the /v1 plan/results protocol stays bit-identical to
// the single-process run.
func TestCoordinatorMatchesCollectHTTP(t *testing.T) {
	// Every cell is a fresh daemon-side service (no cross-plan
	// memoization), so this test runs at a finer scale than the in-process
	// one to stay cheap.
	const httpScale = 50000
	want := collectBaseline(t, testServiceAt(t, httpScale), fullGrid)
	a := httptest.NewServer(server.New(httpScale, 1, 4).Handler())
	defer a.Close()
	b := httptest.NewServer(server.New(httpScale, 1, 4).Handler())
	defer b.Close()
	var last shard.Progress
	coord, err := shard.New(shard.Config{
		Scale:      httpScale,
		Seed:       1,
		OnProgress: func(p shard.Progress) { last = p },
	}, httpBackends(t, a.URL, b.URL)...)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), fullGrid)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("coordinated HTTP result differs from Service.Collect")
	}
	if last.CellsDone != 144 || last.CellsTotal != 144 {
		t.Fatalf("final progress %+v", last)
	}
}

func httpBackends(t *testing.T, urls ...string) []shard.Backend {
	t.Helper()
	out := make([]shard.Backend, len(urls))
	for i, u := range urls {
		b, err := shard.NewHTTP(u)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// failFirst wraps a backend and fails its first n Runs with a transient
// error, simulating a machine that dies and is failed over.
type failFirst struct {
	shard.Backend
	n       int64
	tripped atomic.Int64
}

func (f *failFirst) Run(ctx context.Context, job shard.Job) (*vexsmt.ResultSet, error) {
	if f.tripped.Add(1) <= f.n {
		return nil, errors.New("injected backend death")
	}
	return f.Backend.Run(ctx, job)
}

// TestCoordinatorFailoverLocal: cells whose backend dies are retried on
// the surviving backend and the output is still bit-identical; the
// retries are visible in the progress feed.
func TestCoordinatorFailoverLocal(t *testing.T) {
	svc := testService(t)
	want := collectBaseline(t, svc, fullGrid)
	flaky := &failFirst{Backend: shard.NewLocal("flaky", svc), n: 2}
	var last shard.Progress
	coord, err := shard.New(shard.Config{
		Scale:      testScale,
		Seed:       svc.Seed(),
		OnProgress: func(p shard.Progress) { last = p },
	}, flaky, shard.NewLocal("steady", svc))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), fullGrid)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("failover result differs from Service.Collect")
	}
	if flaky.tripped.Load() == 0 {
		t.Fatal("flaky backend was never used — failover untested")
	}
	if last.Retries < 1 {
		t.Fatalf("no retry recorded: %+v", last)
	}
	if last.CellsDone != last.CellsTotal {
		t.Fatalf("progress double-counted or lost cells across retries: %+v", last)
	}
}

// TestCoordinatorFailoverHTTP kills the first two cell submissions on one
// daemon and expects the coordinator to rerun those cells on the
// surviving daemon with no effect on the merged bits — the paper-grid
// equivalent of losing a machine mid-sweep.
func TestCoordinatorFailoverHTTP(t *testing.T) {
	plan := vexsmt.Plan{Figures: []string{"14"}}
	want := collectBaseline(t, testService(t), plan)
	a := httptest.NewServer(server.New(testScale, 1, 2).Handler())
	defer a.Close()
	b := httptest.NewServer(server.New(testScale, 1, 2).Handler())
	defer b.Close()
	backends := httpBackends(t, a.URL, b.URL)
	flaky := &failFirst{Backend: backends[0], n: 2}
	coord, err := shard.New(shard.Config{
		Scale: testScale,
		Seed:  1,
	}, flaky, backends[1])
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("mid-run failover result differs from Service.Collect")
	}
	if flaky.tripped.Load() == 0 {
		t.Fatal("flaky backend was never used — failover untested")
	}
}

// TestWorkStealingDrainsStragglerBackend: one backend is an order of
// magnitude slower per cell; the fast backend must steal most of the
// slow one's queue and the output stays bit-identical.
func TestWorkStealingDrainsStragglerBackend(t *testing.T) {
	svc := testService(t)
	want := collectBaseline(t, svc, fullGrid)
	slow := &slowBackend{Backend: shard.NewLocal("slow", svc), delay: 20 * time.Millisecond}
	var last shard.Progress
	coord, err := shard.New(shard.Config{
		Scale:      testScale,
		Seed:       svc.Seed(),
		OnProgress: func(p shard.Progress) { last = p },
	}, slow, shard.NewLocal("fast", svc))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), fullGrid)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("stolen cells changed the result bits")
	}
	if last.Stolen == 0 {
		t.Fatalf("no cells were stolen from the straggler: %+v", last)
	}
	if n := slow.ran.Load(); n >= 144 {
		t.Fatalf("slow backend ran all %d cells — stealing is inert", n)
	}
}

type slowBackend struct {
	shard.Backend
	delay time.Duration
	ran   atomic.Int64
}

func (s *slowBackend) Run(ctx context.Context, job shard.Job) (*vexsmt.ResultSet, error) {
	s.ran.Add(1)
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Backend.Run(ctx, job)
}

// runningPlans reports how many plans a vexsmtd lists as running.
func runningPlans(t *testing.T, baseURL string) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Running int `json:"running"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Running
}

// TestCoordinatorCancelPropagatesDelete: cancelling a coordinated run must
// reach the daemons as DELETEs — their running-plan counts drain to zero
// promptly instead of simulating to completion.
func TestCoordinatorCancelPropagatesDelete(t *testing.T) {
	const slowScale = 50 // 4M instrs per cell: the grid cannot finish before the cancel lands
	a := httptest.NewServer(server.New(slowScale, 1, 2).Handler())
	defer a.Close()
	b := httptest.NewServer(server.New(slowScale, 1, 2).Handler())
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	coord, err := shard.New(shard.Config{
		Scale: slowScale,
		Seed:  1,
	}, httpBackends(t, a.URL, b.URL)...)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Collect(ctx, fullGrid)
		done <- err
	}()
	// Cancel as soon as the daemons report cells running — no cell needs
	// to complete first.
	deadlineUp := time.Now().Add(30 * time.Second)
	for runningPlans(t, a.URL)+runningPlans(t, b.URL) < 2 {
		if time.Now().After(deadlineUp) {
			t.Fatal("cells not running on the daemons within 30s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Collect after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Collect did not return within 20s of cancellation")
	}
	deadline := time.Now().Add(10 * time.Second)
	for runningPlans(t, a.URL)+runningPlans(t, b.URL) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("daemons still report running plans 10s after cancel (a=%d b=%d)",
				runningPlans(t, a.URL), runningPlans(t, b.URL))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPlacementSkipsUnhealthyBackend: a daemon whose /healthz fails never
// receives a cell; the healthy one absorbs the whole grid.
func TestPlacementSkipsUnhealthyBackend(t *testing.T) {
	plan := vexsmt.Plan{Figures: []string{"14"}}
	want := collectBaseline(t, testService(t), plan)
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "sick", http.StatusServiceUnavailable)
	}))
	defer sick.Close()
	healthy := httptest.NewServer(server.New(testScale, 1, 2).Handler())
	defer healthy.Close()
	coord, err := shard.New(shard.Config{
		Scale: testScale,
		Seed:  1,
	}, httpBackends(t, sick.URL, healthy.URL)...)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("result with an unhealthy backend differs from Service.Collect")
	}
}

// wrongCellBackend answers every one-cell job with a fixed foreign cell.
type wrongCellBackend struct {
	shard.Backend
}

func (w *wrongCellBackend) Run(ctx context.Context, job shard.Job) (*vexsmt.ResultSet, error) {
	rs, err := w.Backend.Run(ctx, job)
	if err != nil {
		return nil, err
	}
	for i := range rs.Cells {
		rs.Cells[i].Mix = "hhhh" // lie about the identity
	}
	return rs, nil
}

// TestCoordinatorRejectsWrongCellIdentity: a backend answering a one-cell
// job with a different cell must not slip into the result set as a
// silent duplicate-plus-gap (the guarantee the old merge's conflict
// detection provided).
func TestCoordinatorRejectsWrongCellIdentity(t *testing.T) {
	svc := testService(t)
	liar := &wrongCellBackend{Backend: shard.NewLocal("liar", svc)}
	coord, err := shard.New(shard.Config{
		Scale:   testScale,
		Seed:    svc.Seed(),
		Retries: -1, // every attempt lies; fail fast
	}, liar)
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Collect(context.Background(), vexsmt.Plan{Cells: []vexsmt.CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2},
	}})
	if err == nil {
		t.Fatal("wrong-identity cell accepted")
	}
}

// TestLocalBackendRejectsForeignJob: a Local backend must refuse to run a
// job at a seed/scale its immutable service was not built for.
func TestLocalBackendRejectsForeignJob(t *testing.T) {
	svc := testService(t)
	l := shard.NewLocal("local", svc)
	cells, err := svc.PlanCells(vexsmt.Plan{Cells: []vexsmt.CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(context.Background(), shard.Job{Cells: cells, Scale: testScale, Seed: 99}); err == nil {
		t.Fatal("foreign seed accepted")
	}
	if _, err := l.Run(context.Background(), shard.Job{Cells: cells, Scale: 1, Seed: svc.Seed()}); err == nil {
		t.Fatal("foreign scale accepted")
	}
}

// TestCoordinatorPredictorSweepMatchesCollect is the distributed half of
// the predictor-axis property: a static-vs-bimodal sweep of Figure 14
// coordinated over in-process and real HTTP backends must merge to
// exactly the bytes a single-process Collect of the same plan produces —
// the predictor axis adds cells, never nondeterminism.
func TestCoordinatorPredictorSweepMatchesCollect(t *testing.T) {
	sweep := vexsmt.Plan{Figures: []string{"14"}, Predictors: []string{"static", "bimodal"}}
	svc := testService(t)
	want := collectBaseline(t, svc, sweep)

	t.Run("local", func(t *testing.T) {
		coord, err := shard.New(shard.Config{Scale: testScale, Seed: svc.Seed()},
			shard.NewLocal("a", svc), shard.NewLocal("b", svc))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := coord.Collect(context.Background(), sweep)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeCanonical(t, rs); got != want {
			t.Fatal("coordinated predictor sweep differs from Service.Collect")
		}
		// Both models actually ran: half the cells carry the modeled name.
		var modeled int
		for _, c := range rs.Cells {
			if c.Predictor == "bimodal" {
				modeled++
			}
		}
		if modeled == 0 || modeled != len(rs.Cells)/2 {
			t.Fatalf("%d of %d cells are bimodal, want an even split", modeled, len(rs.Cells))
		}
	})

	t.Run("http", func(t *testing.T) {
		a := httptest.NewServer(server.New(testScale, 1, 4).Handler())
		defer a.Close()
		b := httptest.NewServer(server.New(testScale, 1, 4).Handler())
		defer b.Close()
		coord, err := shard.New(shard.Config{Scale: testScale, Seed: 1},
			httpBackends(t, a.URL, b.URL)...)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := coord.Collect(context.Background(), sweep)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeCanonical(t, rs); got != want {
			t.Fatal("two-daemon predictor sweep differs from Service.Collect")
		}
	})
}

// TestWarmCacheCoordinatedCollect is the distributed half of the cache
// property (the single-process half lives in pkg/vexsmt): over K ∈ {1,3}
// backends sharing one on-disk cache directory, a warm coordinated
// Collect of the full figure grid is byte-identical to the cold run and
// to the uncached single-process baseline, performs zero simulator runs,
// and reports every cell as a cache hit.
func TestWarmCacheCoordinatedCollect(t *testing.T) {
	baseline := collectBaseline(t, testService(t), fullGrid)
	for _, k := range []int{1, 3} {
		k := k
		t.Run(map[int]string{1: "K=1", 3: "K=3"}[k], func(t *testing.T) {
			dir := t.TempDir()
			newBackends := func() ([]shard.Backend, []*vexsmt.Service) {
				var bs []shard.Backend
				var svcs []*vexsmt.Service
				for i := 0; i < k; i++ {
					d, err := cache.NewDisk(dir)
					if err != nil {
						t.Fatal(err)
					}
					svc := testServiceAt(t, testScale, vexsmt.WithCache(d))
					svcs = append(svcs, svc)
					bs = append(bs, shard.NewLocal("cached-"+string(rune('a'+i)), svc))
				}
				return bs, svcs
			}
			run := func() (string, shard.Progress, []*vexsmt.Service) {
				bs, svcs := newBackends()
				var last shard.Progress
				coord, err := shard.New(shard.Config{
					Scale:      testScale,
					Seed:       1,
					OnProgress: func(p shard.Progress) { last = p },
				}, bs...)
				if err != nil {
					t.Fatal(err)
				}
				rs, err := coord.Collect(context.Background(), fullGrid)
				if err != nil {
					t.Fatal(err)
				}
				return encodeCanonical(t, rs), last, svcs
			}

			cold, coldProg, _ := run()
			if cold != baseline {
				t.Fatal("cold cached run differs from uncached baseline")
			}
			if coldProg.CacheHits != 0 {
				// Backends share the directory, so a cell simulated on one
				// backend could in principle be read back by another — but
				// the scheduler runs each cell exactly once.
				t.Fatalf("cold run reported cache hits: %+v", coldProg)
			}

			warm, warmProg, svcs := run()
			if warm != baseline {
				t.Fatal("warm cached run is not byte-identical to the cold run")
			}
			if warmProg.CacheHits != 144 || warmProg.CacheMisses != 0 {
				t.Fatalf("warm run progress %+v, want 144 hits / 0 misses", warmProg)
			}
			var sims int64
			for _, svc := range svcs {
				sims += svc.SimulationsRun()
			}
			if sims != 0 {
				t.Fatalf("warm run performed %d simulator runs, want 0", sims)
			}
		})
	}
}

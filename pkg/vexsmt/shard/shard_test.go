package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/server"
	"vexsmt/pkg/vexsmt/shard"
)

// testScale keeps simulation-backed tests fast; every assertion is
// structural or bit-identity, never statistical.
const testScale = 20000

// fullGrid is the complete figure grid: every technique, mix and machine
// size the paper's Figures 14–16 evaluate.
var fullGrid = vexsmt.Plan{Figures: []string{"14", "15", "16"}}

func testService(t *testing.T) *vexsmt.Service { return testServiceAt(t, testScale) }

func testServiceAt(t *testing.T, scale int64) *vexsmt.Service {
	t.Helper()
	svc, err := vexsmt.New(vexsmt.WithScale(scale))
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// encodeCanonical returns rs's canonical encoding without mutating it.
func encodeCanonical(t *testing.T, rs *vexsmt.ResultSet) string {
	t.Helper()
	cp := &vexsmt.ResultSet{Meta: rs.Meta, Cells: append([]vexsmt.CellResult(nil), rs.Cells...)}
	cp.Canonicalize()
	var buf bytes.Buffer
	if err := vexsmt.EncodeResults(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func collectBaseline(t *testing.T, svc *vexsmt.Service, plan vexsmt.Plan) string {
	t.Helper()
	rs, err := svc.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return encodeCanonical(t, rs)
}

func TestPartitionBalancedDeterministic(t *testing.T) {
	svc := testService(t)
	cells, err := svc.PlanCells(fullGrid)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5, 7, len(cells), len(cells) + 10} {
		parts, err := shard.Partitioner{Shards: k}.Partition(cells)
		if err != nil {
			t.Fatal(err)
		}
		wantParts := k
		if k > len(cells) {
			wantParts = len(cells)
		}
		if len(parts) != wantParts {
			t.Fatalf("k=%d: %d parts, want %d", k, len(parts), wantParts)
		}
		seen := make(map[vexsmt.CellSpec]bool, len(cells))
		min, max := len(cells), 0
		for _, part := range parts {
			if len(part) == 0 {
				t.Fatalf("k=%d: empty shard", k)
			}
			if len(part) < min {
				min = len(part)
			}
			if len(part) > max {
				max = len(part)
			}
			for _, c := range part {
				if seen[c] {
					t.Fatalf("k=%d: cell %+v in two shards", k, c)
				}
				seen[c] = true
			}
		}
		if len(seen) != len(cells) {
			t.Fatalf("k=%d: %d cells partitioned, want %d", k, len(seen), len(cells))
		}
		if max-min > 1 {
			t.Fatalf("k=%d: unbalanced shards (sizes %d..%d)", k, min, max)
		}
		again, err := shard.Partitioner{Shards: k}.Partition(cells)
		if err != nil {
			t.Fatal(err)
		}
		for i := range parts {
			for j := range parts[i] {
				if parts[i][j] != again[i][j] {
					t.Fatalf("k=%d: partition is not deterministic", k)
				}
			}
		}
	}
	if _, err := (shard.Partitioner{Shards: 0}).Partition(cells); err == nil {
		t.Fatal("shard count 0 accepted")
	}
}

// TestCoordinatorMatchesCollectLocal is the in-process half of the
// sharding determinism property: for several shard counts, a coordinated
// run over in-process backends is bit-identical to a single Service.Collect
// of the full figure grid. Both backends wrap the baseline service, so the
// whole test simulates the grid exactly once.
func TestCoordinatorMatchesCollectLocal(t *testing.T) {
	svc := testService(t)
	want := collectBaseline(t, svc, fullGrid)
	backends := []shard.Backend{
		shard.NewLocal("local-a", svc),
		shard.NewLocal("local-b", svc),
	}
	for _, k := range []int{1, 2, 3, 5} {
		var last shard.Progress
		coord, err := shard.New(shard.Config{
			Scale:      testScale,
			Seed:       svc.Seed(),
			Shards:     k,
			OnProgress: func(p shard.Progress) { last = p },
		}, backends...)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := coord.Collect(context.Background(), fullGrid)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := encodeCanonical(t, rs); got != want {
			t.Fatalf("k=%d: coordinated result differs from Service.Collect", k)
		}
		if last.CellsDone != last.CellsTotal || last.ShardsDone != k || last.Retries != 0 {
			t.Fatalf("k=%d: final progress %+v", k, last)
		}
	}
}

// TestCoordinatorMatchesCollectHTTP is the remote half of the property:
// the same grid coordinated across two real vexsmtd servers (httptest)
// over the /v1 plan/results protocol stays bit-identical to the
// single-process run for every shard count.
func TestCoordinatorMatchesCollectHTTP(t *testing.T) {
	// Every shard count re-simulates the whole grid daemon-side (one
	// service per plan, no cross-plan memoization), so this test runs at a
	// finer scale than the in-process one to stay cheap.
	const httpScale = 50000
	want := collectBaseline(t, testServiceAt(t, httpScale), fullGrid)
	a := httptest.NewServer(server.New(httpScale, 1, 4).Handler())
	defer a.Close()
	b := httptest.NewServer(server.New(httpScale, 1, 4).Handler())
	defer b.Close()
	backends := httpBackends(t, a.URL, b.URL)
	for _, k := range []int{1, 2, 3, 5} {
		coord, err := shard.New(shard.Config{
			Scale:  httpScale,
			Seed:   1,
			Shards: k,
		}, backends...)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := coord.Collect(context.Background(), fullGrid)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := encodeCanonical(t, rs); got != want {
			t.Fatalf("k=%d: coordinated HTTP result differs from Service.Collect", k)
		}
	}
}

func httpBackends(t *testing.T, urls ...string) []shard.Backend {
	t.Helper()
	out := make([]shard.Backend, len(urls))
	for i, u := range urls {
		b, err := shard.NewHTTP(u)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// failOnce wraps a backend and kills its first Run: immediately when
// after == 0, or mid-run after that many cells have streamed (simulating a
// shard dying partway). Later Runs pass through untouched.
type failOnce struct {
	shard.Backend
	after   int
	tripped atomic.Bool
}

func (f *failOnce) Run(ctx context.Context, job shard.Job) (*vexsmt.ResultSet, error) {
	if !f.tripped.CompareAndSwap(false, true) {
		return f.Backend.Run(ctx, job)
	}
	if f.after == 0 {
		return nil, errors.New("injected backend death")
	}
	dctx, die := context.WithCancel(ctx)
	defer die()
	inner := job.Progress
	var n atomic.Int64
	job.Progress = func(c vexsmt.CellResult) {
		if inner != nil {
			inner(c)
		}
		if n.Add(1) >= int64(f.after) {
			die()
		}
	}
	rs, err := f.Backend.Run(dctx, job)
	if err == nil {
		return nil, fmt.Errorf("injected death raced completion; treat as failed (got %d cells)", len(rs.Cells))
	}
	return nil, fmt.Errorf("injected mid-run death: %w", err)
}

// TestCoordinatorFailoverLocal: a shard whose backend dies immediately is
// retried on the surviving backend and the merged output is still
// bit-identical; the retry is visible in the progress feed.
func TestCoordinatorFailoverLocal(t *testing.T) {
	svc := testService(t)
	want := collectBaseline(t, svc, fullGrid)
	flaky := &failOnce{Backend: shard.NewLocal("flaky", svc)}
	var last shard.Progress
	coord, err := shard.New(shard.Config{
		Scale:      testScale,
		Seed:       svc.Seed(),
		Shards:     3,
		OnProgress: func(p shard.Progress) { last = p },
	}, flaky, shard.NewLocal("steady", svc))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), fullGrid)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("failover result differs from Service.Collect")
	}
	if !flaky.tripped.Load() {
		t.Fatal("flaky backend was never placed — failover untested")
	}
	if last.Retries < 1 {
		t.Fatalf("no retry recorded: %+v", last)
	}
	if last.CellsDone != last.CellsTotal {
		t.Fatalf("progress double-counted or lost cells across the retry: %+v", last)
	}
}

// TestCoordinatorFailoverHTTP kills one HTTP shard mid-stream (after two
// cells) and expects the coordinator to rerun those cells on the surviving
// daemon with no effect on the merged bits — the paper-grid equivalent of
// losing a machine mid-sweep.
func TestCoordinatorFailoverHTTP(t *testing.T) {
	plan := vexsmt.Plan{Figures: []string{"14"}}
	want := collectBaseline(t, testService(t), plan)
	a := httptest.NewServer(server.New(testScale, 1, 2).Handler())
	defer a.Close()
	b := httptest.NewServer(server.New(testScale, 1, 2).Handler())
	defer b.Close()
	backends := httpBackends(t, a.URL, b.URL)
	flaky := &failOnce{Backend: backends[0], after: 2}
	coord, err := shard.New(shard.Config{
		Scale:  testScale,
		Seed:   1,
		Shards: 2,
	}, flaky, backends[1])
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("mid-run failover result differs from Service.Collect")
	}
	if !flaky.tripped.Load() {
		t.Fatal("flaky backend was never placed — failover untested")
	}
}

// runningPlans reports how many plans a vexsmtd lists as running.
func runningPlans(t *testing.T, baseURL string) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Running int `json:"running"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Running
}

// TestCoordinatorCancelPropagatesDelete: cancelling a coordinated run must
// reach the daemons as DELETEs — their running-plan counts drain to zero
// promptly instead of simulating to completion.
func TestCoordinatorCancelPropagatesDelete(t *testing.T) {
	const slowScale = 50 // 4M instrs per cell: the grid cannot finish before the cancel lands
	a := httptest.NewServer(server.New(slowScale, 1, 2).Handler())
	defer a.Close()
	b := httptest.NewServer(server.New(slowScale, 1, 2).Handler())
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	coord, err := shard.New(shard.Config{
		Scale:  slowScale,
		Seed:   1,
		Shards: 2,
	}, httpBackends(t, a.URL, b.URL)...)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Collect(ctx, fullGrid)
		done <- err
	}()
	// Cancel as soon as the daemons report the shards running — no cell
	// needs to complete first.
	deadlineUp := time.Now().Add(30 * time.Second)
	for runningPlans(t, a.URL)+runningPlans(t, b.URL) < 2 {
		if time.Now().After(deadlineUp) {
			t.Fatal("shards not running on the daemons within 30s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Collect after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Collect did not return within 20s of cancellation")
	}
	deadline := time.Now().Add(10 * time.Second)
	for runningPlans(t, a.URL)+runningPlans(t, b.URL) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("daemons still report running plans 10s after cancel (a=%d b=%d)",
				runningPlans(t, a.URL), runningPlans(t, b.URL))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPlacementSkipsUnhealthyBackend: a daemon whose /healthz fails never
// receives a shard; the healthy one absorbs the whole grid.
func TestPlacementSkipsUnhealthyBackend(t *testing.T) {
	plan := vexsmt.Plan{Figures: []string{"14"}}
	want := collectBaseline(t, testService(t), plan)
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "sick", http.StatusServiceUnavailable)
	}))
	defer sick.Close()
	healthy := httptest.NewServer(server.New(testScale, 1, 2).Handler())
	defer healthy.Close()
	coord, err := shard.New(shard.Config{
		Scale:  testScale,
		Seed:   1,
		Shards: 2,
	}, httpBackends(t, sick.URL, healthy.URL)...)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("result with an unhealthy backend differs from Service.Collect")
	}
}

// TestLocalBackendRejectsForeignJob: a Local backend must refuse to run a
// job at a seed/scale its immutable service was not built for.
func TestLocalBackendRejectsForeignJob(t *testing.T) {
	svc := testService(t)
	l := shard.NewLocal("local", svc)
	cells, err := svc.PlanCells(vexsmt.Plan{Cells: []vexsmt.CellSpec{
		{Mix: "llll", Technique: "SMT", Threads: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(context.Background(), shard.Job{Cells: cells, Scale: testScale, Seed: 99}); err == nil {
		t.Fatal("foreign seed accepted")
	}
	if _, err := l.Run(context.Background(), shard.Job{Cells: cells, Scale: 1, Seed: svc.Seed()}); err == nil {
		t.Fatal("foreign scale accepted")
	}
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vexsmt/pkg/vexsmt"
)

// Progress is a live snapshot of a coordinated run.
type Progress struct {
	CellsDone   int // cells completed across all live shard attempts
	CellsTotal  int // unique cells in the resolved plan
	ShardsDone  int // shards whose results are final
	ShardsTotal int
	Retries     int // shard attempts beyond the first, across the run
}

// Config parameterizes a Coordinator. The zero value of every field has a
// sensible default except Seed, which is taken literally (seed 0 is a
// valid experiment).
type Config struct {
	// Scale is the scale divisor every shard runs at; 0 means 100, the
	// Service default.
	Scale int64
	// Seed is the base seed every shard runs under, used as-is.
	Seed uint64
	// Shards is K, the number of parts the grid splits into; 0 means one
	// per backend. More shards than backends is useful: shards queue on
	// Concurrency and fill backends as they free up.
	Shards int
	// Concurrency bounds how many shards run at once; 0 sizes the window
	// from the backends' advertised capacity at Collect time (sum of
	// healthy /healthz capacities, at least one per backend, at most one
	// per shard).
	Concurrency int
	// Retries is the number of extra attempts a shard gets after a backend
	// failure, each preferring a backend that has not yet failed this
	// shard. 0 means 2; negative disables retry.
	Retries int
	// OnProgress, when non-nil, observes run progress. Calls are
	// serialized.
	OnProgress func(Progress)
	// Logf, when non-nil, receives placement, retry and failure events.
	Logf func(format string, args ...any)
}

// Coordinator fans a plan's cells out over backends and merges the shard
// results. It holds no per-run state: one Coordinator may serve any number
// of concurrent Collects.
type Coordinator struct {
	cfg      Config
	backends []Backend
}

// New builds a Coordinator over one or more backends.
func New(cfg Config, backends ...Backend) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one backend")
	}
	if cfg.Scale == 0 {
		cfg.Scale = 100
	}
	if cfg.Scale < 1 {
		return nil, fmt.Errorf("shard: scale divisor %d < 1", cfg.Scale)
	}
	if cfg.Shards == 0 {
		cfg.Shards = len(backends)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", cfg.Shards)
	}
	if cfg.Concurrency < 0 {
		return nil, fmt.Errorf("shard: concurrency %d < 0", cfg.Concurrency)
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 2
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	return &Coordinator{cfg: cfg, backends: backends}, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Collect resolves plan at the coordinator's seed and scale, partitions it
// into shards, runs them over the backends with bounded concurrency,
// retry and failover, and returns the merged canonical ResultSet —
// byte-identical (after canonical encoding) to a single-process
// Service.Collect of the same plan. Cancelling ctx aborts every live
// shard; remote shards are cancelled with a DELETE.
func (c *Coordinator) Collect(ctx context.Context, plan vexsmt.Plan) (*vexsmt.ResultSet, error) {
	// Resolve through a scratch service: same vocabulary, same validation,
	// same dedup and ordering a single-process run would use.
	scratch, err := vexsmt.New(vexsmt.WithScale(c.cfg.Scale), vexsmt.WithSeed(c.cfg.Seed))
	if err != nil {
		return nil, err
	}
	cells, err := scratch.PlanCells(plan)
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		rs := &vexsmt.ResultSet{Meta: scratch.Meta()}
		rs.Canonicalize()
		return rs, nil
	}
	shards, err := Partitioner{Shards: c.cfg.Shards}.Partition(cells)
	if err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &runState{
		coord:    c,
		perShard: make([]atomic.Int64, len(shards)),
		inflight: make([]atomic.Int64, len(c.backends)),
		total:    len(cells),
		shards:   len(shards),
	}
	results := make([]*vexsmt.ResultSet, len(shards))
	errs := make([]error, len(shards))
	conc := c.cfg.Concurrency
	if conc == 0 {
		conc = c.autoConcurrency(runCtx, len(shards))
		c.logf("auto concurrency: %d shard(s) in flight over %d backend(s)", conc, len(c.backends))
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-runCtx.Done():
				errs[i] = runCtx.Err()
				return
			}
			results[i], errs[i] = c.runShard(runCtx, i, shards[i], scratch.Meta().Techniques, st)
			if errs[i] != nil {
				cancel() // first shard failure aborts the rest
				return
			}
			st.shardDone()
		}(i)
	}
	wg.Wait()

	// Report the root cause, not the collateral cancellations it caused —
	// unless the caller's own context ended, which always wins.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	merged, err := results[0].Merge(results[1:]...)
	if err != nil {
		return nil, err
	}
	if len(merged.Cells) != len(cells) {
		return nil, fmt.Errorf("shard: merged %d cells but the plan has %d — a backend returned an incomplete shard",
			len(merged.Cells), len(cells))
	}
	return merged, nil
}

// runShard runs one shard with retry and failover: every attempt asks
// placement for the healthiest backend that has not yet failed this shard,
// and a retry discards the failed attempt's progress so the aggregate
// count never double-counts a cell.
func (c *Coordinator) runShard(ctx context.Context, idx int, cells []vexsmt.CellSpec, techniques string, st *runState) (*vexsmt.ResultSet, error) {
	failed := make(map[int]bool)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			st.retry(idx)
			// Back off briefly before failing over: a backend that 503'd on
			// admission frees a slot in well under a second, and immediate
			// re-submission would just burn the remaining attempts.
			select {
			case <-time.After(retryBackoff(attempt)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		bi, err := c.pick(ctx, st, failed)
		if err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		b := c.backends[bi]
		c.logf("shard %d/%d: %d cells on %s (attempt %d)", idx+1, st.shards, len(cells), b.Name(), attempt+1)
		rs, err := b.Run(ctx, Job{
			Cells:      cells,
			Scale:      c.cfg.Scale,
			Seed:       c.cfg.Seed,
			Techniques: techniques,
			Progress: func(vexsmt.CellResult) {
				st.cellDone(idx)
			},
		})
		st.inflight[bi].Add(-1)
		if err == nil {
			return rs, nil
		}
		if ctx.Err() != nil {
			// The caller (or a sibling shard's failure) cancelled the run;
			// that is not this backend's fault and retrying is pointless.
			return nil, ctx.Err()
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			// Deterministic simulation failure: every backend would
			// reproduce it, so don't blame this one or re-simulate.
			return nil, err
		}
		c.logf("shard %d/%d: backend %s failed: %v", idx+1, st.shards, b.Name(), err)
		failed[bi] = true
		lastErr = err
	}
	return nil, fmt.Errorf("shard: shard %d/%d gave up after %d attempt(s): %w",
		idx+1, st.shards, c.cfg.Retries+1, lastErr)
}

// retryBackoff is the wait before failover attempt n (1-based): 250ms
// doubling per attempt, capped at 2s.
func retryBackoff(attempt int) time.Duration {
	d := 250 * time.Millisecond << (attempt - 1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// autoConcurrency sizes the shard window when Config.Concurrency is
// unset: the sum of the backends' advertised capacities (counting 1 for a
// backend whose probe fails), clamped to at least one per backend and at
// most one per shard. Extra shards on one big backend thus actually run
// concurrently — `-k 4` against a single four-slot daemon overlaps all
// four shards instead of serializing them.
func (c *Coordinator) autoConcurrency(ctx context.Context, shards int) int {
	total := 0
	for _, r := range c.probeAll(ctx) {
		free := r.h.Capacity - r.h.Running
		if r.err != nil || free < 1 {
			free = 1 // unknown or saturated: still count one queued shard
		}
		total += free
	}
	if total < len(c.backends) {
		total = len(c.backends)
	}
	if total > shards {
		total = shards
	}
	if total < 1 {
		total = 1
	}
	return total
}

// probeResult is one backend's health probe outcome.
type probeResult struct {
	h   Health
	err error
}

// probeAll health-checks every backend concurrently (3s timeout each), so
// one unreachable backend costs a single probe round-trip, not a
// serialized one per backend.
func (c *Coordinator) probeAll(ctx context.Context) []probeResult {
	out := make([]probeResult, len(c.backends))
	var wg sync.WaitGroup
	for i, b := range c.backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			hctx, cancel := context.WithTimeout(ctx, 3*time.Second)
			out[i].h, out[i].err = b.Health(hctx)
			cancel()
		}(i, b)
	}
	wg.Wait()
	return out
}

// pick chooses the backend with the most free capacity and reserves a
// slot on it (st.inflight), preferring backends that have not failed the
// current shard. Free capacity is the health probe's capacity minus
// running, further discounted by shards this coordinator has placed there
// but that the probe may not reflect yet (a plan just submitted hasn't
// registered remotely). Probe-and-reserve runs under st.placeMu so
// concurrent shards cannot all observe the same free backend and pile
// onto it while the others idle; the caller releases the slot when the
// backend's Run returns. Backends whose probe errors or that speak a
// foreign schema version are skipped. When every healthy backend is
// excluded, the exclusions are forgiven — a backend that failed once may
// have recovered, and trying it again beats giving up. Ties resolve to
// the lowest index, keeping placement deterministic for equal health.
func (c *Coordinator) pick(ctx context.Context, st *runState, exclude map[int]bool) (int, error) {
	st.placeMu.Lock()
	defer st.placeMu.Unlock()
	probes := c.probeAll(ctx)
	choose := func(skipExcluded bool) int {
		best, bestFree := -1, 0
		for i, r := range probes {
			if skipExcluded && exclude[i] {
				continue
			}
			if r.err != nil {
				c.logf("placement: %s unhealthy: %v", c.backends[i].Name(), r.err)
				continue
			}
			if r.h.SchemaVersion != 0 && r.h.SchemaVersion != vexsmt.SchemaVersion {
				c.logf("placement: %s speaks schema v%d, want v%d",
					c.backends[i].Name(), r.h.SchemaVersion, vexsmt.SchemaVersion)
				continue
			}
			free := r.h.Capacity - r.h.Running - int(st.inflight[i].Load())
			if best < 0 || free > bestFree {
				best, bestFree = i, free
			}
		}
		return best
	}
	best := choose(true)
	if best < 0 && len(exclude) > 0 {
		best = choose(false)
	}
	if best < 0 {
		return 0, fmt.Errorf("shard: no healthy backend among %d", len(c.backends))
	}
	st.inflight[best].Add(1)
	return best, nil
}

// runState aggregates live progress across shard goroutines. Per-shard
// cell counts are kept separately so a retried shard's discarded attempt
// can be subtracted back out of the aggregate.
type runState struct {
	coord    *Coordinator
	perShard []atomic.Int64
	inflight []atomic.Int64 // shards currently placed on each backend
	placeMu  sync.Mutex     // serializes probe-and-reserve in pick
	total    int
	shards   int

	shardsDone atomic.Int64
	retries    atomic.Int64

	mu sync.Mutex // serializes OnProgress
}

func (st *runState) notify() {
	if st.coord.cfg.OnProgress == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	done := 0
	for i := range st.perShard {
		done += int(st.perShard[i].Load())
	}
	st.coord.cfg.OnProgress(Progress{
		CellsDone:   done,
		CellsTotal:  st.total,
		ShardsDone:  int(st.shardsDone.Load()),
		ShardsTotal: st.shards,
		Retries:     int(st.retries.Load()),
	})
}

func (st *runState) cellDone(shard int) {
	st.perShard[shard].Add(1)
	st.notify()
}

func (st *runState) retry(shard int) {
	st.perShard[shard].Store(0)
	st.retries.Add(1)
	st.notify()
}

func (st *runState) shardDone() {
	st.shardsDone.Add(1)
	st.notify()
}

package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/resilience"
	"vexsmt/pkg/vexsmt/sched"
)

// Progress is a live snapshot of a coordinated run, emitted once per
// delivered cell. CacheHits/CacheMisses count delivered cells by whether
// a backend recalled them from its content-addressed result cache; on a
// fully warm cache CacheHits ends equal to CellsTotal and no simulator
// ran anywhere.
type Progress struct {
	CellsDone   int // cells with a final outcome
	CellsTotal  int // unique cells in the resolved plan
	Retries     int // cell attempts beyond the first, across the run
	Stolen      int // cells executed by a backend other than their initial assignment
	CacheHits   int // delivered cells recalled from a result cache
	CacheMisses int // delivered cells that were simulated
}

// Config parameterizes a Coordinator. The zero value of every field has a
// sensible default except Seed, which is taken literally (seed 0 is a
// valid experiment).
type Config struct {
	// Scale is the scale divisor every backend runs at; 0 means 100, the
	// Service default.
	Scale int64
	// Seed is the base seed every backend runs under, used as-is.
	Seed uint64
	// Retries is the number of extra attempts a cell gets after a backend
	// failure, each on a backend that has not yet failed it. 0 means 2;
	// negative disables retry.
	Retries int
	// CacheOff asks every backend to bypass its result cache for this
	// run's cells (forwarded as cache=off on remote submissions).
	CacheOff bool
	// Policy shapes the run's failure handling: the post-failure backoff
	// (with deterministic jitter) and the consecutive-failure circuit
	// breaker the cell scheduler applies per backend. Zero fields take
	// resilience.Default()'s values, which match the scheduler's
	// historical hardcoded behavior.
	Policy resilience.Policy
	// LocalFallback degrades Collect to in-process execution when no
	// backend is healthy (source empty, every probe failed, or a foreign
	// schema everywhere) instead of failing the run. The fallback runs
	// the same plan at the same seed and scale through the same resolve
	// path, so its output is byte-identical to what the fleet would have
	// produced — slower, never different.
	LocalFallback bool
	// OnProgress, when non-nil, observes run progress. Calls are
	// serialized.
	OnProgress func(Progress)
	// Logf, when non-nil, receives placement, steal, retry and failure
	// events.
	Logf func(format string, args ...any)
}

// Source yields the backends a run should consider. A static deployment
// is a fixed list; a fleet deployment is a registry lookup, so the
// member set is re-resolved at every Collect and daemons that joined or
// left between sweeps are picked up without rebuilding the Coordinator.
// Backends resolves against ctx and may be called concurrently.
type Source interface {
	Backends(ctx context.Context) ([]Backend, error)
}

// staticSource is the fixed-list Source behind New.
type staticSource []Backend

func (s staticSource) Backends(context.Context) ([]Backend, error) { return s, nil }

// Coordinator schedules a plan's cells over backends and assembles the
// results. It holds no per-run state: one Coordinator may serve any
// number of concurrent Collects. Scheduling is cell-level (see
// pkg/vexsmt/sched): there is no shard partitioning step, so a slow or
// dead backend sheds individual queued cells to idle backends instead of
// stalling a whole pre-assigned shard.
type Coordinator struct {
	cfg    Config
	source Source
}

// New builds a Coordinator over a fixed set of one or more backends.
func New(cfg Config, backends ...Backend) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one backend")
	}
	return NewFromSource(cfg, staticSource(backends))
}

// NewFromSource builds a Coordinator whose backend set is re-resolved
// from src at the start of every Collect. Membership is fixed for the
// duration of one run (a mid-sweep death is handled by retry/steal, a
// mid-sweep join is picked up by the next run).
func NewFromSource(cfg Config, src Source) (*Coordinator, error) {
	if src == nil {
		return nil, fmt.Errorf("shard: coordinator needs a backend source")
	}
	if cfg.Scale == 0 {
		cfg.Scale = 100
	}
	if cfg.Scale < 1 {
		return nil, fmt.Errorf("shard: scale divisor %d < 1", cfg.Scale)
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 2
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	return &Coordinator{cfg: cfg, source: src}, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// cellBackend adapts a shard.Backend to the cell scheduler: every item is
// one grid cell, submitted as a one-cell job.
type cellBackend struct {
	b     Backend
	slots int
	job   Job // template: Cells is filled per item
}

func (cb *cellBackend) Name() string { return cb.b.Name() }
func (cb *cellBackend) Slots() int   { return cb.slots }

func (cb *cellBackend) Run(ctx context.Context, spec vexsmt.CellSpec) (vexsmt.CellResult, error) {
	job := cb.job
	job.Cells = []vexsmt.CellSpec{spec}
	rs, err := cb.b.Run(ctx, job)
	if err != nil {
		return vexsmt.CellResult{}, err // Permanent markers pass through untouched
	}
	// Count and identity are both protocol checks (this is what the old
	// merge's duplicate-conflict detection guarded): a backend answering a
	// one-cell job with the wrong cell must not slip into the result set
	// as a silent duplicate-plus-gap. Protocol violations are the
	// backend's fault, so they stay retryable elsewhere.
	if len(rs.Cells) != 1 {
		return vexsmt.CellResult{}, fmt.Errorf("shard: %s returned %d cells for a one-cell job",
			cb.b.Name(), len(rs.Cells))
	}
	got := rs.Cells[0]
	if got.Mix != spec.Mix || got.Technique != spec.Technique || got.Threads != spec.Threads {
		return vexsmt.CellResult{}, fmt.Errorf("shard: %s returned cell %s/%s/%dT for job %s/%s/%dT",
			cb.b.Name(), got.Mix, got.Technique, got.Threads, spec.Mix, spec.Technique, spec.Threads)
	}
	return got, nil
}

// Collect resolves plan at the coordinator's seed and scale and schedules
// its cells over the healthy backends — bounded per-backend concurrency
// from /healthz capacity, work stealing for stragglers, per-cell retry
// and failover — returning the canonical ResultSet: byte-identical (after
// canonical encoding) to a single-process Service.Collect of the same
// plan, seed and scale. Cancelling ctx aborts every in-flight cell;
// remote cells are cancelled with a DELETE.
func (c *Coordinator) Collect(ctx context.Context, plan vexsmt.Plan) (*vexsmt.ResultSet, error) {
	// Resolve through a scratch service: same vocabulary, same validation,
	// same dedup and ordering a single-process run would use.
	scratch, err := vexsmt.New(vexsmt.WithScale(c.cfg.Scale), vexsmt.WithSeed(c.cfg.Seed))
	if err != nil {
		return nil, err
	}
	cells, err := scratch.PlanCells(plan)
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		rs := &vexsmt.ResultSet{Meta: scratch.Meta()}
		rs.Canonicalize()
		return rs, nil
	}

	backends, err := c.healthyBackends(ctx)
	if err != nil {
		if c.cfg.LocalFallback {
			// Graceful degradation: an unhealthy fleet costs speed, not the
			// run. The scratch service already carries the run's seed and
			// scale, so the local execution is byte-identical to the
			// distributed one.
			c.logf("placement: %v; falling back to local execution", err)
			rs, ferr := scratch.Collect(ctx, plan)
			if ferr != nil {
				return nil, ferr
			}
			rs.Canonicalize()
			return rs, nil
		}
		return nil, err
	}
	for i := range backends {
		backends[i].job = Job{
			Scale:      c.cfg.Scale,
			Seed:       c.cfg.Seed,
			Techniques: scratch.Meta().Techniques,
			CacheOff:   c.cfg.CacheOff,
		}
	}
	sbs := make([]sched.Backend[vexsmt.CellSpec, vexsmt.CellResult], len(backends))
	for i := range backends {
		sbs[i] = backends[i]
	}

	// A cell failure aborts the run (Collect returns all or nothing), so
	// the remaining cells are cancelled as soon as one delivers an error.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := sched.Run(runCtx, cells, sbs, sched.Options{
		Retries:          c.cfg.Retries,
		Logf:             c.cfg.Logf,
		Backoff:          c.cfg.Policy.Backoff,
		BreakerThreshold: c.cfg.Policy.Breaker(),
	})
	if err != nil {
		return nil, err
	}

	rs := &vexsmt.ResultSet{Meta: scratch.Meta()}
	var p Progress
	p.CellsTotal = len(cells)
	var firstErr error
	for r := range ch {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			cancel() // first failure aborts the rest; keep draining
			continue
		}
		rs.Cells = append(rs.Cells, r.Value)
		p.CellsDone++
		p.Retries += r.Attempts - 1
		if r.Stolen {
			p.Stolen++
		}
		if r.Value.Cached {
			p.CacheHits++
		} else {
			p.CacheMisses++
		}
		if c.cfg.OnProgress != nil {
			c.cfg.OnProgress(p)
		}
	}

	// Report the caller's own cancellation over anything it caused.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if len(rs.Cells) != len(cells) {
		return nil, fmt.Errorf("shard: collected %d cells but the plan has %d — a backend dropped results",
			len(rs.Cells), len(cells))
	}
	rs.Canonicalize()
	return rs, nil
}

// healthyBackends resolves the source's current membership, probes every
// backend, and returns a scheduler-ready adapter per healthy one, each
// sized to the backend's free capacity (at least one slot). Backends
// whose probe fails or that speak a foreign schema version are left out
// of the run entirely — they receive no cells.
func (c *Coordinator) healthyBackends(ctx context.Context) ([]*cellBackend, error) {
	backends, err := c.source.Backends(ctx)
	if err != nil {
		return nil, fmt.Errorf("shard: resolving backends: %w", err)
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: backend source yielded no backends")
	}
	probes := c.probeAll(ctx, backends)
	var out []*cellBackend
	for i, r := range probes {
		if r.err != nil {
			c.logf("placement: %s unhealthy: %v", backends[i].Name(), r.err)
			continue
		}
		if r.h.SchemaVersion != 0 && r.h.SchemaVersion != vexsmt.SchemaVersion {
			c.logf("placement: %s speaks schema v%d, want v%d",
				backends[i].Name(), r.h.SchemaVersion, vexsmt.SchemaVersion)
			continue
		}
		slots := r.h.Capacity - r.h.Running
		if slots < 1 {
			slots = 1 // saturated or unknown: still queue one cell at a time
		}
		c.logf("placement: %s healthy, %d slot(s)", backends[i].Name(), slots)
		out = append(out, &cellBackend{b: backends[i], slots: slots})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: no healthy backend among %d", len(backends))
	}
	return out, nil
}

// probeResult is one backend's health probe outcome.
type probeResult struct {
	h   Health
	err error
}

// probeCeiling bounds one backend's health probe during placement: one
// second of slack above the per-backend probe policy (resilience.Probe,
// which HTTP backends clamp to themselves), so a backend's own bound
// fires first and the error is attributed to the backend, with the
// ceiling as the net under backends that carry no bound of their own.
var probeCeiling = resilience.Probe().AttemptTimeout + time.Second

// probeAll health-checks every backend concurrently (probeCeiling each,
// on top of any per-backend probe timeout such as HTTP's
// WithHealthTimeout), so one unreachable backend costs a single probe
// round-trip, not a serialized one per backend.
func (c *Coordinator) probeAll(ctx context.Context, backends []Backend) []probeResult {
	out := make([]probeResult, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			hctx, cancel := context.WithTimeout(ctx, probeCeiling)
			out[i].h, out[i].err = b.Health(hctx)
			cancel()
		}(i, b)
	}
	wg.Wait()
	return out
}

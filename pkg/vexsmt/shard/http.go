package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/resilience"
	"vexsmt/pkg/vexsmt/sched"
)

// HTTP is the remote backend: it runs jobs on a vexsmtd daemon over its
// /v1 control plane — POST the job's cells as a plan, follow the NDJSON
// results stream, and DELETE the plan on the way out (cancelling it if
// still running, evicting it if terminal). Context cancellation therefore
// reaches the remote simulation within one timeslice-bounded poll.
type HTTP struct {
	base          string
	client        *http.Client
	healthTimeout time.Duration
}

// defaultHealthTimeout bounds a /healthz probe: health checks are a
// placement signal, and a daemon that cannot answer one quickly should be
// left out of the round rather than stall it. The value is the fleet-wide
// probe policy's attempt budget (resilience.Probe).
var defaultHealthTimeout = resilience.Probe().AttemptTimeout

// HTTPOption configures an HTTP backend.
type HTTPOption func(*HTTP)

// WithClient substitutes the http.Client used for every request (for
// custom transports or timeouts). Clients must not set an overall request
// timeout shorter than a job's runtime: the results stream stays open
// for the whole simulation.
func WithClient(c *http.Client) HTTPOption {
	return func(h *HTTP) { h.client = c }
}

// WithHealthTimeout bounds each Health probe. Zero or negative restores
// the default (2s). Job submission and result streaming are unaffected —
// only the /healthz round-trip is clamped.
func WithHealthTimeout(d time.Duration) HTTPOption {
	return func(h *HTTP) {
		if d > 0 {
			h.healthTimeout = d
		} else {
			h.healthTimeout = defaultHealthTimeout
		}
	}
}

// NewHTTP builds a backend for the vexsmtd at baseURL (e.g.
// "http://host:8080").
func NewHTTP(baseURL string, opts ...HTTPOption) (*HTTP, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("shard: backend url %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("shard: backend url %q: need scheme and host", baseURL)
	}
	h := &HTTP{
		base:          strings.TrimRight(baseURL, "/"),
		client:        http.DefaultClient,
		healthTimeout: defaultHealthTimeout,
	}
	for _, o := range opts {
		o(h)
	}
	return h, nil
}

// Name implements Backend: the base URL identifies the daemon.
func (h *HTTP) Name() string { return h.base }

// Health implements Backend via GET /healthz, bounded by the backend's
// health timeout (WithHealthTimeout) on top of whatever deadline ctx
// already carries.
func (h *HTTP) Health(ctx context.Context) (Health, error) {
	ctx, cancel := context.WithTimeout(ctx, h.healthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return Health{}, fmt.Errorf("shard: %s: healthz: %w", h.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, fmt.Errorf("shard: %s: healthz: status %d", h.base, resp.StatusCode)
	}
	var out struct {
		Capacity      int    `json:"capacity"`
		Running       int    `json:"running"`
		Scale         int64  `json:"scale"`
		Seed          uint64 `json:"seed"`
		SchemaVersion int    `json:"schema_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Health{}, fmt.Errorf("shard: %s: healthz: %w", h.base, err)
	}
	return Health{
		Capacity:      out.Capacity,
		Running:       out.Running,
		Scale:         out.Scale,
		Seed:          out.Seed,
		SchemaVersion: out.SchemaVersion,
	}, nil
}

// Run implements Backend: submit the job's cells as a plan pinned to the
// job's seed and scale, stream its results, and always DELETE the plan on
// return — which cancels the remote simulation when Run is abandoned
// mid-stream and frees the daemon's memory when it completed.
func (h *HTTP) Run(ctx context.Context, job Job) (*vexsmt.ResultSet, error) {
	submit := struct {
		Cells []vexsmt.CellSpec `json:"cells"`
		Scale int64             `json:"scale"`
		Seed  uint64            `json:"seed"`
		Cache string            `json:"cache,omitempty"`
	}{Cells: job.Cells, Scale: job.Scale, Seed: job.Seed}
	if job.CacheOff {
		submit.Cache = "off"
	}
	body, err := json.Marshal(submit)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/v1/plans", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard: %s: submit: %w", h.base, err)
	}
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		return nil, fmt.Errorf("shard: %s: submit: status %d: %s",
			h.base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var sub struct {
		ID    string         `json:"id"`
		Cells int            `json:"cells"`
		Meta  vexsmt.RunMeta `json:"meta"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		// The plan was accepted and is running; cancel it via the header
		// copy of the id rather than orphaning it on the daemon.
		h.deletePlan(resp.Header.Get("X-Vexsmt-Plan-Id"))
		return nil, fmt.Errorf("shard: %s: submit response: %w", h.base, err)
	}
	// Guard against a daemon that ignored the overrides or disagrees about
	// the grid: running a job at a foreign seed, scale or technique set
	// would only be caught downstream after wasted simulation.
	if sub.Meta.SchemaVersion != vexsmt.SchemaVersion ||
		sub.Meta.Seed != job.Seed || sub.Meta.Scale != job.Scale ||
		(job.Techniques != "" && sub.Meta.Techniques != job.Techniques) {
		h.deletePlan(sub.ID)
		return nil, fmt.Errorf("shard: %s: daemon accepted plan with meta %+v; job wants schema v%d seed %d scale 1/%d techniques %q",
			h.base, sub.Meta, vexsmt.SchemaVersion, job.Seed, job.Scale, job.Techniques)
	}
	defer h.deletePlan(sub.ID)

	sreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		h.base+"/v1/results?stream=1&id="+url.QueryEscape(sub.ID), nil)
	if err != nil {
		return nil, err
	}
	sresp, err := h.client.Do(sreq)
	if err != nil {
		return nil, fmt.Errorf("shard: %s: stream: %w", h.base, err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard: %s: stream: status %d", h.base, sresp.StatusCode)
	}

	rs := &vexsmt.ResultSet{Meta: sub.Meta}
	status, jobErr, err := DecodeResultStream(sresp.Body, func(cell vexsmt.CellResult) {
		if cell.Err != "" {
			return // the terminal status line will carry the failure
		}
		rs.Cells = append(rs.Cells, cell)
		if job.Progress != nil {
			job.Progress(cell)
		}
	})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr // deferred DELETE cancels the remote plan
	}
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %w", h.base, err)
	}
	switch status {
	case "done":
	case "":
		return nil, fmt.Errorf("shard: %s: stream ended without terminal status (daemon died?)", h.base)
	case "failed":
		// A failed plan is a deterministic simulation failure (cell seeds
		// travel with the cells); rerunning it elsewhere reproduces it.
		return nil, sched.Permanent(fmt.Errorf("shard: %s: plan failed: %s", h.base, jobErr))
	default:
		return nil, fmt.Errorf("shard: %s: plan %s: %s", h.base, status, jobErr)
	}
	rs.Sort()
	return rs, nil
}

// deletePlan cancels/evicts a plan with a fresh context, so cleanup still
// reaches the daemon after the run context was cancelled — that is exactly
// the path that propagates a coordinator's cancellation as a DELETE.
func (h *HTTP) deletePlan(id string) {
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		h.base+"/v1/plans?id="+url.QueryEscape(id), nil)
	if err != nil {
		return
	}
	if resp, err := h.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

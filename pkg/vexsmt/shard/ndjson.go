package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"vexsmt/pkg/vexsmt"
)

// ndLine decodes one NDJSON line of a vexsmtd /v1/results stream, which
// is either a cell (mix/technique/... fields) or the terminal status
// object. The outer Status/ErrMsg fields shadow the embedded CellResult's
// "error" tag (shallower depth wins in encoding/json), so one decode
// handles both shapes; DecodeResultStream copies ErrMsg back into the
// cell for cell lines.
type ndLine struct {
	vexsmt.CellResult
	Status string `json:"status"`
	ErrMsg string `json:"error"`
}

// DecodeResultStream reads a vexsmtd NDJSON results stream: zero or more
// cell lines followed by one terminal status object. Every cell line is
// passed to onCell (with CellResult.Err populated from the line's error
// field); reading stops at the terminal line, whose status and error are
// returned. A malformed line is an error — the stream is a machine
// protocol, and resynchronizing on garbage would silently drop cells. A
// stream that ends before a terminal line returns status "" and no
// error; the caller decides whether that means a dead peer.
//
// This is the single NDJSON decoder of the distributed layer — the HTTP
// cell backend and any other /v1/results consumer share it, so the
// protocol is parsed in exactly one place.
func DecodeResultStream(r io.Reader, onCell func(vexsmt.CellResult)) (status, errMsg string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l ndLine
		if err := json.Unmarshal(line, &l); err != nil {
			// No package prefix: callers wrap with their own ("shard:
			// <backend>: ...") and a doubled prefix reads badly.
			return "", "", fmt.Errorf("bad stream line %q: %w", line, err)
		}
		if l.Status != "" {
			return l.Status, l.ErrMsg, nil
		}
		cell := l.CellResult
		cell.Err = l.ErrMsg
		if onCell != nil {
			onCell(cell)
		}
	}
	if err := sc.Err(); err != nil {
		return "", "", fmt.Errorf("stream: %w", err)
	}
	return "", "", nil
}

package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/sched"
)

// Local is the in-process backend: it runs jobs directly on a
// *vexsmt.Service. Jobs sharing one Local (or several Locals wrapping
// one Service) share the service's memoization and result cache, which is
// what makes the determinism tests cheap — and it is also the
// single-machine way to use the coordinator without any daemon.
type Local struct {
	name    string
	svc     *vexsmt.Service
	running atomic.Int64
}

// NewLocal wraps svc as a backend. The name only labels logs and errors.
func NewLocal(name string, svc *vexsmt.Service) *Local {
	return &Local{name: name, svc: svc}
}

// Name implements Backend.
func (l *Local) Name() string { return l.name }

// Health reports the wrapped service's configuration; capacity is the
// service's worker-pool bound and running counts jobs currently inside
// Run.
func (l *Local) Health(ctx context.Context) (Health, error) {
	return Health{
		Capacity:      l.svc.Parallelism(),
		Running:       int(l.running.Load()),
		Scale:         l.svc.Scale(),
		Seed:          l.svc.Seed(),
		SchemaVersion: vexsmt.SchemaVersion,
	}, nil
}

// Run implements Backend by streaming the job's cells off the wrapped
// service. A service is immutable after construction, so a job asking for
// a different seed or scale is an error, not a silent reconfiguration;
// Job.CacheOff is ignored for the same reason (the service's cache policy
// is fixed — build the service without WithCache to run uncached).
func (l *Local) Run(ctx context.Context, job Job) (*vexsmt.ResultSet, error) {
	if job.Scale != l.svc.Scale() || job.Seed != l.svc.Seed() {
		return nil, fmt.Errorf("shard: backend %s runs 1/%d scale seed %d; job wants 1/%d scale seed %d",
			l.name, l.svc.Scale(), l.svc.Seed(), job.Scale, job.Seed)
	}
	if meta := l.svc.Meta(); job.Techniques != "" && meta.Techniques != job.Techniques {
		return nil, fmt.Errorf("shard: backend %s technique set %q; job wants %q",
			l.name, meta.Techniques, job.Techniques)
	}
	l.running.Add(1)
	defer l.running.Add(-1)

	ch, err := l.svc.Stream(ctx, vexsmt.Plan{Cells: job.Cells})
	if err != nil {
		return nil, err
	}
	rs := &vexsmt.ResultSet{Meta: l.svc.Meta()}
	var failed *vexsmt.CellResult
	for cell := range ch {
		if cell.Err != "" {
			// A cancellation abort is not a result; a real failure is
			// remembered while the pool drains.
			if ctx.Err() == nil && failed == nil {
				c := cell
				failed = &c
			}
			continue
		}
		rs.Cells = append(rs.Cells, cell)
		if job.Progress != nil {
			job.Progress(cell)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if failed != nil {
		// Cells fail deterministically (their seed travels with them), so
		// this failure would reproduce on any backend.
		return nil, sched.Permanent(fmt.Errorf("shard: backend %s: %s/%s/%dT: %s",
			l.name, failed.Mix, failed.Technique, failed.Threads, failed.Err))
	}
	rs.Sort()
	return rs, nil
}

// Package shard executes an experiment grid across multiple backends —
// in-process services or remote vexsmtd daemons — and assembles the
// pieces back into one canonical ResultSet.
//
// The unit of scheduling is a single grid cell, not a pre-partitioned
// shard: the Coordinator resolves a Plan's cells (Service.PlanCells) and
// hands them to the cell scheduler in pkg/vexsmt/sched, which deals them
// across the healthy backends' queues, lets idle backends steal queued
// cells from stragglers, and retries transiently failed cells on backends
// that have not yet failed them. Because every cell derives its seed from
// workload identity alone and cached results are byte-identical to
// simulated ones, none of that — placement, stealing, failover, cache
// hits — can change results: a Coordinator.Collect is byte-identical
// (after canonical encoding) to a single-process Service.Collect of the
// same plan, seed and scale.
package shard

import (
	"context"

	"vexsmt/pkg/vexsmt"
)

// Health is a backend's placement signal: how much simulation capacity it
// has, how much is in use, the simulation defaults it would apply, and the
// results schema it speaks. Coordinators size a backend's worker count
// from its free capacity and skip backends speaking a foreign schema.
type Health struct {
	Capacity      int
	Running       int
	Scale         int64
	Seed          uint64
	SchemaVersion int
}

// Job is one unit of backend work: the cells to simulate (one, under the
// cell-scheduling coordinator, but the Backend contract allows any
// number) and the seed/scale every backend must run them under.
// Techniques, when non-empty, is the comma-joined technique set the
// results' meta must carry (RunMeta.Techniques) — backends check it up
// front so a mismatch fails in milliseconds instead of after simulating.
// CacheOff asks the backend to bypass its result cache for this job
// (remote backends forward it as the submit request's cache=off; the
// in-process backend's cache policy is fixed at service construction and
// the flag is ignored there). Progress, when non-nil, is called once per
// completed cell, from the goroutine running the job — useful to callers
// driving a Backend directly with multi-cell jobs; the cell-scheduling
// Coordinator leaves it nil and derives progress from deliveries instead.
type Job struct {
	Cells      []vexsmt.CellSpec
	Scale      int64
	Seed       uint64
	Techniques string
	CacheOff   bool
	Progress   func(vexsmt.CellResult)
}

// Backend runs jobs. Implementations must honor the job's seed and scale
// exactly (erroring out rather than substituting their own), return sorted
// ResultSets whose meta matches what a Service at that seed/scale would
// stamp, and abort promptly when ctx is cancelled — the HTTP backend, for
// example, propagates cancellation as a DELETE to its vexsmtd. An error
// wrapped with sched.Permanent marks a deterministic simulation failure
// that every backend would reproduce; any other error is the backend's
// fault and the scheduler retries the job elsewhere.
type Backend interface {
	// Name identifies the backend in logs and errors.
	Name() string
	// Health reports the backend's placement signal.
	Health(ctx context.Context) (Health, error)
	// Run simulates one job to completion and returns its results.
	Run(ctx context.Context, job Job) (*vexsmt.ResultSet, error)
}

// Package shard executes an experiment grid across multiple backends —
// in-process services or remote vexsmtd daemons — and merges the pieces
// back into one canonical ResultSet.
//
// The pipeline is Partitioner → Backend → Merge: a resolved Plan's cells
// (Service.PlanCells) are split into K balanced deterministic shards, each
// shard runs on a Backend chosen by /healthz-style placement with retry
// and failover, and the per-shard ResultSets merge under the strict
// compatibility checks of (*vexsmt.ResultSet).Merge. Because every cell
// derives its seed from workload identity alone, shard placement cannot
// change results: a Coordinator.Collect is byte-identical (after canonical
// encoding) to a single-process Service.Collect of the same plan, seed and
// scale, no matter how many shards, backends, retries or failovers the run
// went through.
package shard

import (
	"context"
	"fmt"

	"vexsmt/pkg/vexsmt"
)

// Health is a backend's placement signal: how much simulation capacity it
// has, how much is in use, the simulation defaults it would apply, and the
// results schema it speaks. Coordinators prefer the backend with the most
// free capacity and skip backends speaking a foreign schema.
type Health struct {
	Capacity      int
	Running       int
	Scale         int64
	Seed          uint64
	SchemaVersion int
}

// Job is one shard of a coordinated run: the cells to simulate and the
// seed/scale every backend must run them under. Techniques, when
// non-empty, is the comma-joined technique set the results' meta must
// carry (RunMeta.Techniques) — backends check it up front so a mismatch
// fails in milliseconds instead of after the shard has simulated and the
// merge rejects it. Progress, when non-nil, is called once per completed
// cell, from the goroutine running the shard.
type Job struct {
	Cells      []vexsmt.CellSpec
	Scale      int64
	Seed       uint64
	Techniques string
	Progress   func(vexsmt.CellResult)
}

// Backend runs shards. Implementations must honor the job's seed and scale
// exactly (erroring out rather than substituting their own), return sorted
// ResultSets whose meta matches what a Service at that seed/scale would
// stamp, and abort promptly when ctx is cancelled — the HTTP backend, for
// example, propagates cancellation as a DELETE to its vexsmtd.
type Backend interface {
	// Name identifies the backend in logs and errors.
	Name() string
	// Health reports the backend's placement signal.
	Health(ctx context.Context) (Health, error)
	// Run simulates one shard to completion and returns its results. An
	// error means the shard produced nothing usable and may be retried on
	// another backend.
	Run(ctx context.Context, job Job) (*vexsmt.ResultSet, error)
}

// permanentError marks a shard failure every backend would reproduce — a
// deterministic simulation failure, not a backend fault — so coordinators
// stop retrying instead of re-simulating the shard elsewhere for an
// identical outcome.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Partitioner splits a cell list into at most Shards balanced parts.
type Partitioner struct {
	Shards int
}

// Partition deals cells round-robin into Shards parts: deterministic in
// the input order, balanced to within one cell, and — because the grid
// lists heavy high-thread cells contiguously — naturally interleaving
// expensive and cheap cells across shards. Fewer parts come back when
// there are fewer cells than shards; no part is ever empty.
func (p Partitioner) Partition(cells []vexsmt.CellSpec) ([][]vexsmt.CellSpec, error) {
	if p.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", p.Shards)
	}
	k := p.Shards
	if k > len(cells) {
		k = len(cells)
	}
	if k == 0 {
		return nil, nil
	}
	out := make([][]vexsmt.CellSpec, k)
	for i, c := range cells {
		out[i%k] = append(out[i%k], c)
	}
	return out, nil
}

package shard_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/sched"
	"vexsmt/pkg/vexsmt/shard"
)

// fakeDaemon serves just enough of the vexsmtd /v1 protocol for an HTTP
// backend to submit a plan and follow its stream; the stream body is
// whatever the test scripts, so torn and terminal-less streams are easy
// to stage.
func fakeDaemon(t *testing.T, stream func(w http.ResponseWriter)) *httptest.Server {
	t.Helper()
	meta := vexsmt.RunMeta{SchemaVersion: vexsmt.SchemaVersion, Seed: 1, Scale: testScale}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plans", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": "p1", "cells": 1, "meta": meta})
	})
	mux.HandleFunc("/v1/results", func(w http.ResponseWriter, r *http.Request) {
		stream(w)
	})
	return httptest.NewServer(mux)
}

// TestHTTPRunTornStreamIsRetryable: a daemon that dies mid-stream —
// whether between NDJSON records or halfway through one — must surface a
// retryable error from Run, never a silent partial ResultSet and never a
// Permanent marker (the failure is the daemon's, so the scheduler must be
// free to rerun the cell elsewhere instead of losing it).
func TestHTTPRunTornStreamIsRetryable(t *testing.T) {
	cell := `{"mix":"mmhh","technique":"SMT","threads":2,"seed":7,"ipc":1.5}` + "\n"
	for name, stream := range map[string]func(w http.ResponseWriter){
		"dies-between-records": func(w http.ResponseWriter) {
			fmt.Fprint(w, cell) // complete record, then EOF with no terminal line
		},
		"dies-mid-record": func(w http.ResponseWriter) {
			fmt.Fprint(w, cell+`{"mix":"llll","techni`) // record torn mid-JSON
		},
	} {
		t.Run(name, func(t *testing.T) {
			ts := fakeDaemon(t, stream)
			defer ts.Close()
			b, err := shard.NewHTTP(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			job := shard.Job{
				Cells: []vexsmt.CellSpec{{Mix: "mmhh", Technique: "SMT", Threads: 2}},
				Scale: testScale,
				Seed:  1,
			}
			rs, err := b.Run(context.Background(), job)
			if err == nil {
				t.Fatalf("torn stream returned a ResultSet with %d cells", len(rs.Cells))
			}
			if sched.IsPermanent(err) {
				t.Fatalf("torn stream marked Permanent — the coordinator would not retry: %v", err)
			}
		})
	}
}

// TestWithHealthTimeout: a daemon whose /healthz hangs must fail the
// probe within the configured timeout instead of holding up placement.
func TestWithHealthTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	b, err := shard.NewHTTP(ts.URL, shard.WithHealthTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := b.Health(context.Background()); err == nil {
		t.Fatal("hanging healthz probe reported healthy")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("probe took %v, want ~50ms", elapsed)
	}
}

// fnSource adapts a function to shard.Source.
type fnSource func(ctx context.Context) ([]shard.Backend, error)

func (f fnSource) Backends(ctx context.Context) ([]shard.Backend, error) { return f(ctx) }

// TestCoordinatorResolvesSourcePerCollect: a Source-backed coordinator
// re-reads membership at every run, so backends that join between sweeps
// are used without rebuilding the coordinator — the property the fleet
// registry depends on.
func TestCoordinatorResolvesSourcePerCollect(t *testing.T) {
	svc := testService(t)
	plan := vexsmt.Plan{Figures: []string{"14"}}
	want := collectBaseline(t, svc, plan)

	var resolves atomic.Int64
	members := []shard.Backend{shard.NewLocal("a", svc)}
	src := fnSource(func(context.Context) ([]shard.Backend, error) {
		resolves.Add(1)
		return append([]shard.Backend(nil), members...), nil
	})
	c, err := shard.NewFromSource(shard.Config{Scale: testScale, Seed: 1}, src)
	if err != nil {
		t.Fatal(err)
	}

	for sweep := 0; sweep < 2; sweep++ {
		rs, err := c.Collect(context.Background(), plan)
		if err != nil {
			t.Fatalf("sweep %d: %v", sweep, err)
		}
		if got := encodeCanonical(t, rs); got != want {
			t.Fatalf("sweep %d diverged from single-process baseline", sweep)
		}
		// A member joins between sweeps; the next Collect must see it.
		members = append(members, shard.NewLocal(fmt.Sprintf("b%d", sweep), svc))
	}
	if n := resolves.Load(); n != 2 {
		t.Fatalf("source resolved %d times for 2 sweeps, want 2", n)
	}
}

// TestSourceFailuresSurface: a nil source is a construction error; an
// erroring or empty source fails the run up front.
func TestSourceFailuresSurface(t *testing.T) {
	if _, err := shard.NewFromSource(shard.Config{}, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	plan := vexsmt.Plan{Figures: []string{"14"}}
	for name, src := range map[string]shard.Source{
		"erroring": fnSource(func(context.Context) ([]shard.Backend, error) {
			return nil, fmt.Errorf("registry unreachable")
		}),
		"empty": fnSource(func(context.Context) ([]shard.Backend, error) {
			return nil, nil
		}),
	} {
		t.Run(name, func(t *testing.T) {
			c, err := shard.NewFromSource(shard.Config{Scale: testScale, Seed: 1}, src)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Collect(context.Background(), plan); err == nil {
				t.Fatal("collect succeeded with no backends")
			} else if !strings.Contains(err.Error(), "backend") {
				t.Fatalf("unhelpful error: %v", err)
			}
		})
	}
}

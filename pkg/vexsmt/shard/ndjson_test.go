package shard

import (
	"strings"
	"testing"

	"vexsmt/pkg/vexsmt"
)

func TestDecodeResultStream(t *testing.T) {
	stream := `
{"mix":"mmhh","technique":"SMT","threads":2,"seed":7,"ipc":1.5,"counters":{"cycles":10}}

{"mix":"llll","technique":"CSMT","threads":4,"error":"boom"}
{"status":"done","error":"","completed":2,"cells":2}
{"mix":"after-terminal","technique":"SMT","threads":2}
`
	var cells []vexsmt.CellResult
	status, errMsg, err := DecodeResultStream(strings.NewReader(stream), func(c vexsmt.CellResult) {
		cells = append(cells, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != "done" || errMsg != "" {
		t.Fatalf("status %q err %q", status, errMsg)
	}
	// Blank lines skipped, reading stops at the terminal line.
	if len(cells) != 2 {
		t.Fatalf("%d cells, want 2", len(cells))
	}
	if cells[0].Mix != "mmhh" || cells[0].IPC != 1.5 || cells[0].Counters.Cycles != 10 {
		t.Fatalf("cell 0: %+v", cells[0])
	}
	// The outer error field travels into CellResult.Err.
	if cells[1].Err != "boom" {
		t.Fatalf("cell 1 error %q, want boom", cells[1].Err)
	}
}

func TestDecodeResultStreamMalformedLine(t *testing.T) {
	for name, stream := range map[string]string{
		"not-json":       `{"mix":"mmhh","technique":"SMT","threads":2}` + "\nthis is not json\n",
		"truncated-json": `{"mix":"mmhh","technique":`,
		"wrong-type":     `{"mix":42}`,
	} {
		t.Run(name, func(t *testing.T) {
			calls := 0
			_, _, err := DecodeResultStream(strings.NewReader(stream), func(vexsmt.CellResult) { calls++ })
			if err == nil {
				t.Fatal("malformed line accepted")
			}
			if !strings.Contains(err.Error(), "bad stream line") {
				t.Fatalf("unhelpful error: %v", err)
			}
		})
	}
}

func TestDecodeResultStreamNoTerminal(t *testing.T) {
	// A stream that just stops (daemon died) reports status "" without
	// inventing an error — the caller owns that decision.
	status, _, err := DecodeResultStream(strings.NewReader(
		`{"mix":"mmhh","technique":"SMT","threads":2}`+"\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != "" {
		t.Fatalf("status %q, want empty", status)
	}
	// A failed plan's terminal line carries the failure.
	status, errMsg, err := DecodeResultStream(strings.NewReader(
		`{"status":"failed","error":"cell exploded"}`+"\n"), nil)
	if err != nil || status != "failed" || errMsg != "cell exploded" {
		t.Fatalf("status %q errMsg %q err %v", status, errMsg, err)
	}
}

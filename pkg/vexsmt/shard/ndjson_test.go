package shard

import (
	"errors"
	"io"
	"strings"
	"testing"

	"vexsmt/pkg/vexsmt"
)

func TestDecodeResultStream(t *testing.T) {
	stream := `
{"mix":"mmhh","technique":"SMT","threads":2,"seed":7,"ipc":1.5,"counters":{"cycles":10}}

{"mix":"llll","technique":"CSMT","threads":4,"error":"boom"}
{"status":"done","error":"","completed":2,"cells":2}
{"mix":"after-terminal","technique":"SMT","threads":2}
`
	var cells []vexsmt.CellResult
	status, errMsg, err := DecodeResultStream(strings.NewReader(stream), func(c vexsmt.CellResult) {
		cells = append(cells, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != "done" || errMsg != "" {
		t.Fatalf("status %q err %q", status, errMsg)
	}
	// Blank lines skipped, reading stops at the terminal line.
	if len(cells) != 2 {
		t.Fatalf("%d cells, want 2", len(cells))
	}
	if cells[0].Mix != "mmhh" || cells[0].IPC != 1.5 || cells[0].Counters.Cycles != 10 {
		t.Fatalf("cell 0: %+v", cells[0])
	}
	// The outer error field travels into CellResult.Err.
	if cells[1].Err != "boom" {
		t.Fatalf("cell 1 error %q, want boom", cells[1].Err)
	}
}

func TestDecodeResultStreamMalformedLine(t *testing.T) {
	for name, stream := range map[string]string{
		"not-json":       `{"mix":"mmhh","technique":"SMT","threads":2}` + "\nthis is not json\n",
		"truncated-json": `{"mix":"mmhh","technique":`,
		"wrong-type":     `{"mix":42}`,
	} {
		t.Run(name, func(t *testing.T) {
			calls := 0
			_, _, err := DecodeResultStream(strings.NewReader(stream), func(vexsmt.CellResult) { calls++ })
			if err == nil {
				t.Fatal("malformed line accepted")
			}
			if !strings.Contains(err.Error(), "bad stream line") {
				t.Fatalf("unhelpful error: %v", err)
			}
		})
	}
}

// errAfterReader yields its payload, then fails every subsequent Read —
// the shape of a TCP connection dropping mid-stream.
type errAfterReader struct {
	r   io.Reader
	err error
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, e.err
	}
	return n, err
}

func TestDecodeResultStreamConnectionDropBetweenRecords(t *testing.T) {
	// The connection dies cleanly between two NDJSON records: the cells
	// already read were delivered, but the decode must surface the read
	// error — a caller treating this as a complete stream would silently
	// lose every cell after the drop.
	dropErr := errors.New("connection reset by peer")
	r := &errAfterReader{
		r: strings.NewReader(
			`{"mix":"mmhh","technique":"SMT","threads":2}` + "\n" +
				`{"mix":"llll","technique":"CSMT","threads":4}` + "\n"),
		err: dropErr,
	}
	var cells []vexsmt.CellResult
	status, _, err := DecodeResultStream(r, func(c vexsmt.CellResult) { cells = append(cells, c) })
	if !errors.Is(err, dropErr) {
		t.Fatalf("err %v, want the drop error", err)
	}
	if status != "" {
		t.Fatalf("status %q on a dropped stream, want empty", status)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells delivered before the drop, want 2", len(cells))
	}
}

func TestDecodeResultStreamConnectionDropMidLine(t *testing.T) {
	// The connection dies with a record half-written. The fragment must
	// not be delivered as a cell, and the decode must report an error —
	// either the fragment's parse failure or the read error itself; a
	// clean return would let the caller mistake a torn stream for a
	// complete one. (bufio.Scanner hands the buffered fragment to the
	// split function once the read fails, so the parse failure wins.)
	r := &errAfterReader{
		r: strings.NewReader(
			`{"mix":"mmhh","technique":"SMT","threads":2}` + "\n" +
				`{"mix":"llll","techni`), // truncated mid-record, no newline
		err: errors.New("unexpected EOF"),
	}
	calls := 0
	status, _, err := DecodeResultStream(r, func(vexsmt.CellResult) { calls++ })
	if err == nil {
		t.Fatal("torn stream decoded without error")
	}
	if status != "" {
		t.Fatalf("status %q, want empty", status)
	}
	if calls != 1 {
		t.Fatalf("onCell called %d times, want 1 (the complete record only)", calls)
	}
}

func TestDecodeResultStreamNoTerminal(t *testing.T) {
	// A stream that just stops (daemon died) reports status "" without
	// inventing an error — the caller owns that decision.
	status, _, err := DecodeResultStream(strings.NewReader(
		`{"mix":"mmhh","technique":"SMT","threads":2}`+"\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != "" {
		t.Fatalf("status %q, want empty", status)
	}
	// A failed plan's terminal line carries the failure.
	status, errMsg, err := DecodeResultStream(strings.NewReader(
		`{"status":"failed","error":"cell exploded"}`+"\n"), nil)
	if err != nil || status != "failed" || errMsg != "cell exploded" {
		t.Fatalf("status %q errMsg %q err %v", status, errMsg, err)
	}
}

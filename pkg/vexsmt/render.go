package vexsmt

import (
	"context"
	"fmt"

	"vexsmt/internal/experiments"
	"vexsmt/internal/report"
)

// RenderFigure computes one figure and returns its text rendering — the
// same tables and charts paperbench prints. Grid figures (14, 15, 16)
// read memoized cells where available, so a Prefetch or Stream of the
// same plan makes rendering instantaneous.
func (s *Service) RenderFigure(ctx context.Context, fig string) (string, error) {
	// Grid figures go through the same technique-set enforcement as the
	// structured figure methods.
	if fig == "14" || fig == "15" || fig == "16" {
		if _, err := s.resolve(Plan{Figures: []string{fig}}); err != nil {
			return "", err
		}
	}
	switch fig {
	case "13a":
		rows, err := s.fig13aRows(ctx)
		if err != nil {
			return "", err
		}
		return report.Figure13aTable(rows), nil
	case "13b":
		return report.Figure13bTable(), nil
	case "14":
		series, err := s.m.Figure14(ctx)
		if err != nil {
			return "", err
		}
		return report.SpeedupChart("Figure 14: Cluster-level split-issue (CCSI) speedups over CSMT", series) +
			"\n" + report.HeadlineTable(headlines(series)), nil
	case "15":
		series, err := s.m.Figure15(ctx)
		if err != nil {
			return "", err
		}
		return report.SpeedupChart("Figure 15: COSI and OOSI speedups over SMT", series) +
			"\n" + report.HeadlineTable(headlines(series)), nil
	case "16":
		points, err := s.m.Figure16(ctx)
		if err != nil {
			return "", err
		}
		return report.IPCChart(points), nil
	}
	return "", fmt.Errorf("vexsmt: unknown figure %q", fig)
}

// headlines pairs each measured series with the paper's reported average,
// matched by the series' comparison key rather than by position.
func headlines(series []experiments.SpeedupSeries) []report.Headline {
	var rows []report.Headline
	for _, s := range series {
		paper, ok := report.PaperAverageFor(s)
		if !ok {
			continue // the paper reports no average for this series
		}
		rows = append(rows, report.Headline{Label: s.Label, Measured: s.Avg, Paper: paper})
	}
	return rows
}

package vexsmt

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"vexsmt/internal/bpred"
	"vexsmt/internal/core"
	"vexsmt/internal/experiments"
	"vexsmt/internal/stats"
	"vexsmt/internal/workload"
	"vexsmt/internal/wstore"
)

// Service is the façade over the simulation stack: a memoizing, concurrent
// experiment matrix plus the plan vocabulary and the results schema. A
// Service is immutable after New and safe for concurrent use; results are
// memoized per cell, so overlapping plans share simulations.
type Service struct {
	scale      int64
	seed       uint64
	parallel   int
	techniques []core.Technique
	predictors []string // canonical model names (WithPredictors)
	cache      CellCache

	workloadDir string        // corpus directory (WithWorkloadDir); "" = no trace workloads
	wl          *wstore.Store // trace store; the process-global one unless a test injects its own
	wlRefs      []string      // sorted "name@sha256" references loaded from workloadDir

	m *experiments.Matrix
}

// New builds a Service. Defaults: 1/100 paper scale, seed 1, GOMAXPROCS
// parallelism, all eight techniques, no result cache.
func New(opts ...Option) (*Service, error) {
	s := &Service{
		scale:      100,
		seed:       1,
		parallel:   runtime.GOMAXPROCS(0),
		techniques: core.AllTechniques(),
		predictors: bpred.Names(),
	}
	for _, o := range opts {
		if err := o(s); err != nil {
			return nil, err
		}
	}
	if s.wl == nil {
		s.wl = wstore.Shared()
	}
	if s.workloadDir != "" {
		traces, err := s.wl.LoadDir(s.workloadDir)
		if err != nil {
			return nil, fmt.Errorf("vexsmt: %w", err)
		}
		s.wlRefs = make([]string, len(traces))
		for i, t := range traces {
			s.wlRefs[i] = t.Ref()
		}
	}
	mopts := []experiments.MatrixOption{
		experiments.WithParallelism(s.parallel),
		experiments.WithWorkloadStore(s.wl),
	}
	if s.cache != nil {
		// The key closes over the service's meta: every cell of this
		// service shares the (schema, seed, scale) prefix, and CacheKey
		// ignores the meta fields that cannot change results.
		meta := s.Meta()
		mopts = append(mopts, experiments.WithResultCache(s.cache, func(c experiments.Cell) string {
			return CacheKey(meta, cellSpecOf(c))
		}))
	}
	s.m = experiments.NewMatrix(s.scale, s.seed, mopts...)
	return s, nil
}

// cellSpecOf maps an internal cell back to its public spec: internal
// spellings carry over verbatim (Pred "" = static, WL "" = synthetic).
func cellSpecOf(c experiments.Cell) CellSpec {
	return CellSpec{
		Mix:       c.Mix.Label,
		Technique: c.Tech.Name(),
		Threads:   c.Threads,
		Predictor: c.Pred,
		Workload:  c.WL,
	}
}

// LoadWorkloads loads a trace corpus directory (.vxt binary traces and
// .vex assembly programs; see internal/wstore) into the process-shared
// workload store and returns the sorted "name@sha256" content references.
// Loading is idempotent and content-addressed — a file already present
// (by hash) is never decoded twice — so daemons can load eagerly at
// startup to fail fast on a bad corpus and advertise what they hold,
// while every Service built afterwards resolves the same names against
// the shared store without touching the directory again.
func LoadWorkloads(dir string) ([]string, error) {
	traces, err := wstore.Shared().LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vexsmt: %w", err)
	}
	refs := make([]string, len(traces))
	for i, t := range traces {
		refs[i] = t.Ref()
	}
	return refs, nil
}

// workloadRef resolves a workload name or "name@sha256" reference against
// the service's trace store to the full reference form.
func (s *Service) workloadRef(nameOrRef string) (string, error) {
	tr, ok := s.wl.Resolve(nameOrRef)
	if !ok {
		have := s.wl.Names()
		if len(have) == 0 {
			return "", fmt.Errorf("vexsmt: workload %q: no trace corpus loaded (WithWorkloadDir)", nameOrRef)
		}
		return "", fmt.Errorf("vexsmt: unknown workload %q (have %s)", nameOrRef, strings.Join(have, ", "))
	}
	return tr.Ref(), nil
}

// Scale returns the configured scale divisor of paper scale.
func (s *Service) Scale() int64 { return s.scale }

// Seed returns the configured base seed.
func (s *Service) Seed() uint64 { return s.seed }

// Parallelism returns the configured worker-pool bound.
func (s *Service) Parallelism() int { return s.parallel }

// TechniqueNames returns the service's enabled techniques in Figure 16
// order.
func (s *Service) TechniqueNames() []string {
	names := make([]string, len(s.techniques))
	for i, t := range s.techniques {
		names[i] = t.Name()
	}
	return names
}

// PredictorNames returns the service's enabled branch-predictor models in
// canonical order.
func (s *Service) PredictorNames() []string {
	return append([]string(nil), s.predictors...)
}

// WorkloadRefs returns the sorted "name@sha256" references of the trace
// corpus loaded via WithWorkloadDir (nil without one). Workloads loaded
// into the shared store by other services are not listed — these are the
// workloads *this* service advertises.
func (s *Service) WorkloadRefs() []string {
	return append([]string(nil), s.wlRefs...)
}

// Meta returns the run metadata stamped onto every ResultSet this service
// produces.
func (s *Service) Meta() RunMeta {
	return RunMeta{
		SchemaVersion: SchemaVersion,
		Seed:          s.seed,
		Scale:         s.scale,
		Parallelism:   s.parallel,
		Techniques:    strings.Join(s.TechniqueNames(), ","),
	}
}

// CellsSimulated returns how many distinct cells the service has resolved
// (simulated or recalled from cache, including in-flight) so far.
func (s *Service) CellsSimulated() int { return s.m.Cells() }

// SimulationsRun returns how many simulator runs the service has actually
// performed — cache hits are excluded, so a fully warm sweep reports 0.
func (s *Service) SimulationsRun() int64 { return s.m.Simulations() }

// CacheStats returns the attached result cache's counters, or zeros when
// the service has no cache (WithCache was not used).
func (s *Service) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// cellResult converts one internal outcome to the schema type.
func (s *Service) cellResult(c experiments.Cell, r *stats.Run, cached bool, err error) CellResult {
	out := CellResult{
		Mix:       c.Mix.Label,
		Technique: c.Tech.Name(),
		Threads:   c.Threads,
		Predictor: c.Pred,
		Workload:  c.WL,
		Seed:      s.m.CellSeed(c),
	}
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.IPC = r.IPC()
	out.Counters = countersFromRun(r)
	out.Cached = cached
	return out
}

// RunCell simulates (or recalls) one cell. Paired comparisons come free:
// every technique of a (mix, threads) pair shares one seed, so dividing
// two RunCell results reproduces the paper's common-random-numbers
// speedup arithmetic (see SpeedupPct).
func (s *Service) RunCell(ctx context.Context, spec CellSpec) (CellResult, error) {
	c, err := s.cell(spec)
	if err != nil {
		return CellResult{}, err
	}
	if !s.allowed(c.Tech) {
		return CellResult{}, fmt.Errorf("vexsmt: technique %s not enabled on this service (WithTechniques)",
			c.Tech.Name())
	}
	r, cached, err := s.m.RunCellInfo(ctx, c)
	if err != nil {
		return s.cellResult(c, nil, false, err), err
	}
	return s.cellResult(c, r, cached, nil), nil
}

// PlanSize resolves a plan and returns how many unique grid cells it
// simulates, without running anything.
func (s *Service) PlanSize(p Plan) (int, error) {
	ip, err := s.resolve(p)
	if err != nil {
		return 0, err
	}
	return ip.Len(), nil
}

// PlanCells resolves a plan and returns its unique grid cells as public
// CellSpecs, in plan order, without running anything. This is the shard
// unit of distributed execution: a coordinator partitions exactly this
// list, and the union of the parts is exactly what Collect would simulate.
func (s *Service) PlanCells(p Plan) ([]CellSpec, error) {
	ip, err := s.resolve(p)
	if err != nil {
		return nil, err
	}
	out := make([]CellSpec, 0, ip.Len())
	for _, c := range ip.Cells() {
		out = append(out, cellSpecOf(c))
	}
	return out, nil
}

// Prefetch simulates every cell of a plan behind a barrier and returns the
// number of unique cells. Figure rendering after a successful Prefetch
// only reads memoized results. For progress observation use Stream.
func (s *Service) Prefetch(ctx context.Context, p Plan) (int, error) {
	ip, err := s.resolve(p)
	if err != nil {
		return 0, err
	}
	if err := s.m.Prefetch(ctx, ip); err != nil {
		return ip.Len(), err
	}
	return ip.Len(), nil
}

// Stream resolves a plan and simulates it over the worker pool, delivering
// each CellResult the moment its simulation completes. The channel closes
// when every cell has been delivered, or — after ctx is cancelled — as
// soon as in-flight cells abort (within one simulated timeslice; no
// workers leak). Delivery order is nondeterministic, but each delivered
// result is bit-identical to what a serial run would produce. A cell that
// fails arrives with Err set. A cell undelivered at cancellation either
// aborted (not memoized — a later Stream re-simulates it) or finished
// just as the cancel landed (memoized — a later Stream serves it
// instantly); both paths yield the same bits eventually.
//
// Either drain the channel or cancel ctx: abandoning the channel while
// ctx stays live blocks the delivery goroutine and its worker pool.
func (s *Service) Stream(ctx context.Context, p Plan) (<-chan CellResult, error) {
	ip, err := s.resolve(p)
	if err != nil {
		return nil, err
	}
	out := make(chan CellResult)
	go func() {
		defer close(out)
		for o := range s.m.Stream(ctx, ip) {
			select {
			case out <- s.cellResult(o.Cell, o.Run, o.Cached, o.Err):
			case <-ctx.Done():
				// Keep draining so the inner stream's workers unwind.
			}
		}
	}()
	return out, nil
}

// Collect runs a plan to completion and returns the sorted, deterministic
// ResultSet: metadata plus every cell in (mix, technique, threads) order.
// The first cell error (or the context's error) aborts the collection.
func (s *Service) Collect(ctx context.Context, p Plan) (*ResultSet, error) {
	ch, err := s.Stream(ctx, p)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Meta: s.Meta()}
	var failed *CellResult
	for cell := range ch {
		if cell.Err != "" {
			if failed == nil {
				c := cell
				failed = &c
			}
			continue // keep draining so the pool unwinds
		}
		rs.Cells = append(rs.Cells, cell)
	}
	// Report cancellation as the context's error even when a cancelled
	// cell's outcome won the delivery race, so errors.Is(err,
	// context.Canceled) is deterministic for callers.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, fmt.Errorf("vexsmt: %s/%s/%dT: %s", failed.Mix, failed.Technique, failed.Threads, failed.Err)
	}
	rs.Sort()
	return rs, nil
}

// fig13aRows is the single implementation behind Figure13a and
// RenderFigure("13a"): scales finer than 1/150 (e.g. full paper scale)
// are capped at 1/150 — the characterization is stable there, and finer
// scales only add cost.
func (s *Service) fig13aRows(ctx context.Context) ([]experiments.Fig13Row, error) {
	return experiments.Figure13a(ctx, max(s.scale, 150), s.parallel)
}

// Figure13a measures the paper's single-thread benchmark characterization
// (see fig13aRows for the scale cap).
func (s *Service) Figure13a(ctx context.Context) ([]Fig13Row, error) {
	rows, err := s.fig13aRows(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]Fig13Row, len(rows))
	for i, r := range rows {
		out[i] = Fig13Row{
			Name:      r.Name,
			Class:     string(rune(r.Class)),
			PaperIPCr: r.PaperIPCr,
			PaperIPCp: r.PaperIPCp,
			IPCr:      r.IPCr,
			IPCp:      r.IPCp,
		}
	}
	return out, nil
}

// Figure14 computes the paper's Figure 14 series (CCSI over CSMT). Like
// every figure entry point, it enforces the service's technique set, so a
// scoped service fails up front instead of silently simulating disabled
// techniques.
func (s *Service) Figure14(ctx context.Context) ([]FigureSeries, error) {
	if _, err := s.resolve(Plan{Figures: []string{"14"}}); err != nil {
		return nil, err
	}
	series, err := s.m.Figure14(ctx)
	if err != nil {
		return nil, err
	}
	return publicSeries(series), nil
}

// Figure15 computes the paper's Figure 15 series (COSI/OOSI over SMT),
// enforcing the service's technique set.
func (s *Service) Figure15(ctx context.Context) ([]FigureSeries, error) {
	if _, err := s.resolve(Plan{Figures: []string{"15"}}); err != nil {
		return nil, err
	}
	series, err := s.m.Figure15(ctx)
	if err != nil {
		return nil, err
	}
	return publicSeries(series), nil
}

// Figure16 computes the paper's Figure 16 points (absolute IPC of every
// technique), enforcing the service's technique set.
func (s *Service) Figure16(ctx context.Context) ([]IPCPoint, error) {
	if _, err := s.resolve(Plan{Figures: []string{"16"}}); err != nil {
		return nil, err
	}
	points, err := s.m.Figure16(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]IPCPoint, len(points))
	for i, p := range points {
		out[i] = IPCPoint{Technique: p.Tech.Name(), Threads: p.Threads, IPC: p.IPC}
	}
	return out, nil
}

func publicSeries(series []experiments.SpeedupSeries) []FigureSeries {
	out := make([]FigureSeries, len(series))
	for i, ss := range series {
		out[i] = FigureSeries{
			Label:     ss.Label,
			Technique: ss.Tech.Name(),
			Baseline:  ss.Baseline.Name(),
			Threads:   ss.Threads,
			Workloads: append([]string(nil), ss.Workloads...),
			Pct:       append([]float64(nil), ss.Pct...),
			Avg:       ss.Avg,
		}
	}
	return out
}

// ThreadScaling measures one mix under one technique across thread counts,
// all points sharing the service seed so the curve isolates the
// thread-count effect.
func (s *Service) ThreadScaling(ctx context.Context, mixLabel, technique string, threadCounts []int) ([]ScalePoint, error) {
	mix, err := workload.MixByLabel(mixLabel)
	if err != nil {
		return nil, fmt.Errorf("vexsmt: %w", err)
	}
	tech, err := core.ParseTechnique(technique)
	if err != nil {
		return nil, fmt.Errorf("vexsmt: %w", err)
	}
	if !s.allowed(tech) {
		return nil, fmt.Errorf("vexsmt: technique %s not enabled on this service (WithTechniques)", tech.Name())
	}
	points, err := experiments.ThreadScaling(ctx, mix, tech, threadCounts, s.scale, s.seed, s.parallel)
	if err != nil {
		return nil, err
	}
	out := make([]ScalePoint, len(points))
	for i, p := range points {
		out[i] = ScalePoint{Threads: p.Threads, IPC: p.IPC}
	}
	return out, nil
}

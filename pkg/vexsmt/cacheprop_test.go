package vexsmt_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
)

// This file holds the single-process half of the cache correctness
// property (the distributed K-backend half lives in pkg/vexsmt/shard):
// caching must be invisible in the bits. It is an external test package
// because pkg/vexsmt cannot import its own cache implementations.

const propScale = 20000

var propGrid = vexsmt.Plan{Figures: []string{"14", "15", "16"}}

func encodeCanonicalProp(t *testing.T, rs *vexsmt.ResultSet) string {
	t.Helper()
	cp := &vexsmt.ResultSet{Meta: rs.Meta, Cells: append([]vexsmt.CellResult(nil), rs.Cells...)}
	cp.Canonicalize()
	var buf bytes.Buffer
	if err := vexsmt.EncodeResults(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func cachedService(t *testing.T, dir string, parallel int) *vexsmt.Service {
	t.Helper()
	d, err := cache.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := vexsmt.New(
		vexsmt.WithScale(propScale),
		vexsmt.WithParallelism(parallel),
		vexsmt.WithCache(d),
	)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestWarmCacheCollectByteIdentical is the acceptance property: for
// parallelism ∈ {1, 4}, a warm-cache Collect of the full figure grid is
// byte-identical to the cold run and to an uncached baseline, performs
// zero simulator runs, and its hit counter equals the cell count.
func TestWarmCacheCollectByteIdentical(t *testing.T) {
	ctx := context.Background()
	baselineSvc, err := vexsmt.New(vexsmt.WithScale(propScale))
	if err != nil {
		t.Fatal(err)
	}
	baselineRS, err := baselineSvc.Collect(ctx, propGrid)
	if err != nil {
		t.Fatal(err)
	}
	baseline := encodeCanonicalProp(t, baselineRS)

	for _, parallel := range []int{1, 4} {
		parallel := parallel
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			dir := t.TempDir()

			coldSvc := cachedService(t, dir, parallel)
			coldRS, err := coldSvc.Collect(ctx, propGrid)
			if err != nil {
				t.Fatal(err)
			}
			cold := encodeCanonicalProp(t, coldRS)
			if cold != baseline {
				t.Fatal("cold cached run differs from uncached baseline")
			}
			nCells := len(coldRS.Cells)
			if st := coldSvc.CacheStats(); st.Hits != 0 || st.Puts != int64(nCells) {
				t.Fatalf("cold cache stats %+v, want 0 hits / %d puts", st, nCells)
			}
			if coldSvc.SimulationsRun() != int64(nCells) {
				t.Fatalf("cold run simulated %d of %d cells", coldSvc.SimulationsRun(), nCells)
			}

			warmSvc := cachedService(t, dir, parallel)
			warmRS, err := warmSvc.Collect(ctx, propGrid)
			if err != nil {
				t.Fatal(err)
			}
			if warm := encodeCanonicalProp(t, warmRS); warm != cold {
				t.Fatal("warm-cache Collect is not byte-identical to the cold run")
			}
			if n := warmSvc.SimulationsRun(); n != 0 {
				t.Fatalf("warm run performed %d simulator runs, want 0", n)
			}
			if st := warmSvc.CacheStats(); st.Hits != int64(nCells) || st.Misses != 0 {
				t.Fatalf("warm cache stats %+v, want %d hits / 0 misses", st, nCells)
			}
			for _, c := range warmRS.Cells {
				if !c.Cached {
					t.Fatalf("warm cell not flagged cached: %s/%s/%dT", c.Mix, c.Technique, c.Threads)
				}
			}
		})
	}
}

// TestEpoch1CacheEntriesMissAfterPredictorAxis: entries written by the
// pre-predictor code (CacheEpoch 1, whose key string had no pred field)
// must be unreachable under the current epoch — a warm epoch-1 cache
// behaves as cold, re-simulating rather than serving stale bits.
func TestEpoch1CacheEntriesMissAfterPredictorAxis(t *testing.T) {
	ctx := context.Background()
	spec := vexsmt.CellSpec{Mix: "llll", Technique: "SMT", Threads: 2}
	plan := vexsmt.Plan{Cells: []vexsmt.CellSpec{spec}}
	dir := t.TempDir()

	// Learn the current entry's payload bytes from a cold run, then plant
	// them in a fresh directory under the key the PR-7-era code would have
	// computed: the epoch-1 format without the pred field.
	seedDir := t.TempDir()
	seedSvc := cachedService(t, seedDir, 1)
	if _, err := seedSvc.Collect(ctx, plan); err != nil {
		t.Fatal(err)
	}
	meta := seedSvc.Meta()
	oldSum := sha256.Sum256([]byte(fmt.Sprintf("vexsmt/cell/v%d/e1|seed=%d|scale=%d|mix=%s|tech=%s|threads=%d",
		meta.SchemaVersion, meta.Seed, meta.Scale, spec.Mix, spec.Technique, spec.Threads)))
	oldKey := hex.EncodeToString(oldSum[:])
	newKey := vexsmt.CacheKey(meta, spec)
	if oldKey == newKey {
		t.Fatal("epoch bump did not change the cache key")
	}

	seeded, err := cache.NewDisk(seedDir)
	if err != nil {
		t.Fatal(err)
	}
	payload, ok := seeded.Get(newKey)
	if !ok {
		t.Fatal("cold run left no entry under the current key")
	}
	planted, err := cache.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	planted.Put(oldKey, payload)

	// The warm run must not see the epoch-1 entry: one simulation, one
	// miss, zero hits.
	warmSvc := cachedService(t, dir, 1)
	if _, err := warmSvc.Collect(ctx, plan); err != nil {
		t.Fatal(err)
	}
	if n := warmSvc.SimulationsRun(); n != 1 {
		t.Fatalf("warm epoch-1 cache served a stale entry: %d simulations, want 1", n)
	}
	if st := warmSvc.CacheStats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("warm epoch-1 cache stats %+v, want 0 hits / 1 miss", st)
	}
}

// TestCorruptedCacheFilesDegradeToMisses: corrupting every cached file
// must turn the warm run back into a full simulation — same bytes, no
// errors surfaced to the caller, corruption counted in the stats.
func TestCorruptedCacheFilesDegradeToMisses(t *testing.T) {
	ctx := context.Background()
	plan := vexsmt.Plan{Cells: []vexsmt.CellSpec{
		{Mix: "mmhh", Technique: "CSMT", Threads: 4},
		{Mix: "llll", Technique: "SMT", Threads: 2},
	}}
	dir := t.TempDir()

	coldSvc := cachedService(t, dir, 2)
	coldRS, err := coldSvc.Collect(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	cold := encodeCanonicalProp(t, coldRS)

	// Flip a payload byte in every cache entry.
	corrupted := 0
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".tmp-") {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		b[len(b)-1] ^= 0x20
		corrupted++
		return os.WriteFile(path, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted != 2 {
		t.Fatalf("corrupted %d cache files, want 2", corrupted)
	}

	warmSvc := cachedService(t, dir, 2)
	warmRS, err := warmSvc.Collect(ctx, plan)
	if err != nil {
		t.Fatalf("corrupted cache surfaced as an error: %v", err)
	}
	if warm := encodeCanonicalProp(t, warmRS); warm != cold {
		t.Fatal("recovery run differs from the original bits")
	}
	if n := warmSvc.SimulationsRun(); n != 2 {
		t.Fatalf("recovery run simulated %d cells, want 2 (corrupt entries must be misses)", n)
	}
	st := warmSvc.CacheStats()
	if st.Errors != 2 || st.Hits != 0 {
		t.Fatalf("recovery cache stats %+v, want 2 errors / 0 hits", st)
	}
	// The corrupt entries were rewritten: a third run is fully warm again.
	thirdSvc := cachedService(t, dir, 2)
	if _, err := thirdSvc.Collect(ctx, plan); err != nil {
		t.Fatal(err)
	}
	if n := thirdSvc.SimulationsRun(); n != 0 {
		t.Fatalf("cache did not recover: third run simulated %d cells", n)
	}
}

package fault

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vexsmt/pkg/vexsmt/cache"
)

func TestInjectorSameSeedSameSchedule(t *testing.T) {
	run := func(seed uint64) []string {
		in := New(seed, Heavy())
		for i := 0; i < 50; i++ {
			in.Hard("http.drop", "POST host /v1/plans aa", 0.3)
			in.Soft("http.delay", "POST host /v1/plans bb", 0.3)
		}
		return in.Schedule()
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("heavy profile at p=0.3 over 100 draws fired nothing")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if c := run(8); strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestInjectorOrderIndependentAcrossIdentities(t *testing.T) {
	// Sequential per identity, interleaved across identities: the
	// schedule must not depend on the interleaving.
	sequential := New(3, Profile{})
	for i := 0; i < 20; i++ {
		sequential.Soft("s", "idA", 0.5)
	}
	for i := 0; i < 20; i++ {
		sequential.Soft("s", "idB", 0.5)
	}
	interleaved := New(3, Profile{})
	for i := 0; i < 20; i++ {
		interleaved.Soft("s", "idB", 0.5)
		interleaved.Soft("s", "idA", 0.5)
	}
	a, b := sequential.Schedule(), interleaved.Schedule()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("interleaving changed the schedule:\n%v\n%v", a, b)
	}
}

func TestInjectorHardBudgetCap(t *testing.T) {
	in := New(1, Profile{MaxPerIdentity: 2})
	fired := 0
	for i := 0; i < 1000; i++ {
		if in.Hard("site", "one-identity", 1.0) {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("hard faults at p=1 fired %d times, want cap 2", fired)
	}
	// A different identity has its own budget; soft faults have none.
	if !in.Hard("site", "other-identity", 1.0) {
		t.Error("fresh identity should not share the exhausted budget")
	}
	soft := 0
	for i := 0; i < 10; i++ {
		if in.Soft("site", "one-identity", 1.0) {
			soft++
		}
	}
	if soft != 10 {
		t.Fatalf("soft faults fired %d/10; the cap must not apply", soft)
	}
}

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if in.Hard("s", "i", 1.0) || in.Soft("s", "i", 1.0) {
		t.Fatal("nil injector fired")
	}
	if in.Schedule() != nil || in.Fired() != 0 {
		t.Fatal("nil injector has a schedule")
	}
}

func TestParseProfile(t *testing.T) {
	for _, name := range []string{"off", "light", "heavy", ""} {
		if _, err := ParseProfile(name); err != nil {
			t.Errorf("ParseProfile(%q): %v", name, err)
		}
	}
	if _, err := ParseProfile("cataclysmic"); err == nil {
		t.Error("unknown profile accepted")
	}
	if Off().Enabled() {
		t.Error("off profile reports enabled")
	}
	if !Light().Enabled() || !Heavy().Enabled() {
		t.Error("light/heavy profiles report disabled")
	}
}

func TestTransportDropAnd5xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	drop := Client(New(1, Profile{DropRequest: 1}), nil)
	if _, err := drop.Get(srv.URL + "/x"); err == nil ||
		!strings.Contains(err.Error(), "chaos: connection dropped") {
		t.Fatalf("drop profile: got err %v, want injected drop", err)
	}

	fiveXX := Client(New(1, Profile{Error5xx: 1}), nil)
	resp, err := fiveXX.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("5xx profile: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 carries no Retry-After")
	}
}

func TestTransportTearsStream(t *testing.T) {
	payload := strings.Repeat(`{"cell":"x"}`+"\n", 200) // ~2.6 KB of NDJSON
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	torn := Client(New(1, Profile{TearStream: 1}), nil)
	resp, err := torn.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil || !strings.Contains(err.Error(), "chaos: stream torn") {
		t.Fatalf("read %d bytes, err %v; want a torn-stream error", len(b), err)
	}
	if len(b) >= len(payload) {
		t.Fatalf("tear delivered the whole %d-byte payload", len(b))
	}
}

func TestTransportSwallowsHeartbeat(t *testing.T) {
	reached := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached = true
	}))
	defer srv.Close()

	c := Client(New(1, Profile{SwallowHeartbeat: 1}), nil)
	_, err := c.Post(srv.URL+"/v1/fleet/register", "application/json", strings.NewReader("{}"))
	if err == nil || !strings.Contains(err.Error(), "heartbeat swallowed") {
		t.Fatalf("got err %v, want swallowed heartbeat", err)
	}
	if reached {
		t.Error("swallowed heartbeat reached the registry")
	}
	// Non-heartbeat traffic through the same profile passes.
	if _, err := c.Get(srv.URL + "/healthz"); err != nil {
		t.Fatalf("non-heartbeat request failed: %v", err)
	}
}

func TestCacheFaultsAreDetectable(t *testing.T) {
	entry, err := json.Marshal(map[string]any{"ipc": 1.25, "cycles": 10000})
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt reads and torn writes must yield bytes that fail a JSON
	// decode — the consumers' degrade-to-miss trigger.
	corrupt := NewCache(New(1, Profile{CorruptEntry: 1}), cache.NewMemory(16))
	corrupt.Put("k", entry)
	got, ok := corrupt.Get("k")
	if !ok {
		t.Fatal("corrupting profile dropped the entry instead")
	}
	var v map[string]any
	if json.Unmarshal(got, &v) == nil {
		t.Fatalf("corrupted entry %q still decodes", got)
	}

	tear := NewCache(New(1, Profile{TearWrite: 1}), cache.NewMemory(16))
	tear.Put("k", entry)
	got, ok = tear.Local().Get("k")
	if !ok {
		t.Fatal("torn write stored nothing; want a torn prefix")
	}
	if len(got) >= len(entry) {
		t.Fatal("torn write stored the full payload")
	}
	if json.Unmarshal(got, &v) == nil {
		t.Fatalf("torn entry %q still decodes", got)
	}

	drop := NewCache(New(1, Profile{DropEntry: 1}), cache.NewMemory(16))
	drop.Put("k", entry)
	if _, ok := drop.Get("k"); ok {
		t.Fatal("dropping profile served the entry")
	}
	if _, ok := drop.Local().Get("k"); !ok {
		t.Fatal("drop-entry fault erased the stored entry; it must only hide it")
	}

	enospc := NewCache(New(1, Profile{FailWrite: 1}), cache.NewMemory(16))
	enospc.Put("k", entry)
	if _, ok := enospc.Local().Get("k"); ok {
		t.Fatal("failed write landed anyway")
	}
}

func TestStaleView(t *testing.T) {
	n := 0
	fresh := func() int { n++; return n }

	always := StaleView(New(1, Profile{StalePeers: 1}), "fleet.peers.stale", fresh)
	if got := always(); got != 1 {
		t.Fatalf("first read = %d, want fresh 1", got)
	}
	for i := 0; i < 5; i++ {
		if got := always(); got != 1 {
			t.Fatalf("stale read = %d, want remembered 1", got)
		}
	}

	n = 0
	never := StaleView(New(1, Profile{}), "fleet.peers.stale", fresh)
	for want := 1; want <= 5; want++ {
		if got := never(); got != want {
			t.Fatalf("inert view read = %d, want fresh %d", got, want)
		}
	}
}

package fault

import "sync"

// StaleView wraps a snapshot function (a fleet peer view, a registry
// member lookup) so that some reads return the previous snapshot
// instead of the current one — the distributed-systems classic of
// acting on a membership list that is one update behind. The first
// read is always served fresh (there is nothing stale to serve), and a
// stale read does not advance the remembered snapshot, so consecutive
// stale reads observe the same past.
//
// Staleness is Soft: every consumer of a peer view already tolerates
// lag (members may die between any read and use), so a stale view can
// only send traffic somewhere unproductive, never wedge a run.
func StaleView[T any](inj *Injector, site string, fn func() T) func() T {
	var (
		mu   sync.Mutex
		prev T
		has  bool
	)
	return func() T {
		cur := fn()
		mu.Lock()
		defer mu.Unlock()
		if has && inj.Soft(site, "view", inj.Profile().StalePeers) {
			return prev
		}
		prev, has = cur, true
		return cur
	}
}

// Chaos property suite: full sweeps under heavy injected fault
// schedules must produce byte-identical results to clean runs — the
// determinism contract has to survive chaos, not just the happy path.
package fault_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vexsmt/pkg/vexsmt"
	"vexsmt/pkg/vexsmt/cache"
	"vexsmt/pkg/vexsmt/fault"
	"vexsmt/pkg/vexsmt/fleet"
	"vexsmt/pkg/vexsmt/resilience"
	"vexsmt/pkg/vexsmt/server"
	"vexsmt/pkg/vexsmt/shard"
)

// chaosScale keeps simulation-backed chaos runs fast; every assertion
// is bit-identity, never statistical.
const chaosScale = 50000

var chaosGrid = vexsmt.Plan{Figures: []string{"16"}}

// encodeCanonical returns rs's canonical encoding without mutating it.
func encodeCanonical(t *testing.T, rs *vexsmt.ResultSet) string {
	t.Helper()
	cp := &vexsmt.ResultSet{Meta: rs.Meta, Cells: append([]vexsmt.CellResult(nil), rs.Cells...)}
	cp.Canonicalize()
	var buf bytes.Buffer
	if err := vexsmt.EncodeResults(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func cleanBaseline(t *testing.T) string {
	t.Helper()
	svc, err := vexsmt.New(vexsmt.WithScale(chaosScale), vexsmt.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := svc.Collect(context.Background(), chaosGrid)
	if err != nil {
		t.Fatal(err)
	}
	return encodeCanonical(t, rs)
}

// fastPolicy is the chaos-test retry policy: the default shape with
// backoffs squeezed to keep wall clock down.
func fastPolicy(seed uint64) resilience.Policy {
	p := resilience.Default()
	p.Seed = seed
	p.BaseBackoff = time.Millisecond
	p.MaxBackoff = 4 * time.Millisecond
	return p
}

// quickChaos is Heavy with its soft delays squeezed, so the schedule
// stays aggressive without idling the test.
func quickChaos() fault.Profile {
	p := fault.Heavy()
	p.RequestDelay = time.Millisecond
	p.PeerFillDelay = time.Millisecond
	return p
}

// TestChaosSweepByteIdentical is the tentpole property: a two-daemon
// sweep with heavy transport faults on the coordinator side and cache
// faults inside each daemon produces byte-identical merged results to
// the clean single-process run, with zero lost cells. Retries (8, so 9
// attempts) strictly exceed the worst-case hard-fault count a cell can
// absorb — the per-identity budget (2) times its four identities
// (submit/stream crossed with two backends) — and local fallback is
// armed so even a fully faulted placement round degrades to an
// identical local run rather than failing.
func TestChaosSweepByteIdentical(t *testing.T) {
	want := cleanBaseline(t)
	inj := fault.New(42, quickChaos())

	daemon := func(seed uint64) *httptest.Server {
		dinj := fault.New(seed, quickChaos())
		faulty := fault.NewCache(dinj, cache.NewMemory(4096))
		return httptest.NewServer(server.New(chaosScale, 1, 4, server.WithCache(faulty)).Handler())
	}
	a := daemon(7)
	defer a.Close()
	b := daemon(8)
	defer b.Close()

	client := fault.Client(inj, nil)
	var backends []shard.Backend
	for _, u := range []string{a.URL, b.URL} {
		be, err := shard.NewHTTP(u, shard.WithClient(client))
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, be)
	}
	coord, err := shard.New(shard.Config{
		Scale:         chaosScale,
		Seed:          1,
		Retries:       8,
		Policy:        fastPolicy(42),
		LocalFallback: true,
		Logf:          t.Logf,
	}, backends...)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), chaosGrid)
	if err != nil {
		t.Fatalf("chaos sweep failed (%d faults had fired): %v", inj.Fired(), err)
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatalf("chaos sweep output differs from the clean run (%d faults fired)", inj.Fired())
	}
	t.Logf("chaos sweep byte-identical; %d transport fault(s) fired", inj.Fired())
}

// TestChaosWarmRerunByteIdentical re-collects through the same faulty
// daemons: the second pass is served from their (still fault-wrapped)
// caches, and injected corruption must degrade to re-simulation, never
// to different bytes.
func TestChaosWarmRerunByteIdentical(t *testing.T) {
	want := cleanBaseline(t)
	dinj := fault.New(9, quickChaos())
	faulty := fault.NewCache(dinj, cache.NewMemory(4096))
	srv := httptest.NewServer(server.New(chaosScale, 1, 4, server.WithCache(faulty)).Handler())
	defer srv.Close()

	be, err := shard.NewHTTP(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := shard.New(shard.Config{Scale: chaosScale, Seed: 1, Policy: fastPolicy(9)}, be)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 1; pass <= 2; pass++ {
		rs, err := coord.Collect(context.Background(), chaosGrid)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if got := encodeCanonical(t, rs); got != want {
			t.Fatalf("pass %d differs from the clean run (%d cache faults fired)", pass, dinj.Fired())
		}
	}
	if dinj.Fired() == 0 {
		t.Fatal("heavy cache profile fired nothing over two grid passes")
	}
}

// TestLocalFallbackByteIdentical: with every backend dead, a
// LocalFallback coordinator degrades to in-process execution and still
// produces the clean run's bytes.
func TestLocalFallbackByteIdentical(t *testing.T) {
	want := cleanBaseline(t)
	be, err := shard.NewHTTP("http://127.0.0.1:9") // discard port: refuses instantly
	if err != nil {
		t.Fatal(err)
	}
	var degraded bool
	coord, err := shard.New(shard.Config{
		Scale:         chaosScale,
		Seed:          1,
		LocalFallback: true,
		Logf: func(format string, args ...any) {
			if strings.Contains(fmt.Sprintf(format, args...), "falling back to local execution") {
				degraded = true
			}
		},
	}, be)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.Collect(context.Background(), chaosGrid)
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if !degraded {
		t.Fatal("coordinator never reported the local fallback")
	}
	if got := encodeCanonical(t, rs); got != want {
		t.Fatal("local fallback output differs from the clean run")
	}
}

// stubRT answers every request with a fixed 200 body without dialing,
// so fault streams can be replayed against stable host names.
type stubRT struct{ body string }

func (s stubRT) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		Status: "200 OK", StatusCode: http.StatusOK,
		Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header: http.Header{}, Request: req,
		Body: io.NopCloser(strings.NewReader(s.body)),
	}, nil
}

// TestChaosScheduleReproducible drives the transport with the request
// mix of a sweep (submits, result streams, heartbeats, peer fills)
// twice under one seed and once under another: same seed reproduces
// the identical fault schedule, a different seed does not.
func TestChaosScheduleReproducible(t *testing.T) {
	run := func(seed uint64) []string {
		p := quickChaos()
		p.MaxPerIdentity = 0 // raw streams: reproducibility, not termination
		inj := fault.New(seed, p)
		tr := fault.NewTransport(inj, stubRT{body: strings.Repeat(`{"cell":"x"}`+"\n", 100)})
		do := func(method, url string, body string) {
			var r io.Reader
			if body != "" {
				r = strings.NewReader(body)
			}
			req, err := http.NewRequest(method, url, r)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := tr.RoundTrip(req)
			if err != nil {
				return // injected drop/swallow: part of the schedule
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		for i := 0; i < 25; i++ {
			do("POST", "http://daemon-a/v1/plans", fmt.Sprintf(`{"cells":["c%d"]}`, i))
			do("GET", "http://daemon-a/v1/results?stream=1&id=p1", "")
			do("POST", "http://registry/v1/fleet/register", `{"id":"daemon-a"}`)
			do("GET", fmt.Sprintf("http://daemon-b/v1/cache/key%d", i), "")
		}
		return inj.Schedule()
	}
	a, b := run(1234), run(1234)
	if len(a) == 0 {
		t.Fatal("heavy profile fired nothing over 100 requests")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("same seed, different schedules:\nrun1: %d fired\nrun2: %d fired", len(a), len(b))
	}
	if c := run(77); strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

// TestPeerFillDegradesUnderChaos: a fetcher whose every peer request is
// dropped reports a miss promptly — the sweep simulates instead of
// stalling — and the same fetcher without faults serves the entry.
func TestPeerFillDegradesUnderChaos(t *testing.T) {
	entry := []byte(`{"ipc":1.5}`)
	sum := sha256.Sum256(entry)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Vexsmt-Sha256", hex.EncodeToString(sum[:]))
		w.Write(entry)
	}))
	defer peer.Close()
	peers := func() []fleet.Member {
		return []fleet.Member{{ID: "peer", URL: peer.URL, CacheEnabled: true}}
	}

	p := fault.Profile{DropRequest: 1} // uncapped: every request drops
	broken := fleet.NewFetcher("self", peers,
		fleet.WithFetchClient(fault.Client(fault.New(1, p), nil)))
	start := time.Now()
	if _, ok := broken.Fetch("somekey"); ok {
		t.Fatal("fully dropped peer traffic still produced a hit")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("degraded peer fill took %s; it must not stall the sweep", d)
	}

	healthy := fleet.NewFetcher("self", peers)
	got, ok := healthy.Fetch("somekey")
	if !ok || !bytes.Equal(got, entry) {
		t.Fatalf("clean fetch = %q, %v; want the served entry", got, ok)
	}
}

// TestFetchContextRespectsCallerDeadline is the satellite-1 regression
// test: an already-expired caller context must stop the peer walk —
// the old hardcoded 1s timeout on context.Background ignored callers
// entirely.
func TestFetchContextRespectsCallerDeadline(t *testing.T) {
	reached := false
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached = true
	}))
	defer peer.Close()
	f := fleet.NewFetcher("self", func() []fleet.Member {
		return []fleet.Member{{ID: "peer", URL: peer.URL, CacheEnabled: true}}
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := f.FetchContext(ctx, "somekey"); ok {
		t.Fatal("cancelled context produced a hit")
	}
	if reached {
		t.Fatal("cancelled context still contacted the peer")
	}
}

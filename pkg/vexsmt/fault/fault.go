// Package fault is a seeded, deterministic fault injector for the
// distributed layers' seams: an http.RoundTripper that drops
// connections, delays responses, synthesizes 5xx and tears NDJSON
// streams mid-line (Transport), a vexsmt.CellCache middleware that
// corrupts entries, swallows writes and tears files (Cache), and
// fleet-level faults — swallowed heartbeats and slow peer fills are
// path-classified inside Transport, stale peer views come from
// StaleView.
//
// Every fault decision is a pure function of (chaos seed, site,
// identity, occurrence count), drawn from a per-site rng.DeriveSeed
// stream — the same derivation discipline the simulator uses for cell
// seeds. Two runs with the same seed and the same request sequence see
// the identical fault schedule, which is what makes a chaos failure
// reproducible from its seed (-chaos-seed/-chaos-profile on the CLIs).
// Because the draw for occurrence n of one (site, identity) pair does
// not depend on what other identities did in between, the schedule is
// also independent of goroutine interleaving wherever each identity's
// requests are themselves ordered (retry chains are).
//
// Faults must never make a run impossible, only slower: hard faults
// (ones that consume a caller's retry budget) are capped per identity
// by Profile.MaxPerIdentity, so any retry budget of at least that many
// extra attempts is guaranteed to outlast the injector. Soft faults
// (delays, stale views, cache degradation the consumer absorbs as a
// miss) carry no cap. The repo's determinism contract is the judge:
// a sweep under heavy injection must byte-diff clean against the
// healthy run, and the chaos suite in this package enforces it.
package fault

import (
	"fmt"
	"sort"
	"sync"

	"vexsmt/internal/rng"
)

// Injector draws fault decisions from a seeded stream and records them.
// A nil *Injector is inert (never fires), so wiring can thread one
// unconditionally and leave it nil when chaos is off. All methods are
// safe for concurrent use.
type Injector struct {
	seed    uint64
	profile Profile

	mu    sync.Mutex
	occ   map[string]uint64 // site\x00identity -> occurrences so far
	fired map[string]int    // identity -> hard faults fired (budget)
	log   []Decision
}

// Decision is one recorded fault draw.
type Decision struct {
	Site     string // fault site, e.g. "http.drop", "cache.put.tear"
	Identity string // what the fault would hit, e.g. "POST host /v1/plans 1a2b…"
	N        uint64 // 1-based occurrence of this (site, identity) pair
	Fired    bool
}

// String renders a decision as a stable one-line schedule entry.
func (d Decision) String() string {
	return fmt.Sprintf("%s #%d %s", d.Site, d.N, d.Identity)
}

// New builds an injector firing profile p's faults from seed. A zero
// profile (or Off()) never fires but still counts occurrences.
func New(seed uint64, p Profile) *Injector {
	return &Injector{
		seed:    seed,
		profile: p,
		occ:     make(map[string]uint64),
		fired:   make(map[string]int),
	}
}

// Profile returns the profile the injector fires.
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.profile
}

// Hard draws a budget-consuming fault decision: occurrence n of (site,
// identity) fires with probability prob, except that once
// MaxPerIdentity hard faults have fired against identity (across all
// sites), further hard draws are suppressed — the cap is what lets a
// bounded retry budget always win.
func (in *Injector) Hard(site, identity string, prob float64) bool {
	return in.decide(site, identity, prob, true)
}

// Soft draws a non-budget fault decision (delays, degradations the
// caller absorbs without spending an attempt). No cap applies.
func (in *Injector) Soft(site, identity string, prob float64) bool {
	return in.decide(site, identity, prob, false)
}

func (in *Injector) decide(site, identity string, prob float64, hard bool) bool {
	if in == nil || prob <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	k := site + "\x00" + identity
	in.occ[k]++
	n := in.occ[k]
	fire := unit(in.Draw(site, identity, n)) < prob
	if fire && hard {
		if cap := in.profile.MaxPerIdentity; cap > 0 && in.fired[identity] >= cap {
			fire = false
		} else {
			in.fired[identity]++
		}
	}
	in.log = append(in.log, Decision{Site: site, Identity: identity, N: n, Fired: fire})
	return fire
}

// Draw exposes the raw per-(site, identity, occurrence) stream value —
// the same one decide thresholds — for faults that need a deterministic
// magnitude as well as a yes/no (e.g. where to tear a stream).
func (in *Injector) Draw(site, identity string, n uint64) uint64 {
	if in == nil {
		return 0
	}
	return rng.DeriveSeed(in.seed, rng.StringToken(site), rng.StringToken(identity), n)
}

// Schedule returns the fired decisions as sorted one-line entries.
// Two runs with the same seed and the same per-identity request
// sequences produce equal schedules — the reproducibility the chaos
// suite asserts. (Sorting removes delivery-order noise from concurrent
// identities; each entry's occurrence counter already encodes its
// position within its own identity's sequence.)
func (in *Injector) Schedule() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.log))
	for _, d := range in.log {
		if d.Fired {
			out = append(out, d.String())
		}
	}
	sort.Strings(out)
	return out
}

// Fired returns how many faults have fired so far (all sites).
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, d := range in.log {
		if d.Fired {
			n++
		}
	}
	return n
}

// unit maps a 64-bit draw to [0, 1) with 53-bit precision.
func unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

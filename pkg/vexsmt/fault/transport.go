package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport is the HTTP fault seam: an http.RoundTripper that, per
// request, may delay it, drop it before the wire, replace the response
// with a synthesized 503, or tear the response body mid-read. Fleet
// traffic is classified by path — register/heartbeat POSTs can be
// swallowed and peer cache GETs slowed — so one wrapped client
// exercises every fleet degradation path.
//
// A request's identity is "METHOD host path" (query stripped — plan
// ids are per-submission and would give every retry a fresh fault
// budget) plus a digest of the body when the request can replay it,
// so each distinct cell submission draws from its own fault stream
// while its own retries share one.
type Transport struct {
	inj  *Injector
	next http.RoundTripper
}

// NewTransport wraps next (nil means http.DefaultTransport) with inj's
// faults. A nil injector passes everything through untouched.
func NewTransport(inj *Injector, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{inj: inj, next: next}
}

// Client returns a copy of base (nil means http.DefaultClient) whose
// transport is wrapped with inj's faults.
func Client(inj *Injector, base *http.Client) *http.Client {
	if base == nil {
		base = http.DefaultClient
	}
	c := *base
	c.Transport = NewTransport(inj, base.Transport)
	return &c
}

// fleetPath classifies the fleet seams Transport handles specially.
func fleetPath(req *http.Request) (heartbeat, peerFill bool) {
	p := req.URL.Path
	heartbeat = req.Method == http.MethodPost && p == "/v1/fleet/register"
	peerFill = req.Method == http.MethodGet && strings.HasPrefix(p, "/v1/cache/")
	return
}

// identity names the fault stream a request draws from.
func (t *Transport) identity(req *http.Request) string {
	id := req.Method + " " + req.URL.Host + " " + req.URL.Path
	// Fleet bodies change every beat (uptime, load), which would hand
	// each heartbeat a fresh identity; the path is the identity there.
	if req.GetBody != nil && !strings.HasPrefix(req.URL.Path, "/v1/fleet/") {
		if body, err := req.GetBody(); err == nil {
			b, err := io.ReadAll(body)
			body.Close()
			if err == nil {
				sum := sha256.Sum256(b)
				id += " " + hex.EncodeToString(sum[:6])
			}
		}
	}
	return id
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.inj.Profile()
	id := t.identity(req)
	heartbeat, peerFill := fleetPath(req)

	if heartbeat && t.inj.Soft("fleet.heartbeat.swallow", id, p.SwallowHeartbeat) {
		return nil, fmt.Errorf("chaos: heartbeat swallowed (%s)", id)
	}
	if t.inj.Soft("http.delay", id, p.DelayRequest) {
		if err := sleep(req, p.RequestDelay); err != nil {
			return nil, err
		}
	}
	if peerFill && t.inj.Soft("fleet.peerfill.slow", id, p.SlowPeerFill) {
		if err := sleep(req, p.PeerFillDelay); err != nil {
			return nil, err
		}
	}
	if t.inj.Hard("http.drop", id, p.DropRequest) {
		return nil, fmt.Errorf("chaos: connection dropped (%s)", id)
	}
	if t.inj.Hard("http.5xx", id, p.Error5xx) {
		// Synthesized before the wire: the daemon never sees the request,
		// exactly like a proxy or kernel shedding it.
		return &http.Response{
			Status:     "503 Service Unavailable (chaos)",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Retry-After": []string{"1"}},
			Body:       io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			Request:    req,
		}, nil
	}

	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 400 && resp.Body != nil &&
		t.inj.Hard("http.tear", id, p.TearStream) {
		// The cut offset comes from the same stream as the decision, so a
		// replayed schedule tears at the same byte. 16..527 lands inside
		// the first NDJSON lines of a results stream.
		n := in16to527(t.inj.Draw("http.tear.at", id, 1))
		resp.Body = &tornBody{inner: resp.Body, remaining: n, id: id}
	}
	return resp, nil
}

func in16to527(draw uint64) int64 { return 16 + int64(draw%512) }

// sleep holds the request for d, honoring its context.
func sleep(req *http.Request, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	select {
	case <-req.Context().Done():
		return req.Context().Err()
	case <-time.After(d):
		return nil
	}
}

// tornBody delivers at most remaining bytes, then fails the read — a
// connection cut mid-stream, as seen by the decoder.
type tornBody struct {
	inner     io.ReadCloser
	remaining int64
	id        string
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("chaos: stream torn (%s)", b.id)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == nil && b.remaining <= 0 {
		err = fmt.Errorf("chaos: stream torn (%s)", b.id)
	}
	return n, err
}

func (b *tornBody) Close() error { return b.inner.Close() }

package fault

import (
	"fmt"
	"time"
)

// Profile is a fault schedule's intensity: per-site firing
// probabilities plus the magnitudes of the faults that have one. The
// zero value fires nothing.
//
// Probabilities are per occurrence — each request, cache access or
// view read draws independently from its (site, identity) stream — so
// a probability of 0.2 means roughly every fifth occurrence faults,
// capped for hard faults by MaxPerIdentity.
type Profile struct {
	// Name is the preset the profile came from ("" for hand-built).
	Name string

	// MaxPerIdentity caps the hard (retry-budget-consuming) faults that
	// may fire against one identity across all sites. Callers whose
	// retry budget allows at least this many extra attempts are
	// guaranteed to complete. 0 means uncapped — only sensible in tests
	// that want raw fault streams.
	MaxPerIdentity int

	// Transport faults (fault.Transport).
	DropRequest  float64       // request errors before reaching the wire
	DelayRequest float64       // request is held for RequestDelay first
	RequestDelay time.Duration // magnitude of DelayRequest
	Error5xx     float64       // a synthesized 503 replaces the response
	TearStream   float64       // the response body is cut off mid-read

	// Cache faults (fault.Cache).
	DropEntry    float64 // a present entry reads as a miss
	CorruptEntry float64 // a read entry comes back detectably corrupted
	FailWrite    float64 // a write is swallowed (simulated ENOSPC)
	TearWrite    float64 // a write stores a torn prefix of the payload

	// Fleet faults (path-classified in Transport, plus StaleView).
	SwallowHeartbeat float64       // a register/heartbeat POST is dropped
	StalePeers       float64       // a view read returns the previous snapshot
	SlowPeerFill     float64       // a peer cache GET is held for PeerFillDelay
	PeerFillDelay    time.Duration // magnitude of SlowPeerFill
}

// Enabled reports whether any fault can fire.
func (p Profile) Enabled() bool {
	return p.DropRequest > 0 || p.DelayRequest > 0 || p.Error5xx > 0 ||
		p.TearStream > 0 || p.DropEntry > 0 || p.CorruptEntry > 0 ||
		p.FailWrite > 0 || p.TearWrite > 0 || p.SwallowHeartbeat > 0 ||
		p.StalePeers > 0 || p.SlowPeerFill > 0
}

// Off is the inert profile.
func Off() Profile { return Profile{Name: "off"} }

// Light faults rarely — a smoke level that exercises every degradation
// path over a long run without dominating it.
func Light() Profile {
	return Profile{
		Name:           "light",
		MaxPerIdentity: 1,
		DropRequest:    0.02,
		DelayRequest:   0.05,
		RequestDelay:   20 * time.Millisecond,
		Error5xx:       0.02,
		TearStream:     0.02,
		DropEntry:      0.05,
		CorruptEntry:   0.05,
		FailWrite:      0.05,
		TearWrite:      0.05,

		SwallowHeartbeat: 0.05,
		StalePeers:       0.05,
		SlowPeerFill:     0.05,
		PeerFillDelay:    20 * time.Millisecond,
	}
}

// Heavy faults aggressively — the chaos-suite level. Hard transport
// faults are capped at 2 per identity, so any retry budget of 2+ extra
// attempts per cell still completes every sweep.
func Heavy() Profile {
	return Profile{
		Name:           "heavy",
		MaxPerIdentity: 2,
		DropRequest:    0.15,
		DelayRequest:   0.25,
		RequestDelay:   30 * time.Millisecond,
		Error5xx:       0.15,
		TearStream:     0.10,
		DropEntry:      0.20,
		CorruptEntry:   0.20,
		FailWrite:      0.20,
		TearWrite:      0.20,

		SwallowHeartbeat: 0.25,
		StalePeers:       0.25,
		SlowPeerFill:     0.25,
		PeerFillDelay:    50 * time.Millisecond,
	}
}

// ParseProfile maps a -chaos-profile flag value to its preset.
func ParseProfile(name string) (Profile, error) {
	switch name {
	case "", "off":
		return Off(), nil
	case "light":
		return Light(), nil
	case "heavy":
		return Heavy(), nil
	default:
		return Profile{}, fmt.Errorf("fault: profile %q: want off, light or heavy", name)
	}
}

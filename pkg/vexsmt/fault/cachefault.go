package fault

import (
	"vexsmt/pkg/vexsmt"
)

// corruptPrefix makes a corrupted entry detectably invalid: cache
// payloads are JSON documents, and no JSON document starts with a NUL,
// so every consumer's decode-or-miss path rejects the bytes instead of
// mistaking them for a different valid result. (Flipping bytes inside
// the payload could produce *valid* JSON with wrong numbers — silent
// poison the determinism contract exists to forbid.)
const corruptPrefix = "\x00chaos\x00"

// Cache wraps a vexsmt.CellCache with read/write faults: present
// entries read as misses or come back corrupted, writes are swallowed
// (a full disk) or store a torn prefix (a crash between write and
// rename). All four degrade to extra simulation, never to wrong
// results: corrupt and torn payloads are detectably invalid (a JSON
// prefix or NUL-prefixed bytes can never decode), so consumers treat
// them as misses, and the fleet's peer protocol checksums entries in
// transit on top.
//
// Faults are Soft — a cache fault never consumes a retry budget,
// because the consumer absorbs it inline — so no MaxPerIdentity cap
// applies and heavy profiles can grind the cache tier continuously.
type Cache struct {
	inner vexsmt.CellCache
	inj   *Injector
}

var (
	_ vexsmt.CellCache  = (*Cache)(nil)
	_ vexsmt.CacheSizer = (*Cache)(nil)
)

// NewCache wraps inner with inj's cache faults. A nil injector is a
// transparent wrapper.
func NewCache(inj *Injector, inner vexsmt.CellCache) *Cache {
	return &Cache{inner: inner, inj: inj}
}

// Local unwraps to the underlying store, so a server exporting its
// local tier to peers (which unwraps cache.WithPeerFill the same way)
// can reach through the fault layer deliberately — and a test can
// inspect what was actually stored.
func (c *Cache) Local() vexsmt.CellCache { return c.inner }

// Get implements vexsmt.CellCache.
func (c *Cache) Get(key string) ([]byte, bool) {
	p := c.inj.Profile()
	if c.inj.Soft("cache.get.drop", key, p.DropEntry) {
		return nil, false
	}
	v, ok := c.inner.Get(key)
	if !ok {
		return nil, false
	}
	if c.inj.Soft("cache.get.corrupt", key, p.CorruptEntry) {
		return append([]byte(corruptPrefix), v...), true
	}
	return v, true
}

// Put implements vexsmt.CellCache.
func (c *Cache) Put(key string, value []byte) {
	p := c.inj.Profile()
	if c.inj.Soft("cache.put.fail", key, p.FailWrite) {
		return // ENOSPC: the write never lands
	}
	if len(value) > 1 && c.inj.Soft("cache.put.tear", key, p.TearWrite) {
		// A strict prefix of a JSON document is never a JSON document, so
		// the torn entry reads back as detectably invalid, not as a
		// different result.
		c.inner.Put(key, value[:len(value)/2])
		return
	}
	c.inner.Put(key, value)
}

// Stats implements vexsmt.CellCache, passing through: the faults above
// are already visible as extra misses/errors in the consumer's counters.
func (c *Cache) Stats() vexsmt.CacheStats { return c.inner.Stats() }

// CacheSize implements vexsmt.CacheSizer when the inner store does.
func (c *Cache) CacheSize() vexsmt.CacheSize {
	if s, ok := c.inner.(vexsmt.CacheSizer); ok {
		return s.CacheSize()
	}
	return vexsmt.CacheSize{}
}

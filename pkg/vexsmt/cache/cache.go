// Package cache provides the content-addressed result cache behind
// repeated experiment sweeps: vexsmt.CellCache implementations (an
// in-memory LRU and an on-disk store) plus the key derivation. A cell's
// result is addressed by Key — a canonical digest over the results schema
// version, base seed, scale and cell identity — so any two runs agreeing
// on those inputs share entries across processes, machines and time.
//
// Caching is strictly transparent: a hit returns exactly the bytes the
// simulation stored, so cached and simulated sweeps are byte-identical
// (the repo's property tests enforce it). The only invalidation
// mechanism is bumping vexsmt.SchemaVersion (wire-format changes) or
// vexsmt.CacheEpoch (simulator-behavior changes), either of which
// changes every key at once; there is no TTL and no per-entry
// invalidation, because a cell's result is a pure function of its key.
package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"vexsmt/pkg/vexsmt"
)

// Compile-time checks that both implementations satisfy the facade's
// cache contract.
var (
	_ vexsmt.CellCache = (*Memory)(nil)
	_ vexsmt.CellCache = (*Disk)(nil)
)

// Key returns the content address of one cell's result under one run's
// metadata. It is vexsmt.CacheKey re-exported so the cache package is
// self-contained for callers assembling keys by hand; see that function
// for exactly which fields participate (and which — parallelism,
// technique sets, shard placement — deliberately do not).
func Key(meta vexsmt.RunMeta, spec vexsmt.CellSpec) string {
	return vexsmt.CacheKey(meta, spec)
}

// ValidateMode checks a -cache flag value without side effects — for
// paths (like a remote vexsmtctl run) that must validate the flag but
// never open a local cache.
func ValidateMode(mode string) error {
	switch mode {
	case "on", "off":
		return nil
	default:
		return fmt.Errorf("cache: -cache %q: want on or off", mode)
	}
}

// FromFlag interprets the conventional -cache/-cache-dir CLI flag pair
// shared by paperbench, vexsmtctl and vexsmtd, so the three binaries
// cannot drift: mode "on" opens (creating if needed) the disk cache at
// dir (empty dir selects DefaultDir), mode "off" returns nil, and
// anything else is an error (see ValidateMode).
func FromFlag(mode, dir string) (*Disk, error) {
	if err := ValidateMode(mode); err != nil {
		return nil, err
	}
	if mode == "off" {
		return nil, nil
	}
	return NewDisk(dir)
}

// DefaultDir returns the conventional on-disk cache location,
// os.UserCacheDir()/vexsmt (~/.cache/vexsmt on Linux).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "vexsmt"), nil
}

// counters is the shared hit/miss bookkeeping of both implementations.
type counters struct {
	hits, misses, puts, errs atomic.Int64
}

func (c *counters) stats() vexsmt.CacheStats {
	return vexsmt.CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
		Errors: c.errs.Load(),
	}
}

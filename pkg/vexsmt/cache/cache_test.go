package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vexsmt/pkg/vexsmt"
)

func TestKeyCanonicalAndSensitive(t *testing.T) {
	meta := vexsmt.RunMeta{SchemaVersion: vexsmt.SchemaVersion, Seed: 1, Scale: 100, Parallelism: 8, Techniques: "SMT,CSMT"}
	spec := vexsmt.CellSpec{Mix: "mmhh", Technique: "CCSI AS", Threads: 4}
	base := Key(meta, spec)
	if base != Key(meta, spec) {
		t.Fatal("Key is not deterministic")
	}
	if len(base) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", base)
	}
	// Result-determining inputs must each move the key.
	for name, k := range map[string]string{
		"seed":      Key(vexsmt.RunMeta{SchemaVersion: meta.SchemaVersion, Seed: 2, Scale: 100}, spec),
		"scale":     Key(vexsmt.RunMeta{SchemaVersion: meta.SchemaVersion, Seed: 1, Scale: 200}, spec),
		"schema":    Key(vexsmt.RunMeta{SchemaVersion: meta.SchemaVersion + 1, Seed: 1, Scale: 100}, spec),
		"mix":       Key(meta, vexsmt.CellSpec{Mix: "llll", Technique: spec.Technique, Threads: 4}),
		"technique": Key(meta, vexsmt.CellSpec{Mix: spec.Mix, Technique: "SMT", Threads: 4}),
		"threads":   Key(meta, vexsmt.CellSpec{Mix: spec.Mix, Technique: spec.Technique, Threads: 2}),
	} {
		if k == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	// Fields that cannot change results must not participate.
	insensitive := meta
	insensitive.Parallelism = 1
	insensitive.Techniques = "SMT"
	if Key(insensitive, spec) != base {
		t.Error("parallelism/technique-set moved the key; cross-run sharing broken")
	}
}

func TestMemoryLRU(t *testing.T) {
	m := NewMemory(2)
	m.Put("a", []byte("1"))
	m.Put("b", []byte("2"))
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a missing")
	}
	m.Put("c", []byte("3")) // evicts b (a was refreshed by the Get)
	if _, ok := m.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("len %d, want 2", m.Len())
	}
	st := m.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Puts != 3 {
		t.Fatalf("stats %+v", st)
	}
	// Stored payloads are isolated from caller mutation.
	val := []byte("mutable")
	m.Put("d", val)
	val[0] = 'X'
	got, _ := m.Get("d")
	if string(got) != "mutable" {
		t.Fatalf("stored payload aliased caller slice: %q", got)
	}
	got[0] = 'Y'
	again, _ := m.Get("d")
	if string(again) != "mutable" {
		t.Fatalf("returned payload aliased stored slice: %q", again)
	}
}

func TestDiskRoundTripAndSharing(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(vexsmt.RunMeta{SchemaVersion: 1, Seed: 1, Scale: 100},
		vexsmt.CellSpec{Mix: "mmhh", Technique: "SMT", Threads: 2})
	payload := []byte(`{"Cycles":12345}`)
	d.Put(key, payload)
	got, ok := d.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: ok=%v got=%q", ok, got)
	}
	// A second instance over the same directory (another process, in
	// practice) sees the entry.
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatal("entry invisible to a second instance")
	}
	if _, ok := d.Get("0000deadbeef"); ok {
		t.Fatal("absent key hit")
	}
}

// TestDiskCorruptEntryIsMissNotError is the satellite contract: a
// corrupted cache file degrades to a miss (so the cell re-simulates and
// the entry is rewritten), never an error or a wrong payload.
func TestDiskCorruptEntryIsMissNotError(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"flipped-payload-byte": func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"truncated":            func(b []byte) []byte { return b[:len(b)/2] },
		"no-checksum-header":   func(b []byte) []byte { return []byte("no newline here") },
		"empty":                func(b []byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			const key = "abcdef0123456789"
			d.Put(key, []byte(`{"Cycles":777,"Ops":999}`))
			p := filepath.Join(d.Dir(), key[:2], key[2:])
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get(key); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			st := d.Stats()
			if st.Errors == 0 && name != "empty" {
				// "empty" may legally read as a missing checksum or vanish
				// depending on the corruption; every other case must count.
				t.Fatalf("corruption not counted: %+v", st)
			}
			// The bad file is gone: a fresh Put restores service.
			d.Put(key, []byte("recovered"))
			if got, ok := d.Get(key); !ok || string(got) != "recovered" {
				t.Fatalf("cache did not recover after corruption: ok=%v got=%q", ok, got)
			}
		})
	}
}

func TestDiskConcurrentWritersAgree(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("%02x-shared-key", i%4)
				d.Put(key, []byte(fmt.Sprintf("payload-%d", i%4)))
				if got, ok := d.Get(key); ok {
					// Atomic rename: any observed value is a complete,
					// checksum-valid payload for that key.
					if string(got) != fmt.Sprintf("payload-%d", i%4) {
						t.Errorf("torn read: %q", got)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestCacheSizeTracking(t *testing.T) {
	m := NewMemory(2)
	m.Put("a", []byte("1234"))
	m.Put("b", []byte("56"))
	if sz := m.CacheSize(); sz.Entries != 2 || sz.Bytes != 6 {
		t.Fatalf("memory size %+v, want 2 entries / 6 bytes", sz)
	}
	m.Put("a", []byte("1")) // overwrite shrinks
	m.Put("c", []byte("789"))
	// b evicted (a refreshed by overwrite): entries a(1) + c(3).
	if sz := m.CacheSize(); sz.Entries != 2 || sz.Bytes != 4 {
		t.Fatalf("memory size after eviction %+v, want 2 entries / 4 bytes", sz)
	}

	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("abcd", []byte("payload"))
	sz := d.CacheSize()
	if sz.Entries != 1 || sz.Bytes <= int64(len("payload")) {
		t.Fatalf("disk size %+v, want 1 entry incl. checksum overhead", sz)
	}
	// A fresh instance over the same directory seeds its counters by scan.
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.CacheSize(); got != sz {
		t.Fatalf("rescanned size %+v != live size %+v", got, sz)
	}
}

// fetchFunc is a test peer-fill hook with call accounting.
type fetchFunc struct {
	calls int
	data  map[string][]byte
}

func (f *fetchFunc) fetch(key string) ([]byte, bool) {
	f.calls++
	v, ok := f.data[key]
	return v, ok
}

func TestPeerFillFillsLocalOnPeerHit(t *testing.T) {
	peer := &fetchFunc{data: map[string][]byte{"k1": []byte("from-peer")}}
	local := NewMemory(0)
	pf := WithPeerFill(local, peer.fetch)

	// Local miss, peer hit: payload returned and written back locally.
	got, ok := pf.Get("k1")
	if !ok || string(got) != "from-peer" {
		t.Fatalf("peer fill: ok=%v got=%q", ok, got)
	}
	if peer.calls != 1 {
		t.Fatalf("peer asked %d times, want 1", peer.calls)
	}
	// Second Get is a local hit; peers are not bothered again.
	if _, ok := pf.Get("k1"); !ok {
		t.Fatal("filled entry missing locally")
	}
	if peer.calls != 1 {
		t.Fatalf("peer asked again after local fill (%d calls)", peer.calls)
	}
	// Miss everywhere counts a peer miss.
	if _, ok := pf.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	st := pf.Stats()
	if st.PeerHits != 1 || st.PeerMisses != 1 {
		t.Fatalf("peer stats %+v, want 1 hit / 1 miss", st)
	}
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("local stats %+v, want 1 hit / 2 misses", st)
	}
	if pf.Local() != vexsmt.CellCache(local) {
		t.Fatal("Local() does not return the wrapped cache")
	}
}

func TestPeerFillWithoutLocalStore(t *testing.T) {
	peer := &fetchFunc{data: map[string][]byte{"k": []byte("v")}}
	pf := WithPeerFill(nil, peer.fetch)
	if got, ok := pf.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("ok=%v got=%q", ok, got)
	}
	pf.Put("dropped", []byte("x")) // must not panic
	if _, ok := pf.Get("dropped"); ok {
		t.Fatal("Put stored despite nil local cache (peer should not have it)")
	}
	st := pf.Stats()
	if st.PeerHits != 1 || st.PeerMisses != 1 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
	if sz := pf.CacheSize(); sz != (vexsmt.CacheSize{}) {
		t.Fatalf("nil local cache sized %+v", sz)
	}
}

func TestPeerFillNilFetchIsPlainCache(t *testing.T) {
	local := NewMemory(0)
	pf := WithPeerFill(local, nil)
	pf.Put("k", []byte("v"))
	if got, ok := pf.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("ok=%v got=%q", ok, got)
	}
	if _, ok := pf.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	if st := pf.Stats(); st.PeerHits != 0 || st.PeerMisses != 0 {
		t.Fatalf("peer traffic without a fetch hook: %+v", st)
	}
}

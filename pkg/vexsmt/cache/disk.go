package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"vexsmt/pkg/vexsmt"
)

// Disk is the persistent cache: one file per entry under a root
// directory, fanned out by key prefix (dir/ab/cdef… for key "abcdef…")
// so a full-grid sweep does not pile 144 files into one directory listing
// and repeated sweeps across processes and reboots share entries.
//
// Every file carries a self-checksum: the first line is the hex SHA-256
// of the payload that follows. Get verifies it and treats any mismatch —
// truncation, bit rot, a partial write from a crashed process — as a
// miss (counted in Stats().Errors), deleting the bad file so it is
// rewritten on the next Put. Writes go through a temp file and rename,
// so concurrent processes sharing a directory never observe a torn
// entry. The cache is therefore safe to share between any number of
// daemons and CLIs at once.
type Disk struct {
	dir string
	// entries/bytes approximate the store's footprint: seeded by a scan at
	// open and adjusted by this process's Puts and corrupt-entry removals.
	// Other processes sharing the directory drift the numbers — they are a
	// sizing signal for prefetch/eviction decisions, not accounting.
	entries, bytes atomic.Int64
	counters
}

// NewDisk opens (creating if needed) a disk cache rooted at dir; an empty
// dir selects DefaultDir.
func NewDisk(dir string) (*Disk, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, fmt.Errorf("cache: no default directory: %w", err)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	d := &Disk{dir: dir}
	d.scanSize()
	return d, nil
}

// scanSize walks the store once to seed the footprint counters with the
// entries previous processes left behind.
func (d *Disk) scanSize() {
	_ = filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || strings.HasPrefix(de.Name(), ".tmp-") {
			return nil
		}
		if info, err := de.Info(); err == nil {
			d.entries.Add(1)
			d.bytes.Add(info.Size())
		}
		return nil
	})
}

// Dir returns the cache's root directory.
func (d *Disk) Dir() string { return d.dir }

// path fans entries out by the first two key characters.
func (d *Disk) path(key string) string {
	if len(key) <= 2 {
		return filepath.Join(d.dir, key)
	}
	return filepath.Join(d.dir, key[:2], key[2:])
}

// Get implements vexsmt.CellCache: read, verify the self-checksum, and
// degrade every failure to a miss.
func (d *Disk) Get(key string) ([]byte, bool) {
	b, err := os.ReadFile(d.path(key))
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		d.corrupt(key)
		return nil, false
	}
	payload := b[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(b[:nl]) {
		d.corrupt(key)
		return nil, false
	}
	d.hits.Add(1)
	return payload, true
}

// corrupt records a failed verification and removes the bad entry so the
// next Put rewrites it cleanly.
func (d *Disk) corrupt(key string) {
	d.errs.Add(1)
	d.misses.Add(1)
	if info, err := os.Stat(d.path(key)); err == nil {
		if os.Remove(d.path(key)) == nil {
			d.entries.Add(-1)
			d.bytes.Add(-info.Size())
		}
	}
}

// Put implements vexsmt.CellCache: write checksum + payload to a temp
// file and rename it into place. Failures are swallowed (the cache is
// best-effort) but counted in Stats().Errors.
func (d *Disk) Put(key string, value []byte) {
	p := d.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		d.errs.Add(1)
		return
	}
	f, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		d.errs.Add(1)
		return
	}
	sum := sha256.Sum256(value)
	_, werr := fmt.Fprintf(f, "%s\n", hex.EncodeToString(sum[:]))
	if werr == nil {
		_, werr = f.Write(value)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	var oldSize int64 = -1 // -1: no prior entry
	if info, err := os.Stat(p); err == nil {
		oldSize = info.Size()
	}
	if werr == nil {
		werr = os.Rename(f.Name(), p)
	}
	if werr != nil {
		os.Remove(f.Name())
		d.errs.Add(1)
		return
	}
	newSize := int64(len(value)) + sha256.Size*2 + 1 // checksum line + payload
	if oldSize < 0 {
		d.entries.Add(1)
		d.bytes.Add(newSize)
	} else {
		d.bytes.Add(newSize - oldSize)
	}
	d.puts.Add(1)
}

// Stats implements vexsmt.CellCache.
func (d *Disk) Stats() vexsmt.CacheStats { return d.stats() }

// CacheSize implements vexsmt.CacheSizer (see the entries/bytes field
// comment for the approximation contract).
func (d *Disk) CacheSize() vexsmt.CacheSize {
	return vexsmt.CacheSize{Entries: d.entries.Load(), Bytes: d.bytes.Load()}
}

package cache

import (
	"sync/atomic"

	"vexsmt/pkg/vexsmt"
)

// PeerFill layers fleet-wide cache coordination over a local cache: a Get
// that misses locally asks peers for the content-addressed key — results
// are location-independent by construction, so any member's entry is as
// good as a local simulation — and a peer hit is written back into the
// local store so the next Get is local. The fetch hook is transport-
// agnostic; pkg/vexsmt/fleet provides the HTTP implementation (GET
// /v1/cache/{key} against registered peers, checksum-verified).
//
// Like every CellCache, PeerFill is best-effort and strictly transparent:
// a peer returns exactly the bytes it stored (the fetcher rejects anything
// that fails its checksum), so peer-filled sweeps stay byte-identical to
// simulated ones. A nil local cache is allowed — Gets then go straight to
// peers and Puts are dropped — so a daemon running -cache off can still
// read the fleet's entries.
type PeerFill struct {
	local vexsmt.CellCache
	fetch func(key string) ([]byte, bool)

	peerHits, peerMisses atomic.Int64
}

var (
	_ vexsmt.CellCache  = (*PeerFill)(nil)
	_ vexsmt.CacheSizer = (*PeerFill)(nil)
)

// WithPeerFill wraps local (which may be nil) with a peer-fill hook.
// fetch must be safe for concurrent use and return ok only for payloads it
// has verified; a nil fetch just returns local.
func WithPeerFill(local vexsmt.CellCache, fetch func(key string) ([]byte, bool)) *PeerFill {
	return &PeerFill{local: local, fetch: fetch}
}

// Get implements vexsmt.CellCache: local first, then peers, filling the
// local store on a peer hit.
func (p *PeerFill) Get(key string) ([]byte, bool) {
	if p.local != nil {
		if v, ok := p.local.Get(key); ok {
			return v, true
		}
	}
	if p.fetch == nil {
		return nil, false
	}
	v, ok := p.fetch(key)
	if !ok {
		p.peerMisses.Add(1)
		return nil, false
	}
	p.peerHits.Add(1)
	if p.local != nil {
		p.local.Put(key, v)
	}
	return v, true
}

// Put implements vexsmt.CellCache, storing locally only — peers pull
// entries on demand; nothing is pushed.
func (p *PeerFill) Put(key string, value []byte) {
	if p.local != nil {
		p.local.Put(key, value)
	}
}

// Stats implements vexsmt.CellCache: the local cache's counters plus the
// wrapper's peer traffic.
func (p *PeerFill) Stats() vexsmt.CacheStats {
	var st vexsmt.CacheStats
	if p.local != nil {
		st = p.local.Stats()
	} else {
		// No local store: every peer probe was also a miss of the (absent)
		// local tier, so the headline counters still add up for dashboards.
		st.Misses = p.peerHits.Load() + p.peerMisses.Load()
	}
	st.PeerHits = p.peerHits.Load()
	st.PeerMisses = p.peerMisses.Load()
	return st
}

// CacheSize implements vexsmt.CacheSizer by forwarding to the local cache
// when it can size itself.
func (p *PeerFill) CacheSize() vexsmt.CacheSize {
	if s, ok := p.local.(vexsmt.CacheSizer); ok {
		return s.CacheSize()
	}
	return vexsmt.CacheSize{}
}

// Local returns the wrapped cache (possibly nil) — servers export it on
// GET /v1/cache/{key} so peer requests read the local tier only and two
// cold daemons cannot ping-pong a missing key between each other.
func (p *PeerFill) Local() vexsmt.CellCache { return p.local }

package cache

import (
	"container/list"
	"sync"

	"vexsmt/pkg/vexsmt"
)

// defaultMemoryEntries comfortably holds many full figure grids (144
// cells each, a few hundred bytes per entry) while bounding a long-lived
// server's memory.
const defaultMemoryEntries = 4096

// Memory is an in-process LRU cache: Get refreshes an entry's recency and
// Put evicts the least-recently-used entries beyond the capacity. It is
// safe for concurrent use and returns defensive copies, so callers can
// never corrupt a stored payload.
type Memory struct {
	mu    sync.Mutex
	max   int
	bytes int64      // sum of live payload lengths
	ll    *list.List // front = most recent; values are *memEntry
	idx   map[string]*list.Element
	counters
}

type memEntry struct {
	key string
	val []byte
}

// NewMemory builds an LRU cache holding at most maxEntries entries;
// maxEntries < 1 selects a default of 4096.
func NewMemory(maxEntries int) *Memory {
	if maxEntries < 1 {
		maxEntries = defaultMemoryEntries
	}
	return &Memory{
		max: maxEntries,
		ll:  list.New(),
		idx: make(map[string]*list.Element),
	}
}

// Get implements vexsmt.CellCache.
func (m *Memory) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.idx[key]
	if !ok {
		m.misses.Add(1)
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.hits.Add(1)
	val := el.Value.(*memEntry).val
	return append([]byte(nil), val...), true
}

// Put implements vexsmt.CellCache.
func (m *Memory) Put(key string, value []byte) {
	cp := append([]byte(nil), value...)
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.idx[key]; ok {
		e := el.Value.(*memEntry)
		m.bytes += int64(len(cp)) - int64(len(e.val))
		e.val = cp
		m.ll.MoveToFront(el)
		m.puts.Add(1)
		return
	}
	m.idx[key] = m.ll.PushFront(&memEntry{key: key, val: cp})
	m.bytes += int64(len(cp))
	for m.ll.Len() > m.max {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		e := oldest.Value.(*memEntry)
		m.bytes -= int64(len(e.val))
		delete(m.idx, e.key)
	}
	m.puts.Add(1)
}

// Stats implements vexsmt.CellCache.
func (m *Memory) Stats() vexsmt.CacheStats { return m.stats() }

// CacheSize implements vexsmt.CacheSizer: live entries and their payload
// bytes (bookkeeping overhead excluded).
func (m *Memory) CacheSize() vexsmt.CacheSize {
	m.mu.Lock()
	defer m.mu.Unlock()
	return vexsmt.CacheSize{Entries: int64(m.ll.Len()), Bytes: m.bytes}
}

// Len returns the number of live entries (test instrumentation).
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}
